package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
)

const abBatchFormula = `.*(x{ab}).*|(x{ab}).*`

type batchResult struct {
	CacheHit      bool    `json:"cache_hit"`
	PlanCompileMS float64 `json:"plan_compile_ms"`
	Queries       []struct {
		Spanner string     `json:"spanner"`
		Vars    []string   `json:"vars"`
		Count   int        `json:"count"`
		Tuples  [][][2]int `json:"tuples"`
		Error   string     `json:"error"`
	} `json:"queries"`
}

func postBatch(t *testing.T, url string, spanners []string, doc string, hdr map[string]string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"spanners": spanners, "doc": doc})
	req, err := http.NewRequest("POST", url+"/v1/extract-batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBatch(t *testing.T, resp *http.Response) batchResult {
	t.Helper()
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out batchResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	return out
}

// TestExtractBatchJSONHappyPath checks the fused endpoint's results per
// query against the single-query /v1/extract on the same document.
func TestExtractBatchJSONHappyPath(t *testing.T) {
	ts := startDaemon(t)
	doc := "ab " + testDoc
	spanners := []string{emailFormula, abBatchFormula}
	got := decodeBatch(t, postBatch(t, ts.URL, spanners, doc, nil))
	if len(got.Queries) != 2 {
		t.Fatalf("got %d queries, want 2", len(got.Queries))
	}
	for i, q := range got.Queries {
		if q.Error != "" {
			t.Fatalf("query %d: unexpected error %q", i, q.Error)
		}
		body, _ := json.Marshal(map[string]string{"spanner": spanners[i], "doc": doc})
		resp, err := http.Post(ts.URL+"/v1/extract", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		want := decodeExtract(t, resp)
		if q.Count != want.Count || !reflect.DeepEqual(q.Tuples, want.Tuples) {
			t.Fatalf("query %d (%s): batch %d/%v != single %d/%v",
				i, spanners[i], q.Count, q.Tuples, want.Count, want.Tuples)
		}
		if q.Count == 0 {
			t.Fatalf("query %d: expected matches on %q", i, doc)
		}
	}
	// Same batch again: served from the plan cache.
	if again := decodeBatch(t, postBatch(t, ts.URL, spanners, doc, nil)); !again.CacheHit {
		t.Fatal("second identical batch should be a plan-cache hit")
	}
}

// TestExtractBatchOneBadFormula is the per-query error contract: a batch
// containing a malformed formula answers 200 with that slot carrying the
// compile error and the sibling slots carrying their tuples — not a 400
// for the whole batch.
func TestExtractBatchOneBadFormula(t *testing.T) {
	ts := startDaemon(t)
	got := decodeBatch(t, postBatch(t, ts.URL,
		[]string{abBatchFormula, "(x{unclosed"}, "ab ab", nil))
	if got.Queries[0].Error != "" || got.Queries[0].Count != 2 {
		t.Fatalf("good slot = %+v, want 2 matches and no error", got.Queries[0])
	}
	if got.Queries[1].Error == "" || got.Queries[1].Count != 0 {
		t.Fatalf("bad slot = %+v, want a compile error and no tuples", got.Queries[1])
	}
}

// TestExtractBatchEmptyIs400 checks the one whole-batch planning error: a
// batch with no formulas at all cannot be planned.
func TestExtractBatchEmptyIs400(t *testing.T) {
	ts := startDaemon(t)
	resp := postBatch(t, ts.URL, nil, "doc", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 for an empty batch", resp.StatusCode)
	}
}

// TestExtractBatchMultipartDeadlineEpilogue is the PR 8 contract on the
// batch endpoint: the 200 header and the plan part are on the wire when
// the server's deadline fires mid-batch (here: while the raw document
// body is still trickling in), and the stream must still terminate with
// an explicit error epilogue carrying the 504, not a silent truncation.
func TestExtractBatchMultipartDeadlineEpilogue(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	ts := httptest.NewServer(newServerWith(eng, serverConfig{deadline: 60 * time.Millisecond}))
	defer ts.Close()

	pr, pw := io.Pipe()
	go func() {
		defer pw.Close()
		for i := 0; i < 50; i++ {
			if _, err := pw.Write([]byte("drip. ")); err != nil {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	q := url.Values{"spanner": {emailFormula, abBatchFormula}}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/extract-batch?"+q.Encode(), pr)
	req.Header.Set("Accept", "multipart/mixed")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (the header precedes the failure)", resp.StatusCode)
	}
	parts := readMultipartResponse(t, resp)
	var plan struct {
		Queries []struct {
			Spanner string `json:"spanner"`
			Error   string `json:"error"`
		} `json:"queries"`
	}
	if err := json.Unmarshal(parts["plan"], &plan); err != nil || len(plan.Queries) != 2 {
		t.Fatalf("plan part %s: err=%v, want 2 queries", parts["plan"], err)
	}
	var end epilogue
	if err := json.Unmarshal(parts["end"], &end); err != nil {
		t.Fatalf("bad epilogue %s: %v", parts["end"], err)
	}
	if end.Status != "error" || end.Error == "" {
		t.Fatalf("epilogue = %+v, want an explicit error", end)
	}
	if end.HTTPStatus != http.StatusGatewayTimeout {
		t.Fatalf("epilogue http_status = %d, want 504", end.HTTPStatus)
	}
	if _, ok := parts["results"]; ok {
		t.Fatal("failed batch must not emit a results part")
	}
}

// TestExtractBatchMultipartOKPath checks the streamed response shape on
// success: plan part (with per-query vars), results part, ok epilogue
// with the summed tuple count.
func TestExtractBatchMultipartOKPath(t *testing.T) {
	ts := startDaemon(t)
	body, _ := json.Marshal(map[string]any{
		"spanners": []string{emailFormula, abBatchFormula, "(x{bad"},
		"doc":      "ab " + testDoc,
	})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/extract-batch", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "multipart/mixed")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	parts := readMultipartResponse(t, resp)
	var results []struct {
		Spanner string `json:"spanner"`
		Count   int    `json:"count"`
		Error   string `json:"error"`
	}
	if err := json.Unmarshal(parts["results"], &results); err != nil || len(results) != 3 {
		t.Fatalf("results part %s: err=%v, want 3 queries", parts["results"], err)
	}
	if results[0].Count != 3 || results[1].Count != 1 || results[2].Error == "" {
		t.Fatalf("results = %+v, want 3 emails, 1 ab, 1 compile error", results)
	}
	var end epilogue
	if err := json.Unmarshal(parts["end"], &end); err != nil {
		t.Fatalf("bad epilogue %s: %v", parts["end"], err)
	}
	if end.Status != "ok" || end.Count != 4 {
		t.Fatalf("epilogue = %+v, want ok with 4 total tuples", end)
	}
}

// TestExtractBatchShed429 puts the batch endpoint behind the same
// admission front door as /v1/extract: with the lone token held, a batch
// request is shed 429 with a Retry-After hint, and admitted again once
// the token frees.
func TestExtractBatchShed429(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	lim := admission.New(admission.Config{Tokens: 1, Queue: -1}) // no queue: admit or shed
	ts := httptest.NewServer(newServerWith(eng, serverConfig{limiter: lim}))
	defer ts.Close()

	release := holdToken(t, ts.URL)
	defer release()

	resp := postBatch(t, ts.URL, []string{emailFormula}, testDoc, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}

	release()
	ok := decodeBatch(t, postBatch(t, ts.URL, []string{emailFormula}, testDoc, nil))
	if len(ok.Queries) != 1 || ok.Queries[0].Count != 3 {
		t.Fatalf("post-release batch = %+v, want 3 emails", ok.Queries)
	}
}
