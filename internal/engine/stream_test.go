package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/library"
	"repro/internal/parallel"
	"repro/internal/regexformula"
)

// collect runs the segmenter over doc in chunks of size n and returns
// all emitted segments in order.
func collect(doc string, n int) []parallel.Segment {
	g := newSegmenter(library.Sentences())
	var out []parallel.Segment
	for lo := 0; lo < len(doc); lo += n {
		hi := lo + n
		if hi > len(doc) {
			hi = len(doc)
		}
		out = append(out, g.feed([]byte(doc[lo:hi]))...)
	}
	return append(out, g.flush()...)
}

func TestSegmenterMatchesOneShotSplit(t *testing.T) {
	docs := []string{
		"",
		".",
		"no terminator at all",
		"one. two! three? four\nfive.",
		"trailing terminator.",
		"..!!..",
		"a.b.c.d.e.f.g.h",
	}
	s := library.Sentences()
	for _, doc := range docs {
		want := parallel.SegmentsOf(doc, s.Split(doc))
		for n := 1; n <= len(doc)+1; n++ {
			got := collect(doc, n)
			if len(got) != len(want) {
				t.Fatalf("doc %q chunk %d: %d segments, want %d (%v vs %v)", doc, n, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("doc %q chunk %d: segment %d = %+v, want %+v", doc, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSegmenterCarryKeepsBufferSmall(t *testing.T) {
	// After feeding many complete sentences the buffer must hold only
	// the still-open tail, not the whole document.
	g := newSegmenter(library.Sentences())
	for i := 0; i < 100; i++ {
		g.feed([]byte("a sentence here. "))
	}
	if len(g.buf) > 64 {
		t.Fatalf("buffer grew to %d bytes; carry-over is not trimming", len(g.buf))
	}
}

// collectScan runs the scanner-backed segmenter over doc in chunks of
// size n.
func collectScan(t *testing.T, s *core.Splitter, doc string, n int) []parallel.Segment {
	t.Helper()
	g, ok := newScanSegmenter(s, nil)
	if !ok {
		t.Fatalf("splitter has no compiled scanner")
	}
	var out []parallel.Segment
	for lo := 0; lo < len(doc); lo += n {
		hi := lo + n
		if hi > len(doc) {
			hi = len(doc)
		}
		out = append(out, g.feed([]byte(doc[lo:hi]))...)
	}
	return append(out, g.flush()...)
}

func TestScanSegmenterMatchesOneShotSplit(t *testing.T) {
	docs := []string{
		"",
		".",
		"no terminator at all",
		"one. two! three? four\nfive.",
		"trailing terminator.",
		"..!!..",
		"a.b.c.d.e.f.g.h",
	}
	s := library.Sentences()
	for _, doc := range docs {
		want := parallel.SegmentsOf(doc, s.Split(doc))
		for n := 1; n <= len(doc)+1; n++ {
			got := collectScan(t, s, doc, n)
			if len(got) != len(want) {
				t.Fatalf("doc %q chunk %d: %d segments, want %d (%v vs %v)", doc, n, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("doc %q chunk %d: segment %d = %+v, want %+v", doc, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestScanSegmenterCarryKeepsBufferSmall(t *testing.T) {
	g, ok := newScanSegmenter(library.Sentences(), nil)
	if !ok {
		t.Fatal("sentence splitter has no compiled scanner")
	}
	for i := 0; i < 100; i++ {
		g.feed([]byte("a sentence here. "))
	}
	if g.buffered() > 64 {
		t.Fatalf("buffer grew to %d bytes; anchor trimming is not working", g.buffered())
	}
	if g.fb != nil {
		t.Fatal("sentence scanner bailed to the fallback segmenter")
	}
}

func TestScanSegmenterBailFallsBackWithoutDuplicates(t *testing.T) {
	// Blocks are valid only on documents ending in '!': the scanner can
	// never commit a close mid-document, so it bails at the first
	// separator and the fallback segmenter must take over from the
	// anchor without duplicating or dropping segments.
	auto := regexformula.MustCompile("(x{[^.!]*})(\\.[^.!]*)*!|[^.!]*(\\.[^.!]*)*\\.(x{[^.!]*})(\\.[^.!]*)*!")
	s := core.MustSplitter(auto)
	if _, ok := s.NewScanRun(); !ok {
		t.Skip("splitter has no compiled scanner")
	}
	for _, doc := range []string{"ab.cd.ef!", "ab.cd", "!", "a.b.c.d.e!"} {
		want := parallel.SegmentsOf(doc, s.SplitReference(doc))
		for n := 1; n <= len(doc)+1; n++ {
			got := collectScan(t, s, doc, n)
			if len(got) != len(want) {
				t.Fatalf("doc %q chunk %d: %d segments, want %d (%v vs %v)", doc, n, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("doc %q chunk %d: segment %d = %+v, want %+v", doc, n, i, got[i], want[i])
				}
			}
		}
	}
}
