// The HTTP-log debugging example of Sections 1 and 3.1: a developer
// extracts (method, path) pairs from a log of ';'-separated requests. A
// version that accidentally pairs the method of one request with the path
// of another is flagged as not splittable by requests, with a concrete
// witness document — the "debugging" application of split-correctness.
package main

import (
	"fmt"
	"log"

	spanners "repro"
	"repro/internal/library"
)

func main() {
	requests := spanners.WrapSplitter(library.HTTPRequests())
	logText := "get /home;post /login;get /assets/app"

	// Correct extractor: method and path of the same request.
	good := spanners.MustCompile(
		`(m{get|post}) (u{[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(m{get|post}) (u{[^;]*})(;[^;]*)*`)
	ok, _, err := spanners.Splittable(good, requests)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("good extractor splittable by requests: %v\n", ok)
	for _, t := range good.Eval(logText).Tuples {
		fmt.Printf("  m=%q u=%q\n", t[0].In(logText), t[1].In(logText))
	}

	// Buggy extractor: the method may come from one request and the path
	// from a LATER one (".*" crosses the ';' boundary).
	buggy := spanners.MustCompile(`.*(m{get|post}) .*;[^;]*(u{/[^;]*}).*|.*(m{get|post}) [^;]*(u{/[^;]*}).*`)
	ok, witness, err := spanners.SplitCorrectWitness(buggy, buggy, requests)
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		log.Fatal("expected the buggy extractor to be flagged")
	}
	fmt.Printf("buggy extractor is NOT split-correct by requests\n")
	fmt.Printf("  witness document: %q\n", witness)
	rel := buggy.Eval(witness)
	fmt.Printf("  on the witness it produces %d tuple(s), some crossing request boundaries\n", rel.Len())
}
