package refword

import (
	"testing"

	"repro/internal/regexformula"
	"repro/internal/span"
)

func TestClrAndValidity(t *testing.T) {
	// r = a x0⊢ b ⊣x0 c
	w := Word{ByteTok('a'), OpenTok(0), ByteTok('b'), CloseTok(0), ByteTok('c')}
	if w.Clr() != "abc" {
		t.Fatalf("Clr = %q", w.Clr())
	}
	if !w.IsValid(1) {
		t.Fatal("ref-word must be valid")
	}
	// Missing close.
	bad := Word{OpenTok(0), ByteTok('a')}
	if bad.IsValid(1) {
		t.Fatal("unclosed variable must be invalid")
	}
	// Close before open.
	bad2 := Word{CloseTok(0), ByteTok('a'), OpenTok(0)}
	if bad2.IsValid(1) {
		t.Fatal("close before open must be invalid")
	}
	// Double open — the footnote-5 example ε ∈ R((x{a})*) is invalid.
	bad3 := Word{OpenTok(0), CloseTok(0), OpenTok(0), CloseTok(0)}
	if bad3.IsValid(1) {
		t.Fatal("double binding must be invalid")
	}
	if (Word{}).IsValid(1) {
		t.Fatal("empty ref-word is invalid when variables exist")
	}
	if !(Word{}).IsValid(0) {
		t.Fatal("empty ref-word is valid with no variables")
	}
}

func TestTupleExtraction(t *testing.T) {
	// Section 4: t_r(x) = [i,j⟩ with i = |clr(pre)|+1, j = i + |clr(mid)|.
	w := Word{ByteTok('a'), OpenTok(0), ByteTok('b'), ByteTok('c'), CloseTok(0), ByteTok('d')}
	tp, err := w.Tuple(1)
	if err != nil {
		t.Fatal(err)
	}
	if tp[0] != span.New(2, 4) {
		t.Fatalf("tuple = %v, want [2,4⟩", tp[0])
	}
	// Empty span at a boundary.
	w2 := Word{ByteTok('a'), OpenTok(0), CloseTok(0), ByteTok('b')}
	tp2, err := w2.Tuple(1)
	if err != nil {
		t.Fatal(err)
	}
	if tp2[0] != span.New(2, 2) {
		t.Fatalf("tuple = %v, want [2,2⟩", tp2[0])
	}
	if _, err := (Word{OpenTok(0)}).Tuple(1); err == nil {
		t.Fatal("invalid ref-word must not yield a tuple")
	}
}

func TestCanonicalization(t *testing.T) {
	// ⊣x0 x1⊢ out of order vs x1⊢ ⊣x0: canonical order is ascending
	// (var, kind) with open(0) < close(0) < open(1).
	w := Word{OpenTok(0), ByteTok('a'), OpenTok(1), CloseTok(0), ByteTok('b'), CloseTok(1)}
	if !w.Canonicalize().IsCanonical() {
		t.Fatal("canonicalization must produce canonical order")
	}
	c := w.Canonicalize()
	// The block between the bytes is {x1⊢, ⊣x0}; canonical order puts
	// ⊣x0 (key 1) before x1⊢ (key 2).
	if !c[2].IsOp || !c[2].Close || c[2].Var != 0 {
		t.Fatalf("canonical block order wrong: %v", c)
	}
	tp1, _ := w.Tuple(2)
	tp2, _ := c.Tuple(2)
	if !tp1.Equal(tp2) {
		t.Fatal("canonicalization must preserve the tuple")
	}
	if w.Clr() != c.Clr() {
		t.Fatal("canonicalization must preserve the document")
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	doc := "abcd"
	tp := span.Tuple{span.New(2, 4), span.New(3, 3)}
	w := Encode(doc, tp)
	if !w.IsCanonical() || !w.IsValid(2) {
		t.Fatalf("Encode must produce a canonical valid ref-word: %v", w)
	}
	if w.Clr() != doc {
		t.Fatalf("Clr = %q", w.Clr())
	}
	got, err := w.Tuple(2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tp) {
		t.Fatalf("round trip: %v vs %v", got, tp)
	}
}

// TestAcceptsAgreesWithEval ties the ref-word semantics to the evaluator:
// for every document and tuple, the automaton accepts the canonical
// ref-word iff the tuple is in the evaluated relation.
func TestAcceptsAgreesWithEval(t *testing.T) {
	formulas := []string{
		"x{a}", ".*x{a}.*", "x{ab}b|a(x{bb})", "x{a}y{b}", ".*x{a.*}y{b}.*",
		"x{}a", "a?x{.*}",
	}
	var docs []string
	frontier := []string{""}
	docs = append(docs, "")
	for l := 0; l < 4; l++ {
		var next []string
		for _, d := range frontier {
			for _, c := range "ab" {
				next = append(next, d+string(c))
			}
		}
		docs = append(docs, next...)
		frontier = next
	}
	for _, src := range formulas {
		a := regexformula.MustCompile(src)
		nv := a.Arity()
		for _, d := range docs {
			rel := a.Eval(d)
			// Every evaluated tuple's canonical ref-word is accepted.
			for _, tp := range rel.Tuples {
				if !Accepts(a, Encode(d, tp)) {
					t.Fatalf("%s on %q: evaluator tuple %v rejected by ref-word semantics", src, d, tp)
				}
			}
			// And every candidate tuple not in the relation is rejected.
			for i := 1; i <= len(d)+1; i++ {
				for j := i; j <= len(d)+1; j++ {
					if nv != 1 {
						continue
					}
					tp := span.Tuple{span.New(i, j)}
					if Accepts(a, Encode(d, tp)) != rel.Has(tp) {
						t.Fatalf("%s on %q: ref-word semantics disagrees on %v", src, d, tp)
					}
				}
			}
		}
	}
}

func TestString(t *testing.T) {
	w := Word{OpenTok(0), ByteTok('a'), CloseTok(0)}
	if w.String() != "x0⊢a⊣x0" {
		t.Fatalf("String = %q", w.String())
	}
}
