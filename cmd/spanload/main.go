// Command spanload drives concurrent load against a running spand
// daemon. It has two modes.
//
// The default mode is the CONCURRENCY experiment: N closed-loop
// connections with a mixed workload — plan-cache hits (one hot
// split-parallel plan) and misses (unique formulas that pay compilation
// inline), fused multi-query batches (/v1/extract-batch, -batch-every),
// small and large documents, inline JSON and streamed raw bodies —
// reporting client-side throughput and latency percentiles per
// connection count:
//
//	spand -addr :8080 &
//	spanload -target http://127.0.0.1:8080 -conns 1,4,16 -dur 5s -json BENCH_PR6.json
//
// -overload selects the OVERLOAD experiment instead: after closed-loop
// baselines (one connection for the latency reference, NumCPU
// connections for the capacity estimate), it offers open-loop arrivals
// at configured multiples of capacity — mixed tenants, slow readers —
// and verifies the daemon's shedding contract: every non-admitted
// request is a 429 with Retry-After, nothing else fails:
//
//	spand -addr :8080 -admit 4 -admit-queue 8 &
//	spanload -target http://127.0.0.1:8080 -overload -rates 1,2,3 -json BENCH_PR8.json
//
// In overload mode spanload exits non-zero when the contract is
// violated: any non-429 error, any 429 without a valid Retry-After, or
// no sheds at all across the offered rates (which would mean the
// daemon queued past its declared capacity instead of shedding).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var (
		target     = flag.String("target", "http://127.0.0.1:8080", "base URL of the spand daemon")
		connsFlag  = flag.String("conns", "1,4,16", "comma-separated connection counts to sweep")
		dur        = flag.Duration("dur", 5*time.Second, "duration of each connection-count or rate run")
		missEvery  = flag.Int("miss-every", 8, "one plan-cache-missing formula per N requests (negative disables)")
		batchEvery = flag.Int("batch-every", 8, "one fused /v1/extract-batch request per N requests (0 disables)")
		seed       = flag.Uint64("seed", 0, "workload mix seed (0 = fixed default)")
		jsonOut    = flag.String("json", "", "write the experiment snapshot to this file")

		overload  = flag.Bool("overload", false, "run the OVERLOAD experiment instead of the connection sweep")
		ratesFlag = flag.String("rates", "1,2,3", "overload: comma-separated arrival-rate multipliers of measured capacity")
		baseDur   = flag.Duration("base-dur", 2*time.Second, "overload: duration of each closed-loop baseline run")
		tenants   = flag.Int("tenants", 3, "overload: distinct tenant keys cycled through")
		slowEvery = flag.Int("slow-every", 8, "overload: one slow-reader client per N requests (negative disables)")
	)
	flag.Parse()

	if *overload {
		runOverload(*target, *ratesFlag, *dur, *baseDur, *tenants, *slowEvery, *seed, *jsonOut)
		return
	}

	var conns []int
	for _, f := range strings.Split(*connsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			log.Fatalf("spanload: bad -conns entry %q", f)
		}
		conns = append(conns, n)
	}

	cfg := loadgen.Config{Target: *target, Duration: *dur, MissEvery: *missEvery, BatchEvery: *batchEvery, Seed: *seed}
	snap := loadgen.RunSweep(cfg, conns)

	fmt.Printf("%-6s %10s %8s %10s %10s %9s %9s %9s\n",
		"conns", "requests", "errors", "req/s", "MB/s", "p50 ms", "p90 ms", "p99 ms")
	for _, r := range snap.Results {
		fmt.Printf("%-6d %10d %8d %10.1f %10.2f %9.2f %9.2f %9.2f\n",
			r.Connections, r.Requests, r.Errors, r.ReqPerS, r.MBPerS, r.P50MS, r.P90MS, r.P99MS)
	}

	writeJSON(*jsonOut, snap)
	for _, r := range snap.Results {
		if r.Errors > 0 {
			os.Exit(1)
		}
	}
}

func runOverload(target, ratesFlag string, dur, baseDur time.Duration, tenants, slowEvery int, seed uint64, jsonOut string) {
	var rates []float64
	for _, f := range strings.Split(ratesFlag, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || m <= 0 {
			log.Fatalf("spanload: bad -rates entry %q", f)
		}
		rates = append(rates, m)
	}

	snap := loadgen.RunOverload(loadgen.OverloadConfig{
		Target:           target,
		BaselineDuration: baseDur,
		RateDuration:     dur,
		Rates:            rates,
		Tenants:          tenants,
		SlowEvery:        slowEvery,
		Seed:             seed,
	})

	fmt.Printf("baseline 1 conn:  %8.1f req/s  p99 %7.2f ms\n", snap.SingleConn.ReqPerS, snap.SingleConn.P99MS)
	fmt.Printf("capacity %d conns: %8.1f req/s  p99 %7.2f ms\n", snap.NumCPU, snap.Capacity.ReqPerS, snap.Capacity.P99MS)
	fmt.Printf("%-6s %12s %9s %9s %9s %9s %9s %12s %12s\n",
		"rate", "offered/s", "offered", "ok", "shed", "errors", "dropped", "adm p50 ms", "adm p99 ms")
	for _, r := range snap.Rates {
		fmt.Printf("%-6.2g %12.1f %9d %9d %9d %9d %9d %12.2f %12.2f\n",
			r.Rate, r.OfferedPerS, r.Offered, r.OK, r.Shed+r.ShedBad, r.Errors, r.DroppedClient,
			r.AdmittedP50MS, r.AdmittedP99MS)
	}

	writeJSON(jsonOut, snap)

	failed := false
	var totalShed uint64
	for _, r := range snap.Rates {
		totalShed += r.Shed
		if r.Errors > 0 {
			log.Printf("spanload: rate %.2g: %d non-429 errors", r.Rate, r.Errors)
			failed = true
		}
		if r.ShedBad > 0 {
			log.Printf("spanload: rate %.2g: %d sheds missing Retry-After", r.Rate, r.ShedBad)
			failed = true
		}
	}
	if totalShed == 0 {
		log.Printf("spanload: no request was shed at any offered rate")
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

func writeJSON(path string, v any) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatalf("spanload: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("spanload: %v", err)
	}
	log.Printf("spanload: wrote %s", path)
}
