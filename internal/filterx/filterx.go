// Package filterx implements Section 7.2: splitters with a regular
// precondition (filter). A splitter with filter S[L] behaves like S on
// documents in L and produces nothing elsewhere; the decision problems ask
// whether some filter makes a spanner split-correct or splittable. By
// Lemma 7.5 the minimal candidate filter is always L_P, the domain of P,
// which reduces the "exists a filter" questions to ordinary ones
// (Theorems 7.6 and 7.7).
package filterx

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/span"
	"repro/internal/vsa"
)

// FilteredSplitter is a pair S[L] of a splitter and a regular filter given
// as a Boolean spanner.
type FilteredSplitter struct {
	S *core.Splitter
	L *vsa.Automaton
}

// NewFilteredSplitter validates and wraps the pair.
func NewFilteredSplitter(s *core.Splitter, l *vsa.Automaton) (*FilteredSplitter, error) {
	if l.Arity() != 0 {
		return nil, fmt.Errorf("filterx: filter must be a Boolean spanner, has %d variables", l.Arity())
	}
	return &FilteredSplitter{S: s, L: l}, nil
}

// Split returns S(d) if d ∈ L and nothing otherwise.
func (f *FilteredSplitter) Split(doc string) []span.Span {
	if !f.L.EvalBool(doc) {
		return nil
	}
	return f.S.Split(doc)
}

// AsSplitter materializes S[L] as an ordinary splitter (splitters with
// filter are no more powerful than splitters, Section 7.2).
func (f *FilteredSplitter) AsSplitter() (*core.Splitter, error) {
	restricted, err := algebra.Restrict(f.S.Automaton(), f.L)
	if err != nil {
		return nil, err
	}
	return core.NewSplitter(restricted)
}

// MinimalFilter returns the language L_P of Lemma 7.5 — the documents on
// which p produces output — as a Boolean spanner. Whenever any filter
// works, this one does.
func MinimalFilter(p *vsa.Automaton) *vsa.Automaton {
	return algebra.DomainLanguage(p)
}

// SplitCorrectWithFilter decides whether some regular language L makes
// P = P_S ∘ S[L] (Theorem 7.6). By Lemma 7.5 it suffices to test L = L_P.
// The witness filter is returned on success.
func SplitCorrectWithFilter(p, ps *vsa.Automaton, s *core.Splitter, limit int) (bool, *vsa.Automaton, error) {
	lp := MinimalFilter(p)
	fs, err := NewFilteredSplitter(s, lp)
	if err != nil {
		return false, nil, err
	}
	sPrime, err := fs.AsSplitter()
	if err != nil {
		return false, nil, err
	}
	ok, err := core.SplitCorrect(p, ps, sPrime, limit)
	if err != nil || !ok {
		return false, nil, err
	}
	return true, lp, nil
}

// SelfSplittableWithFilter decides whether P = P ∘ S[L] for some regular L
// (the self-splittability variant of Theorem 7.6).
func SelfSplittableWithFilter(p *vsa.Automaton, s *core.Splitter, limit int) (bool, *vsa.Automaton, error) {
	return SplitCorrectWithFilter(p, p, s, limit)
}

// SplittableWithFilter decides whether P is splittable by S[L] for some
// regular L (Theorem 7.7); the splitter must be disjoint, as in
// Theorem 5.15. On success it returns the witness filter and split-spanner.
func SplittableWithFilter(p *vsa.Automaton, s *core.Splitter, limit int) (bool, *vsa.Automaton, *vsa.Automaton, error) {
	lp := MinimalFilter(p)
	fs, err := NewFilteredSplitter(s, lp)
	if err != nil {
		return false, nil, nil, err
	}
	sPrime, err := fs.AsSplitter()
	if err != nil {
		return false, nil, nil, err
	}
	ok, witness, err := core.Splittable(p, sPrime, limit)
	if err != nil || !ok {
		return false, nil, nil, err
	}
	return true, lp, witness, nil
}
