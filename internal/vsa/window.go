package vsa

// This file implements bidirectional match-window localization, the
// optimization that lets Eval pay the tagged frontier simulation only
// where matches can actually live. The spanner shapes that dominate
// extraction workloads — Σ*·extraction·Σ* and friends — spend almost the
// whole document in a variable-free prefix or suffix; the simulation's
// per-byte cost (frontier scan, assignment arena, dedup table) is wasted
// there. The localizer replaces it with two byte-class DFA passes:
//
//  1. Forward end-detection: a lazily determinized DFA over the scan
//     automaton — the automaton with emit states truncated (an emit state
//     is all-closed and suffix-universal, so evaluation emits and drops a
//     run the moment it enters one) — marks every boundary where some run
//     completes, plus whether the document can accept at its end through
//     final operation sets. A document with no marked boundary and no
//     end-acceptance has an empty relation: the scan subsumes the old
//     EvalBool prescan in the same single pass.
//  2. Backward start-narrowing: from each candidate end, a DFA over the
//     reversed core automaton (built with automata.Reverse; see
//     reverse.go) walks right to left to the earliest boundary where that
//     match's core — the run segment between its first variable operation
//     and its emission — can begin. Overlapping candidate regions share
//     one union frontier, so the pass costs O(total window span), not
//     O(ends × span).
//
// The tagged simulation then runs per window, seeded with the exact set
// of status-0 states reachable at the window start (reconstructed from
// forward-scan checkpoints), with positions kept in document coordinates.
// Every run's core lies inside a window by construction, and every seeded
// state is genuinely reachable, so windowed evaluation is byte-identical
// to whole-document evaluation (fuzz-verified against EvalReference).
// When the analysis cannot apply — nullary automata, no per-state status,
// or a DFA state-bound overflow — Eval falls back to the PR 2 path:
// EvalBool prescan plus whole-document simulation.

import (
	"sync"

	"repro/internal/lazydfa"
)

// checkpointStride is the boundary spacing of forward-scan DFA state
// checkpoints (power of two); window seeding replays at most this many
// bytes. 32 trades 12.5% of the document length in pooled scratch for
// halving the replay cost on match-dense documents.
const checkpointStride = 32

// window is a byte range [lo, hi) of the document that the tagged
// simulation must cover.
type window struct {
	lo, hi int
}

// localizer is the compiled bidirectional match-window machinery of an
// automaton: per-state statuses, the forward scan program and the
// backward narrowing program. Built once under localOnce and read-only
// afterwards; the lazy DFAs beneath it carry their own locks.
type localizer struct {
	ok     bool
	reason string // why localized evaluation is disabled, when !ok

	status []Status
	scan   *scanProg
	rev    *revProg
}

// localizer returns the compiled window localizer, building it on first
// use. Building freezes the automaton, like every evaluation cache.
func (a *Automaton) localizer() *localizer {
	a.localOnce.Do(func() {
		a.frozen.Store(true)
		a.localVal = a.buildLocalizer()
	})
	return a.localVal
}

func (a *Automaton) buildLocalizer() *localizer {
	loc := &localizer{}
	if len(a.Vars) == 0 {
		loc.reason = "nullary automaton: no variable operations to localize"
		return loc
	}
	st, err := a.Statuses()
	if err != nil {
		// Only hand-built non-functional automata land here; they still
		// evaluate through the whole-document path.
		loc.reason = "no per-state status: " + err.Error()
		return loc
	}
	p := a.prog()
	uni := a.suffixUniversality()
	all := AllClosed(len(a.Vars))
	end := make([]bool, len(a.States))
	for q := range a.States {
		// Emit states: evaluation emits a run's tuple and drops the run
		// the moment it enters one (see evalRun.place), so they are
		// exactly the boundaries where matches complete early.
		end[q] = st[q] == all && uni[q]
	}
	loc.status = st
	loc.scan = buildScanProg(p, a.Start, end)
	loc.scan.noSkip = a.prefDisabled
	loc.rev = buildRevProg(p, a, st, end)
	loc.ok = true
	return loc
}

// ---------- forward end-detection ----------

const (
	// scanFlagEnd marks a scan-DFA subset containing an emit state: the
	// current boundary is a candidate match end.
	scanFlagEnd uint8 = 1 << iota
	// scanFlagFinals marks a subset containing a state with final
	// operation sets: at the document end this boundary can accept.
	scanFlagFinals
)

// scanProg is the forward end-detection program: the automaton with
// variable operations stripped and emit states truncated (their outgoing
// edges removed, mirroring evaluation's emit-and-drop), compiled into
// per-(state, class) successor lists plus a lazily determinized DFA
// (internal/lazydfa) whose per-state payload is the end/finals flag byte
// of the subset.
type scanProg struct {
	nstates  int
	nclasses int
	succ     [][]int32 // per state*nclasses: deduplicated successors
	end      []bool
	hasFinal []bool
	dfa      *lazydfa.DFA[uint8]
	// skips memoizes per-DFA-state trigger sets for the forward-scan
	// skip loop (see prefilter.go); noSkip honors DisablePrefilter.
	skips  lazydfa.SkipCache
	noSkip bool
}

func buildScanProg(p *evalProg, start int, end []bool) *scanProg {
	nc, n := p.nclasses, p.nstates
	s := &scanProg{
		nstates:  n,
		nclasses: nc,
		succ:     make([][]int32, n*nc),
		end:      end,
		hasFinal: p.hasFinal,
	}
	mark := make([]bool, n)
	for q := 0; q < n; q++ {
		if end[q] {
			continue // truncated: runs are emitted and dropped on entry
		}
		for c := 0; c < nc; c++ {
			var out []int32
			for _, e := range p.succ[q*nc+c] {
				if !mark[e.to] {
					mark[e.to] = true
					out = append(out, e.to)
				}
			}
			for _, t := range out {
				mark[t] = false
			}
			s.succ[q*nc+c] = out
		}
	}
	s.dfa = lazydfa.New(lazydfa.Config[uint8]{
		Classes:   nc,
		States:    n,
		MaxStates: maxDFAStates,
		Succ: func(q int32, c uint8, emit func(int32)) {
			for _, to := range s.succ[int(q)*nc+int(c)] {
				emit(to)
			}
		},
		Payload: s.flagsOf,
	})
	s.dfa.Intern([]int32{int32(start)}) // = dfaStart
	return s
}

func (s *scanProg) flagsOf(set []int32) uint8 {
	var f uint8
	for _, q := range set {
		if s.end[q] {
			f |= scanFlagEnd
		}
		if s.hasFinal[q] {
			f |= scanFlagFinals
		}
	}
	return f
}

// forward runs the end-detection pass: one truncated-DFA lookup per byte.
// It records candidate match-end boundaries (as [lo, hi) runs), DFA state
// checkpoints every checkpointStride boundaries, and whether the document
// can accept at its end, all into ws. It returns false if the DFA
// overflowed its state bound — the caller then falls back to
// whole-document evaluation. A dead frontier ends the pass early: no
// later boundary can complete a match.
func (s *scanProg) forward(p *evalProg, doc string, ws *windowScratch) bool {
	const rlockChunk = 1 << 12
	w := s.dfa.Walk()
	cur := dfaStart
	ws.checkpoints = append(ws.checkpoints[:0], dfaStart)
	ws.ends = ws.ends[:0]
	ws.finalsAtEnd = false
	ws.skippedBytes = 0
	var gate lazydfa.SkipGate
	if !s.noSkip {
		gate.Init(&s.skips)
		gate.Bind(func(q int32) *lazydfa.SkipSet { return s.skipSetScan(p, &w, q) },
			lazydfa.StringIndex(doc))
	}
	for i := 0; i < len(doc); i++ {
		if i&(rlockChunk-1) == rlockChunk-1 {
			// Let pending writers in periodically; see EvalBool.
			w.Yield()
		}
		c := p.classOf[doc[i]]
		t := w.States[cur].Trans(c)
		if t <= dfaDead { // rare: unresolved, overflowed or dead
			if t == dfaUnknown {
				t = w.Resolve(cur, c)
			}
			if t == dfaOverflow {
				w.Release()
				return false
			}
			if t == dfaDead {
				w.Release()
				return true
			}
		}
		if !s.noSkip {
			// The walk is confined to a synchronized state set: jump to the
			// next byte that can break out. skipSetScan keeps scanFlagEnd
			// states out of every set, so no skipped boundary could have
			// needed an ends entry, and the state at each skipped boundary
			// is a pure function of the byte before it (sk.Sync) — that is
			// the skip's soundness invariant.
			if sk := gate.Step(cur, t); sk != nil {
				if j, _ := gate.Jump(sk, i+1, len(doc)); j > i+1 {
					// Checkpoint every stride boundary in [i+1, j): the jump
					// bypasses the per-byte append below for them (boundary j
					// itself is appended there after i advances). Boundary
					// i+1 holds t — the state the step above just computed —
					// and every later one holds the sync state of its
					// preceding (trigger-free) byte.
					for cb := (i + checkpointStride) / checkpointStride * checkpointStride; cb < j; cb += checkpointStride {
						if cb == i+1 {
							ws.checkpoints = append(ws.checkpoints, t)
						} else {
							ws.checkpoints = append(ws.checkpoints, sk.Sync(doc[cb-1]))
						}
					}
					ws.skippedBytes += j - (i + 1)
					if j-(i+1) >= rlockChunk {
						w.Yield()
					}
					t = sk.Sync(doc[j-1])
					i = j - 1 // boundary j is handled by the normal code below
				}
			}
		}
		cur = t
		b := i + 1
		if b&(checkpointStride-1) == 0 {
			ws.checkpoints = append(ws.checkpoints, cur)
		}
		if w.States[cur].Payload&scanFlagEnd != 0 {
			if n := len(ws.ends); n > 0 && ws.ends[n-1] == int32(b) {
				ws.ends[n-1] = int32(b + 1)
			} else {
				ws.ends = append(ws.ends, int32(b), int32(b+1))
			}
		}
	}
	ws.finalsAtEnd = w.States[cur].Payload&scanFlagFinals != 0
	w.Release()
	return true
}

// seedAt returns the status-0 states reachable at boundary lo — the exact
// pre-core frontier of whole-document evaluation, every cell of which
// carries the all-unset assignment — reconstructed by replaying the scan
// DFA from the nearest checkpoint. The result aliases ws.seed.
func (loc *localizer) seedAt(p *evalProg, doc string, lo int, ws *windowScratch) []int32 {
	s := loc.scan
	k := lo / checkpointStride
	cur := ws.checkpoints[k]
	w := s.dfa.Walk()
	for i := k * checkpointStride; i < lo; i++ {
		c := p.classOf[doc[i]]
		t := w.States[cur].Trans(c)
		if t == dfaUnknown {
			// The forward pass resolved every transition on this path;
			// only a concurrent rebuild could leave a gap. Resolve again.
			t = w.Resolve(cur, c)
		}
		if t == dfaDead || t == dfaOverflow {
			cur = dfaDead
			break
		}
		cur = t
	}
	ws.seed = ws.seed[:0]
	for _, q := range w.States[cur].Set {
		if loc.status[q] == 0 {
			ws.seed = append(ws.seed, q)
		}
	}
	w.Release()
	return ws.seed
}

// ---------- backward start-narrowing ----------

// narrow runs the backward pass over the candidate ends collected by
// forward, right to left. Ends whose backward frontiers touch share one
// union frontier and merge into a single window, so windows come out
// disjoint and each run's core — traced by the reversed program from the
// end where the run completes down to its first variable operation — lies
// entirely inside one of them. It fills ws.windows in document order and
// returns false if the backward DFA overflowed its state bound.
func (loc *localizer) narrow(p *evalProg, doc string, ws *windowScratch) bool {
	r := loc.rev
	ws.windows = ws.windows[:0]
	activeTop, sMin := -1, -1
	cur := dfaDead
	b := 0
	overflow := false
	steps := 0
	flush := func() {
		if activeTop >= 0 && sMin >= 0 {
			ws.windows = append(ws.windows, window{sMin, activeTop})
		}
		activeTop, sMin = -1, -1
	}
	w := r.dfa.Walk()
	// stepDown consumes doc[b-1], moving the frontier one boundary left
	// and recording core starts flagged on the source state.
	stepDown := func() {
		b--
		c := p.classOf[doc[b]]
		if steps++; steps&4095 == 0 {
			w.Yield()
		}
		t := w.States[cur].Trans(c)
		if t == dfaUnknown {
			t = w.Resolve(cur, c)
		}
		if t == dfaOverflow {
			overflow = true
			cur = dfaDead
			return
		}
		if w.States[cur].Payload.start[c] {
			sMin = b
		}
		cur = t
	}
	// seedPoint walks the frontier down to boundary e and injects the end
	// seed (emit states; final-bearing states when fin) there.
	seedPoint := func(e int, fin bool) {
		for cur != dfaDead && b > e {
			stepDown()
			if overflow {
				return
			}
		}
		if cur == dfaDead {
			flush()
			activeTop, b = e, e
		}
		// Cached injections resolve under the read lock already held; the
		// write-locked path runs once per (state, seed) pair.
		seed := r.seedFin
		if !fin {
			seed = r.seedEnd
		}
		to := w.Inject(cur, seed)
		if to == dfaOverflow {
			overflow = true
			return
		}
		cur = to
		if fin && r.finSeedHasStart && sMin < 0 {
			// A status-0 state carries final op sets: a core can live
			// entirely in the final boundary's operations.
			sMin = e
		}
	}
	if ws.finalsAtEnd {
		seedPoint(len(doc), true)
	}
	for i := len(ws.ends); i >= 2 && !overflow; i -= 2 {
		lo, hi := int(ws.ends[i-2]), int(ws.ends[i-1])
		for e := hi - 1; e >= lo && !overflow; e-- {
			seedPoint(e, false)
		}
	}
	for cur != dfaDead && b > 0 && !overflow {
		stepDown()
	}
	w.Release()
	if overflow {
		return false
	}
	flush()
	// Windows were produced right to left; evaluation wants document
	// order (it also keeps checkpoint replay cache-friendly).
	for i, j := 0, len(ws.windows)-1; i < j; i, j = i+1, j-1 {
		ws.windows[i], ws.windows[j] = ws.windows[j], ws.windows[i]
	}
	return true
}

// windowScratch holds the per-evaluation buffers of the localizer. Eval
// is called concurrently by the worker pools on a shared automaton, so
// scratch is pooled (sync.Pool) rather than cached on the automaton:
// concurrent windows share nothing but the frozen programs.
type windowScratch struct {
	checkpoints []int32
	ends        []int32 // candidate match-end boundaries, as [lo, hi) runs
	windows     []window
	seed        []int32
	finalsAtEnd bool
	// skippedBytes counts bytes the forward pass jumped over via the
	// literal-prefilter skip loop; flushed into EvalMetrics by EvalAppend.
	skippedBytes int
}

var windowPool = sync.Pool{New: func() any { return new(windowScratch) }}

func sortInt32s(xs []int32) {
	// Subsets are tiny (frontier-sized); insertion sort beats sort.Slice
	// and allocates nothing.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
