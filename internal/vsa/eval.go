package vsa

import (
	"encoding/binary"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/alphabet"
	"repro/internal/span"
)

// partial is an in-progress variable assignment during evaluation:
// two int32 slots per variable (open position, close position), 0 = unset.
// Positions are the paper's 1-based span endpoints.
type partial []int32

func (p partial) apply(ops OpSet, boundary int, numVars int) partial {
	if ops == 0 {
		return p
	}
	out := make(partial, len(p))
	copy(out, p)
	for v := 0; v < numVars; v++ {
		if ops.OpensVar(v) {
			out[2*v] = int32(boundary + 1)
		}
		if ops.ClosesVar(v) {
			out[2*v+1] = int32(boundary + 1)
		}
	}
	return out
}

// suffixUniversality lazily computes, per state, whether every possible
// suffix is accepted from that state without further variable operations.
// When a completed assignment reaches such a state it can be emitted
// immediately and dropped, which keeps evaluation linear for the common
// "prefix · extraction · Σ*" spanner shape instead of carrying every
// completed tuple to the end of the document. Computing it freezes the
// automaton (see AddEdge).
func (a *Automaton) suffixUniversality() []bool {
	a.suffixOnce.Do(func() {
		a.frozen.Store(true)
		a.suffixUni = a.computeSuffixUniversality()
	})
	return a.suffixUni
}

// SuffixUniversal exposes the per-state suffix-universality vector to
// other packages (core's compiled splitter scanner uses it as its
// committed-emission test: a close into a suffix-universal state is in
// the output regardless of what the rest of the stream brings). The
// analysis is sound but bounded — it may report false for a state that
// is in fact universal, never the reverse — and callers must treat the
// returned slice as read-only. Calling it freezes the automaton.
func (a *Automaton) SuffixUniversal() []bool { return a.suffixUniversality() }

func (a *Automaton) computeSuffixUniversality() []bool {
	// The zero-ops sub-NFA: per state, edges with no variable operations;
	// finals are states accepting with the empty final set.
	finals := make([]bool, len(a.States))
	for q, st := range a.States {
		for _, f := range st.Finals {
			if f == 0 {
				finals[q] = true
			}
		}
	}
	key := func(set []int) string {
		parts := make([]string, len(set))
		for i, q := range set {
			parts[i] = strconv.Itoa(q)
		}
		return strings.Join(parts, ",")
	}
	type expansion struct {
		good  bool
		succs [][]int
	}
	cache := map[string]*expansion{}
	expand := func(set []int) *expansion {
		k := key(set)
		if e, ok := cache[k]; ok {
			return e
		}
		e := &expansion{}
		var classes []alphabet.Class
		hasFinal := false
		for _, q := range set {
			if finals[q] {
				hasFinal = true
			}
			for _, ed := range a.States[q].Edges {
				if ed.Ops == 0 {
					classes = append(classes, ed.Class)
				}
			}
		}
		// Locally good: accepting here, and able to consume any byte.
		e.good = hasFinal && alphabet.CoversAll(classes)
		if e.good {
			for _, atom := range alphabet.Atoms(classes) {
				succ := map[int]bool{}
				for _, q := range set {
					for _, ed := range a.States[q].Edges {
						if ed.Ops == 0 && ed.Class.ContainsClass(atom) {
							succ[ed.To] = true
						}
					}
				}
				next := make([]int, 0, len(succ))
				for q := range succ {
					next = append(next, q)
				}
				sort.Ints(next)
				e.succs = append(e.succs, next)
			}
		}
		cache[k] = e
		return e
	}
	const maxSets = 256 // exploration bound per state; exceeding it is sound (just slower)
	out := make([]bool, len(a.States))
	for q := range a.States {
		seen := map[string]bool{}
		queue := [][]int{{q}}
		seen[key(queue[0])] = true
		universal := true
		for len(queue) > 0 && universal {
			set := queue[0]
			queue = queue[1:]
			e := expand(set)
			if !e.good {
				universal = false
				break
			}
			for _, succ := range e.succs {
				k := key(succ)
				if !seen[k] {
					if len(seen) >= maxSets {
						universal = false
						break
					}
					seen[k] = true
					queue = append(queue, succ)
				}
			}
		}
		out[q] = universal
	}
	return out
}

// Eval computes the span relation ⟦a⟧(d) on the compiled evaluation core
// (see dfa.go and window.go). The bidirectional match-window localizer
// first bounds where matches can live: a forward byte-class DFA pass
// finds every boundary where a match can complete (subsuming the old
// EvalBool prescan — a document with no such boundary is rejected in the
// same single pass), and a backward pass over the reversed core automaton
// narrows each to the earliest boundary where that match can start. The
// expensive tagged frontier simulation — byte-class-indexed transition
// lists, arena-backed assignments, versioned open-addressing dedup — then
// runs only inside the resulting [start, end) windows, seeded with the
// exact pre-core frontier and with positions kept in document
// coordinates, so results are byte-identical to whole-document
// evaluation. When localization does not apply (nullary automata, no
// per-state status, DFA state-bound overflow) Eval falls back to the
// whole-document path: DFA prescan plus full tagged simulation.
// EvalReference retains the map-based simulation all of this replaced;
// fuzzing asserts the two agree.
func (a *Automaton) Eval(doc string) *span.Relation {
	rel := span.NewRelation(a.Vars...)
	a.EvalAppend(doc, span.Span{Start: 1, End: len(doc) + 1}, rel, nil)
	rel.Dedupe()
	return rel
}

// EvalAppend is the accumulator form of Eval used by the work-stealing
// split-evaluation executor: it evaluates a on doc — the same localized,
// compiled-core pipeline as Eval — and appends every result tuple,
// shifted by the span `by` (interpreting doc as the substring of an
// enclosing document that `by` selects, exactly Relation.ShiftAll's
// convention; pass [1, len(doc)+1⟩ for no shift), to rel. Tuple storage
// is carved from arena when it is non-nil, so a worker evaluating many
// segments into one per-worker accumulator performs no per-segment
// relation or per-tuple allocation.
//
// rel must have been created over a.Vars. Duplicate tuples arising
// within this one evaluation are suppressed, but rel is NOT deduplicated
// or sorted against tuples appended by earlier calls — callers that
// merge several segments must Dedupe once at the end, which also
// restores the canonical order Eval guarantees.
func (a *Automaton) EvalAppend(doc string, by span.Span, rel *span.Relation, arena *span.TupleArena) {
	if len(rel.Vars) != len(a.Vars) {
		panic("vsa: EvalAppend relation arity does not match automaton arity")
	}
	// m is nil for uninstrumented automata and for sub-window-scale
	// documents (see MetricsMinDocBytes): on those, instrumentation is
	// one atomic pointer load and a length compare.
	m := a.metricsFor(doc)
	var t0 time.Time
	if m != nil {
		m.Evals.Inc()
		m.DocBytes.Add(uint64(len(doc)))
		t0 = time.Now()
	}
	if pf := a.prefilter().info; pf.Factor != "" || m != nil {
		if m != nil {
			m.PrefilterDisabled[pf.Reason].Inc()
		}
		if pf.Factor != "" && !strings.Contains(doc, pf.Factor) {
			// Mandatory-factor admission gate: every accepted document
			// contains pf.Factor (see prefilter.go), and the automaton is
			// functional, so a document without it has an empty relation.
			// One vectorized substring search replaces the whole scan.
			if m != nil {
				m.PrefilterSkippedBytes.Add(uint64(len(doc)))
				m.LocalizeNS.AddDuration(time.Since(t0))
				m.EmptyDocs.Inc()
			}
			return
		}
		if m != nil {
			m.PrefilterCandidates.Inc()
		}
	}
	p := a.prog()
	delta := by.Start - 1
	if loc := a.localizer(); loc.ok {
		ws := windowPool.Get().(*windowScratch)
		defer windowPool.Put(ws)
		if loc.scan.forward(p, doc, ws) {
			if m != nil && ws.skippedBytes > 0 {
				m.PrefilterSkippedBytes.Add(uint64(ws.skippedBytes))
			}
			if len(ws.ends) == 0 && !ws.finalsAtEnd {
				// No boundary where a match can complete: ⟦a⟧(d) = ∅,
				// and the simulation machinery was never touched.
				if m != nil {
					m.LocalizeNS.AddDuration(time.Since(t0))
					m.EmptyDocs.Inc()
				}
				return
			}
			if loc.narrow(p, doc, ws) {
				if m != nil {
					now := time.Now()
					m.LocalizeNS.AddDuration(now.Sub(t0))
					t0 = now
					m.Windows.Add(uint64(len(ws.windows)))
					var wb uint64
					for _, w := range ws.windows {
						wb += uint64(w.hi - w.lo)
					}
					m.WindowBytes.Add(wb)
				}
				run := newEvalRun(a, p, rel, doc, delta, arena)
				defer run.release()
				for _, w := range ws.windows {
					seed := loc.seedAt(p, doc, w.lo, ws)
					run.window(w.lo, w.hi, seed, w.hi == len(doc))
				}
				if m != nil {
					m.SimNS.AddDuration(time.Since(t0))
				}
				return
			}
		}
	}
	if m != nil {
		// Whatever was spent attempting localization before falling back
		// is still localization time; the rest of the call is simulation.
		now := time.Now()
		m.LocalizeNS.AddDuration(now.Sub(t0))
		t0 = now
		m.Fallbacks.Inc()
	}
	// Fallback: ⟦a⟧(d) = ∅ iff no accepting run exists; the DFA decides
	// that without touching the assignment machinery.
	if !a.EvalBool(doc) {
		if m != nil {
			m.SimNS.AddDuration(time.Since(t0))
		}
		return
	}
	run := newEvalRun(a, p, rel, doc, delta, arena)
	defer run.release()
	run.window(0, len(doc), nil, true)
	if m != nil {
		m.SimNS.AddDuration(time.Since(t0))
	}
}

// evalRun bundles the per-evaluation state shared by every window of one
// Eval call: the frozen program, the pooled scratch, the result relation
// and the cross-window tuple dedup. Bundling it into one struct keeps the
// per-window hot path free of closure allocations.
type evalRun struct {
	a      *Automaton
	p      *evalProg
	sc     *evalScratch
	rel    *span.Relation
	arena  *span.TupleArena // nil: tuples are individually allocated
	doc    string
	stride int
	delta  int // added to every emitted position (EvalAppend's shift)
}

// newEvalRun returns the run by value so that the per-segment hot path
// (EvalAppend on thousands of small segments) keeps it on the stack.
func newEvalRun(a *Automaton, p *evalProg, rel *span.Relation, doc string, delta int, arena *span.TupleArena) evalRun {
	sc := scratchPool.Get().(*evalScratch)
	stride := 2 * p.nv
	if cap(sc.tmp) < stride {
		sc.tmp = make([]int32, stride)
	}
	// clear() costs O(buckets), and a pooled map keeps the bucket array
	// of its largest-ever use: after one tuple-heavy evaluation, clearing
	// per call would tax every later small evaluation (57k segment evals
	// each sweeping a 12k-tuple map's buckets). Maps that grew past the
	// threshold are dropped instead, so surviving maps are always cheap
	// to clear.
	if sc.seen == nil || len(sc.seen) > 256 {
		sc.seen = make(map[string]bool)
	} else {
		clear(sc.seen)
	}
	if cap(sc.emitBuf) < 4*stride {
		sc.emitBuf = make([]byte, 4*stride)
	}
	return evalRun{a: a, p: p, sc: sc, rel: rel, arena: arena, doc: doc, stride: stride, delta: delta}
}

func (r *evalRun) release() { scratchPool.Put(r.sc) }

// emit deduplicates and materializes one result tuple. Windows are
// disjoint, but two runs of the same tuple may complete in different
// windows; the byte-keyed map catches repeats before they allocate.
func (r *evalRun) emit(pt []int32) {
	buf := r.sc.emitBuf[:4*r.stride]
	for i, v := range pt {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	k := string(buf)
	if r.sc.seen[k] {
		return
	}
	r.sc.seen[k] = true
	nv := r.p.nv
	var t span.Tuple
	if r.arena != nil {
		t = r.arena.Tuple(nv)
	} else {
		t = make(span.Tuple, nv)
	}
	for v := 0; v < nv; v++ {
		t[v] = span.Span{Start: int(pt[2*v]) + r.delta, End: int(pt[2*v+1]) + r.delta}
	}
	r.rel.Tuples = append(r.rel.Tuples, t)
}

// place adds a frontier cell, emitting immediately (and dropping the
// cell) when the assignment is complete in a suffix-universal state —
// the emit states of the localizer's forward scan.
func (r *evalRun) place(state int32, pt []int32) {
	if r.p.uni[state] && completePartial(pt) {
		r.emit(pt)
		return
	}
	r.sc.place(state, pt, r.stride)
}

// window runs the tagged frontier simulation over doc[lo:hi]. The
// frontier is seeded at boundary lo with the given states (nil means the
// automaton's start state) and the all-unset assignment; positions are
// document-absolute throughout. Final operation sets apply only when the
// range ends at the document end (atDocEnd); an earlier window simply
// discards its residual frontier — runs completing beyond the window are
// covered by the window of their own completion boundary.
func (r *evalRun) window(lo, hi int, seed []int32, atDocEnd bool) {
	p, sc, stride := r.p, r.sc, r.stride
	sc.cur, sc.next = sc.cur[:0], sc.next[:0]
	sc.curA, sc.nextA = sc.curA[:0], sc.nextA[:0]
	tmp := sc.tmp[:stride]
	for i := range tmp {
		tmp[i] = 0
	}
	if seed == nil {
		sc.resetTable(1)
		r.place(int32(r.a.Start), tmp)
	} else {
		sc.resetTable(len(seed))
		for _, q := range seed {
			r.place(q, tmp)
		}
	}
	sc.cur, sc.next = sc.next, sc.cur
	sc.curA, sc.nextA = sc.nextA, sc.curA

	nc := p.nclasses
	doc := r.doc
	for pos := lo; pos < hi && len(sc.cur) > 0; pos++ {
		c := int(p.classOf[doc[pos]])
		sc.next = sc.next[:0]
		sc.nextA = sc.nextA[:0]
		sc.resetTable(len(sc.cur))
		for _, cell := range sc.cur {
			src := sc.curA[cell.off : int(cell.off)+stride]
			for _, e := range p.succ[int(cell.state)*nc+c] {
				if e.ops == 0 {
					r.place(e.to, src)
				} else {
					copy(tmp, src)
					applyOps(tmp, e.ops, pos)
					r.place(e.to, tmp)
				}
			}
		}
		sc.cur, sc.next = sc.next, sc.cur
		sc.curA, sc.nextA = sc.nextA, sc.curA
	}
	if !atDocEnd {
		return
	}
	for _, cell := range sc.cur {
		src := sc.curA[cell.off : int(cell.off)+stride]
		for _, f := range p.finals[cell.state] {
			if f == 0 {
				r.emit(src)
				continue
			}
			copy(tmp, src)
			applyOps(tmp, f, len(doc))
			r.emit(tmp)
		}
	}
}

// EvalReference is the retained reference implementation of Eval: a direct
// NFA simulation with a string-keyed frontier, kept verbatim from before
// the compiled evaluation core so that fuzzing and the benchmark suite can
// compare the two paths. Semantics are identical to Eval.
func (a *Automaton) EvalReference(doc string) *span.Relation {
	nv := len(a.Vars)
	rel := span.NewRelation(a.Vars...)
	type cell struct {
		state int
		p     partial
	}
	keyBuf := make([]byte, 4+8*nv)
	cellKey := func(c cell) string {
		binary.LittleEndian.PutUint32(keyBuf, uint32(c.state))
		for i, v := range c.p {
			binary.LittleEndian.PutUint32(keyBuf[4+4*i:], uint32(v))
		}
		return string(keyBuf)
	}
	uni := a.suffixUniversality()
	emitted := map[string]bool{}
	emitTuple := func(p partial) {
		t := make(span.Tuple, nv)
		for v := 0; v < nv; v++ {
			t[v] = span.Span{Start: int(p[2*v]), End: int(p[2*v+1])}
		}
		k := t.Key()
		if !emitted[k] {
			emitted[k] = true
			rel.Tuples = append(rel.Tuples, t)
		}
	}
	complete := func(p partial) bool {
		for _, v := range p {
			if v == 0 {
				return false
			}
		}
		return true
	}
	cur := map[string]cell{}
	place := func(c cell, dst map[string]cell) {
		if uni[c.state] && complete(c.p) {
			emitTuple(c.p)
			return
		}
		dst[cellKey(c)] = c
	}
	place(cell{a.Start, make(partial, 2*nv)}, cur)
	emit := func(c cell, boundary int) {
		for _, f := range a.States[c.state].Finals {
			emitTuple(c.p.apply(f, boundary, nv))
		}
	}
	for pos := 0; pos < len(doc); pos++ {
		b := doc[pos]
		next := make(map[string]cell, len(cur))
		for _, c := range cur {
			for _, e := range a.States[c.state].Edges {
				if !e.Class.Has(b) {
					continue
				}
				place(cell{e.To, c.p.apply(e.Ops, pos, nv)}, next)
			}
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	for _, c := range cur {
		emit(c, len(doc))
	}
	rel.Dedupe()
	return rel
}

// EvalBoolReference is the retained reference implementation of EvalBool:
// a plain map-based state-set simulation, kept for differential testing
// against the lazy-DFA path.
func (a *Automaton) EvalBoolReference(doc string) bool {
	cur := map[int]bool{a.Start: true}
	for pos := 0; pos < len(doc); pos++ {
		b := doc[pos]
		next := map[int]bool{}
		for q := range cur {
			for _, e := range a.States[q].Edges {
				if e.Class.Has(b) {
					next[e.To] = true
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			return false
		}
	}
	for q := range cur {
		if len(a.States[q].Finals) > 0 {
			return true
		}
	}
	return false
}
