package vsa

import (
	"sync/atomic"

	"repro/internal/obs"
)

// MetricsMinDocBytes is the smallest document an instrumented
// evaluation times. Below it the two clock reads that separate the
// localize and simulation phases would cost a measurable fraction of
// the evaluation itself (a sentence-sized segment evaluates in about a
// microsecond; the split executor runs tens of thousands of them per
// document), so small evaluations skip the stopwatch entirely — their
// time is still fully accounted by the executor's per-chunk timers,
// just not attributed to sub-phases.
const MetricsMinDocBytes = 4 << 10

// EvalMetrics collects the window localizer's share of evaluation work
// across every instrumented evaluation of an automaton (see
// Automaton.SetEvalMetrics). All fields are cumulative and lock-free;
// recording is a handful of uncontended atomic adds per instrumented
// (≥ MetricsMinDocBytes) evaluation and exactly zero work — one nil
// check — per small one.
type EvalMetrics struct {
	// Evals counts instrumented evaluations; DocBytes their input size.
	Evals    obs.Counter
	DocBytes obs.Counter
	// LocalizeNS and SimNS split an instrumented evaluation's wall time
	// into the bidirectional window localization (forward end scan +
	// backward narrowing) and the tagged frontier simulation inside the
	// windows. Their sum over Evals is the evaluation stage's
	// instrumented wall time.
	LocalizeNS obs.Counter
	SimNS      obs.Counter
	// Windows and WindowBytes measure how much document the simulation
	// actually had to touch; EmptyDocs counts evaluations the forward
	// scan rejected outright (no candidate match end — the simulation
	// never ran); Fallbacks counts evaluations that took the
	// whole-document path (no localizer, or DFA overflow).
	Windows     obs.Counter
	WindowBytes obs.Counter
	EmptyDocs   obs.Counter
	Fallbacks   obs.Counter
	// PrefilterSkippedBytes counts document bytes the literal prefilter
	// let evaluation avoid: whole documents rejected by the mandatory-
	// factor admission gate plus bytes the forward scan's trigger-byte
	// skip loop jumped over. PrefilterCandidates counts instrumented
	// evaluations that survived the admission gate and went on to scan
	// (on factor-less automata every evaluation is a candidate).
	PrefilterSkippedBytes obs.Counter
	PrefilterCandidates   obs.Counter
	// PrefilterDisabled counts instrumented evaluations per prefilter
	// admission-gate status, indexed by PrefilterReason. Index
	// PrefilterOK means the gate is armed with a factor; the other
	// indexes say why no factor gate applies (the trigger-byte skip loop
	// still runs unless the reason is PrefilterOff).
	PrefilterDisabled [NumPrefilterReasons]obs.Counter
}

// SetEvalMetrics attaches a metrics collector to the automaton: every
// later Eval/EvalAppend of a document of at least MetricsMinDocBytes
// records its localize/simulate split and window statistics into m.
// Attaching nil detaches. Unlike the evaluation caches this is not part
// of the frozen compiled state — it may be set at any time (the engine
// attaches its collector to plans as they are compiled) and is read
// with a single atomic load on the evaluation path.
func (a *Automaton) SetEvalMetrics(m *EvalMetrics) {
	a.evalMetrics.Store(m)
}

// metricsFor returns the collector to record this evaluation into, or
// nil when the evaluation is too small to time (or none is attached).
func (a *Automaton) metricsFor(doc string) *EvalMetrics {
	if len(doc) < MetricsMinDocBytes {
		return nil
	}
	return a.evalMetrics.Load()
}

// evalMetricsPtr wraps the atomic pointer so Automaton's field list
// stays readable.
type evalMetricsPtr = atomic.Pointer[EvalMetrics]
