package engine

import (
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/span"
)

// docSegmenter applies a splitter incrementally to a document arriving
// as chunks, so that segments are dispatched to the work-stealing
// split-evaluation executor while the rest of the document is still
// being read. Two implementations exist:
//
//   - scanSegmenter, the default: the splitter's compiled one-pass
//     scanner (core.ScanRun) consumes each chunk exactly once, resuming
//     from a saved DFA state — O(n) total segmentation work;
//   - segmenter, the fallback: re-runs Split on the buffered suffix
//     after each chunk — O(buffer × chunks) worst case. Used when the
//     splitter has no compiled scanner and from the point where a
//     scanner bails mid-document.
//
// buffered reports the retained carry-over in bytes, for the
// Config.MaxDocBuffer bound.
type docSegmenter interface {
	feed(chunk []byte) []parallel.Segment
	flush() []parallel.Segment
	buffered() int
}

// newDocSegmenter picks the scanner-backed segmenter when the plan's
// splitter compiled one (every disjoint splitter the scanner's
// committed-emission analysis covers), the re-splitting fallback
// otherwise. Both are licensed by the same streaming precondition
// (WillStream): disjointness plus proven or asserted locality.
func (e *Engine) newDocSegmenter(plan *Plan) docSegmenter {
	if g, ok := newScanSegmenter(plan.s, e.m); ok {
		return g
	}
	g := newSegmenter(plan.s)
	g.m = e.m
	return g
}

// scanSegmenter segments a chunked document on the splitter's compiled
// incremental scanner. Each chunk is consumed exactly once; the
// cross-chunk state is the scanner's DFA state id plus the pending-open
// boundary. The buffer retains only the suffix from the scanner's
// Anchor — the start of the last span event — which is exactly what a
// bail fallback needs: an open/wrap boundary is a genuine span start,
// so restarting the re-splitting segmenter there is licensed by the
// same locality property the buffered cut uses. Spans the scanner
// already committed are filtered out of the fallback's output by
// document order.
type scanSegmenter struct {
	run *core.ScanRun
	s   *core.Splitter
	m   *Metrics

	buf []byte // retained document suffix, starting at global offset off
	off int    // 0-based global byte offset of buf[0]

	last  span.Span   // last span emitted by the scanner (fallback dedupe)
	fb    *segmenter  // non-nil once the scanner bailed
	spans []span.Span // scratch for ScanRun.Feed/Flush
}

// newScanSegmenter returns ok=false when the splitter has no compiled
// scanner (it is not disjoint, or its shape defeated the committed-
// emission analysis outright).
func newScanSegmenter(s *core.Splitter, m *Metrics) (*scanSegmenter, bool) {
	run, ok := s.NewScanRun()
	if !ok {
		return nil, false
	}
	return &scanSegmenter{run: run, s: s, m: m}, true
}

func (g *scanSegmenter) buffered() int {
	if g.fb != nil {
		return g.fb.buffered()
	}
	return len(g.buf)
}

// emit materializes scanner spans (already in absolute document
// coordinates) as segments, slicing their text out of the retained
// buffer.
func (g *scanSegmenter) emit(spans []span.Span) []parallel.Segment {
	if len(spans) == 0 {
		return nil
	}
	out := make([]parallel.Segment, len(spans))
	for i, sp := range spans {
		out[i] = parallel.Segment{Span: sp, Text: string(g.buf[sp.Start-1-g.off : sp.End-1-g.off])}
	}
	g.last = spans[len(spans)-1]
	return out
}

// filter drops fallback segments the scanner already emitted: the
// fallback restarts at Anchor, which can sit at the start of the last
// committed span, so its first Split may re-derive spans at or before
// g.last in document order.
func (g *scanSegmenter) filter(segs []parallel.Segment) []parallel.Segment {
	if g.last.Start == 0 {
		return segs
	}
	out := segs[:0]
	for _, s := range segs {
		if s.Span.Start < g.last.Start || (s.Span.Start == g.last.Start && s.Span.End <= g.last.End) {
			continue
		}
		out = append(out, s)
	}
	return out
}

// bail hands the stream over to the re-splitting fallback, seeded with
// the retained suffix from the scanner's Anchor.
func (g *scanSegmenter) bail() {
	if g.m != nil {
		g.m.segBails.Inc()
	}
	anchor := g.run.Anchor()
	fb := newSegmenter(g.s)
	fb.m = g.m
	fb.off = anchor
	fb.buf = append(fb.buf, g.buf[anchor-g.off:]...)
	fb.fresh = len(fb.buf)
	g.fb = fb
	g.buf = nil
}

func (g *scanSegmenter) feed(chunk []byte) []parallel.Segment {
	if g.fb != nil {
		return g.filter(g.fb.feed(chunk))
	}
	g.buf = append(g.buf, chunk...)
	if g.m != nil {
		g.m.segResumed.Inc()
	}
	spans, ok := g.run.Feed(chunk, g.spans[:0])
	out := g.emit(spans)
	g.spans = spans
	if !ok {
		g.bail()
		return append(out, g.filter(g.fb.feed(nil))...)
	}
	if cut := g.run.Anchor() - g.off; cut > 0 {
		g.off += cut
		n := copy(g.buf, g.buf[cut:])
		g.buf = g.buf[:n]
	}
	return out
}

func (g *scanSegmenter) flush() []parallel.Segment {
	if g.fb != nil {
		return g.filter(g.fb.flush())
	}
	spans, ok := g.run.Flush(g.spans[:0])
	out := g.emit(spans)
	g.spans = spans
	if !ok {
		g.bail()
		out = append(out, g.filter(g.fb.flush())...)
	}
	g.buf = g.buf[:0]
	return out
}

// segmenter is the re-splitting fallback: keep a buffer of the
// not-yet-segmented suffix of the document, run the splitter on the
// whole buffer after each chunk, emit every segment except the last
// (which more input could still extend), and cut the buffer down to the
// held segment's start.
//
// Soundness requires the splitter to be disjoint and local: emitted
// segments must survive any extension of the document, and the
// segmentation of the retained suffix must equal the tail of the
// whole-document segmentation. Whether a disjoint splitter has this
// property is decided on its automaton by core.Splitter.IsLocal; the
// engine computes that verdict at plan compilation and streams
// automatically when it is yes, buffering otherwise.
// Config.StreamIncremental force-overrides a "no"/unknown verdict — the
// operator's unsafe assertion of locality — and a caller that forces a
// genuinely non-local splitter gets the same guarantee ParallelEval
// gives a non-split-correct plan: none. See internal/core/locality.go
// for the decision procedure and the exact property it certifies.
type segmenter struct {
	s   *core.Splitter
	m   *Metrics // nil outside the engine (unit tests)
	buf []byte
	off int // 0-based global byte offset of buf[0]
	// fresh counts buffer bytes the splitter has not seen yet; everything
	// else a Split call scans is a re-scan, charged to the rescanned-
	// bytes counter. The compiled scanner path never re-scans — this
	// counter measures exactly the work the fallback pays over it.
	fresh int
	// minSplit defers the next splitter run until the buffer reaches
	// this length. It doubles whenever a run finds no stable segment, so
	// on input whose segments are much larger than the chunk size the
	// splitter runs on buffer lengths c, 2c, 4c, … — amortized linear
	// total work instead of one full re-scan per chunk. This heuristic
	// (and the O(buffer × chunks) behavior it mitigates) is why the
	// fallback only serves scanner-less splitters and post-bail suffixes;
	// the common path segments in one pass without it.
	minSplit int
}

func newSegmenter(s *core.Splitter) *segmenter {
	return &segmenter{s: s}
}

func (g *segmenter) buffered() int { return len(g.buf) }

// shiftAll converts buffer-relative spans into global document segments.
func (g *segmenter) emit(spans []span.Span) []parallel.Segment {
	if len(spans) == 0 {
		return nil
	}
	doc := string(g.buf)
	by := span.Span{Start: g.off + 1, End: g.off + 1}
	out := make([]parallel.Segment, len(spans))
	for i, sp := range spans {
		out[i] = parallel.Segment{Span: sp.Shift(by), Text: sp.In(doc)}
	}
	return out
}

// split runs the splitter over the whole buffer, charging the re-scanned
// prefix to the metrics.
func (g *segmenter) split() []span.Span {
	if g.m != nil && len(g.buf) > g.fresh {
		g.m.segRescanned.Add(uint64(len(g.buf) - g.fresh))
	}
	g.fresh = 0
	return g.s.Split(string(g.buf))
}

// feed appends a chunk and returns the segments that became stable.
func (g *segmenter) feed(chunk []byte) []parallel.Segment {
	g.buf = append(g.buf, chunk...)
	g.fresh += len(chunk)
	if len(g.buf) < g.minSplit {
		return nil
	}
	spans := g.split()
	if len(spans) < 2 {
		// Zero or one segment: the single segment may still grow; hold
		// everything and back off until the buffer has doubled.
		g.minSplit = 2 * len(g.buf)
		return nil
	}
	g.minSplit = 0
	held := spans[len(spans)-1]
	out := g.emit(spans[:len(spans)-1])
	// Cut the buffer down to the held segment's start. Disjointness
	// guarantees every emitted span ends at or before held.Start, so no
	// emitted text is needed again; locality (proven by the plan's
	// verdict, or asserted via StreamIncremental) guarantees the
	// splitter never needs the bytes before a segment start to segment
	// the suffix.
	cut := held.Start - 1
	g.off += cut
	n := copy(g.buf, g.buf[cut:])
	g.buf = g.buf[:n]
	return out
}

// flush ends the stream: the splitter runs once more on the remaining
// buffer and every remaining segment is emitted. On an empty stream this
// yields exactly S("") — e.g. one empty segment for sentence-like
// splitters — matching one-shot evaluation of the empty document.
func (g *segmenter) flush() []parallel.Segment {
	out := g.emit(g.split())
	g.buf = g.buf[:0]
	return out
}
