package main

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/loadgen"
)

// TestOverloadSmoke runs the overload harness against an in-process
// daemon whose admission capacity is deliberately tiny, so the open
// loop is guaranteed to offer more than the daemon admits. It is the
// CI smoke for the OVERLOAD experiment: the snapshot must come back
// with the declared schema, overload must produce sheds, and every
// shed must honor the 429 + Retry-After contract with no other errors.
func TestOverloadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("overload smoke skipped in -short")
	}
	eng := engine.New(engine.Config{Workers: 4, RequestWorkers: 2})
	lim := admission.New(admission.Config{Tokens: 2, Queue: 2, MaxWait: 20 * time.Millisecond})
	ts := httptest.NewServer(newServerWith(eng, serverConfig{limiter: lim, tenantHeader: "X-Tenant"}))
	defer ts.Close()

	snap := loadgen.RunOverload(loadgen.OverloadConfig{
		Target:           ts.URL,
		BaselineDuration: 300 * time.Millisecond,
		RateDuration:     700 * time.Millisecond,
		Rates:            []float64{3},
		Client:           ts.Client(),
	})

	if snap.Experiment != "OVERLOAD" {
		t.Fatalf("experiment = %q, want OVERLOAD", snap.Experiment)
	}
	if snap.GoVersion == "" || snap.NumCPU <= 0 || snap.Target != ts.URL {
		t.Fatalf("snapshot header incomplete: %+v", snap)
	}
	if snap.SingleConn.Requests == 0 || snap.SingleConn.Errors != 0 || snap.SingleConn.P99MS <= 0 {
		t.Fatalf("single-conn baseline unusable: %+v", snap.SingleConn)
	}
	if snap.Capacity.ReqPerS <= 0 {
		t.Fatalf("capacity baseline unusable: %+v", snap.Capacity)
	}
	if len(snap.Rates) != 1 {
		t.Fatalf("rates = %d rows, want 1", len(snap.Rates))
	}
	r := snap.Rates[0]
	if r.Offered == 0 || r.OK == 0 {
		t.Fatalf("overload row empty: %+v", r)
	}
	if r.Shed == 0 {
		t.Fatalf("offered 3x capacity against 2 tokens but nothing was shed: %+v", r)
	}
	if r.ShedBad != 0 {
		t.Fatalf("%d sheds missing Retry-After: %+v", r.ShedBad, r)
	}
	if r.Errors != 0 {
		t.Fatalf("%d non-429 errors under overload: %+v", r.Errors, r)
	}
	if r.AdmittedP99MS <= 0 {
		t.Fatalf("no admitted latency recorded: %+v", r)
	}
}
