// Package obs is the dependency-free metrics core the serving stack is
// instrumented with: atomic counters and gauges, lock-free log₂-bucketed
// histograms with mergeable snapshots, and a registry that renders
// everything in the Prometheus text exposition format.
//
// The design constraint is the hot path: instrumentation lives inside
// the evaluation pipeline (per request, per executor chunk, per large
// evaluation), so recording must be a handful of uncontended atomic adds
// — no locks, no allocation, no map lookups. Metric objects are plain
// structs usable from their zero value; the registry only binds names to
// them for export and never sits on the recording path. Snapshots are
// value types: reading a histogram produces a consistent-enough copy
// (each bucket is read atomically; the histogram is monotonic, so a
// concurrent recording can at worst straddle count and one bucket by a
// single observation), and snapshots merge by addition, which is what
// lets per-worker or per-engine histograms aggregate into one view.
package obs

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// AddDuration accumulates a wall-time duration (clamped at zero) —
// counters that sum nanoseconds back cumulative stage-time shares.
func (c *Counter) AddDuration(d time.Duration) {
	if d > 0 {
		c.v.Add(uint64(d))
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, in-flight
// requests). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc and Dec bracket an in-flight section.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set overwrites the gauge.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Max raises the gauge to n if n is larger — a lock-free high-water
// mark.
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
