package engine

import (
	"io"
	"time"
)

// stallReader enforces a read-progress timeout on a document stream.
// Before it existed, ExtractReader on a stalled request body (a client
// that opened a streamed upload and then went silent without closing
// the connection) blocked its producer goroutine in Read indefinitely
// and — worse — held an admission token and the request's executor
// workers with it. stallReader turns a stall into a prompt, typed
// ErrReadStalled (the daemon maps it to HTTP 408), which unwinds the
// whole request: the producer reports the error, the dispatch channel
// closes, and the workers move on.
//
// An arbitrary io.Reader cannot be interrupted mid-Read, so the
// underlying reads run on a pump goroutine and the consumer waits for
// either data or the timeout. The pump rotates three fixed buffers
// (see pump for why three) — the consumer's unconsumed remainder is
// never overwritten, and steady-state operation allocates nothing. On a
// timeout the pump goroutine stays parked in the underlying Read until
// that read returns (for an HTTP body, when the server tears the
// request down); it then exits without touching the consumer again.
type stallReader struct {
	r       io.Reader
	timeout time.Duration

	res     chan stallChunk // pump → consumer, capacity 1 (one chunk of readahead)
	started bool
	stalled bool // sticky: once timed out, every Read fails

	cur  stallChunk // chunk currently being consumed
	off  int        // consumed prefix of cur.data
	done bool       // cur.err was delivered; underlying stream is finished
}

type stallChunk struct {
	data []byte
	err  error
}

// newStallReader wraps r; timeout must be positive.
func newStallReader(r io.Reader, timeout time.Duration) *stallReader {
	return &stallReader{r: r, timeout: timeout, res: make(chan stallChunk, 1)}
}

// pump owns the underlying reader, rotating through three buffers.
// Three, not two: at any instant the consumer may hold chunk k, the
// capacity-1 channel chunk k+1, and the pump is reading chunk k+2 — so
// buffer k is reusable only at chunk k+3. The channel provides the
// proof: the send of chunk k+2 completes only after the consumer took
// chunk k+1, and the consumer takes a chunk only after it exhausted the
// previous one, so by the time the pump starts chunk k+3 the consumer's
// last read of buffer k happened-before it.
func (s *stallReader) pump() {
	const bufSize = 64 << 10
	bufs := [3][]byte{make([]byte, bufSize), make([]byte, bufSize), make([]byte, bufSize)}
	for i := 0; ; i = (i + 1) % 3 {
		n, err := s.r.Read(bufs[i])
		s.res <- stallChunk{data: bufs[i][:n], err: err}
		if err != nil {
			return
		}
	}
}

// Read serves buffered bytes first, then waits up to the timeout for
// the pump's next chunk. A chunk's data and error are delivered in
// order (data first), matching io.Reader semantics.
func (s *stallReader) Read(p []byte) (int, error) {
	if s.stalled {
		return 0, ErrReadStalled
	}
	if !s.started {
		s.started = true
		go s.pump()
	}
	for s.off == len(s.cur.data) {
		if s.done {
			return 0, s.cur.err
		}
		if s.cur.err != nil {
			s.done = true
			return 0, s.cur.err
		}
		timer := time.NewTimer(s.timeout)
		select {
		case c := <-s.res:
			timer.Stop()
			s.cur, s.off = c, 0
		case <-timer.C:
			s.stalled = true
			return 0, ErrReadStalled
		}
	}
	n := copy(p, s.cur.data[s.off:])
	s.off += n
	return n, nil
}
