package regexformula

import (
	"fmt"
	"strconv"

	"repro/internal/alphabet"
)

// Parse parses the textual regex-formula syntax described in the package
// comment.
func Parse(src string) (Node, error) {
	p := &parser{src: src}
	n, err := p.alternation()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("regexformula: unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	return n, nil
}

// MustParse is Parse for statically known formulas; it panics on error.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("regexformula: %s (offset %d in %q)", fmt.Sprintf(format, args...), p.pos, p.src)
}

func (p *parser) peek() (byte, bool) {
	if p.pos < len(p.src) {
		return p.src[p.pos], true
	}
	return 0, false
}

func (p *parser) alternation() (Node, error) {
	var items []Node
	for {
		n, err := p.concat()
		if err != nil {
			return nil, err
		}
		items = append(items, n)
		if c, ok := p.peek(); ok && c == '|' {
			p.pos++
			continue
		}
		break
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return Alt{items}, nil
}

func (p *parser) concat() (Node, error) {
	var items []Node
	for {
		c, ok := p.peek()
		if !ok || c == '|' || c == ')' || c == '}' {
			break
		}
		n, err := p.factor()
		if err != nil {
			return nil, err
		}
		items = append(items, n)
	}
	switch len(items) {
	case 0:
		return Epsilon{}, nil
	case 1:
		return items[0], nil
	}
	return Cat{items}, nil
}

func (p *parser) factor() (Node, error) {
	n, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		c, ok := p.peek()
		if !ok {
			break
		}
		switch c {
		case '*':
			p.pos++
			n = Star{n}
		case '+':
			p.pos++
			n = Cat{[]Node{n, Star{n}}}
		case '?':
			p.pos++
			n = Alt{[]Node{n, Epsilon{}}}
		default:
			return n, nil
		}
	}
	return n, nil
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func (p *parser) atom() (Node, error) {
	c, ok := p.peek()
	if !ok {
		return nil, p.errf("unexpected end of formula")
	}
	switch c {
	case '(':
		p.pos++
		n, err := p.alternation()
		if err != nil {
			return nil, err
		}
		if c, ok := p.peek(); !ok || c != ')' {
			return nil, p.errf("missing ')'")
		}
		p.pos++
		return n, nil
	case '.':
		p.pos++
		return Lit{alphabet.Any}, nil
	case '[':
		return p.charClass()
	case '\\':
		cls, err := p.escape()
		if err != nil {
			return nil, err
		}
		return Lit{cls}, nil
	case '*', '+', '?', '|', ')', '{', '}':
		return nil, p.errf("unexpected %q", c)
	}
	// A maximal identifier immediately followed by '{' is a capture
	// variable; otherwise the run is a sequence of literal bytes.
	if isIdentByte(c) {
		end := p.pos
		for end < len(p.src) && isIdentByte(p.src[end]) {
			end++
		}
		if end < len(p.src) && p.src[end] == '{' {
			name := p.src[p.pos:end]
			p.pos = end + 1
			inner, err := p.alternation()
			if err != nil {
				return nil, err
			}
			if c, ok := p.peek(); !ok || c != '}' {
				return nil, p.errf("missing '}' for capture %s", name)
			}
			p.pos++
			return Capture{name, inner}, nil
		}
	}
	p.pos++
	return Lit{alphabet.Of(c)}, nil
}

func (p *parser) escape() (alphabet.Class, error) {
	p.pos++ // consume backslash
	c, ok := p.peek()
	if !ok {
		return alphabet.Empty, p.errf("dangling backslash")
	}
	p.pos++
	switch c {
	case 'n':
		return alphabet.Of('\n'), nil
	case 't':
		return alphabet.Of('\t'), nil
	case 'r':
		return alphabet.Of('\r'), nil
	case 'd':
		return alphabet.Range('0', '9'), nil
	case 'w':
		cls := alphabet.Range('a', 'z').Union(alphabet.Range('A', 'Z')).Union(alphabet.Range('0', '9'))
		cls.Add('_')
		return cls, nil
	case 's':
		return alphabet.Of(' ', '\t', '\n', '\r', '\f', '\v'), nil
	case 'x':
		if p.pos+2 > len(p.src) {
			return alphabet.Empty, p.errf("truncated \\x escape")
		}
		v, err := strconv.ParseUint(p.src[p.pos:p.pos+2], 16, 8)
		if err != nil {
			return alphabet.Empty, p.errf("bad \\x escape: %v", err)
		}
		p.pos += 2
		return alphabet.Of(byte(v)), nil
	}
	return alphabet.Of(c), nil
}

func (p *parser) charClass() (Node, error) {
	p.pos++ // consume '['
	negate := false
	if c, ok := p.peek(); ok && c == '^' {
		negate = true
		p.pos++
	}
	var cls alphabet.Class
	for {
		c, ok := p.peek()
		if !ok {
			return nil, p.errf("missing ']'")
		}
		if c == ']' {
			p.pos++
			break
		}
		var lo alphabet.Class
		if c == '\\' {
			var err error
			lo, err = p.escape()
			if err != nil {
				return nil, err
			}
			cls = cls.Union(lo)
			continue
		}
		p.pos++
		if n, ok2 := p.peek(); ok2 && n == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++
			hi, _ := p.peek()
			if hi == '\\' {
				return nil, p.errf("escape not allowed as range end")
			}
			p.pos++
			if hi < c {
				return nil, p.errf("inverted range %c-%c", c, hi)
			}
			cls = cls.Union(alphabet.Range(c, hi))
		} else {
			cls.Add(c)
		}
	}
	if negate {
		cls = cls.Complement()
	}
	return Lit{cls}, nil
}
