// Package parallel implements the split-then-distribute evaluation that
// motivates the paper (Section 1): once a spanner is known to be
// split-correct for a splitter, it can be evaluated on the splitter's
// segments in parallel (or the segments can be scheduled as many small
// tasks), and the shifted union of the results equals the direct
// evaluation. The engine is a fixed worker pool over a segment channel,
// in the style of Effective Go's parallelization idiom.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/span"
	"repro/internal/vsa"
)

// Sequential evaluates p directly on the document.
func Sequential(p *vsa.Automaton, doc string) *span.Relation {
	return p.Eval(doc)
}

// Segment is a unit of split work: a span of the original document (or of
// the virtual concatenation of a collection) and its text.
type Segment struct {
	Span span.Span
	Text string
}

// SegmentsOf adapts pre-computed spans of doc into work units.
func SegmentsOf(doc string, spans []span.Span) []Segment {
	out := make([]Segment, len(spans))
	for i, sp := range spans {
		out[i] = Segment{sp, sp.In(doc)}
	}
	return out
}

// Options configures the context-aware split evaluators.
type Options struct {
	// Workers is the size of the worker pool; ≤ 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Batch is the number of segments grouped into one dispatched task,
	// amortizing scheduling overhead on segment-heavy splitters
	// (N-grams, tokens); ≤ 0 means 1 (one segment per task).
	Batch int
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o Options) batch() int {
	if o.Batch <= 0 {
		return 1
	}
	return o.Batch
}

// SplitEval evaluates ps on every segment using the given number of
// workers and returns the shifted, deduplicated union — the spanner
// (P_S ∘ S)(d) when the segments come from S. workers ≤ 0 means
// runtime.GOMAXPROCS(0).
func SplitEval(ps *vsa.Automaton, segments []Segment, workers int) *span.Relation {
	rel, _ := SplitEvalCtx(context.Background(), ps, segments, Options{Workers: workers})
	return rel
}

// SplitEvalCtx is SplitEval with cancellation and batching: it stops
// dispatching segments as soon as ctx is cancelled and returns ctx's
// error together with whatever partial relation had been merged. With a
// never-cancelled context the result equals SplitEval's.
func SplitEvalCtx(ctx context.Context, ps *vsa.Automaton, segments []Segment, opts Options) (*span.Relation, error) {
	batch := opts.batch()
	batches := make(chan []Segment, opts.workers())
	go func() {
		defer close(batches)
		for lo := 0; lo < len(segments); lo += batch {
			hi := lo + batch
			if hi > len(segments) {
				hi = len(segments)
			}
			select {
			case batches <- segments[lo:hi]:
			case <-ctx.Done():
				return
			}
		}
	}()
	return SplitEvalBatches(ctx, ps, batches, opts.Workers)
}

// SplitEvalBatches evaluates ps on batches of segments arriving on a
// channel — the streaming form used by the extraction engine, where the
// splitter discovers segments incrementally while earlier segments are
// already being evaluated. The bounded worker pool gives natural
// backpressure: when all workers are busy, sends into batches block. The
// merged relation is deduplicated and sorted, so the result is
// deterministic regardless of arrival order. On cancellation the workers
// drain nothing further and ctx's error is returned with the partial
// result.
func SplitEvalBatches(ctx context.Context, ps *vsa.Automaton, batches <-chan []Segment, workers int) (*span.Relation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Build the shared evaluation caches (compiled program, forward and
	// reversed match-window DFAs) once before fan-out instead of having
	// every worker block on the same construction locks at first eval.
	ps.Prepare()
	results := make(chan *span.Relation, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var batch []Segment
				var ok bool
				select {
				case batch, ok = <-batches:
					if !ok {
						return
					}
				case <-ctx.Done():
					// Also unblocks workers whose producer is stalled
					// (e.g. a hung reader that will never close batches).
					return
				}
				rel := span.NewRelation(ps.Vars...)
				for _, seg := range batch {
					if ctx.Err() != nil {
						return
					}
					sub := ps.Eval(seg.Text).ShiftAll(seg.Span)
					rel.Tuples = append(rel.Tuples, sub.Tuples...)
				}
				select {
				case results <- rel:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	out := span.NewRelation(ps.Vars...)
	for rel := range results {
		out.Tuples = append(out.Tuples, rel.Tuples...)
	}
	out.Dedupe()
	return out, ctx.Err()
}

// CollectionEval evaluates p on every document of a pre-split collection
// (the Spark scenario of Section 1) with the given number of workers and
// returns one relation per document, in order.
func CollectionEval(p *vsa.Automaton, docsIn []string, workers int) []*span.Relation {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p.Prepare() // warm the shared evaluation caches before fan-out
	out := make([]*span.Relation, len(docsIn))
	jobs := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = p.Eval(docsIn[i])
			}
		}()
	}
	for i := range docsIn {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// CollectionEvalSplit evaluates a split-correct plan over a collection:
// each document is pre-split with splitFn and the segments of all
// documents form the task pool — the paper's observation that splitting
// helps even when the input is already a collection, by giving the
// scheduler many small tasks. Results are per-document relations.
// Segments are produced by a goroutine that splits documents on demand and
// feeds the bounded task channel, so memory stays O(workers) tasks plus
// one document's spans regardless of collection size, instead of
// materializing every segment of every document up-front.
func CollectionEvalSplit(ps *vsa.Automaton, docsIn []string, splitFn func(string) []span.Span, workers int) []*span.Relation {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ps.Prepare() // warm the shared evaluation caches before fan-out
	type task struct {
		doc int
		seg Segment
	}
	type result struct {
		doc int
		rel *span.Relation
	}
	jobs := make(chan task, workers)
	results := make(chan result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range jobs {
				results <- result{t.doc, ps.Eval(t.seg.Text).ShiftAll(t.seg.Span)}
			}
		}()
	}
	go func() {
		// Producer: split one document at a time; the bounded jobs channel
		// throttles splitting to the pool's consumption rate.
		for i, d := range docsIn {
			for _, sp := range splitFn(d) {
				jobs <- task{i, Segment{sp, sp.In(d)}}
			}
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(results)
	}()
	out := make([]*span.Relation, len(docsIn))
	for i := range out {
		out[i] = span.NewRelation(ps.Vars...)
	}
	for r := range results {
		out[r.doc].Tuples = append(out[r.doc].Tuples, r.rel.Tuples...)
	}
	for _, rel := range out {
		rel.Dedupe()
	}
	return out
}

// Measurement is one timed run of an experiment configuration.
type Measurement struct {
	Name       string
	Sequential time.Duration
	Split      time.Duration
	Speedup    float64
	Tuples     int
}

// ErrSplitMismatch is returned by Measure and MeasureCollection when split
// and sequential evaluation disagree — the defining symptom of running a
// plan that is not split-correct for its splitter. The Measurement
// returned alongside it still carries the timings, so callers can report
// the failing configuration.
var ErrSplitMismatch = errors.New("parallel: split evaluation disagrees with sequential evaluation; the spanner is not split-correct for this splitter")

// Measure times sequential evaluation of p against split evaluation of ps
// over the segments, checks that the outputs agree, and reports the
// speedup. The comparison is the experiment of Section 1. If the outputs
// disagree the timings are returned together with an error wrapping
// ErrSplitMismatch — a library must not panic on data-dependent input.
func Measure(name string, p, ps *vsa.Automaton, doc string, segments []Segment, workers int) (Measurement, error) {
	t0 := time.Now()
	seq := Sequential(p, doc)
	seqDur := time.Since(t0)
	t1 := time.Now()
	par := SplitEval(ps, segments, workers)
	parDur := time.Since(t1)
	seq.Dedupe()
	m := Measurement{
		Name:       name,
		Sequential: seqDur,
		Split:      parDur,
		Speedup:    float64(seqDur) / float64(parDur),
		Tuples:     seq.Len(),
	}
	if !seq.Equal(par) {
		return m, fmt.Errorf("%s: %w", name, ErrSplitMismatch)
	}
	return m, nil
}

// MeasureCollection times whole-document scheduling against
// split-segment scheduling on a document collection with the same worker
// count, mirroring the paper's Spark experiments (Reuters, Amazon). Like
// Measure, a disagreement between the two schedules is reported as an
// error wrapping ErrSplitMismatch rather than a panic.
func MeasureCollection(name string, p, ps *vsa.Automaton, docsIn []string, splitFn func(string) []span.Span, workers int) (Measurement, error) {
	t0 := time.Now()
	whole := CollectionEval(p, docsIn, workers)
	wholeDur := time.Since(t0)
	t1 := time.Now()
	split := CollectionEvalSplit(ps, docsIn, splitFn, workers)
	splitDur := time.Since(t1)
	m := Measurement{
		Name:       name,
		Sequential: wholeDur,
		Split:      splitDur,
		Speedup:    float64(wholeDur) / float64(splitDur),
	}
	for i := range whole {
		whole[i].Dedupe()
		aligned, err := split[i].Project(whole[i].Vars)
		if err != nil {
			return m, fmt.Errorf("%s: document %d: %w", name, i, err)
		}
		if !aligned.Equal(whole[i]) {
			return m, fmt.Errorf("%s: document %d: %w", name, i, ErrSplitMismatch)
		}
		m.Tuples += whole[i].Len()
	}
	return m, nil
}

// SortSpans is a small helper for tests: sorts spans in document order.
func SortSpans(spans []span.Span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Compare(spans[j]) < 0 })
}
