package parallel

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/library"
	"repro/internal/regexformula"
	"repro/internal/vsa"
)

type fuzzPair struct {
	name string
	p    *vsa.Automaton
	s    *core.Splitter
	// remap optionally projects fuzz documents onto the alphabet over
	// which the pair's split-correctness was proved: the token-run pair is
	// split-correct over {a,b} only (a byte outside [ab] kills the whole-
	// document match but not a per-segment match).
	remap func(string) string
}

func toAB(doc string) string {
	b := []byte(doc)
	for i := range b {
		if b[i]%2 == 0 {
			b[i] = 'a'
		} else {
			b[i] = 'b'
		}
	}
	return string(b)
}

// fuzzPairs holds (spanner, splitter) pairs whose split-correctness is
// proved by the decision procedures in the library and core test suites,
// so SplitEval over the splitter's segments must agree with Sequential on
// EVERY document — the fuzz target asserts exactly that equality.
var fuzzPairs = sync.OnceValue(func() []fuzzPair {
	token, err := regexformula.MustCompile(
		"(y{aaaa})(b[ab]*)?|[ab]*b(y{aaaa})(b[ab]*)?").Determinize(0)
	if err != nil {
		panic(err)
	}
	blocks := core.MustSplitter(regexformula.MustCompile(
		"(x{[^b]*})(b[^b]*)*|[^b]*(b[^b]*)*b(x{[^b]*})(b[^b]*)*"))
	return []fuzzPair{
		{"sentiment/sentences", library.NegativeSentiment(), library.Sentences(), nil},
		{"token-runs/blocks", token, blocks, toAB},
	}
})

// FuzzSplitEvalVsSequential feeds arbitrary documents through the
// split-then-distribute pipeline on known split-correct (P, S) pairs and
// asserts the shifted union over segments equals direct evaluation — the
// paper's defining equation P = P ∘ S, checked end to end through the new
// evaluation core, the splitter, and the worker pool.
func FuzzSplitEvalVsSequential(f *testing.F) {
	f.Add("bad coffee. nice tea! aaaa b aaaa")
	f.Add("")
	f.Add("aaaabaaaa")
	f.Add("very bad service? bad bad.\nbadly aaaa")
	f.Fuzz(func(t *testing.T, doc string) {
		if len(doc) > 1<<12 {
			doc = doc[:1<<12]
		}
		for _, pair := range fuzzPairs() {
			d := doc
			if pair.remap != nil {
				d = pair.remap(d)
			}
			segs := SegmentsOf(d, pair.s.Split(d))
			got := SplitEval(pair.p, segs, 3)
			want := Sequential(pair.p, d)
			want.Dedupe()
			if !got.Equal(want) {
				t.Fatalf("%s: split evaluation differs on %q\nsplit: %v\nseq:   %v", pair.name, d, got, want)
			}
		}
	})
}
