// The serving scenario: a long-lived engine answers many extraction
// requests over the same (spanner, splitter) pair. The first request
// pays for compiling the formulas and proving self-splittability
// (Theorems 5.16–5.17); every later request — including a streamed
// multi-chunk document — reuses the cached plan, and split-parallel
// evaluation is byte-identical to direct evaluation because the proof
// succeeded. This is cmd/spand's engine used as a library.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	spanners "repro"
)

const (
	// E-mail-like tokens, and the sentence splitter of internal/library.
	emailFormula    = `(.*[^a-z0-9])?(y{[a-z0-9]+@[a-z0-9]+})([^a-z0-9].*)?`
	sentenceFormula = "(x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*|" +
		"[^.!?\\n]*([.!?\\n][^.!?\\n]*)*[.!?\\n](x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*"
)

func main() {
	ctx := context.Background()
	eng := spanners.NewEngine(spanners.EngineConfig{Workers: 4, Batch: 4, ChunkSize: 16})

	// First request: compiles and runs the decision procedures.
	req := spanners.ExtractRequest{Spanner: emailFormula, Splitter: sentenceFormula}
	plan, hit, err := eng.Plan(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: strategy=%v verdicts=%+v cached=%v (compiled in %v)\n",
		plan.Strategy, plan.Verdicts, hit, plan.CompileTime)

	doc := "mail ann@example about the launch. cc bob@corp and eve@host! thanks."
	rel, err := eng.Extract(ctx, plan, doc)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range rel.Tuples {
		fmt.Printf("  y=%q at %v\n", t[0].In(doc), t[0])
	}

	// Second request: served from the plan cache.
	_, hit, err = eng.Plan(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second plan lookup cached=%v\n", hit)

	// Streaming: the same document arriving in chunks gives the same
	// relation — segment evaluation overlaps reading.
	streamed, err := eng.ExtractReader(ctx, plan, strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed result equal to one-shot: %v\n", streamed.Equal(rel))

	st := eng.Stats()
	fmt.Printf("stats: docs=%d segments=%d cache hits=%d misses=%d\n",
		st.Documents, st.Segments, st.PlanCache.Hits, st.PlanCache.Misses)
}
