package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
)

func extractBody() []byte {
	body, _ := json.Marshal(map[string]string{
		"spanner": emailFormula, "splitter": sentenceFormula, "doc": testDoc,
	})
	return body
}

func mustPost(t *testing.T, url string, body []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	io.Copy(io.Discard, resp.Body)
}

// TestMetricsPrometheusFormat drives traffic through the daemon and
// checks that GET /metrics is well-formed Prometheus text exposition:
// every sample line parses, every family has exactly one HELP/TYPE
// header before its samples, histogram buckets are cumulative and end
// at le="+Inf" equal to _count, and the series the dashboards key on
// are present with the expected values.
func TestMetricsPrometheusFormat(t *testing.T) {
	ts := startDaemon(t)
	for i := 0; i < 3; i++ {
		mustPost(t, ts.URL+"/v1/extract", extractBody())
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	values := map[string]float64{}
	helped := map[string]bool{}
	typed := map[string]string{}
	var lastFamily string
	for ln, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			f := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(f) != 2 || f[1] == "" {
				t.Fatalf("line %d: malformed HELP %q", ln+1, line)
			}
			if helped[f[0]] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, f[0])
			}
			helped[f[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(f) != 2 {
				t.Fatalf("line %d: malformed TYPE %q", ln+1, line)
			}
			switch f[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, f[1])
			}
			if typed[f[0]] != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, f[0])
			}
			typed[f[0]] = f[1]
			lastFamily = f[0]
		default:
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				t.Fatalf("line %d: malformed sample %q", ln+1, line)
			}
			name, val := line[:sp], line[sp+1:]
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, val, err)
			}
			base := name
			if i := strings.IndexByte(name, '{'); i >= 0 {
				base = name[:i]
				if !strings.HasSuffix(name, "}") {
					t.Fatalf("line %d: unterminated label set %q", ln+1, name)
				}
			}
			family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base, "_bucket"), "_sum"), "_count")
			if !helped[family] && !helped[base] {
				t.Fatalf("line %d: sample %s has no HELP header", ln+1, name)
			}
			if family != lastFamily && base != lastFamily {
				t.Fatalf("line %d: sample %s not grouped under its family header (%s)", ln+1, name, lastFamily)
			}
			values[name] = v
		}
	}

	if got := values[`spand_http_requests_total{endpoint="/v1/extract"}`]; got != 3 {
		t.Fatalf("extract request counter = %v, want 3", got)
	}
	if got := values["spanners_engine_documents_total"]; got != 3 {
		t.Fatalf("documents counter = %v, want 3", got)
	}
	if values["spanners_engine_segments_total"] == 0 {
		t.Fatal("segments counter is zero after three split extractions")
	}
	if values["spanners_plan_cache_hits_total"] < 2 {
		t.Fatalf("cache hits = %v, want ≥ 2", values["spanners_plan_cache_hits_total"])
	}

	// Histogram contract: buckets cumulative and monotone, +Inf == _count.
	for _, h := range []string{
		`spand_http_request_seconds{endpoint="/v1/extract"}`,
		`spanners_engine_stage_seconds{stage="eval"}`,
	} {
		base := h[:strings.IndexByte(h, '{')]
		labels := h[strings.IndexByte(h, '{')+1 : len(h)-1]
		count := values[base+"_count{"+labels+"}"]
		if count != 3 {
			t.Fatalf("%s _count = %v, want 3", h, count)
		}
		inf := values[base+"_bucket{"+labels+`,le="+Inf"}`]
		if inf != count {
			t.Fatalf("%s +Inf bucket = %v, want _count %v", h, inf, count)
		}
		var prev float64
		for name, v := range values {
			if strings.HasPrefix(name, base+"_bucket{"+labels) && v < prev {
				// Map order is random; just check every bucket ≤ count.
				t.Fatalf("%s bucket %s = %v exceeds later buckets", h, name, v)
			}
			if strings.HasPrefix(name, base+"_bucket{"+labels) && v > count {
				t.Fatalf("%s bucket %s = %v exceeds _count %v", h, name, v, count)
			}
		}
	}
}

// statsBody is the decoded /v1/stats response.
type statsBody struct {
	engine.Stats
	InFlight  int64                    `json:"in_flight"`
	Endpoints map[string]endpointStats `json:"endpoints"`
}

func getStats(t *testing.T, url string) statsBody {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsBody
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStatsStageBreakdown checks the enriched /v1/stats: per-stage time
// shares that sum to one over the top-level stages, latency percentiles
// per endpoint, the in-flight gauge and the executor section.
func TestStatsStageBreakdown(t *testing.T) {
	ts := startDaemon(t)
	for i := 0; i < 4; i++ {
		mustPost(t, ts.URL+"/v1/extract", extractBody())
	}
	st := getStats(t, ts.URL)

	for _, stage := range []string{"plan", "segment", "eval", "merge", "localize", "sim"} {
		if _, ok := st.Stages[stage]; !ok {
			t.Fatalf("stages missing %q: %v", stage, st.Stages)
		}
	}
	var topShare float64
	for _, stage := range []string{"plan", "segment", "eval"} {
		s := st.Stages[stage]
		if s.Count == 0 {
			t.Fatalf("stage %q has zero recorded intervals", stage)
		}
		if s.P50MS <= 0 || s.P99MS < s.P50MS {
			t.Fatalf("stage %q percentiles p50=%v p99=%v", stage, s.P50MS, s.P99MS)
		}
		topShare += s.Share
	}
	if topShare < 0.999 || topShare > 1.001 {
		t.Fatalf("top-level stage shares sum to %v, want 1", topShare)
	}
	if st.Stages["merge"].Count == 0 {
		t.Fatal("merge stage has zero recorded runs after split extractions")
	}

	ep, ok := st.Endpoints["/v1/extract"]
	if !ok {
		t.Fatalf("endpoints missing /v1/extract: %v", st.Endpoints)
	}
	if ep.Count != 4 || ep.Errors != 0 {
		t.Fatalf("extract endpoint = %+v, want 4 requests, 0 errors", ep)
	}
	if ep.P50MS <= 0 || ep.P99MS < ep.P50MS || ep.P999MS < ep.P99MS {
		t.Fatalf("extract percentiles not ordered: %+v", ep)
	}
	// The stats request itself is in flight while it snapshots.
	if st.InFlight < 1 {
		t.Fatalf("in_flight = %d, want ≥ 1", st.InFlight)
	}
	if st.Executor.Runs == 0 || st.Executor.Segments == 0 {
		t.Fatalf("executor = %+v, want runs and segments", st.Executor)
	}

	// Errors are counted per endpoint.
	resp, err := http.Post(ts.URL+"/v1/extract", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := getStats(t, ts.URL).Endpoints["/v1/extract"].Errors; got != 1 {
		t.Fatalf("errors = %d after a bad request, want 1", got)
	}
}

// TestConcurrentExtractAndStats hammers /v1/extract, /v1/stats and
// /metrics concurrently. Run under -race (as CI does) it proves the
// stats snapshot and the Prometheus renderer race cleanly with the
// recording hot path.
func TestConcurrentExtractAndStats(t *testing.T) {
	ts := httptest.NewServer(newServer(engine.New(engine.Config{Workers: 4, Batch: 2, ChunkSize: 8})))
	defer ts.Close()
	body := extractBody()
	const clients, iters = 4, 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				mustPost(t, ts.URL+"/v1/extract", body)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				st := getStats(t, ts.URL)
				// The document counter increments at request start and the
				// eval stage records at request end, so eval lags documents
				// by the requests in flight — but never exceeds them.
				if st.Stages["eval"].Count > st.Documents {
					t.Errorf("eval stage count %d exceeds documents %d", st.Stages["eval"].Count, st.Documents)
					return
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	st := getStats(t, ts.URL)
	if st.Documents != clients*iters {
		t.Fatalf("documents = %d, want %d", st.Documents, clients*iters)
	}
	if got := st.Endpoints["/v1/extract"].Count; got != clients*iters {
		t.Fatalf("extract endpoint count = %d, want %d", got, clients*iters)
	}
}
