// Command spanctl is a command-line front end to the spanner library:
// evaluate regex formulas on documents, split documents, and run the
// split-correctness decision procedures of the paper.
//
// Usage:
//
//	spanctl eval -p FORMULA [-doc TEXT | -file PATH]
//	spanctl split -s FORMULA [-doc TEXT | -file PATH]
//	spanctl disjoint -s FORMULA
//	spanctl check -p FORMULA -ps FORMULA -s FORMULA
//	spanctl selfsplit -p FORMULA -s FORMULA
//	spanctl splittable -p FORMULA -s FORMULA
//	spanctl canonical -p FORMULA -s FORMULA
//	spanctl commute -s FORMULA -s2 FORMULA
//
// Formulas use the regex-formula syntax of Section 4.1: captures are
// written x{...}, alternation |, and . matches any byte. Example:
//
//	spanctl check -p '.*y{ab}.*' -ps 'y{ab}' -s '.*x{..}.*'
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/reason"
	"repro/internal/regexformula"
	"repro/internal/vsa"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		pSrc   = fs.String("p", "", "spanner formula P")
		psSrc  = fs.String("ps", "", "split-spanner formula P_S")
		sSrc   = fs.String("s", "", "splitter formula S (unary)")
		s2Src  = fs.String("s2", "", "second splitter formula")
		docArg = fs.String("doc", "", "document text")
		file   = fs.String("file", "", "read document from file")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}
	doc := func() string {
		if *file != "" {
			b, err := os.ReadFile(*file)
			if err != nil {
				fatal(err)
			}
			return string(b)
		}
		return *docArg
	}
	switch cmd {
	case "eval":
		p := compile(*pSrc, "-p")
		rel := p.Eval(doc())
		fmt.Printf("%d tuple(s) over %v\n", rel.Len(), rel.Vars)
		d := doc()
		for _, t := range rel.Tuples {
			fmt.Print("  ")
			for i, sp := range t {
				if i > 0 {
					fmt.Print("  ")
				}
				fmt.Printf("%s=%v %q", rel.Vars[i], sp, sp.In(d))
			}
			fmt.Println()
		}
	case "split":
		s := splitter(*sSrc, "-s")
		for _, seg := range s.Segments(doc()) {
			fmt.Printf("  %v %q\n", seg.Span, seg.Text)
		}
	case "disjoint":
		s := splitter(*sSrc, "-s")
		fmt.Println(s.IsDisjoint())
	case "check":
		p := compile(*pSrc, "-p")
		ps := compile(*psSrc, "-ps")
		s := splitter(*sSrc, "-s")
		ok, witness, err := core.SplitCorrectWitness(p, ps, s, 0)
		if err != nil {
			fatal(err)
		}
		if ok {
			fmt.Println("split-correct: P = P_S ∘ S")
		} else {
			fmt.Printf("NOT split-correct; witness document: %q\n", witness)
			os.Exit(1)
		}
	case "selfsplit":
		p := compile(*pSrc, "-p")
		s := splitter(*sSrc, "-s")
		ok, err := core.SelfSplittable(p, s, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Println(ok)
	case "splittable":
		p := compile(*pSrc, "-p")
		s := splitter(*sSrc, "-s")
		ok, witness, err := core.Splittable(p, s, 0)
		if err != nil {
			fatal(err)
		}
		if ok {
			fmt.Printf("splittable; canonical split-spanner has %d states\n", witness.NumStates())
		} else {
			fmt.Println("not splittable")
			os.Exit(1)
		}
	case "canonical":
		p := compile(*pSrc, "-p")
		s := splitter(*sSrc, "-s")
		can := core.Canonical(p, s)
		fmt.Print(can.String())
	case "commute":
		s := splitter(*sSrc, "-s")
		s2 := splitter(*s2Src, "-s2")
		ok, err := reason.Commute(s, s2, nil, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Println(ok)
	default:
		usage()
	}
}

func compile(src, flagName string) *vsa.Automaton {
	if src == "" {
		fatal(fmt.Errorf("missing %s formula", flagName))
	}
	a, err := regexformula.Compile(src)
	if err != nil {
		fatal(err)
	}
	return a
}

func splitter(src, flagName string) *core.Splitter {
	s, err := core.NewSplitter(compile(src, flagName))
	if err != nil {
		fatal(err)
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spanctl:", err)
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: spanctl {eval|split|disjoint|check|selfsplit|splittable|canonical|commute} [flags]")
	os.Exit(2)
}
