// Package alphabet provides byte classes (sets of alphabet symbols) and
// partition refinement into atoms. Documents in this library are byte
// strings; automaton transitions are labeled with byte classes so that
// realistic extractors (sentence splitters, token extractors, ...) stay
// compact. Atoms are the coarsest partition of the byte space that refines
// every class in a given collection; decision procedures work atom-by-atom.
package alphabet

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Class is a set of bytes, represented as a 256-bit set.
type Class [4]uint64

// Empty is the empty byte class.
var Empty Class

// Any is the class containing all 256 bytes (the paper's Σ when the
// alphabet is unconstrained).
var Any = Class{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}

// Of returns the class containing exactly the given bytes.
func Of(bs ...byte) Class {
	var c Class
	for _, b := range bs {
		c.Add(b)
	}
	return c
}

// OfString returns the class of all bytes occurring in s.
func OfString(s string) Class {
	var c Class
	for i := 0; i < len(s); i++ {
		c.Add(s[i])
	}
	return c
}

// Range returns the class of all bytes b with lo ≤ b ≤ hi.
func Range(lo, hi byte) Class {
	var c Class
	for b := int(lo); b <= int(hi); b++ {
		c.Add(byte(b))
	}
	return c
}

// Add inserts b into the class.
func (c *Class) Add(b byte) { c[b>>6] |= 1 << (b & 63) }

// Remove deletes b from the class.
func (c *Class) Remove(b byte) { c[b>>6] &^= 1 << (b & 63) }

// Has reports whether b is in the class.
func (c Class) Has(b byte) bool { return c[b>>6]&(1<<(b&63)) != 0 }

// IsEmpty reports whether the class contains no bytes.
func (c Class) IsEmpty() bool { return c == Empty }

// Len returns the number of bytes in the class.
func (c Class) Len() int {
	return bits.OnesCount64(c[0]) + bits.OnesCount64(c[1]) +
		bits.OnesCount64(c[2]) + bits.OnesCount64(c[3])
}

// Intersect returns c ∩ o.
func (c Class) Intersect(o Class) Class {
	return Class{c[0] & o[0], c[1] & o[1], c[2] & o[2], c[3] & o[3]}
}

// Union returns c ∪ o.
func (c Class) Union(o Class) Class {
	return Class{c[0] | o[0], c[1] | o[1], c[2] | o[2], c[3] | o[3]}
}

// Minus returns c ∖ o.
func (c Class) Minus(o Class) Class {
	return Class{c[0] &^ o[0], c[1] &^ o[1], c[2] &^ o[2], c[3] &^ o[3]}
}

// Complement returns the class of all bytes not in c.
func (c Class) Complement() Class { return Any.Minus(c) }

// Intersects reports whether c ∩ o is nonempty.
func (c Class) Intersects(o Class) bool {
	return c[0]&o[0] != 0 || c[1]&o[1] != 0 || c[2]&o[2] != 0 || c[3]&o[3] != 0
}

// ContainsClass reports whether o ⊆ c.
func (c Class) ContainsClass(o Class) bool { return o.Minus(c).IsEmpty() }

// Min returns the smallest byte in the class; ok is false if c is empty.
func (c Class) Min() (b byte, ok bool) {
	for w := 0; w < 4; w++ {
		if c[w] != 0 {
			return byte(w*64 + bits.TrailingZeros64(c[w])), true
		}
	}
	return 0, false
}

// Bytes returns the members of the class in increasing order.
func (c Class) Bytes() []byte {
	out := make([]byte, 0, c.Len())
	for w := 0; w < 4; w++ {
		word := c[w]
		for word != 0 {
			t := bits.TrailingZeros64(word)
			out = append(out, byte(w*64+t))
			word &^= 1 << t
		}
	}
	return out
}

// String renders the class compactly, collapsing runs into ranges.
func (c Class) String() string {
	if c == Any {
		return "Σ"
	}
	if c.IsEmpty() {
		return "∅"
	}
	bs := c.Bytes()
	var parts []string
	for i := 0; i < len(bs); {
		j := i
		for j+1 < len(bs) && bs[j+1] == bs[j]+1 {
			j++
		}
		if j > i+1 {
			parts = append(parts, fmt.Sprintf("%s-%s", byteName(bs[i]), byteName(bs[j])))
		} else {
			for k := i; k <= j; k++ {
				parts = append(parts, byteName(bs[k]))
			}
		}
		i = j + 1
	}
	return "[" + strings.Join(parts, "") + "]"
}

func byteName(b byte) string {
	if b >= 0x21 && b <= 0x7e && b != '[' && b != ']' && b != '-' && b != '\\' {
		return string(b)
	}
	return fmt.Sprintf("\\x%02x", b)
}

// UnionAll returns the union of the given classes.
func UnionAll(classes []Class) Class {
	var u Class
	for _, c := range classes {
		u = u.Union(c)
	}
	return u
}

// CoversAll reports whether the classes together cover every byte — the
// test behind universality analyses (a state can consume any input iff
// its outgoing classes cover Σ).
func CoversAll(classes []Class) bool { return UnionAll(classes) == Any }

// Atoms computes the coarsest partition of the byte space into nonempty
// classes ("atoms") such that every input class is a union of atoms. Only
// bytes covered by at least one input class are partitioned; bytes outside
// every class never label a transition and are irrelevant. The result is
// deterministic (sorted by smallest member).
func Atoms(classes []Class) []Class {
	atoms := []Class{}
	var covered Class
	for _, c := range classes {
		covered = covered.Union(c)
	}
	if covered.IsEmpty() {
		return nil
	}
	atoms = append(atoms, covered)
	for _, c := range classes {
		if c.IsEmpty() {
			continue
		}
		next := atoms[:0:0]
		for _, a := range atoms {
			in := a.Intersect(c)
			out := a.Minus(c)
			if !in.IsEmpty() {
				next = append(next, in)
			}
			if !out.IsEmpty() {
				next = append(next, out)
			}
		}
		atoms = next
	}
	sort.Slice(atoms, func(i, j int) bool {
		a, _ := atoms[i].Min()
		b, _ := atoms[j].Min()
		return a < b
	})
	return atoms
}

// Reps returns one representative byte per atom, in atom order.
func Reps(atoms []Class) []byte {
	reps := make([]byte, len(atoms))
	for i, a := range atoms {
		b, ok := a.Min()
		if !ok {
			panic("alphabet: empty atom")
		}
		reps[i] = b
	}
	return reps
}

// ClassTable computes the byte→equivalence-class table for a collection of
// classes: two bytes get the same index iff they are members of exactly the
// same input classes, so an evaluator that resolved a transition for one
// byte of an equivalence class has resolved it for all of them. This is the
// dense (256-entry, O(1)-lookup) counterpart of Atoms, sized for the hot
// path: classOf[b] indexes into per-class transition tables. reps holds one
// representative byte per index. At most 256 indices exist, so uint8 never
// overflows; indices are dense in [0, len(reps)).
func ClassTable(classes []Class) (classOf [256]uint8, reps []byte) {
	// Signature of byte b = the subset of classes containing b, packed into
	// a bit string. Equal signatures ⇔ same equivalence class.
	words := (len(classes) + 63) / 64
	if words == 0 {
		words = 1
	}
	sig := make([]uint64, words)
	key := make([]byte, 8*words)
	index := make(map[string]uint8, 8)
	for b := 0; b < 256; b++ {
		for w := range sig {
			sig[w] = 0
		}
		for i, c := range classes {
			if c.Has(byte(b)) {
				sig[i/64] |= 1 << (i % 64)
			}
		}
		for w, v := range sig {
			for i := 0; i < 8; i++ {
				key[8*w+i] = byte(v >> (8 * i))
			}
		}
		id, ok := index[string(key)]
		if !ok {
			id = uint8(len(reps))
			index[string(key)] = id
			reps = append(reps, byte(b))
		}
		classOf[b] = id
	}
	return classOf, reps
}
