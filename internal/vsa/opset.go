// Package vsa implements variable-set automata (VSet-automata), the main
// machine model for regular document spanners (Fagin et al.; Section 4.2 of
// the paper). Two representations are provided:
//
//   - Raw: the textbook VSet-automaton — an ε-NFA whose edges are labeled
//     with byte classes or with single variable operations x⊢ / ⊣x.
//   - Automaton: the extended, functional form (eVSA) in which every edge
//     carries a canonically ordered *set* of variable operations followed
//     by a byte class, and acceptance carries a final operation set. This
//     is the determinism-friendly representation of Florenzano et al. that
//     the paper's deterministic VSet-automata mirror (footnote 7): a
//     deterministic functional eVSA corresponds exactly to a dfVSA whose
//     adjacent variable operations are sorted by the fixed order ≺.
//
// Compile converts Raw to Automaton while enforcing functionality (only
// valid ref-words survive), Determinize implements Proposition 4.4, Eval
// implements ⟦A⟧(d), and Contained implements containment (Theorem 4.1 in
// general and the Theorem 4.3 fast path when the right side is
// deterministic).
package vsa

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxVars bounds the number of variables of one automaton; operation sets
// and status vectors are packed into 64-bit words (2 bits per variable).
const MaxVars = 32

// OpSet is a set of variable operations performed together at one document
// boundary, with the canonical total order ≺ being ascending bit index:
// bit 2v is "open variable v" (v⊢) and bit 2v+1 is "close variable v" (⊣v).
// This order satisfies the paper's requirement v⊢ ≺ ⊣v for every v.
type OpSet uint64

// Open returns the operation set {v⊢}.
func Open(v int) OpSet { return 1 << (2 * uint(v)) }

// Close returns the operation set {⊣v}.
func Close(v int) OpSet { return 1 << (2*uint(v) + 1) }

// Wrap returns {v⊢, ⊣v}, opening and closing v at the same boundary
// (an empty span).
func Wrap(v int) OpSet { return Open(v) | Close(v) }

// AllOps returns the complete operation set over n variables, i.e. the
// single-boundary batch that assigns every variable an empty span.
func AllOps(n int) OpSet {
	if n == 0 {
		return 0
	}
	return OpSet(1)<<(2*uint(n)) - 1
}

// Has reports whether every operation of o occurs in s.
func (s OpSet) Has(o OpSet) bool { return s&o == o }

// IsEmpty reports whether the set contains no operations.
func (s OpSet) IsEmpty() bool { return s == 0 }

// Count returns the number of operations in the set.
func (s OpSet) Count() int { return bits.OnesCount64(uint64(s)) }

// OpensVar reports whether s contains v⊢.
func (s OpSet) OpensVar(v int) bool { return s&Open(v) != 0 }

// ClosesVar reports whether s contains ⊣v.
func (s OpSet) ClosesVar(v int) bool { return s&Close(v) != 0 }

// String renders the operation set in ref-word notation using variable
// indices, e.g. "x0⊢ ⊣x0 x1⊢".
func (s OpSet) String() string {
	if s == 0 {
		return "∅"
	}
	var parts []string
	for v := 0; v < MaxVars; v++ {
		if s.OpensVar(v) {
			parts = append(parts, fmt.Sprintf("x%d⊢", v))
		}
		if s.ClosesVar(v) {
			parts = append(parts, fmt.Sprintf("⊣x%d", v))
		}
	}
	return strings.Join(parts, " ")
}

// Status is a packed vector of per-variable statuses: 2 bits per variable
// with 0 = not yet opened, 1 = open, 2 = closed.
type Status uint64

// StatusClosed is the per-variable "closed" code.
const (
	statusUnseen = 0
	statusOpen   = 1
	statusClosed = 2
)

// VarStatus returns the status code of variable v.
func (st Status) VarStatus(v int) int { return int(st>>(2*uint(v))) & 3 }

// AllClosed returns the status in which all n variables are closed.
func AllClosed(n int) Status {
	var st Status
	for v := 0; v < n; v++ {
		st |= Status(statusClosed) << (2 * uint(v))
	}
	return st
}

// Apply performs the operations of o (in canonical order) on st. ok is
// false if some operation is invalid (opening a non-fresh variable or
// closing a non-open one); in that case the resulting ref-word would be
// invalid and the transition must be discarded.
func (st Status) Apply(o OpSet) (Status, bool) {
	for v := 0; o != 0; v++ {
		mask := OpSet(3) << (2 * uint(v))
		ops := o & mask
		if ops == 0 {
			continue
		}
		o &^= mask
		cur := st.VarStatus(v)
		if ops.OpensVar(v) {
			if cur != statusUnseen {
				return 0, false
			}
			cur = statusOpen
		}
		if ops.ClosesVar(v) {
			if cur != statusOpen {
				return 0, false
			}
			cur = statusClosed
		}
		st = st&^(Status(3)<<(2*uint(v))) | Status(cur)<<(2*uint(v))
	}
	return st, true
}

// Diff returns the operation set that transforms status st into status cur.
// It panics if cur is not reachable from st by a single batch of
// operations (a status can only move forward).
func (st Status) Diff(cur Status, numVars int) OpSet {
	var o OpSet
	for v := 0; v < numVars; v++ {
		a, b := st.VarStatus(v), cur.VarStatus(v)
		switch {
		case a == b:
		case a == statusUnseen && b == statusOpen:
			o |= Open(v)
		case a == statusUnseen && b == statusClosed:
			o |= Wrap(v)
		case a == statusOpen && b == statusClosed:
			o |= Close(v)
		default:
			panic(fmt.Sprintf("vsa: status cannot move from %d to %d for variable %d", a, b, v))
		}
	}
	return o
}
