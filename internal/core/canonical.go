package core

import (
	"fmt"

	"repro/internal/vsa"
)

// Canonical constructs the canonical split-spanner P_S^can of Section 5.2
// (Proposition 5.9): on every document d it selects exactly the tuples t
// for which some larger document d' exists with a split s ∈ S(d') whose
// segment is d and with t ≫ s ∈ P(d'). The construction runs P and S
// jointly: a pre-closure of state pairs reachable on guessed prefixes, a
// product phase over the actual input (the segment), and a post
// co-reachability check for guessed suffixes. It is polynomial in |P| and
// |S|. For disjoint splitters, Lemma 5.12 makes P_S^can the canonical
// witness: P is splittable by S iff P = P_S^can ∘ S.
func Canonical(p *vsa.Automaton, s *Splitter) *vsa.Automaton {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("core: Canonical: invalid spanner: %v", err))
	}
	sa := s.auto
	type pair struct{ qp, qs int }

	// Pre-closure: pairs reachable from the starts by jointly consuming
	// guessed prefix bytes (no variable operations before the split).
	pre := map[pair]bool{{p.Start, sa.Start}: true}
	stack := []pair{{p.Start, sa.Start}}
	for len(stack) > 0 {
		pr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, pe := range p.States[pr.qp].Edges {
			if pe.Ops != 0 {
				continue
			}
			for _, se := range sa.States[pr.qs].Edges {
				if splitOpKind(se.Ops) != sNone || !pe.Class.Intersects(se.Class) {
					continue
				}
				np := pair{pe.To, se.To}
				if !pre[np] {
					pre[np] = true
					stack = append(stack, np)
				}
			}
		}
	}

	// Post co-reachability: pairs from which a guessed suffix leads both
	// automata to acceptance with no further operations.
	post := map[pair]bool{}
	for qp := range p.States {
		if !hasFinal(p, qp, 0) {
			continue
		}
		for qs := range sa.States {
			for _, f := range sa.States[qs].Finals {
				if splitOpKind(f) == sNone {
					post[pair{qp, qs}] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for qp := range p.States {
			for qs := range sa.States {
				pr := pair{qp, qs}
				if post[pr] {
					continue
				}
				for _, pe := range p.States[qp].Edges {
					if pe.Ops != 0 {
						continue
					}
					for _, se := range sa.States[qs].Edges {
						if splitOpKind(se.Ops) == sNone && pe.Class.Intersects(se.Class) &&
							post[pair{pe.To, se.To}] {
							post[pr] = true
							changed = true
						}
					}
				}
			}
		}
	}

	out := vsa.NewAutomaton(p.Vars...)
	id := map[pair]int{}
	var queue []pair
	intern := func(pr pair) int {
		if i, ok := id[pr]; ok {
			return i
		}
		i := out.AddState()
		id[pr] = i
		queue = append(queue, pr)
		return i
	}
	// Entry edges and ε-input finals from every pre-closure pair.
	for pr := range pre {
		for _, se := range sa.States[pr.qs].Edges {
			switch splitOpKind(se.Ops) {
			case sOpen:
				for _, pe := range p.States[pr.qp].Edges {
					cls := se.Class.Intersect(pe.Class)
					if !cls.IsEmpty() {
						out.AddEdge(out.Start, pe.Ops, cls, intern(pair{pe.To, se.To}))
					}
				}
			case sWrap:
				// Empty segment mid-document: P completes at this boundary
				// and both automata need an accepting suffix.
				for _, pe := range p.States[pr.qp].Edges {
					if pe.Class.Intersects(se.Class) && post[pair{pe.To, se.To}] {
						out.AddFinal(out.Start, pe.Ops)
					}
				}
			}
		}
		for _, sf := range sa.States[pr.qs].Finals {
			if splitOpKind(sf) == sWrap {
				// Empty segment at the end of d'.
				for _, pf := range p.States[pr.qp].Finals {
					out.AddFinal(out.Start, pf)
				}
			}
		}
	}
	// Product phase over the segment.
	for i := 0; i < len(queue); i++ {
		pr := queue[i]
		from := id[pr]
		for _, se := range sa.States[pr.qs].Edges {
			switch splitOpKind(se.Ops) {
			case sNone:
				for _, pe := range p.States[pr.qp].Edges {
					cls := se.Class.Intersect(pe.Class)
					if !cls.IsEmpty() {
						out.AddEdge(from, pe.Ops, cls, intern(pair{pe.To, se.To}))
					}
				}
			case sClose:
				// The segment ends here; P may still fire operations at
				// this boundary while consuming the first suffix byte.
				for _, pe := range p.States[pr.qp].Edges {
					if pe.Class.Intersects(se.Class) && post[pair{pe.To, se.To}] {
						out.AddFinal(from, pe.Ops)
					}
				}
			}
		}
		for _, sf := range sa.States[pr.qs].Finals {
			if splitOpKind(sf) == sClose {
				// Segment and document end together.
				for _, pf := range p.States[pr.qp].Finals {
					out.AddFinal(from, pf)
				}
			}
		}
	}
	out.MergeEdges()
	return out.Trim()
}

// Splittable decides the Splittability problem for disjoint splitters
// (Theorem 5.15): does any split-spanner P_S with P = P_S ∘ S exist? By
// Lemma 5.12 this holds iff P = P_S^can ∘ S, so the canonical
// split-spanner is constructed and split-correctness tested; when the
// answer is positive the canonical split-spanner is returned as the
// witness. Splittability for non-disjoint splitters is open (Section 8)
// and yields an error.
func Splittable(p *vsa.Automaton, s *Splitter, limit int) (bool, *vsa.Automaton, error) {
	if !s.IsDisjoint() {
		return false, nil, fmt.Errorf("core: Splittable requires a disjoint splitter (decidability for non-disjoint splitters is an open problem)")
	}
	can := Canonical(p, s)
	ok, err := SplitCorrect(p, can, s, limit)
	if err != nil {
		return false, nil, err
	}
	if !ok {
		return false, nil, nil
	}
	return true, can, nil
}

// SelfSplittable decides Self-splittability (Theorem 5.16): P = P ∘ S.
func SelfSplittable(p *vsa.Automaton, s *Splitter, limit int) (bool, error) {
	return SelfSplitCorrect(p, s, limit)
}

// SelfSplittablePoly is the polynomial-time route of Theorem 5.17 for
// deterministic functional automata and disjoint splitters.
func SelfSplittablePoly(p *vsa.Automaton, s *Splitter) (bool, error) {
	return SplitCorrectPoly(p, p, s)
}
