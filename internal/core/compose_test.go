package core

import (
	"testing"

	"repro/internal/regexformula"
)

// docs enumerates all documents over sigma up to maxLen.
func docs(sigma string, maxLen int) []string {
	out := []string{""}
	frontier := []string{""}
	for l := 0; l < maxLen; l++ {
		var next []string
		for _, d := range frontier {
			for i := 0; i < len(sigma); i++ {
				next = append(next, d+string(sigma[i]))
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

func splitterOf(t *testing.T, src string) *Splitter {
	t.Helper()
	s, err := NewSplitter(regexformula.MustCompile(src))
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return s
}

func TestNewSplitterRejectsWrongArity(t *testing.T) {
	if _, err := NewSplitter(regexformula.MustCompile("ab")); err == nil {
		t.Fatal("0-ary automaton must be rejected")
	}
	if _, err := NewSplitter(regexformula.MustCompile("x{a}y{b}")); err == nil {
		t.Fatal("binary automaton must be rejected")
	}
}

func TestSplitBasics(t *testing.T) {
	// Tokenizer: maximal runs of a's separated by single b's is hard to
	// write; instead split every single byte (the S1 of Observation 6.4).
	s := splitterOf(t, ".*x{.}.*")
	spans := s.Split("abc")
	if len(spans) != 3 {
		t.Fatalf("expected 3 unit spans, got %v", spans)
	}
	segs := s.Segments("abc")
	if segs[0].Text != "a" || segs[2].Text != "c" {
		t.Fatalf("segments wrong: %v", segs)
	}
}

var composeCases = []struct {
	ps, s string
}{
	{"y{a}", "x{.*}"},                      // trivial splitter: whole document
	{"y{b}", ".*x{.}.*"},                   // unit splitter
	{".*y{a}.*", "x{a*}b|(x{a*})"},         // prefix block splitter
	{"y{.*}", "x{ab}b|a(x{bb})"},           // Example 5.8's overlapping splitter
	{"y{b}|y{a}b", ".*x{..}.*"},            // 2-gram splitter
	{"y{a}z{b}", "x{.*}"},                  // binary split-spanner
	{"y{}", ".*x{.}.*"},                    // empty spans inside segments
	{"a", "x{.*}"},                         // Boolean split-spanner
	{"y{(a|b)*}", "x{a.}|.(x{b.})|..x{.}"}, // assorted segments
}

func TestComposeMatchesBruteForce(t *testing.T) {
	for _, c := range composeCases {
		ps := regexformula.MustCompile(c.ps)
		s := splitterOf(t, c.s)
		comp := Compose(ps, s)
		if err := comp.Validate(); err != nil {
			t.Fatalf("Compose(%s, %s) invalid: %v", c.ps, c.s, err)
		}
		for _, d := range docs("ab", 5) {
			want := ComposeBrute(ps, s, d)
			got := comp.Eval(d)
			if !got.Equal(want) {
				t.Fatalf("Compose(%s,%s) on %q: got %v, want %v", c.ps, c.s, d, got, want)
			}
		}
	}
}

func TestComposeHTTPLikeExample(t *testing.T) {
	// The Section 3.1 example in miniature: documents are request blocks
	// separated by blank lines (here: ';'), the splitter extracts the
	// blocks, and the split-spanner extracts a GET-prefixed first token.
	s := splitterOf(t, "x{[^;]*}(;[^;]*)*|[^;]*(;[^;]*)*;x{[^;]*}(;[^;]*)*")
	ps := regexformula.MustCompile("GET (y{[^;]*})")
	comp := Compose(ps, s)
	doc := "GET a;POST b;GET c"
	rel := comp.Eval(doc)
	if rel.Len() != 2 {
		t.Fatalf("expected 2 GET extractions, got %v", rel)
	}
	for _, tp := range rel.Tuples {
		got := tp[0].In(doc)
		if got != "a" && got != "c" {
			t.Fatalf("unexpected extraction %q", got)
		}
	}
}

func TestIsDisjoint(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"x{.*}", true},            // whole document: one span
		{".*x{.}.*", true},         // unit tokens: pairwise disjoint
		{".*x{..}.*", false},       // 2-grams overlap
		{"x{ab}b|a(x{bb})", false}, // Example 5.8's splitter
		{"x{a*}b.*", true},         // unique prefix block
		{"x{a}|x{aa}", true},       // whole-document matches: never two spans on one doc
		{"x{a}.*|x{aa}.*", false},  // on aa: [1,2⟩ overlaps [1,3⟩
		{"x{a}|a(x{a})", true},     // on aa: [1,2⟩ and [2,3⟩ touch but are disjoint
		{"x{}a*", true},            // single empty span
		{"x{}a*|a(x{})a*", true},   // empty spans at different boundaries
		{"x{}a*|x{aa}a*", false},   // empty span inside a nonempty span
		{"x{}a*|x{a}a*", false},    // [1,1⟩ at left endpoint of [1,2⟩: overlaps
		{"x{a}a*|a(x{})a*", true},  // [1,2⟩ and [2,2⟩: disjoint per the definition
	}
	for _, c := range cases {
		s := splitterOf(t, c.src)
		if got := s.IsDisjoint(); got != c.want {
			t.Errorf("IsDisjoint(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

// TestIsDisjointAgainstBruteForce cross-validates the product-based check
// with direct evaluation on all short documents.
func TestIsDisjointAgainstBruteForce(t *testing.T) {
	srcs := []string{
		"x{.*}", ".*x{.}.*", ".*x{..}.*", "x{ab}b|a(x{bb})", "x{a*}b.*",
		"x{a}|x{aa}", "x{a}.*|x{aa}.*", "x{a}|a(x{a})", "x{}a*", "x{}a*|a(x{})a*",
		"x{}a*|x{aa}a*", "x{}a*|x{a}a*", "x{a}a*|a(x{})a*",
		"x{a+}b*", "x{.}.*|.(x{.}).*",
	}
	for _, src := range srcs {
		s := splitterOf(t, src)
		want := true
	outer:
		for _, d := range docs("ab", 6) {
			spans := s.Split(d)
			for i := 0; i < len(spans); i++ {
				for j := i + 1; j < len(spans); j++ {
					if spans[i].Overlaps(spans[j]) {
						want = false
						break outer
					}
				}
			}
		}
		if got := s.IsDisjoint(); got != want {
			t.Errorf("IsDisjoint(%s) = %v, brute force = %v", src, got, want)
		}
	}
}
