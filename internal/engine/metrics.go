package engine

import (
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/vsa"
)

// Stage names a request-path pipeline stage of the engine. Stage wall
// times are recorded once per request (or per streamed document) into
// per-stage histograms, so /v1/stats can report where a request's time
// goes without any per-segment bookkeeping.
//
// Stage boundaries:
//
//	plan     Engine.Plan: the plan-cache get, including compilation and
//	         the decision procedures on a miss and the single-flight
//	         wait when coalesced.
//	segment  applying the splitter: the Split call on buffered
//	         documents, the sum of incremental feed/flush calls on
//	         streamed ones.
//	eval     the evaluation call (sequential Eval, or the split
//	         executor run including its final merge). On the streaming
//	         path evaluation overlaps ingestion, so this stage's wall
//	         time includes time blocked on the reader.
//	merge    the executor's final merge (concatenate + offset-sort +
//	         dedupe) — a sub-interval of eval, recorded by the executor
//	         itself.
//
// The localize/simulate split within evaluation is tracked separately
// by vsa.EvalMetrics for evaluations large enough to time (see
// vsa.MetricsMinDocBytes).
type Stage int

const (
	StagePlan Stage = iota
	StageSegment
	StageEval
	numStages
)

func (s Stage) String() string {
	switch s {
	case StagePlan:
		return "plan"
	case StageSegment:
		return "segment"
	case StageEval:
		return "eval"
	}
	return "unknown"
}

// Metrics is the engine's observability state: every counter, gauge and
// histogram the engine and the layers below it (split executor,
// evaluation core) record into, plus the registry that exports them.
// One Metrics belongs to one Engine; recording is lock-free (see
// internal/obs) and the registry is only walked at scrape time.
type Metrics struct {
	reg *obs.Registry

	documents    obs.Counter
	streamedDocs obs.Counter
	bytes        obs.Counter
	segments     obs.Counter

	// Streaming-segmenter counters. segResumed counts chunk feeds the
	// compiled scanner consumed by resuming from saved DFA state (each
	// byte scanned exactly once); segRescanned counts bytes the
	// re-splitting fallback scanned more than once; segBails counts
	// mid-document scanner bails that handed a stream to the fallback.
	segResumed   obs.Counter
	segRescanned obs.Counter
	segBails     obs.Counter

	stages [numStages]obs.Histogram // wall ns per request, by Stage

	eval  vsa.EvalMetrics
	exec  parallel.ExecMetrics
	multi vsa.MultiMetrics
}

// newMetrics builds the engine's metrics and registers every series.
// Series are prefixed spanners_engine_ / spanners_exec_ / spanners_eval_
// so several subsystems can share one /metrics page without collisions.
func newMetrics(e *Engine) *Metrics {
	m := &Metrics{reg: obs.NewRegistry()}
	r := m.reg

	r.GaugeFunc("spanners_engine_uptime_seconds", "seconds since the engine was created",
		func() float64 { return time.Since(e.start).Seconds() })
	r.BindCounter("spanners_engine_documents_total", "documents evaluated", &m.documents)
	r.BindCounter("spanners_engine_documents_streamed_total", "documents segmented incrementally while streaming", &m.streamedDocs)
	r.BindCounter("spanners_engine_bytes_total", "document bytes ingested", &m.bytes)
	r.BindCounter("spanners_engine_segments_total", "segments dispatched to evaluation", &m.segments)
	r.BindCounter("spanners_engine_segmenter_resumed_feeds_total", "chunk feeds consumed by the resumable compiled scanner", &m.segResumed)
	r.BindCounter("spanners_engine_segmenter_rescanned_bytes_total", "bytes re-scanned by the re-splitting fallback segmenter", &m.segRescanned)
	r.BindCounter("spanners_engine_segmenter_bails_total", "compiled-scanner bails to the fallback segmenter", &m.segBails)

	for s := Stage(0); s < numStages; s++ {
		r.BindDurationHistogram(`spanners_engine_stage_seconds{stage="`+s.String()+`"}`,
			"request-path stage wall time", &m.stages[s])
	}
	r.BindDurationHistogram(`spanners_engine_stage_seconds{stage="merge"}`,
		"request-path stage wall time", &m.exec.MergeNS)

	cacheStat := func(f func(CacheStats) float64) func() float64 {
		return func() float64 { return f(e.cache.stats()) }
	}
	r.CounterFunc("spanners_plan_cache_hits_total", "plan-cache hits on completed plans",
		cacheStat(func(s CacheStats) float64 { return float64(s.Hits) }))
	r.CounterFunc("spanners_plan_cache_misses_total", "plan compilations (including failed ones)",
		cacheStat(func(s CacheStats) float64 { return float64(s.Misses) }))
	r.CounterFunc("spanners_plan_cache_coalesced_total", "requests coalesced onto an in-flight compilation",
		cacheStat(func(s CacheStats) float64 { return float64(s.Coalesced) }))
	r.CounterFunc("spanners_plan_cache_evictions_total", "plans evicted by the LRU",
		cacheStat(func(s CacheStats) float64 { return float64(s.Evictions) }))
	r.GaugeFunc("spanners_plan_cache_size", "cached plans",
		cacheStat(func(s CacheStats) float64 { return float64(s.Size) }))

	r.BindCounter("spanners_exec_runs_total", "split-executor runs", &m.exec.Runs)
	r.BindCounter("spanners_exec_steals_total", "successful chunk steals", &m.exec.Steals)
	r.BindCounter("spanners_exec_chunks_total", "chunks executed", &m.exec.Chunks)
	r.BindCounter("spanners_exec_segments_total", "segments evaluated by the executor", &m.exec.Segments)
	r.BindCounter("spanners_exec_eval_bytes_total", "segment bytes evaluated by the executor", &m.exec.EvalBytes)
	r.BindDurationCounter("spanners_exec_busy_seconds_total", "summed worker time spent executing chunks", &m.exec.BusyNS)
	r.BindDurationCounter("spanners_exec_run_seconds_total", "summed executor run wall time", &m.exec.RunNS)
	r.BindGauge("spanners_exec_deque_high_water", "deepest worker deque seen, in chunks", &m.exec.DequeHighWater)

	r.BindCounter("spanners_eval_instrumented_total", "evaluations large enough to time sub-phases", &m.eval.Evals)
	r.BindCounter("spanners_eval_doc_bytes_total", "bytes in instrumented evaluations", &m.eval.DocBytes)
	r.BindDurationCounter("spanners_eval_localize_seconds_total", "time in bidirectional match-window localization", &m.eval.LocalizeNS)
	r.BindDurationCounter("spanners_eval_sim_seconds_total", "time in the tagged frontier simulation", &m.eval.SimNS)
	r.BindCounter("spanners_eval_windows_total", "match windows simulated", &m.eval.Windows)
	r.BindCounter("spanners_eval_window_bytes_total", "bytes inside simulated match windows", &m.eval.WindowBytes)
	r.BindCounter("spanners_eval_empty_total", "instrumented evaluations rejected by the forward scan alone", &m.eval.EmptyDocs)
	r.BindCounter("spanners_eval_fallbacks_total", "instrumented evaluations on the whole-document fallback path", &m.eval.Fallbacks)
	r.BindCounter("spanners_eval_prefilter_skipped_bytes_total", "bytes skipped by the literal prefilter (factor gate + trigger-byte jumps)", &m.eval.PrefilterSkippedBytes)
	r.BindCounter("spanners_eval_prefilter_candidates_total", "instrumented evaluations that passed the mandatory-factor gate", &m.eval.PrefilterCandidates)
	for rs := vsa.PrefilterReason(0); int(rs) < vsa.NumPrefilterReasons; rs++ {
		r.BindCounter(`spanners_eval_prefilter_disabled_total{reason="`+rs.String()+`"}`,
			"instrumented evaluations by prefilter admission-gate status", &m.eval.PrefilterDisabled[rs])
	}

	r.BindCounter("spanners_multi_fused_passes_total", "fused multi-query forward scans", &m.multi.FusedPasses)
	r.BindCounter("spanners_multi_fused_bytes_total", "document bytes covered by fused passes", &m.multi.FusedBytes)
	r.BindCounter("spanners_multi_fused_skipped_bytes_total", "fused-pass bytes skipped by the combined trigger-byte prefilter", &m.multi.FusedSkippedBytes)
	r.BindCounter("spanners_multi_demux_tuples_total", "result tuples demultiplexed into per-query relations", &m.multi.DemuxTuples)
	r.BindCounter("spanners_multi_admission_skips_total", "member×document pairs skipped by the per-query mandatory-factor admission bitmap", &m.multi.AdmissionSkips)
	r.BindCounter("spanners_multi_member_fallbacks_total", "member evaluations that ran standalone instead of fused", &m.multi.MemberFallbacks)

	return m
}

// observeStage records one request's wall time in a stage.
func (m *Metrics) observeStage(s Stage, d time.Duration) {
	m.stages[s].RecordDuration(d)
}

// Registry returns the engine's metric registry, for embedding the
// engine's series into a service's /metrics endpoint (the daemon adds
// its HTTP-level series to the same registry).
func (e *Engine) Registry() *obs.Registry { return e.m.reg }

// StageStats is the /v1/stats view of one pipeline stage.
type StageStats struct {
	// Count is the number of recorded stage intervals, TotalMS their
	// summed wall time.
	Count   uint64  `json:"count"`
	TotalMS float64 `json:"total_ms"`
	// Share is TotalMS over the summed wall time of the top-level
	// stages (plan + segment + eval). The top-level stages' shares sum
	// to 1; nested stages (merge, localize, sim) are fractions of the
	// same denominator, so "merge share 0.04" reads as 4% of all
	// request-path time. Nested stages measured on worker clocks can
	// exceed their parent's wall time under multi-core parallelism.
	Share float64 `json:"share"`
	// Latency percentiles per recorded interval (log₂-bucketed: exact
	// to within a factor of two). Zero when the stage records only
	// totals, not a distribution.
	P50MS float64 `json:"p50_ms,omitempty"`
	P90MS float64 `json:"p90_ms,omitempty"`
	P99MS float64 `json:"p99_ms,omitempty"`
}

// SegmenterStats is the /v1/stats view of the streaming segmenter: how
// much of the segmentation ran on the resumable compiled scanner
// (ResumedFeeds, every byte scanned once) versus the re-splitting
// fallback (RescannedBytes, the extra work it pays), and how often a
// scanner bailed mid-document (Bails).
type SegmenterStats struct {
	ResumedFeeds   uint64 `json:"resumed_feeds"`
	RescannedBytes uint64 `json:"rescanned_bytes"`
	Bails          uint64 `json:"bails"`
}

// ExecStats is the /v1/stats view of the work-stealing executor.
type ExecStats struct {
	Runs           uint64  `json:"runs"`
	Steals         uint64  `json:"steals"`
	Chunks         uint64  `json:"chunks"`
	Segments       uint64  `json:"segments"`
	EvalMB         float64 `json:"eval_mb"`
	BusyShare      float64 `json:"busy_share"` // busy worker time / (run wall time × workers)
	DequeHighWater int64   `json:"deque_high_water"`
}

// LocalizationStats is the /v1/stats view of the match-window
// localizer, over instrumented (≥ vsa.MetricsMinDocBytes) evaluations.
type LocalizationStats struct {
	InstrumentedEvals uint64  `json:"instrumented_evals"`
	WindowByteShare   float64 `json:"window_byte_share"` // simulated bytes / input bytes
	EmptyDocs         uint64  `json:"empty_docs"`
	Fallbacks         uint64  `json:"fallbacks"`
}

const msPerNS = 1e-6

func histStage(h *obs.Histogram, denomNS float64) StageStats {
	s := h.Snapshot()
	st := StageStats{
		Count:   s.Count,
		TotalMS: float64(s.Sum) * msPerNS,
		P50MS:   s.Quantile(0.50) * msPerNS,
		P90MS:   s.Quantile(0.90) * msPerNS,
		P99MS:   s.Quantile(0.99) * msPerNS,
	}
	if denomNS > 0 {
		st.Share = float64(s.Sum) / denomNS
	}
	return st
}

func counterStage(count, ns uint64, denomNS float64) StageStats {
	st := StageStats{Count: count, TotalMS: float64(ns) * msPerNS}
	if denomNS > 0 {
		st.Share = float64(ns) / denomNS
	}
	return st
}

// stageStats builds the complete per-stage breakdown in one pass.
func (m *Metrics) stageStats() map[string]StageStats {
	snaps := make([]obs.HistogramSnapshot, numStages)
	var denom float64
	for s := Stage(0); s < numStages; s++ {
		snaps[s] = m.stages[s].Snapshot()
		denom += float64(snaps[s].Sum)
	}
	out := make(map[string]StageStats, int(numStages)+3)
	for s := Stage(0); s < numStages; s++ {
		snap := snaps[s]
		st := StageStats{
			Count:   snap.Count,
			TotalMS: float64(snap.Sum) * msPerNS,
			P50MS:   snap.Quantile(0.50) * msPerNS,
			P90MS:   snap.Quantile(0.90) * msPerNS,
			P99MS:   snap.Quantile(0.99) * msPerNS,
		}
		if denom > 0 {
			st.Share = float64(snap.Sum) / denom
		}
		out[s.String()] = st
	}
	out["merge"] = histStage(&m.exec.MergeNS, denom)
	out["localize"] = counterStage(m.eval.Evals.Load(), m.eval.LocalizeNS.Load(), denom)
	out["sim"] = counterStage(m.eval.Evals.Load(), m.eval.SimNS.Load(), denom)
	return out
}

func (m *Metrics) execStats(workers int) ExecStats {
	st := ExecStats{
		Runs:           m.exec.Runs.Load(),
		Steals:         m.exec.Steals.Load(),
		Chunks:         m.exec.Chunks.Load(),
		Segments:       m.exec.Segments.Load(),
		EvalMB:         float64(m.exec.EvalBytes.Load()) / 1e6,
		DequeHighWater: m.exec.DequeHighWater.Load(),
	}
	if run := m.exec.RunNS.Load(); run > 0 && workers > 0 {
		st.BusyShare = float64(m.exec.BusyNS.Load()) / (float64(run) * float64(workers))
	}
	return st
}

func (m *Metrics) segmenterStats() SegmenterStats {
	return SegmenterStats{
		ResumedFeeds:   m.segResumed.Load(),
		RescannedBytes: m.segRescanned.Load(),
		Bails:          m.segBails.Load(),
	}
}

func (m *Metrics) localizationStats() LocalizationStats {
	st := LocalizationStats{
		InstrumentedEvals: m.eval.Evals.Load(),
		EmptyDocs:         m.eval.EmptyDocs.Load(),
		Fallbacks:         m.eval.Fallbacks.Load(),
	}
	if db := m.eval.DocBytes.Load(); db > 0 {
		st.WindowByteShare = float64(m.eval.WindowBytes.Load()) / float64(db)
	}
	return st
}
