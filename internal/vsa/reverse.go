package vsa

// This file builds the backward start-narrowing program of the match-
// window localizer (window.go): the automaton's core — everything between
// the first variable operation of a run and its emission — is stripped of
// operations, reversed with automata.Reverse over the byte-class alphabet
// of the compiled evaluation program, and determinized by the same
// internal/lazydfa engine as the forward machinery in dfa.go, so both
// directions share one construction idiom and one locking discipline.
// This client's payload is the per-class core-start flag vector of the
// subset, and it is the one client that uses seed injection: candidate
// match ends merge emit-state (or final-bearing) seeds into an already-
// walking frontier through Walker.Inject.

import (
	"repro/internal/automata"
	"repro/internal/lazydfa"
)

// revPayload is the backward DFA's per-state payload: start[c] reports
// that some subset member has an incoming forward core-entry edge on
// class c (an edge with operations leaving a status-0 state), i.e. a
// match core can begin at the boundary the backward walk is about to
// cross.
type revPayload struct {
	start []bool
}

// revProg is the compiled backward program. succ holds the reversed core
// adjacency: succ[v*nclasses+c] lists the states u with a kept forward
// edge u --c--> v, so following it walks the document right to left.
//
// Kept edges exclude two loop families that would otherwise keep the
// backward frontier alive across the whole document:
//
//   - post-emit edges (forward source is an emit state): evaluation
//     emits and drops a run when it enters an emit state, so nothing
//     after that boundary belongs to the match;
//   - prefix edges (operation-free edges between status-0 states): they
//     precede the match core, whose discovery is the whole point.
//
// The boundary between prefix and core — an edge with operations leaving
// a status-0 state — is recorded as a startPred flag on the target
// instead of a frontier member: reaching the target backwards over that
// class means a match core can begin at the boundary just crossed.
type revProg struct {
	nstates   int
	nclasses  int
	succ      [][]int32
	startPred []bool
	// seedEnd is the registered seed of the emit states: the backward
	// frontier seeds at a candidate match end. seedFin is the seed of the
	// status≠0 states with final operation sets: injected at the
	// document-end boundary.
	seedEnd int
	seedFin int
	// finSeedHasStart reports a status-0 state with final operation sets:
	// a match core can live entirely in the final boundary's operations,
	// so the document end itself is a core start.
	finSeedHasStart bool
	dfa             *lazydfa.DFA[revPayload]
}

func buildRevProg(p *evalProg, a *Automaton, st []Status, end []bool) *revProg {
	nc, n := p.nclasses, p.nstates
	r := &revProg{
		nstates:   n,
		nclasses:  nc,
		succ:      make([][]int32, n*nc),
		startPred: make([]bool, n*nc),
	}
	// The kept forward core edges as an NFA over the byte-class alphabet;
	// automata.Reverse flips them into the backward adjacency. Starts and
	// finals document the intended reading (a core runs from the prefix
	// boundary to an emit state); only the reversed adjacency is compiled.
	fwd := automata.New(nc)
	for q := 0; q < n; q++ {
		fwd.AddState(end[q])
	}
	fwd.AddStart(a.Start)
	for q := 0; q < n; q++ {
		if end[q] {
			continue // post-emit
		}
		for c := 0; c < nc; c++ {
			for _, e := range p.succ[q*nc+c] {
				if st[q] == 0 {
					if e.ops != 0 {
						r.startPred[int(e.to)*nc+c] = true
					}
					continue // prefix edge, or core entry (flagged above)
				}
				fwd.AddEdge(q, c, int(e.to))
			}
		}
	}
	fwd.DedupeEdges()
	rev := automata.Reverse(fwd)
	for v, es := range rev.Adj {
		for _, e := range es {
			r.succ[v*nc+e.Sym] = append(r.succ[v*nc+e.Sym], int32(e.To))
		}
	}
	var endSeed, finSeed []int32
	for q := 0; q < n; q++ {
		switch {
		case end[q]:
			endSeed = append(endSeed, int32(q))
		case p.hasFinal[q] && st[q] == 0:
			r.finSeedHasStart = true
		case p.hasFinal[q]:
			finSeed = append(finSeed, int32(q))
		}
	}
	r.dfa = lazydfa.New(lazydfa.Config[revPayload]{
		Classes:   nc,
		States:    n,
		MaxStates: maxDFAStates,
		Succ: func(q int32, c uint8, emit func(int32)) {
			for _, u := range r.succ[int(q)*nc+int(c)] {
				emit(u)
			}
		},
		Payload: func(set []int32) revPayload {
			start := make([]bool, nc)
			for c := 0; c < nc; c++ {
				for _, v := range set {
					if r.startPred[int(v)*nc+c] {
						start[c] = true
						break
					}
				}
			}
			return revPayload{start: start}
		},
	})
	r.seedEnd = r.dfa.Seed(endSeed)
	r.seedFin = r.dfa.Seed(finSeed)
	return r
}
