// Package lazydfa implements the one generic lazy subset-construction
// DFA engine behind every determinization cache in the system. A client
// describes an NFA-shaped successor relation over byte equivalence
// classes plus a payload function evaluated once per subset; the engine
// owns everything the former per-client copies triplicated — interned
// sorted-subset states, the transition table, the state-bound overflow
// sentinel, and the RLock-walk / Lock-fill discipline that lets many
// concurrent scans share one warm cache.
//
// The four clients (see DESIGN.md, "One DFA core, four clients"):
//
//   - vsa's Boolean-evaluation DFA (payload: subset contains a final
//     state),
//   - vsa's forward end-detection scan DFA (payload: end/finals flags),
//   - vsa's backward start-narrowing DFA (payload: per-class core-start
//     flags; uses seed injection),
//   - core's compiled splitter scanner (payload: per-class open/close/
//     wrap split events).
//
// Concurrency contract: configuration (New, Seed, Intern for start
// states) happens single-threaded at build time; afterwards any number
// of goroutines may Walk concurrently. A Walker holds the read lock
// between Walk and Release; Resolve/Inject/Yield drop it around the
// write-locked fill and refresh the Walker's state snapshot, so clients
// keep a single bounds-check-free array lookup per byte on the hot
// path. State ids are stable for the lifetime of the DFA — a client may
// save one (e.g. to resume a streamed scan at a chunk boundary) and
// walk on from it later.
package lazydfa

import "sync"

// Sentinel state ids and transition values. Dead is the interned empty
// subset, created by New with all transitions looping on itself;
// Unknown marks a transition not yet resolved; Overflow marks a
// transition whose target subset was not materialized because the DFA
// hit Config.MaxStates — the client falls back to direct subset
// simulation (or bails to a slower path) from there, instead of letting
// an adversarial automaton materialize 2^n states.
const (
	Dead     int32 = 0
	Unknown  int32 = -1
	Overflow int32 = -2
)

// DefaultMaxStates bounds a lazily built DFA when Config.MaxStates is
// zero. Real extractors determinize to a handful of subsets per byte
// class; the bound only matters for adversarial inputs.
const DefaultMaxStates = 1 << 12

// Config describes one client's determinization problem.
type Config[P any] struct {
	// Classes is the number of byte equivalence classes; every state's
	// transition table has exactly this many entries.
	Classes int
	// States is the number of underlying NFA states; subset members are
	// ids in [0, States).
	States int
	// MaxStates bounds the number of materialized DFA states (0 selects
	// DefaultMaxStates).
	MaxStates int
	// Succ emits the successors of one NFA state on one byte class. The
	// engine deduplicates and sorts across the whole subset; Succ may
	// emit duplicates freely. It is called under the DFA's write lock
	// and must only read frozen client data.
	Succ func(q int32, c uint8, emit func(to int32))
	// Payload computes the per-state payload of a subset, once, at state
	// creation (called with nil for Dead). The set is sorted and
	// duplicate-free, owned by the engine, and must not be retained or
	// mutated.
	Payload func(set []int32) P
}

// State is one interned subset-construction state. Set and Payload are
// immutable after creation; the transition table is filled in lazily
// under the DFA's write lock.
type State[P any] struct {
	Set     []int32 // sorted member states of the underlying NFA
	Payload P
	trans   []int32 // per byte class: successor id or a sentinel
	inj     []int32 // per registered seed: cached injection target
}

// Trans returns the cached transition on class c: a state id, or
// Unknown / Overflow (resolve with Walker.Resolve). Dead's transitions
// all loop on Dead.
func (s *State[P]) Trans(c uint8) int32 { return s.trans[c] }

// DFA is one lazily determinized subset automaton. Readers walk it
// under RLock via Walker; a missing transition is filled in under the
// write lock and becomes visible to every later walk — clients keep the
// DFA alive across calls (e.g. through the engine's plan cache), so the
// cache warms once per automaton, not once per document.
type DFA[P any] struct {
	cfg Config[P]

	mu     sync.RWMutex
	states []State[P]
	index  map[string]int32 // encoded subset → state id
	seeds  [][]int32

	// resolve scratch, guarded by mu (write side only).
	mark    []bool
	scratch []int32
}

// New returns a DFA containing only Dead (the interned empty subset).
// Register seeds and intern start states before the first Walk.
func New[P any](cfg Config[P]) *DFA[P] {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = DefaultMaxStates
	}
	d := &DFA[P]{
		cfg:   cfg,
		index: map[string]int32{setKey(nil): Dead},
		mark:  make([]bool, cfg.States),
	}
	d.states = append(d.states, State[P]{
		Payload: cfg.Payload(nil),
		trans:   make([]int32, cfg.Classes), // all-zero: loops on itself
	})
	return d
}

// Intern returns the state id of a subset (sorted, duplicate-free),
// creating and paying its payload if it is new. Returns Overflow at the
// state bound. Clients use it for start states; interning the empty set
// returns Dead.
func (d *DFA[P]) Intern(set []int32) int32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.intern(set)
}

// Seed registers a subset to be unioned into walking frontiers via
// Walker.Inject and returns its seed id. Injection targets are cached
// per (state, seed) pair. Must be called before the first Walk.
func (d *DFA[P]) Seed(set []int32) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seeds = append(d.seeds, set)
	for i := range d.states {
		d.states[i].inj = append(d.states[i].inj, Unknown)
	}
	return len(d.seeds) - 1
}

// Len returns the number of materialized states (including Dead).
func (d *DFA[P]) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.states)
}

// intern interns set under the write lock, copying it on a miss.
func (d *DFA[P]) intern(set []int32) int32 {
	key := setKey(set)
	if to, ok := d.index[key]; ok {
		return to
	}
	if len(d.states) >= d.cfg.MaxStates {
		return Overflow
	}
	cp := make([]int32, len(set))
	copy(cp, set)
	st := State[P]{
		Set:     cp,
		Payload: d.cfg.Payload(cp),
		trans:   make([]int32, d.cfg.Classes),
		inj:     make([]int32, len(d.seeds)),
	}
	for c := range st.trans {
		st.trans[c] = Unknown
	}
	for i := range st.inj {
		st.inj[i] = Unknown
	}
	to := int32(len(d.states))
	d.states = append(d.states, st)
	d.index[key] = to
	return to
}

// resolve fills the transition (from, class) under the write lock,
// creating the successor state if needed. The resolved value is cached
// — including the Overflow sentinel, so a DFA that hit the bound does
// not retry the construction on every byte.
func (d *DFA[P]) resolve(from int32, class uint8) int32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t := d.states[from].trans[class]; t != Unknown {
		return t // resolved by a concurrent walk
	}
	out := d.scratch[:0]
	for _, q := range d.states[from].Set {
		d.cfg.Succ(q, class, func(to int32) {
			if !d.mark[to] {
				d.mark[to] = true
				out = append(out, to)
			}
		})
	}
	for _, q := range out {
		d.mark[q] = false
	}
	sortInt32s(out)
	d.scratch = out
	to := d.intern(out)
	d.states[from].trans[class] = to
	return to
}

// inject fills the (from, seed) injection under the write lock.
func (d *DFA[P]) inject(from int32, seed int) int32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t := d.states[from].inj[seed]; t != Unknown {
		return t
	}
	to := d.intern(mergeSortedInt32s(d.states[from].Set, d.seeds[seed]))
	d.states[from].inj[seed] = to
	return to
}

// Walker is one read-locked traversal of the DFA. The States snapshot
// gives the hot loop a single array lookup per byte; it is refreshed
// whenever the lock is cycled (Resolve, Inject, Yield), since the state
// slice may have grown meanwhile. Transition entries written by other
// goroutines' resolves remain visible through a snapshot: states are
// only appended, never moved, and their trans arrays are shared.
type Walker[P any] struct {
	d      *DFA[P]
	States []State[P]
}

// Walk acquires the read lock and returns a Walker. Every Walk must be
// balanced by exactly one Release.
func (d *DFA[P]) Walk() Walker[P] {
	d.mu.RLock()
	return Walker[P]{d: d, States: d.states}
}

// Release drops the read lock. The Walker must not be used afterwards.
func (w *Walker[P]) Release() { w.d.mu.RUnlock() }

// Yield cycles the read lock, letting pending writers in. Long scans
// call it periodically: a writer blocked in resolve stalls new RLock
// acquisitions, so a walker that never yields would serialize every
// other scan behind one warm-up miss.
func (w *Walker[P]) Yield() {
	w.d.mu.RUnlock()
	w.d.mu.RLock()
	w.States = w.d.states
}

// Resolve fills the transition (from, class) and returns it: a state
// id, or Overflow past the state bound.
func (w *Walker[P]) Resolve(from int32, class uint8) int32 {
	w.d.mu.RUnlock()
	t := w.d.resolve(from, class)
	w.d.mu.RLock()
	w.States = w.d.states
	return t
}

// Inject returns the state of subset(from) ∪ seed — a registered seed
// frontier merged into an already-walking one — resolving and caching
// it on first use. Returns Overflow past the state bound.
func (w *Walker[P]) Inject(from int32, seed int) int32 {
	if t := w.States[from].inj[seed]; t != Unknown {
		return t
	}
	w.d.mu.RUnlock()
	t := w.d.inject(from, seed)
	w.d.mu.RLock()
	w.States = w.d.states
	return t
}

func setKey(set []int32) string {
	b := make([]byte, 4*len(set))
	for i, q := range set {
		b[4*i] = byte(q)
		b[4*i+1] = byte(q >> 8)
		b[4*i+2] = byte(q >> 16)
		b[4*i+3] = byte(q >> 24)
	}
	return string(b)
}

func sortInt32s(xs []int32) {
	// Subsets are tiny (frontier-sized); insertion sort beats sort.Slice
	// and allocates nothing.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// mergeSortedInt32s merges two sorted, duplicate-free slices into a
// fresh sorted, duplicate-free slice.
func mergeSortedInt32s(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
