package core

import (
	"testing"

	"repro/internal/automata"
	"repro/internal/regexformula"
	"repro/internal/vsa"
)

// coverBrute checks the cover condition by enumeration over all documents
// up to the given length: every output tuple's hull must be contained in
// some split.
func coverBrute(p *vsa.Automaton, s *Splitter, sigma string, maxLen int) bool {
	for _, d := range docs(sigma, maxLen) {
		spans := s.Split(d)
		for _, t := range p.Eval(d).Tuples {
			if len(t) == 0 {
				if len(spans) == 0 {
					return false
				}
				continue
			}
			hull := t.Hull()
			covered := false
			for _, sp := range spans {
				if sp.Contains(hull) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
	}
	return true
}

var coverCases = []struct {
	p, s string
	want bool // ground truth over all documents (verified by brute force up to length 6)
}{
	{"y{a}", "x{.*}", true},
	{".*y{a}.*", "x{.*}", true},
	{".*y{a}.*", ".*x{.}.*", true},
	{".*y{ab}.*", ".*x{.}.*", false},    // 2-byte span never fits a unit split
	{".*y{ab}.*", ".*x{..}.*", true},    // fits 2-grams
	{".*y{.}z{.}.*", ".*x{.}.*", false}, // adjacent unit spans need a 2-split
	{".*y{.}z{.}.*", ".*x{..}.*", true},
	{"a*(y{b})a*", "x{a*}(ba*)*|a*b(x{a*})(ba*)*", false}, // y sits outside the a-blocks
	{"a*(y{a})a*b*", "x{a*}b*", true},                     // y inside the a-block
	{".*y{}.*", ".*x{.}.*", false},                        // on the empty document no split covers y
	{".*y{}.*.", ".*x{.}.*", true},                        // empty spans on nonempty documents are covered
	{"y{}", "x{}", true},                                  // empty split covers empty tuple
	{"y{a}|y{b}", "x{a}|x{b}", true},
	{"y{a}|y{b}", "x{a}", false}, // on document b nothing covers y
	{"ab", "x{.*}", true},        // Boolean spanner, splitter total on ab
	{"ab", "x{a+}", false},       // Boolean spanner, splitter empty on ab
}

func TestCoverConditionAgainstBruteForce(t *testing.T) {
	for _, c := range coverCases {
		p := regexformula.MustCompile(c.p)
		s := splitterOf(t, c.s)
		brute := coverBrute(p, s, "ab", 6)
		if brute != c.want {
			t.Fatalf("test case (%s, %s) has wrong ground truth: brute force says %v", c.p, c.s, brute)
		}
		got, err := CoverCondition(p, s, 0)
		if err != nil {
			t.Fatalf("(%s, %s): %v", c.p, c.s, err)
		}
		if got != c.want {
			t.Errorf("CoverCondition(%s, %s) = %v, want %v", c.p, c.s, got, c.want)
		}
	}
}

func TestCoverConditionPolyAgreesWithGeneral(t *testing.T) {
	for _, c := range coverCases {
		p, err := regexformula.MustCompile(c.p).Determinize(0)
		if err != nil {
			t.Fatal(err)
		}
		sAuto, err := regexformula.MustCompile(c.s).Determinize(0)
		if err != nil {
			t.Fatal(err)
		}
		s := MustSplitter(sAuto)
		if !s.IsDisjoint() {
			continue // the polynomial procedure requires disjoint splitters
		}
		got, err := CoverConditionPoly(p, s)
		if err != nil {
			t.Fatalf("(%s, %s): %v", c.p, c.s, err)
		}
		if got != c.want {
			t.Errorf("CoverConditionPoly(%s, %s) = %v, want %v", c.p, c.s, got, c.want)
		}
	}
}

// TestCoverPolyConstructionUnambiguity verifies the unambiguity
// obligations behind the counting-based containment: AP_n and AP_e are
// unambiguous outright, the product AP_n × AS_n is unambiguous (AS_n may
// be ambiguous only outside L(AP_n)), and so are the per-case products.
func TestCoverPolyConstructionUnambiguity(t *testing.T) {
	for _, c := range coverCases {
		p, err := regexformula.MustCompile(c.p).Determinize(0)
		if err != nil {
			t.Fatal(err)
		}
		if p.Arity() == 0 {
			continue
		}
		sAuto, err := regexformula.MustCompile(c.s).Determinize(0)
		if err != nil {
			t.Fatal(err)
		}
		s := MustSplitter(sAuto)
		if !s.IsDisjoint() {
			continue
		}
		ctx, err := newPolyCtx(p, nil, s)
		if err != nil {
			t.Fatal(err)
		}
		apn := ctx.buildAPn()
		if !apn.IsUnambiguous() {
			t.Errorf("(%s, %s): AP_n is ambiguous", c.p, c.s)
		}
		ape := ctx.buildAPe()
		if !ape.IsUnambiguous() {
			t.Errorf("(%s, %s): AP_e is ambiguous", c.p, c.s)
		}
		asn := ctx.buildASn()
		if prod := automata.Product(apn.Trim(), asn.Trim()); !prod.IsUnambiguous() {
			t.Errorf("(%s, %s): AP_n × AS_n is ambiguous", c.p, c.s)
		}
		for k := 0; k < numCases; k++ {
			b := ctx.buildCoverCase(k)
			if prod := automata.Product(ape.Trim(), b.Trim()); !prod.IsUnambiguous() {
				t.Errorf("(%s, %s): AP_e × case %d is ambiguous", c.p, c.s, k)
			}
		}
	}
}

// TestCoverEmptyHullRegression pins the exact situation in which the
// paper's Lemma 5.6 construction loses unambiguity: an all-empty tuple at
// a boundary touched by two different disjoint splits. The cover condition
// holds and the polynomial decider must say so.
func TestCoverEmptyHullRegression(t *testing.T) {
	// P selects the empty span between the two bytes of any 2-byte
	// document; S splits the document into its two unit spans, both of
	// which touch the boundary.
	p, err := regexformula.MustCompile(".(y{}).").Determinize(0)
	if err != nil {
		t.Fatal(err)
	}
	sAuto, err := regexformula.MustCompile("x{.}.|.(x{.})").Determinize(0)
	if err != nil {
		t.Fatal(err)
	}
	s := MustSplitter(sAuto)
	if !s.IsDisjoint() {
		t.Fatal("unit splitter must be disjoint")
	}
	want, err := CoverCondition(p, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !want {
		t.Fatal("ground truth: the empty tuple is covered by both unit splits")
	}
	got, err := CoverConditionPoly(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("polynomial cover check must survive the empty-hull double-touch case")
	}
}
