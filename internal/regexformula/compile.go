package regexformula

import (
	"fmt"

	"repro/internal/vsa"
)

// CompileRaw translates a regex formula into a raw VSet-automaton via the
// Thompson construction, with capture subformulas bracketed by variable
// open/close edges. The raw automaton generates exactly the ref-word
// language R(α) of Section 4.1.
func CompileRaw(n Node) *vsa.Raw {
	vars := Vars(n)
	raw := vsa.NewRaw(vars...)
	idx := map[string]int{}
	for i, v := range vars {
		idx[v] = i
	}
	final := raw.AddState(true)
	// build wires the automaton fragment for n between states from and to.
	var build func(n Node, from, to int)
	build = func(n Node, from, to int) {
		switch t := n.(type) {
		case EmptySet:
			// no edges
		case Epsilon:
			raw.AddEpsilonEdge(from, to)
		case Lit:
			raw.AddSymbolEdge(from, t.Class, to)
		case Cat:
			cur := from
			for i, item := range t.Items {
				next := to
				if i < len(t.Items)-1 {
					next = raw.AddState(false)
				}
				build(item, cur, next)
				cur = next
			}
			if len(t.Items) == 0 {
				raw.AddEpsilonEdge(from, to)
			}
		case Alt:
			for _, item := range t.Items {
				build(item, from, to)
			}
		case Star:
			hub := raw.AddState(false)
			raw.AddEpsilonEdge(from, hub)
			raw.AddEpsilonEdge(hub, to)
			inner := raw.AddState(false)
			build(t.Inner, hub, inner)
			raw.AddEpsilonEdge(inner, hub)
		case Capture:
			v := idx[t.Var]
			openEnd := raw.AddState(false)
			closeStart := raw.AddState(false)
			raw.AddOpEdge(from, vsa.Open(v), openEnd)
			build(t.Inner, openEnd, closeStart)
			raw.AddOpEdge(closeStart, vsa.Close(v), to)
		default:
			panic(fmt.Sprintf("regexformula: unknown node %T", n))
		}
	}
	build(n, raw.Start, final)
	return raw
}

// Compile parses and compiles src all the way to a functional extended
// VSet-automaton.
func Compile(src string) (*vsa.Automaton, error) {
	n, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileRaw(n).Compile(), nil
}

// MustCompile is Compile for statically known formulas.
func MustCompile(src string) *vsa.Automaton {
	a, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return a
}

// IsFunctional reports whether the formula is functional (Section 4.1):
// every ref-word it generates is valid. Following previous work the paper
// assumes functional formulas; non-functional ones are still usable in
// this library because compilation prunes invalid ref-words, but
// IsFunctional lets callers enforce the stricter contract.
func IsFunctional(n Node) bool {
	return CompileRaw(n).IsFunctional()
}
