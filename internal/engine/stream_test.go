package engine

import (
	"testing"

	"repro/internal/library"
	"repro/internal/parallel"
)

// collect runs the segmenter over doc in chunks of size n and returns
// all emitted segments in order.
func collect(doc string, n int) []parallel.Segment {
	g := newSegmenter(library.Sentences())
	var out []parallel.Segment
	for lo := 0; lo < len(doc); lo += n {
		hi := lo + n
		if hi > len(doc) {
			hi = len(doc)
		}
		out = append(out, g.feed([]byte(doc[lo:hi]))...)
	}
	return append(out, g.flush()...)
}

func TestSegmenterMatchesOneShotSplit(t *testing.T) {
	docs := []string{
		"",
		".",
		"no terminator at all",
		"one. two! three? four\nfive.",
		"trailing terminator.",
		"..!!..",
		"a.b.c.d.e.f.g.h",
	}
	s := library.Sentences()
	for _, doc := range docs {
		want := parallel.SegmentsOf(doc, s.Split(doc))
		for n := 1; n <= len(doc)+1; n++ {
			got := collect(doc, n)
			if len(got) != len(want) {
				t.Fatalf("doc %q chunk %d: %d segments, want %d (%v vs %v)", doc, n, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("doc %q chunk %d: segment %d = %+v, want %+v", doc, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSegmenterCarryKeepsBufferSmall(t *testing.T) {
	// After feeding many complete sentences the buffer must hold only
	// the still-open tail, not the whole document.
	g := newSegmenter(library.Sentences())
	for i := 0; i < 100; i++ {
		g.feed([]byte("a sentence here. "))
	}
	if len(g.buf) > 64 {
		t.Fatalf("buffer grew to %d bytes; carry-over is not trimming", len(g.buf))
	}
}
