// Package span implements the basic objects of the document-spanner
// framework of Fagin et al. as used in "Split-Correctness in Information
// Extraction" (Doleschal et al., PODS 2019), Section 2: documents, spans,
// (V,d)-tuples, span relations, and the shift operator of Figure 1.
//
// A span [i,j⟩ of a document d of length n is a pair of 1-based positions
// with 1 ≤ i ≤ j ≤ n+1 and denotes the substring d[i..j-1]. Two spans are
// equal only if their endpoints are equal; equality of the selected
// substrings does not imply equality of the spans.
package span

import (
	"fmt"
	"sort"
	"strings"
)

// Span is an interval [Start, End⟩ of 1-based positions in a document.
// The zero value is not a valid span; valid spans satisfy 1 ≤ Start ≤ End.
type Span struct {
	Start int // inclusive, 1-based
	End   int // exclusive, 1-based
}

// Invalid is a sentinel used for unset variables in partially built tuples.
var Invalid = Span{0, 0}

// New returns the span [i,j⟩. It panics if i < 1 or j < i, which always
// indicates a programming error rather than bad input data.
func New(i, j int) Span {
	if i < 1 || j < i {
		panic(fmt.Sprintf("span: invalid span [%d,%d⟩", i, j))
	}
	return Span{i, j}
}

// FromByteOffsets converts a half-open 0-based byte interval [lo,hi) into
// the paper's 1-based span notation.
func FromByteOffsets(lo, hi int) Span { return New(lo+1, hi+1) }

// ByteOffsets returns the 0-based half-open byte interval of s.
func (s Span) ByteOffsets() (lo, hi int) { return s.Start - 1, s.End - 1 }

// IsValid reports whether s is a well-formed span (1 ≤ Start ≤ End).
func (s Span) IsValid() bool { return s.Start >= 1 && s.Start <= s.End }

// ValidFor reports whether s is a span of a document of length n,
// i.e. 1 ≤ Start ≤ End ≤ n+1.
func (s Span) ValidFor(n int) bool { return s.IsValid() && s.End <= n+1 }

// Len returns the number of symbols covered by s.
func (s Span) Len() int { return s.End - s.Start }

// IsEmpty reports whether s covers no symbols.
func (s Span) IsEmpty() bool { return s.Start == s.End }

// In returns the substring d[Start..End-1] selected by s.
// It panics if s is not a span of d.
func (s Span) In(d string) string {
	if !s.ValidFor(len(d)) {
		panic(fmt.Sprintf("span: %v not a span of document of length %d", s, len(d)))
	}
	return d[s.Start-1 : s.End-1]
}

// Shift implements the shift operator s' ≫ s of Figure 1: it re-interprets
// s (a span of the substring selected by by) as a span of the original
// document, shifting it by.Start-1 positions to the right.
func (s Span) Shift(by Span) Span {
	return Span{s.Start + by.Start - 1, s.End + by.Start - 1}
}

// Unshift is the inverse of Shift: (s.Shift(by)).Unshift(by) == s.
// It panics if s does not lie within by.
func (s Span) Unshift(by Span) Span {
	if !by.Contains(s) {
		panic(fmt.Sprintf("span: %v does not contain %v", by, s))
	}
	return Span{s.Start - by.Start + 1, s.End - by.Start + 1}
}

// Overlaps reports whether s and o overlap, following the paper's
// definition: [i,j⟩ and [i',j'⟩ overlap if i ≤ i' < j or i' ≤ i < j'.
func (s Span) Overlaps(o Span) bool {
	return (s.Start <= o.Start && o.Start < s.End) ||
		(o.Start <= s.Start && s.Start < o.End)
}

// Disjoint reports whether s and o are disjoint (do not overlap).
func (s Span) Disjoint(o Span) bool { return !s.Overlaps(o) }

// Contains reports whether s contains o: i ≤ i' ≤ j' ≤ j.
func (s Span) Contains(o Span) bool {
	return s.Start <= o.Start && o.End <= s.End
}

// String renders s in the paper's [i,j⟩ notation.
func (s Span) String() string { return fmt.Sprintf("[%d,%d⟩", s.Start, s.End) }

// Compare orders spans lexicographically by (Start, End).
func (s Span) Compare(o Span) int {
	switch {
	case s.Start != o.Start:
		if s.Start < o.Start {
			return -1
		}
		return 1
	case s.End != o.End:
		if s.End < o.End {
			return -1
		}
		return 1
	}
	return 0
}

// AllenRelation is one of the thirteen basic relations of Allen's interval
// algebra, specialized to (possibly empty) spans. It is used by tests and
// by the disjointness checker's documentation; Overlaps above is the
// paper's coarser predicate.
type AllenRelation int

// The thirteen Allen relations between spans a and b.
const (
	Before        AllenRelation = iota // a entirely before b, with a gap
	Meets                              // a.End == b.Start (and a,b not both empty there)
	OverlapsAllen                      // proper overlap, a starts first
	Starts                             // same start, a ends first
	During                             // a strictly inside b
	Finishes                           // same end, a starts later
	Equal                              // identical spans
	FinishedBy                         // inverse of Finishes
	ContainsAllen                      // inverse of During
	StartedBy                          // inverse of Starts
	OverlappedBy                       // inverse of OverlapsAllen
	MetBy                              // inverse of Meets
	After                              // inverse of Before
)

var allenNames = [...]string{
	"before", "meets", "overlaps", "starts", "during", "finishes", "equal",
	"finishedBy", "contains", "startedBy", "overlappedBy", "metBy", "after",
}

func (r AllenRelation) String() string {
	if r < 0 || int(r) >= len(allenNames) {
		return fmt.Sprintf("AllenRelation(%d)", int(r))
	}
	return allenNames[r]
}

// Allen returns the Allen relation of a with respect to b.
func Allen(a, b Span) AllenRelation {
	switch {
	case a == b:
		return Equal
	case a.End < b.Start:
		return Before
	case b.End < a.Start:
		return After
	case a.End == b.Start:
		return Meets
	case b.End == a.Start:
		return MetBy
	case a.Start == b.Start:
		if a.End < b.End {
			return Starts
		}
		return StartedBy
	case a.End == b.End:
		if a.Start > b.Start {
			return Finishes
		}
		return FinishedBy
	case a.Start > b.Start && a.End < b.End:
		return During
	case b.Start > a.Start && b.End < a.End:
		return ContainsAllen
	case a.Start < b.Start:
		return OverlapsAllen
	default:
		return OverlappedBy
	}
}

// Tuple is a (V,d)-tuple: an assignment of one span per variable. The
// variable names are kept by the enclosing Relation; a Tuple is positional.
type Tuple []Span

// Equal reports whether t and o assign the same spans position-wise.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// Shift shifts every span of t by the span by, implementing t ≫ s.
func (t Tuple) Shift(by Span) Tuple {
	out := make(Tuple, len(t))
	for i, s := range t {
		out[i] = s.Shift(by)
	}
	return out
}

// Unshift undoes Shift; it panics if some span of t lies outside by.
func (t Tuple) Unshift(by Span) Tuple {
	out := make(Tuple, len(t))
	for i, s := range t {
		out[i] = s.Unshift(by)
	}
	return out
}

// Hull returns the minimal span covering every span of t, i.e. the span
// [min starts, max ends⟩ used by the cover condition (Definition 5.2).
// It panics on an empty tuple (Boolean spanners have no hull).
func (t Tuple) Hull() Span {
	if len(t) == 0 {
		panic("span: hull of an empty tuple")
	}
	h := t[0]
	for _, s := range t[1:] {
		if s.Start < h.Start {
			h.Start = s.Start
		}
		if s.End > h.End {
			h.End = s.End
		}
	}
	return h
}

// Compare orders tuples lexicographically span-by-span.
func (t Tuple) Compare(o Tuple) int {
	for i := range t {
		if i >= len(o) {
			return 1
		}
		if c := t[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	if len(t) < len(o) {
		return -1
	}
	return 0
}

// Key returns a compact string key identifying t, for use in map-based
// de-duplication.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, s := range t {
		fmt.Fprintf(&b, "%d:%d;", s.Start, s.End)
	}
	return b.String()
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, s := range t {
		parts[i] = s.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Relation is a (V,d)-relation: a set of tuples over named variables.
// Tuples are positional with respect to Vars.
type Relation struct {
	Vars   []string
	Tuples []Tuple
}

// NewRelation returns an empty relation over the given variables.
func NewRelation(vars ...string) *Relation {
	return &Relation{Vars: append([]string(nil), vars...)}
}

// Add appends t if it is not already present. It returns true if added.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != len(r.Vars) {
		panic(fmt.Sprintf("span: tuple arity %d does not match relation arity %d", len(t), len(r.Vars)))
	}
	for _, u := range r.Tuples {
		if u.Equal(t) {
			return false
		}
	}
	r.Tuples = append(r.Tuples, t)
	return true
}

// Has reports whether t is in the relation.
func (r *Relation) Has(t Tuple) bool {
	for _, u := range r.Tuples {
		if u.Equal(t) {
			return true
		}
	}
	return false
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Sort orders the tuples lexicographically, giving a canonical form.
func (r *Relation) Sort() {
	sort.Slice(r.Tuples, func(i, j int) bool {
		return r.Tuples[i].Compare(r.Tuples[j]) < 0
	})
}

// Dedupe removes duplicate tuples in place (sorting first).
func (r *Relation) Dedupe() {
	r.Sort()
	out := r.Tuples[:0]
	for i, t := range r.Tuples {
		if i == 0 || !t.Equal(r.Tuples[i-1]) {
			out = append(out, t)
		}
	}
	r.Tuples = out
}

// Equal reports whether r and o are the same set of tuples over the same
// variable list. Both relations are sorted as a side effect.
func (r *Relation) Equal(o *Relation) bool {
	if len(r.Vars) != len(o.Vars) {
		return false
	}
	for i := range r.Vars {
		if r.Vars[i] != o.Vars[i] {
			return false
		}
	}
	r.Dedupe()
	o.Dedupe()
	if len(r.Tuples) != len(o.Tuples) {
		return false
	}
	for i := range r.Tuples {
		if !r.Tuples[i].Equal(o.Tuples[i]) {
			return false
		}
	}
	return true
}

// Project returns the projection of r onto the given variables, which must
// be a subset of r.Vars. Duplicate projected tuples are removed.
func (r *Relation) Project(vars []string) (*Relation, error) {
	idx := make([]int, len(vars))
	for i, v := range vars {
		j := indexOf(r.Vars, v)
		if j < 0 {
			return nil, fmt.Errorf("span: project: variable %q not in relation", v)
		}
		idx[i] = j
	}
	out := NewRelation(vars...)
	for _, t := range r.Tuples {
		p := make(Tuple, len(idx))
		for i, j := range idx {
			p[i] = t[j]
		}
		out.Add(p)
	}
	return out, nil
}

// Join returns the natural join r ⋈ o on shared variable names
// (Definition A.1). The result's variables are r.Vars followed by the
// variables of o not in r.
func (r *Relation) Join(o *Relation) *Relation {
	shared := [][2]int{} // (index in r, index in o)
	extra := []int{}     // indices in o of variables not in r
	for j, v := range o.Vars {
		if i := indexOf(r.Vars, v); i >= 0 {
			shared = append(shared, [2]int{i, j})
		} else {
			extra = append(extra, j)
		}
	}
	vars := append([]string(nil), r.Vars...)
	for _, j := range extra {
		vars = append(vars, o.Vars[j])
	}
	out := NewRelation(vars...)
	for _, t := range r.Tuples {
	next:
		for _, u := range o.Tuples {
			for _, p := range shared {
				if t[p[0]] != u[p[1]] {
					continue next
				}
			}
			joined := make(Tuple, 0, len(vars))
			joined = append(joined, t...)
			for _, j := range extra {
				joined = append(joined, u[j])
			}
			out.Add(joined)
		}
	}
	return out
}

// Union adds all tuples of o (which must have the same variables) to r.
func (r *Relation) Union(o *Relation) error {
	if len(r.Vars) != len(o.Vars) {
		return fmt.Errorf("span: union: relations not union compatible")
	}
	for i := range r.Vars {
		if r.Vars[i] != o.Vars[i] {
			return fmt.Errorf("span: union: relations not union compatible")
		}
	}
	for _, t := range o.Tuples {
		r.Add(t)
	}
	return nil
}

// ShiftAll returns a copy of r with every tuple shifted by the span by.
func (r *Relation) ShiftAll(by Span) *Relation {
	out := NewRelation(r.Vars...)
	for _, t := range r.Tuples {
		out.Tuples = append(out.Tuples, t.Shift(by))
	}
	return out
}

func (r *Relation) String() string {
	r.Sort()
	var b strings.Builder
	b.WriteString("{" + strings.Join(r.Vars, ",") + "}: ")
	for i, t := range r.Tuples {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(t.String())
	}
	return b.String()
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
