package vsa

import (
	"testing"

	"repro/internal/alphabet"
)

func TestOpSetBasics(t *testing.T) {
	o := Open(0) | Close(0) | Open(2)
	if !o.OpensVar(0) || !o.ClosesVar(0) || !o.OpensVar(2) || o.OpensVar(1) {
		t.Fatal("OpSet membership broken")
	}
	if o.Count() != 3 {
		t.Fatalf("Count = %d", o.Count())
	}
	if Wrap(1) != Open(1)|Close(1) {
		t.Fatal("Wrap broken")
	}
	if AllOps(2) != Open(0)|Close(0)|Open(1)|Close(1) {
		t.Fatal("AllOps broken")
	}
	if AllOps(0) != 0 {
		t.Fatal("AllOps(0) must be empty")
	}
}

func TestStatusApply(t *testing.T) {
	st := Status(0)
	st2, ok := st.Apply(Open(0))
	if !ok || st2.VarStatus(0) != statusOpen {
		t.Fatal("open failed")
	}
	st3, ok := st2.Apply(Close(0))
	if !ok || st3.VarStatus(0) != statusClosed {
		t.Fatal("close failed")
	}
	if _, ok := st3.Apply(Open(0)); ok {
		t.Fatal("reopening must fail")
	}
	if _, ok := st.Apply(Close(0)); ok {
		t.Fatal("closing unopened must fail")
	}
	// Wrap applies open before close thanks to the canonical order.
	st4, ok := st.Apply(Wrap(1))
	if !ok || st4.VarStatus(1) != statusClosed {
		t.Fatal("wrap failed")
	}
	if AllClosed(2).VarStatus(0) != statusClosed || AllClosed(2).VarStatus(1) != statusClosed {
		t.Fatal("AllClosed broken")
	}
}

func TestStatusDiff(t *testing.T) {
	st := Status(0)
	cur, _ := st.Apply(Open(0) | Wrap(1))
	if d := st.Diff(cur, 2); d != Open(0)|Wrap(1) {
		t.Fatalf("Diff = %v", d)
	}
	if d := cur.Diff(cur, 2); d != 0 {
		t.Fatalf("self Diff = %v", d)
	}
}

// buildXWrap returns the eVSA for the formula Σ* x{a} Σ* built by hand.
func buildXWrap(t *testing.T) *Automaton {
	t.Helper()
	a := NewAutomaton("x")
	mid := a.AddState()
	post := a.AddState()
	a.AddEdge(0, 0, alphabet.Any, 0)             // Σ* prefix
	a.AddEdge(0, Open(0), alphabet.Of('a'), mid) // x opens, reads 'a'
	a.AddEdge(mid, Close(0), alphabet.Any, post) // x closes, then a suffix byte
	a.AddFinal(mid, Close(0))                    // x closes at end of document
	a.AddEdge(post, 0, alphabet.Any, post)       // Σ* suffix
	a.AddFinal(post, 0)
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return a
}

func TestEvalHandBuilt(t *testing.T) {
	a := buildXWrap(t)
	rel := a.Eval("aba")
	if rel.Len() != 2 {
		t.Fatalf("expected 2 matches of x{a} in aba, got %d: %v", rel.Len(), rel)
	}
	for _, tp := range rel.Tuples {
		if tp[0].In("aba") != "a" {
			t.Fatalf("tuple %v does not select a", tp)
		}
	}
}

func TestEvalBoolMatchesEval(t *testing.T) {
	a := buildXWrap(t)
	for _, d := range []string{"", "b", "a", "bb", "ab", "bab", "bbb"} {
		if a.EvalBool(d) != (a.Eval(d).Len() > 0) {
			t.Fatalf("EvalBool disagrees with Eval on %q", d)
		}
	}
}

func TestValidateCatchesBrokenAutomata(t *testing.T) {
	a := NewAutomaton("x")
	// Close x without opening it.
	a.AddFinal(0, Close(0))
	if err := a.Validate(); err == nil {
		t.Fatal("Validate must reject closing an unopened variable")
	}
	b := NewAutomaton("x")
	// Final leaves x unopened.
	b.AddFinal(0, 0)
	if err := b.Validate(); err == nil {
		t.Fatal("Validate must reject unclosed variables at acceptance")
	}
	c := NewAutomaton("x")
	mid := c.AddState()
	c.AddEdge(0, Open(0), alphabet.Any, mid)
	c.AddEdge(0, 0, alphabet.Any, mid) // same state, conflicting statuses
	if _, err := c.Statuses(); err == nil {
		t.Fatal("Statuses must detect conflicting statuses")
	}
}

func TestTrimRemovesUselessStates(t *testing.T) {
	a := NewAutomaton()
	dead := a.AddState()
	a.AddEdge(0, 0, alphabet.Any, dead) // dead end: no finals reachable
	live := a.AddState()
	a.AddEdge(0, 0, alphabet.Of('a'), live)
	a.AddFinal(live, 0)
	tr := a.Trim()
	if tr.NumStates() != 2 {
		t.Fatalf("Trim left %d states, want 2", tr.NumStates())
	}
	if !tr.EvalBool("a") || tr.EvalBool("b") {
		t.Fatal("Trim changed the language")
	}
}

func TestIsEmptyLanguage(t *testing.T) {
	a := NewAutomaton("x")
	if !a.IsEmptyLanguage() {
		t.Fatal("fresh automaton must be empty")
	}
	mid := a.AddState()
	a.AddEdge(0, Wrap(0), alphabet.Any, mid)
	a.AddFinal(mid, 0)
	if a.IsEmptyLanguage() {
		t.Fatal("automaton with accepting path must be nonempty")
	}
}

func TestReorderVars(t *testing.T) {
	a := NewAutomaton("x", "y")
	mid := a.AddState()
	a.AddEdge(0, Wrap(0)|Open(1), alphabet.Of('a'), mid)
	a.AddFinal(mid, Close(1))
	b, err := a.ReorderVars([]string{"y", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if b.Vars[0] != "y" || b.Vars[1] != "x" {
		t.Fatal("vars not reordered")
	}
	ra := a.Eval("a")
	rb := b.Eval("a")
	// Same tuples modulo column order.
	pa, _ := ra.Project([]string{"x", "y"})
	pb, _ := rb.Project([]string{"x", "y"})
	if !pa.Equal(pb) {
		t.Fatalf("reorder changed semantics: %v vs %v", pa, pb)
	}
	if _, err := a.ReorderVars([]string{"x", "z"}); err == nil {
		t.Fatal("reorder with unknown variable must fail")
	}
}

func TestIsDeterministic(t *testing.T) {
	a := NewAutomaton()
	s1 := a.AddState()
	s2 := a.AddState()
	a.AddEdge(0, 0, alphabet.Of('a'), s1)
	a.AddEdge(0, 0, alphabet.Of('b'), s2)
	if !a.IsDeterministic() {
		t.Fatal("disjoint classes must be deterministic")
	}
	a.AddEdge(0, 0, alphabet.Of('a', 'c'), s2)
	if a.IsDeterministic() {
		t.Fatal("overlapping classes to different states must be nondeterministic")
	}
}
