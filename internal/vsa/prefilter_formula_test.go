package vsa_test

// Formula-level factor-extraction tests: compiled through the regex
// formula front end (hence the external test package — regexformula
// imports vsa), these pin down the literal evidence the prefilter finds
// on realistic extractor shapes, and that the filtered evaluation paths
// agree with prefilter-disabled copies of the same formulas.

import (
	"strings"
	"testing"

	"repro/internal/library"
	"repro/internal/regexformula"
	"repro/internal/vsa"
)

func compile(t *testing.T, src string) *vsa.Automaton {
	t.Helper()
	a, err := regexformula.Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return a
}

func TestPrefilterFormulaFactors(t *testing.T) {
	cases := []struct {
		name, src, factor string
		reason            vsa.PrefilterReason
	}{
		{"anchored literal", `bad (y{[a-z]+})`, "bad ", vsa.PrefilterOK},
		{"unanchored literal", `.*(y{bad}).*`, "bad", vsa.PrefilterOK},
		{"alternation with common factor", `(y{(abc|zbc)})`, "bc", vsa.PrefilterOK},
		{"alternation without common factor", `(y{(foo|bar)})`, "", vsa.PrefilterNoMandatoryByte},
		{"case class collapses to suffix", `(y{[Bb]ad})`, "ad", vsa.PrefilterOK},
		{"optional prefix keeps factor", `(.*[ .!?` + "\\n" + `])?bad (y{[a-z]+})(([^a-z].*)?|)`, "bad ", vsa.PrefilterOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pf := compile(t, tc.src).Prefilter()
			if pf.Factor != tc.factor || pf.Reason != tc.reason {
				t.Fatalf("%s: got factor %q reason %v, want %q/%v",
					tc.src, pf.Factor, pf.Reason, tc.factor, tc.reason)
			}
		})
	}
}

// TestPrefilterLibraryNegativeSentiment pins the factor of the benchmark
// suite's headline extractor: the sparse-corpus speedups claimed in
// BENCH_PR9.json rest on this gate being armed.
func TestPrefilterLibraryNegativeSentiment(t *testing.T) {
	pf := library.NegativeSentiment().Prefilter()
	if pf.Reason != vsa.PrefilterOK || pf.Factor != "bad " {
		t.Fatalf("NegativeSentiment: got factor %q reason %v, want \"bad \"/ok", pf.Factor, pf.Reason)
	}
}

// TestPrefilterFormulaEvalAgrees runs the compiled formulas with and
// without the prefilter over documents placing the factor at awkward
// offsets, asserting identical relations and Boolean verdicts.
func TestPrefilterFormulaEvalAgrees(t *testing.T) {
	srcs := []string{
		`bad (y{[a-z]+})`,
		`.*(y{bad}).*`,
		`(y{(abc|zbc)})`,
		`(y{(foo|bar)})`,
		`(.*[ .!?` + "\\n" + `])?bad (y{[a-z]+})(([^a-z].*)?|)`,
	}
	pad := strings.Repeat("the quick brown fox. ", 40)
	for _, src := range srcs {
		on := compile(t, src)
		off := compile(t, src)
		off.DisablePrefilter()
		docs := []string{
			"",
			"bad service",
			"abc", "zbc", "foo", "bar",
			pad,
			pad + "bad stuff",
			"bad luck. " + pad,
			pad + "bad day. " + pad,
			strings.Repeat("b", 100) + "ad x", // near-misses of the factor
		}
		for _, doc := range docs {
			if g, w := on.EvalBool(doc), off.EvalBool(doc); g != w {
				t.Fatalf("%s: EvalBool filtered=%v unfiltered=%v on %q…", src, g, w, doc[:min(len(doc), 24)])
			}
			g, w := on.Eval(doc), off.Eval(doc)
			if !g.Equal(w) {
				t.Fatalf("%s: Eval differs on %q…:\nfiltered:   %v\nunfiltered: %v",
					src, doc[:min(len(doc), 24)], g, w)
			}
		}
	}
}
