package parallel

import (
	"time"

	"repro/internal/obs"
)

// ExecMetrics collects the work-stealing executor's scheduling
// statistics across runs. All fields are cumulative and lock-free.
// Recording is designed to stay off the per-segment hot path: each
// worker accumulates into a plain (unshared) workerStats while it runs
// — two clock reads per chunk, simple integer adds per segment — and
// flushes to these atomics once, when it exits. An executor run with a
// nil *ExecMetrics records nothing and times nothing.
type ExecMetrics struct {
	// Runs counts executor runs; RunNS sums their wall time (workers
	// started to workers joined, merge excluded). BusyNS sums the time
	// workers spent executing chunks, across all workers — so
	// BusyNS / (RunNS × workers) is the pool's busy fraction, and the
	// gap to 1 is time lost to stealing, feed waits and ramp-down.
	Runs   obs.Counter
	RunNS  obs.Counter
	BusyNS obs.Counter
	// Steals counts successful steals; Chunks and Segments the units
	// executed; EvalBytes the segment text evaluated.
	Steals    obs.Counter
	Chunks    obs.Counter
	Segments  obs.Counter
	EvalBytes obs.Counter
	// MergeNS is the per-run final merge (concatenate + offset-sort +
	// dedupe) latency histogram, in nanoseconds.
	MergeNS obs.Histogram
	// DequeHighWater is the deepest any worker's deque has been, in
	// chunks — the backlog admission control will want to watch.
	DequeHighWater obs.Gauge
}

// workerStats is one worker's private tally, flushed to the shared
// ExecMetrics atomics exactly once at worker exit.
type workerStats struct {
	steals, chunks, segments, bytes uint64
	busy                            time.Duration
	dequeMax                        int
}

func (m *ExecMetrics) flush(ws *workerStats) {
	if m == nil {
		return
	}
	m.Steals.Add(ws.steals)
	m.Chunks.Add(ws.chunks)
	m.Segments.Add(ws.segments)
	m.EvalBytes.Add(ws.bytes)
	m.BusyNS.AddDuration(ws.busy)
	m.DequeHighWater.Max(int64(ws.dequeMax))
}
