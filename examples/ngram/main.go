// The N-gram speedup experiment of Section 1 in miniature: extracting
// 2-grams and 3-grams of Wikipedia-like sentences, comparing sequential
// whole-document evaluation of the composed spanner with split-parallel
// evaluation over 5 workers.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/library"
	"repro/internal/parallel"
)

func main() {
	doc := corpus.Wikipedia(1, 1<<19) // ~0.5 MB
	sentences := library.Sentences()
	segs := parallel.SegmentsOf(doc, library.FastSentenceSplit(doc))
	fmt.Printf("corpus: %d bytes, %d sentences\n", len(doc), len(segs))

	for _, n := range []int{2, 3} {
		ngram := library.NGrams(n)
		composed := core.Compose(ngram.Automaton(), sentences)
		m, err := parallel.Measure(fmt.Sprintf("%d-grams", n), composed, ngram.Automaton(), doc, segs, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("N=%d: sequential=%v split=%v speedup=%.2fx ngrams=%d\n",
			n, m.Sequential, m.Split, m.Speedup, m.Tuples)
	}
	fmt.Println("(the paper reports 2.10x for N=2 and 3.11x for N=3 on 5 cores)")
}
