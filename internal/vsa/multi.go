package vsa

// This file implements multi-query shared evaluation: N compiled
// spanners ("members") fused so that ONE forward pass over a document
// drives the match-window localization of every member at once
// (DESIGN.md, "Multi-query shared evaluation"). The construction is the
// disjoint union of the members' forward end-detection scan automata
// (window.go) — the spanner-algebra union construction specialized to
// the Boolean scan layer, with per-member namespacing done by state
// offsets instead of tag renaming:
//
//   - Fused NFA states are member scan states shifted by a per-member
//     base offset, so member i's state q becomes base[i]+q and no two
//     members' states collide. There are no cross-member edges, so the
//     reachable fused subset at every boundary is exactly the union of
//     the per-member scan subsets — the projection [base[i], base[i]+nᵢ)
//     of a fused subset IS member i's subset, which is what makes every
//     per-member artifact below provably identical to a standalone Eval.
//   - The fused lazy DFA's payload is a pair of per-member bitmaps
//     (multiFlags): bit i of end/fin says member i's subset contains an
//     emit-truncated end state / a final-bearing state. Demultiplexing
//     is reading those bitmaps: the single pass yields each member its
//     own candidate match-end runs and its own finals-at-end flag,
//     byte-identical to the member's own scanProg.forward.
//   - Variable tags never enter the fused automaton. The tagged frontier
//     simulation (the only part that touches OpSets) runs per member,
//     on the member's own compiled program, inside the member's own
//     narrowed windows — so MaxVars bounds each member, not the batch,
//     and no tag renaming or collision handling is needed.
//
// Per-member mandatory-factor prefilters become an admission bitmap:
// a member whose factor is absent from the document is excluded from
// the fused start subset (its relation is provably empty — the factor
// is mandatory in every accepted document), while the remaining members
// scan at full strength. Each distinct admission mask gets its own
// interned fused start state, cached per group.
//
// Fallbacks preserve byte-identity in every corner: members without a
// localizer are evaluated standalone per document; a fused-DFA overflow
// falls every member of the group back to its standalone EvalAppend;
// a single member's backward-narrowing overflow falls only that member
// back. Differential fuzzing (parallel.FuzzMultiVsSequential) holds the
// whole construction to "byte-identical per query to Eval".

import (
	"math/bits"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/alphabet"
	"repro/internal/lazydfa"
	"repro/internal/obs"
	"repro/internal/span"
)

// maxGroupMembers bounds one fused group: admission masks, end bitmaps
// and finals bitmaps are uint64s indexed by the member's slot within
// its group. Larger batches are split into several groups, each with
// its own fused DFA.
const maxGroupMembers = 64

// maxMultiDFAStates bounds one group's fused lazy DFA. The fused subset
// space is (at worst) the product of the members' subset spaces, so the
// bound scales with the group size — overflowing it is not an error,
// just a fallback to per-member evaluation.
const maxMultiDFAStates = 1 << 16

// MultiMetrics collects fused-pass statistics across every evaluation
// of a Multi (see Multi.SetMetrics). All fields are cumulative,
// lock-free counters.
type MultiMetrics struct {
	// FusedPasses counts fused forward scans (one per admitted group per
	// document); FusedBytes the document bytes they covered — each such
	// byte answered every admitted member of the group at once.
	FusedPasses obs.Counter
	FusedBytes  obs.Counter
	// FusedSkippedBytes counts bytes the fused scan's trigger-byte skip
	// loop jumped over (the literal prefilter's mid-scan mechanism).
	FusedSkippedBytes obs.Counter
	// DemuxTuples counts result tuples demultiplexed into per-member
	// relations (solo and fallback members included).
	DemuxTuples obs.Counter
	// AdmissionSkips counts (member, document) pairs the per-member
	// mandatory-factor admission bitmap excluded from the fused pass.
	AdmissionSkips obs.Counter
	// MemberFallbacks counts member evaluations that ran standalone:
	// members without a localizer, fused-DFA overflows, and per-member
	// narrowing overflows.
	MemberFallbacks obs.Counter
}

// multiFlags is the fused scan DFA's per-state payload: per-member-slot
// bitmaps saying whose subset contains an emit-truncated end state
// (end) and whose contains a final-bearing state (fin).
type multiFlags struct {
	end uint64
	fin uint64
}

// Multi is a set of compiled spanners fused for one-pass multi-query
// evaluation. Build one with NewMulti, then Prepare (or let the first
// evaluation prepare lazily); afterwards it is safe for concurrent use,
// like the member automata themselves. Duplicate members are legal and
// evaluated independently.
type Multi struct {
	members []*Automaton

	prepOnce sync.Once
	groups   []*multiGroup
	solo     []int // members without a localizer: evaluated standalone

	metrics atomic.Pointer[MultiMetrics]
}

// multiGroup is one fused unit of up to maxGroupMembers localizable
// members: the combined byte-class table, the disjoint-union scan NFA
// and its lazy DFA, and the per-admission-mask start states.
type multiGroup struct {
	members []int        // indices into Multi.members, by slot
	autos   []*Automaton // aliases, by slot
	progs   []*evalProg
	locs    []*localizer
	factors []string // admission factor per slot ("" = always admitted)

	base     []int32 // fused-state offset per slot
	nstates  int     // total fused NFA states
	nclasses int     // combined byte classes
	classOf  [256]uint8
	classMap [][]uint8 // per slot: combined class → member class
	owner    []uint8   // fused NFA state → slot
	local    []int32   // fused NFA state → member-local state

	fullMask uint64
	noSkip   bool

	dfa   *lazydfa.DFA[multiFlags]
	skips lazydfa.SkipCache

	mu     sync.Mutex
	starts map[uint64]int32 // admission mask → interned fused start state
}

// NewMulti returns a Multi over the given member spanners. The slice is
// copied; the automata are shared (and frozen on first evaluation).
func NewMulti(members ...*Automaton) *Multi {
	if len(members) == 0 {
		panic("vsa: NewMulti requires at least one member")
	}
	return &Multi{members: append([]*Automaton(nil), members...)}
}

// Len returns the number of member queries.
func (m *Multi) Len() int { return len(m.members) }

// Member returns member query i's automaton.
func (m *Multi) Member(i int) *Automaton { return m.members[i] }

// SetMetrics attaches a fused-pass metrics collector (nil detaches).
// Like Automaton.SetEvalMetrics it is not part of the frozen compiled
// state and may be set at any time.
func (m *Multi) SetMetrics(mm *MultiMetrics) { m.metrics.Store(mm) }

// Prepare builds the fused machinery (grouping, combined class table,
// fused lazy DFA start states) and Prepares every member, so the first
// evaluation does not pay for construction. Idempotent and safe for
// concurrent use.
func (m *Multi) Prepare() {
	m.prepOnce.Do(m.build)
}

func (m *Multi) build() {
	var fused []int
	for i, a := range m.members {
		a.Prepare()
		if a.localizer().ok {
			fused = append(fused, i)
		} else {
			// No forward scan program to fuse: the member evaluates
			// standalone (its own EvalAppend fallback path).
			m.solo = append(m.solo, i)
		}
	}
	for lo := 0; lo < len(fused); lo += maxGroupMembers {
		hi := min(lo+maxGroupMembers, len(fused))
		m.groups = append(m.groups, m.buildGroup(fused[lo:hi]))
	}
}

func (m *Multi) buildGroup(idx []int) *multiGroup {
	g := &multiGroup{members: append([]int(nil), idx...)}
	var classes []alphabet.Class
	for _, mi := range idx {
		a := m.members[mi]
		g.autos = append(g.autos, a)
		g.progs = append(g.progs, a.prog())
		g.locs = append(g.locs, a.localizer())
		g.factors = append(g.factors, a.Prefilter().Factor)
		if a.prefDisabled {
			// One member opting out of the prefilter disables the fused
			// skip loop for the whole group: skips never change results,
			// but DisablePrefilter promises a fully stepped scan and the
			// differential tests hold the fused pass to it.
			g.noSkip = true
		}
		classes = append(classes, a.Classes()...)
	}
	var reps []byte
	g.classOf, reps = alphabet.ClassTable(classes)
	g.nclasses = len(reps)
	for _, p := range g.progs {
		// The combined partition refines every member's: all bytes of a
		// combined class share the member class of any representative.
		cm := make([]uint8, g.nclasses)
		for c, rep := range reps {
			cm[c] = p.classOf[rep]
		}
		g.classMap = append(g.classMap, cm)
		g.base = append(g.base, int32(g.nstates))
		g.nstates += p.nstates
	}
	g.owner = make([]uint8, g.nstates)
	g.local = make([]int32, g.nstates)
	for s := range g.progs {
		for q := 0; q < g.progs[s].nstates; q++ {
			g.owner[int(g.base[s])+q] = uint8(s)
			g.local[int(g.base[s])+q] = int32(q)
		}
	}
	g.fullMask = ^uint64(0) >> (64 - uint(len(idx)))
	maxStates := maxDFAStates * len(idx)
	if maxStates > maxMultiDFAStates {
		maxStates = maxMultiDFAStates
	}
	g.dfa = lazydfa.New(lazydfa.Config[multiFlags]{
		Classes:   g.nclasses,
		States:    g.nstates,
		MaxStates: maxStates,
		Succ: func(q int32, c uint8, emit func(int32)) {
			s := g.owner[q]
			scan := g.locs[s].scan
			mc := g.classMap[s][c]
			for _, to := range scan.succ[int(g.local[q])*scan.nclasses+int(mc)] {
				emit(g.base[s] + to)
			}
		},
		Payload: func(set []int32) multiFlags {
			var f multiFlags
			for _, q := range set {
				s := g.owner[q]
				lq := g.local[q]
				if g.locs[s].scan.end[lq] {
					f.end |= 1 << s
				}
				if g.locs[s].scan.hasFinal[lq] {
					f.fin |= 1 << s
				}
			}
			return f
		},
	})
	g.starts = make(map[uint64]int32)
	g.starts[g.fullMask] = g.dfa.Intern(g.startSet(g.fullMask))
	return g
}

// startSet builds the fused start subset of an admission mask: the
// members' start states, shifted by their bases (ascending, hence
// already sorted and duplicate-free as Intern requires).
func (g *multiGroup) startSet(mask uint64) []int32 {
	set := make([]int32, 0, len(g.autos))
	for s := range g.autos {
		if mask&(1<<s) != 0 {
			set = append(set, g.base[s]+int32(g.autos[s].Start))
		}
	}
	return set
}

// startFor returns the interned fused start state of an admission mask,
// caching one per distinct mask. Intern takes the DFA's write lock and
// is safe at any time (unlike Seed); Overflow at the state bound is
// returned to the caller, which falls the group back.
func (g *multiGroup) startFor(mask uint64) int32 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s, ok := g.starts[mask]; ok {
		return s
	}
	s := g.dfa.Intern(g.startSet(mask))
	if s != lazydfa.Overflow {
		g.starts[mask] = s
	}
	return s
}

// multiScratch holds the per-evaluation buffers of one fused pass:
// fused-DFA checkpoints, per-slot candidate end runs, and the seed
// projection buffer. Pooled, like windowScratch.
type multiScratch struct {
	checkpoints []int32
	ends        [][]int32 // per slot: candidate match ends as [lo, hi) runs
	finals      uint64    // fin bitmap at the document end
	skipped     int       // bytes the fused skip loop jumped over
	seed        []int32
}

var multiScratchPool = sync.Pool{New: func() any { return new(multiScratch) }}

// forward is the fused mirror of scanProg.forward: one fused-DFA lookup
// per byte from the admission mask's start state, recording checkpoints
// every checkpointStride boundaries, per-member candidate-end runs from
// the payload's end bitmap, and the finals bitmap at the document end.
// Returns false on a fused-DFA state-bound overflow.
func (g *multiGroup) forward(doc string, start int32, ms *multiScratch) bool {
	const rlockChunk = 1 << 12
	w := g.dfa.Walk()
	cur := start
	ms.checkpoints = append(ms.checkpoints[:0], start)
	for s := range ms.ends {
		ms.ends[s] = ms.ends[s][:0]
	}
	ms.finals = 0
	ms.skipped = 0
	var gate lazydfa.SkipGate
	if !g.noSkip {
		gate.Init(&g.skips)
		gate.Bind(func(q int32) *lazydfa.SkipSet { return g.skipSet(&w, q) },
			lazydfa.StringIndex(doc))
	}
	for i := 0; i < len(doc); i++ {
		if i&(rlockChunk-1) == rlockChunk-1 {
			w.Yield()
		}
		c := g.classOf[doc[i]]
		t := w.States[cur].Trans(c)
		if t <= dfaDead {
			if t == dfaUnknown {
				t = w.Resolve(cur, c)
			}
			if t == dfaOverflow {
				w.Release()
				return false
			}
			if t == dfaDead {
				// Every admitted member's frontier died: no later boundary
				// can complete any member's match (finals stay 0, exactly
				// like the per-member early exit).
				w.Release()
				return true
			}
		}
		if !g.noSkip {
			// Same soundness argument as scanProg.forward: skip sets never
			// contain a state with any end bit (see skipSet), so skipped
			// boundaries owe no member an ends entry, and the state at each
			// skipped boundary is sk.Sync(previous byte) — checkpoints
			// filled during the jump are the true fused states.
			if sk := gate.Step(cur, t); sk != nil {
				if j, _ := gate.Jump(sk, i+1, len(doc)); j > i+1 {
					for cb := (i + checkpointStride) / checkpointStride * checkpointStride; cb < j; cb += checkpointStride {
						if cb == i+1 {
							ms.checkpoints = append(ms.checkpoints, t)
						} else {
							ms.checkpoints = append(ms.checkpoints, sk.Sync(doc[cb-1]))
						}
					}
					ms.skipped += j - (i + 1)
					if j-(i+1) >= rlockChunk {
						w.Yield()
					}
					t = sk.Sync(doc[j-1])
					i = j - 1
				}
			}
		}
		cur = t
		b := i + 1
		if b&(checkpointStride-1) == 0 {
			ms.checkpoints = append(ms.checkpoints, cur)
		}
		if e := w.States[cur].Payload.end; e != 0 {
			// Demultiplex the boundary to every member whose subset holds
			// an end state, run-length-encoded per member exactly like the
			// standalone scan.
			for eb := e; eb != 0; eb &= eb - 1 {
				s := bits.TrailingZeros64(eb)
				runs := ms.ends[s]
				if n := len(runs); n > 0 && runs[n-1] == int32(b) {
					runs[n-1] = int32(b + 1)
				} else {
					runs = append(runs, int32(b), int32(b+1))
				}
				ms.ends[s] = runs
			}
		}
	}
	ms.finals = w.States[cur].Payload.fin
	w.Release()
	return true
}

// skipSet builds the synchronized skip set around fused state cur.
// Eligibility requires an all-zero end bitmap: a boundary inside a jump
// must owe NO member an ends entry. fin bits are only read at the
// document end, where the state is sync-exact.
func (g *multiGroup) skipSet(w *lazydfa.Walker[multiFlags], cur int32) *lazydfa.SkipSet {
	return BuildSkipSet(g.nclasses, g.classOf[:],
		func(q int32) bool { return q >= dfaStart && w.States[q].Payload.end == 0 },
		nil,
		func(q int32, c uint8) (int32, bool) {
			t := w.States[q].Trans(c)
			if t == dfaUnknown {
				t = w.Resolve(q, c)
			}
			return t, t != dfaOverflow
		}, cur)
}

// seedAt reconstructs member slot's status-0 frontier at boundary lo by
// replaying the FUSED scan DFA from the nearest checkpoint and
// projecting the subset onto the member's state range. Because the
// fused subset is the union of the per-member subsets, the projection
// minus the base offset is exactly what the member's own seedAt would
// have produced. The result aliases ms.seed.
func (g *multiGroup) seedAt(slot int, doc string, lo int, ms *multiScratch) []int32 {
	k := lo / checkpointStride
	cur := ms.checkpoints[k]
	w := g.dfa.Walk()
	for i := k * checkpointStride; i < lo; i++ {
		c := g.classOf[doc[i]]
		t := w.States[cur].Trans(c)
		if t == dfaUnknown {
			// The forward pass resolved every transition on this path;
			// only a concurrent rebuild could leave a gap. Resolve again.
			t = w.Resolve(cur, c)
		}
		if t == dfaDead || t == dfaOverflow {
			cur = dfaDead
			break
		}
		cur = t
	}
	ms.seed = ms.seed[:0]
	base := g.base[slot]
	limit := base + int32(g.progs[slot].nstates)
	status := g.locs[slot].status
	for _, q := range w.States[cur].Set {
		if q >= base && q < limit && status[q-base] == 0 {
			ms.seed = append(ms.seed, q-base)
		}
	}
	w.Release()
	return ms.seed
}

// Eval runs every member query over doc in (at most) one fused pass per
// group and returns one relation per member, in member order, each
// sorted and deduplicated — byte-identical to calling Member(i).Eval
// separately.
func (m *Multi) Eval(doc string) []*span.Relation {
	rels := make([]*span.Relation, len(m.members))
	relOf := func(i int) *span.Relation {
		if rels[i] == nil {
			rels[i] = span.NewRelation(m.members[i].Vars...)
		}
		return rels[i]
	}
	m.EvalAppend(doc, span.Span{Start: 1, End: len(doc) + 1}, relOf, nil)
	for i, r := range rels {
		if r == nil {
			rels[i] = span.NewRelation(m.members[i].Vars...)
		} else {
			r.Dedupe()
		}
	}
	return rels
}

// EvalAppend is the accumulator form of Eval, mirroring
// Automaton.EvalAppend's contract per member: member i's tuples,
// shifted by `by`, are appended to rel(i) (which must have been created
// over Member(i).Vars), with storage carved from arena when non-nil.
// rel is invoked lazily — a member whose result is empty may never have
// its relation requested. Like EvalAppend, per-member results are
// duplicate-suppressed within this one evaluation but callers merging
// several segments must Dedupe per member at the end.
func (m *Multi) EvalAppend(doc string, by span.Span, rel func(i int) *span.Relation, arena *span.TupleArena) {
	m.Prepare()
	mm := m.metrics.Load()
	for _, g := range m.groups {
		m.evalGroup(g, doc, by, rel, arena, mm)
	}
	for _, mi := range m.solo {
		m.memberFallback(mi, doc, by, rel, arena, mm)
	}
}

// memberFallback evaluates one member standalone — its own EvalAppend
// pipeline, byte-identical to the fused path by construction.
func (m *Multi) memberFallback(mi int, doc string, by span.Span, rel func(int) *span.Relation, arena *span.TupleArena, mm *MultiMetrics) {
	r := rel(mi)
	n0 := len(r.Tuples)
	m.members[mi].EvalAppend(doc, by, r, arena)
	if mm != nil {
		mm.MemberFallbacks.Inc()
		mm.DemuxTuples.Add(uint64(len(r.Tuples) - n0))
	}
}

func (m *Multi) evalGroup(g *multiGroup, doc string, by span.Span, rel func(int) *span.Relation, arena *span.TupleArena, mm *MultiMetrics) {
	// Per-member admission bitmap: a member whose mandatory factor is
	// absent has a provably empty relation and leaves the fused start
	// subset; the remaining members scan at full strength.
	var admit uint64
	for s, f := range g.factors {
		if f == "" || strings.Contains(doc, f) {
			admit |= 1 << s
		} else if mm != nil {
			mm.AdmissionSkips.Inc()
		}
	}
	if admit == 0 {
		return
	}
	start := g.startFor(admit)
	if start == dfaOverflow {
		m.groupFallback(g, admit, doc, by, rel, arena, mm)
		return
	}
	ms := multiScratchPool.Get().(*multiScratch)
	defer multiScratchPool.Put(ms)
	for len(ms.ends) < len(g.autos) {
		ms.ends = append(ms.ends, nil)
	}
	if !g.forward(doc, start, ms) {
		// Fused DFA overflow: every admitted member of the group falls
		// back to its standalone pipeline.
		m.groupFallback(g, admit, doc, by, rel, arena, mm)
		return
	}
	if mm != nil {
		mm.FusedPasses.Inc()
		mm.FusedBytes.Add(uint64(len(doc)))
		if ms.skipped > 0 {
			mm.FusedSkippedBytes.Add(uint64(ms.skipped))
		}
	}
	delta := by.Start - 1
	ws := windowPool.Get().(*windowScratch)
	defer windowPool.Put(ws)
	for s, a := range g.autos {
		if admit&(1<<s) == 0 {
			continue
		}
		fin := ms.finals&(1<<s) != 0
		if len(ms.ends[s]) == 0 && !fin {
			// No boundary where a match of this member can complete:
			// its relation is empty; the simulation never runs.
			continue
		}
		r := rel(g.members[s])
		if len(r.Vars) != len(a.Vars) {
			panic("vsa: Multi.EvalAppend relation arity does not match member arity")
		}
		// Member-view scratch for the backward narrowing: the member's
		// demultiplexed end runs and finals flag. Copied, not aliased —
		// ws and ms return to different pools.
		ws.ends = append(ws.ends[:0], ms.ends[s]...)
		ws.finalsAtEnd = fin
		p := g.progs[s]
		if !g.locs[s].narrow(p, doc, ws) {
			// Backward-narrowing overflow for this member alone: its
			// standalone EvalAppend takes the same fallback internally.
			m.memberFallback(g.members[s], doc, by, rel, arena, mm)
			continue
		}
		n0 := len(r.Tuples)
		run := newEvalRun(a, p, r, doc, delta, arena)
		for _, wd := range ws.windows {
			seed := g.seedAt(s, doc, wd.lo, ms)
			run.window(wd.lo, wd.hi, seed, wd.hi == len(doc))
		}
		run.release()
		if mm != nil {
			mm.DemuxTuples.Add(uint64(len(r.Tuples) - n0))
		}
	}
}

// groupFallback evaluates every admitted member of a group standalone
// (fused-DFA overflow, or an uncacheable admission start state).
// Members the admission bitmap rejected stay empty — the factor gate's
// soundness does not depend on the fused pass.
func (m *Multi) groupFallback(g *multiGroup, admit uint64, doc string, by span.Span, rel func(int) *span.Relation, arena *span.TupleArena, mm *MultiMetrics) {
	for s := range g.autos {
		if admit&(1<<s) != 0 {
			m.memberFallback(g.members[s], doc, by, rel, arena, mm)
		}
	}
}
