package vsa

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/alphabet"
)

// Edge is a transition of an extended VSet-automaton: perform the variable
// operations Ops at the current boundary (in canonical ≺ order), then
// consume one byte of Class and move to state To.
type Edge struct {
	Ops   OpSet
	Class alphabet.Class
	To    int
}

// State holds the outgoing transitions and the accepting operation sets of
// one state. A state accepts at the end of the document by performing one
// of its Finals operation sets at the final boundary.
type State struct {
	Edges  []Edge
	Finals []OpSet
}

// Automaton is a functional extended VSet-automaton (eVSA). Functionality
// (every accepting run induces a valid ref-word) is an invariant
// maintained by all constructors in this library: Compile enforces it and
// every algebraic construction preserves it. Use Validate to check the
// invariant on hand-built automata.
type Automaton struct {
	Vars   []string
	Start  int
	States []State

	// Lazily computed per-state suffix-universality, used by Eval to emit
	// completed assignments early.
	suffixOnce sync.Once
	suffixUni  []bool

	// Lazily compiled evaluation program (byte-class table, per-class
	// transition lists, lazy DFA; see dfa.go), shared by every evaluation
	// of this automaton.
	progOnce sync.Once
	progVal  *evalProg

	// Lazily compiled bidirectional match-window localizer (forward
	// end-detection DFA, reversed start-narrowing DFA; see window.go),
	// shared by every Eval of this automaton.
	localOnce sync.Once
	localVal  *localizer

	// Lazily extracted literal prefilter (mandatory factor + reason; see
	// prefilter.go), shared by every evaluation of this automaton.
	// prefDisabled turns the prefilter off (DisablePrefilter) — set
	// before freezing, like any change to the compiled state.
	prefOnce     sync.Once
	prefVal      *prefilterState
	prefDisabled bool

	// frozen is set when the first evaluation cache is built. Mutating a
	// frozen automaton would silently serve stale cached results, so
	// AddEdge/AddFinal panic instead; construct a Clone to modify.
	frozen atomic.Bool

	// evalMetrics, when set, collects localization/simulation statistics
	// for large evaluations (see SetEvalMetrics). Not part of the frozen
	// compiled state: it may be attached at any time.
	evalMetrics evalMetricsPtr
}

// NewAutomaton returns an automaton with the given variable names and a
// single (start) state 0.
func NewAutomaton(vars ...string) *Automaton {
	if len(vars) > MaxVars {
		panic(fmt.Sprintf("vsa: at most %d variables are supported", MaxVars))
	}
	seen := map[string]bool{}
	for _, v := range vars {
		if seen[v] {
			panic(fmt.Sprintf("vsa: duplicate variable %q", v))
		}
		seen[v] = true
	}
	return &Automaton{Vars: append([]string(nil), vars...), States: make([]State, 1)}
}

// AddState adds a fresh state and returns its id.
func (a *Automaton) AddState() int {
	a.States = append(a.States, State{})
	return len(a.States) - 1
}

// AddEdge adds a transition. Duplicate transitions are ignored. AddEdge
// panics if the automaton has been evaluated (or Prepared): the evaluation
// caches built on first use would silently serve results for the old
// transition relation. Clone the automaton to extend it.
func (a *Automaton) AddEdge(from int, ops OpSet, class alphabet.Class, to int) {
	a.checkMutable("AddEdge")
	e := Edge{ops, class, to}
	for _, f := range a.States[from].Edges {
		if f == e {
			return
		}
	}
	a.States[from].Edges = append(a.States[from].Edges, e)
}

// AddFinal marks state q as accepting with the final operation set ops.
// Like AddEdge, it panics once evaluation caches exist.
func (a *Automaton) AddFinal(q int, ops OpSet) {
	a.checkMutable("AddFinal")
	for _, f := range a.States[q].Finals {
		if f == ops {
			return
		}
	}
	a.States[q].Finals = append(a.States[q].Finals, ops)
}

// checkMutable panics if evaluation caches have been built: the cached
// suffix-universality, byte-class table and DFA all describe the
// transition relation at freeze time, and mutating past them would
// silently serve stale results.
func (a *Automaton) checkMutable(op string) {
	if a.frozen.Load() {
		panic("vsa: " + op + " on an automaton that has been evaluated; evaluation caches would go stale — Clone it to modify")
	}
}

// NumStates returns the number of states.
func (a *Automaton) NumStates() int { return len(a.States) }

// NumEdges returns the number of transitions.
func (a *Automaton) NumEdges() int {
	n := 0
	for _, s := range a.States {
		n += len(s.Edges)
	}
	return n
}

// VarIndex returns the index of the named variable, or -1.
func (a *Automaton) VarIndex(name string) int {
	for i, v := range a.Vars {
		if v == name {
			return i
		}
	}
	return -1
}

// Arity returns the number of variables.
func (a *Automaton) Arity() int { return len(a.Vars) }

// Clone returns a deep copy of the automaton.
func (a *Automaton) Clone() *Automaton {
	out := &Automaton{
		Vars:   append([]string(nil), a.Vars...),
		Start:  a.Start,
		States: make([]State, len(a.States)),
	}
	for i, s := range a.States {
		out.States[i] = State{
			Edges:  append([]Edge(nil), s.Edges...),
			Finals: append([]OpSet(nil), s.Finals...),
		}
	}
	return out
}

// Classes returns all distinct byte classes appearing on edges.
func (a *Automaton) Classes() []alphabet.Class {
	seen := map[alphabet.Class]bool{}
	var out []alphabet.Class
	for _, s := range a.States {
		for _, e := range s.Edges {
			if !seen[e.Class] {
				seen[e.Class] = true
				out = append(out, e.Class)
			}
		}
	}
	return out
}

// IsDeterministic reports whether the automaton is deterministic in the
// sense of Section 4.2: for every state, operation set, and byte there is
// at most one successor state. Together with functionality this is the
// dfVSA class for which containment is tractable (Theorem 4.3).
func (a *Automaton) IsDeterministic() bool {
	for _, s := range a.States {
		byOps := map[OpSet][]Edge{}
		for _, e := range s.Edges {
			byOps[e.Ops] = append(byOps[e.Ops], e)
		}
		for _, es := range byOps {
			for i := 0; i < len(es); i++ {
				for j := i + 1; j < len(es); j++ {
					if es[i].To != es[j].To && es[i].Class.Intersects(es[j].Class) {
						return false
					}
				}
			}
		}
	}
	return true
}

// Statuses returns the per-state variable-status vector. In a functional
// automaton the status is a function of the input prefix, hence unique per
// reachable state; unreachable states get status 0. An error is returned
// if two paths assign conflicting statuses or an edge misuses a variable —
// both indicate a broken (non-functional) hand-built automaton.
func (a *Automaton) Statuses() ([]Status, error) {
	st := make([]Status, len(a.States))
	known := make([]bool, len(a.States))
	st[a.Start] = 0
	known[a.Start] = true
	queue := []int{a.Start}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for _, e := range a.States[q].Edges {
			next, ok := st[q].Apply(e.Ops)
			if !ok {
				return nil, fmt.Errorf("vsa: edge from state %d misuses a variable (ops %v from status %#x)", q, e.Ops, uint64(st[q]))
			}
			if known[e.To] {
				if st[e.To] != next {
					return nil, fmt.Errorf("vsa: state %d reachable with conflicting statuses %#x and %#x", e.To, uint64(st[e.To]), uint64(next))
				}
				continue
			}
			st[e.To] = next
			known[e.To] = true
			queue = append(queue, e.To)
		}
	}
	return st, nil
}

// Validate checks the functional-eVSA invariants: statuses are consistent
// and every final operation set completes the run to the all-closed
// status. Constructions in this library maintain these invariants; tests
// call Validate on every constructed automaton.
func (a *Automaton) Validate() error {
	st, err := a.Statuses()
	if err != nil {
		return err
	}
	all := AllClosed(len(a.Vars))
	for q, s := range a.States {
		for _, f := range s.Finals {
			fin, ok := st[q].Apply(f)
			if !ok {
				return fmt.Errorf("vsa: final ops %v of state %d misuse a variable", f, q)
			}
			if fin != all {
				return fmt.Errorf("vsa: final ops %v of state %d leave variables unclosed", f, q)
			}
		}
	}
	return nil
}

// Trim returns an equivalent automaton with only useful states (reachable
// from the start and able to reach acceptance). If the language is empty
// the result has a single start state with no edges and no finals.
func (a *Automaton) Trim() *Automaton {
	n := len(a.States)
	reach := make([]bool, n)
	reach[a.Start] = true
	stack := []int{a.Start}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range a.States[q].Edges {
			if !reach[e.To] {
				reach[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	rev := make([][]int, n)
	for q, s := range a.States {
		for _, e := range s.Edges {
			rev[e.To] = append(rev[e.To], q)
		}
	}
	co := make([]bool, n)
	for q, s := range a.States {
		if len(s.Finals) > 0 {
			co[q] = true
			stack = append(stack, q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[q] {
			if !co[p] {
				co[p] = true
				stack = append(stack, p)
			}
		}
	}
	out := NewAutomaton(a.Vars...)
	id := make([]int, n)
	for q := range id {
		id[q] = -1
	}
	id[a.Start] = 0
	for q := 0; q < n; q++ {
		if q != a.Start && reach[q] && co[q] {
			id[q] = out.AddState()
		}
	}
	for q, s := range a.States {
		if id[q] < 0 || !co[q] {
			continue
		}
		for _, e := range s.Edges {
			if id[e.To] >= 0 && co[e.To] {
				out.AddEdge(id[q], e.Ops, e.Class, id[e.To])
			}
		}
		for _, f := range s.Finals {
			out.AddFinal(id[q], f)
		}
	}
	return out
}

// IsEmptyLanguage reports whether the automaton accepts no (document,
// tuple) pair at all.
func (a *Automaton) IsEmptyLanguage() bool {
	t := a.Trim()
	return len(t.States[t.Start].Finals) == 0 && len(t.States[t.Start].Edges) == 0 && t.NumStates() == 1
}

// Remap returns a copy with variables renamed according to names, which
// must be a permutation-compatible list: names[i] is the new name of
// variable i. The canonical operation order follows variable indices, so
// Remap keeps indices and only relabels.
func (a *Automaton) Remap(names []string) *Automaton {
	if len(names) != len(a.Vars) {
		panic("vsa: Remap: wrong number of names")
	}
	out := a.Clone()
	out.Vars = append([]string(nil), names...)
	return out
}

// ReorderVars returns an equivalent automaton whose variable list is
// exactly order (a permutation of a.Vars), rewriting all operation sets.
func (a *Automaton) ReorderVars(order []string) (*Automaton, error) {
	if len(order) != len(a.Vars) {
		return nil, fmt.Errorf("vsa: reorder: arity mismatch")
	}
	perm := make([]int, len(a.Vars)) // perm[old] = new
	used := make([]bool, len(order))
	for old, name := range a.Vars {
		idx := -1
		for i, n := range order {
			if n == name && !used[i] {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("vsa: reorder: variable %q missing from order", name)
		}
		used[idx] = true
		perm[old] = idx
	}
	mapOps := func(o OpSet) OpSet {
		var out OpSet
		for v := 0; v < len(a.Vars); v++ {
			if o.OpensVar(v) {
				out |= Open(perm[v])
			}
			if o.ClosesVar(v) {
				out |= Close(perm[v])
			}
		}
		return out
	}
	out := NewAutomaton(order...)
	out.Start = a.Start
	out.States = make([]State, len(a.States))
	for q, s := range a.States {
		for _, e := range s.Edges {
			out.States[q].Edges = append(out.States[q].Edges, Edge{mapOps(e.Ops), e.Class, e.To})
		}
		for _, f := range s.Finals {
			out.States[q].Finals = append(out.States[q].Finals, mapOps(f))
		}
	}
	return out, nil
}

// String renders the automaton for debugging.
func (a *Automaton) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "eVSA vars=%v start=%d\n", a.Vars, a.Start)
	for q, s := range a.States {
		for _, e := range s.Edges {
			fmt.Fprintf(&b, "  %d --[%v]%v--> %d\n", q, e.Ops, e.Class, e.To)
		}
		if len(s.Finals) > 0 {
			fs := make([]string, len(s.Finals))
			for i, f := range s.Finals {
				fs[i] = f.String()
			}
			sort.Strings(fs)
			fmt.Fprintf(&b, "  %d accepts with {%s}\n", q, strings.Join(fs, " | "))
		}
	}
	return b.String()
}
