package vsa

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alphabet"
)

// randomAutomaton builds a small random functional unary automaton by
// composing hand-built blocks: Σ*-ish prefix states, an extraction block,
// and a suffix. It stays within the constructors, so every instance is
// valid by construction.
func randomAutomaton(rng *rand.Rand) *Automaton {
	a := NewAutomaton("x")
	classes := []alphabet.Class{
		alphabet.Of('a'), alphabet.Of('b'), alphabet.Of('a', 'b'),
		alphabet.Range('a', 'c'), alphabet.Any,
	}
	cls := func() alphabet.Class { return classes[rng.Intn(len(classes))] }
	// Prefix loop states.
	pre := 0
	for i := rng.Intn(3); i > 0; i-- {
		next := a.AddState()
		a.AddEdge(pre, 0, cls(), next)
		a.AddEdge(next, 0, cls(), next)
		pre = next
	}
	// Extraction: open on one byte, optionally extend, close.
	mid := a.AddState()
	a.AddEdge(pre, Open(0), cls(), mid)
	for i := rng.Intn(2); i > 0; i-- {
		a.AddEdge(mid, 0, cls(), mid)
	}
	post := a.AddState()
	a.AddEdge(mid, Close(0), cls(), post)
	a.AddFinal(mid, Close(0))
	a.AddEdge(post, 0, cls(), post)
	a.AddFinal(post, 0)
	return a
}

func randomDoc(rng *rand.Rand, n int) string {
	var b strings.Builder
	letters := "aabbc."
	for i := 0; i < n; i++ {
		b.WriteByte(letters[rng.Intn(len(letters))])
	}
	return b.String()
}

// TestEvalAgreesWithReference cross-checks the compiled lazy-DFA path
// against the retained reference simulation on random automata and
// documents — the in-process counterpart of the fuzz targets.
func TestEvalAgreesWithReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		a := randomAutomaton(rng)
		if err := a.Validate(); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		for _, n := range []int{0, 1, 2, 3, 7, 40} {
			doc := randomDoc(rng, n)
			got, want := a.Eval(doc), a.EvalReference(doc)
			if !got.Equal(want) {
				t.Fatalf("instance %d: Eval differs on %q:\nlazy: %v\nref:  %v\n%s", i, doc, got, want, a)
			}
			if gb, wb := a.EvalBool(doc), a.EvalBoolReference(doc); gb != wb {
				t.Fatalf("instance %d: EvalBool=%v reference=%v on %q\n%s", i, gb, wb, doc, a)
			}
		}
	}
}

// TestSimBoolAgrees exercises the uncached subset-simulation fallback the
// evaluator switches to past the DFA state bound.
func TestSimBoolAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		a := randomAutomaton(rng)
		p := a.prog()
		for _, n := range []int{0, 1, 5, 23} {
			doc := randomDoc(rng, n)
			got := p.simBool([]int32{int32(a.Start)}, doc)
			if want := a.EvalBoolReference(doc); got != want {
				t.Fatalf("instance %d: simBool=%v reference=%v on %q", i, got, want, doc)
			}
		}
	}
}

// TestEvalConcurrentSharedDFA evaluates one automaton from many
// goroutines so the race detector can see the shared transition cache
// being built and read concurrently.
func TestEvalConcurrentSharedDFA(t *testing.T) {
	a := buildXWrap(t)
	docs := []string{"", "a", "ba", "bbbab", "aaaa", "xyza", strings.Repeat("ab", 200)}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				d := docs[(g+i)%len(docs)]
				if a.EvalBool(d) != (a.Eval(d).Len() > 0) {
					t.Errorf("EvalBool disagrees with Eval on %q", d)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

// TestMutationAfterEvalPanics is the regression test for the stale-cache
// hazard: an automaton that has been evaluated must reject further
// AddEdge/AddFinal instead of silently serving results for the old
// transition relation (previously, suffixOnce kept stale universality
// bits forever).
func TestMutationAfterEvalPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s after Eval must panic", name)
			}
		}()
		f()
	}
	a := buildXWrap(t)
	a.Eval("aba")
	mustPanic("AddEdge", func() { a.AddEdge(0, 0, alphabet.Of('z'), 0) })
	mustPanic("AddFinal", func() { a.AddFinal(0, 0) })

	b := buildXWrap(t)
	b.EvalBool("aba")
	mustPanic("AddEdge", func() { b.AddEdge(0, 0, alphabet.Of('z'), 0) })

	c := buildXWrap(t)
	c.Prepare()
	mustPanic("AddFinal", func() { c.AddFinal(0, 0) })
}

// TestCloneAfterEvalIsMutable: Clone is the documented escape hatch for
// extending an already-evaluated automaton.
func TestCloneAfterEvalIsMutable(t *testing.T) {
	a := buildXWrap(t)
	a.Eval("aba")
	c := a.Clone()
	// x wraps empty at the start boundary: the clone now matches "" too.
	c.AddFinal(0, Wrap(0)) // must not panic
	if !c.EvalBool("") {
		t.Fatal("clone must accept the empty document through the new final")
	}
	if a.EvalBool("") {
		// The final was added to the clone only; the original's cached
		// evaluator must be unaffected.
		t.Fatal("original automaton must not see the clone's final")
	}
}

func TestEvalEmptyDocAndNullary(t *testing.T) {
	// Nullary (Boolean) automaton: accepts any document containing 'a'.
	a := NewAutomaton()
	mid := a.AddState()
	a.AddEdge(0, 0, alphabet.Any, 0)
	a.AddEdge(0, 0, alphabet.Of('a'), mid)
	a.AddEdge(mid, 0, alphabet.Any, mid)
	a.AddFinal(mid, 0)
	for _, c := range []struct {
		doc  string
		want bool
	}{{"", false}, {"b", false}, {"a", true}, {"bab", true}} {
		if got := a.EvalBool(c.doc); got != c.want {
			t.Fatalf("EvalBool(%q) = %v, want %v", c.doc, got, c.want)
		}
		rel := a.Eval(c.doc)
		if (rel.Len() > 0) != c.want {
			t.Fatalf("Eval(%q).Len() = %d, want nonempty=%v", c.doc, rel.Len(), c.want)
		}
		if !rel.Equal(a.EvalReference(c.doc)) {
			t.Fatalf("Eval(%q) differs from reference", c.doc)
		}
	}
}
