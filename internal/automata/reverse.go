package automata

// Reverse returns an NFA accepting the reversal of L(a): every edge
// q --sym--> r becomes r --sym--> q, final states become start states and
// start states become final. The construction is linear in the size of a
// and needs no ε-transitions because the representation allows multiple
// start states.
//
// Reversal is the substrate of bidirectional match localization (see
// internal/vsa): a forward pass over a document finds positions where a
// match can end, and a pass with the reversed automaton walks backwards
// from each of them to find where that match can start, so the expensive
// tagged simulation only runs between the two.
func Reverse(a *NFA) *NFA {
	out := New(a.NumSymbols)
	isStart := make([]bool, a.Len())
	for _, s := range a.Starts {
		isStart[s] = true
	}
	for q := 0; q < a.Len(); q++ {
		out.AddState(isStart[q])
		if a.Final[q] {
			out.AddStart(q)
		}
	}
	for q, es := range a.Adj {
		for _, e := range es {
			out.AddEdge(e.To, e.Sym, q)
		}
	}
	out.DedupeEdges()
	return out
}
