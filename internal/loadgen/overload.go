package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// The OVERLOAD experiment measures how the daemon behaves past its
// capacity: requests must either be admitted and finish with bounded
// latency, or be shed promptly with 429 + Retry-After — never queue
// without bound or fail with anything else. The run has three parts:
//
//  1. a closed-loop single-connection baseline (the unloaded p99
//     reference),
//  2. a closed-loop run at NumCPU connections (the capacity estimate,
//     in req/s),
//  3. one open-loop run per configured rate multiplier: arrivals are
//     paced at multiplier × capacity regardless of how fast responses
//     come back, so when the daemon falls behind, offered load does
//     not shrink with it (unlike a closed loop, which self-throttles).
//
// The open-loop phase mixes tenants (round-robin X-Tenant values),
// ingestion modes (inline JSON and streamed raw bodies) and client
// behaviors (a fraction of clients read their responses slowly). Every
// 429 is checked for a positive integer Retry-After; a 429 without one
// is a contract violation counted separately from clean sheds.
//
// All phases run the hot plan only (no compile-miss formulas): the
// experiment is about admission under load, and the latency comparison
// between the open-loop admitted p99 and the single-connection p99 is
// only meaningful when both measure the same work.

// OverloadConfig parameterizes one overload run.
type OverloadConfig struct {
	// Target is the daemon's base URL.
	Target string
	// BaselineDuration is the length of each closed-loop baseline run;
	// 0 selects 2s.
	BaselineDuration time.Duration
	// RateDuration is the length of each open-loop rate run; 0 selects 3s.
	RateDuration time.Duration
	// Rates are the arrival-rate multipliers applied to the measured
	// capacity; empty selects {1, 2, 3}.
	Rates []float64
	// Tenants is how many distinct tenant keys (t0, t1, ...) the open
	// loop cycles through; 0 selects 3.
	Tenants int
	// TenantHeader is the header carrying the tenant key; empty selects
	// "X-Tenant".
	TenantHeader string
	// SlowEvery makes one request in N a slow reader that drains its
	// response in small paced chunks; 0 selects 8, negative disables.
	SlowEvery int
	// MaxInFlight caps the client's concurrent outstanding requests so
	// an unresponsive daemon cannot exhaust client sockets; arrivals
	// past the cap are counted as dropped_client, not sent. 0 selects
	// max(64, 8×NumCPU).
	MaxInFlight int
	// Seed fixes the workload mix; 0 selects a fixed default.
	Seed uint64
	// Client optionally overrides the HTTP client.
	Client *http.Client
}

// OverloadRow is the measured outcome of one open-loop rate run.
type OverloadRow struct {
	// Rate is the arrival-rate multiplier relative to measured capacity.
	Rate float64 `json:"rate"`
	// OfferedPerS is the absolute paced arrival rate.
	OfferedPerS float64 `json:"offered_per_s"`
	Offered     uint64  `json:"offered"`
	OK          uint64  `json:"ok"`
	// Shed counts 429 responses carrying a valid positive Retry-After.
	Shed uint64 `json:"shed"`
	// ShedBad counts 429 responses missing or with an unparsable
	// Retry-After — a violated shedding contract.
	ShedBad uint64 `json:"shed_missing_retry_after"`
	// Errors counts transport failures and any status other than 200
	// and 429.
	Errors uint64 `json:"errors"`
	// DroppedClient counts arrivals the client never sent because its
	// own in-flight cap was reached.
	DroppedClient uint64 `json:"dropped_client"`
	// Admitted latency percentiles cover OK responses from normal-speed
	// readers only; deliberately slow readers inflate their own
	// latency client-side and are excluded.
	AdmittedP50MS float64 `json:"admitted_p50_ms"`
	AdmittedP99MS float64 `json:"admitted_p99_ms"`
}

// OverloadSnapshot is the written benchmark artifact (BENCH_PR8.json).
type OverloadSnapshot struct {
	Experiment string `json:"experiment"` // "OVERLOAD"
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	Target     string `json:"target"`
	// SingleConn is the closed-loop one-connection baseline; its P99MS
	// is the unloaded latency reference.
	SingleConn Result `json:"single_conn"`
	// Capacity is the closed-loop NumCPU-connection run; its ReqPerS is
	// the capacity estimate the rate multipliers scale.
	Capacity Result        `json:"capacity"`
	Rates    []OverloadRow `json:"rates"`
}

// RunOverload runs the full OVERLOAD experiment.
func RunOverload(cfg OverloadConfig) OverloadSnapshot {
	if cfg.BaselineDuration <= 0 {
		cfg.BaselineDuration = 2 * time.Second
	}
	if cfg.RateDuration <= 0 {
		cfg.RateDuration = 3 * time.Second
	}
	if len(cfg.Rates) == 0 {
		cfg.Rates = []float64{1, 2, 3}
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 3
	}
	if cfg.TenantHeader == "" {
		cfg.TenantHeader = "X-Tenant"
	}
	if cfg.SlowEvery == 0 {
		cfg.SlowEvery = 8
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = max(64, 8*runtime.NumCPU())
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x5eed
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.MaxInFlight}}
	}

	snap := OverloadSnapshot{
		Experiment: "OVERLOAD",
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Target:     cfg.Target,
	}
	base := Config{Target: cfg.Target, Duration: cfg.BaselineDuration, MissEvery: -1, Seed: cfg.Seed, Client: client}
	one := base
	one.Conns = 1
	snap.SingleConn = Run(one)
	capa := base
	capa.Conns = runtime.NumCPU()
	snap.Capacity = Run(capa)

	for _, m := range cfg.Rates {
		snap.Rates = append(snap.Rates, runOverloadRate(cfg, client, m, snap.Capacity.ReqPerS))
	}
	return snap
}

// overloadState is the shared state of one open-loop rate run.
type overloadState struct {
	cfg    OverloadConfig
	client *http.Client
	corpus []string

	ok, shed, shedBad, errors obs.Counter
	admitted                  obs.Histogram
}

// runOverloadRate paces arrivals at mult × capacityRPS for
// cfg.RateDuration, never slowing down when responses lag. The schedule
// is absolute (arrival i is due at t0 + i·interval), so an oversleep is
// followed by an immediate catch-up burst and the average offered rate
// holds.
func runOverloadRate(cfg OverloadConfig, client *http.Client, mult, capacityRPS float64) OverloadRow {
	rate := mult * capacityRPS
	if rate < 1 {
		rate = 1
	}
	interval := time.Duration(float64(time.Second) / rate)

	st := &overloadState{cfg: cfg, client: client, corpus: docs()}
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup

	row := OverloadRow{Rate: mult, OfferedPerS: rate}
	t0 := time.Now()
	deadline := t0.Add(cfg.RateDuration)
	for i := 0; ; i++ {
		due := t0.Add(time.Duration(i) * interval)
		if due.After(deadline) {
			break
		}
		time.Sleep(time.Until(due))
		row.Offered++
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(seq int) {
				defer wg.Done()
				st.do(seq)
				<-sem
			}(i)
		default:
			row.DroppedClient++
		}
	}
	wg.Wait()

	row.OK = st.ok.Load()
	row.Shed = st.shed.Load()
	row.ShedBad = st.shedBad.Load()
	row.Errors = st.errors.Load()
	s := st.admitted.Snapshot()
	const msPerNS = 1e-6
	row.AdmittedP50MS = s.Quantile(0.50) * msPerNS
	row.AdmittedP99MS = s.Quantile(0.99) * msPerNS
	return row
}

// do issues open-loop arrival seq: tenant, document, ingestion mode and
// reader speed are all deterministic functions of the sequence number.
func (s *overloadState) do(seq int) {
	doc := s.corpus[seq%len(s.corpus)]
	slow := s.cfg.SlowEvery > 0 && seq%s.cfg.SlowEvery == 0

	var (
		req *http.Request
		err error
	)
	if seq%2 == 0 {
		u := s.cfg.Target + "/v1/extract?spanner=" + url.QueryEscape(hotSpanner) +
			"&splitter=" + url.QueryEscape(hotSplitter)
		req, err = http.NewRequest(http.MethodPost, u, strings.NewReader(doc))
		if err == nil {
			req.Header.Set("Content-Type", "application/octet-stream")
		}
	} else {
		body, _ := json.Marshal(map[string]string{
			"spanner": hotSpanner, "splitter": hotSplitter, "doc": doc,
		})
		req, err = http.NewRequest(http.MethodPost, s.cfg.Target+"/v1/extract", bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		s.errors.Inc()
		return
	}
	req.Header.Set(s.cfg.TenantHeader, fmt.Sprintf("t%d", seq%s.cfg.Tenants))

	t0 := time.Now()
	resp, err := s.client.Do(req)
	if err != nil {
		s.errors.Inc()
		return
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		if slow {
			slowDrain(resp.Body)
		} else {
			io.Copy(io.Discard, resp.Body)
			s.admitted.RecordDuration(time.Since(t0))
		}
		s.ok.Inc()
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		if n, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && n >= 1 {
			s.shed.Inc()
		} else {
			s.shedBad.Inc()
		}
	default:
		io.Copy(io.Discard, resp.Body)
		s.errors.Inc()
	}
}

// slowDrain reads a response in small paced chunks — a client that is
// slow to consume what it asked for — with a bounded total delay so one
// large response cannot stall the run's shutdown.
func slowDrain(r io.Reader) {
	buf := make([]byte, 4<<10)
	const step = 2 * time.Millisecond
	budget := 200 * time.Millisecond
	for {
		if _, err := r.Read(buf); err != nil {
			return
		}
		if budget >= step {
			time.Sleep(step)
			budget -= step
		}
	}
}
