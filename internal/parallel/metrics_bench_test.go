package parallel

import (
	"context"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/library"
)

// The two benchmarks below are the instrumentation-overhead check: the
// identical split evaluation with metrics disabled (nil, the library
// default) and enabled (the engine's configuration). Run them
// interleaved (-count N) and compare — the acceptance bar for the
// observability layer is ≤ 2% between the two.

func benchSplitEval(b *testing.B, m *ExecMetrics) {
	p := library.NegativeSentiment()
	p.Prepare()
	doc := strings.Join(corpus.Reviews(1, 4096), "\n")
	segs := SegmentsOf(doc, library.FastSentenceSplit(doc))
	opts := Options{Workers: 4, Metrics: m}
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SplitEvalCtx(context.Background(), p, segs, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSplitEvalMetricsNil(b *testing.B)  { benchSplitEval(b, nil) }
func BenchmarkSplitEvalMetricsLive(b *testing.B) { benchSplitEval(b, &ExecMetrics{}) }
