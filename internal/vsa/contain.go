package vsa

import (
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/automata"
)

// SymTab interns the extended alphabet shared by a family of automata that
// are to be compared: byte atoms (the coarsest partition refining every
// byte class of every automaton) followed by operation-set symbols. A
// (document, tuple) pair corresponds to exactly one extended word
// O₀ a₁ O₁ a₂ … aₙ Oₙ — operation sets at every boundary (possibly ∅)
// alternating with byte atoms — so spanner containment coincides with
// word-language containment of the translated NFAs (for functional
// automata over the same variable list), which is how Theorems 4.1 and 4.3
// are realized.
type SymTab struct {
	AtomsList []alphabet.Class
	opSyms    map[OpSet]int
	opOrder   []OpSet
}

// NewSymTab builds a shared symbol table for the given automata. All op
// sets appearing on edges or finals are interned, as is the empty set.
func NewSymTab(autos ...*Automaton) *SymTab {
	var classes []alphabet.Class
	t := &SymTab{opSyms: map[OpSet]int{}}
	addOps := func(o OpSet) {
		if _, ok := t.opSyms[o]; !ok {
			t.opSyms[o] = len(t.opOrder) // resolved to symbol ids later
			t.opOrder = append(t.opOrder, o)
		}
	}
	addOps(0)
	for _, a := range autos {
		classes = append(classes, a.Classes()...)
		for _, s := range a.States {
			for _, e := range s.Edges {
				addOps(e.Ops)
			}
			for _, f := range s.Finals {
				addOps(f)
			}
		}
	}
	t.AtomsList = alphabet.Atoms(classes)
	for i, o := range t.opOrder {
		t.opSyms[o] = len(t.AtomsList) + i
	}
	return t
}

// NumSymbols returns the size of the interned alphabet.
func (t *SymTab) NumSymbols() int { return len(t.AtomsList) + len(t.opOrder) }

// OpSym returns the symbol id of an operation set; it panics if the set
// was not interned, which indicates the symbol table was built from the
// wrong automata.
func (t *SymTab) OpSym(o OpSet) int {
	s, ok := t.opSyms[o]
	if !ok {
		panic(fmt.Sprintf("vsa: operation set %v not in symbol table", o))
	}
	return s
}

// AtomSyms returns the symbol ids of all atoms contained in class.
func (t *SymTab) AtomSyms(class alphabet.Class) []int {
	var out []int
	for i, a := range t.AtomsList {
		if class.ContainsClass(a) {
			out = append(out, i)
		}
	}
	return out
}

// WordNFA translates the automaton into an NFA over the extended words of
// tab. States alternate between "expecting an operation set" (the original
// states) and "expecting a byte" (one per (state, ops) pair in use); the
// accepting states are the (state, final-ops) pairs. The translation
// preserves determinism.
func (a *Automaton) WordNFA(tab *SymTab) *automata.NFA {
	n := automata.New(tab.NumSymbols())
	base := make([]int, len(a.States))
	for q := range a.States {
		base[q] = n.AddState(false)
	}
	type mid struct {
		q   int
		ops OpSet
	}
	mids := map[mid]int{}
	midState := func(q int, ops OpSet, final bool) int {
		k := mid{q, ops}
		if s, ok := mids[k]; ok {
			if final {
				n.Final[s] = true
			}
			return s
		}
		s := n.AddState(final)
		mids[k] = s
		n.AddEdge(base[q], tab.OpSym(ops), s)
		return s
	}
	for q, s := range a.States {
		for _, e := range s.Edges {
			m := midState(q, e.Ops, false)
			for _, sym := range tab.AtomSyms(e.Class) {
				n.AddEdge(m, sym, base[e.To])
			}
		}
		for _, f := range s.Finals {
			midState(q, f, true)
		}
	}
	n.AddStart(base[a.Start])
	n.DedupeEdges()
	return n
}

// sameVars reports whether two automata use the same variable list in the
// same order.
func sameVars(a, b *Automaton) bool {
	if len(a.Vars) != len(b.Vars) {
		return false
	}
	for i := range a.Vars {
		if a.Vars[i] != b.Vars[i] {
			return false
		}
	}
	return true
}

// alignVars reorders b's variables to match a's; containment is only
// defined for spanners over the same variable set.
func alignVars(a, b *Automaton) (*Automaton, error) {
	if sameVars(a, b) {
		return b, nil
	}
	return b.ReorderVars(a.Vars)
}

// Contained decides ⟦a⟧ ⊆ ⟦b⟧ (Theorem 4.1). The general case uses an
// on-the-fly subset construction and is exponential in the worst case —
// the problem is PSPACE-complete — guarded by limit (≤ 0 means
// automata.DefaultLimit). When b is deterministic the product-based
// Theorem 4.3 procedure is used instead and limit is irrelevant.
func Contained(a, b *Automaton, limit int) (bool, error) {
	b2, err := alignVars(a, b)
	if err != nil {
		return false, err
	}
	tab := NewSymTab(a, b2)
	na := a.WordNFA(tab)
	nb := b2.WordNFA(tab)
	if nb.IsDeterministic() {
		ok, _ := automata.ContainsDet(na, nb)
		return ok, nil
	}
	ok, _, err := automata.Contains(na, nb, limit)
	return ok, err
}

// Equivalent decides ⟦a⟧ = ⟦b⟧ by two containment checks.
func Equivalent(a, b *Automaton, limit int) (bool, error) {
	ok, err := Contained(a, b, limit)
	if err != nil || !ok {
		return ok, err
	}
	return Contained(b, a, limit)
}

// CounterExample searches for a document and tuple accepted by a but not
// by b; it returns found=false if none exists. The witness extraction
// decodes the extended word returned by the underlying containment check
// into a document (choosing the smallest byte of each atom).
func CounterExample(a, b *Automaton, limit int) (doc string, found bool, err error) {
	b2, err := alignVars(a, b)
	if err != nil {
		return "", false, err
	}
	tab := NewSymTab(a, b2)
	na := a.WordNFA(tab)
	nb := b2.WordNFA(tab)
	var witness []int
	var ok bool
	if nb.IsDeterministic() {
		ok, witness = automata.ContainsDet(na, nb)
	} else {
		ok, witness, err = automata.Contains(na, nb, limit)
		if err != nil {
			return "", false, err
		}
	}
	if ok {
		return "", false, nil
	}
	var buf []byte
	for _, sym := range witness {
		if sym < len(tab.AtomsList) {
			bch, _ := tab.AtomsList[sym].Min()
			buf = append(buf, bch)
		}
	}
	return string(buf), true, nil
}
