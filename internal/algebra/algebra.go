// Package algebra implements the spanner algebra of Fagin et al. as
// recalled in Appendix A of the paper: union, projection and natural join
// of regular spanners, concatenation with regular languages (Lemma A.3),
// and — completing the closure properties of regular spanners mentioned in
// Section 1 — difference. All operations work on functional extended
// VSet-automata and return automata of the same kind.
package algebra

import (
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/automata"
	"repro/internal/vsa"
)

// Union returns a spanner for P1 ∪ P2 (Definition A.1). The spanners must
// be union compatible (same variable set); the result uses P1's variable
// order.
func Union(p1, p2 *vsa.Automaton) (*vsa.Automaton, error) {
	p2, err := align(p1, p2)
	if err != nil {
		return nil, fmt.Errorf("algebra: union: %w", err)
	}
	out := vsa.NewAutomaton(p1.Vars...)
	// Fresh start state with copies of both automata; the start simulates
	// both starts by duplicating their edges and finals.
	off1 := copyInto(out, p1)
	off2 := copyInto(out, p2)
	for _, src := range []struct {
		a   *vsa.Automaton
		off int
	}{{p1, off1}, {p2, off2}} {
		st := src.a.States[src.a.Start]
		for _, e := range st.Edges {
			out.AddEdge(out.Start, e.Ops, e.Class, e.To+src.off)
		}
		for _, f := range st.Finals {
			out.AddFinal(out.Start, f)
		}
	}
	return out, nil
}

// copyInto appends a disjoint copy of src to dst and returns the state
// offset.
func copyInto(dst, src *vsa.Automaton) int {
	off := dst.NumStates()
	for range src.States {
		dst.AddState()
	}
	for q, st := range src.States {
		for _, e := range st.Edges {
			dst.AddEdge(q+off, e.Ops, e.Class, e.To+off)
		}
		for _, f := range st.Finals {
			dst.AddFinal(q+off, f)
		}
	}
	return off
}

func align(a, b *vsa.Automaton) (*vsa.Automaton, error) {
	if len(a.Vars) != len(b.Vars) {
		return nil, fmt.Errorf("spanners are not union compatible: %v vs %v", a.Vars, b.Vars)
	}
	same := true
	for i := range a.Vars {
		if a.Vars[i] != b.Vars[i] {
			same = false
		}
	}
	if same {
		return b, nil
	}
	return b.ReorderVars(a.Vars)
}

// Project returns π_Y(p): the spanner over the variables Y obtained by
// dropping the operations of all other variables (Definition A.1). Y must
// be a subset of p's variables.
func Project(p *vsa.Automaton, ys []string) (*vsa.Automaton, error) {
	keep := make([]int, 0, len(ys)) // old index per new index
	for _, y := range ys {
		i := p.VarIndex(y)
		if i < 0 {
			return nil, fmt.Errorf("algebra: project: variable %q not in spanner", y)
		}
		keep = append(keep, i)
	}
	mapOps := func(o vsa.OpSet) vsa.OpSet {
		var out vsa.OpSet
		for newV, oldV := range keep {
			if o.OpensVar(oldV) {
				out |= vsa.Open(newV)
			}
			if o.ClosesVar(oldV) {
				out |= vsa.Close(newV)
			}
		}
		return out
	}
	out := vsa.NewAutomaton(ys...)
	for range p.States[1:] {
		out.AddState()
	}
	out.Start = p.Start
	for q, st := range p.States {
		for _, e := range st.Edges {
			out.AddEdge(q, mapOps(e.Ops), e.Class, e.To)
		}
		for _, f := range st.Finals {
			out.AddFinal(q, mapOps(f))
		}
	}
	return out, nil
}

// Join returns the natural join p1 ⋈ p2 (Definition A.1): tuples over the
// united variable set that agree with a tuple of each operand. On
// automata this is a product construction that synchronizes bytes and the
// operations of shared variables, while the operations of private
// variables interleave freely.
func Join(p1, p2 *vsa.Automaton) (*vsa.Automaton, error) {
	vars := append([]string(nil), p1.Vars...)
	sharedOf2 := map[int]int{} // p2 var index -> joint index
	privOf2 := map[int]int{}
	for i2, v := range p2.Vars {
		if i1 := p1.VarIndex(v); i1 >= 0 {
			sharedOf2[i2] = i1
		} else {
			privOf2[i2] = len(vars)
			vars = append(vars, v)
		}
	}
	if len(vars) > vsa.MaxVars {
		return nil, fmt.Errorf("algebra: join: %d variables exceed the limit %d", len(vars), vsa.MaxVars)
	}
	map2 := func(o vsa.OpSet) (joint vsa.OpSet, sharedPart vsa.OpSet) {
		for i2 := range p2.Vars {
			if o.OpensVar(i2) {
				if j, ok := sharedOf2[i2]; ok {
					joint |= vsa.Open(j)
					sharedPart |= vsa.Open(j)
				} else {
					joint |= vsa.Open(privOf2[i2])
				}
			}
			if o.ClosesVar(i2) {
				if j, ok := sharedOf2[i2]; ok {
					joint |= vsa.Close(j)
					sharedPart |= vsa.Close(j)
				} else {
					joint |= vsa.Close(privOf2[i2])
				}
			}
		}
		return joint, sharedPart
	}
	shared1 := vsa.OpSet(0) // mask of shared ops in p1/joint indexing
	for i2 := range sharedOf2 {
		shared1 |= vsa.Wrap(sharedOf2[i2])
	}
	out := vsa.NewAutomaton(vars...)
	type pair struct{ q1, q2 int }
	id := map[pair]int{}
	var queue []pair
	intern := func(pr pair) int {
		if i, ok := id[pr]; ok {
			return i
		}
		var i int
		if len(id) == 0 {
			i = 0
		} else {
			i = out.AddState()
		}
		id[pr] = i
		queue = append(queue, pr)
		return i
	}
	intern(pair{p1.Start, p2.Start})
	for len(queue) > 0 {
		pr := queue[0]
		queue = queue[1:]
		from := id[pr]
		for _, e1 := range p1.States[pr.q1].Edges {
			for _, e2 := range p2.States[pr.q2].Edges {
				cls := e1.Class.Intersect(e2.Class)
				if cls.IsEmpty() {
					continue
				}
				joint2, sharedPart2 := map2(e2.Ops)
				if e1.Ops&shared1 != sharedPart2 {
					continue // shared variables must operate simultaneously
				}
				out.AddEdge(from, e1.Ops|joint2, cls, intern(pair{e1.To, e2.To}))
			}
		}
		for _, f1 := range p1.States[pr.q1].Finals {
			for _, f2 := range p2.States[pr.q2].Finals {
				joint2, sharedPart2 := map2(f2)
				if f1&shared1 != sharedPart2 {
					continue
				}
				out.AddFinal(from, f1|joint2)
			}
		}
	}
	out.MergeEdges()
	return out, nil
}

// ConcatLang returns the spanner L·p or p·L (Lemma A.3): p evaluated on a
// suffix (resp. prefix) of the document whose complement lies in the
// regular language given as a Boolean automaton.
func ConcatLang(lang *vsa.Automaton, p *vsa.Automaton, langFirst bool) (*vsa.Automaton, error) {
	if lang.Arity() != 0 {
		return nil, fmt.Errorf("algebra: concat: language operand must be Boolean, has %d variables", lang.Arity())
	}
	first, second := lang, p
	if !langFirst {
		first, second = p, lang
	}
	out := vsa.NewAutomaton(p.Vars...)
	// Copy first without its finals: mid-run acceptance of the first part
	// is not acceptance of the concatenation.
	off1 := out.NumStates()
	for range first.States {
		out.AddState()
	}
	for q, st := range first.States {
		for _, e := range st.Edges {
			out.AddEdge(q+off1, e.Ops, e.Class, e.To+off1)
		}
	}
	off2 := copyInto(out, second)
	// Start simulates first's start.
	for _, e := range first.States[first.Start].Edges {
		out.AddEdge(out.Start, e.Ops, e.Class, e.To+off1)
	}
	// Wherever first accepts with ops f, continue as second's start: add
	// f-combined edges and finals.
	link := func(fromOut int, f vsa.OpSet) {
		st2 := second.States[second.Start]
		for _, e := range st2.Edges {
			out.AddEdge(fromOut, f|e.Ops, e.Class, e.To+off2)
		}
		for _, g := range st2.Finals {
			out.AddFinal(fromOut, f|g)
		}
	}
	for q, st := range first.States {
		for _, f := range st.Finals {
			link(q+off1, f)
		}
	}
	for _, f := range first.States[first.Start].Finals {
		link(out.Start, f)
	}
	return out, nil
}

// Difference returns a spanner for P1 ∖ P2: the tuples selected by p1 but
// not by p2. It determinizes p2 over the shared extended alphabet and
// complements it within the universe of valid (document, tuple) words —
// difference is what pushes regular spanners beyond regex formulas
// (Section 4.3), and it inherits determinization's exponential worst case,
// guarded by limit.
func Difference(p1, p2 *vsa.Automaton, limit int) (*vsa.Automaton, error) {
	p2, err := align(p1, p2)
	if err != nil {
		return nil, fmt.Errorf("algebra: difference: %w", err)
	}
	d2, err := p2.Determinize(limit)
	if err != nil {
		return nil, err
	}
	// Complement within each state's extended-letter alphabet by a product
	// of p1 with the completed d2, accepting where p1 accepts and d2 does
	// not.
	out := vsa.NewAutomaton(p1.Vars...)
	const dead = -1
	type pair struct{ q1, q2 int }
	id := map[pair]int{}
	var queue []pair
	intern := func(pr pair) int {
		if i, ok := id[pr]; ok {
			return i
		}
		var i int
		if len(id) == 0 {
			i = 0
		} else {
			i = out.AddState()
		}
		id[pr] = i
		queue = append(queue, pr)
		return i
	}
	intern(pair{p1.Start, d2.Start})
	for len(queue) > 0 {
		pr := queue[0]
		queue = queue[1:]
		from := id[pr]
		for _, e1 := range p1.States[pr.q1].Edges {
			// Split e1's class by d2's moves on the same ops.
			var covered alphabet.Class
			if pr.q2 != dead {
				for _, e2 := range d2.States[pr.q2].Edges {
					if e2.Ops != e1.Ops {
						continue
					}
					cls := e1.Class.Intersect(e2.Class)
					if !cls.IsEmpty() {
						out.AddEdge(from, e1.Ops, cls, intern(pair{e1.To, e2.To}))
						covered = covered.Union(cls)
					}
				}
			}
			if rest := e1.Class.Minus(covered); !rest.IsEmpty() {
				out.AddEdge(from, e1.Ops, rest, intern(pair{e1.To, dead}))
			}
		}
		for _, f1 := range p1.States[pr.q1].Finals {
			accepted2 := false
			if pr.q2 != dead {
				for _, f2 := range d2.States[pr.q2].Finals {
					if f2 == f1 {
						accepted2 = true
					}
				}
			}
			if !accepted2 {
				out.AddFinal(from, f1)
			}
		}
	}
	out.MergeEdges()
	return out, nil
}

// Restrict returns the spanner that behaves like p on documents in the
// regular language of the Boolean automaton lang and is empty elsewhere.
// It implements the document-level filtering used by splitters with
// filter (Section 7.2) and commutativity relative to a context R
// (Section 6).
func Restrict(p *vsa.Automaton, lang *vsa.Automaton) (*vsa.Automaton, error) {
	if lang.Arity() != 0 {
		return nil, fmt.Errorf("algebra: restrict: language operand must be Boolean")
	}
	return Join(p, lang)
}

// DomainLanguage returns a Boolean automaton accepting exactly the
// documents on which p produces at least one tuple (the language L_P of
// Lemma 7.5). It erases variable operations, which may make the result
// nondeterministic.
func DomainLanguage(p *vsa.Automaton) *vsa.Automaton {
	out := vsa.NewAutomaton()
	for range p.States[1:] {
		out.AddState()
	}
	out.Start = p.Start
	for q, st := range p.States {
		for _, e := range st.Edges {
			out.AddEdge(q, 0, e.Class, e.To)
		}
		if len(st.Finals) > 0 {
			out.AddFinal(q, 0)
		}
	}
	return out
}

// LanguageOf compiles a Boolean spanner into a plain NFA over bytes, for
// interoperability with the automata package.
func LanguageOf(p *vsa.Automaton) *automata.NFA {
	n := automata.New(256)
	for q := range p.States {
		n.AddState(len(p.States[q].Finals) > 0)
	}
	for q, st := range p.States {
		for _, e := range st.Edges {
			for _, b := range e.Class.Bytes() {
				n.AddEdge(q, int(b), e.To)
			}
		}
	}
	n.AddStart(p.Start)
	n.DedupeEdges()
	return n
}
