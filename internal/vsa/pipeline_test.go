package vsa_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/regexformula"
	"repro/internal/vsa"
)

// The pipeline tests exercise regexformula → Raw → Compile → Automaton and
// compare every stage against the naive reference evaluator. They live in
// package vsa_test to avoid an import cycle.

// docs enumerates all documents over sigma up to maxLen.
func docs(sigma string, maxLen int) []string {
	out := []string{""}
	frontier := []string{""}
	for l := 0; l < maxLen; l++ {
		var next []string
		for _, d := range frontier {
			for i := 0; i < len(sigma); i++ {
				next = append(next, d+string(sigma[i]))
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

var pipelineFormulas = []string{
	"x{a}",
	".*x{a}.*",
	"a(x{b})b",
	"x{ab}b|a(x{bb})",   // Example 5.8's splitter
	"ab(y{b})|c(y{b})b", // Example 5.13's spanner
	"x{a*}",
	"x{a}y{b}",
	".*x{a.*}y{b}.*",
	"(a|b)*x{ab+}(a|b)*",
	"x{(ab)*}",
	"a?x{.*}",
	"x{.}y{.}|y{.}x{.}",
	"x{a|ab}b*",
	"x{}a",    // empty capture before a
	"a(x{})",  // empty capture at end
	"x{y{a}}", // nested captures
}

func TestCompiledMatchesNaive(t *testing.T) {
	for _, src := range pipelineFormulas {
		node := regexformula.MustParse(src)
		auto := regexformula.CompileRaw(node).Compile()
		if err := auto.Validate(); err != nil {
			t.Fatalf("%s: compiled automaton invalid: %v", src, err)
		}
		for _, d := range docs("ab", 5) {
			want := regexformula.EvalNaive(node, d)
			got := auto.Eval(d)
			// Align columns: naive uses first-occurrence order, as does Vars.
			aligned, err := got.Project(want.Vars)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			if !aligned.Equal(want) {
				t.Fatalf("%s on %q: automaton %v, naive %v", src, d, aligned, want)
			}
		}
	}
}

func TestDeterminizePreservesSemantics(t *testing.T) {
	for _, src := range pipelineFormulas {
		auto := regexformula.MustCompile(src)
		det, err := auto.Determinize(0)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !det.IsDeterministic() {
			t.Fatalf("%s: Determinize output is not deterministic", src)
		}
		if err := det.Validate(); err != nil {
			t.Fatalf("%s: determinized automaton invalid: %v", src, err)
		}
		for _, d := range docs("ab", 5) {
			if !auto.Eval(d).Equal(det.Eval(d)) {
				t.Fatalf("%s: determinization changed semantics on %q", src, d)
			}
		}
	}
}

func TestToRawRoundTrip(t *testing.T) {
	for _, src := range pipelineFormulas {
		auto := regexformula.MustCompile(src)
		back := auto.ToRaw().Compile()
		for _, d := range docs("ab", 4) {
			if !auto.Eval(d).Equal(back.Eval(d)) {
				t.Fatalf("%s: ToRaw round trip changed semantics on %q", src, d)
			}
		}
	}
}

func TestContainedAgainstBruteForce(t *testing.T) {
	pairs := []struct {
		a, b string
		want bool
	}{
		{"x{a}", "x{a}|x{b}", true},
		{"x{a}|x{b}", "x{a}", false},
		{"a(x{b})", ".*x{b}", true},
		{".*x{b}", "a(x{b})", false},
		{"x{ab}", "x{a.}", true},
		{"x{a.}", "x{ab}", false},
		{"x{a}y{b}", "x{a}y{.}", true},
		{"x{a}y{b}", "y{b}x{a}", false}, // different documents: ab vs ba
		{"x{(ab)*}", "x{(ab)*(ab)*}", true},
		{"x{a+}", "x{a*}", true},
		{"x{a*}", "x{a+}", false},
	}
	for _, p := range pairs {
		a := regexformula.MustCompile(p.a)
		b := regexformula.MustCompile(p.b)
		got, err := vsa.Contained(a, b, 0)
		if err != nil {
			t.Fatalf("%s ⊆ %s: %v", p.a, p.b, err)
		}
		if got != p.want {
			t.Fatalf("Contained(%s, %s) = %v, want %v", p.a, p.b, got, p.want)
		}
		// Cross-check with evaluation on small documents.
		for _, d := range docs("ab", 5) {
			ra := a.Eval(d)
			rb := b.Eval(d)
			rbAligned, err := rb.Project(ra.Vars)
			if err != nil {
				t.Fatal(err)
			}
			for _, tp := range ra.Tuples {
				if p.want && !rbAligned.Has(tp) {
					t.Fatalf("Contained said yes but %s(%q) ∋ %v ∉ %s(%q)", p.a, d, tp, p.b, d)
				}
			}
		}
	}
}

func TestContainedFastPathAgreesWithGeneral(t *testing.T) {
	formulas := []string{"x{a}", ".*x{a}.*", "x{ab}b|a(x{bb})", "x{a|ab}b*"}
	for _, fa := range formulas {
		for _, fb := range formulas {
			a := regexformula.MustCompile(fa)
			b := regexformula.MustCompile(fb)
			general, err := vsa.Contained(a, b, 0)
			if err != nil {
				t.Fatal(err)
			}
			db, err := b.Determinize(0)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := vsa.Contained(a, db, 0)
			if err != nil {
				t.Fatal(err)
			}
			if general != fast {
				t.Fatalf("fast path disagrees on %s ⊆ %s: %v vs %v", fa, fb, general, fast)
			}
		}
	}
}

func TestCounterExample(t *testing.T) {
	a := regexformula.MustCompile(".*x{b}")
	b := regexformula.MustCompile("a(x{b})")
	doc, found, err := vsa.CounterExample(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("expected a counterexample")
	}
	ra := a.Eval(doc)
	rb := b.Eval(doc)
	same := true
	for _, tp := range ra.Tuples {
		if !rb.Has(tp) {
			same = false
		}
	}
	if same {
		t.Fatalf("counterexample %q does not separate the spanners", doc)
	}
}

func TestEquivalentReflexiveOnRandomFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 30; i++ {
		src := randomFormula(rng, 3)
		a, err := regexformula.Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		eq, err := vsa.Equivalent(a, a.Clone(), 0)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !eq {
			t.Fatalf("%s: automaton not equivalent to itself", src)
		}
	}
}

// randomFormula generates a random variable-free or single-variable
// formula for smoke testing.
func randomFormula(rng *rand.Rand, depth int) string {
	if depth == 0 {
		return string(rune('a' + rng.Intn(2)))
	}
	switch rng.Intn(5) {
	case 0:
		return randomFormula(rng, depth-1) + randomFormula(rng, depth-1)
	case 1:
		return "(" + randomFormula(rng, depth-1) + "|" + randomFormula(rng, depth-1) + ")"
	case 2:
		return "(" + randomFormula(rng, depth-1) + ")*"
	case 3:
		inner := randomFormula(rng, depth-1)
		if !strings.Contains(inner, "{") {
			return "v" + "{" + inner + "}"
		}
		return inner
	default:
		return string(rune('a' + rng.Intn(2)))
	}
}

func TestWeakDeterminism(t *testing.T) {
	// The Theorem 4.2 construction x1{x2{Σ*}} is weakly deterministic
	// when built by hand without ε-edges.
	raw := vsa.NewRaw("x1", "x2")
	s1 := raw.AddState(false)
	s2 := raw.AddState(false)
	s3 := raw.AddState(true)
	raw.AddOpEdge(raw.Start, vsa.Open(0), s1)
	raw.AddOpEdge(s1, vsa.Open(1), s2)
	raw.AddOpEdge(s2, vsa.Close(1), s3)
	// Loop on Σ inside, close at the end: simplified variant.
	if !raw.IsWeaklyDeterministic() {
		t.Fatal("chain of distinct ops must be weakly deterministic")
	}
	raw.AddOpEdge(s1, vsa.Open(1), s3) // second x2⊢ edge to a different state
	if raw.IsWeaklyDeterministic() {
		t.Fatal("duplicate op edge to different states must break weak determinism")
	}
}

func TestIsFunctional(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"x{a}", true},
		{"(x{a})*", false},  // zero or many bindings
		{"x{a}|b", false},   // right branch never binds x
		{"x{a}|x{b}", true}, // both branches bind x once
		{"x{a}x{b}", false}, // double binding
		{"x{a*}", true},
		{"x{a}y{b}|y{a}x{b}", true},
	}
	for _, c := range cases {
		n := regexformula.MustParse(c.src)
		if got := regexformula.IsFunctional(n); got != c.want {
			t.Errorf("IsFunctional(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

// TestContainedAlignsVarOrder checks that containment is insensitive to the
// order in which the two automata list their variables.
func TestContainedAlignsVarOrder(t *testing.T) {
	a := regexformula.MustCompile("x{a}y{b}")
	b, err := a.ReorderVars([]string{"y", "x"})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]*vsa.Automaton{{a, b}, {b, a}} {
		ok, err := vsa.Contained(pair[0], pair[1], 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("reordered automaton must contain the original")
		}
	}
}
