package spanners

import (
	"repro/internal/engine"
)

// Engine is a long-lived streaming extraction engine: it memoizes
// compiled automata and decision-procedure verdicts (split-correctness,
// disjointness, locality) in a plan cache (LRU + single-flight),
// streams documents chunk-by-chunk through the splitter whenever the
// locality verdict proves that safe (buffering them whole otherwise),
// and evaluates segments on a shared work-stealing executor with
// bounded-backpressure dispatch. Use it when serving
// many extraction requests; the one-shot façade functions
// (SplitCorrect, ParallelEval, ...) re-run the decision procedures every
// call. See internal/engine and DESIGN.md for the architecture; cmd/spand
// serves an Engine over HTTP.
type Engine = engine.Engine

// EngineConfig tunes an Engine; the zero value selects defaults
// (GOMAXPROCS workers, 128-plan cache, 16-segment batches, 64 KiB
// chunks, stream-when-proven-local). EngineConfig.StreamIncremental is
// a force-override with unsafe-assertion semantics — see
// engine.Config.StreamIncremental for its exact contract.
type EngineConfig = engine.Config

// EngineStats is a monitoring snapshot of an Engine.
type EngineStats = engine.Stats

// ExtractRequest names an extraction plan by its formulas — the plan
// cache key.
type ExtractRequest = engine.Request

// Plan is a compiled, verdict-annotated extraction plan produced by
// Engine.Plan.
type Plan = engine.Plan

// NewEngine returns an engine with the given configuration.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }
