package obs

import (
	"bufio"
	"strconv"
	"strings"
	"testing"
)

// TestWritePrometheusFormat validates the exposition output line by
// line: every non-comment line is `name{labels} value`, every family
// has exactly one HELP/TYPE header, histogram buckets are cumulative
// and end in le="+Inf" equal to _count.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "requests served")
	c.Add(42)
	r.Counter(`test_labeled_total{endpoint="/v1/extract"}`, "labeled requests").Add(7)
	r.Counter(`test_labeled_total{endpoint="/v1/stats"}`, "labeled requests").Add(9)
	g := r.Gauge("test_in_flight", "in-flight requests")
	g.Set(3)
	r.GaugeFunc("test_uptime_seconds", "uptime", func() float64 { return 1.5 })
	h := r.Histogram(`test_latency_seconds{endpoint="/v1/extract"}`, "request latency")
	for _, v := range []uint64{0, 1, 5, 1000, 1000000, 1 << 40} {
		h.Record(v)
	}
	durc := &Counter{}
	durc.Add(2_500_000_000) // 2.5s in ns
	r.BindDurationCounter("test_busy_seconds_total", "busy time", durc)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	values := map[string]float64{}
	helps, types := map[string]int{}, map[string]int{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			helps[strings.Fields(line)[2]]++
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			types[f[2]]++
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("bad TYPE %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unknown comment line %q", line)
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("unbalanced label braces in %q", name)
			}
			inner := name[i+1 : len(name)-1]
			for _, pair := range strings.Split(inner, ",") {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 || !strings.HasPrefix(pair[eq+1:], `"`) || !strings.HasSuffix(pair, `"`) {
					t.Errorf("malformed label %q in %q", pair, name)
				}
			}
		}
		if _, dup := values[name]; dup {
			t.Errorf("duplicate series %q", name)
		}
		values[name] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for family, n := range helps {
		if n != 1 || types[family] != 1 {
			t.Errorf("family %s: HELP×%d TYPE×%d, want exactly one each", family, n, types[family])
		}
	}
	if values["test_requests_total"] != 42 {
		t.Errorf("counter = %v, want 42", values["test_requests_total"])
	}
	if values[`test_labeled_total{endpoint="/v1/extract"}`] != 7 ||
		values[`test_labeled_total{endpoint="/v1/stats"}`] != 9 {
		t.Error("labeled counter variants wrong or missing")
	}
	if helps["test_labeled_total"] != 1 {
		t.Error("labeled variants must share one header")
	}
	if values["test_in_flight"] != 3 || values["test_uptime_seconds"] != 1.5 {
		t.Error("gauge values wrong")
	}
	if got := values["test_busy_seconds_total"]; got != 2.5 {
		t.Errorf("duration counter = %v, want 2.5 (seconds)", got)
	}

	// Histogram contract: cumulative buckets, +Inf == _count, sum exact.
	count := values[`test_latency_seconds_count{endpoint="/v1/extract"}`]
	if count != 6 {
		t.Fatalf("histogram _count = %v, want 6", count)
	}
	inf := values[`test_latency_seconds_bucket{endpoint="/v1/extract",le="+Inf"}`]
	if inf != count {
		t.Fatalf("le=+Inf bucket %v != count %v", inf, count)
	}
	var les []float64
	var cums []float64
	for name, v := range values {
		if !strings.HasPrefix(name, "test_latency_seconds_bucket{") || strings.Contains(name, "+Inf") {
			continue
		}
		leStr := name[strings.Index(name, `le="`)+4:]
		leStr = leStr[:strings.IndexByte(leStr, '"')]
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			t.Fatalf("bad le in %q: %v", name, err)
		}
		les = append(les, le)
		cums = append(cums, v)
	}
	if len(les) == 0 {
		t.Fatal("no finite histogram buckets emitted")
	}
	// Sort by le and check cumulative monotonicity.
	for i := range les {
		for j := i + 1; j < len(les); j++ {
			if les[j] < les[i] {
				les[i], les[j] = les[j], les[i]
				cums[i], cums[j] = cums[j], cums[i]
			}
		}
	}
	for i := 1; i < len(cums); i++ {
		if cums[i] < cums[i-1] {
			t.Fatalf("bucket cumulative counts not monotone: %v at les %v", cums, les)
		}
	}
	if cums[len(cums)-1] > inf {
		t.Fatalf("last finite bucket %v exceeds +Inf %v", cums[len(cums)-1], inf)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "y")
}
