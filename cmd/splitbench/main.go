// Command splitbench regenerates the experiments of EXPERIMENTS.md: the
// split-then-distribute speedups of the paper's Section 1 (E1–E5), the
// complexity-shape measurements for the decision procedures (T1–T8),
// the evaluation-core throughput snapshot (EVAL) that tracks the hot
// path across PRs, the split-evaluation scheduling snapshot (SPLIT)
// that tracks the work-stealing executor against the sequential-Eval
// roofline, and the streamed-ingest snapshot (READER) that tracks the
// compiled incremental segmenter and the engine's reader paths.
//
// A fourth snapshot, PREFILTER, measures the literal-prefilter fast
// paths (factor admission gate + trigger-byte skip loops) against
// prefilter-disabled copies of the same automata on the three standard
// corpora.
//
// A fifth snapshot, MULTI, measures multi-query shared evaluation: one
// fused document pass (vsa.Multi) answering N registered queries
// against N sequential single-query passes over the same corpus, at
// N = 1, 10, 100, plus the per-query admission bitmap on a corpus where
// no query's mandatory factor occurs. Every fused datapoint is verified
// byte-identical per query to its sequential twin before timing.
//
// Usage:
//
//	splitbench [-exp all|EVAL|SPLIT|READER|PREFILTER|MULTI|E1|...|T8] [-bytes n] [-docs n] [-workers n] [-seed n] [-json file]
//
// Experiment names are case-insensitive; an unknown name is a hard
// error listing the valid ones. With -json, the EVAL, SPLIT, READER and
// PREFILTER experiments additionally write their measurements (MB/s on
// the standard corpora) as a machine-readable snapshot, e.g.
// BENCH_PR3.json (EVAL), BENCH_PR5.json (SPLIT), BENCH_PR7.json
// (READER) or BENCH_PR9.json (PREFILTER) — CI runs short versions of
// each to keep the benchmark path compiling and to record the
// performance trajectory. SPLIT verifies every split datapoint
// byte-identical to sequential evaluation before timing it; READER
// verifies the chunked resumable scan span-identical to the reference
// splitter; PREFILTER verifies every filtered datapoint byte-identical
// to its unfiltered twin.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/alphabet"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/library"
	"repro/internal/parallel"
	"repro/internal/reason"
	"repro/internal/regexformula"
	"repro/internal/span"
	"repro/internal/vsa"
)

var (
	expFlag  = flag.String("exp", "all", "experiment id (EVAL, SPLIT, READER, PREFILTER, MULTI, E1..E5, T1..T8; case-insensitive) or all")
	bytesN   = flag.Int("bytes", 1<<21, "corpus size in bytes for E1-E3 and EVAL")
	docsN    = flag.Int("docs", 3000, "collection size for E4-E5")
	workers  = flag.Int("workers", 5, "worker count (the paper uses 5 cores/nodes)")
	seed     = flag.Uint64("seed", 1, "corpus seed")
	jsonPath = flag.String("json", "", "write the EVAL/SPLIT throughput snapshot to this file")
	obsFlag  = flag.Bool("obs", false, "include the engine's observability snapshot (stage time shares, executor and localizer statistics) alongside the timings")
)

// lastEngineStats is the observability snapshot of the engine the most
// recent EVAL/SPLIT run streamed through, captured when -obs is set.
var lastEngineStats *engine.Stats

func main() {
	flag.Parse()
	exps, order := experiments()
	if strings.EqualFold(*expFlag, "all") {
		for _, id := range order {
			exps[id]()
		}
		return
	}
	run, err := resolveExperiment(*expFlag, exps, order)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	run()
}

// experiments returns the experiment registry and its canonical run
// order ("all" runs them in this order).
func experiments() (map[string]func(), []string) {
	exps := map[string]func(){
		"EVAL":      evalThroughput,
		"SPLIT":     splitThroughput,
		"READER":    readerThroughput,
		"PREFILTER": prefilterThroughput,
		"MULTI":     multiThroughput,
		"E1":        func() { ngramSpeedup("E1 Wikipedia 2-grams (paper: 2.10x)", corpus.Wikipedia(*seed, *bytesN), 2) },
		"E2":        func() { ngramSpeedup("E2 Wikipedia 3-grams (paper: 3.11x)", corpus.Wikipedia(*seed, *bytesN), 3) },
		"E3":        func() { ngramSpeedup("E3 PubMed 2-grams    (paper: 1.90x)", corpus.PubMed(*seed, *bytesN), 2) },
		"E4":        e4Reuters,
		"E5":        e5Amazon,
		"T1":        t1Containment,
		"T2":        t2WeakDeterminism,
		"T3":        t3Disjointness,
		"T4":        t4Cover,
		"T5":        t5SplitCorrect,
		"T6":        t6CanonicalSize,
		"T7":        t7Splittability,
		"T8":        t8Reasoning,
	}
	order := []string{"EVAL", "SPLIT", "READER", "PREFILTER", "MULTI", "E1", "E2", "E3", "E4", "E5", "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8"}
	return exps, order
}

// resolveExperiment maps a -exp value to its experiment,
// case-insensitively. An unknown name is a hard error that lists every
// valid experiment, so a typo'd CI invocation fails loudly instead of
// silently benchmarking the wrong thing.
func resolveExperiment(name string, exps map[string]func(), order []string) (func(), error) {
	if run, ok := exps[strings.ToUpper(name)]; ok {
		return run, nil
	}
	return nil, fmt.Errorf("unknown experiment %q: valid experiments are all, %s",
		name, strings.Join(order, ", "))
}

// perfResult is one throughput measurement of the EVAL snapshot.
type perfResult struct {
	Op     string  `json:"op"`
	Corpus string  `json:"corpus"`
	Bytes  int     `json:"bytes"`
	MBPerS float64 `json:"mb_per_s"`
	Tuples int     `json:"tuples"`
}

// perfSnapshot is the -json output: enough context to compare runs
// across PRs without re-reading the benchmark code.
type perfSnapshot struct {
	Experiment string       `json:"experiment"`
	GoVersion  string       `json:"go_version"`
	NumCPU     int          `json:"num_cpu"`
	Workers    int          `json:"workers"`
	Results    []perfResult `json:"results"`
	// Obs is the engine's observability snapshot over the run's streamed
	// datapoints — stage time shares, executor scheduling statistics,
	// localizer effectiveness. Present only with -obs.
	Obs *engine.Stats `json:"obs,omitempty"`
}

// evalThroughput measures the evaluation core on the standard corpora:
// the dense-match review corpus (every few hundred bytes a match), the
// sparse corpus (a match every 64 KB) and a non-matching corpus — the
// three regimes of the bidirectional match-window localizer.
func evalThroughput() {
	header("EVAL evaluation-core throughput (MB/s)")
	p := library.NegativeSentiment()
	p.Prepare()
	dense := strings.Join(corpus.Reviews(*seed, *bytesN/256), "\n")
	// Keep the sparse corpus genuinely sparse-but-matching at any -bytes:
	// a gap larger than a quarter of the corpus would leave it match-free.
	matchEvery := 64 << 10
	if matchEvery > *bytesN/4 {
		matchEvery = *bytesN/4 + 1
	}
	sparse := corpus.SparseSentiment(*seed, *bytesN, matchEvery)
	nonMatching := corpus.Wikipedia(*seed, *bytesN)
	segs := parallel.SegmentsOf(dense, library.FastSentenceSplit(dense))

	var results []perfResult
	results = append(results,
		measure("EvalBool", "dense", dense, func() int {
			if p.EvalBool(dense) {
				return 1
			}
			return 0
		}),
		measure("Eval", "dense", dense, func() int { return p.Eval(dense).Len() }),
		measure("Eval", "sparse", sparse, func() int { return p.Eval(sparse).Len() }),
		measure("Eval", "nonmatching", nonMatching, func() int { return p.Eval(nonMatching).Len() }),
		measure("SplitEval", "dense", dense, func() int { return parallel.SplitEval(p, segs, *workers).Len() }),
	)
	results = append(results, engineStreamingResults(dense, measure)...)
	writeSnapshot("EVAL", results)
}

// measure times one throughput datapoint: warm up once, then time
// enough repetitions to smooth noise.
func measure(op, corpusName, doc string, f func() int) perfResult {
	tuples := f()
	const reps = 5
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	dur := time.Since(t0)
	mbs := float64(len(doc)) * reps / dur.Seconds() / 1e6
	fmt.Printf("%-14s %-12s %9d bytes  %8.1f MB/s  %d tuples\n", op, corpusName, len(doc), mbs, tuples)
	return perfResult{Op: op, Corpus: corpusName, Bytes: len(doc), MBPerS: mbs, Tuples: tuples}
}

// writeSnapshot emits the machine-readable -json snapshot, if requested.
func writeSnapshot(experiment string, results []perfResult) {
	if *jsonPath == "" {
		return
	}
	snap := perfSnapshot{
		Experiment: experiment,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Workers:    *workers,
		Results:    results,
	}
	if *obsFlag {
		snap.Obs = lastEngineStats
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", experiment, err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", experiment, err)
		os.Exit(1)
	}
	fmt.Printf("snapshot written to %s\n", *jsonPath)
}

// splitThroughput is the PR 5 scheduling-overhead snapshot: sequential
// Eval as the roofline, SplitEval on the work-stealing executor across
// worker counts, and the engine's streamed/buffered reader paths, all
// on the dense corpus. Every split result is verified byte-identical to
// the sequential reference before timing — a split-evaluation datapoint
// that disagrees with Eval would be measuring a correctness bug.
func splitThroughput() {
	header("SPLIT work-stealing split evaluation (MB/s)")
	p := library.NegativeSentiment()
	p.Prepare()
	dense := strings.Join(corpus.Reviews(*seed, *bytesN/256), "\n")
	segs := parallel.SegmentsOf(dense, library.FastSentenceSplit(dense))
	fmt.Printf("segments=%d  workers=%d\n", len(segs), *workers)

	seq := p.Eval(dense)
	workerCounts := []int{1, 2, *workers}
	if *workers <= 2 {
		workerCounts = []int{1, 2}
	}
	for _, w := range workerCounts {
		if got := parallel.SplitEval(p, segs, w); !got.Equal(seq) {
			fmt.Fprintf(os.Stderr, "SPLIT: split evaluation at %d workers disagrees with sequential Eval\n", w)
			os.Exit(1)
		}
	}

	results := []perfResult{
		measure("Eval", "dense", dense, func() int { return p.Eval(dense).Len() }),
	}
	for _, w := range workerCounts {
		results = append(results, measure(fmt.Sprintf("SplitEval/w%d", w), "dense", dense,
			func() int { return parallel.SplitEval(p, segs, w).Len() }))
	}
	results = append(results, engineStreamingResults(dense, measure)...)
	writeSnapshot("SPLIT", results)
}

// readerThroughput is the PR 7 streamed-ingest snapshot: sequential
// Eval as the roofline, the splitter alone in its three forms —
// SplitReference (full evaluation + sort), Split (the compiled one-pass
// scanner) and ScanFeed (the resumable scanner fed engine-sized chunks,
// i.e. segmentation work as ExtractReader's producer sees it) — and the
// engine's streamed/buffered reader paths. ScanFeed is verified
// span-identical to SplitReference before timing.
func readerThroughput() {
	header("READER streamed-ingest throughput (MB/s)")
	p := library.NegativeSentiment()
	p.Prepare()
	dense := strings.Join(corpus.Reviews(*seed, *bytesN/256), "\n")
	s := library.Sentences()
	chunkSize := 64 << 10

	scanChunked := func() []span.Span {
		r, ok := s.NewScanRun()
		if !ok {
			fmt.Fprintln(os.Stderr, "READER: sentence splitter has no compiled scanner")
			os.Exit(1)
		}
		var spans []span.Span
		for lo := 0; lo < len(dense); lo += chunkSize {
			hi := lo + chunkSize
			if hi > len(dense) {
				hi = len(dense)
			}
			var chunkOK bool
			spans, chunkOK = r.Feed([]byte(dense[lo:hi]), spans)
			if !chunkOK {
				fmt.Fprintln(os.Stderr, "READER: scanner bailed on the dense corpus")
				os.Exit(1)
			}
		}
		spans, ok = r.Flush(spans)
		if !ok {
			fmt.Fprintln(os.Stderr, "READER: scanner bailed at flush")
			os.Exit(1)
		}
		return spans
	}
	want := s.SplitReference(dense)
	got := scanChunked()
	if len(got) != len(want) {
		fmt.Fprintf(os.Stderr, "READER: chunked scan found %d spans, reference %d\n", len(got), len(want))
		os.Exit(1)
	}
	for i := range got {
		if got[i] != want[i] {
			fmt.Fprintf(os.Stderr, "READER: chunked scan span %d = %v, reference %v\n", i, got[i], want[i])
			os.Exit(1)
		}
	}

	results := []perfResult{
		measure("Eval", "dense", dense, func() int { return p.Eval(dense).Len() }),
		measure("SplitReference", "dense", dense, func() int { return len(s.SplitReference(dense)) }),
		measure("Split", "dense", dense, func() int { return len(s.Split(dense)) }),
		measure("ScanFeed", "dense", dense, func() int { return len(scanChunked()) }),
	}
	results = append(results, engineStreamingResults(dense, measure)...)
	writeSnapshot("READER", results)
}

// prefilterThroughput is the PR 9 literal-prefilter snapshot: the
// NegativeSentiment extractor (mandatory factor "bad ") and the
// sentence splitter (no factor, but trigger-skippable scan states) on
// the three standard corpora, each measured with the prefilter on and
// off ("/off" datapoints). The sparse and non-matching corpora are
// where the factor gate and the trigger-byte skip loop should approach
// memchr speed; the dense corpus is the regression guard — the streak
// heuristic must keep the skip machinery out of the way there. Every
// filtered datapoint is verified byte-identical to its unfiltered twin
// before anything is timed.
func prefilterThroughput() {
	header("PREFILTER literal-prefilter throughput (MB/s)")
	on := library.NegativeSentiment()
	on.Prepare()
	off := library.NegativeSentiment()
	off.DisablePrefilter()
	off.Prepare()
	if pf := on.Prefilter(); pf.Reason != vsa.PrefilterOK {
		fmt.Fprintf(os.Stderr, "PREFILTER: NegativeSentiment factor gate not armed: %+v\n", pf)
		os.Exit(1)
	}

	dense := strings.Join(corpus.Reviews(*seed, *bytesN/256), "\n")
	matchEvery := 64 << 10
	if matchEvery > *bytesN/4 {
		matchEvery = *bytesN/4 + 1
	}
	sparse := corpus.SparseSentiment(*seed, *bytesN, matchEvery)
	nonMatching := corpus.Wikipedia(*seed, *bytesN)
	corpora := []struct{ name, doc string }{
		{"dense", dense}, {"sparse", sparse}, {"nonmatching", nonMatching},
	}
	for _, c := range corpora {
		if !on.Eval(c.doc).Equal(off.Eval(c.doc)) {
			fmt.Fprintf(os.Stderr, "PREFILTER: filtered Eval disagrees with unfiltered on %s corpus\n", c.name)
			os.Exit(1)
		}
		if on.EvalBool(c.doc) != off.EvalBool(c.doc) {
			fmt.Fprintf(os.Stderr, "PREFILTER: filtered EvalBool disagrees with unfiltered on %s corpus\n", c.name)
			os.Exit(1)
		}
	}

	sentSrc := "(x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*|" +
		"[^.!?\\n]*([.!?\\n][^.!?\\n]*)*[.!?\\n](x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*"
	sentOn := core.MustSplitter(regexformula.MustCompile(sentSrc))
	sentOffAuto := regexformula.MustCompile(sentSrc)
	sentOffAuto.DisablePrefilter()
	sentOff := core.MustSplitter(sentOffAuto)
	for _, c := range corpora {
		got, want := sentOn.Split(c.doc), sentOff.Split(c.doc)
		if len(got) != len(want) {
			fmt.Fprintf(os.Stderr, "PREFILTER: filtered Split found %d spans, unfiltered %d on %s corpus\n", len(got), len(want), c.name)
			os.Exit(1)
		}
		for i := range got {
			if got[i] != want[i] {
				fmt.Fprintf(os.Stderr, "PREFILTER: Split span %d differs on %s corpus: %v vs %v\n", i, c.name, got[i], want[i])
				os.Exit(1)
			}
		}
	}

	var results []perfResult
	for _, c := range corpora {
		doc := c.doc
		results = append(results,
			measure("EvalBool", c.name, doc, func() int {
				if on.EvalBool(doc) {
					return 1
				}
				return 0
			}),
			measure("EvalBool/off", c.name, doc, func() int {
				if off.EvalBool(doc) {
					return 1
				}
				return 0
			}),
			measure("Eval", c.name, doc, func() int { return on.Eval(doc).Len() }),
			measure("Eval/off", c.name, doc, func() int { return off.Eval(doc).Len() }),
		)
	}
	results = append(results,
		measure("Split", "sparse", sparse, func() int { return len(sentOn.Split(sparse)) }),
		measure("Split/off", "sparse", sparse, func() int { return len(sentOff.Split(sparse)) }),
		measure("Split", "dense", dense, func() int { return len(sentOn.Split(dense)) }),
		measure("Split/off", "dense", dense, func() int { return len(sentOff.Split(dense)) }),
	)
	writeSnapshot("PREFILTER", results)
}

// multiMarker is the literal token query i of the MULTI experiment
// extracts: "q" plus two lowercase letters, distinct per query, never a
// substring of the filler prose or of another marker.
func multiMarker(i int) string {
	return string([]byte{'q', byte('a' + i/10), byte('a' + i%10)})
}

// multiFormula is the i-th registered query: extract every occurrence
// of its marker token as the span of variable x.
func multiFormula(i int) string {
	m := multiMarker(i)
	return fmt.Sprintf(`.*(x{%s}).*|(x{%s}).*`, m, m)
}

// multiCorpus interleaves filler prose with the first `markers` marker
// tokens in rotation, so every registered query finds matches and the
// corpus is identical across query-set sizes. The filler deliberately
// contains every lowercase letter, keeping per-member trigger-byte
// skipping ineffective: both sides of the comparison are scan-bound,
// which is the regime the fused pass is for.
func multiCorpus(n, markers int) string {
	const filler = "the quick brown fox jumps over lazy dogs while zebras vex " +
		"judges and make a big sphinx of quartz wait in the cold hall. "
	var b strings.Builder
	b.Grow(n + len(filler) + 8)
	for i := 0; b.Len() < n; i++ {
		b.WriteString(filler)
		b.WriteString(multiMarker(i % markers))
		b.WriteByte(' ')
	}
	return b.String()[:n]
}

// multiThroughput is the PR 10 snapshot: one fused document pass
// (vsa.Multi) answering N registered queries versus N sequential
// single-query passes over the same corpus, at N = 1, 10, 100. Every
// fused datapoint is verified byte-identical per query to its
// sequential twin — through both Multi.Eval and the work-stealing
// parallel.MultiEval — before it is timed. Both sides report MB/s over
// one document traversal serving the whole query set, so the ratio of
// the fused row to the sequential row is the aggregate speedup; the
// aggregate row restates the fused rate times N (query-bytes answered
// per second). The final rows measure the per-query admission bitmap: a
// corpus where no query's mandatory factor occurs is dismissed by the
// prefilter gate without a full fused pass.
func multiThroughput() {
	header("MULTI fused multi-query evaluation (MB/s)")
	const maxN = 100
	doc := multiCorpus(*bytesN, maxN)
	whole := []parallel.Segment{{Span: span.Span{Start: 1, End: len(doc) + 1}, Text: doc}}

	var results []perfResult
	for _, n := range []int{1, 10, 100} {
		members := make([]*vsa.Automaton, n)
		for i := range members {
			members[i] = regexformula.MustCompile(multiFormula(i))
			members[i].Prepare()
		}
		m := vsa.NewMulti(members...)
		m.Prepare()

		// Verify before timing: each query's fused result must be
		// byte-identical to its own sequential pass, on both the direct
		// and the executor path.
		seq := make([]*span.Relation, n)
		for i, mem := range members {
			seq[i] = mem.Eval(doc)
		}
		for _, fused := range [][]*span.Relation{m.Eval(doc), parallel.MultiEval(m, whole, *workers)} {
			for q := range seq {
				if !fused[q].Equal(seq[q]) {
					fmt.Fprintf(os.Stderr, "MULTI: fused result for query %d of %d differs from its sequential pass\n", q, n)
					os.Exit(1)
				}
			}
		}

		name := fmt.Sprintf("queries-%d", n)
		seqRow := measure("Eval/seq", name, doc, func() int {
			tuples := 0
			for _, mem := range members {
				tuples += mem.Eval(doc).Len()
			}
			return tuples
		})
		fusedRow := measure("Eval/fused", name, doc, func() int {
			tuples := 0
			for _, rel := range m.Eval(doc) {
				tuples += rel.Len()
			}
			return tuples
		})
		results = append(results, seqRow, fusedRow,
			perfResult{Op: "aggregate/fused", Corpus: name, Bytes: len(doc) * n,
				MBPerS: fusedRow.MBPerS * float64(n), Tuples: fusedRow.Tuples})
		fmt.Printf("%-14s %-12s aggregate %8.1f MB/s  speedup %.2fx over %d sequential passes\n",
			"aggregate", name, fusedRow.MBPerS*float64(n), fusedRow.MBPerS/seqRow.MBPerS, n)
	}

	// Admission bitmap: none of the markers occur in the Wikipedia
	// corpus, so the factor gate dismisses every query up front.
	absent := corpus.Wikipedia(*seed, *bytesN)
	members := make([]*vsa.Automaton, 10)
	for i := range members {
		members[i] = regexformula.MustCompile(multiFormula(i))
		members[i].Prepare()
	}
	m := vsa.NewMulti(members...)
	m.Prepare()
	for i, rel := range m.Eval(absent) {
		if !rel.Equal(members[i].Eval(absent)) {
			fmt.Fprintf(os.Stderr, "MULTI: fused result for query %d differs on the non-matching corpus\n", i)
			os.Exit(1)
		}
	}
	results = append(results, measure("Eval/fused", "nonmatching", absent, func() int {
		tuples := 0
		for _, rel := range m.Eval(absent) {
			tuples += rel.Len()
		}
		return tuples
	}))

	writeSnapshot("MULTI", results)
}

// engineStreamingResults measures the engine's split evaluation of a
// streamed document in both ingest modes on the same plan: "streamed"
// rides the locality verdict (the sentence splitter is proven local,
// so segmentation overlaps evaluation), "buffered" reads the stream
// whole before evaluating — the PR 4 streamed-vs-buffered SplitEval
// datapoint of the benchmark snapshot.
func engineStreamingResults(dense string, measure func(op, corpusName, doc string, f func() int) perfResult) []perfResult {
	negFormula := `(.*[ .!?\n])?bad (y{[a-z]+})(([^a-z].*)?|)`
	sentFormula := "(x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*|" +
		"[^.!?\\n]*([.!?\\n][^.!?\\n]*)*[.!?\\n](x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*"
	ctx := context.Background()
	eng := engine.New(engine.Config{Workers: *workers})
	plan, _, err := eng.Plan(ctx, engine.Request{Spanner: negFormula, Splitter: sentFormula})
	if err != nil {
		fmt.Fprintf(os.Stderr, "EVAL: engine plan: %v\n", err)
		os.Exit(1)
	}
	if !eng.WillStream(plan) {
		fmt.Fprintf(os.Stderr, "EVAL: sentence splitter no longer proven local (verdicts %+v)\n", plan.Verdicts)
		os.Exit(1)
	}
	// Same plan, locality verdict overridden to "no": ExtractReader takes
	// the sound buffer-all path (the struct copy leaves the cached plan
	// untouched).
	buffered := *plan
	buffered.Verdicts.Local = core.VerdictNo
	extract := func(p *engine.Plan) int {
		rel, err := eng.ExtractReader(ctx, p, strings.NewReader(dense))
		if err != nil {
			fmt.Fprintf(os.Stderr, "EVAL: %v\n", err)
			os.Exit(1)
		}
		return rel.Len()
	}
	out := []perfResult{
		measure("SplitEvalStream", "streamed", dense, func() int { return extract(plan) }),
		measure("SplitEvalStream", "buffered", dense, func() int { return extract(&buffered) }),
	}
	if *obsFlag {
		st := eng.Stats()
		lastEngineStats = &st
		for _, stage := range []string{"plan", "segment", "eval", "merge", "localize", "sim"} {
			s := st.Stages[stage]
			fmt.Printf("obs %-9s share=%5.3f total=%8.1fms count=%d\n", stage, s.Share, s.TotalMS, s.Count)
		}
		fmt.Printf("obs executor  steals=%d chunks=%d busy=%.3f\n",
			st.Executor.Steals, st.Executor.Chunks, st.Executor.BusyShare)
	}
	return out
}

func header(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

// ngramSpeedup reproduces the Section 1 N-gram experiments: sequential
// evaluation of the composed spanner (N-grams of sentences) on the whole
// corpus versus per-sentence parallel evaluation on w workers.
func ngramSpeedup(title, doc string, n int) {
	header(title)
	sentences := library.Sentences()
	ngram := library.NGrams(n)
	composed := core.Compose(ngram.Automaton(), sentences)
	segs := parallel.SegmentsOf(doc, library.FastSentenceSplit(doc))
	m, err := parallel.Measure(title, composed, ngram.Automaton(), doc, segs, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", title, err)
		os.Exit(1)
	}
	fmt.Printf("corpus=%d bytes  sentences=%d  workers=%d\n", len(doc), len(segs), *workers)
	fmt.Printf("sequential=%v  split=%v  speedup=%.2fx  ngrams=%d\n",
		m.Sequential.Round(time.Millisecond), m.Split.Round(time.Millisecond), m.Speedup, m.Tuples)
}

// e4Reuters mirrors the Spark experiment on ~9,000 Reuters articles: the
// same worker pool schedules either whole articles or their sentences.
func e4Reuters() {
	header("E4 Reuters finance events over a pre-split collection (paper: 1.99x)")
	docs := corpus.Reuters(*seed, *docsN)
	p := library.FinanceEvents()
	collectionExperiment(p, docs, "articles")
}

// collectionExperiment runs the pre-split-collection comparison in two
// arrival orders. With random arrival a shared-memory worker pool shows
// little difference (its scheduling overhead is negligible either way —
// the Spark-specific amortization the paper observed does not transfer);
// the benefit of sentence-granular tasks appears when long documents
// arrive late and whole-document scheduling straggles on them.
func collectionExperiment(p *vsa.Automaton, docs []string, noun string) {
	fmt.Printf("%s=%d  workers=%d\n", noun, len(docs), *workers)
	m, err := parallel.MeasureCollection("random-order", p, p, docs, library.FastSentenceSplit, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "random-order: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("random order : whole-docs=%v  split-tasks=%v  speedup=%.2fx  tuples=%d\n",
		m.Sequential.Round(time.Millisecond), m.Split.Round(time.Millisecond), m.Speedup, m.Tuples)
	sorted := append([]string(nil), docs...)
	sort.Slice(sorted, func(i, j int) bool { return len(sorted[i]) < len(sorted[j]) })
	m, err = parallel.MeasureCollection("long-last", p, p, sorted, library.FastSentenceSplit, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "long-last: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("long-last    : whole-docs=%v  split-tasks=%v  speedup=%.2fx  tuples=%d\n",
		m.Sequential.Round(time.Millisecond), m.Split.Round(time.Millisecond), m.Speedup, m.Tuples)
}

func e5Amazon() {
	header("E5 Amazon negative-sentiment targets (paper: 4.16x)")
	docs := corpus.Reviews(*seed, *docsN*10)
	p := library.NegativeSentiment()
	collectionExperiment(p, docs, "reviews")
}

func timed(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}

// t1Containment contrasts Theorem 4.1 (general containment, exponential
// via subset construction) with Theorem 4.3 (deterministic right side,
// product-based) on growing token extractors.
func t1Containment() {
	header("T1 containment: general (Thm 4.1) vs deterministic (Thm 4.3)")
	fmt.Println("k   |A| states  general     deterministic  result")
	for k := 2; k <= 10; k += 2 {
		pat := strings.Repeat("a", k)
		a := regexformula.MustCompile(".*y{" + pat + "}.*")
		b := regexformula.MustCompile(".*y{" + pat + "|" + pat + "b}.*")
		db, err := b.Determinize(0)
		if err != nil {
			panic(err)
		}
		var okGen, okDet bool
		genDur := timed(func() { okGen, _ = vsa.Contained(a, b, 0) })
		detDur := timed(func() { okDet, _ = vsa.Contained(a, db, 0) })
		if okGen != okDet {
			panic("T1: procedures disagree")
		}
		fmt.Printf("%-3d %-10d  %-10v  %-13v  %v\n", k, a.NumStates(), genDur.Round(time.Microsecond), detDur.Round(time.Microsecond), okGen)
	}
}

// t2WeakDeterminism builds the Theorem 4.2 reduction from DFA union
// universality: A selects the whole document in all n variables; A' does
// so per branch i when the i-th DFA accepts. Containment holds iff the
// union of the DFAs is universal, and the running time of the general
// procedure grows quickly with n — weak determinism does not help.
func t2WeakDeterminism() {
	header("T2 Theorem 4.2: containment hard despite weak determinism")
	fmt.Println("n   universal  contained  time")
	for n := 1; n <= 3; n++ {
		for _, universal := range []bool{true, false} {
			a, aPrime := theorem42Instance(n, universal)
			var ok bool
			dur := timed(func() {
				var err error
				ok, err = vsa.Contained(a.Compile(), aPrime.Compile(), 0)
				if err != nil {
					panic(err)
				}
			})
			if ok != universal {
				panic("T2: containment must coincide with union universality")
			}
			fmt.Printf("%-3d %-9v  %-9v  %v\n", n, universal, ok, dur.Round(time.Microsecond))
		}
	}
}

// theorem42Instance builds raw VSet-automata per the proof of Theorem 4.2
// over Σ = {a, b}, with DFAs A_i = "length ≡ i (mod n)"; their union is
// universal, and dropping residue 0 (universal=false keeps lengths ≢ 0)
// breaks universality.
func theorem42Instance(n int, universal bool) (*vsa.Raw, *vsa.Raw) {
	vars := make([]string, n)
	for i := range vars {
		vars[i] = fmt.Sprintf("x%d", i)
	}
	sigma := []byte{'a', 'b'}
	// A: open all variables in order, loop on Σ, close all.
	a := vsa.NewRaw(vars...)
	cur := a.Start
	for v := 0; v < n; v++ {
		next := a.AddState(false)
		a.AddOpEdge(cur, vsa.Open(v), next)
		cur = next
	}
	loop := cur
	for _, c := range sigma {
		a.AddSymbolEdge(loop, alphabet.Of(c), loop)
	}
	for v := 0; v < n; v++ {
		next := a.AddState(v == n-1)
		a.AddOpEdge(cur, vsa.Close(v), next)
		cur = next
	}
	// A': branch i opens x_i first, then the others in order, then runs
	// the DFA "length ≡ i mod n" (or skips residue 0 in the non-universal
	// case), closing everything at the end.
	ap := vsa.NewRaw(vars...)
	for i := 0; i < n; i++ {
		if !universal && i == 0 {
			continue
		}
		cur := ap.AddState(false)
		ap.AddOpEdge(ap.Start, vsa.Open(i), cur)
		for v := 0; v < n; v++ {
			if v == i {
				continue
			}
			next := ap.AddState(false)
			ap.AddOpEdge(cur, vsa.Open(v), next)
			cur = next
		}
		// Mod-n length counter.
		states := make([]int, n)
		states[0] = cur
		for j := 1; j < n; j++ {
			states[j] = ap.AddState(false)
		}
		for j := 0; j < n; j++ {
			for _, c := range sigma {
				ap.AddSymbolEdge(states[j], alphabet.Of(c), states[(j+1)%n])
			}
		}
		// Accept at residue i: close all variables.
		cur = states[i%n]
		for v := 0; v < n; v++ {
			next := ap.AddState(v == n-1)
			ap.AddOpEdge(cur, vsa.Close(v), next)
			cur = next
		}
	}
	return a, ap
}

func t3Disjointness() {
	header("T3 disjointness check (Prop 5.5) scaling")
	fmt.Println("splitter              states  time       disjoint")
	cases := []struct {
		name string
		s    *core.Splitter
	}{
		{"sentences", library.Sentences()},
		{"paragraphs", library.Paragraphs()},
		{"tokens", library.Tokens()},
		{"1-grams", library.NGrams(1)},
		{"2-grams", library.NGrams(2)},
		{"3-grams", library.NGrams(3)},
		{"4-grams", library.NGrams(4)},
		{"http-requests", library.HTTPRequests()},
	}
	for _, c := range cases {
		var ok bool
		dur := timed(func() { ok = c.s.IsDisjoint() })
		fmt.Printf("%-21s %-7d %-10v %v\n", c.name, c.s.Automaton().NumStates(), dur.Round(time.Microsecond), ok)
	}
}

func t4Cover() {
	header("T4 cover condition: general (Lemma 5.4) vs polynomial (Lemma 5.6)")
	fmt.Println("k   general     polynomial  holds")
	for k := 1; k <= 6; k++ {
		pat := strings.Repeat("a", k)
		p, err := regexformula.MustCompile(".*y{" + pat + "}.*").Determinize(0)
		if err != nil {
			panic(err)
		}
		// A disjoint block splitter: maximal b-free blocks. Every run of
		// a's lies inside one, so the cover condition holds.
		sAuto, err := regexformula.MustCompile("(x{[^b]*})(b[^b]*)*|[^b]*(b[^b]*)*b(x{[^b]*})(b[^b]*)*").Determinize(0)
		if err != nil {
			panic(err)
		}
		s := core.MustSplitter(sAuto)
		var okGen, okPoly bool
		genDur := timed(func() { okGen, _ = core.CoverCondition(p, s, 0) })
		polyDur := timed(func() { okPoly, _ = core.CoverConditionPoly(p, s) })
		if okGen != okPoly {
			panic("T4: procedures disagree")
		}
		if !okGen {
			panic("T4: cover condition must hold for this family")
		}
		fmt.Printf("%-3d %-10v  %-10v  %v\n", k, genDur.Round(time.Microsecond), polyDur.Round(time.Microsecond), okGen)
	}
}

func t5SplitCorrect() {
	header("T5 split-correctness: general (Thm 5.1) vs polynomial (Thm 5.7)")
	fmt.Println("k   general     polynomial  correct")
	for k := 1; k <= 6; k++ {
		pat := strings.Repeat("a", k)
		// P extracts every k-long run of a's; it is self-splittable by
		// maximal b-free blocks, so P_S = P is split-correct.
		p, err := regexformula.MustCompile(".*y{" + pat + "}.*").Determinize(0)
		if err != nil {
			panic(err)
		}
		ps := p
		sAuto, err := regexformula.MustCompile("(x{[^b]*})(b[^b]*)*|[^b]*(b[^b]*)*b(x{[^b]*})(b[^b]*)*").Determinize(0)
		if err != nil {
			panic(err)
		}
		s := core.MustSplitter(sAuto)
		var okGen, okPoly bool
		genDur := timed(func() { okGen, _ = core.SplitCorrect(p, ps, s, 0) })
		polyDur := timed(func() { okPoly, _ = core.SplitCorrectPoly(p, ps, s) })
		if okGen != okPoly {
			panic("T5: procedures disagree")
		}
		if !okGen {
			panic("T5: this family must be split-correct")
		}
		fmt.Printf("%-3d %-10v  %-10v  %v\n", k, genDur.Round(time.Microsecond), polyDur.Round(time.Microsecond), okGen)
	}
}

func t6CanonicalSize() {
	header("T6 canonical split-spanner size (Prop 5.9: polynomial in |P|·|S|)")
	fmt.Println("k   |P|  |S|  |P_S^can|  |P|*|S|")
	for k := 1; k <= 6; k++ {
		pat := strings.Repeat("a", k)
		p := regexformula.MustCompile(".*y{" + pat + "}.*")
		s := core.MustSplitter(regexformula.MustCompile("(x{[^b]*})(b[^b]*)*|[^b]*(b[^b]*)*b(x{[^b]*})(b[^b]*)*"))
		can := core.Canonical(p, s)
		fmt.Printf("%-3d %-4d %-4d %-9d %d\n", k, p.NumStates(), s.Automaton().NumStates(),
			can.NumStates(), p.NumStates()*s.Automaton().NumStates())
	}
}

func t7Splittability() {
	header("T7 splittability (Thm 5.15) on splittable and unsplittable families")
	fmt.Println("k   splittable-instance  unsplittable-instance")
	for k := 1; k <= 4; k++ {
		pat := strings.Repeat("a", k)
		s := core.MustSplitter(regexformula.MustCompile("(x{[^b]*})(b[^b]*)*|[^b]*(b[^b]*)*b(x{[^b]*})(b[^b]*)*"))
		good := regexformula.MustCompile(".*y{" + pat + "}.*")
		bad := regexformula.MustCompile(".*y{" + pat + "b" + pat + "}.*")
		var okGood, okBad bool
		goodDur := timed(func() { okGood, _, _ = core.Splittable(good, s, 0) })
		badDur := timed(func() { okBad, _, _ = core.Splittable(bad, s, 0) })
		if !okGood || okBad {
			panic("T7: unexpected answers")
		}
		fmt.Printf("%-3d %-20v %v\n", k, goodDur.Round(time.Microsecond), badDur.Round(time.Microsecond))
	}
}

func t8Reasoning() {
	header("T8 Section 6 reasoning: K-grams inside N-grams; sentence/paragraph subsumption")
	// The paper notes a K-gram extractor can be applied to the chunks of
	// an N-gram splitter whenever K ≤ N. As strict self-splittability this
	// holds only for K = N: documents with fewer than N words have no
	// N-gram chunks at all. The intended content is completeness on
	// documents with at least N words: S_K restricted to such documents is
	// contained in S_K ∘ S_N iff K ≤ N.
	fmt.Println("K  N  equal(S_K=S_K∘S_N)  complete(K-grams from N-chunks)  time")
	for _, kn := range [][2]int{{1, 1}, {1, 2}, {2, 2}, {2, 3}, {3, 3}, {3, 2}, {2, 1}} {
		k, n := kn[0], kn[1]
		kg := library.NGrams(k).Automaton()
		ns := library.NGrams(n)
		var equal, complete bool
		dur := timed(func() {
			var err error
			equal, err = core.SelfSplittable(kg, ns, 0)
			if err != nil {
				panic(err)
			}
			restricted, err := algebra.Restrict(kg, atLeastWords(n))
			if err != nil {
				panic(err)
			}
			complete, err = vsa.Contained(restricted, core.Compose(kg, ns), 0)
			if err != nil {
				panic(err)
			}
		})
		if equal != (k == n) {
			panic(fmt.Sprintf("T8: equality expected iff K=N (K=%d N=%d)", k, n))
		}
		if complete != (k <= n) {
			panic(fmt.Sprintf("T8: completeness expected iff K≤N (K=%d N=%d)", k, n))
		}
		fmt.Printf("%-2d %-2d %-19v %-31v %v\n", k, n, equal, complete, dur.Round(time.Microsecond))
	}
	sent := library.Sentences()
	para := library.Paragraphs()
	var ok bool
	dur := timed(func() { ok, _ = reason.Subsumes(sent, para, nil, 0) })
	if !ok {
		panic("T8: sentence splitting must factor through paragraphs")
	}
	fmt.Printf("sentences = sentences ∘ paragraphs: %v (%v)\n", ok, dur.Round(time.Microsecond))
}

// atLeastWords returns the Boolean spanner for single-space-separated
// documents with at least n words (no leading or trailing spaces).
func atLeastWords(n int) *vsa.Automaton {
	w := "[^ \\n]+"
	src := w + strings.Repeat(" "+w, n-1) + "( " + w + ")*"
	return regexformula.MustCompile(src)
}
