// Package loadgen is a concurrent load harness for a spand-compatible
// extraction daemon. It drives N closed-loop connections against
// POST /v1/extract with a mixed workload — plan-cache hits and misses,
// small and large documents, inline JSON and streamed raw bodies — and
// reports client-side throughput and latency percentiles per
// connection count. cmd/spanload is the CLI; the spand test suite runs
// the same harness in-process as a CI smoke.
//
// Latencies are collected into the same log₂-bucketed histograms the
// daemon itself is instrumented with (internal/obs), so the client's
// percentiles and the daemon's /v1/stats percentiles are directly
// comparable.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// The hot plan: a split-parallel email spanner over a sentence
// splitter, identical for every hit request so it is compiled once and
// served from the plan cache thereafter.
const (
	hotSpanner  = `(.*[^a-z0-9])?(y{[a-z0-9]+@[a-z0-9]+})([^a-z0-9].*)?`
	hotSplitter = "(x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*|" +
		"[^.!?\\n]*([.!?\\n][^.!?\\n]*)*[.!?\\n](x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*"
)

// missSpanner returns the n-th unique spanner formula. Each is seen at
// most once per run, so every one is a plan-cache miss that pays
// compilation and the decision procedures inline with the request.
func missSpanner(n uint64) string {
	return fmt.Sprintf(`(.*)(y{m%dx[a-z0-9]+@[a-z0-9]+})(.*)`, n)
}

// batchSpanners is the fixed query set of the fused-batch requests: the
// hot email spanner plus two more formulas, registered together so the
// daemon answers all three with one shared document pass
// (/v1/extract-batch). Identical across requests, so the fused plan is
// compiled once and cache-hit thereafter.
var batchSpanners = []string{
	hotSpanner,
	`(.*[^a-z])?(y{then|finally})([^a-z].*)?`,
	`(.*[^a-z0-9])?(y{[a-z]+@[a-z0-9]+[.]com})([^a-z0-9].*)?`,
}

// Config parameterizes one load run.
type Config struct {
	// Target is the daemon's base URL (e.g. http://127.0.0.1:8080).
	Target string
	// Conns is the number of concurrent closed-loop connections.
	Conns int
	// Duration is how long the connections keep issuing requests.
	Duration time.Duration
	// Seed makes the workload mix reproducible; 0 selects a fixed seed.
	Seed uint64
	// MissEvery mixes one plan-cache-missing formula into every n
	// requests; 0 selects the default of 8. Negative disables misses.
	MissEvery int
	// BatchEvery mixes one fused multi-query request (/v1/extract-batch
	// with the fixed batchSpanners set) into every n requests; 0 disables
	// batches — the pre-batch workload mix, kept as the default so
	// CONCURRENCY/OVERLOAD snapshots stay comparable across PRs.
	BatchEvery int
	// Client optionally overrides the HTTP client (the in-process smoke
	// passes an httptest client). nil uses a pooled default.
	Client *http.Client
}

// Result is the measured outcome of one connection-count run — one row
// of the CONCURRENCY experiment.
type Result struct {
	Connections int     `json:"connections"`
	Requests    uint64  `json:"requests"`
	Errors      uint64  `json:"errors"`
	Seconds     float64 `json:"seconds"`
	ReqPerS     float64 `json:"req_per_s"`
	MBPerS      float64 `json:"mb_per_s"` // document bytes submitted per second
	P50MS       float64 `json:"p50_ms"`
	P90MS       float64 `json:"p90_ms"`
	P99MS       float64 `json:"p99_ms"`
}

// Snapshot is the written benchmark artifact (BENCH_PR6.json).
type Snapshot struct {
	Experiment string   `json:"experiment"` // "CONCURRENCY"
	GoVersion  string   `json:"go_version"`
	NumCPU     int      `json:"num_cpu"`
	Target     string   `json:"target"`
	Results    []Result `json:"results"`
}

// docs builds the mixed document corpus: sentence-structured text with
// email matches sprinkled in, at three sizes spanning two orders of
// magnitude. Small documents stay under the engine's instrumentation
// threshold and large ones well above it, so a run exercises both
// paths.
func docs() []string {
	unit := "meet ann@example today. then bob@corp tomorrow! finally eve@host. plain filler sentence with no address?"
	sizes := []int{1 << 10, 16 << 10, 128 << 10}
	out := make([]string, len(sizes))
	for i, n := range sizes {
		out[i] = strings.Repeat(unit+" ", n/len(unit)+1)[:n]
	}
	return out
}

// runState is the state one measurement's connections share: the
// corpus, the aggregated counters and the latency histogram. All
// recording is lock-free, so connections never serialize on it.
type runState struct {
	cfg    Config
	client *http.Client
	corpus []string

	requests, errors, bytes obs.Counter
	latency                 obs.Histogram
	missSeq                 atomic.Uint64
}

// do issues one request of the mixed workload.
func (s *runState) do(rng *rand.Rand) {
	miss := s.cfg.MissEvery > 0 && rng.IntN(s.cfg.MissEvery) == 0
	batch := !miss && s.cfg.BatchEvery > 0 && rng.IntN(s.cfg.BatchEvery) == 0
	doc := s.corpus[rng.IntN(len(s.corpus))]
	streamed := rng.IntN(2) == 0

	var (
		resp *http.Response
		err  error
	)
	t0 := time.Now()
	switch {
	case batch:
		// One fused request answers the whole batchSpanners set with a
		// single document pass.
		body, _ := json.Marshal(map[string]any{"spanners": batchSpanners, "doc": doc})
		resp, err = s.client.Post(s.cfg.Target+"/v1/extract-batch", "application/json", bytes.NewReader(body))
	case miss:
		// A unique sequential plan: pays compilation, not evaluation.
		body, _ := json.Marshal(map[string]string{
			"spanner": missSpanner(s.missSeq.Add(1)), "doc": s.corpus[0],
		})
		resp, err = s.client.Post(s.cfg.Target+"/v1/extract", "application/json", bytes.NewReader(body))
	case streamed:
		// Raw body with formulas in the query: the daemon's streaming
		// ingest path (the hot plan's splitter is proven local).
		u := s.cfg.Target + "/v1/extract?spanner=" + url.QueryEscape(hotSpanner) +
			"&splitter=" + url.QueryEscape(hotSplitter)
		resp, err = s.client.Post(u, "application/octet-stream", strings.NewReader(doc))
	default:
		body, _ := json.Marshal(map[string]string{
			"spanner": hotSpanner, "splitter": hotSplitter, "doc": doc,
		})
		resp, err = s.client.Post(s.cfg.Target+"/v1/extract", "application/json", bytes.NewReader(body))
	}
	s.latency.RecordDuration(time.Since(t0))
	s.requests.Inc()
	if err != nil {
		s.errors.Inc()
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.errors.Inc()
		return
	}
	if !miss {
		s.bytes.Add(uint64(len(doc)))
	}
}

// Run drives cfg.Conns closed-loop connections for cfg.Duration and
// returns the aggregated measurement.
func Run(cfg Config) Result {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.MissEvery == 0 {
		cfg.MissEvery = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x5eed
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.Conns}}
	}

	st := &runState{cfg: cfg, client: client, corpus: docs()}
	var wg sync.WaitGroup
	t0 := time.Now()
	deadline := t0.Add(cfg.Duration)
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(id)))
			for time.Now().Before(deadline) {
				st.do(rng)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0).Seconds()

	s := st.latency.Snapshot()
	const msPerNS = 1e-6
	res := Result{
		Connections: cfg.Conns,
		Requests:    st.requests.Load(),
		Errors:      st.errors.Load(),
		Seconds:     elapsed,
		P50MS:       s.Quantile(0.50) * msPerNS,
		P90MS:       s.Quantile(0.90) * msPerNS,
		P99MS:       s.Quantile(0.99) * msPerNS,
	}
	if elapsed > 0 {
		res.ReqPerS = float64(res.Requests) / elapsed
		res.MBPerS = float64(st.bytes.Load()) / 1e6 / elapsed
	}
	return res
}

// RunSweep runs one measurement per connection count and packages the
// CONCURRENCY snapshot.
func RunSweep(cfg Config, conns []int) Snapshot {
	snap := Snapshot{
		Experiment: "CONCURRENCY",
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Target:     cfg.Target,
		Results:    make([]Result, 0, len(conns)),
	}
	for _, c := range conns {
		run := cfg
		run.Conns = c
		snap.Results = append(snap.Results, Run(run))
	}
	return snap
}
