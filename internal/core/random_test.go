package core

import (
	"math/rand"
	"testing"

	"repro/internal/regexformula"
)

// randomUnaryFormula generates a random formula with exactly one capture
// of the given name, suitable as a spanner or splitter. Depth-bounded so
// compiled automata stay small.
func randomUnaryFormula(rng *rand.Rand, varName string, depth int) string {
	var piece func(d int, allowVar bool) string
	piece = func(d int, allowVar bool) string {
		if d == 0 {
			return string(rune('a' + rng.Intn(2)))
		}
		switch rng.Intn(6) {
		case 0:
			return piece(d-1, allowVar) + piece(d-1, false)
		case 1:
			return piece(d-1, false) + piece(d-1, allowVar)
		case 2:
			return "(" + piece(d-1, false) + ")*"
		case 3:
			return "(" + piece(d-1, false) + "|" + piece(d-1, false) + ")"
		case 4:
			if allowVar {
				return "(" + varName + "{" + piece(d-1, false) + "})"
			}
			return piece(d-1, false)
		default:
			return string(rune('a' + rng.Intn(2)))
		}
	}
	inner := piece(depth, false)
	// Wrap so the formula always has exactly one capture and a context.
	ctx := []string{".*", "a*", "(a|b)*", ""}
	return ctx[rng.Intn(len(ctx))] + "(" + varName + "{" + inner + "})" + ctx[rng.Intn(len(ctx))]
}

// TestRandomSplitCorrectnessDifferential cross-validates the general
// split-correctness decider against brute-force enumeration, and the
// polynomial decider against the general one whenever its preconditions
// hold, on randomly generated (P, P_S, S) triples.
func TestRandomSplitCorrectnessDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	checked, polyChecked := 0, 0
	for i := 0; i < 120; i++ {
		pSrc := randomUnaryFormula(rng, "y", 2)
		psSrc := randomUnaryFormula(rng, "y", 2)
		sSrc := randomUnaryFormula(rng, "x", 2)
		p, err := regexformula.Compile(pSrc)
		if err != nil || p.Arity() != 1 {
			continue
		}
		ps, err := regexformula.Compile(psSrc)
		if err != nil || ps.Arity() != 1 {
			continue
		}
		sAuto, err := regexformula.Compile(sSrc)
		if err != nil || sAuto.Arity() != 1 {
			continue
		}
		s, err := NewSplitter(sAuto)
		if err != nil {
			continue
		}
		want := splitCorrectBrute(p, ps, s, "ab", 5)
		got, err := SplitCorrect(p, ps, s, 0)
		if err != nil {
			t.Fatalf("instance %d (%s, %s, %s): %v", i, pSrc, psSrc, sSrc, err)
		}
		// Brute force over length ≤ 5 can miss longer counterexamples, so
		// got=false/want=true is possible; got=true/want=false is a bug.
		if got && !want {
			t.Fatalf("instance %d: SplitCorrect says true, brute force found a counterexample\nP=%s\nPS=%s\nS=%s", i, pSrc, psSrc, sSrc)
		}
		if got != want {
			// Find the counterexample beyond the brute-force horizon to
			// confirm the decider.
			ok, witness, err := SplitCorrectWitness(p, ps, s, 0)
			if err != nil || ok {
				t.Fatalf("instance %d: no witness for claimed violation", i)
			}
			if p.Eval(witness).Equal(ComposeBrute(ps, s, witness)) {
				t.Fatalf("instance %d: witness %q does not separate", i, witness)
			}
		}
		checked++
		// Polynomial route, when applicable.
		pd, err1 := p.Determinize(0)
		psd, err2 := ps.Determinize(0)
		sd, err3 := sAuto.Determinize(0)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		sDet, err := NewSplitter(sd)
		if err != nil || !sDet.IsDisjoint() {
			continue
		}
		gotPoly, err := SplitCorrectPoly(pd, psd, sDet)
		if err != nil {
			t.Fatalf("instance %d: poly: %v", i, err)
		}
		if gotPoly != got {
			t.Fatalf("instance %d: poly=%v general=%v\nP=%s\nPS=%s\nS=%s", i, gotPoly, got, pSrc, psSrc, sSrc)
		}
		polyChecked++
	}
	if checked < 60 {
		t.Fatalf("too few random instances checked: %d", checked)
	}
	if polyChecked < 10 {
		t.Fatalf("too few polynomial instances checked: %d", polyChecked)
	}
}

// TestRandomCoverDifferential cross-validates the cover condition
// deciders on random instances.
func TestRandomCoverDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	checked := 0
	for i := 0; i < 120; i++ {
		pSrc := randomUnaryFormula(rng, "y", 2)
		sSrc := randomUnaryFormula(rng, "x", 2)
		p, err := regexformula.Compile(pSrc)
		if err != nil || p.Arity() != 1 {
			continue
		}
		sAuto, err := regexformula.Compile(sSrc)
		if err != nil || sAuto.Arity() != 1 {
			continue
		}
		s, err := NewSplitter(sAuto)
		if err != nil {
			continue
		}
		want := coverBrute(p, s, "ab", 5)
		got, err := CoverCondition(p, s, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got && !want {
			t.Fatalf("instance %d: CoverCondition true but brute force found uncovered tuple\nP=%s\nS=%s", i, pSrc, sSrc)
		}
		pd, err1 := p.Determinize(0)
		sd, err2 := sAuto.Determinize(0)
		if err1 == nil && err2 == nil {
			if sDet := MustSplitter(sd); sDet.IsDisjoint() {
				gotPoly, err := CoverConditionPoly(pd, sDet)
				if err != nil {
					t.Fatal(err)
				}
				if gotPoly != got {
					t.Fatalf("instance %d: cover poly=%v general=%v\nP=%s\nS=%s", i, gotPoly, got, pSrc, sSrc)
				}
			}
		}
		checked++
	}
	if checked < 60 {
		t.Fatalf("too few random instances checked: %d", checked)
	}
}

// TestRandomComposeDifferential cross-validates the Lemma C.2 composition
// construction against its definition on random instances.
func TestRandomComposeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(9000))
	checked := 0
	for i := 0; i < 80; i++ {
		psSrc := randomUnaryFormula(rng, "y", 2)
		sSrc := randomUnaryFormula(rng, "x", 2)
		ps, err := regexformula.Compile(psSrc)
		if err != nil || ps.Arity() != 1 {
			continue
		}
		sAuto, err := regexformula.Compile(sSrc)
		if err != nil || sAuto.Arity() != 1 {
			continue
		}
		s, err := NewSplitter(sAuto)
		if err != nil {
			continue
		}
		comp := Compose(ps, s)
		if err := comp.Validate(); err != nil {
			t.Fatalf("instance %d: invalid composition: %v", i, err)
		}
		for _, d := range docs("ab", 4) {
			if !comp.Eval(d).Equal(ComposeBrute(ps, s, d)) {
				t.Fatalf("instance %d: composition differs on %q\nPS=%s\nS=%s", i, d, psSrc, sSrc)
			}
		}
		checked++
	}
	if checked < 40 {
		t.Fatalf("too few random instances checked: %d", checked)
	}
}

// TestRandomCanonicalLemma512 verifies the Lemma 5.12 equivalence on
// random disjoint instances: P splittable (via brute-force search over
// the canonical witness) iff P = P_S^can ∘ S.
func TestRandomCanonicalLemma512(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	checked := 0
	for i := 0; i < 100; i++ {
		pSrc := randomUnaryFormula(rng, "y", 2)
		sSrc := randomUnaryFormula(rng, "x", 2)
		p, err := regexformula.Compile(pSrc)
		if err != nil || p.Arity() != 1 {
			continue
		}
		sAuto, err := regexformula.Compile(sSrc)
		if err != nil || sAuto.Arity() != 1 {
			continue
		}
		s, err := NewSplitter(sAuto)
		if err != nil || !s.IsDisjoint() {
			continue
		}
		can := Canonical(p, s)
		if err := can.Validate(); err != nil {
			t.Fatalf("instance %d: invalid canonical: %v", i, err)
		}
		viaCanonical, err := SplitCorrect(p, can, s, 0)
		if err != nil {
			t.Fatal(err)
		}
		splittable, _, err := Splittable(p, s, 0)
		if err != nil {
			t.Fatal(err)
		}
		if viaCanonical != splittable {
			t.Fatalf("instance %d: Lemma 5.12 violated\nP=%s\nS=%s", i, pSrc, sSrc)
		}
		// When splittable, the canonical witness must verify by brute force.
		if splittable && !splitCorrectBrute(p, can, s, "ab", 4) {
			t.Fatalf("instance %d: canonical witness fails brute force", i)
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("too few random instances checked: %d", checked)
	}
}
