package alphabet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassBasics(t *testing.T) {
	c := Of('a', 'b', 'z')
	if !c.Has('a') || !c.Has('z') || c.Has('c') {
		t.Fatal("membership broken")
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	c.Remove('b')
	if c.Has('b') || c.Len() != 2 {
		t.Fatal("Remove broken")
	}
	if Any.Len() != 256 || Empty.Len() != 0 {
		t.Fatal("Any/Empty wrong")
	}
}

func TestRangeAndString(t *testing.T) {
	r := Range('a', 'e')
	if r.Len() != 5 || !r.Has('c') || r.Has('f') {
		t.Fatal("Range broken")
	}
	if got := OfString("hello"); got.Len() != 4 { // h e l o
		t.Fatalf("OfString dedupe broken: %d", got.Len())
	}
}

func TestSetAlgebra(t *testing.T) {
	f := func(x, y, z uint8) bool {
		a := Of(x, y)
		b := Of(y, z)
		u := a.Union(b)
		i := a.Intersect(b)
		m := a.Minus(b)
		if !u.Has(x) || !u.Has(y) || !u.Has(z) {
			return false
		}
		if !i.Has(y) {
			return false
		}
		if m.Has(y) && y != x {
			return false
		}
		if a.Complement().Intersects(a) {
			return false
		}
		return a.Union(a.Complement()) == Any
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContainsClassAndIntersects(t *testing.T) {
	a := Range('a', 'z')
	b := Range('c', 'f')
	if !a.ContainsClass(b) || b.ContainsClass(a) {
		t.Fatal("ContainsClass broken")
	}
	if !a.Intersects(b) || a.Intersects(Range('0', '9')) {
		t.Fatal("Intersects broken")
	}
}

func TestMinAndBytes(t *testing.T) {
	c := Of('q', 'b', 0xff)
	if m, ok := c.Min(); !ok || m != 'b' {
		t.Fatalf("Min = %v", m)
	}
	bs := c.Bytes()
	if len(bs) != 3 || bs[0] != 'b' || bs[2] != 0xff {
		t.Fatalf("Bytes = %v", bs)
	}
	if _, ok := Empty.Min(); ok {
		t.Fatal("Min of empty class must not be ok")
	}
}

// TestAtoms verifies the defining properties of the atom partition: atoms
// are disjoint, cover exactly the union of the inputs, and every input
// class is a disjoint union of atoms.
func TestAtoms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		var classes []Class
		n := rng.Intn(6)
		for i := 0; i < n; i++ {
			lo := byte(rng.Intn(200))
			hi := lo + byte(rng.Intn(40))
			classes = append(classes, Range(lo, hi))
		}
		atoms := Atoms(classes)
		var union, cover Class
		for _, c := range classes {
			union = union.Union(c)
		}
		for i, a := range atoms {
			if a.IsEmpty() {
				t.Fatal("empty atom")
			}
			for j := i + 1; j < len(atoms); j++ {
				if a.Intersects(atoms[j]) {
					t.Fatal("atoms not disjoint")
				}
			}
			cover = cover.Union(a)
		}
		if cover != union {
			t.Fatal("atoms must cover exactly the union of classes")
		}
		for _, c := range classes {
			var rebuilt Class
			for _, a := range atoms {
				if c.Intersects(a) {
					if !c.ContainsClass(a) {
						t.Fatal("atom straddles a class boundary")
					}
					rebuilt = rebuilt.Union(a)
				}
			}
			if rebuilt != c {
				t.Fatal("class is not a union of atoms")
			}
		}
	}
}

func TestAtomsEmptyAndReps(t *testing.T) {
	if Atoms(nil) != nil {
		t.Fatal("no classes should give no atoms")
	}
	atoms := Atoms([]Class{Range('a', 'd'), Range('c', 'f')})
	if len(atoms) != 3 {
		t.Fatalf("expected 3 atoms, got %d", len(atoms))
	}
	reps := Reps(atoms)
	if len(reps) != 3 || reps[0] != 'a' || reps[1] != 'c' || reps[2] != 'e' {
		t.Fatalf("Reps = %v", reps)
	}
}

func TestClassStringStable(t *testing.T) {
	got := Range('a', 'c').String()
	if got != "[a-c]" {
		t.Fatalf("String = %q", got)
	}
	if Any.String() != "Σ" || Empty.String() != "∅" {
		t.Fatal("special class rendering broken")
	}
}
