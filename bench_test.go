package spanners

// Benchmarks, one per experiment of EXPERIMENTS.md. The E-series
// reproduces the split-then-distribute speedups of the paper's Section 1
// (compare the Sequential and Split sub-benchmarks of each experiment);
// the T-series measures the decision procedures. Corpus sizes are kept
// moderate so `go test -bench=.` finishes in minutes; cmd/splitbench
// runs the same experiments at larger scale.

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/library"
	"repro/internal/parallel"
	"repro/internal/regexformula"
	"repro/internal/vsa"
)

const (
	benchWorkers = 5       // the paper uses 5 cores / a 5-node cluster
	benchBytes   = 1 << 17 // corpus size for the E1-E3 series
	benchDocs    = 400     // collection size for E4-E5
)

func benchNgram(b *testing.B, seedDoc string, n int) {
	sentences := library.Sentences()
	ngram := library.NGrams(n)
	composed := core.Compose(ngram.Automaton(), sentences)
	segs := parallel.SegmentsOf(seedDoc, library.FastSentenceSplit(seedDoc))
	b.Run("Sequential", func(b *testing.B) {
		b.SetBytes(int64(len(seedDoc)))
		for i := 0; i < b.N; i++ {
			parallel.Sequential(composed, seedDoc)
		}
	})
	b.Run("Split", func(b *testing.B) {
		b.SetBytes(int64(len(seedDoc)))
		for i := 0; i < b.N; i++ {
			parallel.SplitEval(ngram.Automaton(), segs, benchWorkers)
		}
	})
}

// BenchmarkE1WikipediaBigrams is experiment E1 (paper: 2.10x on 5 cores).
func BenchmarkE1WikipediaBigrams(b *testing.B) {
	benchNgram(b, corpus.Wikipedia(1, benchBytes), 2)
}

// BenchmarkE2WikipediaTrigrams is experiment E2 (paper: 3.11x).
func BenchmarkE2WikipediaTrigrams(b *testing.B) {
	benchNgram(b, corpus.Wikipedia(1, benchBytes), 3)
}

// BenchmarkE3PubMedBigrams is experiment E3 (paper: 1.90x).
func BenchmarkE3PubMedBigrams(b *testing.B) {
	benchNgram(b, corpus.PubMed(1, benchBytes), 2)
}

// BenchmarkE4ReutersFinance is experiment E4 (paper: 1.99x on a 5-node
// cluster): whole-article tasks versus sentence tasks on the same pool.
func BenchmarkE4ReutersFinance(b *testing.B) {
	docs := corpus.Reuters(1, benchDocs)
	p := library.FinanceEvents()
	b.Run("WholeDocs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parallel.CollectionEval(p, docs, benchWorkers)
		}
	})
	b.Run("SplitTasks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parallel.CollectionEvalSplit(p, docs, library.FastSentenceSplit, benchWorkers)
		}
	})
}

// BenchmarkE5AmazonSentiment is experiment E5 (paper: 4.16x).
func BenchmarkE5AmazonSentiment(b *testing.B) {
	docs := corpus.Reviews(1, benchDocs*4)
	p := library.NegativeSentiment()
	b.Run("WholeDocs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parallel.CollectionEval(p, docs, benchWorkers)
		}
	})
	b.Run("SplitTasks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parallel.CollectionEvalSplit(p, docs, library.FastSentenceSplit, benchWorkers)
		}
	})
}

// BenchmarkT1Containment measures general (Theorem 4.1) versus
// deterministic (Theorem 4.3) containment.
func BenchmarkT1Containment(b *testing.B) {
	pat := strings.Repeat("a", 6)
	a := regexformula.MustCompile(".*y{" + pat + "}.*")
	nd := regexformula.MustCompile(".*y{" + pat + "|" + pat + "b}.*")
	det, err := nd.Determinize(0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("General", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vsa.Contained(a, nd, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Deterministic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vsa.Contained(a, det, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkT3Disjointness measures Proposition 5.5 on library splitters.
func BenchmarkT3Disjointness(b *testing.B) {
	for _, c := range []struct {
		name string
		s    *core.Splitter
	}{
		{"Sentences", library.Sentences()},
		{"Trigrams", library.NGrams(3)},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.s.IsDisjoint()
			}
		})
	}
}

func benchSplitCorrectInstance(b *testing.B) (p, ps *vsa.Automaton, s *core.Splitter) {
	b.Helper()
	pat := strings.Repeat("a", 4)
	var err error
	p, err = regexformula.MustCompile("(y{" + pat + "})(b[ab]*)?|[ab]*b(y{" + pat + "})(b[ab]*)?").Determinize(0)
	if err != nil {
		b.Fatal(err)
	}
	ps = p
	sAuto, err := regexformula.MustCompile("(x{[^b]*})(b[^b]*)*|[^b]*(b[^b]*)*b(x{[^b]*})(b[^b]*)*").Determinize(0)
	if err != nil {
		b.Fatal(err)
	}
	return p, ps, core.MustSplitter(sAuto)
}

// BenchmarkT4CoverCondition measures Lemma 5.4 versus Lemma 5.6.
func BenchmarkT4CoverCondition(b *testing.B) {
	p, _, s := benchSplitCorrectInstance(b)
	b.Run("General", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.CoverCondition(p, s, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Polynomial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.CoverConditionPoly(p, s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkT5SplitCorrectness measures Theorem 5.1 versus Theorem 5.7.
func BenchmarkT5SplitCorrectness(b *testing.B) {
	p, ps, s := benchSplitCorrectInstance(b)
	b.Run("General", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SplitCorrect(p, ps, s, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Polynomial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SplitCorrectPoly(p, ps, s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkT6Canonical measures the Proposition 5.9 construction.
func BenchmarkT6Canonical(b *testing.B) {
	p, _, s := benchSplitCorrectInstance(b)
	for i := 0; i < b.N; i++ {
		core.Canonical(p, s)
	}
}

// BenchmarkT7Splittability measures Theorem 5.15 end to end.
func BenchmarkT7Splittability(b *testing.B) {
	p := regexformula.MustCompile(".*y{aaa}.*")
	s := core.MustSplitter(regexformula.MustCompile("(x{[^b]*})(b[^b]*)*|[^b]*(b[^b]*)*b(x{[^b]*})(b[^b]*)*"))
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Splittable(p, s, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalThroughput measures the raw evaluator on corpus text, the
// substrate cost underlying the E-series.
func BenchmarkEvalThroughput(b *testing.B) {
	doc := corpus.Wikipedia(1, 1<<16)
	p := library.NegativeSentiment()
	b.SetBytes(int64(len(doc)))
	for i := 0; i < b.N; i++ {
		p.Eval(doc)
	}
}

// BenchmarkEvalCore is the before/after comparison for the compiled
// evaluation core: the lazy-DFA, byte-class-compressed Eval/EvalBool
// against the retained reference NFA simulations (EvalReference /
// EvalBoolReference — the implementation before this optimization), plus
// split evaluation of the same spanner over a multi-MB corpus. The
// Reference sub-benchmarks are the "before" numbers. Eval runs over
// three match densities — the dense review corpus, a sparse corpus with
// a handful of matches per MB, and a non-matching corpus — because the
// match-window localizer's whole point is that extraction cost should
// track match density, not document length.
func BenchmarkEvalCore(b *testing.B) {
	// Review text, so the extractor genuinely matches: the assignment
	// machinery runs, not just the DFA prescan rejecting everything.
	doc := strings.Join(corpus.Reviews(1, 1<<13), "\n") // several MiB
	p := library.NegativeSentiment()
	p.Prepare()
	segs := parallel.SegmentsOf(doc, library.FastSentenceSplit(doc))
	sparse := corpus.SparseSentiment(1, len(doc), 64<<10)
	nonMatching := corpus.Wikipedia(1, len(doc))
	b.Logf("dense corpus: %d bytes, %d sentence segments, %d tuples",
		len(doc), len(segs), p.Eval(doc).Len())
	b.Logf("sparse corpus: %d bytes, %d tuples; non-matching corpus: %d bytes, %d tuples",
		len(sparse), p.Eval(sparse).Len(), len(nonMatching), p.Eval(nonMatching).Len())
	evalBench := func(doc string) func(*testing.B) {
		return func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				p.Eval(doc)
			}
		}
	}
	b.Run("EvalBool", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			p.EvalBool(doc)
		}
	})
	b.Run("EvalBoolReference", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			p.EvalBoolReference(doc)
		}
	})
	b.Run("Eval", evalBench(doc))
	b.Run("EvalSparse", evalBench(sparse))
	b.Run("EvalNonMatching", evalBench(nonMatching))
	b.Run("EvalReference", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			p.EvalReference(doc)
		}
	})
	b.Run("SplitEval", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			parallel.SplitEval(p, segs, benchWorkers)
		}
	})
}

// Formula-level counterparts of the library extractors, used by the
// engine benchmarks (the engine's plan cache is keyed by formula text).
const (
	benchSentimentFormula = "(.*[ .!?\\n])?bad (y{[a-z]+})(([^a-z].*)?|)"
	benchSentenceFormula  = "(x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*|" +
		"[^.!?\\n]*([.!?\\n][^.!?\\n]*)*[.!?\\n](x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*"
)

// BenchmarkEnginePlanCache measures what the plan cache amortizes: Cold
// pays formula compilation plus the self-splittability and disjointness
// decision procedures on every iteration; Hit serves the memoized plan.
// The gap is the per-request saving of a long-lived engine over the
// one-shot façade calls.
func BenchmarkEnginePlanCache(b *testing.B) {
	req := ExtractRequest{Spanner: benchSentimentFormula, Splitter: benchSentenceFormula}
	ctx := context.Background()
	b.Run("Cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := NewEngine(EngineConfig{})
			if _, _, err := e.Plan(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Hit", func(b *testing.B) {
		e := NewEngine(EngineConfig{})
		plan, _, err := e.Plan(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Strategy.String() != "split-parallel" {
			b.Fatalf("expected a split plan, got %v", plan.Strategy)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, hit, err := e.Plan(ctx, req); err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
		}
	})
}

// BenchmarkEngineStreaming compares streamed chunked ingestion (the
// engine segments the document incrementally and overlaps evaluation
// with reading) against one-shot ParallelEval on the same multi-MB
// document, on the same worker count.
func BenchmarkEngineStreaming(b *testing.B) {
	doc := corpus.Reviews(1, 1<<13) // ~ several MB of review text
	joined := strings.Join(doc, "\n")
	ctx := context.Background()
	b.Logf("document size: %d bytes", len(joined))
	b.Run("OneShotParallelEval", func(b *testing.B) {
		p := MustCompile(benchSentimentFormula)
		s := MustCompileSplitter(benchSentenceFormula)
		b.SetBytes(int64(len(joined)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ParallelEval(p, s, joined, benchWorkers)
		}
	})
	b.Run("Streamed", func(b *testing.B) {
		e := NewEngine(EngineConfig{Workers: benchWorkers})
		plan, _, err := e.Plan(ctx, ExtractRequest{Spanner: benchSentimentFormula, Splitter: benchSentenceFormula})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(joined)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.ExtractReader(ctx, plan, strings.NewReader(joined)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
