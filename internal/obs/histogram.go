package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of histogram buckets: one per possible
// bits.Len64 of an observation. Bucket 0 holds the value 0; bucket i
// (i ≥ 1) holds values v with 2^(i-1) ≤ v < 2^i.
const NumBuckets = 65

// Histogram is a lock-free log₂-bucketed histogram of non-negative
// integer observations (durations in nanoseconds, sizes in bytes). The
// zero value is ready to use. Record is a few uncontended atomic adds —
// no locks, no allocation — so it can sit inside the evaluation
// pipeline without showing up in benchmark numbers. Log₂ bucketing
// trades resolution for that speed: any quantile estimate is exact to
// within one bucket, i.e. within a factor of two of the true value,
// which is the granularity latency work actually happens at (a p99
// moving from 1 ms to 4 ms crosses two buckets; 1.0 ms to 1.3 ms is
// noise this histogram deliberately cannot see).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v uint64) int { return bits.Len64(v) }

// BucketUpper returns the largest value bucket i can hold (its
// inclusive upper bound): 0 for bucket 0, 2^i − 1 otherwise.
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// BucketLower returns the smallest value bucket i can hold.
func BucketLower(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << uint(i-1)
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// RecordDuration records a wall-time duration in nanoseconds, clamping
// negative durations (clock steps) to zero.
func (h *Histogram) RecordDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Snapshot copies the histogram's state. Each field is read atomically;
// the histogram is monotonic, so a concurrent Record can at worst leave
// the copy one observation apart between count and a bucket — Quantile
// clamps rather than misbehaving on that transient.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram: a value
// type that can be merged, quantiled and serialized without touching
// the live (still-recording) histogram.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [NumBuckets]uint64
}

// Merge adds o into s. Merging two snapshots is exactly equivalent to
// having recorded the union of their observations into one histogram
// (buckets, count and sum are all sums) — the property that lets
// per-worker histograms aggregate into one view.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the exact mean of the recorded observations (sum and
// count are tracked exactly; only the distribution is bucketed).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the recorded
// observations. The estimate interpolates linearly inside the bucket
// containing the rank, so it is always within that bucket's bounds —
// within one log₂ bucket of the exact order statistic. Returns 0 for an
// empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank in [1, Count]: the index of the order statistic we estimate.
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		if b == 0 {
			continue
		}
		cum += b
		if cum >= rank {
			lo, hi := float64(BucketLower(i)), float64(BucketUpper(i))
			if b == 1 || hi <= lo {
				return hi
			}
			// Position of the rank inside this bucket, in (0, 1].
			frac := float64(rank-(cum-b)) / float64(b)
			return lo + frac*(hi-lo)
		}
	}
	// count and buckets can transiently disagree by in-flight records;
	// clamp to the largest populated bucket.
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] > 0 {
			return float64(BucketUpper(i))
		}
	}
	return 0
}
