package span

import "testing"

func TestTupleArenaCarving(t *testing.T) {
	var a TupleArena
	// Carve enough tuples to cross several slab boundaries and check
	// zeroing, isolation and capacity clamping throughout.
	tuples := make([]Tuple, 0, 3000)
	for i := 0; i < 3000; i++ {
		tu := a.Tuple(3)
		if len(tu) != 3 || cap(tu) != 3 {
			t.Fatalf("tuple %d: len=%d cap=%d, want 3/3", i, len(tu), cap(tu))
		}
		for j, s := range tu {
			if s != Invalid {
				t.Fatalf("tuple %d slot %d not zeroed: %v", i, j, s)
			}
		}
		for j := range tu {
			tu[j] = New(i+1, i+j+1)
		}
		tuples = append(tuples, tu)
	}
	// Writes through one tuple must never be visible through another.
	for i, tu := range tuples {
		for j, s := range tu {
			if want := New(i+1, i+j+1); s != want {
				t.Fatalf("tuple %d slot %d clobbered: %v, want %v", i, j, s, want)
			}
		}
	}
	// Appending to a carved tuple must reallocate, not overwrite the
	// arena neighbor carved right after it.
	first := a.Tuple(2)
	second := a.Tuple(2)
	_ = append(first, New(9, 9))
	if second[0] != Invalid {
		t.Fatalf("append through a carved tuple clobbered its neighbor: %v", second[0])
	}
}

func TestTupleArenaOversizedAndEmpty(t *testing.T) {
	var a TupleArena
	big := a.Tuple(2 * tupleArenaSlab)
	if len(big) != 2*tupleArenaSlab {
		t.Fatalf("oversized tuple len=%d", len(big))
	}
	empty := a.Tuple(0)
	if len(empty) != 0 {
		t.Fatalf("empty tuple len=%d", len(empty))
	}
}
