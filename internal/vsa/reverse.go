package vsa

// This file builds the backward start-narrowing program of the match-
// window localizer (window.go): the automaton's core — everything between
// the first variable operation of a run and its emission — is stripped of
// operations, reversed with automata.Reverse over the byte-class alphabet
// of the compiled evaluation program, and compiled into the same
// per-(state, class) transition lists plus lazily determinized DFA shape
// as the forward machinery in dfa.go, so both directions share one
// construction idiom and one locking discipline.

import (
	"sync"

	"repro/internal/automata"
)

// revProg is the compiled backward program. succ holds the reversed core
// adjacency: succ[v*nclasses+c] lists the states u with a kept forward
// edge u --c--> v, so following it walks the document right to left.
//
// Kept edges exclude two loop families that would otherwise keep the
// backward frontier alive across the whole document:
//
//   - post-emit edges (forward source is an emit state): evaluation
//     emits and drops a run when it enters an emit state, so nothing
//     after that boundary belongs to the match;
//   - prefix edges (operation-free edges between status-0 states): they
//     precede the match core, whose discovery is the whole point.
//
// The boundary between prefix and core — an edge with operations leaving
// a status-0 state — is recorded as a startPred flag on the target
// instead of a frontier member: reaching the target backwards over that
// class means a match core can begin at the boundary just crossed.
type revProg struct {
	nstates   int
	nclasses  int
	succ      [][]int32
	startPred []bool
	// endSeed holds the emit states: the backward frontier seeds at a
	// candidate match end. finSeed holds the status≠0 states with final
	// operation sets: the seeds at the document-end boundary.
	endSeed []int32
	finSeed []int32
	// finSeedHasStart reports a status-0 state with final operation sets:
	// a match core can live entirely in the final boundary's operations,
	// so the document end itself is a core start.
	finSeedHasStart bool
	dfa             *revDFA
}

type revState struct {
	set   []int32
	trans []int32
	start []bool // per class: a core start is crossed by this transition
	// injEnd/injFin cache the subset-union states produced by injecting
	// the end/finals seed into this state's subset (dfaUnknown until
	// built), so dense candidate-end runs re-enter cached DFA states.
	injEnd int32
	injFin int32
}

// revDFA is the shared backward transition cache, locked like the
// forward lazyDFA.
type revDFA struct {
	mu     sync.RWMutex
	states []revState
	index  map[string]int32
}

func buildRevProg(p *evalProg, a *Automaton, st []Status, end []bool) *revProg {
	nc, n := p.nclasses, p.nstates
	r := &revProg{
		nstates:   n,
		nclasses:  nc,
		succ:      make([][]int32, n*nc),
		startPred: make([]bool, n*nc),
	}
	// The kept forward core edges as an NFA over the byte-class alphabet;
	// automata.Reverse flips them into the backward adjacency. Starts and
	// finals document the intended reading (a core runs from the prefix
	// boundary to an emit state); only the reversed adjacency is compiled.
	fwd := automata.New(nc)
	for q := 0; q < n; q++ {
		fwd.AddState(end[q])
	}
	fwd.AddStart(a.Start)
	for q := 0; q < n; q++ {
		if end[q] {
			continue // post-emit
		}
		for c := 0; c < nc; c++ {
			for _, e := range p.succ[q*nc+c] {
				if st[q] == 0 {
					if e.ops != 0 {
						r.startPred[int(e.to)*nc+c] = true
					}
					continue // prefix edge, or core entry (flagged above)
				}
				fwd.AddEdge(q, c, int(e.to))
			}
		}
	}
	fwd.DedupeEdges()
	rev := automata.Reverse(fwd)
	for v, es := range rev.Adj {
		for _, e := range es {
			r.succ[v*nc+e.Sym] = append(r.succ[v*nc+e.Sym], int32(e.To))
		}
	}
	for q := 0; q < n; q++ {
		switch {
		case end[q]:
			r.endSeed = append(r.endSeed, int32(q))
		case p.hasFinal[q] && st[q] == 0:
			r.finSeedHasStart = true
		case p.hasFinal[q]:
			r.finSeed = append(r.finSeed, int32(q))
		}
	}
	d := &revDFA{index: map[string]int32{setKey(nil): dfaDead}}
	deadSt := revState{
		trans:  make([]int32, nc), // all-zero: loops on itself
		start:  make([]bool, nc),
		injEnd: dfaUnknown,
		injFin: dfaUnknown,
	}
	d.states = append(d.states, deadSt)
	r.dfa = d
	return r
}

// intern returns the DFA state of a sorted subset, creating it if needed.
// Callers hold the write lock. Returns dfaOverflow at the state bound.
func (r *revProg) intern(set []int32) int32 {
	d := r.dfa
	key := setKey(set)
	if to, ok := d.index[key]; ok {
		return to
	}
	if len(d.states) >= maxDFAStates {
		return dfaOverflow
	}
	st := revState{
		set:    set,
		trans:  make([]int32, r.nclasses),
		start:  make([]bool, r.nclasses),
		injEnd: dfaUnknown,
		injFin: dfaUnknown,
	}
	for c := range st.trans {
		st.trans[c] = dfaUnknown
	}
	to := int32(len(d.states))
	d.states = append(d.states, st)
	d.index[key] = to
	return to
}

// resolve computes and caches the backward transition (from, class) and
// its core-start flag under the write lock.
func (r *revProg) resolve(from int32, class uint8) int32 {
	d := r.dfa
	d.mu.Lock()
	defer d.mu.Unlock()
	if t := d.states[from].trans[class]; t != dfaUnknown {
		return t // resolved by a concurrent evaluation
	}
	var mark []bool
	var succ []int32
	hit := false
	for _, v := range d.states[from].set {
		idx := int(v)*r.nclasses + int(class)
		if r.startPred[idx] {
			hit = true
		}
		for _, u := range r.succ[idx] {
			if mark == nil {
				mark = make([]bool, r.nstates)
			}
			if !mark[u] {
				mark[u] = true
				succ = append(succ, u)
			}
		}
	}
	sortInt32s(succ)
	to := r.intern(succ)
	d.states[from].trans[class] = to
	d.states[from].start[class] = hit
	return to
}

// inject returns the DFA state for subset(from) ∪ seed — the frontier
// after a candidate end (fin: the document-end finals boundary) is merged
// into an already-walking frontier. The result is cached per state; ok is
// false on state-bound overflow.
func (r *revProg) inject(from int32, fin bool) (int32, bool) {
	d := r.dfa
	d.mu.Lock()
	defer d.mu.Unlock()
	cached := d.states[from].injEnd
	seed := r.endSeed
	if fin {
		cached = d.states[from].injFin
		seed = r.finSeed
	}
	if cached != dfaUnknown {
		return cached, cached != dfaOverflow
	}
	to := r.intern(mergeSortedInt32s(d.states[from].set, seed))
	if fin {
		d.states[from].injFin = to
	} else {
		d.states[from].injEnd = to
	}
	return to, to != dfaOverflow
}

// mergeSortedInt32s merges two sorted, duplicate-free slices into a fresh
// sorted, duplicate-free slice.
func mergeSortedInt32s(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
