package vsa

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alphabet"
)

// rawSigmaStar appends a Σ*-loop between from and to on r.
func rawSigmaStar(r *Raw, from, to int) {
	hub := r.AddState(false)
	r.AddEpsilonEdge(from, hub)
	r.AddEpsilonEdge(hub, to)
	inner := r.AddState(false)
	r.AddSymbolEdge(hub, alphabet.Any, inner)
	r.AddEpsilonEdge(inner, hub)
}

// extractorAPlus builds Σ*·x{a+}·Σ* through the Raw compiler — the
// canonical localizable shape, with the same state structure the
// regex-formula compiler produces.
func extractorAPlus() *Automaton {
	r := NewRaw("x")
	s1 := r.AddState(false)
	rawSigmaStar(r, r.Start, s1)
	o1 := r.AddState(false)
	r.AddOpEdge(s1, Open(0), o1)
	mid := r.AddState(false)
	r.AddSymbolEdge(o1, alphabet.Of('a'), mid)
	r.AddSymbolEdge(mid, alphabet.Of('a'), mid)
	c1 := r.AddState(false)
	r.AddOpEdge(mid, Close(0), c1)
	fin := r.AddState(true)
	rawSigmaStar(r, c1, fin)
	return r.Compile()
}

// extractorPrefixAnchored builds x{a}·Σ*: matches only at position 0, so
// windowed evaluation must not invent matches elsewhere.
func extractorPrefixAnchored() *Automaton {
	r := NewRaw("x")
	o1 := r.AddState(false)
	r.AddOpEdge(r.Start, Open(0), o1)
	mid := r.AddState(false)
	r.AddSymbolEdge(o1, alphabet.Of('a'), mid)
	c1 := r.AddState(false)
	r.AddOpEdge(mid, Close(0), c1)
	fin := r.AddState(true)
	rawSigmaStar(r, c1, fin)
	return r.Compile()
}

// extractorSuffixAnchored builds Σ*·x{a+} anchored at the document end:
// the close happens in the final operation set, exercising the
// finals-at-end seeding of the backward pass.
func extractorSuffixAnchored() *Automaton {
	r := NewRaw("x")
	s1 := r.AddState(false)
	rawSigmaStar(r, r.Start, s1)
	o1 := r.AddState(false)
	r.AddOpEdge(s1, Open(0), o1)
	mid := r.AddState(false)
	r.AddSymbolEdge(o1, alphabet.Of('a'), mid)
	r.AddSymbolEdge(mid, alphabet.Of('a'), mid)
	c1 := r.AddState(true)
	r.AddOpEdge(mid, Close(0), c1)
	return r.Compile()
}

// extractorZeroWidth builds Σ*·x{}·b·Σ*: an empty span opened and closed
// at the same boundary, right before a 'b'.
func extractorZeroWidth() *Automaton {
	r := NewRaw("x")
	s1 := r.AddState(false)
	rawSigmaStar(r, r.Start, s1)
	o1 := r.AddState(false)
	r.AddOpEdge(s1, Open(0), o1)
	c1 := r.AddState(false)
	r.AddOpEdge(o1, Close(0), c1)
	mid := r.AddState(false)
	r.AddSymbolEdge(c1, alphabet.Of('b'), mid)
	fin := r.AddState(true)
	rawSigmaStar(r, mid, fin)
	return r.Compile()
}

// TestLocalizerActivates pins down that the common extractor shapes
// actually take the windowed path — a silent fallback would pass every
// equivalence test while abandoning the optimization.
func TestLocalizerActivates(t *testing.T) {
	for _, c := range []struct {
		name string
		a    *Automaton
	}{
		{"sigma-star-core-sigma-star", extractorAPlus()},
		{"prefix-anchored", extractorPrefixAnchored()},
		{"suffix-anchored", extractorSuffixAnchored()},
		{"zero-width", extractorZeroWidth()},
	} {
		if loc := c.a.localizer(); !loc.ok {
			t.Errorf("%s: localizer disabled: %s", c.name, loc.reason)
		}
	}
	nullary := NewAutomaton()
	nullary.AddEdge(0, 0, alphabet.Any, 0)
	nullary.AddFinal(0, 0)
	if loc := nullary.localizer(); loc.ok {
		t.Error("nullary automaton must fall back to whole-document evaluation")
	}
}

// TestWindowedEvalMatchesReference is the table-driven equivalence test
// for the match-window localizer: matches at the document start and end,
// zero-width spans, adjacent matches whose windows merge, matches
// straddling checkpoint boundaries, and documents with no matches at all
// must agree byte-for-byte with the reference simulation.
func TestWindowedEvalMatchesReference(t *testing.T) {
	long := strings.Repeat(".", 3*checkpointStride)
	cases := []struct {
		name string
		a    *Automaton
		docs []string
	}{
		{"a-plus", extractorAPlus(), []string{
			"",
			"a",
			"aaa",
			"xxaxx",
			"axxxa",                                 // matches at both ends
			"aa.aa.aa",                              // adjacent matches, windows merge
			long + "aaa" + long,                     // isolated window mid-document
			long + "a" + long + "a" + long + "a",    // several isolated windows
			"a" + long,                              // match at position 0
			long + "a",                              // match at the last byte
			strings.Repeat("a", 2*checkpointStride), // one huge match region
			long,                                    // no match at all
		}},
		{"prefix-anchored", extractorPrefixAnchored(), []string{
			"", "a", "ab", "ba", "xa", "a" + long, long,
		}},
		{"suffix-anchored", extractorSuffixAnchored(), []string{
			"", "a", "ba", "ab", long + "aa", "aa" + long, long,
		}},
		{"zero-width", extractorZeroWidth(), []string{
			"", "b", "ab", "bb", long + "b", "b" + long, long,
		}},
	}
	for _, c := range cases {
		if err := c.a.Validate(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, doc := range c.docs {
			got, want := c.a.Eval(doc), c.a.EvalReference(doc)
			if !got.Equal(want) {
				t.Errorf("%s: Eval(%q):\nwindowed: %v\nreference: %v", c.name, doc, got, want)
			}
		}
	}
}

// TestWindowedEvalNonLocalizableFallsBack: a hand-built automaton
// without consistent statuses (non-functional) must evaluate through the
// whole-document fallback and still agree with the reference simulation.
func TestWindowedEvalNonLocalizableFallsBack(t *testing.T) {
	a := NewAutomaton("x")
	mid := a.AddState()
	// Two paths assign conflicting statuses to mid: one opens x, one
	// does not.
	a.AddEdge(0, Open(0), alphabet.Of('a'), mid)
	a.AddEdge(0, 0, alphabet.Of('b'), mid)
	a.AddEdge(mid, Close(0), alphabet.Of('c'), mid)
	a.AddFinal(mid, 0)
	if loc := a.localizer(); loc.ok {
		t.Fatal("status-less automaton must disable localization")
	}
	for _, doc := range []string{"", "ac", "bc", "acc", "b"} {
		if got, want := a.Eval(doc), a.EvalReference(doc); !got.Equal(want) {
			t.Errorf("Eval(%q): fallback %v != reference %v", doc, got, want)
		}
	}
}

// TestWindowedEvalConcurrent hammers one shared automaton from many
// goroutines so the race detector sees the scan and reverse DFA caches
// being built and read concurrently.
func TestWindowedEvalConcurrent(t *testing.T) {
	a := extractorAPlus()
	long := strings.Repeat(".", 2*checkpointStride)
	docs := []string{"", "a", long + "aaa" + long, "aa.aa", long}
	want := make([]int, len(docs))
	for i, d := range docs {
		want[i] = a.EvalReference(d).Len()
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 40; i++ {
				d := (g + i) % len(docs)
				if got := a.Eval(docs[d]).Len(); got != want[d] {
					t.Errorf("Eval(%q) = %d tuples, want %d", docs[d], got, want[d])
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

// FuzzEvalWindowVsReference fuzzes the windowed evaluator against the
// retained reference simulation on random functional automata (the
// generator of dfa_test.go) and fuzz-provided documents: window
// straddling, zero-width spans and byte classes outside the automaton's
// alphabet all fall out of the corpus.
func FuzzEvalWindowVsReference(f *testing.F) {
	f.Add(int64(1), "abab")
	f.Add(int64(2), "")
	f.Add(int64(3), strings.Repeat("c", 2*checkpointStride)+"ab")
	f.Add(int64(7), "aa.bb.aa")
	f.Fuzz(func(t *testing.T, seed int64, doc string) {
		if len(doc) > 1<<12 {
			doc = doc[:1<<12]
		}
		rng := rand.New(rand.NewSource(seed))
		a := randomAutomaton(rng)
		if err := a.Validate(); err != nil {
			t.Skip()
		}
		got, want := a.Eval(doc), a.EvalReference(doc)
		if !got.Equal(want) {
			t.Fatalf("windowed Eval disagrees on %q:\nwindowed: %v\nreference: %v\n%s", doc, got, want, a)
		}
	})
}
