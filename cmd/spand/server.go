package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/span"
)

// maxJSONBody bounds JSON request bodies. Streamed documents (raw or
// multipart bodies) may be arbitrarily long on the incremental path;
// whatever the engine must hold in memory (whole buffered documents,
// the streaming carry-over) is bounded by its MaxDocBuffer budget and
// rejected with 413 beyond it.
const maxJSONBody = 64 << 20

// extractRequest is the JSON request body of /v1/extract and /v1/check.
type extractRequest struct {
	Spanner      string `json:"spanner"`
	SplitSpanner string `json:"split_spanner,omitempty"`
	Splitter     string `json:"splitter,omitempty"`
	Doc          string `json:"doc,omitempty"`
}

func (r extractRequest) engineRequest() engine.Request {
	return engine.Request{Spanner: r.Spanner, SplitSpanner: r.SplitSpanner, Splitter: r.Splitter}
}

// jsonSpan renders a span as [start, end] in the paper's 1-based
// convention.
type jsonSpan [2]int

// planResponse is the shared verdict section of responses.
type planResponse struct {
	Strategy      string            `json:"strategy"`
	Verdicts      core.PlanVerdicts `json:"verdicts"`
	CacheHit      bool              `json:"cache_hit"`
	PlanCompileMS float64           `json:"plan_compile_ms"`
}

type extractResponse struct {
	planResponse
	// Ingest reports how the document was consumed: "inline" (came with
	// the JSON request), "streamed" (segmented incrementally while
	// uploading) or "buffered" (read whole, then evaluated).
	Ingest string       `json:"ingest"`
	Vars   []string     `json:"vars"`
	Count  int          `json:"count"`
	Tuples [][]jsonSpan `json:"tuples"`
}

func planSection(plan *engine.Plan, hit bool) planResponse {
	return planResponse{
		Strategy:      plan.Strategy.String(),
		Verdicts:      plan.Verdicts,
		CacheHit:      hit,
		PlanCompileMS: float64(plan.CompileTime.Microseconds()) / 1000,
	}
}

func tuplesJSON(rel *span.Relation) [][]jsonSpan {
	out := make([][]jsonSpan, 0, rel.Len())
	for _, t := range rel.Tuples {
		row := make([]jsonSpan, len(t))
		for i, s := range t {
			row[i] = jsonSpan{s.Start, s.End}
		}
		out = append(out, row)
	}
	return out
}

type server struct {
	eng *engine.Engine
	m   *httpMetrics
}

// newServer wires the daemon's routes onto a fresh mux. HTTP-level
// metrics live in the engine's registry, so GET /metrics exposes the
// whole stack's series on one page.
func newServer(eng *engine.Engine) http.Handler {
	s := &server{eng: eng, m: newHTTPMetrics(eng.Registry())}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/extract", s.m.wrap("/v1/extract", s.handleExtract))
	mux.HandleFunc("POST /v1/check", s.m.wrap("/v1/check", s.handleCheck))
	mux.HandleFunc("GET /v1/stats", s.m.wrap("/v1/stats", s.handleStats))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleExtract serves POST /v1/extract. Three request shapes:
//
//   - application/json: {"spanner", "splitter", "split_spanner", "doc"}
//     with the document inline.
//   - multipart/form-data: fields spanner/splitter/split_spanner followed
//     by a "doc" part, which is streamed — the part is fed to the engine
//     chunk by chunk, so arbitrarily large documents never reside in
//     memory whole.
//   - anything else: the body is the document stream and the formulas
//     come from the query parameters ?spanner=…&splitter=…&split_spanner=….
func (s *server) handleExtract(w http.ResponseWriter, r *http.Request) {
	ctype, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	switch ctype {
	case "application/json":
		var req extractRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, maxJSONBody)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
			return
		}
		// The document is already in memory; evaluate it directly
		// instead of paying the chunked-ingestion machinery.
		s.runExtract(w, r, req.engineRequest(), "inline",
			func(plan *engine.Plan) (*span.Relation, error) {
				return s.eng.Extract(r.Context(), plan, req.Doc)
			})
	case "multipart/form-data":
		mr, err := r.MultipartReader()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		var req engine.Request
		for {
			part, err := mr.NextPart()
			if err == io.EOF {
				writeError(w, http.StatusBadRequest, errors.New(`multipart body has no "doc" part`))
				return
			}
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			if part.FormName() == "doc" {
				// Formula fields must precede the doc part so the plan
				// exists before streaming begins.
				s.extract(w, r, req, part)
				return
			}
			const maxFormula = 1 << 20
			val, err := io.ReadAll(io.LimitReader(part, maxFormula+1))
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			if len(val) > maxFormula {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("multipart field %q exceeds %d bytes", part.FormName(), maxFormula))
				return
			}
			switch part.FormName() {
			case "spanner":
				req.Spanner = string(val)
			case "splitter":
				req.Splitter = string(val)
			case "split_spanner":
				req.SplitSpanner = string(val)
			}
		}
	default:
		q := r.URL.Query()
		req := engine.Request{
			Spanner:      q.Get("spanner"),
			Splitter:     q.Get("splitter"),
			SplitSpanner: q.Get("split_spanner"),
		}
		s.extract(w, r, req, r.Body)
	}
}

// extract serves a document arriving as a stream (raw body or multipart
// part).
func (s *server) extract(w http.ResponseWriter, r *http.Request, req engine.Request, doc io.Reader) {
	s.runExtract(w, r, req, "",
		func(plan *engine.Plan) (*span.Relation, error) {
			return s.eng.ExtractReader(r.Context(), plan, doc)
		})
}

// planErrStatus classifies a Plan error: a coalesced waiter can see its
// own context cancelled while the plan is still compiling; that is the
// client's doing, not a bad formula — classify it like evaluation-stage
// cancellation (499, client closed request / timed out).
func planErrStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 499
	}
	return http.StatusBadRequest
}

func (s *server) runExtract(w http.ResponseWriter, r *http.Request, req engine.Request, ingest string, run func(*engine.Plan) (*span.Relation, error)) {
	plan, hit, err := s.eng.Plan(r.Context(), req)
	if err != nil {
		writeError(w, planErrStatus(err), err)
		return
	}
	if ingest == "" {
		if s.eng.WillStream(plan) {
			ingest = "streamed"
		} else {
			ingest = "buffered"
		}
	}
	rel, err := run(plan)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			status = 499 // client closed request / timed out
		case errors.Is(err, engine.ErrDocTooLarge):
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, extractResponse{
		planResponse: planSection(plan, hit),
		Ingest:       ingest,
		Vars:         plan.Vars(),
		Count:        rel.Len(),
		Tuples:       tuplesJSON(rel),
	})
}

// handleCheck serves POST /v1/check: it returns the plan's verdicts
// (split-correctness / self-splittability / disjointness / locality)
// without evaluating anything — the "local" verdict tells a client
// whether this daemon will stream the pair's documents incrementally
// without any -stream-incremental override. Verdicts are served from
// the plan cache, so repeated and concurrent checks of the same pair
// run the PSPACE procedures once.
func (s *server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req extractRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxJSONBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	plan, hit, err := s.eng.Plan(r.Context(), req.engineRequest())
	if err != nil {
		writeError(w, planErrStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, planSection(plan, hit))
}

// statsResponse is the GET /v1/stats body: the engine's snapshot
// (counters, per-stage time shares, executor and localizer statistics)
// plus the daemon's HTTP-level view — requests in flight and
// per-endpoint latency percentiles. Everything is read in one pass, so
// one response is one consistent snapshot.
type statsResponse struct {
	engine.Stats
	InFlight  int64                    `json:"in_flight"`
	Endpoints map[string]endpointStats `json:"endpoints"`
}

// handleStats serves GET /v1/stats: cache hit rate, throughput counters
// (documents total and streamed incrementally), worker configuration,
// whether the unsafe -stream-incremental override is active, the
// pipeline-stage time breakdown and per-endpoint latency percentiles.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Stats:     s.eng.Stats(),
		InFlight:  s.m.inFlight.Load(),
		Endpoints: s.m.snapshot(),
	})
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format: every series of the engine's registry — HTTP, engine stages,
// plan cache, executor, evaluation core.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.eng.Registry().WritePrometheus(w)
}
