package automata

import (
	"math/rand"
	"testing"
)

// literalNFA builds an NFA accepting exactly the given words over a
// symbol alphabet of the given size.
func literalNFA(numSymbols int, words ...[]int) *NFA {
	a := New(numSymbols)
	for _, w := range words {
		s := a.AddState(len(w) == 0)
		a.AddStart(s)
		cur := s
		for i, sym := range w {
			next := a.AddState(i == len(w)-1)
			a.AddEdge(cur, sym, next)
			cur = next
		}
	}
	return a
}

// randomNFA builds a random automaton for differential tests.
func randomNFA(rng *rand.Rand, numSymbols, maxStates int) *NFA {
	a := New(numSymbols)
	n := rng.Intn(maxStates) + 1
	for i := 0; i < n; i++ {
		a.AddState(rng.Intn(3) == 0)
	}
	a.AddStart(rng.Intn(n))
	edges := rng.Intn(3 * n)
	for i := 0; i < edges; i++ {
		a.AddEdge(rng.Intn(n), rng.Intn(numSymbols), rng.Intn(n))
	}
	return a
}

// enumerate returns all words of length ≤ maxLen accepted by a.
func enumerate(a *NFA, maxLen int) map[string]bool {
	out := map[string]bool{}
	var rec func(w []int)
	rec = func(w []int) {
		if a.Accepts(w) {
			out[wordKey(w)] = true
		}
		if len(w) == maxLen {
			return
		}
		for s := 0; s < a.NumSymbols; s++ {
			rec(append(w, s))
		}
	}
	rec(nil)
	return out
}

func wordKey(w []int) string {
	b := make([]byte, len(w))
	for i, s := range w {
		b[i] = byte('a' + s)
	}
	return string(b)
}

func TestAcceptsAndTrim(t *testing.T) {
	a := literalNFA(2, []int{0, 1}, []int{1})
	if !a.Accepts([]int{0, 1}) || !a.Accepts([]int{1}) || a.Accepts([]int{0}) {
		t.Fatal("Accepts broken")
	}
	// Add junk states; Trim must preserve the language.
	junk := a.AddState(true)
	a.AddEdge(junk, 0, junk)
	tr := a.Trim()
	if tr.Len() >= a.Len() {
		t.Fatal("Trim did not remove the unreachable final state")
	}
	for w := range enumerate(a, 4) {
		_ = w
	}
	got := enumerate(tr, 4)
	want := enumerate(a, 4)
	if len(got) != len(want) {
		t.Fatalf("Trim changed language: %v vs %v", got, want)
	}
}

func TestProductIsIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		a := randomNFA(rng, 2, 5)
		b := randomNFA(rng, 2, 5)
		p := Product(a, b)
		wa, wb, wp := enumerate(a, 5), enumerate(b, 5), enumerate(p, 5)
		for w := range wp {
			if !wa[w] || !wb[w] {
				t.Fatalf("product accepts %q outside intersection", w)
			}
		}
		for w := range wa {
			if wb[w] && !wp[w] {
				t.Fatalf("product misses %q", w)
			}
		}
	}
}

func TestUnionIsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a := randomNFA(rng, 2, 5)
		b := randomNFA(rng, 2, 5)
		u := Union(a, b)
		wa, wb, wu := enumerate(a, 5), enumerate(b, 5), enumerate(u, 5)
		for w := range wu {
			if !wa[w] && !wb[w] {
				t.Fatalf("union accepts %q outside union", w)
			}
		}
		for w := range wa {
			if !wu[w] {
				t.Fatalf("union misses %q from a", w)
			}
		}
		for w := range wb {
			if !wu[w] {
				t.Fatalf("union misses %q from b", w)
			}
		}
	}
}

func TestDeterminizePreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		a := randomNFA(rng, 2, 6)
		d, err := a.Determinize(0)
		if err != nil {
			t.Fatal(err)
		}
		if !d.IsDeterministic() {
			t.Fatal("Determinize produced a nondeterministic automaton")
		}
		wa, wd := enumerate(a, 5), enumerate(d, 5)
		if len(wa) != len(wd) {
			t.Fatalf("language changed: %d vs %d words", len(wa), len(wd))
		}
		for w := range wa {
			if !wd[w] {
				t.Fatalf("missing word %q", w)
			}
		}
	}
}

func TestContainsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		a := randomNFA(rng, 2, 5)
		b := randomNFA(rng, 2, 5)
		got, witness, err := Contains(a, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		wa, wb := enumerate(a, 6), enumerate(b, 6)
		want := true
		for w := range wa {
			if !wb[w] {
				want = false
				break
			}
		}
		if got != want {
			t.Fatalf("Contains = %v, brute force = %v", got, want)
		}
		if !got {
			if !a.Accepts(witness) || b.Accepts(witness) {
				t.Fatalf("witness %v is not a counterexample", witness)
			}
		}
	}
}

func TestContainsDetMatchesContains(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		a := randomNFA(rng, 2, 5)
		b := randomNFA(rng, 2, 5)
		d, err := b.Determinize(0)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := Contains(a, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, witness := ContainsDet(a, d)
		if got != want {
			t.Fatalf("ContainsDet = %v, Contains = %v", got, want)
		}
		if !got && (!a.Accepts(witness) || d.Accepts(witness)) {
			t.Fatalf("bad witness %v", witness)
		}
	}
}

func TestEquivalent(t *testing.T) {
	// (ab)* vs. ((ab)(ab))* ∪ (ab)((ab)(ab))* — same language built
	// differently.
	a := New(2)
	s0 := a.AddState(true)
	s1 := a.AddState(false)
	a.AddStart(s0)
	a.AddEdge(s0, 0, s1)
	a.AddEdge(s1, 1, s0)

	b := New(2)
	t0 := b.AddState(true)
	t1 := b.AddState(false)
	t2 := b.AddState(true)
	t3 := b.AddState(false)
	b.AddStart(t0)
	b.AddEdge(t0, 0, t1)
	b.AddEdge(t1, 1, t2)
	b.AddEdge(t2, 0, t3)
	b.AddEdge(t3, 1, t0)
	eq, err := Equivalent(a, b, 0)
	if err != nil || !eq {
		t.Fatalf("expected equivalence, got %v err %v", eq, err)
	}
	b.Final[t2] = false
	eq, err = Equivalent(a, b, 0)
	if err != nil || eq {
		t.Fatalf("expected inequivalence, got %v err %v", eq, err)
	}
}

func TestIsUnambiguous(t *testing.T) {
	// Deterministic automata are unambiguous.
	a := literalNFA(2, []int{0, 1})
	if !a.IsUnambiguous() {
		t.Fatal("single-word automaton must be unambiguous")
	}
	// Two copies of the same word: ambiguous.
	b := literalNFA(2, []int{0, 1}, []int{0, 1})
	if b.IsUnambiguous() {
		t.Fatal("duplicated word automaton must be ambiguous")
	}
	// Classic: a* ∪ a* via two branches.
	c := New(1)
	s := c.AddState(false)
	c.AddStart(s)
	x := c.AddState(true)
	y := c.AddState(true)
	c.AddEdge(s, 0, x)
	c.AddEdge(s, 0, y)
	c.AddEdge(x, 0, x)
	c.AddEdge(y, 0, y)
	if c.IsUnambiguous() {
		t.Fatal("two-branch a+ must be ambiguous")
	}
	// Unambiguous union: even-length vs odd-length words.
	d := New(1)
	e0 := d.AddState(true)
	e1 := d.AddState(true)
	d.AddStart(e0)
	d.AddEdge(e0, 0, e1)
	d.AddEdge(e1, 0, e0)
	if !d.IsUnambiguous() {
		t.Fatal("parity automaton must be unambiguous")
	}
}

func TestIsUnambiguousRandomAgainstPathCount(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 300; i++ {
		a := randomNFA(rng, 2, 4)
		a.DedupeEdges()
		got := a.IsUnambiguous()
		want := true
		var rec func(w []int)
		count := func(w []int) int {
			// count accepting runs by DP over multisets of states
			cur := map[int]int{}
			for _, s := range a.Starts {
				cur[s]++
			}
			for _, sym := range w {
				next := map[int]int{}
				for q, c := range cur {
					for _, e := range a.Adj[q] {
						if e.Sym == sym {
							next[e.To] += c
						}
					}
				}
				cur = next
			}
			total := 0
			for q, c := range cur {
				if a.Final[q] {
					total += c
				}
			}
			return total
		}
		rec = func(w []int) {
			if count(w) > 1 {
				want = false
			}
			if len(w) == 6 || !want {
				return
			}
			for s := 0; s < 2; s++ {
				rec(append(w, s))
			}
		}
		rec(nil)
		if got != want {
			t.Fatalf("IsUnambiguous = %v, brute force = %v for automaton %d", got, want, i)
		}
	}
}

func TestErrTooLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomNFA(rng, 2, 12)
	if _, err := a.Determinize(1); err != ErrTooLarge {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
}
