package annotated

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/regexformula"
	"repro/internal/vsa"
)

func docs(sigma string, maxLen int) []string {
	out := []string{""}
	frontier := []string{""}
	for l := 0; l < maxLen; l++ {
		var next []string
		for _, d := range frontier {
			for i := 0; i < len(sigma); i++ {
				next = append(next, d+string(sigma[i]))
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

func splitterOf(t *testing.T, src string) *core.Splitter {
	t.Helper()
	s, err := core.NewSplitter(regexformula.MustCompile(src))
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return s
}

// getPostSplitter builds the Section 7.3 example in miniature: documents
// are ';'-separated request blocks, each block starting with 'g' (GET) or
// 'p' (POST); the annotated splitter extracts blocks and annotates each
// with its request type.
func getPostSplitter(t *testing.T) *Splitter {
	t.Helper()
	// Build by union of two single-key splitters so every acceptance
	// alternative has a well-defined key.
	gets := splitterOf(t, "(x{g[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(x{g[^;]*})(;[^;]*)*")
	posts := splitterOf(t, "(x{p[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(x{p[^;]*})(;[^;]*)*")
	a := vsa.NewAutomaton("x")
	ann := map[FinalRef]string{}
	for key, src := range map[string]*core.Splitter{"GET": gets, "POST": posts} {
		auto := src.Automaton()
		off := a.NumStates()
		for range auto.States {
			a.AddState()
		}
		for q, st := range auto.States {
			for _, e := range st.Edges {
				a.AddEdge(q+off, e.Ops, e.Class, e.To+off)
			}
			for _, f := range st.Finals {
				a.AddFinal(q+off, f)
				ann[FinalRef{q + off, f}] = key
			}
		}
		st := auto.States[auto.Start]
		for _, e := range st.Edges {
			a.AddEdge(a.Start, e.Ops, e.Class, e.To+off)
		}
		for _, f := range st.Finals {
			a.AddFinal(a.Start, f)
			ann[FinalRef{a.Start, f}] = key
		}
	}
	s, err := New(a, ann)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSplitAnnAndForKey(t *testing.T) {
	s := getPostSplitter(t)
	doc := "gaa;pb;ga"
	ann := s.SplitAnn(doc)
	if len(ann) != 3 {
		t.Fatalf("SplitAnn = %v, want 3 annotated splits", ann)
	}
	byKey := map[string]int{}
	for _, ks := range ann {
		byKey[ks.Key]++
		text := ks.Span.In(doc)
		if ks.Key == "GET" && !strings.HasPrefix(text, "g") {
			t.Fatalf("GET split %q does not start with g", text)
		}
		if ks.Key == "POST" && !strings.HasPrefix(text, "p") {
			t.Fatalf("POST split %q does not start with p", text)
		}
	}
	if byKey["GET"] != 2 || byKey["POST"] != 1 {
		t.Fatalf("key distribution wrong: %v", byKey)
	}
	gets, err := s.ForKey("GET")
	if err != nil {
		t.Fatal(err)
	}
	if len(gets.Split(doc)) != 2 {
		t.Fatal("ForKey(GET) must produce the two GET blocks")
	}
	if keys := s.Keys(); len(keys) != 2 || keys[0] != "GET" || keys[1] != "POST" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestIsHighlander(t *testing.T) {
	s := getPostSplitter(t)
	hl, err := s.IsHighlander()
	if err != nil {
		t.Fatal(err)
	}
	if !hl {
		t.Fatal("the request splitter must be a highlander splitter")
	}
	// Same split annotated with two keys: not a highlander.
	dup := splitterOf(t, "x{.*}")
	a := dup.Automaton().Clone()
	ann := map[FinalRef]string{}
	for q, st := range a.States {
		for _, f := range st.Finals {
			ann[FinalRef{q, f}] = "k1"
		}
	}
	// Duplicate the automaton under a second key.
	both := vsa.NewAutomaton("x")
	ann2 := map[FinalRef]string{}
	for i, key := range []string{"k1", "k2"} {
		off := both.NumStates()
		for range a.States {
			both.AddState()
		}
		for q, st := range a.States {
			for _, e := range st.Edges {
				both.AddEdge(q+off, e.Ops, e.Class, e.To+off)
			}
			for _, f := range st.Finals {
				both.AddFinal(q+off, f)
				ann2[FinalRef{q + off, f}] = key
			}
		}
		st := a.States[a.Start]
		for _, e := range st.Edges {
			both.AddEdge(both.Start, e.Ops, e.Class, e.To+off)
		}
		for _, f := range st.Finals {
			both.AddFinal(both.Start, f)
			if i == 0 {
				ann2[FinalRef{both.Start, f}] = key
			}
		}
	}
	s2, err := New(both, ann2)
	if err != nil {
		t.Fatal(err)
	}
	hl, err = s2.IsHighlander()
	if err != nil {
		t.Fatal(err)
	}
	if hl {
		t.Fatal("two keys on the same split must not be a highlander")
	}
	// Overlapping splits: not a highlander either.
	grams := UniformKey(splitterOf(t, ".*x{..}.*"), "k")
	hl, err = grams.IsHighlander()
	if err != nil {
		t.Fatal(err)
	}
	if hl {
		t.Fatal("non-disjoint annotated splitter must not be a highlander")
	}
}

func TestComposeAgainstBrute(t *testing.T) {
	s := getPostSplitter(t)
	m := KeyMapping{
		"GET":  regexformula.MustCompile("g(y{[^;]*})"),
		"POST": regexformula.MustCompile("p(y{[^;]*})"),
	}
	comp, err := s.Compose(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, d := range docs("gp;", 5) {
		want, err := s.ComposeBrute(m, d)
		if err != nil {
			t.Fatal(err)
		}
		got := comp.Eval(d)
		aligned, err := got.Project(want.Vars)
		if err != nil {
			t.Fatal(err)
		}
		if !aligned.Equal(want) {
			t.Fatalf("annotated composition wrong on %q: %v vs %v", d, aligned, want)
		}
	}
}

// TestAnnotatedSplitCorrect exercises Theorem E.3's decision problem on
// the request-log example: P extracts the payload of every block, with
// different handling per request type (drop the leading byte for GET,
// keep the whole block for POST).
func TestAnnotatedSplitCorrect(t *testing.T) {
	s := getPostSplitter(t)
	p := regexformula.MustCompile(
		"g(y{[^;]*})(;[^;]*)*|(y{p[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;g(y{[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(y{p[^;]*})(;[^;]*)*")
	m := KeyMapping{
		"GET":  regexformula.MustCompile("g(y{[^;]*})"),
		"POST": regexformula.MustCompile("y{p[^;]*}"),
	}
	ok, err := s.SplitCorrect(p, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("the per-key mapping must be split-correct")
	}
	// Swapping the mapping breaks it.
	bad := KeyMapping{"GET": m["POST"], "POST": m["GET"]}
	ok, err = s.SplitCorrect(p, bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("the swapped mapping must not be split-correct")
	}
}

// TestAnnotatedSplittable exercises Theorem E.7: the canonical key-spanner
// mapping witnesses splittability, and a spanner whose output crosses
// block boundaries is not splittable.
func TestAnnotatedSplittable(t *testing.T) {
	s := getPostSplitter(t)
	p := regexformula.MustCompile(
		"g(y{[^;]*})(;[^;]*)*|(y{p[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;g(y{[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(y{p[^;]*})(;[^;]*)*")
	ok, m, err := s.Splittable(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("P must be annotated-splittable")
	}
	// The canonical mapping must verify end to end.
	for _, d := range docs("gp;", 5) {
		want := p.Eval(d)
		got, err := s.ComposeBrute(m, d)
		if err != nil {
			t.Fatal(err)
		}
		aligned, err := got.Project(want.Vars)
		if err != nil {
			t.Fatal(err)
		}
		if !aligned.Equal(want) {
			t.Fatalf("canonical mapping wrong on %q: %v vs %v", d, aligned, want)
		}
	}
	crossing := regexformula.MustCompile(".*y{;}.*")
	ok, _, err = s.Splittable(crossing, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("a separator-extractor must not be annotated-splittable")
	}
}

func TestUniformKeyAndMissingMapping(t *testing.T) {
	s := UniformKey(splitterOf(t, "x{.*}"), "all")
	if keys := s.Keys(); len(keys) != 1 || keys[0] != "all" {
		t.Fatalf("Keys = %v", keys)
	}
	if _, err := s.Compose(KeyMapping{}); err == nil {
		t.Fatal("missing key in mapping must be an error")
	}
}
