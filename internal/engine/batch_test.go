package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

const (
	abFormula = `.*(x{ab}).*|(x{ab}).*`
	cdFormula = `.*(x{cd}).*|(x{cd}).*`
)

func mustPlanBatch(t *testing.T, e *Engine, req BatchRequest) *Plan {
	t.Helper()
	plan, _, err := e.PlanBatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestExtractBatchMatchesSingleExtract(t *testing.T) {
	e := newTestEngine()
	formulas := []string{emailFormula, abFormula, cdFormula}
	plan := mustPlanBatch(t, e, BatchRequest{Spanners: formulas})
	doc := "ab cd " + emailDoc + " ab"
	results, err := e.ExtractBatch(context.Background(), plan, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(formulas) {
		t.Fatalf("got %d results, want %d", len(results), len(formulas))
	}
	for i, f := range formulas {
		if results[i].Err != nil {
			t.Fatalf("slot %d: unexpected error %v", i, results[i].Err)
		}
		single := mustPlan(t, e, Request{Spanner: f})
		want, err := e.Extract(context.Background(), single, doc)
		if err != nil {
			t.Fatal(err)
		}
		if !results[i].Rel.Equal(want) {
			t.Fatalf("slot %d (%s): batch %v != single %v", i, f, results[i].Rel, want)
		}
		if results[i].Rel.Len() == 0 {
			t.Fatalf("slot %d: expected matches on %q", i, doc)
		}
	}
}

func TestExtractBatchPerQueryErrors(t *testing.T) {
	e := newTestEngine()
	plan := mustPlanBatch(t, e, BatchRequest{Spanners: []string{abFormula, "(x{unclosed", ""}})
	if !plan.IsBatch() || plan.BatchLen() != 3 {
		t.Fatalf("IsBatch=%v BatchLen=%d, want batch of 3", plan.IsBatch(), plan.BatchLen())
	}
	if plan.BatchErr(0) != nil {
		t.Fatalf("slot 0 should compile, got %v", plan.BatchErr(0))
	}
	if plan.BatchErr(1) == nil || plan.BatchErr(2) == nil {
		t.Fatalf("slots 1 and 2 should carry compile errors, got %v / %v", plan.BatchErr(1), plan.BatchErr(2))
	}
	results, err := e.ExtractBatch(context.Background(), plan, "ab")
	if err != nil {
		t.Fatalf("one bad formula must not fail the batch: %v", err)
	}
	if results[0].Err != nil || results[0].Rel == nil || results[0].Rel.Len() != 1 {
		t.Fatalf("slot 0 = %+v, want one match and no error", results[0])
	}
	if results[1].Err == nil || results[1].Rel != nil {
		t.Fatalf("slot 1 = %+v, want a compile error and no relation", results[1])
	}
	if results[2].Err == nil {
		t.Fatalf("slot 2 = %+v, want a compile error", results[2])
	}
	if vars := plan.BatchVars(1); vars != nil {
		t.Fatalf("BatchVars of a failed slot = %v, want nil", vars)
	}
}

func TestExtractBatchAllFormulasBad(t *testing.T) {
	e := newTestEngine()
	plan := mustPlanBatch(t, e, BatchRequest{Spanners: []string{"(x{a", ""}})
	results, err := e.ExtractBatch(context.Background(), plan, "whatever")
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err == nil || r.Rel != nil {
			t.Fatalf("slot %d = %+v, want error only", i, r)
		}
	}
}

func TestExtractBatchDuplicateFormulasShareOneMember(t *testing.T) {
	e := newTestEngine()
	plan := mustPlanBatch(t, e, BatchRequest{Spanners: []string{abFormula, abFormula, cdFormula}})
	if n := len(plan.batch.members); n != 2 {
		t.Fatalf("distinct members = %d, want 2 (duplicates deduplicated)", n)
	}
	results, err := e.ExtractBatch(context.Background(), plan, "ab cd")
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Rel != results[1].Rel {
		t.Fatalf("duplicate slots should share one relation")
	}
	if !results[0].Rel.Equal(results[1].Rel) || results[0].Rel.Len() != 1 {
		t.Fatalf("duplicate slots disagree: %v vs %v", results[0].Rel, results[1].Rel)
	}
}

func TestPlanBatchEmpty(t *testing.T) {
	e := newTestEngine()
	if _, _, err := e.PlanBatch(context.Background(), BatchRequest{}); err == nil {
		t.Fatal("empty batch should fail to plan")
	}
}

func TestExtractBatchRejectsSinglePlan(t *testing.T) {
	e := newTestEngine()
	plan := mustPlan(t, e, Request{Spanner: abFormula})
	if _, err := e.ExtractBatch(context.Background(), plan, "ab"); err == nil {
		t.Fatal("ExtractBatch on a single plan should fail")
	}
}

func TestExtractBatchDocTooLarge(t *testing.T) {
	e := New(Config{MaxDocBuffer: 8})
	plan := mustPlanBatch(t, e, BatchRequest{Spanners: []string{abFormula}})
	if _, err := e.ExtractBatch(context.Background(), plan, "0123456789"); !errors.Is(err, ErrDocTooLarge) {
		t.Fatalf("err = %v, want ErrDocTooLarge", err)
	}
}

// TestBatchKeyNeverAliasesSingleKey is the cache-key contract: a fused
// plan's key starts with "batch:" while a single plan's key starts with
// a decimal digit (the tenant length prefix), so no choice of tenant or
// formula bytes can make the two collide — including adversarial
// tenants/formulas that embed "batch:" or length prefixes themselves.
func TestBatchKeyNeverAliasesSingleKey(t *testing.T) {
	cases := []struct {
		single Request
		batch  BatchRequest
	}{
		{Request{Spanner: abFormula}, BatchRequest{Spanners: []string{abFormula}}},
		{Request{Tenant: "batch:", Spanner: abFormula}, BatchRequest{Spanners: []string{abFormula}}},
		{Request{Spanner: "batch:0:" + abFormula}, BatchRequest{Spanners: []string{abFormula}}},
		{Request{Spanner: abFormula, Splitter: cdFormula}, BatchRequest{Spanners: []string{abFormula, cdFormula}}},
	}
	for i, c := range cases {
		sk, bk := c.single.key(), c.batch.key()
		if sk == bk {
			t.Fatalf("case %d: single key %q aliases batch key %q", i, sk, bk)
		}
		if sk[0] < '0' || sk[0] > '9' {
			t.Fatalf("case %d: single key %q must start with a digit", i, sk)
		}
		if bk[:6] != "batch:" {
			t.Fatalf("case %d: batch key %q must start with batch:", i, bk)
		}
	}
	// Two batches differing only in formula boundaries must not collide
	// (length prefixes make concatenation unambiguous).
	a := BatchRequest{Spanners: []string{"ab", "c"}}
	b := BatchRequest{Spanners: []string{"a", "bc"}}
	if a.key() == b.key() {
		t.Fatalf("batch keys collide across formula boundaries: %q", a.key())
	}
}

// TestBatchPlanCostCountsAllMembers is the eviction-accounting contract:
// a fused plan's modeled byte cost must include every distinct member
// automaton, so registering N formulas as one batch cannot squeeze under
// a byte budget that N singleton plans would blow.
func TestBatchPlanCostCountsAllMembers(t *testing.T) {
	batch, err := compileBatchPlan(BatchRequest{Spanners: []string{emailFormula, abFormula, cdFormula}})
	if err != nil {
		t.Fatal(err)
	}
	var singles int64
	for _, f := range []string{emailFormula, abFormula, cdFormula} {
		p, err := compilePlan(Request{Spanner: f}, 0)
		if err != nil {
			t.Fatal(err)
		}
		singles += p.cost()
	}
	// Each single plan pays the fixed per-plan baseline; the batch pays
	// it once. Everything else — per-state, per-edge, per-formula-byte —
	// must match, so the batch cost is within 3 baselines of the sum.
	if got, want := batch.cost(), singles-2*512; got != want {
		t.Fatalf("batch cost = %d, want %d (sum of singles %d minus two baselines)", got, want, singles)
	}

	// And the cache actually uses it: with a byte budget that holds the
	// batch plan but not much else, inserting the batch evicts cached
	// singles (cost-aware eviction, not entry counting).
	e := New(Config{PlanCache: 64, PlanCacheBytes: batch.cost() + 600})
	mustPlan(t, e, Request{Spanner: abFormula})
	mustPlan(t, e, Request{Spanner: cdFormula})
	mustPlanBatch(t, e, BatchRequest{Spanners: []string{emailFormula, abFormula, cdFormula}})
	st := e.cache.stats()
	if st.Evictions == 0 {
		t.Fatalf("expected byte-budget evictions when the fused plan landed, got stats %+v", st)
	}
	if st.Bytes > e.cfg.PlanCacheBytes {
		t.Fatalf("cache bytes %d exceed budget %d", st.Bytes, e.cfg.PlanCacheBytes)
	}
}

// TestBatchAndSingleHammerSharedCache runs concurrent ExtractBatch and
// single-plan Extract traffic through one engine (and thus one plan
// cache) under -race: fused and singleton plans for the same formulas
// must coexist without aliasing, and results must stay byte-identical
// to isolated evaluation throughout cache churn.
func TestBatchAndSingleHammerSharedCache(t *testing.T) {
	e := New(Config{Workers: 4, PlanCache: 4, PlanCacheBytes: 1 << 20})
	doc := "ab cd " + emailDoc
	formulas := []string{emailFormula, abFormula, cdFormula}

	// Reference results from a pristine engine.
	ref := newTestEngine()
	want := make(map[string]int, len(formulas))
	for _, f := range formulas {
		rel, err := ref.Extract(context.Background(), mustPlan(t, ref, Request{Spanner: f}), doc)
		if err != nil {
			t.Fatal(err)
		}
		want[f] = rel.Len()
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 25; it++ {
				if (g+it)%2 == 0 {
					plan, _, err := e.PlanBatch(context.Background(), BatchRequest{Spanners: formulas})
					if err != nil {
						errc <- err
						return
					}
					results, err := e.ExtractBatch(context.Background(), plan, doc)
					if err != nil {
						errc <- err
						return
					}
					for i, f := range formulas {
						if results[i].Err != nil || results[i].Rel.Len() != want[f] {
							errc <- fmt.Errorf("batch slot %d (%s): got %+v, want %d tuples", i, f, results[i], want[f])
							return
						}
					}
				} else {
					f := formulas[(g+it)%len(formulas)]
					plan, _, err := e.Plan(context.Background(), Request{Spanner: f})
					if err != nil {
						errc <- err
						return
					}
					rel, err := e.Extract(context.Background(), plan, doc)
					if err != nil {
						errc <- err
						return
					}
					if rel.Len() != want[f] {
						errc <- fmt.Errorf("single %s: got %d tuples, want %d", f, rel.Len(), want[f])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if st := e.cache.stats(); st.Size > st.Cap {
		t.Fatalf("cache overflowed: %+v", st)
	}
}

func TestPlanBatchCacheHit(t *testing.T) {
	e := newTestEngine()
	req := BatchRequest{Spanners: []string{abFormula, cdFormula}}
	p1, hit1, err := e.PlanBatch(context.Background(), req)
	if err != nil || hit1 {
		t.Fatalf("first plan: hit=%v err=%v", hit1, err)
	}
	p2, hit2, err := e.PlanBatch(context.Background(), req)
	if err != nil || !hit2 || p1 != p2 {
		t.Fatalf("second plan: hit=%v same=%v err=%v", hit2, p1 == p2, err)
	}
}
