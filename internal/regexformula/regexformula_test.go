package regexformula

import (
	"testing"

	"repro/internal/span"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical String rendering
	}{
		{"abc", "abc"},
		{"a|b", "a|b"},
		{"a*", "a*"},
		{"(ab)*", "(ab)*"},
		{"x{ab}", "x{ab}"},
		{"x{a|b}c", "x{a|b}c"},
		{"a?", "a|ε"},
		{"a+", "aa*"},
	}
	for _, c := range cases {
		n, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got := n.String(); got != c.want {
			t.Errorf("Parse(%s).String() = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"(", "(a", "a)", "x{a", "[a", "[z-a]", "a**extra)", "*", "\\"}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseIdentifierVsLiteral(t *testing.T) {
	// "GET " is all literal; "req{...}" is a capture named req.
	n := MustParse("GET req{.*}")
	vars := Vars(n)
	if len(vars) != 1 || vars[0] != "req" {
		t.Fatalf("Vars = %v", vars)
	}
	// An identifier not followed by '{' is literal bytes.
	n2 := MustParse("abc|x")
	if len(Vars(n2)) != 0 {
		t.Fatal("no captures expected")
	}
}

func TestCharClasses(t *testing.T) {
	n := MustParse("[a-c]")
	rel := EvalNaive(n, "b")
	if rel.Len() != 1 {
		t.Fatal("[a-c] must match b")
	}
	if EvalNaive(n, "d").Len() != 0 {
		t.Fatal("[a-c] must not match d")
	}
	neg := MustParse("[^a]")
	if EvalNaive(neg, "a").Len() != 0 || EvalNaive(neg, "z").Len() != 1 {
		t.Fatal("negated class broken")
	}
	esc := MustParse(`\d\d`)
	if EvalNaive(esc, "42").Len() != 1 || EvalNaive(esc, "4x").Len() != 0 {
		t.Fatal("\\d broken")
	}
}

func TestEscapes(t *testing.T) {
	if EvalNaive(MustParse(`\{`), "{").Len() != 1 {
		t.Fatal("escaped brace broken")
	}
	if EvalNaive(MustParse(`\x41`), "A").Len() != 1 {
		t.Fatal("hex escape broken")
	}
	if EvalNaive(MustParse(`a\|b`), "a|b").Len() != 1 {
		t.Fatal("escaped pipe broken")
	}
}

func TestEvalNaivePaperExample58(t *testing.T) {
	// Example 5.8: P = a y{b} b on document abb selects exactly [2,3⟩.
	p := MustParse("a(y{b})b")
	rel := EvalNaive(p, "abb")
	want := span.NewRelation("y")
	want.Add(span.Tuple{span.New(2, 3)})
	if !rel.Equal(want) {
		t.Fatalf("P(abb) = %v, want %v", rel, want)
	}
	if EvalNaive(p, "ab").Len() != 0 {
		t.Fatal("P must be empty on ab")
	}

	// S = x{ab}b + a x{bb} on abb selects [1,3⟩ and [2,4⟩.
	s := MustParse("x{ab}b|a(x{bb})")
	relS := EvalNaive(s, "abb")
	wantS := span.NewRelation("x")
	wantS.Add(span.Tuple{span.New(1, 3)})
	wantS.Add(span.Tuple{span.New(2, 4)})
	if !relS.Equal(wantS) {
		t.Fatalf("S(abb) = %v, want %v", relS, wantS)
	}
}

func TestEvalNaiveInvalidRefWordsDiscarded(t *testing.T) {
	// (x{a})* on "aa" would bind x twice — the ref-word is invalid, so
	// only single-iteration matches survive; none span the whole document.
	n := MustParse("(x{a})*")
	if got := EvalNaive(n, "aa"); got.Len() != 0 {
		t.Fatalf("expected no valid matches, got %v", got)
	}
	// On "a" exactly one binding.
	if got := EvalNaive(n, "a"); got.Len() != 1 {
		t.Fatalf("expected one match, got %v", got)
	}
}

func TestEvalNaiveEmptyCaptures(t *testing.T) {
	n := MustParse("x{}a")
	rel := EvalNaive(n, "a")
	want := span.NewRelation("x")
	want.Add(span.Tuple{span.New(1, 1)})
	if !rel.Equal(want) {
		t.Fatalf("x{}a on a = %v, want %v", rel, want)
	}
}

func TestVarsFirstOccurrenceOrder(t *testing.T) {
	n := MustParse("y{a}x{b}|x{a}y{b}")
	vars := Vars(n)
	if len(vars) != 2 || vars[0] != "y" || vars[1] != "x" {
		t.Fatalf("Vars = %v", vars)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, src := range []string{"abc", "a|bc", "(a|b)*", "x{a|b}c", "x{y{a}b}"} {
		n := MustParse(src)
		n2, err := Parse(n.String())
		if err != nil {
			t.Fatalf("re-parse of %s (%s): %v", src, n.String(), err)
		}
		for _, d := range []string{"", "a", "b", "ab", "abc", "ba"} {
			if !EvalNaive(n, d).Equal(EvalNaive(n2, d)) {
				t.Fatalf("round trip of %s changed semantics on %q", src, d)
			}
		}
	}
}

func TestCompileRawStructure(t *testing.T) {
	raw := CompileRaw(MustParse("x{a}"))
	if len(raw.Vars) != 1 || raw.Vars[0] != "x" {
		t.Fatalf("Vars = %v", raw.Vars)
	}
	if raw.IsFunctional() != true {
		t.Fatal("x{a} must compile to a functional raw automaton")
	}
}
