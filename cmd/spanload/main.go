// Command spanload drives concurrent load against a running spand
// daemon and reports client-side throughput and latency percentiles per
// connection count — the CONCURRENCY experiment. The workload is mixed
// on purpose: plan-cache hits (one hot split-parallel plan) and misses
// (unique formulas that pay compilation inline), small and large
// documents, inline JSON and streamed raw bodies.
//
// Example — sweep 1, 4 and 16 connections for 5 s each and write the
// snapshot:
//
//	spand -addr :8080 &
//	spanload -target http://127.0.0.1:8080 -conns 1,4,16 -dur 5s -json BENCH_PR6.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/loadgen"
)

func main() {
	var (
		target    = flag.String("target", "http://127.0.0.1:8080", "base URL of the spand daemon")
		connsFlag = flag.String("conns", "1,4,16", "comma-separated connection counts to sweep")
		dur       = flag.Duration("dur", 5*time.Second, "duration of each connection-count run")
		missEvery = flag.Int("miss-every", 8, "one plan-cache-missing formula per N requests (negative disables)")
		seed      = flag.Uint64("seed", 0, "workload mix seed (0 = fixed default)")
		jsonOut   = flag.String("json", "", "write the CONCURRENCY snapshot to this file")
	)
	flag.Parse()

	var conns []int
	for _, f := range strings.Split(*connsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			log.Fatalf("spanload: bad -conns entry %q", f)
		}
		conns = append(conns, n)
	}

	cfg := loadgen.Config{Target: *target, Duration: *dur, MissEvery: *missEvery, Seed: *seed}
	snap := loadgen.RunSweep(cfg, conns)

	fmt.Printf("%-6s %10s %8s %10s %10s %9s %9s %9s\n",
		"conns", "requests", "errors", "req/s", "MB/s", "p50 ms", "p90 ms", "p99 ms")
	for _, r := range snap.Results {
		fmt.Printf("%-6d %10d %8d %10.1f %10.2f %9.2f %9.2f %9.2f\n",
			r.Connections, r.Requests, r.Errors, r.ReqPerS, r.MBPerS, r.P50MS, r.P90MS, r.P99MS)
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			log.Fatalf("spanload: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("spanload: %v", err)
		}
		log.Printf("spanload: wrote %s", *jsonOut)
	}
	for _, r := range snap.Results {
		if r.Errors > 0 {
			os.Exit(1)
		}
	}
}
