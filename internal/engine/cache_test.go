package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheSingleFlightBuildsOnce(t *testing.T) {
	c := newPlanCache(4)
	var builds atomic.Int32
	gate := make(chan struct{})
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			plan, _, err := c.get(context.Background(), "k", func() (*Plan, error) {
				builds.Add(1)
				<-gate // hold the build open so every goroutine piles up
				return &Plan{}, nil
			})
			if err != nil || plan == nil {
				t.Errorf("get: plan=%v err=%v", plan, err)
			}
		}()
	}
	// Let the goroutines queue up behind the single in-flight build,
	// then release it.
	for builds.Load() == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want exactly once", got)
	}
	st := c.stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != n-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits+coalesced", st, n-1)
	}
}

func TestCacheErrorsAreNotCached(t *testing.T) {
	c := newPlanCache(4)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.get(context.Background(), "k", func() (*Plan, error) { calls++; return nil, boom })
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	plan, hit, err := c.get(context.Background(), "k", func() (*Plan, error) { calls++; return &Plan{}, nil })
	if err != nil || hit || plan == nil {
		t.Fatalf("retry: plan=%v hit=%v err=%v", plan, hit, err)
	}
	if calls != 2 {
		t.Fatalf("build calls = %d, want 2 (errors must not be cached)", calls)
	}
	if st := c.stats(); st.Size != 1 {
		t.Fatalf("size = %d, want 1", st.Size)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newPlanCache(2)
	build := func() (*Plan, error) { return &Plan{}, nil }
	c.get(context.Background(), "a", build)
	c.get(context.Background(), "b", build)
	c.get(context.Background(), "a", build) // refresh a; b is now least recently used
	c.get(context.Background(), "c", build) // evicts b
	if _, hit, _ := c.get(context.Background(), "a", build); !hit {
		t.Fatal("a should have survived eviction")
	}
	if _, hit, _ := c.get(context.Background(), "b", build); hit {
		t.Fatal("b should have been evicted")
	}
	st := c.stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions > 0", st)
	}
	if st.Size > 2 {
		t.Fatalf("size = %d exceeds cap 2", st.Size)
	}
}

// TestCacheBuildPanicDoesNotPoisonKey: a panicking compilation (hostile
// input, e.g. a formula exceeding vsa.MaxVars) must surface as an error
// and leave the key retryable — previously the in-flight entry's ready
// channel was never closed and every later request for the key blocked
// forever.
func TestCacheBuildPanicDoesNotPoisonKey(t *testing.T) {
	c := newPlanCache(4)
	ctx := context.Background()
	_, _, err := c.get(ctx, "k", func() (*Plan, error) { panic("boom") })
	if err == nil {
		t.Fatal("expected an error from a panicking build")
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := c.get(ctx, "k", func() (*Plan, error) { return &Plan{}, nil })
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("retry after panic: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("key poisoned: retry blocked on the dead in-flight entry")
	}
}

// TestPlanHostileFormulaTooManyVars drives the same hazard end to end
// through Engine.Plan: the request must fail cleanly, twice.
func TestPlanHostileFormulaTooManyVars(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 33; i++ {
		fmt.Fprintf(&sb, "(v%d{a})", i)
	}
	e := New(Config{})
	for round := 0; round < 2; round++ {
		_, _, err := e.Plan(context.Background(), Request{Spanner: sb.String()})
		if err == nil {
			t.Fatalf("round %d: expected an error for a %d-variable formula", round, 33)
		}
	}
}
