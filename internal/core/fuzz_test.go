package core

import (
	"math/rand"
	"testing"

	"repro/internal/regexformula"
)

// FuzzEvalLazyVsReference cross-checks the compiled lazy-DFA evaluation
// core (Automaton.Eval / EvalBool) against the retained reference NFA
// simulation (EvalReference / EvalBoolReference) on randomly generated
// spanner formulas and fuzz-provided documents. The formula generator is
// the same one the random differential tests use; the document bytes come
// straight from the fuzzer, so byte classes outside the formula's alphabet
// (the DFA's dead class) get exercised too.
func FuzzEvalLazyVsReference(f *testing.F) {
	f.Add(int64(1), "abab")
	f.Add(int64(2), "")
	f.Add(int64(3), "bbbbbbaaab")
	f.Add(int64(42), "a.b!c?\x00\xffzz")
	f.Fuzz(func(t *testing.T, seed int64, doc string) {
		if len(doc) > 1<<12 {
			doc = doc[:1<<12]
		}
		rng := rand.New(rand.NewSource(seed))
		src := randomUnaryFormula(rng, "y", 2)
		p, err := regexformula.Compile(src)
		if err != nil {
			t.Skip()
		}
		got, want := p.Eval(doc), p.EvalReference(doc)
		if !got.Equal(want) {
			t.Fatalf("Eval disagrees with reference on %q\nformula: %s\nlazy: %v\nref:  %v", doc, src, got, want)
		}
		if gb, wb := p.EvalBool(doc), p.EvalBoolReference(doc); gb != wb {
			t.Fatalf("EvalBool=%v reference=%v on %q\nformula: %s", gb, wb, doc, src)
		}
	})
}
