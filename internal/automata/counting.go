package automata

import (
	"math/big"
)

// CountAcceptingPaths returns, for each length ℓ = 0..maxLen, the number of
// accepting paths of length ℓ (summed over start states). For an
// unambiguous automaton this equals the number of accepted words of each
// length, which is the quantity compared by the polynomial containment
// test of Stearns and Hunt used in Lemma 5.6.
func (a *NFA) CountAcceptingPaths(maxLen int) []*big.Int {
	n := a.Len()
	cur := make([]*big.Int, n)
	for i := range cur {
		cur[i] = new(big.Int)
	}
	for _, s := range a.Starts {
		cur[s].Add(cur[s], big.NewInt(1))
	}
	out := make([]*big.Int, maxLen+1)
	sumFinal := func(v []*big.Int) *big.Int {
		t := new(big.Int)
		for q, f := range a.Final {
			if f {
				t.Add(t, v[q])
			}
		}
		return t
	}
	out[0] = sumFinal(cur)
	for l := 1; l <= maxLen; l++ {
		next := make([]*big.Int, n)
		for i := range next {
			next[i] = new(big.Int)
		}
		for q, es := range a.Adj {
			if cur[q].Sign() == 0 {
				continue
			}
			for _, e := range es {
				next[e.To].Add(next[e.To], cur[q])
			}
		}
		cur = next
		out[l] = sumFinal(cur)
	}
	return out
}

// ContainsUnambiguous decides L(a) ⊆ L(b) in polynomial time for
// unambiguous a and b, by comparing the number of accepted words of a with
// the number of accepted words of the product a×b for every length up to
// |a| + |a×b|. Both counts are path counts, which coincide with word
// counts by unambiguity; since #(a×b)(w) = #a(w)·#b(w) ≤ #a(w) pointwise,
// per-length equality is equivalent to pointwise equality, and the
// difference sequence satisfies a linear recurrence of order at most
// |a| + |a×b| (Cayley–Hamilton), so checking that many lengths suffices.
//
// If verify is true the unambiguity of both inputs is checked first and
// the function panics if it fails; the decision procedures of the split
// package construct automata that are unambiguous by design and pass
// verify=false in production, true under test.
func ContainsUnambiguous(a, b *NFA, verify bool) bool {
	if verify {
		if !a.IsUnambiguous() {
			panic("automata: ContainsUnambiguous: left automaton is ambiguous")
		}
		if !b.IsUnambiguous() {
			panic("automata: ContainsUnambiguous: right automaton is ambiguous")
		}
	}
	at := a.Trim()
	p := Product(at, b.Trim())
	bound := at.Len() + p.Len() + 1
	ca := at.CountAcceptingPaths(bound)
	cp := p.CountAcceptingPaths(bound)
	for l := 0; l <= bound; l++ {
		if ca[l].Cmp(cp[l]) != 0 {
			return false
		}
	}
	return true
}

// Term is one summand of a Series: Coef times the accepting-path counting
// function of A.
type Term struct {
	Coef int64
	A    *NFA
}

// Series is a formal ℤ-linear combination of accepting-path counting
// functions, s(w) = Σ_i Coef_i · #acc_{A_i}(w). It is the tool behind the
// inclusion–exclusion containment tests used for the boundary cases of
// Lemma 5.6 and Theorem 5.7 (tuples whose spans are all empty at a single
// boundary, where the paper's uniqueness argument needs repair; see
// DESIGN.md).
type Series struct {
	Terms []Term
}

// totalStates returns the summed state count of all trimmed terms.
func (s *Series) trimmed() ([]*NFA, int) {
	ts := make([]*NFA, len(s.Terms))
	n := 0
	for i, t := range s.Terms {
		ts[i] = t.A.Trim()
		n += ts[i].Len()
	}
	return ts, n
}

// IsZeroNonnegative decides whether s(w) = 0 for every word w, under the
// caller-guaranteed precondition that s(w) ≥ 0 pointwise (or ≤ 0
// pointwise). Under that precondition the per-length sums vanish iff the
// series vanishes pointwise, and the per-length sequence obeys a linear
// recurrence of order at most the total number of states, so finitely many
// lengths decide.
func (s *Series) IsZeroNonnegative() bool {
	ts, n := s.trimmed()
	bound := n + 1
	total := make([]*big.Int, bound+1)
	for l := range total {
		total[l] = new(big.Int)
	}
	for i, t := range ts {
		counts := t.CountAcceptingPaths(bound)
		c := big.NewInt(s.Terms[i].Coef)
		for l := 0; l <= bound; l++ {
			var tmp big.Int
			tmp.Mul(counts[l], c)
			total[l].Add(total[l], &tmp)
		}
	}
	for l := 0; l <= bound; l++ {
		if total[l].Sign() != 0 {
			return false
		}
	}
	return true
}

// IsZeroExact decides whether s(w) = 0 for every word w with no
// precondition, using Tzeng's vector-basis algorithm for weighted-automata
// equivalence over ℚ: explore the space spanned by the reachable weight
// vectors; the series is zero iff every vector in that space is orthogonal
// to the final-weight vector. Runs in polynomial time (at most dim basis
// extensions, each spawning |Σ| successors).
func (s *Series) IsZeroExact() bool {
	ts, n := s.trimmed()
	if n == 0 {
		return true
	}
	numSymbols := 0
	for _, t := range ts {
		if t.NumSymbols > numSymbols {
			numSymbols = t.NumSymbols
		}
	}
	// Offsets into the combined state space.
	offs := make([]int, len(ts))
	{
		o := 0
		for i, t := range ts {
			offs[i] = o
			o += t.Len()
		}
	}
	// Initial vector: Coef_i on each start state of term i.
	init := make([]*big.Rat, n)
	for i := range init {
		init[i] = new(big.Rat)
	}
	for i, t := range ts {
		c := new(big.Rat).SetInt64(s.Terms[i].Coef)
		for _, st := range t.Starts {
			init[offs[i]+st].Add(init[offs[i]+st], c)
		}
	}
	// Final vector.
	fin := make([]*big.Rat, n)
	for i := range fin {
		fin[i] = new(big.Rat)
	}
	one := new(big.Rat).SetInt64(1)
	for i, t := range ts {
		for q, f := range t.Final {
			if f {
				fin[offs[i]+q].Set(one)
			}
		}
	}
	dot := func(u, v []*big.Rat) *big.Rat {
		acc := new(big.Rat)
		var tmp big.Rat
		for i := range u {
			if u[i].Sign() != 0 && v[i].Sign() != 0 {
				tmp.Mul(u[i], v[i])
				acc.Add(acc, &tmp)
			}
		}
		return acc
	}
	step := func(v []*big.Rat, sym int) []*big.Rat {
		out := make([]*big.Rat, n)
		for i := range out {
			out[i] = new(big.Rat)
		}
		for i, t := range ts {
			for q, es := range t.Adj {
				from := offs[i] + q
				if v[from].Sign() == 0 {
					continue
				}
				for _, e := range es {
					if e.Sym == sym {
						to := offs[i] + e.To
						out[to].Add(out[to], v[from])
					}
				}
			}
		}
		return out
	}
	// Gaussian-elimination basis with pivot bookkeeping.
	type row struct {
		vec   []*big.Rat
		pivot int
	}
	var basis []row
	reduce := func(v []*big.Rat) (rem []*big.Rat, zero bool) {
		w := make([]*big.Rat, n)
		for i := range w {
			w[i] = new(big.Rat).Set(v[i])
		}
		for _, r := range basis {
			if w[r.pivot].Sign() == 0 {
				continue
			}
			factor := new(big.Rat).Set(w[r.pivot])
			var tmp big.Rat
			for i := range w {
				if r.vec[i].Sign() != 0 {
					tmp.Mul(factor, r.vec[i])
					w[i].Sub(w[i], &tmp)
				}
			}
		}
		for i := range w {
			if w[i].Sign() != 0 {
				return w, false
			}
		}
		return nil, true
	}
	addToBasis := func(w []*big.Rat) {
		pivot := -1
		for i := range w {
			if w[i].Sign() != 0 {
				pivot = i
				break
			}
		}
		inv := new(big.Rat).Inv(w[pivot])
		for i := range w {
			w[i].Mul(w[i], inv)
		}
		basis = append(basis, row{w, pivot})
	}
	queue := [][]*big.Rat{init}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		w, zero := reduce(v)
		if zero {
			continue
		}
		if dot(v, fin).Sign() != 0 {
			return false
		}
		addToBasis(w)
		for sym := 0; sym < numSymbols; sym++ {
			queue = append(queue, step(v, sym))
		}
	}
	return true
}
