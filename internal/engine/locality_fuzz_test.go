package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/regexformula"
)

// fuzzSplitterFormula derives a splitter formula from the fuzzer's
// bytes. The families mix provably local splitters (separator-driven,
// with fuzzed separator sets — these exercise the contract under test),
// known-non-local ones (suffix-conditioned, first-block-skipping — the
// procedure must keep refusing them), and fully random formulas from
// the same generator shape the core differential tests use (anything
// can come out; almost all of it is unprovable, and any instance the
// procedure does prove is held to the same soundness bar).
func fuzzSplitterFormula(mode uint8, c1, c2 byte, seed int64) string {
	seps := []string{".", ";", "!", "\\n", " ", "a", "b"}
	s1, s2 := seps[int(c1)%len(seps)], seps[int(c2)%len(seps)]
	sep := s1
	if s1 != s2 {
		sep = s1 + s2
	}
	blockStar := "(x{[^" + sep + "]*})"
	blockPlus := "(x{[^" + sep + "]+})"
	switch mode % 7 {
	case 0: // sentence-style blocks between fuzzed separators: local
		return blockStar + "([" + sep + "][^" + sep + "]*)*|" +
			"[^" + sep + "]*([" + sep + "][^" + sep + "]*)*[" + sep + "]" + blockStar + "([" + sep + "][^" + sep + "]*)*"
	case 1: // token-style maximal nonempty runs: local
		return blockPlus + "([" + sep + "].*)?|.*[" + sep + "]" + blockPlus + "([" + sep + "].*)?"
	case 2: // first block only — one span per document: trivially local
		return blockStar + "([" + sep + "][^" + sep + "]*)*"
	case 3: // every block except the first: disjoint but NOT local
		return "[^" + sep + "]*[" + sep + "]([^" + sep + "]*[" + sep + "])*" + blockStar + "([" + sep + "][^" + sep + "]*)*"
	case 4: // blocks valid only on documents ending in '!': NOT local
		b := "[^" + sep + "!]"
		w := "(x{" + b + "*})"
		return w + "([" + sep + "]" + b + "*)*!|" + b + "*([" + sep + "]" + b + "*)*[" + sep + "]" + w + "([" + sep + "]" + b + "*)*!"
	case 5: // token-style with an extra non-separator excluded byte: NOT
		// local (the excluded byte kills post-open runs)
		return "(x{[^q" + sep + "]+})([" + sep + "].*)?|.*[" + sep + "](x{[^q" + sep + "]+})([" + sep + "].*)?"
	default: // fully random unary formula
		return randomSplitterFormula(rand.New(rand.NewSource(seed)))
	}
}

// randomSplitterFormula mirrors core's randomUnaryFormula: a random
// regex with exactly one capture, over a tiny alphabet plus contexts.
func randomSplitterFormula(rng *rand.Rand) string {
	var piece func(d int) string
	piece = func(d int) string {
		if d == 0 {
			return string(rune('a' + rng.Intn(2)))
		}
		switch rng.Intn(5) {
		case 0:
			return piece(d-1) + piece(d-1)
		case 1:
			return "(" + piece(d-1) + ")*"
		case 2:
			return "(" + piece(d-1) + "|" + piece(d-1) + ")"
		default:
			return string(rune('a' + rng.Intn(2)))
		}
	}
	ctx := []string{".*", "a*", "(a|b)*", "", "[^b]*"}
	return ctx[rng.Intn(len(ctx))] + "(x{" + piece(2) + "})" + ctx[rng.Intn(len(ctx))]
}

// chunkedSegments drives the engine's real carry-over segmenter over doc
// in fixed n-byte chunks.
func chunkedSegments(s *core.Splitter, doc string, n int) []parallel.Segment {
	g := newSegmenter(s)
	var out []parallel.Segment
	for lo := 0; lo < len(doc); lo += n {
		hi := lo + n
		if hi > len(doc) {
			hi = len(doc)
		}
		out = append(out, g.feed([]byte(doc[lo:hi]))...)
	}
	return append(out, g.flush()...)
}

// FuzzLocalityVsBuffered is the soundness contract of the locality
// decision procedure: whenever IsLocal proves a fuzzed splitter local,
// the engine's incremental segmenter must produce byte-identical
// segmentations at adversarial chunk sizes — 1 (every boundary lands
// mid-segment), 7 (misaligned with everything) and 4096 (typically one
// chunk) — on fuzzed documents. A failure here means a "local" verdict
// admitted a splitter that incremental streaming mis-segments, i.e. a
// hole in the procedure's proof, not a flaky test.
func FuzzLocalityVsBuffered(f *testing.F) {
	f.Add(uint8(0), byte(0), byte(1), int64(1), "one. two! three\nfour.")
	f.Add(uint8(1), byte(4), byte(3), int64(2), "a b  c\nd ")
	f.Add(uint8(2), byte(1), byte(1), int64(3), "a;b;;c")
	f.Add(uint8(3), byte(0), byte(0), int64(4), "a.b.c.d")
	f.Add(uint8(4), byte(0), byte(2), int64(5), "ab.cd!e")
	f.Add(uint8(5), byte(4), byte(4), int64(6), "a qb c")
	f.Add(uint8(6), byte(5), byte(6), int64(7), "abba\x00\xffb")
	f.Fuzz(func(t *testing.T, mode uint8, c1, c2 byte, seed int64, doc string) {
		if len(doc) > 1<<12 {
			doc = doc[:1<<12]
		}
		src := fuzzSplitterFormula(mode, c1, c2, seed)
		auto, err := regexformula.Compile(src)
		if err != nil || auto.Arity() != 1 {
			t.Skip()
		}
		s, err := core.NewSplitter(auto)
		if err != nil {
			t.Skip()
		}
		local, err := s.IsLocal(1 << 14)
		if err != nil || !local {
			// Unproven or over budget: the engine would buffer; nothing to
			// verify. (Known-local families are pinned by the core table
			// tests, so the fuzz cannot silently degenerate to all-skips.)
			return
		}
		want := parallel.SegmentsOf(doc, s.Split(doc))
		for _, n := range []int{1, 7, 4096} {
			got := chunkedSegments(s, doc, n)
			if len(got) != len(want) {
				t.Fatalf("chunk=%d: %d segments, want %d\nsplitter: %s\ndoc: %q\ngot:  %v\nwant: %v",
					n, len(got), len(want), src, doc, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("chunk=%d: segment %d = %+v, want %+v\nsplitter: %s\ndoc: %q",
						n, i, got[i], want[i], src, doc)
				}
			}
		}
	})
}

// TestLocalityFuzzCorpusSmoke replays the seed corpus shapes against a
// deterministic document sweep, so `go test` (without -fuzz) still
// exercises every generator family end to end.
func TestLocalityFuzzCorpusSmoke(t *testing.T) {
	docs := []string{
		"", ".", "!", "one. two! three\nfour.", "a b  c\nd ", "a;b;;c",
		"a.b.c.d", "ab.cd!e", "a qb c", strings.Repeat("word. ", 40),
	}
	proved := 0
	for mode := uint8(0); mode < 7; mode++ {
		for _, c := range []byte{0, 1, 4} {
			src := fuzzSplitterFormula(mode, c, c+1, int64(mode)*31+int64(c))
			auto, err := regexformula.Compile(src)
			if err != nil || auto.Arity() != 1 {
				continue
			}
			s, err := core.NewSplitter(auto)
			if err != nil {
				continue
			}
			local, err := s.IsLocal(1 << 14)
			if err != nil || !local {
				continue
			}
			proved++
			for _, doc := range docs {
				want := parallel.SegmentsOf(doc, s.Split(doc))
				for _, n := range []int{1, 7, 4096} {
					got := chunkedSegments(s, doc, n)
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("mode=%d chunk=%d doc=%q splitter=%s:\ngot:  %v\nwant: %v", mode, n, doc, src, got, want)
					}
				}
			}
		}
	}
	if proved < 6 {
		t.Fatalf("only %d fuzz-shape splitters were proven local; the generator lost its local families", proved)
	}
}
