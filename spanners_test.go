package spanners

import (
	"testing"

	"repro/internal/library"
)

func TestFacadeQuickstart(t *testing.T) {
	p := MustCompile(`(.*[ .!?\n])?bad (y{[a-z]+})(([^a-z].*)?|)`)
	s := WrapSplitter(library.Sentences())
	ok, err := SelfSplittable(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("sentiment extractor must be self-splittable by sentences")
	}
	doc := "good tea.really bad coffee.bad service!fine."
	direct := p.Eval(doc)
	par := ParallelEval(p, s, doc, 4)
	if !par.Equal(direct) {
		t.Fatalf("parallel evaluation differs: %v vs %v", par, direct)
	}
	if direct.Len() != 2 {
		t.Fatalf("expected 2 extractions, got %v", direct)
	}
}

func TestFacadeSplitCorrectAndWitness(t *testing.T) {
	p := MustCompile(".*y{ab}.*")
	ps := MustCompile("y{ab}")
	tokens := MustCompileSplitter(".*x{.}.*")
	ok, err := SplitCorrect(p, ps, tokens)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("2-byte spans must not split by unit tokens")
	}
	ok, witness, err := SplitCorrectWitness(p, ps, tokens)
	if err != nil || ok {
		t.Fatalf("expected failure with witness, got %v %v", ok, err)
	}
	if len(witness) == 0 {
		t.Fatal("expected a nonempty witness document")
	}
	grams := MustCompileSplitter(".*x{..}.*")
	ok, err = SplitCorrect(p, ps, grams)
	if err != nil || !ok {
		t.Fatalf("2-byte spans must split by 2-grams: %v %v", ok, err)
	}
}

func TestFacadeSplittable(t *testing.T) {
	p := MustCompile(".*y{a}.*")
	s := MustCompileSplitter(".*x{.}.*")
	ok, witness, err := Splittable(p, s)
	if err != nil || !ok {
		t.Fatalf("Splittable: %v %v", ok, err)
	}
	okCorrect, err := SplitCorrect(p, witness, s)
	if err != nil || !okCorrect {
		t.Fatalf("witness must be split-correct: %v %v", okCorrect, err)
	}
	cov, err := CoverCondition(p, s)
	if err != nil || !cov {
		t.Fatalf("cover condition must hold: %v %v", cov, err)
	}
}

func TestFacadeAlgebraAndContainment(t *testing.T) {
	a := MustCompile("x{a}.*")
	b := MustCompile(".*x{a}.*")
	ok, err := b.Contains(a)
	if err != nil || !ok {
		t.Fatalf("b must contain a: %v %v", ok, err)
	}
	u, err := a.Union(MustCompile(".*x{a}"))
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Eval("aba"); got.Len() != 2 {
		t.Fatalf("union eval: %v", got)
	}
	j, err := a.Join(MustCompile("x{.}.*"))
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Eval("ab"); got.Len() != 1 {
		t.Fatalf("join eval: %v", got)
	}
	m, err := MustCompile(".*x{.}.*").Minus(MustCompile(".*x{a}.*"))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Eval("ab"); got.Len() != 1 || got.Tuples[0][0].In("ab") != "b" {
		t.Fatalf("minus eval: %v", got)
	}
	d, err := b.Determinize()
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsDeterministic() {
		t.Fatal("Determinize must produce a deterministic spanner")
	}
	eq, err := b.EquivalentTo(d)
	if err != nil || !eq {
		t.Fatalf("determinization must preserve the spanner: %v %v", eq, err)
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := Compile("(unclosed"); err == nil {
		t.Fatal("bad formula must fail")
	}
	if _, err := CompileSplitter("x{a}y{b}"); err == nil {
		t.Fatal("binary splitter must fail")
	}
	if _, err := SplitterFrom(MustCompile("abc")); err == nil {
		t.Fatal("Boolean splitter must fail")
	}
}
