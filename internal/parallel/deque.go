package parallel

import "sync"

// chunk is the executor's unit of scheduling: a run of segments bound
// for one destination relation. dest indexes the executor's result
// slice (always 0 for the single-document evaluators; the document
// index for the collection evaluators).
type chunk struct {
	dest int
	segs []Segment
}

// deque is a work-stealing deque of chunks in the Blumofe–Leiserson
// shape: the owning worker pushes and pops at the back (LIFO, so the
// chunk it just split off stays cache-warm), thieves take from the
// front (FIFO, the oldest — and for split chunks, largest-remaining —
// work, which minimizes how often a thief has to come back).
//
// The implementation is lightly locked rather than lock-free: one
// uncontended mutex acquisition per chunk (not per segment) is noise
// next to a segment evaluation, steals are rare by construction, and —
// unlike the classic version with its benign racy buffer reads — every
// operation is exactly synchronized, so the race detector stays
// meaningful for the code that matters (the evaluation core the workers
// share).
type deque struct {
	mu   sync.Mutex
	buf  []chunk
	head int // index of the oldest (stealable) chunk; len(buf) is the back
}

// push appends a chunk at the back. Only the owning worker pushes.
func (d *deque) push(c chunk) {
	d.mu.Lock()
	d.buf = append(d.buf, c)
	d.mu.Unlock()
}

// pop removes the newest chunk (back). Only the owning worker pops.
func (d *deque) pop() (chunk, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.buf) {
		d.reset()
		return chunk{}, false
	}
	n := len(d.buf) - 1
	c := d.buf[n]
	d.buf[n] = chunk{} // release the segment slice to the GC
	d.buf = d.buf[:n]
	if d.head == len(d.buf) {
		d.reset()
	}
	return c, true
}

// steal removes the oldest chunk (front). Any worker may steal.
func (d *deque) steal() (chunk, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.buf) {
		return chunk{}, false
	}
	c := d.buf[d.head]
	d.buf[d.head] = chunk{}
	d.head++
	return c, true
}

// size reports the number of queued chunks (diagnostics and tests).
func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.buf) - d.head
}

// reset reclaims the consumed prefix once the deque drains, so a
// long-lived worker does not accumulate an ever-growing buffer of dead
// slots. Callers hold d.mu.
func (d *deque) reset() {
	d.buf = d.buf[:0]
	d.head = 0
}
