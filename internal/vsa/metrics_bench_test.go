package vsa_test

import (
	"strings"
	"testing"

	"repro/internal/regexformula"
	"repro/internal/vsa"
)

// Instrumentation-overhead check for the evaluation core: the same
// large-document evaluation with and without an attached EvalMetrics.
// Run interleaved (-count N) and compare; the acceptance bar for the
// observability layer is ≤ 2%.

func benchEvalMetrics(b *testing.B, attach bool) {
	a := regexformula.MustCompile(".*[ .]y{bad ([a-z]+)}[ .].*|y{bad ([a-z]+)}[ .].*")
	a.Prepare()
	if attach {
		a.SetEvalMetrics(&vsa.EvalMetrics{})
	}
	doc := strings.Repeat("one bad word in some plain filler text. ", 1<<12)
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Eval(doc)
	}
}

func BenchmarkEvalMetricsOff(b *testing.B) { benchEvalMetrics(b, false) }
func BenchmarkEvalMetricsOn(b *testing.B)  { benchEvalMetrics(b, true) }
