package algebra

import (
	"testing"

	"repro/internal/regexformula"
	"repro/internal/span"
	"repro/internal/vsa"
)

func docs(sigma string, maxLen int) []string {
	out := []string{""}
	frontier := []string{""}
	for l := 0; l < maxLen; l++ {
		var next []string
		for _, d := range frontier {
			for i := 0; i < len(sigma); i++ {
				next = append(next, d+string(sigma[i]))
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

func mustEval(t *testing.T, a *vsa.Automaton, d string, vars []string) *span.Relation {
	t.Helper()
	rel := a.Eval(d)
	aligned, err := rel.Project(vars)
	if err != nil {
		t.Fatal(err)
	}
	return aligned
}

func TestUnionAgainstRelations(t *testing.T) {
	pairs := [][2]string{
		{"x{a}.*", ".*x{b}"},
		{"x{ab}", "x{a}b|a(x{b})"},
		{".*x{a}.*", ".*x{.}.*"},
	}
	for _, p := range pairs {
		a := regexformula.MustCompile(p[0])
		b := regexformula.MustCompile(p[1])
		u, err := Union(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := u.Validate(); err != nil {
			t.Fatalf("union invalid: %v", err)
		}
		for _, d := range docs("ab", 5) {
			want := a.Eval(d)
			if err := want.Union(mustEval(t, b, d, want.Vars)); err != nil {
				t.Fatal(err)
			}
			if !mustEval(t, u, d, want.Vars).Equal(want) {
				t.Fatalf("union(%s,%s) wrong on %q", p[0], p[1], d)
			}
		}
	}
}

func TestUnionRejectsIncompatible(t *testing.T) {
	a := regexformula.MustCompile("x{a}")
	b := regexformula.MustCompile("y{a}")
	if _, err := Union(a, b); err == nil {
		t.Fatal("union of incompatible spanners must fail")
	}
}

func TestProjectAgainstRelations(t *testing.T) {
	p := regexformula.MustCompile(".*x{a}y{b*}.*")
	proj, err := Project(p, []string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	if err := proj.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, d := range docs("ab", 5) {
		want, err := p.Eval(d).Project([]string{"y"})
		if err != nil {
			t.Fatal(err)
		}
		if !proj.Eval(d).Equal(want) {
			t.Fatalf("projection wrong on %q", d)
		}
	}
	if _, err := Project(p, []string{"z"}); err == nil {
		t.Fatal("projection onto unknown variable must fail")
	}
}

func TestJoinAgainstRelations(t *testing.T) {
	cases := [][2]string{
		{".*x{a}y{.*}", ".*x{a}.*"},      // shared x
		{".*x{a}.*", ".*y{b}.*"},         // no shared variables
		{".*x{.}y{.}.*", ".*y{.}z{.}.*"}, // chain x-y-z
		{"x{.*}", "x{a*}"},               // shared whole-document var
	}
	for _, c := range cases {
		a := regexformula.MustCompile(c[0])
		b := regexformula.MustCompile(c[1])
		j, err := Join(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Validate(); err != nil {
			t.Fatalf("join invalid: %v", err)
		}
		for _, d := range docs("ab", 4) {
			want := a.Eval(d).Join(b.Eval(d))
			got := mustEval(t, j, d, want.Vars)
			if !got.Equal(want) {
				t.Fatalf("join(%s,%s) on %q: got %v, want %v", c[0], c[1], d, got, want)
			}
		}
	}
}

func TestJoinExample71Shape(t *testing.T) {
	// A miniature of Example 7.1's three-way join: α(x,y) ⋈ P1(x,x') ⋈
	// P2(x',y') — here small extractors over {a,b}.
	alpha := regexformula.MustCompile(".*x{a}.*y{b}.*")
	p1 := regexformula.MustCompile(".*x{a}.*xp{a}.*|.*xp{a}.*x{a}.*|.*x{a}.*")
	j, err := Join(alpha, p1)
	if err != nil {
		t.Fatal(err)
	}
	d := "aabb"
	rel := j.Eval(d)
	// Every joined tuple agrees with alpha on x and y.
	alphaRel := alpha.Eval(d)
	projected, err := rel.Project([]string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range projected.Tuples {
		if !alphaRel.Has(tp) {
			t.Fatalf("join produced tuple %v outside α", tp)
		}
	}
}

func TestConcatLang(t *testing.T) {
	lang := regexformula.MustCompile("a*")
	p := regexformula.MustCompile("x{b}")
	lp, err := ConcatLang(lang, p, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := lp.Validate(); err != nil {
		t.Fatal(err)
	}
	// a* · x{b} over aab selects exactly [3,4⟩.
	rel := lp.Eval("aab")
	want := span.NewRelation("x")
	want.Add(span.Tuple{span.New(3, 4)})
	if !rel.Equal(want) {
		t.Fatalf("a*·x{b} on aab = %v, want %v", rel, want)
	}
	if lp.Eval("ba").Len() != 0 {
		t.Fatal("a*·x{b} must reject ba")
	}
	pl, err := ConcatLang(lang, p, false)
	if err != nil {
		t.Fatal(err)
	}
	rel = pl.Eval("baa")
	want = span.NewRelation("x")
	want.Add(span.Tuple{span.New(1, 2)})
	if !rel.Equal(want) {
		t.Fatalf("x{b}·a* on baa = %v, want %v", rel, want)
	}
	// Equivalence with the direct formula.
	direct := regexformula.MustCompile("a*(x{b})")
	eq, err := vsa.Equivalent(lp, direct, 0)
	if err != nil || !eq {
		t.Fatalf("a*·x{b} must equal a*(x{b}): %v %v", eq, err)
	}
}

func TestDifferenceAgainstRelations(t *testing.T) {
	cases := [][2]string{
		{".*x{.}.*", ".*x{a}.*"}, // all unit spans minus a-spans
		{"x{.*}", "x{a*}"},
		{".*x{ab}.*", ".*x{ab}.*"}, // empty difference
	}
	for _, c := range cases {
		a := regexformula.MustCompile(c[0])
		b := regexformula.MustCompile(c[1])
		diff, err := Difference(a, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := diff.Validate(); err != nil {
			t.Fatalf("difference invalid: %v", err)
		}
		for _, d := range docs("ab", 5) {
			ra := a.Eval(d)
			rb := mustEval(t, b, d, ra.Vars)
			want := span.NewRelation(ra.Vars...)
			for _, tp := range ra.Tuples {
				if !rb.Has(tp) {
					want.Add(tp)
				}
			}
			got := mustEval(t, diff, d, ra.Vars)
			if !got.Equal(want) {
				t.Fatalf("difference(%s,%s) on %q: got %v, want %v", c[0], c[1], d, got, want)
			}
		}
	}
}

func TestRestrictAndDomain(t *testing.T) {
	p := regexformula.MustCompile(".*x{b}.*")
	lang := regexformula.MustCompile("a.*")
	r, err := Restrict(p, lang)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs("ab", 5) {
		want := p.Eval(d)
		if len(d) == 0 || d[0] != 'a' {
			want = span.NewRelation("x")
		}
		if !r.Eval(d).Equal(want) {
			t.Fatalf("restrict wrong on %q", d)
		}
	}
	dom := DomainLanguage(p)
	if dom.Arity() != 0 {
		t.Fatal("domain language must be Boolean")
	}
	for _, d := range docs("ab", 5) {
		if dom.EvalBool(d) != (p.Eval(d).Len() > 0) {
			t.Fatalf("domain language wrong on %q", d)
		}
	}
}

func TestLanguageOf(t *testing.T) {
	p := regexformula.MustCompile("a*b")
	n := LanguageOf(p)
	if !n.Accepts([]int{'a', 'a', 'b'}) || n.Accepts([]int{'b', 'a'}) {
		t.Fatal("LanguageOf broken")
	}
}

// TestJoinCommutative verifies commutativity of ⋈ (used implicitly by
// Section 7.1's well-definedness remark).
func TestJoinCommutative(t *testing.T) {
	a := regexformula.MustCompile(".*x{a}y{.}.*")
	b := regexformula.MustCompile(".*y{b}.*")
	ab, err := Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Join(b, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs("ab", 4) {
		ra := mustEval(t, ab, d, []string{"x", "y"})
		rb := mustEval(t, ba, d, []string{"x", "y"})
		if !ra.Equal(rb) {
			t.Fatalf("join not commutative on %q", d)
		}
	}
}
