// Package admission implements the serving daemon's overload-protection
// front door: a token-based concurrency limiter with a bounded FIFO wait
// queue and explicit load shedding.
//
// The model is the classic admission-control shape: at most Tokens
// requests execute concurrently; up to Queue more wait in arrival order;
// everything beyond that is shed immediately with a typed error the
// daemon maps to HTTP 429 + Retry-After. A queued request is also shed
// when its wait would exceed its budget — the smaller of the limiter's
// MaxWait and the time remaining until the request's own context
// deadline — so a request never burns its whole deadline standing in
// line only to time out mid-evaluation. Shedding early and cheaply is
// the point: under an open-loop arrival rate above capacity the queue
// bounds the latency of every admitted request (wait ≤ Queue/Tokens ×
// mean service time), and the excess is rejected in microseconds instead
// of degrading everyone (cf. the CoDel/SEDA lineage of bounded queues).
//
// The limiter is instrumented with the same dependency-free metric
// primitives as the rest of the stack (internal/obs): queue-depth and
// in-use gauges, admitted/shed counters and a queue-age histogram, all
// registerable into a service's registry with Register.
package admission

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrQueueFull is returned by Acquire when the wait queue is at
// capacity: the request is shed without waiting. The daemon maps it to
// HTTP 429.
var ErrQueueFull = errors.New("admission: wait queue full")

// ErrQueueAged is returned by Acquire when a queued request's wait
// exceeded its budget (MaxWait, or the context deadline's remainder if
// smaller) before a token freed up. Like ErrQueueFull it maps to 429 —
// the request was never admitted, so retrying later is sound.
var ErrQueueAged = errors.New("admission: queue wait exceeded the request's budget")

// Config tunes a Limiter. The zero value selects GOMAXPROCS tokens, a
// 4×tokens queue and a 500 ms wait cap.
type Config struct {
	// Tokens is the number of requests allowed to execute concurrently.
	// <= 0 selects runtime.GOMAXPROCS(0).
	Tokens int
	// Queue is the maximum number of requests waiting for a token; an
	// arrival beyond it is shed with ErrQueueFull. 0 selects 4×Tokens;
	// negative disables waiting entirely (admit or shed, never queue).
	Queue int
	// MaxWait caps the time a request may spend queued before it is shed
	// with ErrQueueAged. A request whose context deadline is nearer than
	// MaxWait gets the smaller budget. 0 selects 500 ms.
	MaxWait time.Duration
}

func (c Config) withDefaults() Config {
	if c.Tokens <= 0 {
		c.Tokens = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.Queue == 0:
		c.Queue = 4 * c.Tokens
	case c.Queue < 0:
		c.Queue = 0
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 500 * time.Millisecond
	}
	return c
}

// waiter is one queued Acquire. granted and dead are guarded by the
// limiter's mutex; the channel is closed exactly once, on grant.
type waiter struct {
	ch      chan struct{}
	granted bool
	dead    bool // abandoned by cancellation/ageing; skip on grant
}

// Limiter is a token-based concurrency limiter with a bounded FIFO wait
// queue. It is safe for concurrent use.
type Limiter struct {
	cfg Config

	mu    sync.Mutex
	inUse int       // tokens held by admitted requests
	queue []*waiter // FIFO; dead entries are skipped and dropped on pop

	// serviceNS is an EWMA of admitted requests' token-hold time,
	// feeding the Retry-After hint. Stored as nanoseconds.
	serviceNS atomic.Int64

	// Metrics. Depth and InUseGauge mirror the queue/token state;
	// QueueAge records every completed wait (granted or shed).
	Admitted   obs.Counter
	ShedFull   obs.Counter
	ShedAged   obs.Counter
	ShedCancel obs.Counter // cancelled while queued, or granted-but-gone
	Depth      obs.Gauge
	InUseGauge obs.Gauge
	DepthPeak  obs.Gauge // high-water queue depth
	QueueAge   obs.Histogram
}

// New returns a limiter for the given configuration.
func New(cfg Config) *Limiter {
	return &Limiter{cfg: cfg.withDefaults()}
}

// Tokens reports the configured concurrency limit.
func (l *Limiter) Tokens() int { return l.cfg.Tokens }

// QueueCap reports the configured wait-queue capacity.
func (l *Limiter) QueueCap() int { return l.cfg.Queue }

// Acquire admits the request or sheds it. On success it returns a
// release function that MUST be called exactly once when the request
// finishes; on failure the error is ErrQueueFull, ErrQueueAged, or the
// context's error if the caller went away while queued. A request is
// never both shed and admitted: an error return guarantees the token
// was not consumed (or was returned before the error), so the caller
// can answer 429 without double-serving.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	l.mu.Lock()
	if l.inUse < l.cfg.Tokens {
		l.inUse++
		l.InUseGauge.Set(int64(l.inUse))
		l.mu.Unlock()
		l.Admitted.Inc()
		return l.releaseFunc(time.Now()), nil
	}
	if len(l.queue) >= l.cfg.Queue {
		l.mu.Unlock()
		l.ShedFull.Inc()
		return nil, ErrQueueFull
	}
	w := &waiter{ch: make(chan struct{})}
	l.queue = append(l.queue, w)
	depth := int64(len(l.queue))
	l.Depth.Set(depth)
	l.DepthPeak.Max(depth)
	l.mu.Unlock()

	budget := l.cfg.MaxWait
	if d, ok := ctx.Deadline(); ok {
		if until := time.Until(d); until < budget {
			budget = until
		}
	}
	timer := time.NewTimer(budget)
	defer timer.Stop()
	enq := time.Now()

	select {
	case <-w.ch:
		l.QueueAge.RecordDuration(time.Since(enq))
		l.Admitted.Inc()
		return l.releaseFunc(time.Now()), nil
	case <-timer.C:
		if l.abandon(w) {
			l.QueueAge.RecordDuration(time.Since(enq))
			l.ShedAged.Inc()
			return nil, ErrQueueAged
		}
		// The grant raced the timer and won: the token is ours.
		l.QueueAge.RecordDuration(time.Since(enq))
		l.Admitted.Inc()
		return l.releaseFunc(time.Now()), nil
	case <-ctx.Done():
		l.QueueAge.RecordDuration(time.Since(enq))
		if l.abandon(w) {
			l.ShedCancel.Inc()
			return nil, ctx.Err()
		}
		// Granted concurrently with the cancellation: the caller is gone,
		// so hand the token straight back and report the cancellation.
		l.ShedCancel.Inc()
		l.release(time.Now())
		return nil, ctx.Err()
	}
}

// abandon marks a queued waiter dead. It reports false when the waiter
// was already granted — in that case the caller owns a token and must
// either use it or release it.
func (l *Limiter) abandon(w *waiter) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w.granted {
		return false
	}
	w.dead = true
	l.Depth.Set(int64(l.liveDepthLocked()))
	return true
}

// liveDepthLocked counts non-dead waiters. Dead entries are dropped
// lazily on grant, so the slice may briefly hold them.
func (l *Limiter) liveDepthLocked() int {
	n := 0
	for _, w := range l.queue {
		if !w.dead {
			n++
		}
	}
	return n
}

// releaseFunc wraps release with a sync.Once so a double call cannot
// mint tokens.
func (l *Limiter) releaseFunc(admitted time.Time) func() {
	var once sync.Once
	return func() { once.Do(func() { l.release(admitted) }) }
}

// release returns a token: the oldest live waiter inherits it directly
// (FIFO — the token never becomes free while someone is queued), or the
// in-use count drops.
func (l *Limiter) release(admitted time.Time) {
	l.observeService(time.Since(admitted))
	l.mu.Lock()
	for len(l.queue) > 0 {
		w := l.queue[0]
		l.queue = l.queue[1:]
		if w.dead {
			continue
		}
		w.granted = true
		close(w.ch)
		l.Depth.Set(int64(l.liveDepthLocked()))
		l.mu.Unlock()
		return
	}
	l.inUse--
	l.InUseGauge.Set(int64(l.inUse))
	l.Depth.Set(0)
	l.mu.Unlock()
}

// observeService folds one admitted request's token-hold time into the
// EWMA behind the Retry-After hint (α = 1/8, the TCP RTT estimator's).
func (l *Limiter) observeService(d time.Duration) {
	if d < 0 {
		d = 0
	}
	for {
		old := l.serviceNS.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old + (int64(d)-old)/8
		}
		if l.serviceNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// RetryAfter estimates how long a shed client should back off before
// retrying: the time for the current queue plus one more request to
// drain through the token pool, clamped to [1 s, 60 s] — coarse on
// purpose, since Retry-After carries integer seconds.
func (l *Limiter) RetryAfter() time.Duration {
	l.mu.Lock()
	depth := l.liveDepthLocked()
	tokens := l.cfg.Tokens
	l.mu.Unlock()
	svc := time.Duration(l.serviceNS.Load())
	if svc <= 0 {
		svc = 50 * time.Millisecond
	}
	d := time.Duration(depth+1) * svc / time.Duration(tokens)
	if d < time.Second {
		d = time.Second
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// Stats is a monitoring snapshot of the limiter.
type Stats struct {
	Tokens     int    `json:"tokens"`
	InUse      int64  `json:"in_use"`
	QueueCap   int    `json:"queue_cap"`
	QueueDepth int64  `json:"queue_depth"`
	QueuePeak  int64  `json:"queue_peak"`
	Admitted   uint64 `json:"admitted"`
	ShedFull   uint64 `json:"shed_full"`
	ShedAged   uint64 `json:"shed_aged"`
	ShedCancel uint64 `json:"shed_cancel"`
	// Queue-age latency percentiles over every completed wait, granted
	// or shed (milliseconds).
	QueueAgeP50MS float64 `json:"queue_age_p50_ms"`
	QueueAgeP99MS float64 `json:"queue_age_p99_ms"`
	// RetryAfterSec is the current back-off hint.
	RetryAfterSec float64 `json:"retry_after_sec"`
}

// Snapshot reads the limiter's counters in one pass.
func (l *Limiter) Snapshot() Stats {
	const msPerNS = 1e-6
	age := l.QueueAge.Snapshot()
	return Stats{
		Tokens:        l.cfg.Tokens,
		InUse:         l.InUseGauge.Load(),
		QueueCap:      l.cfg.Queue,
		QueueDepth:    l.Depth.Load(),
		QueuePeak:     l.DepthPeak.Load(),
		Admitted:      l.Admitted.Load(),
		ShedFull:      l.ShedFull.Load(),
		ShedAged:      l.ShedAged.Load(),
		ShedCancel:    l.ShedCancel.Load(),
		QueueAgeP50MS: age.Quantile(0.50) * msPerNS,
		QueueAgeP99MS: age.Quantile(0.99) * msPerNS,
		RetryAfterSec: l.RetryAfter().Seconds(),
	}
}

// Register binds the limiter's series into a metrics registry under the
// spand_admission_ prefix.
func (l *Limiter) Register(r *obs.Registry) {
	r.BindCounter("spand_admission_admitted_total", "requests admitted past the limiter", &l.Admitted)
	r.BindCounter("spand_admission_shed_queue_full_total", "requests shed because the wait queue was full", &l.ShedFull)
	r.BindCounter("spand_admission_shed_queue_aged_total", "queued requests shed because their wait budget ran out", &l.ShedAged)
	r.BindCounter("spand_admission_shed_cancelled_total", "queued requests abandoned by client cancellation", &l.ShedCancel)
	r.BindGauge("spand_admission_queue_depth", "requests currently waiting for a token", &l.Depth)
	r.BindGauge("spand_admission_queue_depth_peak", "deepest wait queue seen", &l.DepthPeak)
	r.BindGauge("spand_admission_in_use", "tokens currently held", &l.InUseGauge)
	r.BindDurationHistogram("spand_admission_queue_age_seconds", "time spent waiting for a token", &l.QueueAge)
	r.GaugeFunc("spand_admission_retry_after_seconds", "current Retry-After back-off hint", func() float64 {
		return l.RetryAfter().Seconds()
	})
}
