// Package automata implements the classical-automata substrate used by the
// spanner decision procedures: ε-free NFAs over an interned finite
// alphabet, products, subset construction, containment (general and
// deterministic), unambiguity testing, and two polynomial-time containment
// procedures for unambiguous automata — accepting-path counting per length
// (in the style of Stearns–Hunt) and Tzeng's vector-basis equivalence test
// for weighted automata. These are the engines behind Theorem 4.3,
// Lemma 5.6 and Theorem 5.7 of the paper.
package automata

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Edge is a transition on an interned symbol.
type Edge struct {
	Sym int
	To  int
}

// NFA is an ε-free nondeterministic finite automaton over symbols
// 0..NumSymbols-1. Multiple start states are allowed.
type NFA struct {
	NumSymbols int
	Starts     []int
	Final      []bool
	Adj        [][]Edge
}

// New returns an empty NFA over an alphabet of the given size.
func New(numSymbols int) *NFA {
	return &NFA{NumSymbols: numSymbols}
}

// AddState adds a state and returns its id.
func (a *NFA) AddState(final bool) int {
	a.Final = append(a.Final, final)
	a.Adj = append(a.Adj, nil)
	return len(a.Final) - 1
}

// AddStart marks q as a start state.
func (a *NFA) AddStart(q int) { a.Starts = append(a.Starts, q) }

// AddEdge adds the transition q --sym--> to.
func (a *NFA) AddEdge(q, sym, to int) {
	if sym < 0 || sym >= a.NumSymbols {
		panic(fmt.Sprintf("automata: symbol %d out of range [0,%d)", sym, a.NumSymbols))
	}
	a.Adj[q] = append(a.Adj[q], Edge{sym, to})
}

// Len returns the number of states.
func (a *NFA) Len() int { return len(a.Final) }

// NumEdges returns the total number of transitions.
func (a *NFA) NumEdges() int {
	n := 0
	for _, es := range a.Adj {
		n += len(es)
	}
	return n
}

// DedupeEdges removes duplicate transitions in place. Counting-based
// procedures call this to ensure set semantics of the transition relation.
func (a *NFA) DedupeEdges() {
	for q, es := range a.Adj {
		if len(es) < 2 {
			continue
		}
		sort.Slice(es, func(i, j int) bool {
			if es[i].Sym != es[j].Sym {
				return es[i].Sym < es[j].Sym
			}
			return es[i].To < es[j].To
		})
		out := es[:0]
		for i, e := range es {
			if i == 0 || e != es[i-1] {
				out = append(out, e)
			}
		}
		a.Adj[q] = out
	}
}

// Accepts reports whether the automaton accepts the given word, by direct
// state-set simulation over integer-indexed sparse sets. The interned
// symbols are already the byte-class-compressed alphabet (each symbol is
// one alphabet atom; see internal/alphabet), so per position the loop is a
// linear scan over the frontier's edges with no hashing and no per-symbol
// allocation.
func (a *NFA) Accepts(word []int) bool {
	n := a.Len()
	cur := make([]int, 0, len(a.Starts))
	next := make([]int, 0, len(a.Starts))
	mark := make([]bool, n)
	for _, s := range a.Starts {
		if !mark[s] {
			mark[s] = true
			cur = append(cur, s)
		}
	}
	for _, q := range cur {
		mark[q] = false
	}
	for _, sym := range word {
		next = next[:0]
		for _, q := range cur {
			for _, e := range a.Adj[q] {
				if e.Sym == sym && !mark[e.To] {
					mark[e.To] = true
					next = append(next, e.To)
				}
			}
		}
		for _, q := range next {
			mark[q] = false
		}
		if len(next) == 0 {
			return false
		}
		cur, next = next, cur
	}
	for _, q := range cur {
		if a.Final[q] {
			return true
		}
	}
	return false
}

// reachable returns the set of states reachable from the start states.
func (a *NFA) reachable() []bool {
	seen := make([]bool, a.Len())
	stack := append([]int(nil), a.Starts...)
	for _, s := range stack {
		seen[s] = true
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range a.Adj[q] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// coReachable returns the set of states from which a final state is
// reachable.
func (a *NFA) coReachable() []bool {
	rev := make([][]int, a.Len())
	for q, es := range a.Adj {
		for _, e := range es {
			rev[e.To] = append(rev[e.To], q)
		}
	}
	seen := make([]bool, a.Len())
	var stack []int
	for q, f := range a.Final {
		if f {
			seen[q] = true
			stack = append(stack, q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[q] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// Trim returns an equivalent automaton restricted to accessible and
// co-accessible states (useful states). The result may have no states.
func (a *NFA) Trim() *NFA {
	reach := a.reachable()
	co := a.coReachable()
	keep := make([]int, a.Len())
	out := New(a.NumSymbols)
	for q := range keep {
		if reach[q] && co[q] {
			keep[q] = out.AddState(a.Final[q])
		} else {
			keep[q] = -1
		}
	}
	for _, s := range a.Starts {
		if keep[s] >= 0 {
			out.AddStart(keep[s])
		}
	}
	for q, es := range a.Adj {
		if keep[q] < 0 {
			continue
		}
		for _, e := range es {
			if keep[e.To] >= 0 {
				out.AddEdge(keep[q], e.Sym, keep[e.To])
			}
		}
	}
	out.DedupeEdges()
	return out
}

// IsEmpty reports whether L(a) is empty.
func (a *NFA) IsEmpty() bool {
	reach := a.reachable()
	for q, f := range a.Final {
		if f && reach[q] {
			return false
		}
	}
	return true
}

// Product returns an automaton for L(a) ∩ L(b), built over reachable
// state pairs only.
func Product(a, b *NFA) *NFA {
	if a.NumSymbols != b.NumSymbols {
		panic("automata: product over different alphabets")
	}
	out := New(a.NumSymbols)
	type pair struct{ p, q int }
	id := map[pair]int{}
	var queue []pair
	add := func(pr pair) int {
		if i, ok := id[pr]; ok {
			return i
		}
		i := out.AddState(a.Final[pr.p] && b.Final[pr.q])
		id[pr] = i
		queue = append(queue, pr)
		return i
	}
	for _, s := range a.Starts {
		for _, t := range b.Starts {
			out.AddStart(add(pair{s, t}))
		}
	}
	for len(queue) > 0 {
		pr := queue[0]
		queue = queue[1:]
		from := id[pr]
		for _, ea := range a.Adj[pr.p] {
			for _, eb := range b.Adj[pr.q] {
				if ea.Sym == eb.Sym {
					out.AddEdge(from, ea.Sym, add(pair{ea.To, eb.To}))
				}
			}
		}
	}
	out.DedupeEdges()
	return out
}

// Union returns an automaton for L(a) ∪ L(b) (disjoint union of states).
func Union(a, b *NFA) *NFA {
	if a.NumSymbols != b.NumSymbols {
		panic("automata: union over different alphabets")
	}
	out := New(a.NumSymbols)
	off := a.Len()
	for q := 0; q < a.Len(); q++ {
		out.AddState(a.Final[q])
	}
	for q := 0; q < b.Len(); q++ {
		out.AddState(b.Final[q])
	}
	for _, s := range a.Starts {
		out.AddStart(s)
	}
	for _, s := range b.Starts {
		out.AddStart(s + off)
	}
	for q, es := range a.Adj {
		for _, e := range es {
			out.AddEdge(q, e.Sym, e.To)
		}
	}
	for q, es := range b.Adj {
		for _, e := range es {
			out.AddEdge(q+off, e.Sym, e.To+off)
		}
	}
	return out
}

// IsDeterministic reports whether the automaton has at most one start state
// and at most one transition per (state, symbol).
func (a *NFA) IsDeterministic() bool {
	if len(a.Starts) > 1 {
		return false
	}
	for _, es := range a.Adj {
		seen := map[int]int{}
		for _, e := range es {
			if to, ok := seen[e.Sym]; ok && to != e.To {
				return false
			}
			seen[e.Sym] = e.To
		}
	}
	return true
}

// ErrTooLarge is returned by subset-construction based procedures when the
// intermediate deterministic automaton exceeds the configured state limit;
// these problems are PSPACE-complete (Theorem 4.1), so a limit keeps the
// library's behavior predictable on adversarial inputs.
var ErrTooLarge = errors.New("automata: subset construction exceeds state limit")

// DefaultLimit bounds the number of determinized states explored by
// Determinize and Contains.
const DefaultLimit = 1 << 20

func setKey(set []int) string {
	var b strings.Builder
	for _, q := range set {
		fmt.Fprintf(&b, "%x,", q)
	}
	return b.String()
}

func (a *NFA) succ(set []int, sym int) []int {
	mark := map[int]bool{}
	for _, q := range set {
		for _, e := range a.Adj[q] {
			if e.Sym == sym {
				mark[e.To] = true
			}
		}
	}
	out := make([]int, 0, len(mark))
	for q := range mark {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

func anyFinal(a *NFA, set []int) bool {
	for _, q := range set {
		if a.Final[q] {
			return true
		}
	}
	return false
}

// Determinize returns a deterministic automaton (complete over the
// alphabet, including a possible dead state) equivalent to a. It fails
// with ErrTooLarge if more than limit subset states are produced; a
// limit ≤ 0 means DefaultLimit.
func (a *NFA) Determinize(limit int) (*NFA, error) {
	if limit <= 0 {
		limit = DefaultLimit
	}
	out := New(a.NumSymbols)
	id := map[string]int{}
	var sets [][]int
	add := func(set []int) (int, error) {
		k := setKey(set)
		if i, ok := id[k]; ok {
			return i, nil
		}
		if len(id) >= limit {
			return 0, ErrTooLarge
		}
		i := out.AddState(anyFinal(a, set))
		id[k] = i
		sets = append(sets, set)
		return i, nil
	}
	start := append([]int(nil), a.Starts...)
	sort.Ints(start)
	start = dedupeInts(start)
	s0, err := add(start)
	if err != nil {
		return nil, err
	}
	out.AddStart(s0)
	for i := 0; i < len(sets); i++ {
		for sym := 0; sym < a.NumSymbols; sym++ {
			to, err := add(a.succ(sets[i], sym))
			if err != nil {
				return nil, err
			}
			out.AddEdge(i, sym, to)
		}
	}
	return out, nil
}

func dedupeInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Contains decides L(a) ⊆ L(b) by an on-the-fly product of a with the
// subset construction of b. It fails with ErrTooLarge when the explored
// space exceeds limit (≤ 0 means DefaultLimit). If the languages are not
// contained, witness holds a shortest counterexample word.
func Contains(a, b *NFA, limit int) (ok bool, witness []int, err error) {
	if a.NumSymbols != b.NumSymbols {
		panic("automata: containment over different alphabets")
	}
	if limit <= 0 {
		limit = DefaultLimit
	}
	type node struct {
		p   int
		set string
	}
	type entry struct {
		set  []int
		prev int // index into bfs, -1 for roots
		sym  int
	}
	seen := map[node]bool{}
	var bfs []entry
	var bfsP []int
	bStart := append([]int(nil), b.Starts...)
	sort.Ints(bStart)
	bStart = dedupeInts(bStart)
	for _, s := range a.Starts {
		n := node{s, setKey(bStart)}
		if !seen[n] {
			seen[n] = true
			bfs = append(bfs, entry{bStart, -1, -1})
			bfsP = append(bfsP, s)
		}
	}
	rebuild := func(i int) []int {
		var w []int
		for i >= 0 && bfs[i].sym >= 0 {
			w = append(w, bfs[i].sym)
			i = bfs[i].prev
		}
		for l, r := 0, len(w)-1; l < r; l, r = l+1, r-1 {
			w[l], w[r] = w[r], w[l]
		}
		return w
	}
	for i := 0; i < len(bfs); i++ {
		p, set := bfsP[i], bfs[i].set
		if a.Final[p] && !anyFinal(b, set) {
			return false, rebuild(i), nil
		}
		for _, e := range a.Adj[p] {
			next := b.succ(set, e.Sym)
			n := node{e.To, setKey(next)}
			if seen[n] {
				continue
			}
			if len(seen) >= limit {
				return false, nil, ErrTooLarge
			}
			seen[n] = true
			bfs = append(bfs, entry{next, i, e.Sym})
			bfsP = append(bfsP, e.To)
		}
	}
	return true, nil, nil
}

// ContainsDet decides L(a) ⊆ L(b) for deterministic b in time linear in
// the product, the automaton-level analogue of Theorem 4.3's NL bound.
func ContainsDet(a, b *NFA) (ok bool, witness []int) {
	if !b.IsDeterministic() {
		panic("automata: ContainsDet requires deterministic b")
	}
	det := map[int]map[int]int{}
	for q, es := range b.Adj {
		m := map[int]int{}
		for _, e := range es {
			m[e.Sym] = e.To
		}
		det[q] = m
	}
	const dead = -1
	type pair struct{ p, q int }
	type entry struct {
		prev int
		sym  int
	}
	seen := map[pair]int{}
	var order []pair
	var trace []entry
	bq := dead
	if len(b.Starts) > 0 {
		bq = b.Starts[0]
	}
	for _, s := range a.Starts {
		pr := pair{s, bq}
		if _, ok := seen[pr]; !ok {
			seen[pr] = len(order)
			order = append(order, pr)
			trace = append(trace, entry{-1, -1})
		}
	}
	rebuild := func(i int) []int {
		var w []int
		for i >= 0 && trace[i].sym >= 0 {
			w = append(w, trace[i].sym)
			i = trace[i].prev
		}
		for l, r := 0, len(w)-1; l < r; l, r = l+1, r-1 {
			w[l], w[r] = w[r], w[l]
		}
		return w
	}
	for i := 0; i < len(order); i++ {
		pr := order[i]
		if a.Final[pr.p] && (pr.q == dead || !b.Final[pr.q]) {
			return false, rebuild(i)
		}
		for _, e := range a.Adj[pr.p] {
			nq := dead
			if pr.q != dead {
				if to, ok := det[pr.q][e.Sym]; ok {
					nq = to
				}
			}
			npr := pair{e.To, nq}
			if _, ok := seen[npr]; !ok {
				seen[npr] = len(order)
				order = append(order, npr)
				trace = append(trace, entry{i, e.Sym})
			}
		}
	}
	return true, nil
}

// Equivalent decides L(a) = L(b) via two containment checks.
func Equivalent(a, b *NFA, limit int) (bool, error) {
	ok, _, err := Contains(a, b, limit)
	if err != nil || !ok {
		return false, err
	}
	ok, _, err = Contains(b, a, limit)
	return ok, err
}

// IsUnambiguous reports whether no word has two distinct accepting runs.
// Two distinct accepting runs on the same word yield a reachable
// off-diagonal pair in the self-product that can still reach a pair of
// final states, so the test is a forward pass over the self-product of the
// trimmed automaton followed by a backward pass from final-final pairs.
// Duplicate edges are removed first (two syntactically identical edges do
// not constitute two runs).
func (a *NFA) IsUnambiguous() bool {
	t := a.Trim()
	type pair struct{ p, q int }
	seen := map[pair]bool{}
	var queue []pair
	push := func(pr pair) {
		if !seen[pr] {
			seen[pr] = true
			queue = append(queue, pr)
		}
	}
	for _, s := range t.Starts {
		for _, u := range t.Starts {
			push(pair{s, u})
		}
	}
	for i := 0; i < len(queue); i++ {
		pr := queue[i]
		for _, e1 := range t.Adj[pr.p] {
			for _, e2 := range t.Adj[pr.q] {
				if e1.Sym == e2.Sym {
					push(pair{e1.To, e2.To})
				}
			}
		}
	}
	// Backward: which reachable pairs can reach a (final, final) pair?
	rev := map[pair][]pair{}
	for pr := range seen {
		for _, e1 := range t.Adj[pr.p] {
			for _, e2 := range t.Adj[pr.q] {
				if e1.Sym == e2.Sym {
					to := pair{e1.To, e2.To}
					if seen[to] {
						rev[to] = append(rev[to], pr)
					}
				}
			}
		}
	}
	co := map[pair]bool{}
	var stack []pair
	for pr := range seen {
		if t.Final[pr.p] && t.Final[pr.q] {
			co[pr] = true
			stack = append(stack, pr)
		}
	}
	for len(stack) > 0 {
		pr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, prev := range rev[pr] {
			if !co[prev] {
				co[prev] = true
				stack = append(stack, prev)
			}
		}
	}
	for pr := range co {
		if pr.p != pr.q {
			return false
		}
	}
	return true
}
