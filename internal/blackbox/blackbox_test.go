package blackbox

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/regexformula"
	"repro/internal/span"
	"repro/internal/vsa"
)

func docs(sigma string, maxLen int) []string {
	out := []string{""}
	frontier := []string{""}
	for l := 0; l < maxLen; l++ {
		var next []string
		for _, d := range frontier {
			for i := 0; i < len(sigma); i++ {
				next = append(next, d+string(sigma[i]))
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

func splitterOf(t *testing.T, src string) *core.Splitter {
	t.Helper()
	s, err := core.NewSplitter(regexformula.MustCompile(src))
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return s
}

// blockSplitter is the ';'-block splitter shared by the tests.
const blockSplitterSrc = "(x{[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(x{[^;]*})(;[^;]*)*"

func TestConnected(t *testing.T) {
	sig := &Signature{Symbols: []Symbol{
		{"p1", []string{"x", "xp"}},
		{"p2", []string{"xp", "y"}},
	}}
	if !sig.Connected([]string{"x", "y"}) {
		t.Fatal("chain signature must be connected")
	}
	disc := &Signature{Symbols: []Symbol{
		{"p1", []string{"u"}},
	}}
	if disc.Connected([]string{"x"}) {
		t.Fatal("disconnected signature must be detected")
	}
}

// TestTheorem74EndToEnd builds a miniature of Example 7.1: α extracts a
// (g-block, following block) pair, the black box is a "coreference"
// stand-in constrained to be self-splittable by blocks, and the plan-based
// split evaluation must equal the direct join on every document.
func TestTheorem74EndToEnd(t *testing.T) {
	s := splitterOf(t, blockSplitterSrc)
	// α(x): g-blocks, self-splittable by blocks.
	alphaSrc := "(x{g[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(x{g[^;]*})(;[^;]*)*"
	alpha := regexformula.MustCompile(alphaSrc)
	// Black box π(x): a "mention classifier" that actually is a regular
	// spanner selecting all blocks, so ground truth is computable.
	bbSpanner := regexformula.MustCompile(strings.ReplaceAll(blockSplitterSrc, "x{", "x{"))
	sig := &Signature{Symbols: []Symbol{{"mentions", []string{"x"}}}}
	constraint := Constraint{"mentions", s}
	// The constraint really holds for this instance.
	ok, err := VerifyConstraint(constraint, bbSpanner, 0)
	if err != nil || !ok {
		t.Fatalf("constraint must hold for the test instance: %v %v", ok, err)
	}
	plan, reason, err := SplitCorrectByTheorem74(alpha, sig, []Constraint{constraint}, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatalf("Theorem 7.4 must apply, got reason %q", reason)
	}
	inst := Instance{"mentions": Spanner{bbSpanner}}
	for _, d := range docs("g;", 5) {
		direct, err := EvalJoin(alpha, sig, inst, d)
		if err != nil {
			t.Fatal(err)
		}
		split, err := plan.Eval(inst, d)
		if err != nil {
			t.Fatal(err)
		}
		aligned, err := split.Project(direct.Vars)
		if err != nil {
			t.Fatal(err)
		}
		if !aligned.Equal(direct) {
			t.Fatalf("plan and direct join differ on %q: %v vs %v", d, aligned, direct)
		}
	}
}

func TestTheorem74PremiseFailures(t *testing.T) {
	s := splitterOf(t, blockSplitterSrc)
	alpha := regexformula.MustCompile("(x{g[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(x{g[^;]*})(;[^;]*)*")
	sig := &Signature{Symbols: []Symbol{{"mentions", []string{"x"}}}}
	// Missing constraint.
	plan, reason, err := SplitCorrectByTheorem74(alpha, sig, nil, s, 0)
	if err != nil || plan != nil || !strings.Contains(reason, "without split constraint") {
		t.Fatalf("missing constraint must be reported, got %q %v", reason, err)
	}
	// Non-disjoint splitter.
	grams := splitterOf(t, ".*x{..}.*")
	plan, reason, err = SplitCorrectByTheorem74(alpha, sig, []Constraint{{"mentions", grams}}, grams, 0)
	if err != nil || plan != nil || !strings.Contains(reason, "disjoint") {
		t.Fatalf("non-disjoint splitter must be reported, got %q %v", reason, err)
	}
	// Disconnected signature.
	sig2 := &Signature{Symbols: []Symbol{{"other", []string{"z"}}}}
	plan, reason, err = SplitCorrectByTheorem74(alpha, sig2, []Constraint{{"other", s}}, s, 0)
	if err != nil || plan != nil || !strings.Contains(reason, "connected") {
		t.Fatalf("disconnected signature must be reported, got %q %v", reason, err)
	}
}

// TestLemma73Counterexample reproduces Lemma 7.3: P1 = Σ*x1{a}x2{b}Σ* and
// P2 = Σ*x2{b}x3{a}Σ* are self-splittable by S = Σ*x{aΣ|Σa}Σ*, but their
// join violates the cover condition for S, hence is not splittable
// (Lemma 5.3).
func TestLemma73Counterexample(t *testing.T) {
	p1 := regexformula.MustCompile(".*x1{a}x2{b}.*")
	p2 := regexformula.MustCompile(".*x2{b}x3{a}.*")
	s := splitterOf(t, ".*x{a.|.a}.*")
	for i, p := range []*vsa.Automaton{p1, p2} {
		ok, err := core.SelfSplittable(p, s, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("P%d must be self-splittable by S", i+1)
		}
	}
	join, err := algebra.Join(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	// On aba: P(aba) = {([1,2⟩,[2,3⟩,[3,4⟩)}, S(aba) = {[1,3⟩,[2,4⟩} and
	// no split covers the joined tuple.
	rel := join.Eval("aba")
	if rel.Len() != 1 {
		t.Fatalf("join on aba: %v", rel)
	}
	covered, err := core.CoverCondition(join, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if covered {
		t.Fatal("Lemma 7.3: the join must violate the cover condition")
	}
}

// TestGenuineBlackBoxFunc runs the plan with a hand-written Go function as
// the black box, demonstrating the interface on the Example 7.2 shape:
// names ("n"-initial blocks) join with an α that matches blocks followed
// by a marker block.
func TestGenuineBlackBoxFunc(t *testing.T) {
	s := splitterOf(t, blockSplitterSrc)
	// α(x): blocks consisting of n's and g's that contain at least one g.
	alpha := regexformula.MustCompile(
		"(x{[ng]*g[ng]*})(;[^;]*)*|[^;]*(;[^;]*)*;(x{[ng]*g[ng]*})(;[^;]*)*")
	names := Func{
		VarNames: []string{"x"},
		Fn: func(doc string) *span.Relation {
			// A rule-based "NER": blocks starting with n, located by hand.
			rel := span.NewRelation("x")
			start := 0
			for i := 0; i <= len(doc); i++ {
				if i == len(doc) || doc[i] == ';' {
					if i > start && doc[start] == 'n' {
						rel.Add(span.Tuple{span.FromByteOffsets(start, i)})
					}
					start = i + 1
				}
			}
			return rel
		},
	}
	sig := &Signature{Symbols: []Symbol{{"names", []string{"x"}}}}
	plan, reason, err := SplitCorrectByTheorem74(alpha, sig, []Constraint{{"names", s}}, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatalf("plan expected, got %q", reason)
	}
	inst := Instance{"names": names}
	for _, d := range []string{"ng;gg;n", "n;ng;nn", "", "ngn;g;ng"} {
		direct, err := EvalJoin(alpha, sig, inst, d)
		if err != nil {
			t.Fatal(err)
		}
		split, err := plan.Eval(inst, d)
		if err != nil {
			t.Fatal(err)
		}
		aligned, err := split.Project(direct.Vars)
		if err != nil {
			t.Fatal(err)
		}
		if !aligned.Equal(direct) {
			t.Fatalf("plan and direct join differ on %q: %v vs %v", d, aligned, direct)
		}
	}
}
