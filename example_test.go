package spanners_test

import (
	"fmt"

	spanners "repro"
)

// ExampleSpanner_Eval extracts person-name-like tokens and prints their
// spans in the paper's [i,j⟩ convention.
func ExampleSpanner_Eval() {
	p := spanners.MustCompile(`(.*[ .!?])?(y{[A-Z][a-z]+})(([^a-z].*)?|)`)
	doc := "so Alice met Bob."
	rel := p.Eval(doc)
	for _, t := range rel.Tuples {
		fmt.Printf("%v %s\n", t[0], t[0].In(doc))
	}
	// Output:
	// [4,9⟩ Alice
	// [14,17⟩ Bob
}

// ExampleSplitCorrect checks whether a 2-byte extractor can be pushed to
// unit tokens (no) or to 2-grams (yes) — the Section 3.2 decision
// problem.
func ExampleSplitCorrect() {
	p := spanners.MustCompile(".*y{ab}.*")
	ps := spanners.MustCompile("y{ab}")
	units := spanners.MustCompileSplitter(".*x{.}.*")
	grams := spanners.MustCompileSplitter(".*x{..}.*")
	ok1, _ := spanners.SplitCorrect(p, ps, units)
	ok2, _ := spanners.SplitCorrect(p, ps, grams)
	fmt.Println(ok1, ok2)
	// Output:
	// false true
}

// ExampleSplittable asks for any split-spanner at all and receives the
// canonical one of Proposition 5.9 as a witness.
func ExampleSplittable() {
	p := spanners.MustCompile(".*y{a}.*")
	s := spanners.MustCompileSplitter(".*x{.}.*")
	ok, witness, _ := spanners.Splittable(p, s)
	verified, _ := spanners.SplitCorrect(p, witness, s)
	fmt.Println(ok, verified)
	// Output:
	// true true
}

// ExampleSplitter_IsDisjoint shows the Proposition 5.5 check on the two
// splitter families the paper contrasts.
func ExampleSplitter_IsDisjoint() {
	tokens := spanners.MustCompileSplitter(".*x{.}.*")
	grams := spanners.MustCompileSplitter(".*x{..}.*")
	fmt.Println(tokens.IsDisjoint(), grams.IsDisjoint())
	// Output:
	// true false
}

// ExampleSplitCorrectWitness demonstrates the debugging use case: the
// decision procedure returns a concrete document on which per-segment
// evaluation would go wrong.
func ExampleSplitCorrectWitness() {
	p := spanners.MustCompile(".*y{ab}.*")
	ps := spanners.MustCompile("y{ab}")
	units := spanners.MustCompileSplitter(".*x{.}.*")
	ok, witness, _ := spanners.SplitCorrectWitness(p, ps, units)
	fmt.Println(ok, witness)
	// Output:
	// false ab
}
