package vsa_test

import (
	"testing"

	"repro/internal/regexformula"
	"repro/internal/span"
)

// TestEvalAppendMatchesEvalShiftAll checks the accumulator form against
// the composition it replaces on the split-evaluation hot path:
// EvalAppend(doc, by, rel, arena) must append exactly
// Eval(doc).ShiftAll(by)'s tuples, for segments at different offsets,
// with and without an arena, accumulating across calls.
func TestEvalAppendMatchesEvalShiftAll(t *testing.T) {
	p := regexformula.MustCompile(".*[ .]y{bad ([a-z]+)}[ .].*|y{bad ([a-z]+)}[ .].*")
	whole := "bad tea. some filler text. bad coffee here. nothing. bad x."
	segments := []span.Span{
		span.FromByteOffsets(0, 8),
		span.FromByteOffsets(9, 26),
		span.FromByteOffsets(27, 44),
		span.FromByteOffsets(45, len(whole)),
	}
	for _, useArena := range []bool{false, true} {
		var arena *span.TupleArena
		if useArena {
			arena = new(span.TupleArena)
		}
		acc := span.NewRelation(p.Vars...)
		want := span.NewRelation(p.Vars...)
		for _, by := range segments {
			seg := by.In(whole)
			p.EvalAppend(seg, by, acc, arena)
			sub := p.Eval(seg).ShiftAll(by)
			want.Tuples = append(want.Tuples, sub.Tuples...)
		}
		acc.Dedupe()
		want.Dedupe()
		if !acc.Equal(want) {
			t.Fatalf("arena=%v: EvalAppend accumulation differs:\ngot:  %v\nwant: %v", useArena, acc, want)
		}
		if acc.Len() == 0 {
			t.Fatal("expected extractions from the segmented document")
		}
	}
}

// TestEvalAppendIdentityShiftEqualsEval pins the wrapper relationship:
// Eval is EvalAppend with the identity shift plus Dedupe.
func TestEvalAppendIdentityShiftEqualsEval(t *testing.T) {
	p := regexformula.MustCompile(".*y{a+}b.*")
	doc := "xxaaabyyaab"
	rel := span.NewRelation(p.Vars...)
	p.EvalAppend(doc, span.Span{Start: 1, End: len(doc) + 1}, rel, nil)
	rel.Dedupe()
	if want := p.Eval(doc); !rel.Equal(want) {
		t.Fatalf("identity EvalAppend %v differs from Eval %v", rel, want)
	}
}

func TestEvalAppendArityMismatchPanics(t *testing.T) {
	p := regexformula.MustCompile(".*y{a}.*")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on relation arity mismatch")
		}
	}()
	p.EvalAppend("a", span.Span{Start: 1, End: 2}, span.NewRelation("x", "y"), nil)
}
