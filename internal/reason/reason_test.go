package reason

import (
	"testing"

	"repro/internal/core"
	"repro/internal/regexformula"
	"repro/internal/span"
)

func docs(sigma string, maxLen int) []string {
	out := []string{""}
	frontier := []string{""}
	for l := 0; l < maxLen; l++ {
		var next []string
		for _, d := range frontier {
			for i := 0; i < len(sigma); i++ {
				next = append(next, d+string(sigma[i]))
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

func splitterOf(t *testing.T, src string) *core.Splitter {
	t.Helper()
	s, err := core.NewSplitter(regexformula.MustCompile(src))
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return s
}

// TestComposeSplittersLemma61 checks the splitter composition against its
// definition: pages (';'-blocks) then sub-blocks (','-separated) equals
// splitting each page by commas.
func TestComposeSplittersLemma61(t *testing.T) {
	pages := splitterOf(t, "(x{[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(x{[^;]*})(;[^;]*)*")
	paras := splitterOf(t, "(x{[^;,]*})([;,][^;,]*)*|[^;,]*([;,][^;,]*)*[;,](x{[^;,]*})([;,][^;,]*)*")
	comp, err := ComposeSplitters(paras, pages)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs("a;,", 5) {
		want := span.NewRelation(paras.Var())
		for _, pg := range pages.Split(d) {
			seg := pg.In(d)
			for _, sub := range paras.Split(seg) {
				want.Add(span.Tuple{sub.Shift(pg)})
			}
		}
		got := comp.Automaton().Eval(d)
		aligned, err := got.Project(want.Vars)
		if err != nil {
			t.Fatal(err)
		}
		if !aligned.Equal(want) {
			t.Fatalf("composition wrong on %q: got %v, want %v", d, aligned, want)
		}
	}
}

// TestCommuteTheorem62 uses the construction from Theorem 6.2's hardness
// proof: over Σ = Σ0 ∪ {#} with S1 = #x{E'} + x{#E} and S2 = x{#E'} +
// #x{E}, the splitters commute iff L(E) = L(E') — here E' = a* so the
// test is universality of E.
func TestCommuteTheorem62(t *testing.T) {
	s1 := func(e string) *core.Splitter {
		return splitterOf(t, "#(x{a*})|x{#("+e+")}")
	}
	s2 := func(e string) *core.Splitter {
		return splitterOf(t, "x{#a*}|#(x{("+e+")})")
	}
	// E = a*: universal, so the splitters commute.
	ok, err := Commute(s1("a*"), s2("a*"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("S1 and S2 must commute when E is universal")
	}
	// E = aa*: not universal (misses ε), so they must not commute.
	ok, err = Commute(s1("aa*"), s2("aa*"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("S1 and S2 must not commute when E misses ε")
	}
}

// TestCommuteWithContext restricts the failing pair of Theorem 6.2 to a
// context R on which the difference disappears.
func TestCommuteWithContext(t *testing.T) {
	s1 := splitterOf(t, "#(x{a*})|x{#(aa*)}")
	s2 := splitterOf(t, "x{#a*}|#(x{aa*})")
	// On documents with at least one a after #, E = aa* behaves like a*.
	r := regexformula.MustCompile("#aa*")
	ok, err := Commute(s1, s2, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("restricted to #aa*, the splitters must commute")
	}
}

// TestSubsumesTheorem63 mirrors the lower-bound construction of
// Theorem 6.3: S = x{Σ*} subsumes S' = x{E} iff L(E) = Σ* (over the test
// alphabet).
func TestSubsumesTheorem63(t *testing.T) {
	s := splitterOf(t, "x{.*}")
	universal := splitterOf(t, "x{(a|b)*}")
	ok, err := Subsumes(s, universal, regexformula.MustCompile("(a|b)*"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("x{Σ*} must subsume the universal splitter on (a|b)*")
	}
	partial := splitterOf(t, "x{a*}")
	ok, err = Subsumes(s, partial, regexformula.MustCompile("(a|b)*"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("x{Σ*} must not subsume x{a*}")
	}
}

// TestSubsumesSentencesInParagraphs is the positive motivating example of
// Section 6: the sentence splitter is subsumed by the paragraph splitter,
// i.e. splitting into sentences equals splitting paragraphs into
// sentences. Sentences end at ',' or ';', paragraphs at ';'.
func TestSubsumesSentencesInParagraphs(t *testing.T) {
	sentences := splitterOf(t, "(x{[^;,]*})([;,][^;,]*)*|[^;,]*([;,][^;,]*)*[;,](x{[^;,]*})([;,][^;,]*)*")
	paragraphs := splitterOf(t, "(x{[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(x{[^;]*})(;[^;]*)*")
	ok, err := Subsumes(sentences, paragraphs, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("sentence splitting must factor through paragraph splitting")
	}
	// The converse fails: paragraphs are not refined by sentences.
	ok, err = Subsumes(paragraphs, sentences, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("paragraph splitting must not factor through sentence splitting")
	}
}

// TestObservation64 reproduces the counterexample of Observation 6.4:
// P = PS ∘ S1 and S1 = S1 ∘ S2 do not imply P = PS ∘ S2.
func TestObservation64(t *testing.T) {
	p := regexformula.MustCompile(".*y{a}.*")
	ps := regexformula.MustCompile("y{a}")
	s1 := splitterOf(t, ".*x{.}.*")
	s2 := splitterOf(t, ".*x{..}.*|x{.}")
	ok, err := core.SplitCorrect(p, ps, s1, 0)
	if err != nil || !ok {
		t.Fatalf("premise P = PS ∘ S1 failed: %v %v", ok, err)
	}
	ok, err = Subsumes(s1, s2, nil, 0)
	if err != nil || !ok {
		t.Fatalf("premise S1 = S1 ∘ S2 failed: %v %v", ok, err)
	}
	ok, err = core.SplitCorrect(p, ps, s2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Observation 6.4: P = PS ∘ S2 must fail")
	}
}

// TestLemma65 checks the transfer of self-splittability across subsumed
// splitters, both through the premise-checking helper and directly.
func TestLemma65(t *testing.T) {
	// P extracts single letters; S1 splits into unit spans; S2 into
	// 2-grams or a single unit (S1 = S1 ∘ S2 holds: every unit span lies
	// in some 2-gram, and unit-splitting a 2-gram gives back unit spans).
	p := regexformula.MustCompile(".*y{a}.*")
	s1 := splitterOf(t, ".*x{.}.*")
	s2 := splitterOf(t, ".*x{..}.*|x{.}")
	ok, err := TransferSelfSplittability(p, s1, s2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Lemma 6.5 transfer failed")
	}
	// The conclusion must actually hold.
	ok, err = core.SelfSplittable(p, s2, 0)
	if err != nil || !ok {
		t.Fatalf("conclusion P = P ∘ S2 must hold: %v %v", ok, err)
	}
	// Broken premise: P is not self-splittable by the 2-gram splitter
	// alone when spans may straddle segment boundaries.
	q := regexformula.MustCompile(".*y{aaa}.*")
	if _, err := TransferSelfSplittability(q, s1, s2, 0); err == nil {
		t.Fatal("premise violation must be reported")
	}
}
