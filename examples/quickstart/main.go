// The quickstart example: compile an extractor, prove it safe to
// distribute over sentences, and evaluate it both ways.
package main

import (
	"fmt"
	"log"

	spanners "repro"
	"repro/internal/library"
)

func main() {
	// An extractor for the target of a negative sentiment, sentence-local
	// by construction (its context stops at sentence boundaries).
	p := spanners.MustCompile(`(.*[ .!?\n])?bad (y{[a-z]+})(([^a-z].*)?|)`)
	sentences := spanners.WrapSplitter(library.Sentences())

	// Ask the system — not the developer — whether per-sentence
	// evaluation is safe (self-splittability, Theorem 5.17).
	ok, err := spanners.SelfSplittable(p, sentences)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-splittable by sentences: %v\n", ok)

	doc := "the tea was fine.really bad coffee though!bad service too.price was good."
	direct := p.Eval(doc)
	parallelRel := spanners.ParallelEval(p, sentences, doc, 4)

	fmt.Printf("direct:   %d extraction(s)\n", direct.Len())
	fmt.Printf("parallel: %d extraction(s)\n", parallelRel.Len())
	for _, t := range direct.Tuples {
		fmt.Printf("  y = %v %q\n", t[0], t[0].In(doc))
	}
	if !direct.Equal(parallelRel) {
		log.Fatal("parallel evaluation diverged — impossible for a self-splittable spanner")
	}

	// A 2-gram extractor is NOT self-splittable by single tokens; the
	// decision procedure tells us before any wrong results are produced.
	grams := spanners.MustCompile(".*y{[a-z]+ [a-z]+}.*")
	tokens := spanners.WrapSplitter(library.Tokens())
	ok, err = spanners.SelfSplittable(grams, tokens)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-gram extractor self-splittable by tokens: %v\n", ok)
}
