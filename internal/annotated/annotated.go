// Package annotated implements Section 7.3 and Appendix E: annotated
// splitters, which attach a key from a finite set K to every split (in
// analogy to MapReduce key-value pairs), key-spanner mappings that choose
// a split-spanner per key, highlander splitters (disjoint and at most one
// key per split), annotated composition and split-correctness (Lemma E.2,
// Theorem E.3), and annotated splittability via the canonical key-spanner
// mapping (Lemma E.6, Theorem E.7).
package annotated

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/span"
	"repro/internal/vsa"
)

// FinalRef identifies one acceptance alternative of an automaton: state q
// accepting with final operation set Ops. Annotations are attached per
// alternative, which subsumes the paper's per-final-state function τ.
type FinalRef struct {
	State int
	Ops   vsa.OpSet
}

// Splitter is an annotated splitter S_K: a unary automaton whose
// acceptance alternatives carry keys.
type Splitter struct {
	auto *vsa.Automaton
	ann  map[FinalRef]string
}

// New wraps a unary automaton with an annotation map; every acceptance
// alternative must be annotated.
func New(a *vsa.Automaton, ann map[FinalRef]string) (*Splitter, error) {
	if a.Arity() != 1 {
		return nil, fmt.Errorf("annotated: splitter must be unary")
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	for q, st := range a.States {
		for _, f := range st.Finals {
			if _, ok := ann[FinalRef{q, f}]; !ok {
				return nil, fmt.Errorf("annotated: acceptance (state %d, ops %v) has no key", q, f)
			}
		}
	}
	return &Splitter{auto: a, ann: ann}, nil
}

// UniformKey wraps an ordinary splitter, annotating every split with key.
func UniformKey(s *core.Splitter, key string) *Splitter {
	a := s.Automaton()
	ann := map[FinalRef]string{}
	for q, st := range a.States {
		for _, f := range st.Finals {
			ann[FinalRef{q, f}] = key
		}
	}
	out, err := New(a, ann)
	if err != nil {
		panic(err)
	}
	return out
}

// Automaton returns the underlying unary automaton.
func (s *Splitter) Automaton() *vsa.Automaton { return s.auto }

// Keys returns the set of keys in use, sorted.
func (s *Splitter) Keys() []string {
	seen := map[string]bool{}
	var out []string
	for _, k := range s.ann {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// ForKey returns the ordinary splitter S_κ that produces exactly the
// splits annotated with key.
func (s *Splitter) ForKey(key string) (*core.Splitter, error) {
	a := s.auto.Clone()
	for q := range a.States {
		var kept []vsa.OpSet
		for _, f := range a.States[q].Finals {
			if s.ann[FinalRef{q, f}] == key {
				kept = append(kept, f)
			}
		}
		a.States[q].Finals = kept
	}
	return core.NewSplitter(a)
}

// Plain returns the ordinary splitter that forgets the keys.
func (s *Splitter) Plain() (*core.Splitter, error) {
	return core.NewSplitter(s.auto)
}

// KeyedSpan is one annotated split.
type KeyedSpan struct {
	Key  string
	Span span.Span
}

// SplitAnn returns the annotated span relation S_K(d). A (span, key) pair
// is produced once even if several runs yield it.
func (s *Splitter) SplitAnn(doc string) []KeyedSpan {
	var out []KeyedSpan
	seen := map[KeyedSpan]bool{}
	for _, key := range s.Keys() {
		sk, err := s.ForKey(key)
		if err != nil {
			panic(err)
		}
		for _, sp := range sk.Split(doc) {
			ks := KeyedSpan{key, sp}
			if !seen[ks] {
				seen[ks] = true
				out = append(out, ks)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Span != out[j].Span {
			return out[i].Span.Compare(out[j].Span) < 0
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// IsHighlander reports whether the splitter is an annotated highlander
// splitter (Appendix E): disjoint, and for every document and split there
// is at most one key. The key-uniqueness test is a synchronous two-run
// product searching for two accepting runs with equal spans and different
// keys.
func (s *Splitter) IsHighlander() (bool, error) {
	plain, err := s.Plain()
	if err != nil {
		return false, err
	}
	if !plain.IsDisjoint() {
		return false, nil
	}
	return s.uniqueKeys(), nil
}

// uniqueKeys reports whether no document admits two accepting runs with
// the same span but different keys.
func (s *Splitter) uniqueKeys() bool {
	type cfg struct {
		q1, q2   int
		st1, st2 int
	}
	apply := func(st int, o vsa.OpSet) (int, bool) {
		switch o {
		case 0:
			return st, true
		case vsa.Open(0):
			if st != 0 {
				return 0, false
			}
			return 1, true
		case vsa.Close(0):
			if st != 1 {
				return 0, false
			}
			return 2, true
		case vsa.Wrap(0):
			if st != 0 {
				return 0, false
			}
			return 2, true
		}
		return 0, false
	}
	seen := map[cfg]bool{}
	start := cfg{s.auto.Start, s.auto.Start, 0, 0}
	queue := []cfg{start}
	seen[start] = true
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, f1 := range s.auto.States[c.q1].Finals {
			n1, ok1 := apply(c.st1, f1)
			if !ok1 || n1 != 2 {
				continue
			}
			for _, f2 := range s.auto.States[c.q2].Finals {
				n2, ok2 := apply(c.st2, f2)
				if !ok2 || n2 != 2 {
					continue
				}
				// Equal spans require the same final operations here and
				// matched operations along the way (enforced below).
				if f1 == f2 && s.ann[FinalRef{c.q1, f1}] != s.ann[FinalRef{c.q2, f2}] {
					return false
				}
			}
		}
		for _, e1 := range s.auto.States[c.q1].Edges {
			n1, ok1 := apply(c.st1, e1.Ops)
			if !ok1 {
				continue
			}
			for _, e2 := range s.auto.States[c.q2].Edges {
				// Equal spans: both runs must perform the same x-operations
				// at every boundary and read a common byte.
				if e1.Ops != e2.Ops || !e1.Class.Intersects(e2.Class) {
					continue
				}
				n2, ok2 := apply(c.st2, e2.Ops)
				if !ok2 {
					continue
				}
				nc := cfg{e1.To, e2.To, n1, n2}
				if !seen[nc] {
					seen[nc] = true
					queue = append(queue, nc)
				}
			}
		}
	}
	return true
}

// KeyMapping assigns a split-spanner to every key.
type KeyMapping map[string]*vsa.Automaton

// Compose builds the spanner P_S ∘ S_K of Section 7.3: evaluate the
// key-appropriate split-spanner on every annotated split and shift. Per
// Lemma E.2 it is the union over keys of the compositions with the
// key-restricted splitters.
func (s *Splitter) Compose(m KeyMapping) (*vsa.Automaton, error) {
	keys := s.Keys()
	if len(keys) == 0 {
		// A splitter with no accepting alternative composes to the empty
		// spanner over the variables of any mapping entry.
		for _, ps := range m {
			return vsa.NewAutomaton(ps.Vars...), nil
		}
		return vsa.NewAutomaton(), nil
	}
	var result *vsa.Automaton
	for _, key := range keys {
		ps, ok := m[key]
		if !ok {
			return nil, fmt.Errorf("annotated: key %q has no split-spanner", key)
		}
		sk, err := s.ForKey(key)
		if err != nil {
			return nil, err
		}
		part := core.Compose(ps, sk)
		if result == nil {
			result = part
			continue
		}
		result, err = unionAligned(result, part)
		if err != nil {
			return nil, err
		}
	}
	return result, nil
}

// unionAligned unions two union-compatible spanners (local helper to avoid
// an import cycle with the algebra package, which depends on nothing here
// but keeps the dependency graph flat).
func unionAligned(a, b *vsa.Automaton) (*vsa.Automaton, error) {
	b2, err := b.ReorderVars(a.Vars)
	if err != nil {
		return nil, err
	}
	out := vsa.NewAutomaton(a.Vars...)
	for _, src := range []*vsa.Automaton{a, b2} {
		off := out.NumStates()
		for range src.States {
			out.AddState()
		}
		for q, st := range src.States {
			for _, e := range st.Edges {
				out.AddEdge(q+off, e.Ops, e.Class, e.To+off)
			}
			for _, f := range st.Finals {
				out.AddFinal(q+off, f)
			}
		}
		st := src.States[src.Start]
		for _, e := range st.Edges {
			out.AddEdge(out.Start, e.Ops, e.Class, e.To+off)
		}
		for _, f := range st.Finals {
			out.AddFinal(out.Start, f)
		}
	}
	return out, nil
}

// SplitCorrect decides annotated split-correctness (Theorem E.3):
// P = P_S ∘ S_K, via the algebraic characterization of Lemma E.2.
func (s *Splitter) SplitCorrect(p *vsa.Automaton, m KeyMapping, limit int) (bool, error) {
	comp, err := s.Compose(m)
	if err != nil {
		return false, err
	}
	return vsa.Equivalent(p, comp, limit)
}

// Canonical builds the canonical key-spanner mapping of Lemma E.6:
// for each key κ, the canonical split-spanner of P with respect to S_κ.
func (s *Splitter) Canonical(p *vsa.Automaton) (KeyMapping, error) {
	m := KeyMapping{}
	for _, key := range s.Keys() {
		sk, err := s.ForKey(key)
		if err != nil {
			return nil, err
		}
		m[key] = core.Canonical(p, sk)
	}
	return m, nil
}

// Splittable decides annotated splittability for highlander splitters
// (Theorem E.7): P is splittable by S_K iff it is split-correct via the
// canonical key-spanner mapping.
func (s *Splitter) Splittable(p *vsa.Automaton, limit int) (bool, KeyMapping, error) {
	hl, err := s.IsHighlander()
	if err != nil {
		return false, nil, err
	}
	if !hl {
		return false, nil, fmt.Errorf("annotated: splittability requires a highlander splitter")
	}
	m, err := s.Canonical(p)
	if err != nil {
		return false, nil, err
	}
	ok, err := s.SplitCorrect(p, m, limit)
	if err != nil || !ok {
		return false, nil, err
	}
	return true, m, nil
}

// ComposeBrute evaluates (P_S ∘ S_K)(doc) by the definition in Section
// 7.3, as the executable specification for tests.
func (s *Splitter) ComposeBrute(m KeyMapping, doc string) (*span.Relation, error) {
	var out *span.Relation
	for _, ks := range s.SplitAnn(doc) {
		ps, ok := m[ks.Key]
		if !ok {
			return nil, fmt.Errorf("annotated: key %q has no split-spanner", ks.Key)
		}
		rel := ps.Eval(ks.Span.In(doc))
		if out == nil {
			out = span.NewRelation(rel.Vars...)
		} else {
			aligned, err := rel.Project(out.Vars)
			if err != nil {
				return nil, err
			}
			rel = aligned
		}
		for _, t := range rel.Tuples {
			out.Add(t.Shift(ks.Span))
		}
	}
	if out == nil {
		for _, ps := range m {
			out = span.NewRelation(ps.Vars...)
			break
		}
		if out == nil {
			out = span.NewRelation()
		}
	}
	out.Dedupe()
	return out, nil
}
