package parallel

import (
	"context"
	"errors"

	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/library"
	"repro/internal/regexformula"
)

func TestSplitEvalEqualsSequential(t *testing.T) {
	// The negative-sentiment extractor is self-splittable by sentences
	// (proved in the library tests); split evaluation must therefore agree
	// with direct evaluation.
	p := library.NegativeSentiment()
	doc := corpus.Reviews(21, 40)[0] + corpus.Reviews(22, 40)[1]
	segs := SegmentsOf(doc, library.FastSentenceSplit(doc))
	for _, workers := range []int{1, 2, 5} {
		par := SplitEval(p, segs, workers)
		seq := Sequential(p, doc)
		seq.Dedupe()
		if !par.Equal(seq) {
			t.Fatalf("workers=%d: split evaluation differs", workers)
		}
	}
}

func TestSplitEvalCatchesNonSplitCorrectness(t *testing.T) {
	// Splitting a 2-byte-span extractor by unit tokens is not
	// split-correct; Measure must detect the mismatch and report it as an
	// error (wrapping ErrSplitMismatch), not panic inside library code.
	p := regexformula.MustCompile(".*y{ab}.*")
	s, err := core.NewSplitter(regexformula.MustCompile(".*x{.}.*"))
	if err != nil {
		t.Fatal(err)
	}
	doc := "abab"
	segs := SegmentsOf(doc, s.Split(doc))
	m, err := Measure("bad", p, p, doc, segs, 2)
	if !errors.Is(err, ErrSplitMismatch) {
		t.Fatalf("err = %v, want ErrSplitMismatch", err)
	}
	if m.Sequential <= 0 || m.Split <= 0 {
		t.Fatalf("measurement timings must survive a mismatch: %+v", m)
	}
}

func TestMeasureCollectionCatchesNonSplitCorrectness(t *testing.T) {
	p := regexformula.MustCompile(".*y{ab}.*")
	s, err := core.NewSplitter(regexformula.MustCompile(".*x{.}.*"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = MeasureCollection("bad", p, p, []string{"abab", "ab"}, s.Split, 2)
	if !errors.Is(err, ErrSplitMismatch) {
		t.Fatalf("err = %v, want ErrSplitMismatch", err)
	}
}

func TestMeasureReportsAgreeingRun(t *testing.T) {
	p := library.NegativeSentiment()
	doc := corpus.Wikipedia(3, 2000) + "very bad coffee."
	segs := SegmentsOf(doc, library.FastSentenceSplit(doc))
	m, err := Measure("wiki", p, p, doc, segs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tuples == 0 {
		t.Fatal("expected at least one extraction")
	}
	if m.Sequential <= 0 || m.Split <= 0 || m.Speedup <= 0 {
		t.Fatalf("implausible measurement: %+v", m)
	}
}

func TestCollectionEval(t *testing.T) {
	p := library.FinanceEvents()
	docsIn := corpus.Reuters(31, 25)
	direct := CollectionEval(p, docsIn, 3)
	split := CollectionEvalSplit(p, docsIn, library.FastSentenceSplit, 3)
	if len(direct) != len(split) {
		t.Fatal("result count mismatch")
	}
	total := 0
	for i := range direct {
		direct[i].Dedupe()
		aligned, err := split[i].Project(direct[i].Vars)
		if err != nil {
			t.Fatal(err)
		}
		if !aligned.Equal(direct[i]) {
			t.Fatalf("document %d differs: %v vs %v", i, aligned, direct[i])
		}
		total += direct[i].Len()
	}
	if total == 0 {
		t.Fatal("expected some finance events in the corpus")
	}
}

func TestMeasureCollection(t *testing.T) {
	p := library.NegativeSentiment()
	docsIn := corpus.Reviews(41, 60)
	m, err := MeasureCollection("amazon", p, p, docsIn, library.FastSentenceSplit, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tuples == 0 {
		t.Fatal("expected some sentiment extractions")
	}
}

func TestSplitEvalCtxBatchingEqualsUnbatched(t *testing.T) {
	p := library.NegativeSentiment()
	doc := corpus.Reviews(23, 40)[0] + ". " + corpus.Reviews(24, 40)[1]
	segs := SegmentsOf(doc, library.FastSentenceSplit(doc))
	want := SplitEval(p, segs, 3)
	for _, batch := range []int{1, 2, 7, 1000} {
		got, err := SplitEvalCtx(context.Background(), p, segs, Options{Workers: 3, Batch: batch})
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if !got.Equal(want) {
			t.Fatalf("batch=%d: batched evaluation differs", batch)
		}
	}
}

func TestSplitEvalCtxCancellation(t *testing.T) {
	p := library.NegativeSentiment()
	doc := corpus.Reviews(25, 40)[0]
	segs := SegmentsOf(doc, library.FastSentenceSplit(doc))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: nothing should be dispatched
	rel, err := SplitEvalCtx(ctx, p, segs, Options{Workers: 2})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rel == nil {
		t.Fatal("expected a (partial) relation even on cancellation")
	}
}

func TestSplitEvalBatchesStreaming(t *testing.T) {
	// Feed batches through a channel while evaluation is running — the
	// engine's streaming path — and check the merged result.
	p := library.NegativeSentiment()
	doc := corpus.Reviews(26, 40)[0] + ". " + corpus.Reviews(27, 40)[2]
	segs := SegmentsOf(doc, library.FastSentenceSplit(doc))
	want := SplitEval(p, segs, 3)
	batches := make(chan []Segment)
	go func() {
		defer close(batches)
		for _, s := range segs {
			batches <- []Segment{s}
		}
	}()
	got, err := SplitEvalBatches(context.Background(), p, batches, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("streamed batch evaluation differs from slice evaluation")
	}
}
