// Command spand is the spanner serving daemon: a long-lived HTTP server
// around the streaming extraction engine of internal/engine. It turns
// the paper's offline pipeline — decide split-correctness once, then
// distribute extraction over segments — into an online service:
//
//	POST /v1/extract   extract a relation from a document. The document
//	                   may be inline JSON, a raw request body, or a
//	                   streamed multipart part. A streamed document is
//	                   segmented incrementally while it uploads whenever
//	                   the plan's locality verdict proves that safe
//	                   (split-correct plan, disjoint splitter, locality
//	                   decided on the splitter automaton — no flags
//	                   needed); otherwise it is buffered whole, which is
//	                   sound for every splitter. -stream-incremental
//	                   force-streams plans whose verdict is no/unknown:
//	                   an unsafe operator assertion of locality.
//	POST /v1/check     split-correctness / self-splittability /
//	                   disjointness / locality verdicts for a formula
//	                   pair, served from the plan cache.
//	GET  /v1/stats     one consistent JSON snapshot: throughput counters
//	                   (documents total and streamed incrementally,
//	                   bytes, segments), cache hit rate, pool
//	                   configuration and the force-stream flag, the
//	                   pipeline-stage time breakdown (plan / segment /
//	                   eval shares with p50/p90/p99, plus the nested
//	                   merge / localize / sim stages), work-stealing
//	                   executor statistics, and per-endpoint request
//	                   counts, error counts and latency percentiles with
//	                   the current in-flight gauge.
//	GET  /metrics      the same instrumentation in the Prometheus text
//	                   exposition format, for scraping.
//
// A successful extraction responds with the plan section — strategy,
// verdicts, cache_hit, plan_compile_ms — plus ingest ("inline",
// "streamed" or "buffered"), vars, count and the tuples as arrays of
// 1-based [start, end) spans:
//
//	{"strategy":"split-parallel",
//	 "verdicts":{"disjoint":"yes","self_splittable":"yes","local":"yes"},
//	 "cache_hit":false, "plan_compile_ms":1.234, "ingest":"inline",
//	 "vars":["y"], "count":2, "tuples":[[[6,21]],[[26,34]]]}
//
// Example:
//
//	spand -addr :8080 &
//	curl -s localhost:8080/v1/extract -H 'Content-Type: application/json' \
//	  -d '{"spanner":"(.*[^a-z0-9])?(y{[a-z0-9]+@[a-z0-9]+})([^a-z0-9].*)?",
//	       "splitter":"(x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*|[^.!?\\n]*([.!?\\n][^.!?\\n]*)*[.!?\\n](x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*",
//	       "doc":"mail ann@example. or bob@host!"}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "evaluation workers (0 = GOMAXPROCS)")
		batch     = flag.Int("batch", 16, "segments per worker task")
		cacheSize = flag.Int("cache", 128, "plan cache capacity")
		chunk     = flag.Int("chunk", 64<<10, "streaming read size in bytes")
		limit     = flag.Int("limit", 0, "decision-procedure state limit (0 = library default)")
		timeout   = flag.Duration("timeout", 0, "per-request timeout (0 = none)")
		streamInc = flag.Bool("stream-incremental", false, "UNSAFE: force incremental segmentation for split plans whose splitter the locality decision procedure could not prove local (those proven local stream automatically); asserts every deployed splitter is local anyway — a wrong assertion silently mis-extracts")
		maxDoc    = flag.Int64("max-doc", 0, "per-document memory budget in bytes (0 = 256 MiB, negative = unlimited)")
	)
	flag.Parse()

	eng := engine.New(engine.Config{
		PlanCache:         *cacheSize,
		Workers:           *workers,
		Batch:             *batch,
		ChunkSize:         *chunk,
		StateLimit:        *limit,
		StreamIncremental: *streamInc,
		MaxDocBuffer:      *maxDoc,
	})
	handler := newServer(eng)
	if *timeout > 0 {
		handler = http.TimeoutHandler(handler, *timeout, `{"error":"request timed out"}`)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	go func() {
		log.Printf("spand: listening on %s (workers=%d batch=%d cache=%d)",
			*addr, eng.Stats().Workers, *batch, *cacheSize)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("spand: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("spand: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("spand: shutdown: %v", err)
	}
	st := eng.Stats()
	log.Printf("spand: served %d documents, %d bytes, %d segments; cache hit rate %.2f",
		st.Documents, st.Bytes, st.Segments, st.PlanCache.HitRate)
}
