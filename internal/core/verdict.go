package core

// Verdict is the memoized outcome of one of the package's decision
// procedures. The procedures are PSPACE-complete in general (Theorem 5.1)
// and run under a state-space limit, so besides yes/no a verdict can be
// unknown: either it has not been computed yet, or the limit was exceeded
// (automata.ErrTooLarge) and the caller fell back to a safe strategy.
// Long-lived callers such as the extraction engine cache verdicts next to
// the compiled automata so the cost is paid once per (spanner, splitter)
// pair rather than once per request.
type Verdict int8

// The three verdict values. VerdictUnknown is the zero value so that a
// zero PlanVerdicts means "nothing decided yet".
const (
	VerdictUnknown Verdict = iota
	VerdictYes
	VerdictNo
)

// VerdictOf converts a decision procedure's boolean answer to a Verdict.
func VerdictOf(ok bool) Verdict {
	if ok {
		return VerdictYes
	}
	return VerdictNo
}

func (v Verdict) String() string {
	switch v {
	case VerdictYes:
		return "yes"
	case VerdictNo:
		return "no"
	}
	return "unknown"
}

// MarshalText renders the verdict as its String form, so JSON consumers
// see "yes"/"no"/"unknown" rather than integers.
func (v Verdict) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// PlanVerdicts groups the verdicts that determine how a (spanner,
// splitter) pair may be evaluated: whether the splitter is disjoint
// (Proposition 5.5), whether the pair is split-correct for a supplied
// split-spanner (Theorem 5.1/5.7), whether the spanner is
// self-splittable (Theorems 5.16–5.17), and whether the splitter is
// local (Splitter.IsLocal) — i.e. proven safe for incremental chunked
// segmentation of streamed documents. Note records why a verdict is
// unknown (typically the state-space limit).
type PlanVerdicts struct {
	Disjoint       Verdict `json:"disjoint,omitempty"`
	SplitCorrect   Verdict `json:"split_correct,omitempty"`
	SelfSplittable Verdict `json:"self_splittable,omitempty"`
	Local          Verdict `json:"local,omitempty"`
	Note           string  `json:"note,omitempty"`
}
