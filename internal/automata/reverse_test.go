package automata

import (
	"math/rand"
	"testing"
)

func reverseWord(w []int) []int {
	out := make([]int, len(w))
	for i, s := range w {
		out[len(w)-1-i] = s
	}
	return out
}

// TestReverseLanguage is the defining property: L(Reverse(A)) is exactly
// the set of reversals of words in L(A), checked by simulation on random
// automata and random words.
func TestReverseLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a := randomNFA(rng, 1+rng.Intn(3), 6)
		r := Reverse(a)
		for j := 0; j < 40; j++ {
			w := make([]int, rng.Intn(7))
			for k := range w {
				w[k] = rng.Intn(a.NumSymbols)
			}
			if got, want := r.Accepts(reverseWord(w)), a.Accepts(w); got != want {
				t.Fatalf("instance %d: Reverse accepts reverse(%v)=%v, original accepts=%v", i, w, got, want)
			}
		}
	}
}

// TestReverseInvolution: reversing twice yields an equivalent automaton.
func TestReverseInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		a := randomNFA(rng, 2, 5)
		rr := Reverse(Reverse(a))
		eq, err := Equivalent(a, rr, 0)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if !eq {
			t.Fatalf("instance %d: double reversal changed the language", i)
		}
	}
}

// TestReverseFixedExample pins down the orientation on a concrete
// automaton for "ab": the reversal must accept exactly "ba".
func TestReverseFixedExample(t *testing.T) {
	a := New(2)
	q0 := a.AddState(false)
	q1 := a.AddState(false)
	q2 := a.AddState(true)
	a.AddStart(q0)
	a.AddEdge(q0, 0, q1)
	a.AddEdge(q1, 1, q2)
	r := Reverse(a)
	if !r.Accepts([]int{1, 0}) {
		t.Fatal("reversal of {ab} must accept ba")
	}
	if r.Accepts([]int{0, 1}) {
		t.Fatal("reversal of {ab} must not accept ab")
	}
	if r.Accepts(nil) {
		t.Fatal("reversal of {ab} must not accept ε")
	}
}

// TestReverseEmptyAndEpsilon: the empty language reverses to the empty
// language; ε-acceptance is preserved.
func TestReverseEmptyAndEpsilon(t *testing.T) {
	empty := New(1)
	empty.AddStart(empty.AddState(false))
	if !Reverse(empty).IsEmpty() {
		t.Fatal("reversal of the empty language must be empty")
	}
	eps := New(1)
	eps.AddStart(eps.AddState(true))
	if !Reverse(eps).Accepts(nil) {
		t.Fatal("reversal must preserve ε-acceptance")
	}
}
