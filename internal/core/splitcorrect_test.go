package core

import (
	"testing"

	"repro/internal/regexformula"
	"repro/internal/vsa"
)

// splitCorrectBrute decides P = P_S ∘ S by enumeration over all documents
// up to maxLen.
func splitCorrectBrute(p, ps *vsa.Automaton, s *Splitter, sigma string, maxLen int) bool {
	for _, d := range docs(sigma, maxLen) {
		got := ComposeBrute(ps, s, d)
		want := p.Eval(d)
		aligned, err := got.Project(want.Vars)
		if err != nil {
			panic(err)
		}
		if !aligned.Equal(want) {
			return false
		}
	}
	return true
}

// splitCorrectCases lists (P, P_S, S) triples over the alphabet sigma with
// ground truth verified by brute force.
var splitCorrectCases = []struct {
	name     string
	p, ps, s string
	sigma    string
	want     bool
}{
	{
		name: "whole-document splitter is always self-correct",
		p:    ".*y{a}.*", ps: ".*y{a}.*", s: "x{.*}",
		sigma: "ab", want: true,
	},
	{
		name: "Example 5.8 via PS = a(y{b})",
		p:    "a(y{b})b", ps: "a(y{b})", s: "x{ab}b|a(x{bb})",
		sigma: "ab", want: true,
	},
	{
		name: "Example 5.8 via PS' = y{b}b",
		p:    "a(y{b})b", ps: "y{b}b", s: "x{ab}b|a(x{bb})",
		sigma: "ab", want: true,
	},
	{
		name: "Example 5.8 with the wrong split-spanner",
		p:    "a(y{b})b", ps: "y{b}", s: "x{ab}b|a(x{bb})",
		sigma: "ab", want: false,
	},
	{
		name: "token extractor splits by unit tokens",
		p:    ".*y{a}.*", ps: "y{a}", s: ".*x{.}.*",
		sigma: "ab", want: true,
	},
	{
		name: "2-byte span does not split by unit tokens",
		p:    ".*y{ab}.*", ps: "y{ab}", s: ".*x{.}.*",
		sigma: "ab", want: false,
	},
	{
		name: "2-byte span splits by 2-grams",
		p:    ".*y{ab}.*", ps: "y{ab}", s: ".*x{..}.*",
		sigma: "ab", want: true,
	},
	{
		name:  "blocks starting with g are self-splittable by blocks",
		p:     "(y{g[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(y{g[^;]*})(;[^;]*)*",
		ps:    "(y{g[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(y{g[^;]*})(;[^;]*)*",
		s:     "(x{[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(x{[^;]*})(;[^;]*)*",
		sigma: "g;", want: true,
	},
	{
		name:  "non-first blocks are not split-correct via whole-segment PS",
		p:     "[^;]*(;[^;]*)*;(y{[^;]*})(;[^;]*)*",
		ps:    "y{[^;]*}",
		s:     "(x{[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(x{[^;]*})(;[^;]*)*",
		sigma: "g;", want: false,
	},
	{
		name: "empty-span extractor splits by unit tokens via empty PS",
		p:    ".*(y{}).*.|.+(y{})", ps: "y{}.|.(y{})", s: ".*x{.}.*",
		sigma: "ab", want: true,
	},
	{
		name: "Boolean spanner with whole-document splitter",
		p:    "a.*", ps: "a.*", s: "x{.*}",
		sigma: "ab", want: true,
	},
	{
		name: "Boolean spanner, wrong domain",
		p:    "a.*", ps: ".*", s: "x{a.*}",
		sigma: "ab", want: true, // S filters to documents starting with a
	},
}

func TestSplitCorrectAgainstBruteForce(t *testing.T) {
	for _, c := range splitCorrectCases {
		t.Run(c.name, func(t *testing.T) {
			p := regexformula.MustCompile(c.p)
			ps := regexformula.MustCompile(c.ps)
			s := splitterOf(t, c.s)
			brute := splitCorrectBrute(p, ps, s, c.sigma, 5)
			if brute != c.want {
				t.Fatalf("ground truth mismatch: brute force says %v", brute)
			}
			got, err := SplitCorrect(p, ps, s, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Fatalf("SplitCorrect = %v, want %v", got, c.want)
			}
		})
	}
}

func TestSplitCorrectPolyAgreesWithGeneral(t *testing.T) {
	for _, c := range splitCorrectCases {
		t.Run(c.name, func(t *testing.T) {
			p, err := regexformula.MustCompile(c.p).Determinize(0)
			if err != nil {
				t.Fatal(err)
			}
			if p.Arity() == 0 {
				t.Skip("polynomial procedure does not apply to Boolean spanners")
			}
			ps, err := regexformula.MustCompile(c.ps).Determinize(0)
			if err != nil {
				t.Fatal(err)
			}
			sAuto, err := regexformula.MustCompile(c.s).Determinize(0)
			if err != nil {
				t.Fatal(err)
			}
			s := MustSplitter(sAuto)
			if !s.IsDisjoint() {
				t.Skip("polynomial procedure requires a disjoint splitter")
			}
			got, err := SplitCorrectPoly(p, ps, s)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Fatalf("SplitCorrectPoly = %v, want %v", got, c.want)
			}
			auto, err := SplitCorrectAuto(p, ps, s, 0)
			if err != nil {
				t.Fatal(err)
			}
			if auto != c.want {
				t.Fatalf("SplitCorrectAuto = %v, want %v", auto, c.want)
			}
		})
	}
}

func TestSplitCorrectWitness(t *testing.T) {
	p := regexformula.MustCompile(".*y{ab}.*")
	ps := regexformula.MustCompile("y{ab}")
	s := splitterOf(t, ".*x{.}.*")
	ok, witness, err := SplitCorrectWitness(p, ps, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("expected a violation")
	}
	// The witness document must actually separate P from PS ∘ S.
	if p.Eval(witness).Equal(ComposeBrute(ps, s, witness)) {
		t.Fatalf("witness %q does not separate the spanners", witness)
	}
}

func TestSplitCorrectPolyRejectsBadInputs(t *testing.T) {
	// Two open-edges on the same byte to different states: genuinely
	// nondeterministic even under the extended-alphabet reading.
	p := regexformula.MustCompile("y{.}.|y{..}")
	if p.IsDeterministic() {
		t.Fatal("test premise: y{.}.|y{..} should compile nondeterministically")
	}
	s := splitterOf(t, ".*x{.}.*")
	if _, err := SplitCorrectPoly(p, p, s); err == nil {
		t.Fatal("nondeterministic input must be rejected")
	}
	pd, _ := regexformula.MustCompile(".*y{a}.*").Determinize(0)
	sOver := splitterOf(t, ".*x{..}.*") // overlapping 2-grams
	sd, _ := sOver.auto.Determinize(0)
	if _, err := SplitCorrectPoly(pd, pd, MustSplitter(sd)); err == nil {
		t.Fatal("non-disjoint splitter must be rejected")
	}
	b := regexformula.MustCompile("a*")
	bd, _ := b.Determinize(0)
	sd2, _ := splitterOf(t, "x{.*}").auto.Determinize(0)
	if _, err := SplitCorrectPoly(bd, bd, MustSplitter(sd2)); err == nil {
		t.Fatal("Boolean spanners must be rejected by the polynomial procedure")
	}
}

// TestSelfSplittabilityHTTPExample reproduces the Section 3.1 discussion:
// identifying the request line as "the line starting with GET" is
// self-splittable by the request splitter, while identifying it as "the
// line following a blank line" is not (but is splittable via a different
// split-spanner). Lines are separated by ';' in this miniature.
func TestSelfSplittabilityHTTPExample(t *testing.T) {
	s := splitterOf(t, "(x{[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(x{[^;]*})(;[^;]*)*")
	get := regexformula.MustCompile("(y{g[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(y{g[^;]*})(;[^;]*)*")
	ok, err := SelfSplittable(get, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("the GET-based extractor must be self-splittable by request blocks")
	}
	after := regexformula.MustCompile("[^;]*(;[^;]*)*;(y{[^;]*})(;[^;]*)*")
	ok, err = SelfSplittable(after, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("the position-based extractor must not be self-splittable")
	}
}
