package parallel

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/library"
	"repro/internal/regexformula"
	"repro/internal/vsa"
)

type fuzzPair struct {
	name string
	p    *vsa.Automaton
	s    *core.Splitter
	// remap optionally projects fuzz documents onto the alphabet over
	// which the pair's split-correctness was proved: the token-run pair is
	// split-correct over {a,b} only (a byte outside [ab] kills the whole-
	// document match but not a per-segment match).
	remap func(string) string
}

func toAB(doc string) string {
	b := []byte(doc)
	for i := range b {
		if b[i]%2 == 0 {
			b[i] = 'a'
		} else {
			b[i] = 'b'
		}
	}
	return string(b)
}

// fuzzPairs holds (spanner, splitter) pairs whose split-correctness is
// proved by the decision procedures in the library and core test suites,
// so SplitEval over the splitter's segments must agree with Sequential on
// EVERY document — the fuzz target asserts exactly that equality.
var fuzzPairs = sync.OnceValue(func() []fuzzPair {
	token, err := regexformula.MustCompile(
		"(y{aaaa})(b[ab]*)?|[ab]*b(y{aaaa})(b[ab]*)?").Determinize(0)
	if err != nil {
		panic(err)
	}
	blocks := core.MustSplitter(regexformula.MustCompile(
		"(x{[^b]*})(b[^b]*)*|[^b]*(b[^b]*)*b(x{[^b]*})(b[^b]*)*"))
	return []fuzzPair{
		{"sentiment/sentences", library.NegativeSentiment(), library.Sentences(), nil},
		{"token-runs/blocks", token, blocks, toAB},
	}
})

// FuzzSplitEvalVsSequential feeds arbitrary documents through the
// split-then-distribute pipeline on known split-correct (P, S) pairs and
// asserts the shifted union over segments equals direct evaluation — the
// paper's defining equation P = P ∘ S, checked end to end through the
// evaluation core, the splitter, and the work-stealing executor, on both
// the dealt-slice path (SplitEval at several worker counts and grains)
// and the channel-fed streaming path (SplitEvalBatches).
func FuzzSplitEvalVsSequential(f *testing.F) {
	f.Add("bad coffee. nice tea! aaaa b aaaa")
	f.Add("")
	f.Add("aaaabaaaa")
	f.Add("very bad service? bad bad.\nbadly aaaa")
	f.Fuzz(func(t *testing.T, doc string) {
		if len(doc) > 1<<12 {
			doc = doc[:1<<12]
		}
		for _, pair := range fuzzPairs() {
			d := doc
			if pair.remap != nil {
				d = pair.remap(d)
			}
			segs := SegmentsOf(d, pair.s.Split(d))
			want := Sequential(pair.p, d)
			want.Dedupe()
			// Dealt-slice path: worker counts and grains chosen so single
			// worker, per-segment chunks and multi-segment chunks (and the
			// steals between them) all agree.
			for _, opts := range []Options{{Workers: 1}, {Workers: 3, Batch: 1}, {Workers: 4, Batch: 3}} {
				got, err := SplitEvalCtx(context.Background(), pair.p, segs, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("%s (workers=%d batch=%d): split evaluation differs on %q\nsplit: %v\nseq:   %v",
						pair.name, opts.Workers, opts.Batch, d, got, want)
				}
			}
			// Streaming path: uneven batches through the channel feed, and
			// one oversized batch that the receiving worker must split onto
			// its deque for the others to steal.
			for _, whole := range []bool{false, true} {
				batches := make(chan []Segment, 1)
				go func() {
					defer close(batches)
					if whole {
						batches <- segs
						return
					}
					for lo := 0; lo < len(segs); {
						hi := lo + 1 + lo%3
						if hi > len(segs) {
							hi = len(segs)
						}
						batches <- segs[lo:hi]
						lo = hi
					}
				}()
				got, err := SplitEvalBatches(context.Background(), pair.p, batches, Options{Workers: 3})
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("%s (streamed, whole=%v): split evaluation differs on %q\nsplit: %v\nseq:   %v",
						pair.name, whole, d, got, want)
				}
			}
		}
	})
}
