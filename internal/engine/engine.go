// Package engine implements a long-lived streaming extraction engine on
// top of the split-correctness framework: the serving-side counterpart
// of the paper's split-then-distribute observation (Doleschal et al.,
// PODS 2019, Section 1). A one-shot evaluation pays for compiling the
// formulas and — far worse — for the PSPACE decision procedures that
// justify parallel evaluation, on every call. The engine amortizes both
// across requests:
//
//   - A plan cache memoizes compiled VSet-automata together with their
//     split-correctness / self-splittability / disjointness / locality
//     verdicts, behind an LRU with single-flight deduplication
//     (concurrent requests for the same (spanner, splitter) pair run
//     the decision procedures exactly once).
//   - Documents may arrive as io.Reader streams: when the locality
//     verdict proves it safe (or the operator forces it), the splitter
//     is applied incrementally with carry-over across chunk boundaries,
//     and completed segments are dispatched to the work-stealing
//     split-evaluation executor (internal/parallel) with configurable
//     batching and backpressure while the tail of the document is still
//     being read; otherwise the stream is buffered whole, which is
//     sound for arbitrary splitters.
//   - Segment relations are shifted and merged into a deterministic
//     (sorted, deduplicated) result, byte-identical to one-shot
//     evaluation of the whole document.
//
// cmd/spand wraps the engine in an HTTP daemon.
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/span"
)

// Config tunes an Engine. The zero value selects sensible defaults.
type Config struct {
	// PlanCache is the maximum number of cached plans (default 128).
	PlanCache int
	// Workers is the number of evaluation workers in the work-stealing
	// executor (default GOMAXPROCS). Results never depend on it.
	Workers int
	// RequestWorkers caps the executor parallelism any single request may
	// use (default: Workers, i.e. no per-request cap — the right choice
	// for single-tenant batch work). A serving daemon sets it below
	// Workers so cores stay fungible across requests rather than within
	// one: with admission control allowing T concurrent requests, a
	// budget of ⌈2·Workers/T⌉ keeps one 128K-document request from
	// starving the pool while still letting a lone request use spare
	// cores. Results never depend on it.
	RequestWorkers int
	// Batch is the number of segments grouped into one dispatched task —
	// the executor's scheduling grain (default 16). Results never depend
	// on it.
	Batch int
	// ChunkSize is the read size for streaming ingestion (default 64 KiB).
	ChunkSize int
	// StateLimit bounds the decision procedures' state space; 0 selects
	// the library default. Plans whose verdict exceeds the limit degrade
	// to sequential evaluation instead of failing.
	StateLimit int
	// StreamIncremental force-enables incremental segmentation of
	// streamed documents for split plans whose splitter the locality
	// decision procedure (core.Splitter.IsLocal) could NOT prove local.
	// It is an unsafe assertion: incremental segmentation of a
	// non-local splitter can silently mis-segment, and with this flag
	// set the engine trusts the operator's claim instead of a proof.
	// The flag is never needed for provably local splitters — those
	// stream automatically (see WillStream) — and it never makes a
	// sequential or non-disjoint plan stream. The default (false)
	// streams exactly the split plans whose Verdicts.Local is yes and
	// buffers everything else whole — including plans whose splitter is
	// local but whose strategy settled on sequential — which is sound
	// for arbitrary splitters.
	StreamIncremental bool
	// MaxDocBuffer caps the bytes the engine will hold in memory for one
	// document: the whole document on the buffered paths (including
	// inline documents given to Extract), the carry-over buffer — the
	// suffix from the last still-open segment's start — on the streaming
	// path. Documents exceeding it fail with ErrDocTooLarge (the daemon
	// maps it to HTTP 413). 0 selects the default (256 MiB); negative
	// means unlimited.
	MaxDocBuffer int64
	// ReadTimeout bounds how long ExtractReader waits for a document
	// stream to make read progress. A stream that stalls longer fails
	// with ErrReadStalled (the daemon maps it to HTTP 408) instead of
	// holding the request's admission token and workers forever. 0
	// disables the guard (the library default: local readers do not
	// stall adversarially).
	ReadTimeout time.Duration
	// PlanCacheBytes bounds the summed estimated memory cost of cached
	// plans (0 selects 64 MiB; negative means unlimited). Together with
	// PlanCache it makes the cache cost-aware: many cheap plans and few
	// expensive ones hit the same ceiling.
	PlanCacheBytes int64
	// TenantPlans and TenantPlanBytes carve the cache budgets up per
	// tenant (Request.Tenant): at most TenantPlans entries and
	// TenantPlanBytes estimated bytes per tenant, enforced by evicting
	// the over-quota tenant's own least-recently-used plans. 0 selects
	// the corresponding global bound (i.e. no per-tenant carve-up).
	TenantPlans     int
	TenantPlanBytes int64
}

// ErrDocTooLarge is returned when a document exceeds Config.MaxDocBuffer.
var ErrDocTooLarge = errors.New("engine: document exceeds the configured buffer limit")

// ErrDeadlineExceeded is returned when a request's context deadline
// fires during planning or evaluation. It wraps (and is wrapped by
// errors carrying) context.DeadlineExceeded, so both errors.Is checks
// hold; the daemon maps it to HTTP 504 — the server gave up, unlike a
// client-initiated cancellation (context.Canceled, HTTP 499).
var ErrDeadlineExceeded = errors.New("engine: request deadline exceeded")

// ErrReadStalled is returned by ExtractReader when the document stream
// makes no read progress within Config.ReadTimeout. The daemon maps it
// to HTTP 408.
var ErrReadStalled = errors.New("engine: document stream stalled: no read progress within the configured timeout")

// wrapCtxErr stamps a context deadline error with the engine's typed
// ErrDeadlineExceeded so callers can separate "the server's deadline
// budget ran out" (504) from a client cancellation (499) without
// string-matching. Other errors pass through untouched.
func wrapCtxErr(err error) error {
	if err != nil && errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrDeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	}
	return err
}

func (c Config) withDefaults() Config {
	if c.PlanCache <= 0 {
		c.PlanCache = 128
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RequestWorkers <= 0 || c.RequestWorkers > c.Workers {
		c.RequestWorkers = c.Workers
	}
	if c.PlanCacheBytes == 0 {
		c.PlanCacheBytes = 64 << 20
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 64 << 10
	}
	if c.MaxDocBuffer == 0 {
		c.MaxDocBuffer = 256 << 20
	}
	return c
}

// Stats is a snapshot of engine counters for monitoring. StreamedDocs
// counts the documents that were segmented incrementally while being
// read (WillStream true: a proven-local splitter, or the
// StreamIncremental override); Documents minus StreamedDocs were
// buffered whole (or arrived inline). StreamForced echoes the
// configured StreamIncremental override so operators can see whether
// streamed documents are covered by proofs alone.
type Stats struct {
	UptimeSec      float64    `json:"uptime_sec"`
	Documents      uint64     `json:"documents"`
	StreamedDocs   uint64     `json:"streamed_docs"`
	Bytes          uint64     `json:"bytes"`
	Segments       uint64     `json:"segments"`
	SegmentsPerSec float64    `json:"segments_per_sec"`
	Workers        int        `json:"workers"`
	RequestWorkers int        `json:"request_workers"`
	Batch          int        `json:"batch"`
	StreamForced   bool       `json:"stream_forced"`
	PlanCache      CacheStats `json:"plan_cache"`
	// Stages breaks request-path time down by pipeline stage — plan,
	// segment, eval as top-level stages whose shares sum to 1, plus the
	// nested merge/localize/sim stages as fractions of the same total
	// (see StageStats.Share).
	Stages map[string]StageStats `json:"stages"`
	// Segmenter reports how streamed documents were segmented: resumable
	// compiled-scanner feeds versus fallback re-scanned bytes and bails.
	Segmenter SegmenterStats `json:"segmenter"`
	// Executor reports the work-stealing executor's scheduling counters.
	Executor ExecStats `json:"executor"`
	// Localization reports the match-window localizer's effectiveness
	// over instrumented (large) evaluations.
	Localization LocalizationStats `json:"localization"`
}

// Engine is a long-lived extraction engine; it is safe for concurrent
// use.
type Engine struct {
	cfg   Config
	cache *planCache
	start time.Time
	m     *Metrics
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg: cfg,
		cache: newPlanCache(cacheConfig{
			cap:         cfg.PlanCache,
			maxBytes:    cfg.PlanCacheBytes,
			tenantCap:   cfg.TenantPlans,
			tenantBytes: cfg.TenantPlanBytes,
		}),
		start: time.Now(),
	}
	e.m = newMetrics(e)
	return e
}

// Plan returns the compiled, verdict-annotated plan for the request,
// serving it from the plan cache when possible. hit reports whether the
// expensive work (compilation + decision procedures) was skipped —
// either a completed cached plan or a coalesced in-flight compilation.
func (e *Engine) Plan(ctx context.Context, req Request) (plan *Plan, hit bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, wrapCtxErr(err)
	}
	t0 := time.Now()
	defer func() {
		e.m.observeStage(StagePlan, time.Since(t0))
		err = wrapCtxErr(err)
	}()
	return e.cache.get(ctx, req.Tenant, req.key(), func() (*Plan, error) {
		p, err := compilePlan(req, e.cfg.StateLimit)
		if err != nil {
			return nil, err
		}
		// Attach the engine's evaluation metrics to the automatons the
		// plan will evaluate with. The cache is per-engine, so a cached
		// plan always reports into its own engine's counters.
		p.p.SetEvalMetrics(&e.m.eval)
		if p.ps != nil {
			p.ps.SetEvalMetrics(&e.m.eval)
		}
		return p, nil
	})
}

// Extract evaluates the plan on an in-memory document, using split
// evaluation on the work-stealing executor when the plan's verdicts
// justify it and sequential evaluation otherwise. The result is sorted and
// deduplicated. Like the reader paths, Extract enforces
// Config.MaxDocBuffer: an inline document over the budget fails with
// ErrDocTooLarge instead of being evaluated.
func (e *Engine) Extract(ctx context.Context, plan *Plan, doc string) (*span.Relation, error) {
	if e.cfg.MaxDocBuffer > 0 && int64(len(doc)) > e.cfg.MaxDocBuffer {
		return span.NewRelation(plan.p.Vars...),
			fmt.Errorf("%w (%d bytes > %d)", ErrDocTooLarge, len(doc), e.cfg.MaxDocBuffer)
	}
	e.m.documents.Inc()
	e.m.bytes.Add(uint64(len(doc)))
	if plan.Strategy == StrategySplit {
		t0 := time.Now()
		segs := parallel.SegmentsOf(doc, plan.s.Split(doc))
		e.m.observeStage(StageSegment, time.Since(t0))
		e.m.segments.Add(uint64(len(segs)))
		t1 := time.Now()
		rel, err := parallel.SplitEvalCtx(ctx, plan.ps, segs, e.evalOpts())
		e.m.observeStage(StageEval, time.Since(t1))
		return rel, wrapCtxErr(err)
	}
	if err := ctx.Err(); err != nil {
		return span.NewRelation(plan.p.Vars...), wrapCtxErr(err)
	}
	t0 := time.Now()
	rel := plan.p.Eval(doc) // Eval returns a deduplicated, sorted relation
	e.m.observeStage(StageEval, time.Since(t0))
	return rel, nil
}

// WillStream reports whether ExtractReader would segment this plan's
// documents incrementally (true) or buffer them whole (false).
// Streaming requires a split plan with a disjoint splitter, plus one
// of:
//
//   - Verdicts.Local == yes: the locality decision procedure
//     (core.Splitter.IsLocal, run once at plan compilation) proved
//     incremental segmentation byte-identical to whole-document
//     segmentation for every document and chunking — streaming is
//     enabled automatically, no configuration required; or
//   - Config.StreamIncremental: the operator's unsafe assertion that
//     the splitter is local anyway (the verdict was "no" or unknown).
//
// Everything else buffers, since incremental segmentation of a
// disjoint-but-non-local splitter can silently mis-segment. See
// segmenter and internal/core/locality.go.
func (e *Engine) WillStream(plan *Plan) bool {
	if plan.Strategy != StrategySplit || plan.Verdicts.Disjoint != core.VerdictYes {
		return false
	}
	return plan.Verdicts.Local == core.VerdictYes || e.cfg.StreamIncremental
}

// ExtractReader evaluates the plan on a document arriving as a stream.
// For plans that stream (see WillStream: a proven-local disjoint
// splitter, or the StreamIncremental override) the document is
// segmented incrementally — segments already discovered are evaluated
// by the work-stealing executor while later chunks are still being
// read. Idle workers block on the bounded dispatch channel, so a
// saturated pool stalls the segmenter and, through it, the reader —
// backpressure reaches all the way to the network socket. Other plans buffer
// the whole stream and fall back to Extract. When the plan's
// Verdicts.Local is yes the result is guaranteed identical to Extract
// on the concatenated stream; under the StreamIncremental override the
// guarantee is only as good as the operator's locality assertion.
// Memory is bounded by Config.MaxDocBuffer on both paths.
func (e *Engine) ExtractReader(ctx context.Context, plan *Plan, r io.Reader) (*span.Relation, error) {
	if e.cfg.ReadTimeout > 0 {
		// Guard both ingestion paths against a stalled stream: a reader
		// that stops making progress fails the request with ErrReadStalled
		// instead of pinning its admission token and workers.
		r = newStallReader(r, e.cfg.ReadTimeout)
	}
	if !e.WillStream(plan) {
		doc, err := e.readAllBounded(ctx, r)
		if err != nil {
			return span.NewRelation(plan.p.Vars...), err
		}
		return e.Extract(ctx, plan, doc)
	}
	e.m.documents.Inc()
	e.m.streamedDocs.Inc()

	batches := make(chan []parallel.Segment, e.cfg.Workers)
	readErr := make(chan error, 1)
	go func() {
		defer close(batches)
		g := e.newDocSegmenter(plan)
		chunk := make([]byte, e.cfg.ChunkSize)
		var pending []parallel.Segment
		// Segmentation time accumulates across the incremental feed/flush
		// calls and is recorded once per document when the producer exits.
		var segDur time.Duration
		defer func() { e.m.observeStage(StageSegment, segDur) }()
		// send dispatches full batches; sending blocks when every worker
		// is busy, which in turn pauses reading — backpressure all the
		// way to the producer of r.
		send := func(segs []parallel.Segment, final bool) bool {
			pending = append(pending, segs...)
			for len(pending) >= e.cfg.Batch || (final && len(pending) > 0) {
				n := e.cfg.Batch
				if n > len(pending) {
					n = len(pending)
				}
				batch := make([]parallel.Segment, n)
				copy(batch, pending[:n])
				pending = pending[n:]
				e.m.segments.Add(uint64(n))
				select {
				case batches <- batch:
				case <-ctx.Done():
					return false
				}
			}
			return true
		}
		for {
			n, err := r.Read(chunk)
			if n > 0 {
				e.m.bytes.Add(uint64(n))
				t0 := time.Now()
				segs := g.feed(chunk[:n])
				segDur += time.Since(t0)
				if !send(segs, false) {
					readErr <- ctx.Err()
					return
				}
				if e.cfg.MaxDocBuffer > 0 && int64(g.buffered()) > e.cfg.MaxDocBuffer {
					// The carry-over (one still-open segment) outgrew
					// the budget — e.g. a boundary-less document.
					readErr <- fmt.Errorf("%w (carry-over %d bytes > %d)", ErrDocTooLarge, g.buffered(), e.cfg.MaxDocBuffer)
					return
				}
			}
			switch {
			case err == io.EOF:
				t0 := time.Now()
				segs := g.flush()
				segDur += time.Since(t0)
				if !send(segs, true) {
					readErr <- ctx.Err()
					return
				}
				readErr <- nil
				return
			case err != nil:
				readErr <- err
				return
			case ctx.Err() != nil:
				readErr <- ctx.Err()
				return
			}
		}
	}()

	t0 := time.Now()
	rel, err := parallel.SplitEvalBatches(ctx, plan.ps, batches,
		parallel.Options{Workers: e.cfg.RequestWorkers, Metrics: &e.m.exec})
	// On this path evaluation overlaps ingestion, so the eval stage's
	// wall time includes time the workers spent blocked on the reader.
	e.m.observeStage(StageEval, time.Since(t0))
	// Prefer the producer's verdict when it is already in: a cancellation
	// arriving after a fully successful read+evaluation must not
	// nondeterministically discard the complete result.
	select {
	case rerr := <-readErr:
		if err == nil {
			err = rerr
		}
	default:
		select {
		case rerr := <-readErr:
			if err == nil {
				err = rerr
			}
		case <-ctx.Done():
			// The producer may be stuck in a Read that does not observe
			// ctx (readers are not cancellable in general); do not wait
			// for it. It exits on its own once the read returns or the
			// send fails.
			if err == nil {
				err = ctx.Err()
			}
		}
	}
	return rel, wrapCtxErr(err)
}

// Stats snapshots the engine counters, the per-stage time breakdown,
// the executor's scheduling statistics and the localizer's
// effectiveness in one pass.
func (e *Engine) Stats() Stats {
	up := time.Since(e.start)
	segs := e.m.segments.Load()
	s := Stats{
		UptimeSec:      up.Seconds(),
		Documents:      e.m.documents.Load(),
		StreamedDocs:   e.m.streamedDocs.Load(),
		Bytes:          e.m.bytes.Load(),
		Segments:       segs,
		Workers:        e.cfg.Workers,
		RequestWorkers: e.cfg.RequestWorkers,
		Batch:          e.cfg.Batch,
		StreamForced:   e.cfg.StreamIncremental,
		PlanCache:      e.cache.stats(),
		Stages:         e.m.stageStats(),
		Segmenter:      e.m.segmenterStats(),
		Executor:       e.m.execStats(e.cfg.Workers),
		Localization:   e.m.localizationStats(),
	}
	if up > 0 {
		s.SegmentsPerSec = float64(segs) / up.Seconds()
	}
	return s
}

func (e *Engine) evalOpts() parallel.Options {
	return parallel.Options{Workers: e.cfg.RequestWorkers, Batch: e.cfg.Batch, Metrics: &e.m.exec}
}

// readAllBounded reads the whole stream, failing with ErrDocTooLarge
// once it exceeds Config.MaxDocBuffer. The context is checked between
// reads so a request whose deadline fires mid-upload fails promptly
// (typed via wrapCtxErr) instead of buffering a slow body forever; a
// reader that stops returning at all is the stall guard's job
// (Config.ReadTimeout), not the context's.
func (e *Engine) readAllBounded(ctx context.Context, r io.Reader) (string, error) {
	var buf []byte
	chunk := make([]byte, e.cfg.ChunkSize)
	for {
		if err := ctx.Err(); err != nil {
			return "", wrapCtxErr(err)
		}
		n, err := r.Read(chunk)
		if n > 0 {
			if e.cfg.MaxDocBuffer > 0 && int64(len(buf)+n) > e.cfg.MaxDocBuffer {
				return "", fmt.Errorf("%w (> %d bytes)", ErrDocTooLarge, e.cfg.MaxDocBuffer)
			}
			buf = append(buf, chunk[:n]...)
		}
		if err == io.EOF {
			return string(buf), nil
		}
		if err != nil {
			return "", err
		}
	}
}
