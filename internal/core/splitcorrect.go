package core

import (
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/automata"
	"repro/internal/vsa"
)

// SplitCorrect decides the Split-correctness problem of Section 3.2: is
// P = P_S ∘ S? Following Theorem 5.1, the composition is constructed in
// polynomial time (Lemma C.2) and equivalence is tested; the equivalence
// test is PSPACE in the worst case and guarded by limit.
func SplitCorrect(p, ps *vsa.Automaton, s *Splitter, limit int) (bool, error) {
	return vsa.Equivalent(p, Compose(ps, s), limit)
}

// SplitCorrectWitness is SplitCorrect but, on failure, also returns a
// document on which P and P_S ∘ S disagree — the "debugging" use case of
// the introduction.
func SplitCorrectWitness(p, ps *vsa.Automaton, s *Splitter, limit int) (ok bool, witness string, err error) {
	comp := Compose(ps, s)
	doc, found, err := vsa.CounterExample(p, comp, limit)
	if err != nil {
		return false, "", err
	}
	if found {
		return false, doc, nil
	}
	doc, found, err = vsa.CounterExample(comp, p, limit)
	if err != nil {
		return false, "", err
	}
	if found {
		return false, doc, nil
	}
	return true, "", nil
}

// SplitCorrectAuto dispatches to the polynomial Theorem 5.7 procedure when
// its preconditions hold (deterministic p, ps and splitter; disjoint
// splitter; arity ≥ 1) and falls back to the general Theorem 5.1 procedure
// otherwise.
func SplitCorrectAuto(p, ps *vsa.Automaton, s *Splitter, limit int) (bool, error) {
	if p.Arity() > 0 && p.IsDeterministic() && ps.IsDeterministic() &&
		s.auto.IsDeterministic() && s.IsDisjoint() {
		return SplitCorrectPoly(p, ps, s)
	}
	return SplitCorrect(p, ps, s, limit)
}

// SelfSplitCorrect decides the equation P = P ∘ S underlying
// self-splittability (Theorem 5.16 route).
func SelfSplitCorrect(p *vsa.Automaton, s *Splitter, limit int) (bool, error) {
	return SplitCorrect(p, p, s, limit)
}

// ---------------------------------------------------------------------------
// Theorem 5.7: polynomial-time split-correctness for deterministic
// functional automata and a disjoint splitter.
//
// The procedure has three parts.
//
//  1. The cover condition must hold (Lemma 5.3 makes it necessary); it is
//     checked in polynomial time per Lemma 5.6.
//  2. For tuples with a nonempty hull the covering split is unique
//     (disjointness), so split-correctness restricted to those tuples is
//     the absence of a (document, split, tuple) witness on which exactly
//     one of P and P_S accepts. The witness search is a breadth-first
//     product simulation of P, S and P_S over guessed extended ref-words —
//     the paper's NL-style procedure — with dead states modeling rejection
//     by the deterministic components.
//  3. For tuples whose spans are all empty at a single boundary the
//     covering split need not be unique (up to three touching splits can
//     contain the boundary — an edge case the paper's uniqueness argument
//     overlooks; see DESIGN.md), so membership in P_S ∘ S is a disjunction
//     over the touching splits. Forward containment (P accepts ⇒ some
//     touching split's P_S accepts) is decided by inclusion–exclusion over
//     accepting-path counts of per-case unambiguous automata; the backward
//     direction (each case ⇒ P accepts) is containment into the
//     deterministic marked-word automaton of P.
// ---------------------------------------------------------------------------

// SplitCorrectPoly decides P = P_S ∘ S in polynomial time (Theorem 5.7).
// It requires p, ps and the splitter automaton to be deterministic and s
// to be disjoint, and returns an error otherwise. Spanners of arity 0 are
// outside the scope of the paper's procedure and also return an error.
func SplitCorrectPoly(p, ps *vsa.Automaton, s *Splitter) (bool, error) {
	if p.Arity() == 0 {
		return false, fmt.Errorf("core: SplitCorrectPoly: Boolean spanners are not supported; use SplitCorrect")
	}
	ps2, err := alignToVars(ps, p.Vars)
	if err != nil {
		return false, err
	}
	ctx, err := newPolyCtx(p, ps2, s)
	if err != nil {
		return false, err
	}
	if !ctx.coverPoly() {
		return false, nil
	}
	if ctx.findDisagreement() {
		return false, nil
	}
	return ctx.emptyHullCorrect(), nil
}

func alignToVars(a *vsa.Automaton, vars []string) (*vsa.Automaton, error) {
	same := len(a.Vars) == len(vars)
	if same {
		for i := range vars {
			if a.Vars[i] != vars[i] {
				same = false
				break
			}
		}
	}
	if same {
		return a, nil
	}
	return a.ReorderVars(vars)
}

const deadState = -1

// move is one deterministic step alternative of a component automaton on a
// fixed operation batch: reach state to on any byte of cls (to may be
// deadState, meaning the component rejects on those bytes).
type move struct {
	to  int
	cls alphabet.Class
}

// movesOn lists the step alternatives of automaton a from state q (or
// deadState) on batch ops, partitioning the full byte space.
func movesOn(a *vsa.Automaton, q int, ops vsa.OpSet) []move {
	if q == deadState {
		return []move{{deadState, alphabet.Any}}
	}
	var out []move
	var covered alphabet.Class
	for _, e := range a.States[q].Edges {
		if e.Ops == ops {
			out = append(out, move{e.To, e.Class})
			covered = covered.Union(e.Class)
		}
	}
	if rest := covered.Complement(); !rest.IsEmpty() {
		out = append(out, move{deadState, rest})
	}
	return out
}

func hasFinal(a *vsa.Automaton, q int, ops vsa.OpSet) bool {
	if q == deadState {
		return false
	}
	for _, f := range a.States[q].Finals {
		if f == ops {
			return true
		}
	}
	return false
}

// findDisagreement implements part 2 of Theorem 5.7: it reports whether
// there are a document d, a split s ∈ S(d) and a tuple t with nonempty
// hull contained in s such that exactly one of t ∈ P(d) and shifted-t ∈
// P_S(d_s) holds.
func (c *polyCtx) findDisagreement() bool {
	p, ps, sa := c.p, c.ps, c.s.auto
	n := p.Arity()
	all := vsa.AllClosed(n)
	type cfg struct {
		phase int // 1 before the split, 2 inside, 3 after
		qp    int
		qs    int
		qps   int
		psAcc bool
		st    vsa.Status
	}
	seen := map[cfg]bool{}
	var queue []cfg
	push := func(nc cfg) {
		// Prune configurations from which neither side can accept.
		if nc.phase == 2 && nc.qp == deadState && nc.qps == deadState {
			return
		}
		if nc.phase == 3 && nc.qp == deadState && !nc.psAcc {
			return
		}
		if !seen[nc] {
			seen[nc] = true
			queue = append(queue, nc)
		}
	}
	push(cfg{1, p.Start, sa.Start, deadState, false, 0})
	// singleBatch reports whether taking batch b from status st would
	// realize an empty-hull tuple (all operations at one boundary); those
	// tuples belong to part 3.
	singleBatch := func(st vsa.Status, b batch) bool { return st == 0 && b.st == all }
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		// End-of-document acceptance checks.
		switch k.phase {
		case 2:
			for _, f := range sa.States[k.qs].Finals {
				if splitOpKind(f) != sClose {
					continue
				}
				for _, b := range batchesFrom(k.st, n) {
					if b.st != all || singleBatch(k.st, b) {
						continue
					}
					pAcc := hasFinal(p, k.qp, b.ops)
					psAcc := hasFinal(ps, k.qps, b.ops)
					if pAcc != psAcc {
						return true
					}
				}
			}
		case 3:
			for _, f := range sa.States[k.qs].Finals {
				if splitOpKind(f) != sNone {
					continue
				}
				if hasFinal(p, k.qp, 0) != k.psAcc {
					return true
				}
			}
		}
		// Letter steps.
		for _, e := range sa.States[k.qs].Edges {
			kind := splitOpKind(e.Ops)
			switch {
			case k.phase == 1 && kind == sNone:
				for _, mp := range movesOn(p, k.qp, 0) {
					cls := e.Class.Intersect(mp.cls)
					if !cls.IsEmpty() {
						push(cfg{1, mp.to, e.To, deadState, false, 0})
					}
				}
			case k.phase == 1 && kind == sOpen:
				for _, b := range batchesFrom(0, n) {
					if singleBatch(0, b) {
						continue
					}
					for _, mp := range movesOn(p, k.qp, b.ops) {
						for _, mps := range movesOn(ps, ps.Start, b.ops) {
							cls := e.Class.Intersect(mp.cls).Intersect(mps.cls)
							if !cls.IsEmpty() {
								push(cfg{2, mp.to, e.To, mps.to, false, b.st})
							}
						}
					}
				}
			case k.phase == 2 && kind == sNone:
				for _, b := range batchesFrom(k.st, n) {
					if singleBatch(k.st, b) {
						continue
					}
					for _, mp := range movesOn(p, k.qp, b.ops) {
						for _, mps := range movesOn(ps, k.qps, b.ops) {
							cls := e.Class.Intersect(mp.cls).Intersect(mps.cls)
							if !cls.IsEmpty() {
								push(cfg{2, mp.to, e.To, mps.to, false, b.st})
							}
						}
					}
				}
			case k.phase == 2 && kind == sClose:
				for _, b := range batchesFrom(k.st, n) {
					if b.st != all || singleBatch(k.st, b) {
						continue
					}
					psAcc := hasFinal(ps, k.qps, b.ops)
					for _, mp := range movesOn(p, k.qp, b.ops) {
						cls := e.Class.Intersect(mp.cls)
						if !cls.IsEmpty() {
							push(cfg{3, mp.to, e.To, deadState, psAcc, all})
						}
					}
				}
			case k.phase == 3 && kind == sNone:
				for _, mp := range movesOn(p, k.qp, 0) {
					cls := e.Class.Intersect(mp.cls)
					if !cls.IsEmpty() {
						push(cfg{3, mp.to, e.To, deadState, k.psAcc, all})
					}
				}
			}
		}
	}
	return false
}

// emptyHullCorrect implements part 3 of Theorem 5.7. The marked-word
// automaton of P over empty-hull tuples must coincide with the union of
// the four touching-split case automata of P_S ∘ S.
func (c *polyCtx) emptyHullCorrect() bool {
	a1 := c.buildAPe()
	cases := make([]*automata.NFA, numCases)
	for k := 0; k < numCases; k++ {
		cases[k] = c.buildSplitCase(k)
	}
	// Forward: P accepts ⇒ some touching split's P_S accepts.
	if !containsViaUnion(a1, cases) {
		return false
	}
	// Backward: every touching-split acceptance is matched by P. The
	// marked-word automaton of a deterministic P is deterministic, so each
	// containment is a linear product check.
	for k := 0; k < numCases; k++ {
		trimmed := cases[k].Trim()
		if trimmed.Len() == 0 {
			continue
		}
		if ok, _ := automata.ContainsDet(trimmed, a1); !ok {
			return false
		}
	}
	return true
}

// buildSplitCase builds the automaton accepting marked empty-hull words
// for which S has a split touching the batch boundary in the given way
// and P_S accepts the corresponding all-empty tuple on the segment. Each
// case automaton is unambiguous: the touching split of each kind is
// unique by disjointness, and S and P_S are deterministic.
func (c *polyCtx) buildSplitCase(kind int) *automata.NFA {
	n := automata.New(c.nsym)
	sa, ps := c.s.auto, c.ps
	batchSym := c.opIdx[c.all]
	psAccEmpty := hasFinal(ps, ps.Start, c.all)
	// Modes: 0 pre, 1 open-before-boundary (with P_S state), 2 pending
	// (just after the batch symbol), 3 open-after-boundary (with P_S
	// state), 4 done.
	type key struct {
		mode int
		qs   int
		qps  int
	}
	id := map[key]int{}
	var queue []key
	intern := func(k key) int {
		if i, ok := id[k]; ok {
			return i
		}
		final := false
		for _, f := range sa.States[k.qs].Finals {
			kf := splitOpKind(f)
			switch k.mode {
			case 2:
				if kind == caseEmptyAt && kf == sWrap && psAccEmpty {
					final = true
				}
				if kind == caseEndsAt && kf == sClose {
					final = true
				}
			case 3:
				if kf == sClose && hasFinal(ps, k.qps, 0) {
					final = true
				}
			case 4:
				if kf == sNone {
					final = true
				}
			}
		}
		i := n.AddState(final)
		id[k] = i
		queue = append(queue, k)
		return i
	}
	n.AddStart(intern(key{0, sa.Start, deadState}))
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		from := id[k]
		letter := func(cls alphabet.Class, mode, qs, qps int) {
			if cls.IsEmpty() {
				return
			}
			to := intern(key{mode, qs, qps})
			for _, a := range c.atomsOf(cls) {
				n.AddEdge(from, c.lsym(a, 0), to)
			}
		}
		switch k.mode {
		case 0: // before the boundary, split not open
			for _, e := range sa.States[k.qs].Edges {
				switch splitOpKind(e.Ops) {
				case sNone:
					letter(e.Class, 0, e.To, deadState)
				case sOpen:
					if kind == caseEndsAt || kind == caseStrict {
						// The split (and P_S) starts before the boundary.
						for _, f := range ps.States[ps.Start].Edges {
							if f.Ops == 0 {
								letter(e.Class.Intersect(f.Class), 1, e.To, f.To)
							}
						}
					}
				}
			}
			if kind == caseEmptyAt || kind == caseStartsAt {
				n.AddEdge(from, batchSym, intern(key{2, k.qs, deadState}))
			}
		case 1: // split open before the boundary
			for _, e := range sa.States[k.qs].Edges {
				if splitOpKind(e.Ops) != sNone {
					continue
				}
				for _, f := range ps.States[k.qps].Edges {
					if f.Ops == 0 {
						letter(e.Class.Intersect(f.Class), 1, e.To, f.To)
					}
				}
			}
			switch kind {
			case caseEndsAt:
				// The boundary is the segment's end: P_S must accept with
				// the complete batch as its final operations.
				if hasFinal(ps, k.qps, c.all) {
					n.AddEdge(from, batchSym, intern(key{2, k.qs, deadState}))
				}
			case caseStrict:
				n.AddEdge(from, batchSym, intern(key{2, k.qs, k.qps}))
			}
		case 2: // immediately after the batch symbol
			for _, e := range sa.States[k.qs].Edges {
				kk := splitOpKind(e.Ops)
				switch kind {
				case caseEmptyAt:
					if kk == sWrap && psAccEmpty {
						letter(e.Class, 4, e.To, deadState)
					}
				case caseStartsAt:
					if kk == sOpen {
						// P_S consumes the segment's first byte performing
						// the complete batch.
						for _, f := range ps.States[ps.Start].Edges {
							if f.Ops == c.all {
								letter(e.Class.Intersect(f.Class), 3, e.To, f.To)
							}
						}
					}
				case caseEndsAt:
					if kk == sClose {
						letter(e.Class, 4, e.To, deadState)
					}
				case caseStrict:
					if kk == sNone {
						// P_S performs the complete batch strictly inside
						// the segment.
						for _, f := range ps.States[k.qps].Edges {
							if f.Ops == c.all {
								letter(e.Class.Intersect(f.Class), 3, e.To, f.To)
							}
						}
					}
				}
			}
		case 3: // split open after the boundary
			for _, e := range sa.States[k.qs].Edges {
				switch splitOpKind(e.Ops) {
				case sNone:
					for _, f := range ps.States[k.qps].Edges {
						if f.Ops == 0 {
							letter(e.Class.Intersect(f.Class), 3, e.To, f.To)
						}
					}
				case sClose:
					if hasFinal(ps, k.qps, 0) {
						letter(e.Class, 4, e.To, deadState)
					}
				}
			}
		case 4: // split closed
			for _, e := range sa.States[k.qs].Edges {
				if splitOpKind(e.Ops) == sNone {
					letter(e.Class, 4, e.To, deadState)
				}
			}
		}
	}
	n.DedupeEdges()
	return n
}
