package main

import (
	"net/http"
	"time"

	"repro/internal/obs"
)

// endpoints instrumented with per-endpoint counters and latency
// histograms. /metrics itself is deliberately not measured: scrapes
// should not perturb the serving statistics they read.
var endpoints = []string{"/v1/extract", "/v1/extract-batch", "/v1/check", "/v1/stats"}

// httpMetrics is the daemon's HTTP-level instrumentation: request and
// error counts plus a latency histogram per endpoint, and one global
// in-flight gauge. It registers its series into the engine's registry,
// so GET /metrics renders the full stack — HTTP, engine stages,
// executor, evaluation core — from one place.
type httpMetrics struct {
	inFlight obs.Gauge
	requests map[string]*obs.Counter
	errors   map[string]*obs.Counter
	latency  map[string]*obs.Histogram
}

func newHTTPMetrics(r *obs.Registry) *httpMetrics {
	m := &httpMetrics{
		requests: make(map[string]*obs.Counter, len(endpoints)),
		errors:   make(map[string]*obs.Counter, len(endpoints)),
		latency:  make(map[string]*obs.Histogram, len(endpoints)),
	}
	r.BindGauge("spand_http_in_flight", "requests currently being served", &m.inFlight)
	for _, ep := range endpoints {
		label := `{endpoint="` + ep + `"}`
		m.requests[ep] = r.Counter("spand_http_requests_total"+label, "HTTP requests served")
		m.errors[ep] = r.Counter("spand_http_errors_total"+label, "HTTP requests answered with status >= 400")
		h := &obs.Histogram{}
		r.BindDurationHistogram("spand_http_request_seconds"+label, "HTTP request latency", h)
		m.latency[ep] = h
	}
	return m
}

// statusWriter captures the response status so errors can be counted.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Unwrap lets http.ResponseController reach the underlying writer for
// Flush/EnableFullDuplex on the streamed multipart response path.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// wrap instruments a handler for one endpoint: in-flight gauge around
// the call, a latency observation and an error count after it.
func (m *httpMetrics) wrap(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reqs, errs, lat := m.requests[endpoint], m.errors[endpoint], m.latency[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		m.inFlight.Inc()
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		lat.RecordDuration(time.Since(t0))
		reqs.Inc()
		if sw.status >= 400 {
			errs.Inc()
		}
		m.inFlight.Dec()
	}
}

// endpointStats is the /v1/stats view of one instrumented endpoint.
type endpointStats struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
}

// snapshot renders every endpoint's statistics from one histogram
// snapshot each.
func (m *httpMetrics) snapshot() map[string]endpointStats {
	const msPerNS = 1e-6
	out := make(map[string]endpointStats, len(endpoints))
	for _, ep := range endpoints {
		s := m.latency[ep].Snapshot()
		out[ep] = endpointStats{
			Count:  m.requests[ep].Load(),
			Errors: m.errors[ep].Load(),
			MeanMS: s.Mean() * msPerNS,
			P50MS:  s.Quantile(0.50) * msPerNS,
			P90MS:  s.Quantile(0.90) * msPerNS,
			P99MS:  s.Quantile(0.99) * msPerNS,
			P999MS: s.Quantile(0.999) * msPerNS,
		}
	}
	return out
}
