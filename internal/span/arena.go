package span

// TupleArena carves Tuples out of large shared slabs, so that a worker
// accumulating many small tuples (the split-evaluation executor appends
// one per extraction result) performs one slab allocation per few
// thousand spans instead of one allocation per tuple. The zero value is
// ready to use.
//
// Tuples returned by Tuple remain valid for the lifetime of the arena's
// slabs; the garbage collector keeps a slab alive as long as any tuple
// carved from it is reachable, so an arena can be dropped as soon as its
// tuples have been handed off (e.g. appended to a Relation).
//
// A TupleArena is not safe for concurrent use; give each worker its own.
type TupleArena struct {
	slab []Span
}

// tupleArenaSlab is the slab size in spans; at 16 bytes per Span one
// slab is 64 KiB — big enough to amortize allocation, small enough not
// to strand memory on workers that see few results.
const tupleArenaSlab = 4096

// Tuple returns a zeroed n-span tuple carved from the current slab,
// starting a fresh slab when fewer than n spans remain. The returned
// slice has capacity exactly n, so appending to it never overwrites a
// neighboring tuple.
func (a *TupleArena) Tuple(n int) Tuple {
	if cap(a.slab)-len(a.slab) < n {
		size := tupleArenaSlab
		if size < n {
			size = n
		}
		a.slab = make([]Span, 0, size)
	}
	lo := len(a.slab)
	a.slab = a.slab[:lo+n]
	return Tuple(a.slab[lo : lo+n : lo+n])
}
