package vsa

// IsFunctional reports whether every accepting run of the raw automaton
// generates a valid ref-word (Section 4.2): each variable is opened
// exactly once and closed exactly once afterwards. A run is invalid as
// soon as any single variable is misused, so the test decomposes per
// variable: for each v, search for an accepting run that opens v twice,
// closes it while not open, or finishes with v unopened or unclosed. Each
// per-variable search is a reachability question over (state, status∪bad)
// pairs, giving O(|Vars| · |A|) time overall.
func (r *Raw) IsFunctional() bool {
	for v := range r.Vars {
		if !r.variableAlwaysValid(v) {
			return false
		}
	}
	return true
}

func (r *Raw) variableAlwaysValid(v int) bool {
	const bad = 3 // status code for "already misused"
	type node struct {
		q  int
		st int // 0 unseen, 1 open, 2 closed, 3 misused
	}
	seen := map[node]bool{}
	stack := []node{{r.Start, statusUnseen}}
	seen[stack[0]] = true
	open, close := Open(v), Close(v)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if r.Final[n.q] && n.st != statusClosed {
			// Accepting with v unopened, still open, or misused: some
			// ref-word in R(r) is invalid for v.
			return false
		}
		for _, e := range r.Adj[n.q] {
			st := n.st
			if e.Kind == LabelOp && e.Op == open {
				if st == statusUnseen {
					st = statusOpen
				} else {
					st = bad
				}
			} else if e.Kind == LabelOp && e.Op == close {
				if st == statusOpen {
					st = statusClosed
				} else {
					st = bad
				}
			}
			if e.Kind == LabelSymbol && e.Class.IsEmpty() {
				continue
			}
			nn := node{e.To, st}
			if !seen[nn] {
				seen[nn] = true
				stack = append(stack, nn)
			}
		}
	}
	return true
}
