package core

import (
	"strings"
	"testing"

	"repro/internal/regexformula"
	"repro/internal/span"
	"repro/internal/vsa"
)

// canonicalBrute computes P_S^can(d) by its definition, enumerating
// context documents d' = u·d·v with |u|,|v| ≤ ctxLen over sigma.
func canonicalBrute(p *vsa.Automaton, s *Splitter, d, sigma string, ctxLen int) *span.Relation {
	out := span.NewRelation(p.Vars...)
	for _, u := range docs(sigma, ctxLen) {
		for _, v := range docs(sigma, ctxLen) {
			dPrime := u + d + v
			want := span.New(len(u)+1, len(u)+len(d)+1)
			found := false
			for _, sp := range s.Split(dPrime) {
				if sp == want {
					found = true
					break
				}
			}
			if !found {
				continue
			}
			rel := p.Eval(dPrime)
			for _, t := range rel.Tuples {
				inside := true
				for _, spn := range t {
					if !want.Contains(spn) {
						inside = false
						break
					}
				}
				if inside {
					out.Add(t.Unshift(want))
				}
			}
		}
	}
	out.Dedupe()
	return out
}

// TestCanonicalExample510 pins the exact computation of Example 5.10: for
// P = a(y{b})b and S = x{ab}b + a(x{bb}), the canonical split-spanner
// satisfies P_S^can(ab) = {[2,3⟩} and P_S^can(bb) = {[1,2⟩}, and
// (P_S^can ∘ S)(abb) = {[1,2⟩, [2,3⟩, [3,4⟩} ⊋ P(abb).
func TestCanonicalExample510(t *testing.T) {
	p := regexformula.MustCompile("a(y{b})b")
	s := splitterOf(t, "x{ab}b|a(x{bb})")
	can := Canonical(p, s)
	if err := can.Validate(); err != nil {
		t.Fatal(err)
	}
	relAB := can.Eval("ab")
	wantAB := span.NewRelation("y")
	wantAB.Add(span.Tuple{span.New(2, 3)})
	if !relAB.Equal(wantAB) {
		t.Fatalf("P_S^can(ab) = %v, want %v", relAB, wantAB)
	}
	relBB := can.Eval("bb")
	wantBB := span.NewRelation("y")
	wantBB.Add(span.Tuple{span.New(1, 2)})
	if !relBB.Equal(wantBB) {
		t.Fatalf("P_S^can(bb) = %v, want %v", relBB, wantBB)
	}
	// Note a discrepancy with the paper here: Example 5.10 displays
	// (P_S^can ∘ S)(abb) = {[1,2⟩,[2,3⟩,[3,4⟩}, obtained by shifting the
	// union P_S^can(ab) ∪ P_S^can(bb) by both splits. Under the paper's own
	// Definition of ∘ (Section 3), each segment's relation is shifted only
	// by its own split: {[2,3⟩ ≫ [1,3⟩} ∪ {[1,2⟩ ≫ [2,4⟩} = {[2,3⟩}. The
	// example's broader point — P_S^can ∘ S ⊈ P for non-disjoint splitters
	// — is demonstrated with Example 5.13's spanners in
	// TestCanonicalNonDisjointOvergeneration below.
	composed := Compose(can, s).Eval("abb")
	want := span.NewRelation("y")
	want.Add(span.Tuple{span.New(2, 3)})
	if !composed.Equal(want) {
		t.Fatalf("(P_S^can ∘ S)(abb) = %v, want %v", composed, want)
	}
}

// TestCanonicalNonDisjointOvergeneration demonstrates the phenomenon that
// Example 5.10 is after: for a non-disjoint splitter the canonical
// split-spanner can mix contexts, so P_S^can ∘ S may strictly exceed P.
// With Example 5.13's P = ab(y{b}) + c(y{b})b and S = x{Σ*} + Σ*x{bb}Σ*,
// the segment "bb" arises both inside abb and inside cbb with different
// covered tuples, and the mixed-in tuple [2,3⟩ appears on abb although
// P(abb) = {[3,4⟩}.
func TestCanonicalNonDisjointOvergeneration(t *testing.T) {
	p := regexformula.MustCompile("ab(y{b})|c(y{b})b")
	s := splitterOf(t, "x{.*}|.*(x{bb}).*")
	can := Canonical(p, s)
	composed := Compose(can, s)
	pOnABB := p.Eval("abb")
	canOnABB := composed.Eval("abb")
	extra := span.Tuple{span.New(2, 3)}
	if pOnABB.Has(extra) {
		t.Fatal("test premise: P(abb) must not contain [2,3⟩")
	}
	if !canOnABB.Has(extra) {
		t.Fatalf("(P_S^can ∘ S)(abb) = %v should overgenerate [2,3⟩", canOnABB)
	}
	ok, err := vsa.Contained(composed, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("P_S^can ∘ S ⊆ P must fail for this non-disjoint splitter")
	}
}

func TestCanonicalAgainstBruteForce(t *testing.T) {
	cases := []struct{ p, s, sigma string }{
		{"a(y{b})b", "x{ab}b|a(x{bb})", "ab"},
		{".*y{a}.*", ".*x{.}.*", "ab"},
		{".*y{ab}.*", ".*x{..}.*", "ab"},
		{".*y{a}.*", "x{.*}", "ab"},
		{"a*(y{a})a*b*", "x{a*}b*", "ab"},
	}
	for _, c := range cases {
		p := regexformula.MustCompile(c.p)
		s := splitterOf(t, c.s)
		can := Canonical(p, s)
		if err := can.Validate(); err != nil {
			t.Fatalf("(%s,%s): %v", c.p, c.s, err)
		}
		for _, d := range docs(c.sigma, 3) {
			brute := canonicalBrute(p, s, d, c.sigma, 2)
			got := can.Eval(d)
			// The brute force enumerates bounded contexts only, so it can
			// miss tuples that require longer ones; it must however be
			// contained in the construction, and for these simple spanners
			// contexts of length ≤ 2 are exhaustive, so we check equality.
			if !got.Equal(brute) {
				t.Fatalf("(%s,%s) on %q: canonical %v, brute %v", c.p, c.s, d, got, brute)
			}
		}
	}
}

// TestCanonicalLemma514 checks P = P_S ∘ S ⇒ P_S^can ⊆ P_S for disjoint
// splitters on the split-correct instances of the shared test table.
func TestCanonicalLemma514(t *testing.T) {
	for _, c := range splitCorrectCases {
		if !c.want {
			continue
		}
		p := regexformula.MustCompile(c.p)
		if p.Arity() == 0 {
			continue
		}
		ps := regexformula.MustCompile(c.ps)
		s := splitterOf(t, c.s)
		if !s.IsDisjoint() {
			continue
		}
		can := Canonical(p, s)
		ok, err := vsa.Contained(can, ps, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !ok {
			t.Errorf("%s: P_S^can ⊄ P_S, contradicting Lemma 5.14", c.name)
		}
	}
}

var splittabilityCases = []struct {
	name  string
	p, s  string
	sigma string
	want  bool
}{
	{
		name: "token extractor splittable by unit tokens",
		p:    ".*y{a}.*", s: ".*x{.}.*", sigma: "ab", want: true,
	},
	{
		name: "2-byte span not splittable by unit tokens (cover fails)",
		p:    ".*y{ab}.*", s: ".*x{.}.*", sigma: "ab", want: false,
	},
	{
		name:  "GET blocks: self-splittable, hence splittable",
		p:     "(y{g[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(y{g[^;]*})(;[^;]*)*",
		s:     "(x{[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(x{[^;]*})(;[^;]*)*",
		sigma: "g;", want: true,
	},
	{
		name:  "non-first blocks: covered but not splittable (condition 2 fails)",
		p:     "[^;]*(;[^;]*)*;(y{[^;]*})(;[^;]*)*",
		s:     "(x{[^;]*})(;[^;]*)*|[^;]*(;[^;]*)*;(x{[^;]*})(;[^;]*)*",
		sigma: "g;", want: false,
	},
	{
		name:  "first line after block start: splittable but not self-splittable",
		p:     ";(y{[^;]*})(;[^;]*)*",
		s:     ";(x{[^;]*})(;[^;]*)*",
		sigma: "g;", want: true,
	},
}

func TestSplittable(t *testing.T) {
	for _, c := range splittabilityCases {
		t.Run(c.name, func(t *testing.T) {
			p := regexformula.MustCompile(c.p)
			s := splitterOf(t, c.s)
			got, witness, err := Splittable(p, s, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Fatalf("Splittable = %v, want %v", got, c.want)
			}
			if got {
				// The returned canonical split-spanner must actually work.
				if !splitCorrectBrute(p, witness, s, c.sigma, 5) {
					t.Fatal("returned split-spanner fails brute-force verification")
				}
			}
		})
	}
}

func TestSplittableRejectsNonDisjoint(t *testing.T) {
	p := regexformula.MustCompile("a(y{b})b")
	s := splitterOf(t, "x{ab}b|a(x{bb})")
	if _, _, err := Splittable(p, s, 0); err == nil || !strings.Contains(err.Error(), "disjoint") {
		t.Fatalf("expected a disjointness error, got %v", err)
	}
}

// TestExample58SplittableViaBothWitnesses pins Example 5.8: with the
// non-disjoint splitter S both P_S = a(y{b}) and P_S' = y{b}b witness
// splittability even though they are different spanners.
func TestExample58SplittableViaBothWitnesses(t *testing.T) {
	p := regexformula.MustCompile("a(y{b})b")
	s := splitterOf(t, "x{ab}b|a(x{bb})")
	for _, psSrc := range []string{"a(y{b})", "y{b}b"} {
		ps := regexformula.MustCompile(psSrc)
		ok, err := SplitCorrect(p, ps, s, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("P_S = %s must witness splittability", psSrc)
		}
	}
	// The two witnesses are different spanners.
	eq, err := vsa.Equivalent(
		regexformula.MustCompile("a(y{b})"),
		regexformula.MustCompile("y{b}b"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("the two split-spanners of Example 5.8 must differ")
	}
}

// TestExample513NonDisjointSelfSplittable pins Example 5.13: P is
// self-splittable by the non-disjoint splitter S even though the
// splittability condition's second requirement fails.
func TestExample513NonDisjointSelfSplittable(t *testing.T) {
	p := regexformula.MustCompile("ab(y{b})|c(y{b})b")
	s := splitterOf(t, "x{.*}|.*(x{bb}).*")
	ok, err := SelfSplittable(p, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Example 5.13's P must be self-splittable by S")
	}
	// Cross-check by brute force over the three-letter alphabet.
	if !splitCorrectBrute(p, p, s, "abc", 5) {
		t.Fatal("brute force disagrees with Example 5.13")
	}
}
