// Package blackbox implements Section 7.1: split-correctness in the
// presence of black-box spanners with split constraints. A spanner
// signature abstracts extractors (NER, coreference, POS, ...) whose
// internals cannot be analyzed; a regular split constraint π ⊑ S asserts
// that every instance of π is self-splittable by S. Theorem 7.4 gives the
// sufficient condition implemented here: with a disjoint splitter S, a
// connected signature, α splittable by S, and all constraints π_i ⊑ S, the
// join α ⋈ P_1 ⋈ … ⋈ P_k is splittable by S via α_S ⋈ P_1 ⋈ … ⋈ P_k.
// The package also provides the runtime side: executing such joins either
// directly or segment-by-segment through an evaluation plan.
package blackbox

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/span"
	"repro/internal/vsa"
)

// Extractor is a black-box spanner: any function from documents to span
// relations. Implementations may wrap machine-learned models, rule
// engines, or — in this repository — deterministic stand-ins.
type Extractor interface {
	Vars() []string
	Eval(doc string) *span.Relation
}

// Func adapts a Go function to the Extractor interface.
type Func struct {
	VarNames []string
	Fn       func(doc string) *span.Relation
}

// Vars returns the extractor's variables.
func (f Func) Vars() []string { return f.VarNames }

// Eval applies the wrapped function.
func (f Func) Eval(doc string) *span.Relation { return f.Fn(doc) }

// Spanner adapts a regular spanner to the Extractor interface (useful in
// tests, where "black boxes" must have known ground truth).
type Spanner struct{ A *vsa.Automaton }

// Vars returns the spanner's variables.
func (s Spanner) Vars() []string { return s.A.Vars }

// Eval evaluates the underlying automaton.
func (s Spanner) Eval(doc string) *span.Relation { return s.A.Eval(doc) }

// Signature is a collection of spanner symbols π_1 … π_k, each with its
// variable set.
type Signature struct {
	Symbols []Symbol
}

// Symbol is one spanner symbol of a signature.
type Symbol struct {
	Name string
	Vars []string
}

// Constraint is a regular split constraint π ⊑ S: every instance of the
// named symbol is self-splittable by S.
type Constraint struct {
	Symbol   string
	Splitter *core.Splitter
}

// Instance assigns an actual extractor to every symbol of a signature.
type Instance map[string]Extractor

// Connected reports whether the hypergraph formed by alphaVars and the
// symbols' variable sets is connected — the standing assumption of
// Section 7.1.
func (sig *Signature) Connected(alphaVars []string) bool {
	sets := [][]string{alphaVars}
	for _, sym := range sig.Symbols {
		sets = append(sets, sym.Vars)
	}
	if len(sets) <= 1 {
		return true
	}
	merged := map[int]bool{0: true}
	frontier := []int{0}
	inSet := func(vars []string, v string) bool {
		for _, w := range vars {
			if w == v {
				return true
			}
		}
		return false
	}
	for len(frontier) > 0 {
		i := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for j, other := range sets {
			if merged[j] {
				continue
			}
			for _, v := range sets[i] {
				if inSet(other, v) {
					merged[j] = true
					frontier = append(frontier, j)
					break
				}
			}
		}
	}
	return len(merged) == len(sets)
}

// Plan is a split evaluation plan produced by Theorem 7.4: evaluate
// AlphaS joined with the black boxes on every segment of Splitter and
// shift the results.
type Plan struct {
	AlphaS   *vsa.Automaton
	Symbols  []Symbol
	Splitter *core.Splitter
}

// SplitCorrectByTheorem74 applies the sufficient condition of Theorem 7.4:
// if S is disjoint, the signature (with α) is connected, every constraint
// is π_i ⊑ S, and α is splittable by S, then α ⋈ I is splittable by S for
// every instance I satisfying the constraints, and a Plan witnessing it is
// returned. A false answer means the sufficient condition does not apply —
// not that the join is unsplittable (Lemma 7.3 shows the general problem
// is subtle); reason explains which premise failed.
func SplitCorrectByTheorem74(alpha *vsa.Automaton, sig *Signature, constraints []Constraint, s *core.Splitter, limit int) (plan *Plan, reason string, err error) {
	if !s.IsDisjoint() {
		return nil, "splitter is not disjoint", nil
	}
	if !sig.Connected(alpha.Vars) {
		return nil, "signature is not connected", nil
	}
	constrained := map[string]bool{}
	for _, c := range constraints {
		eq, err := vsa.Equivalent(c.Splitter.Automaton(), s.Automaton(), limit)
		if err != nil {
			return nil, "", err
		}
		if !eq {
			return nil, fmt.Sprintf("constraint for %s uses a different splitter", c.Symbol), nil
		}
		constrained[c.Symbol] = true
	}
	var missing []string
	for _, sym := range sig.Symbols {
		if !constrained[sym.Name] {
			missing = append(missing, sym.Name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Sprintf("symbols without split constraint: %v", missing), nil
	}
	ok, alphaS, err := core.Splittable(alpha, s, limit)
	if err != nil {
		return nil, "", err
	}
	if !ok {
		return nil, "α is not splittable by the splitter", nil
	}
	return &Plan{AlphaS: alphaS, Symbols: sig.Symbols, Splitter: s}, "", nil
}

// EvalJoin evaluates α ⋈ I directly on the whole document.
func EvalJoin(alpha *vsa.Automaton, sig *Signature, inst Instance, doc string) (*span.Relation, error) {
	rel := alpha.Eval(doc)
	for _, sym := range sig.Symbols {
		ex, ok := inst[sym.Name]
		if !ok {
			return nil, fmt.Errorf("blackbox: no extractor bound to symbol %q", sym.Name)
		}
		rel = rel.Join(ex.Eval(doc))
	}
	return rel, nil
}

// Eval executes the split plan: α_S ⋈ I on every segment, shifted. When
// the plan came from SplitCorrectByTheorem74 and the instance satisfies
// the constraints, the result equals EvalJoin on every document.
func (p *Plan) Eval(inst Instance, doc string) (*span.Relation, error) {
	var out *span.Relation
	for _, seg := range p.Splitter.Segments(doc) {
		rel := p.AlphaS.Eval(seg.Text)
		for _, sym := range p.Symbols {
			ex, ok := inst[sym.Name]
			if !ok {
				return nil, fmt.Errorf("blackbox: no extractor bound to symbol %q", sym.Name)
			}
			rel = rel.Join(ex.Eval(seg.Text))
		}
		shifted := rel.ShiftAll(seg.Span)
		if out == nil {
			out = span.NewRelation(shifted.Vars...)
		}
		for _, t := range shifted.Tuples {
			out.Add(t)
		}
	}
	if out == nil {
		out = span.NewRelation(p.AlphaS.Vars...)
		for _, sym := range p.Symbols {
			for _, v := range sym.Vars {
				found := false
				for _, w := range out.Vars {
					if w == v {
						found = true
					}
				}
				if !found {
					out.Vars = append(out.Vars, v)
				}
			}
		}
	}
	out.Dedupe()
	return out, nil
}

// VerifyConstraint checks a split constraint against a concrete regular
// spanner (used to validate test instances): the spanner must be
// self-splittable by the constraint's splitter.
func VerifyConstraint(c Constraint, actual *vsa.Automaton, limit int) (bool, error) {
	return core.SelfSplittable(actual, c.Splitter, limit)
}
