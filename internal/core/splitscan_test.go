package core

import (
	"math/rand"
	"testing"

	"repro/internal/regexformula"
	"repro/internal/span"
)

// scanFuzzFormula derives a splitter formula from fuzzer bytes: the
// separator-driven families the scanner is built for, splitters with
// deliberately nasty shapes (suffix-conditioned closes that force
// bails, wrap-producing empties), and fully random unary formulas.
func scanFuzzFormula(mode uint8, c1, c2 byte, seed int64) string {
	seps := []string{".", ";", "!", "\\n", " ", "a", "b"}
	s1, s2 := seps[int(c1)%len(seps)], seps[int(c2)%len(seps)]
	sep := s1
	if s1 != s2 {
		sep = s1 + s2
	}
	blockStar := "(x{[^" + sep + "]*})"
	blockPlus := "(x{[^" + sep + "]+})"
	switch mode % 7 {
	case 0: // sentence-style blocks between separators
		return blockStar + "([" + sep + "][^" + sep + "]*)*|" +
			"[^" + sep + "]*([" + sep + "][^" + sep + "]*)*[" + sep + "]" + blockStar + "([" + sep + "][^" + sep + "]*)*"
	case 1: // token-style maximal nonempty runs
		return blockPlus + "([" + sep + "].*)?|.*[" + sep + "]" + blockPlus + "([" + sep + "].*)?"
	case 2: // first block only — one span per document
		return blockStar + "([" + sep + "][^" + sep + "]*)*"
	case 3: // every block except the first: disjoint, scanner-hostile opens
		return "[^" + sep + "]*[" + sep + "]([^" + sep + "]*[" + sep + "])*" + blockStar + "([" + sep + "][^" + sep + "]*)*"
	case 4: // blocks valid only on documents ending in '!': closes never commit
		b := "[^" + sep + "!]"
		w := "(x{" + b + "*})"
		return w + "([" + sep + "]" + b + "*)*!|" + b + "*([" + sep + "]" + b + "*)*[" + sep + "]" + w + "([" + sep + "]" + b + "*)*!"
	case 5: // empty span at the first separator boundary: wrap events
		return "[^" + sep + "]*(x{})[" + sep + "].*|[^" + sep + "]*(x{})"
	default: // fully random unary formula
		return randomUnaryFormula(rand.New(rand.NewSource(seed)), "x", 2)
	}
}

func spansEqual(a, b []span.Span) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chunkedScan drives a resumable ScanRun over doc in n-byte chunks.
func chunkedScan(t *testing.T, s *Splitter, doc string, n int) (spans []span.Span, ok bool) {
	t.Helper()
	r, have := s.NewScanRun()
	if !have {
		t.Fatalf("NewScanRun failed for a splitter whose Split used the scanner")
	}
	ok = true
	for lo := 0; lo < len(doc) && ok; lo += n {
		hi := lo + n
		if hi > len(doc) {
			hi = len(doc)
		}
		spans, ok = r.Feed([]byte(doc[lo:hi]), spans)
	}
	if ok {
		spans, ok = r.Flush(spans)
	}
	return spans, ok
}

// isSubsequence reports whether sub appears, in order, within full.
func isSubsequence(sub, full []span.Span) bool {
	j := 0
	for _, sp := range sub {
		for j < len(full) && full[j] != sp {
			j++
		}
		if j == len(full) {
			return false
		}
		j++
	}
	return true
}

// FuzzScanVsSplit is the scanner's correctness contract: on every
// splitter, Split (scanner with built-in fallback) must be
// byte-identical to SplitReference (the Eval path it replaced); and on
// every disjoint splitter, a resumable ScanRun fed adversarial chunk
// sizes — 1, 7 and 4096 — must either reproduce the reference spans
// exactly or bail having emitted only an in-order subset of them
// (committed spans are valid even on a bailing run; the engine re-splits
// the rest through the reference path).
func FuzzScanVsSplit(f *testing.F) {
	f.Add(uint8(0), byte(0), byte(1), int64(1), "one. two! three\nfour.")
	f.Add(uint8(1), byte(4), byte(3), int64(2), "a b  c\nd ")
	f.Add(uint8(2), byte(1), byte(1), int64(3), "a;b;;c")
	f.Add(uint8(3), byte(0), byte(0), int64(4), "a.b.c.d")
	f.Add(uint8(4), byte(0), byte(2), int64(5), "ab.cd!e")
	f.Add(uint8(5), byte(2), byte(2), int64(6), "ab!cd!")
	f.Add(uint8(6), byte(5), byte(6), int64(7), "abba\x00\xffb")
	f.Fuzz(func(t *testing.T, mode uint8, c1, c2 byte, seed int64, doc string) {
		if len(doc) > 1<<12 {
			doc = doc[:1<<12]
		}
		src := scanFuzzFormula(mode, c1, c2, seed)
		auto, err := regexformula.Compile(src)
		if err != nil || auto.Arity() != 1 {
			t.Skip()
		}
		s, err := NewSplitter(auto)
		if err != nil {
			t.Skip()
		}
		want := s.SplitReference(doc)
		if got := s.Split(doc); !spansEqual(got, want) {
			t.Fatalf("Split != SplitReference on %q\nformula %s\ngot  %v\nwant %v", doc, src, got, want)
		}
		if _, have := s.NewScanRun(); !have {
			return // not disjoint: no scanner to stream with
		}
		for _, n := range []int{1, 7, 4096} {
			got, ok := chunkedScan(t, s, doc, n)
			if ok {
				if !spansEqual(got, want) {
					t.Fatalf("chunked scan (n=%d) != SplitReference on %q\nformula %s\ngot  %v\nwant %v", n, doc, src, got, want)
				}
				continue
			}
			if !isSubsequence(got, want) {
				t.Fatalf("bailing scan (n=%d) emitted spans outside the reference on %q\nformula %s\ngot  %v\nwant %v", n, doc, src, got, want)
			}
		}
	})
}

func TestScanRunResumesAcrossChunks(t *testing.T) {
	// The library sentence shape: spans tile the document, so a resumable
	// run must keep its pending open across every chunk boundary.
	auto := regexformula.MustCompile("(x{[^.]*})(\\.[^.]*)*|[^.]*(\\.[^.]*)*\\.(x{[^.]*})(\\.[^.]*)*")
	s := MustSplitter(auto)
	doc := "alpha.beta.gamma.delta"
	want := s.SplitReference(doc)
	if len(want) != 4 {
		t.Fatalf("reference produced %d spans, want 4: %v", len(want), want)
	}
	for n := 1; n <= len(doc)+1; n++ {
		got, ok := chunkedScan(t, s, doc, n)
		if !ok {
			t.Fatalf("scan bailed at chunk size %d", n)
		}
		if !spansEqual(got, want) {
			t.Fatalf("chunk size %d: got %v, want %v", n, got, want)
		}
	}
}

func TestScanRunAnchorTracksLastOpen(t *testing.T) {
	auto := regexformula.MustCompile("(x{[^.]*})(\\.[^.]*)*|[^.]*(\\.[^.]*)*\\.(x{[^.]*})(\\.[^.]*)*")
	s := MustSplitter(auto)
	r, ok := s.NewScanRun()
	if !ok {
		t.Fatal("no scanner for the sentence splitter")
	}
	if r.Anchor() != 0 {
		t.Fatalf("fresh run anchor = %d, want 0", r.Anchor())
	}
	spans, ok := r.Feed([]byte("aaa.bb"), nil)
	if !ok {
		t.Fatal("feed bailed")
	}
	if len(spans) != 1 || spans[0] != (span.Span{Start: 1, End: 4}) {
		t.Fatalf("spans after first feed: %v", spans)
	}
	// The second sentence opened at boundary 5 (byte offset 4): only the
	// suffix from there may still be needed.
	if r.Anchor() != 4 {
		t.Fatalf("anchor = %d, want 4", r.Anchor())
	}
	spans, ok = r.Flush(spans)
	if !ok {
		t.Fatal("flush bailed")
	}
	if len(spans) != 2 || spans[1] != (span.Span{Start: 5, End: 7}) {
		t.Fatalf("spans after flush: %v", spans)
	}
}

func TestScannerBailsOnSuffixConditionedSplitter(t *testing.T) {
	// Blocks are only valid on documents ending in '!': no close can
	// commit mid-document, so the scanner must bail (never mis-emit) and
	// Split must still answer through the reference path.
	auto := regexformula.MustCompile("(x{[^.!]*})(\\.[^.!]*)*!|[^.!]*(\\.[^.!]*)*\\.(x{[^.!]*})(\\.[^.!]*)*!")
	s := MustSplitter(auto)
	for _, doc := range []string{"ab.cd!", "ab.cd", "!", ""} {
		want := s.SplitReference(doc)
		if got := s.Split(doc); !spansEqual(got, want) {
			t.Fatalf("Split(%q) = %v, want %v", doc, got, want)
		}
	}
}

func TestNonDisjointSplitterHasNoScanner(t *testing.T) {
	// x{a*} on "aa" produces overlapping spans: not disjoint.
	auto := regexformula.MustCompile(".*(x{a*}).*")
	s := MustSplitter(auto)
	if s.IsDisjoint() {
		t.Fatal("test splitter unexpectedly disjoint")
	}
	if _, ok := s.NewScanRun(); ok {
		t.Fatal("non-disjoint splitter returned a scan run")
	}
	doc := "aab"
	if got, want := s.Split(doc), s.SplitReference(doc); !spansEqual(got, want) {
		t.Fatalf("Split fell off the reference path: %v vs %v", got, want)
	}
}
