package automata

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestCountAcceptingPaths(t *testing.T) {
	// Automaton accepting all words over {a,b}: counts must be 2^ℓ.
	a := New(2)
	s := a.AddState(true)
	a.AddStart(s)
	a.AddEdge(s, 0, s)
	a.AddEdge(s, 1, s)
	counts := a.CountAcceptingPaths(10)
	for l, c := range counts {
		want := new(big.Int).Lsh(big.NewInt(1), uint(l))
		if c.Cmp(want) != 0 {
			t.Fatalf("count(%d) = %v, want %v", l, c, want)
		}
	}
}

// randomUnambiguous builds a random DFA (hence unambiguous automaton),
// possibly partial.
func randomUnambiguous(rng *rand.Rand, numSymbols, maxStates int) *NFA {
	a := New(numSymbols)
	n := rng.Intn(maxStates) + 1
	for i := 0; i < n; i++ {
		a.AddState(rng.Intn(3) == 0)
	}
	a.AddStart(rng.Intn(n))
	for q := 0; q < n; q++ {
		for s := 0; s < numSymbols; s++ {
			if rng.Intn(4) != 0 {
				a.AddEdge(q, s, rng.Intn(n))
			}
		}
	}
	return a
}

func TestContainsUnambiguousAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		a := randomUnambiguous(rng, 2, 5)
		b := randomUnambiguous(rng, 2, 5)
		got := ContainsUnambiguous(a, b, true)
		want := true
		for w := range enumerate(a, 7) {
			found := false
			for v := range enumerate(b, 7) {
				if v == w {
					found = true
					break
				}
			}
			if !found {
				want = false
				break
			}
		}
		// Brute force over bounded length only proves non-containment; for
		// containment compare against the exact subset-construction method.
		exact, _, err := Contains(a, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want && !exact {
			want = false
		}
		if got != exact {
			t.Fatalf("ContainsUnambiguous = %v, exact = %v (iteration %d)", got, exact, i)
		}
	}
}

func TestSeriesZeroNonnegative(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		a := randomUnambiguous(rng, 2, 5)
		b := randomUnambiguous(rng, 2, 5)
		// Series #a − #(a×b) is pointwise nonnegative; it is zero iff
		// L(a) ⊆ L(b).
		s := &Series{Terms: []Term{{1, a}, {-1, Product(a.Trim(), b.Trim())}}}
		got := s.IsZeroNonnegative()
		want, _, err := Contains(a, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Series zero test = %v, containment = %v", got, want)
		}
	}
}

func TestSeriesZeroExactAgreesWithNonnegative(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 60; i++ {
		a := randomUnambiguous(rng, 2, 4)
		b := randomUnambiguous(rng, 2, 4)
		s := &Series{Terms: []Term{{1, a}, {-1, Product(a.Trim(), b.Trim())}}}
		if s.IsZeroNonnegative() != s.IsZeroExact() {
			t.Fatalf("counting and Tzeng disagree on iteration %d", i)
		}
	}
}

func TestSeriesZeroExactDetectsSignedCancellation(t *testing.T) {
	// #A − #B with A = {ab}, B = {ba}: per-length sums are equal (both 1
	// at length 2) so the nonnegative-only test is fooled — which is why
	// it documents its precondition — but Tzeng's exact test must detect
	// that the series is not pointwise zero.
	a := literalNFA(2, []int{0, 1})
	b := literalNFA(2, []int{1, 0})
	s := &Series{Terms: []Term{{1, a}, {-1, b}}}
	if !s.IsZeroNonnegative() {
		t.Fatal("per-length counting should (by design) not distinguish these")
	}
	if s.IsZeroExact() {
		t.Fatal("exact zero test must detect the difference")
	}
}

func TestSeriesInclusionExclusion(t *testing.T) {
	// A ⊆ B1 ∪ B2 via inclusion–exclusion:
	// #A − #(A∩B1) − #(A∩B2) + #(A∩B1∩B2) = 0 iff A ⊆ B1 ∪ B2
	// (all automata unambiguous).
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 150; i++ {
		a := randomUnambiguous(rng, 2, 4)
		b1 := randomUnambiguous(rng, 2, 4)
		b2 := randomUnambiguous(rng, 2, 4)
		at := a.Trim()
		s := &Series{Terms: []Term{
			{1, at},
			{-1, Product(at, b1.Trim())},
			{-1, Product(at, b2.Trim())},
			{1, Product(Product(at, b1.Trim()), b2.Trim())},
		}}
		got := s.IsZeroNonnegative()
		u := Union(b1, b2)
		want, _, err := Contains(a, u, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("IE containment = %v, exact = %v (iteration %d)", got, want, i)
		}
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := &Series{}
	if !s.IsZeroNonnegative() || !s.IsZeroExact() {
		t.Fatal("empty series must be zero")
	}
}
