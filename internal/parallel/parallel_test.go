package parallel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/library"
	"repro/internal/regexformula"
)

func TestSplitEvalEqualsSequential(t *testing.T) {
	// The negative-sentiment extractor is self-splittable by sentences
	// (proved in the library tests); split evaluation must therefore agree
	// with direct evaluation.
	p := library.NegativeSentiment()
	doc := corpus.Reviews(21, 40)[0] + corpus.Reviews(22, 40)[1]
	segs := SegmentsOf(doc, library.FastSentenceSplit(doc))
	for _, workers := range []int{1, 2, 5} {
		par := SplitEval(p, segs, workers)
		seq := Sequential(p, doc)
		seq.Dedupe()
		if !par.Equal(seq) {
			t.Fatalf("workers=%d: split evaluation differs", workers)
		}
	}
}

func TestSplitEvalCatchesNonSplitCorrectness(t *testing.T) {
	// Splitting a 2-byte-span extractor by unit tokens is not
	// split-correct; Measure must detect the mismatch and panic.
	p := regexformula.MustCompile(".*y{ab}.*")
	s, err := core.NewSplitter(regexformula.MustCompile(".*x{.}.*"))
	if err != nil {
		t.Fatal(err)
	}
	doc := "abab"
	segs := SegmentsOf(doc, s.Split(doc))
	defer func() {
		if recover() == nil {
			t.Fatal("Measure must panic when the outputs disagree")
		}
	}()
	Measure("bad", p, p, doc, segs, 2)
}

func TestMeasureReportsAgreeingRun(t *testing.T) {
	p := library.NegativeSentiment()
	doc := corpus.Wikipedia(3, 2000) + "very bad coffee."
	segs := SegmentsOf(doc, library.FastSentenceSplit(doc))
	m := Measure("wiki", p, p, doc, segs, 2)
	if m.Tuples == 0 {
		t.Fatal("expected at least one extraction")
	}
	if m.Sequential <= 0 || m.Split <= 0 || m.Speedup <= 0 {
		t.Fatalf("implausible measurement: %+v", m)
	}
}

func TestCollectionEval(t *testing.T) {
	p := library.FinanceEvents()
	docsIn := corpus.Reuters(31, 25)
	direct := CollectionEval(p, docsIn, 3)
	split := CollectionEvalSplit(p, docsIn, library.FastSentenceSplit, 3)
	if len(direct) != len(split) {
		t.Fatal("result count mismatch")
	}
	total := 0
	for i := range direct {
		direct[i].Dedupe()
		aligned, err := split[i].Project(direct[i].Vars)
		if err != nil {
			t.Fatal(err)
		}
		if !aligned.Equal(direct[i]) {
			t.Fatalf("document %d differs: %v vs %v", i, aligned, direct[i])
		}
		total += direct[i].Len()
	}
	if total == 0 {
		t.Fatal("expected some finance events in the corpus")
	}
}

func TestMeasureCollection(t *testing.T) {
	p := library.NegativeSentiment()
	docsIn := corpus.Reviews(41, 60)
	m := MeasureCollection("amazon", p, p, docsIn, library.FastSentenceSplit, 3)
	if m.Tuples == 0 {
		t.Fatal("expected some sentiment extractions")
	}
}
