// Package core implements the split-correctness framework of Sections 3, 5
// and the reasoning problems built on it: document splitters, the
// composition P ∘ S (Lemma C.1/C.2), the disjointness test (Proposition
// 5.5), the cover condition (Definition 5.2, Lemmas 5.4 and 5.6), the
// split-correctness deciders (Theorem 5.1 in general and the
// polynomial-time Theorem 5.7 procedure for deterministic functional
// automata with disjoint splitters), the canonical split-spanner
// (Proposition 5.9), splittability (Lemma 5.12, Theorem 5.15) and
// self-splittability (Theorems 5.16 and 5.17).
package core

import (
	"fmt"
	"sync"

	"repro/internal/span"
	"repro/internal/vsa"
)

// Splitter is a unary spanner used to segment documents (Section 3). The
// wrapped automaton is validated on construction: it must have exactly one
// variable and be a well-formed functional extended VSet-automaton.
type Splitter struct {
	auto     *vsa.Automaton
	statuses []vsa.Status

	// disjointOnce memoizes IsDisjoint: several decision procedures
	// (locality, the engine's verdicts) gate on it, and the automaton is
	// immutable once wrapped.
	disjointOnce sync.Once
	disjointVal  bool

	// scanOnce memoizes the compiled splitter scanner (splitscan.go);
	// scanVal stays nil for non-disjoint splitters.
	scanOnce sync.Once
	scanVal  *splitScanner
}

// NewSplitter wraps a unary automaton as a splitter.
func NewSplitter(a *vsa.Automaton) (*Splitter, error) {
	if a.Arity() != 1 {
		return nil, fmt.Errorf("core: a splitter must be unary, got %d variables", a.Arity())
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid splitter automaton: %w", err)
	}
	st, err := a.Statuses()
	if err != nil {
		return nil, err
	}
	return &Splitter{auto: a, statuses: st}, nil
}

// MustSplitter is NewSplitter for statically known automata.
func MustSplitter(a *vsa.Automaton) *Splitter {
	s, err := NewSplitter(a)
	if err != nil {
		panic(err)
	}
	return s
}

// Automaton returns the underlying unary automaton.
func (s *Splitter) Automaton() *vsa.Automaton { return s.auto }

// Var returns the splitter's variable name (x_S in the paper).
func (s *Splitter) Var() string { return s.auto.Vars[0] }

// Split returns the set of spans S(d), in document order. Disjoint
// splitters run on the compiled one-pass scanner (splitscan.go); the
// rest — and the rare documents on which the scanner bails — evaluate
// through the full Eval path. Both produce byte-identical spans (the
// scanner is fuzz-verified against SplitReference).
func (s *Splitter) Split(doc string) []span.Span {
	if sc := s.scanner(); sc != nil {
		if out, ok := sc.scan(doc); ok {
			if out == nil {
				out = []span.Span{}
			}
			return out
		}
	}
	return s.SplitReference(doc)
}

// SplitReference computes S(d) by full evaluation of the splitter
// automaton plus a relation sort — the semantics Split is defined by,
// retained as the fallback for non-disjoint splitters and as the
// differential-testing oracle for the compiled scanner.
func (s *Splitter) SplitReference(doc string) []span.Span {
	rel := s.auto.Eval(doc)
	rel.Sort()
	out := make([]span.Span, rel.Len())
	for i, t := range rel.Tuples {
		out[i] = t[0]
	}
	return out
}

// Segments returns the substrings selected by the splitter along with
// their spans.
func (s *Splitter) Segments(doc string) []Segment {
	spans := s.Split(doc)
	out := make([]Segment, len(spans))
	for i, sp := range spans {
		out[i] = Segment{Span: sp, Text: sp.In(doc)}
	}
	return out
}

// Segment is one chunk produced by a splitter.
type Segment struct {
	Span span.Span
	Text string
}

// splitter op kinds, classifying the x-operations on an edge.
const (
	sNone  = iota // no x operation
	sOpen         // x⊢
	sClose        // ⊣x
	sWrap         // x⊢ ⊣x (an empty split)
)

func splitOpKind(o vsa.OpSet) int {
	switch o {
	case 0:
		return sNone
	case vsa.Open(0):
		return sOpen
	case vsa.Close(0):
		return sClose
	case vsa.Wrap(0):
		return sWrap
	}
	panic(fmt.Sprintf("core: impossible splitter operation set %v", o))
}

// IsDisjoint implements Proposition 5.5: it decides whether all spans
// produced by the splitter on any document are pairwise disjoint (in the
// paper's overlap sense). The test is a synchronous product of two runs of
// the splitter reading the same document, tracking each run's variable
// status, whether the two spans differ, and whether an overlap has been
// witnessed; a violation is two accepting runs with different, overlapping
// spans. The search space is O(|Q|² · 9 · 4), matching the paper's NL
// bound up to the byte-class bookkeeping. The answer is memoized: the
// automaton is immutable, and both the engine's verdicts and the
// locality procedure gate on disjointness.
func (s *Splitter) IsDisjoint() bool {
	s.disjointOnce.Do(func() { s.disjointVal = s.isDisjoint() })
	return s.disjointVal
}

func (s *Splitter) isDisjoint() bool {
	type cfg struct {
		q1, q2   int
		st1, st2 int // 0 unopened, 1 open, 2 closed
		differ   bool
		overlap  bool
	}
	apply := func(st, kind int) (int, bool) {
		switch kind {
		case sNone:
			return st, true
		case sOpen:
			if st != 0 {
				return 0, false
			}
			return 1, true
		case sClose:
			if st != 1 {
				return 0, false
			}
			return 2, true
		case sWrap:
			if st != 0 {
				return 0, false
			}
			return 2, true
		}
		panic("core: bad op kind")
	}
	// overlapNow applies the local overlap rule: when one run opens its
	// span at a boundary, the spans overlap iff the other run's status
	// right after this boundary is exactly "open" (its span has started
	// and not yet ended). This covers empty spans correctly: an empty
	// span [b+1,b+1⟩ overlaps another span iff that span is open across
	// the boundary.
	overlapNow := func(k1, k2, st1After, st2After int) bool {
		opened1 := k1 == sOpen || k1 == sWrap
		opened2 := k2 == sOpen || k2 == sWrap
		if opened2 && st1After == 1 {
			return true
		}
		if opened1 && st2After == 1 {
			return true
		}
		return false
	}
	seen := map[cfg]bool{}
	start := cfg{s.auto.Start, s.auto.Start, 0, 0, false, false}
	queue := []cfg{start}
	seen[start] = true
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		// End of document: both runs may finish with final op sets.
		for _, f1 := range s.auto.States[c.q1].Finals {
			k1 := splitOpKind(f1)
			st1, ok1 := apply(c.st1, k1)
			if !ok1 || st1 != 2 {
				continue
			}
			for _, f2 := range s.auto.States[c.q2].Finals {
				k2 := splitOpKind(f2)
				st2, ok2 := apply(c.st2, k2)
				if !ok2 || st2 != 2 {
					continue
				}
				differ := c.differ || f1 != f2
				overlap := c.overlap || overlapNow(k1, k2, st1, st2)
				if differ && overlap {
					return false
				}
			}
		}
		// Advance both runs on a shared byte.
		for _, e1 := range s.auto.States[c.q1].Edges {
			k1 := splitOpKind(e1.Ops)
			st1, ok1 := apply(c.st1, k1)
			if !ok1 {
				continue
			}
			for _, e2 := range s.auto.States[c.q2].Edges {
				if !e1.Class.Intersects(e2.Class) {
					continue
				}
				k2 := splitOpKind(e2.Ops)
				st2, ok2 := apply(c.st2, k2)
				if !ok2 {
					continue
				}
				nc := cfg{
					q1: e1.To, q2: e2.To,
					st1: st1, st2: st2,
					differ:  c.differ || e1.Ops != e2.Ops,
					overlap: c.overlap || overlapNow(k1, k2, st1, st2),
				}
				if !seen[nc] {
					seen[nc] = true
					queue = append(queue, nc)
				}
			}
		}
	}
	return true
}
