package parallel

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/library"
	"repro/internal/span"
)

func TestDequeOwnerAndThiefEnds(t *testing.T) {
	var d deque
	mk := func(n int) chunk { return chunk{dest: n} }
	if _, ok := d.pop(); ok {
		t.Fatal("pop on empty deque must fail")
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal on empty deque must fail")
	}
	for i := 0; i < 4; i++ {
		d.push(mk(i))
	}
	if got := d.size(); got != 4 {
		t.Fatalf("size = %d, want 4", got)
	}
	// Thieves take the oldest chunk, the owner the newest.
	if c, ok := d.steal(); !ok || c.dest != 0 {
		t.Fatalf("steal = %v, %v; want chunk 0", c, ok)
	}
	if c, ok := d.pop(); !ok || c.dest != 3 {
		t.Fatalf("pop = %v, %v; want chunk 3", c, ok)
	}
	if c, ok := d.steal(); !ok || c.dest != 1 {
		t.Fatalf("steal = %v, %v; want chunk 1", c, ok)
	}
	if c, ok := d.pop(); !ok || c.dest != 2 {
		t.Fatalf("pop = %v, %v; want chunk 2", c, ok)
	}
	if _, ok := d.pop(); ok {
		t.Fatal("deque must be empty")
	}
	// Draining resets the buffer so a long-lived worker does not leak
	// consumed slots.
	if len(d.buf) != 0 || d.head != 0 {
		t.Fatalf("drained deque not reset: len=%d head=%d", len(d.buf), d.head)
	}
}

func TestChunkedCoversAllSegments(t *testing.T) {
	segs := make([]Segment, 10)
	for grain := 1; grain <= 11; grain++ {
		total := 0
		for _, c := range chunked(7, segs, grain, nil) {
			if c.dest != 7 {
				t.Fatalf("grain=%d: dest = %d, want 7", grain, c.dest)
			}
			if len(c.segs) == 0 || len(c.segs) > grain {
				t.Fatalf("grain=%d: chunk of %d segments", grain, len(c.segs))
			}
			total += len(c.segs)
		}
		if total != len(segs) {
			t.Fatalf("grain=%d: chunks cover %d of %d segments", grain, total, len(segs))
		}
	}
}

// relIdentical asserts two already-canonical relations are byte-identical
// — same variables, same tuples in the same order — without the
// re-sorting Relation.Equal performs.
func relIdentical(t *testing.T, name string, got, want *span.Relation) {
	t.Helper()
	if len(got.Vars) != len(want.Vars) {
		t.Fatalf("%s: vars %v vs %v", name, got.Vars, want.Vars)
	}
	for i := range got.Vars {
		if got.Vars[i] != want.Vars[i] {
			t.Fatalf("%s: vars %v vs %v", name, got.Vars, want.Vars)
		}
	}
	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("%s: %d tuples vs %d", name, len(got.Tuples), len(want.Tuples))
	}
	for i := range got.Tuples {
		if !got.Tuples[i].Equal(want.Tuples[i]) {
			t.Fatalf("%s: tuple %d: %v vs %v", name, i, got.Tuples[i], want.Tuples[i])
		}
	}
}

// adversarialDoc builds a document whose sentence segments alternate
// between tiny and very large, so chunks carry wildly unequal work and
// the fast workers must steal from the slow ones to finish.
func adversarialDoc() string {
	var b strings.Builder
	long := strings.Repeat("bad coffee and bad service from a bad place ", 2000)
	for i := 0; i < 40; i++ {
		switch i % 4 {
		case 0:
			b.WriteString("x. ")
		case 1:
			b.WriteString(long)
			b.WriteString(". ")
		case 2:
			b.WriteString("bad tea. ")
		default:
			b.WriteString(corpus.Reviews(uint64(i), 30)[0])
			b.WriteString(". ")
		}
	}
	return b.String()
}

// TestSplitEvalDeterminismUnderSteal is the determinism-under-steal
// regression test: with adversarial segment sizes forcing steals, the
// merged relation must be byte-identical — same tuples, same order — at
// every worker count and grain, including the no-steal workers=1
// schedule.
func TestSplitEvalDeterminismUnderSteal(t *testing.T) {
	p := library.NegativeSentiment()
	doc := adversarialDoc()
	segs := SegmentsOf(doc, library.FastSentenceSplit(doc))
	want := SplitEval(p, segs, 1)
	seq := Sequential(p, doc)
	seq.Dedupe()
	relIdentical(t, "workers=1 vs sequential", want, seq)
	for _, opts := range []Options{
		{Workers: 2, Batch: 1},
		{Workers: 3},
		{Workers: 8, Batch: 2},
		{Workers: 16, Batch: 1000},
	} {
		got, err := SplitEvalCtx(context.Background(), p, segs, opts)
		if err != nil {
			t.Fatalf("workers=%d batch=%d: %v", opts.Workers, opts.Batch, err)
		}
		relIdentical(t, "stolen schedule", got, want)
	}
}

// TestSplitEvalCtxCancellationMidSteal cancels a large split evaluation
// while its chunks are being executed and stolen. The call must return
// promptly with context.Canceled and a well-formed (sorted, partial)
// relation — or, if the pool won the race, the complete result.
func TestSplitEvalCtxCancellationMidSteal(t *testing.T) {
	p := library.NegativeSentiment()
	doc := strings.Join(corpus.Reviews(9, 4000), "\n")
	segs := SegmentsOf(doc, library.FastSentenceSplit(doc))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var rel *span.Relation
	var err error
	go func() {
		defer close(done)
		rel, err = SplitEvalCtx(ctx, p, segs, Options{Workers: 4, Batch: 1})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled SplitEvalCtx did not return")
	}
	if rel == nil {
		t.Fatal("expected a (partial) relation even on cancellation")
	}
	full := SplitEval(p, segs, 1)
	if err == nil {
		// The evaluation finished before the cancel landed.
		relIdentical(t, "uncancelled run", rel, full)
		return
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rel.Len() > full.Len() {
		t.Fatalf("partial result has %d tuples, full only %d", rel.Len(), full.Len())
	}
	// Partial results are still canonical and a subset of the full result.
	for _, tu := range rel.Tuples {
		if !full.Has(tu) {
			t.Fatalf("partial tuple %v not in full result", tu)
		}
	}
}

// TestSplitEvalBatchesOversizedBatchIsSplit feeds the streaming
// evaluator one batch far larger than the stealing grain; the receiving
// worker must halve it onto its deque (where the other workers steal)
// and the result must match the dealt-slice path.
func TestSplitEvalBatchesOversizedBatchIsSplit(t *testing.T) {
	p := library.NegativeSentiment()
	doc := adversarialDoc()
	segs := SegmentsOf(doc, library.FastSentenceSplit(doc))
	if len(segs) <= streamGrain {
		t.Fatalf("need more than %d segments, have %d", streamGrain, len(segs))
	}
	want := SplitEval(p, segs, 1)
	batches := make(chan []Segment, 1)
	go func() {
		defer close(batches)
		batches <- segs
	}()
	got, err := SplitEvalBatches(context.Background(), p, batches, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	relIdentical(t, "oversized batch", got, want)
}

// TestCollectionEvalSplitStealsLongDocument puts one document with far
// more segments than the rest into a collection; its chunk arrives
// whole from the producer and must spread across the pool by stealing,
// with per-document results identical to per-document evaluation.
func TestCollectionEvalSplitStealsLongDocument(t *testing.T) {
	p := library.NegativeSentiment()
	docs := []string{
		"bad tea. nice place.",
		adversarialDoc(),
		"",
		"very bad coffee!",
	}
	split := CollectionEvalSplit(p, docs, library.FastSentenceSplit, 4)
	if len(split) != len(docs) {
		t.Fatalf("%d relations for %d documents", len(split), len(docs))
	}
	for i, d := range docs {
		want := Sequential(p, d)
		want.Dedupe()
		aligned, err := split[i].Project(want.Vars)
		if err != nil {
			t.Fatal(err)
		}
		if !aligned.Equal(want) {
			t.Fatalf("document %d differs: %v vs %v", i, aligned, want)
		}
	}
}

// TestSplitEvalEmptySegments pins the zero-work edge cases: no segments
// at all, and more workers than chunks.
func TestSplitEvalEmptySegments(t *testing.T) {
	p := library.NegativeSentiment()
	rel := SplitEval(p, nil, 8)
	if rel.Len() != 0 {
		t.Fatalf("no segments must yield an empty relation, got %v", rel)
	}
	one := SegmentsOf("bad tea.", library.FastSentenceSplit("bad tea."))
	got := SplitEval(p, one, 8)
	want := Sequential(p, "bad tea.")
	want.Dedupe()
	relIdentical(t, "more workers than chunks", got, want)
}
