package lazydfa

import (
	"bytes"
	"strings"
	"sync"
)

// This file implements the byte-skip primitive of literal prefiltering
// (see internal/vsa/prefilter.go and DESIGN.md, "Literal prefiltering").
// A scan confined to a small closed set of DFA states C behaves like
// memchr when two conditions hold for every byte outside a small
// trigger set: consuming it from ANY state of C lands in the SAME state
// of C (the set is 1-byte synchronizing), and it raises no client event
// there. While the input stays trigger-free the scan may then jump
// straight to the next trigger byte with bytes.IndexByte, because the
// state at every skipped boundary is a pure function of the byte just
// before it — sync[b] — which makes checkpoints, payload flags and
// event decisions reconstructible exactly. The jump is byte-exact by
// construction, never a semantic shortcut. The single self-looping
// state is the degenerate case C = {q}; the set form is what makes
// word-structured text skippable, where the DFA oscillates between a
// mid-word and a post-separator state and no single state ever loops
// long enough to matter.

// MaxSkipTriggers is the largest trigger set worth a skip loop: one
// IndexByte pass per trigger per document region is paid for the jump,
// so past a handful of distinct bytes the plain DFA step wins.
const MaxSkipTriggers = 8

// MaxSkipStates bounds the synchronized state set C. Useful sets are
// tiny (a self-loop, or the 2–3 states of a word/separator oscillation);
// a large set is a sign the region is genuinely making progress.
const MaxSkipStates = 4

// DefaultSkipStreak is the run length of bytes confined to at most two
// states after which the scan loops consult the skip cache. Charging a
// streak first keeps the per-byte cost of progress-making regions to a
// couple of compares and makes the cache lookup O(1) amortized.
const DefaultSkipStreak = 16

// skipMissLimit is how many consecutive bytes may land outside an armed
// gate's state set before the gate disarms. Keeping the set armed
// across short excursions (a partial literal match that fails) lets the
// scan resume jumping immediately; a long miss run means the document
// region changed character and the per-byte Contains test is wasted.
const skipMissLimit = 512

// skipCoolBytes is the back-off after a jump that made no progress
// (the very next byte is a trigger): stepping a few bytes plainly is
// cheaper than re-running the occurrence search per byte through a
// trigger cluster.
const skipCoolBytes = 8

// skipJumpWindow bounds one Jump's IndexByte search. Jumps run under a
// Walker's read lock; capping the searched window keeps a sparse
// multi-megabyte document from holding the lock (and starving writers)
// for one giant memchr. The outer loop re-enters Jump after the capped
// landing, so the asymptotics are unchanged.
const skipJumpWindow = 1 << 18

// SkipSet is the compiled skip program of one synchronized DFA state
// set: the states of C, the trigger bytes on which the scan must stop
// (the set would desynchronize, leave C, or raise a client event), and
// the sync table giving the unique post-byte state for every
// non-trigger byte. A nil *SkipSet means "cannot skip here".
type SkipSet struct {
	triggers []byte
	states   []int32 // sorted, ≤ MaxSkipStates
	sync     [256]int32
}

// NewSkipSet builds a SkipSet, or returns nil when the trigger set is
// empty (only a dead-end region loops on every byte) or larger than
// MaxSkipTriggers, or the state set is empty or larger than
// MaxSkipStates. sync[b] must hold the unique state reached from every
// state of C on byte b, for every non-trigger b; trigger entries are
// never consulted (conventionally -1).
func NewSkipSet(triggers []byte, states []int32, sync *[256]int32) *SkipSet {
	if len(triggers) == 0 || len(triggers) > MaxSkipTriggers ||
		len(states) == 0 || len(states) > MaxSkipStates {
		return nil
	}
	s := &SkipSet{
		triggers: append([]byte(nil), triggers...),
		states:   append([]int32(nil), states...),
	}
	s.sync = *sync
	return s
}

// Triggers exposes the trigger bytes (read-only).
func (s *SkipSet) Triggers() []byte { return s.triggers }

// States exposes the synchronized state set (read-only).
func (s *SkipSet) States() []int32 { return s.states }

// Contains reports whether q is in the synchronized set.
func (s *SkipSet) Contains(q int32) bool {
	for _, v := range s.states {
		if v == q {
			return true
		}
	}
	return false
}

// Sync returns the unique state reached from anywhere in the set on
// byte b. Only meaningful for non-trigger bytes.
func (s *SkipSet) Sync(b byte) int32 { return s.sync[b] }

// SkipCache memoizes the SkipSet built from every DFA state a scan has
// tried to skip from. Entries are immutable once stored; a stored nil
// records "unskippable" so hot loops do not rebuild the answer. The
// cache is per-client-DFA and shared by concurrent scans.
//
// Lock order: the cache mutex is only ever held for the map access
// itself, never across a build — builders resolve DFA transitions,
// which takes the DFA's own lock, and holding the cache mutex there
// would invert the order against scans that query the cache while
// read-locking the DFA. Concurrent first lookups of one state may
// both run the builder; the first Store wins and the results are
// identical, so the race is benign.
type SkipCache struct {
	mu sync.RWMutex
	m  map[int32]*SkipSet
}

// Lookup returns the cached SkipSet of state. ok=false means the state
// has not been built yet (a cached nil returns ok=true).
func (c *SkipCache) Lookup(state int32) (set *SkipSet, ok bool) {
	c.mu.RLock()
	set, ok = c.m[state]
	c.mu.RUnlock()
	return set, ok
}

// Store records the SkipSet of state (nil = unskippable) and returns
// the winning entry: the first stored value if another goroutine got
// there first.
func (c *SkipCache) Store(state int32, set *SkipSet) *SkipSet {
	c.mu.Lock()
	if prev, ok := c.m[state]; ok {
		c.mu.Unlock()
		return prev
	}
	if c.m == nil {
		c.m = make(map[int32]*SkipSet)
	}
	c.m[state] = set
	c.mu.Unlock()
	return set
}

// SkipRun is the per-scan occurrence cache of one SkipSet over one
// document. Each trigger's next occurrence is found with a vectorized
// IndexByte and remembered, so a document region is searched at most
// once per trigger no matter how many times the scan skips through it.
// A SkipRun is single-goroutine and must be Reset when the skipping
// set (or the document) changes.
type SkipRun struct {
	set *SkipSet
	// index searches doc[from:to] for b and returns an absolute doc
	// index or -1. Injected by the client so string and []byte scans
	// both dispatch to their vectorized stdlib search.
	index func(from, to int, b byte) int
	// next[i] caches trigger i's occurrence knowledge: there is no
	// occurrence in [searched-from, next[i]), and when next[i] lies
	// inside the searched window it is a genuine occurrence.
	next [MaxSkipTriggers]int
}

// Reset points the run at a SkipSet (nil disables it) using index to
// search the document. All cached occurrences are discarded.
func (r *SkipRun) Reset(set *SkipSet, index func(from, to int, b byte) int) {
	r.set = set
	r.index = index
	for i := range r.next {
		r.next[i] = -1
	}
}

// StringIndex adapts strings.IndexByte to SkipRun's search signature.
func StringIndex(doc string) func(from, to int, b byte) int {
	return func(from, to int, b byte) int {
		if i := strings.IndexByte(doc[from:to], b); i >= 0 {
			return from + i
		}
		return -1
	}
}

// BytesIndex adapts bytes.IndexByte to SkipRun's search signature.
func BytesIndex(doc []byte) func(from, to int, b byte) int {
	return func(from, to int, b byte) int {
		if i := bytes.IndexByte(doc[from:to], b); i >= 0 {
			return from + i
		}
		return -1
	}
}

// Jump returns the smallest index in [from, n) holding a trigger byte,
// and hit=true, when one lies within the capped search window;
// otherwise it returns the window end (≤ n) and hit=false. The caller
// resumes its normal per-byte loop at the returned index: every byte
// in [from, to) is trigger-free, so the synchronized set consumed them
// without events, and the state at any boundary b in (from, to] is
// set.Sync(doc[b-1]).
func (r *SkipRun) Jump(from, n int) (to int, hit bool) {
	if r.set == nil || from >= n {
		return from, false
	}
	lim := from + skipJumpWindow
	if lim > n {
		lim = n
	}
	best := lim
	for i, b := range r.set.triggers {
		nx := r.next[i]
		// Recompute on nx == from too: a cached value equal to from may
		// be a searched-horizon marker rather than an occurrence, and
		// re-searching from an actual occurrence finds it immediately.
		if nx <= from {
			nx = r.index(from, lim, b)
			if nx < 0 {
				// No occurrence before lim; remember the searched
				// horizon so re-entry after a capped jump re-searches
				// only past it.
				nx = lim
			}
			r.next[i] = nx
		}
		if nx < best {
			best = nx
		}
	}
	return best, best < lim
}

// SkipGate is the per-scan engagement state machine deciding when a
// scan loop should attempt a jump. It is what keeps the skip machinery
// out of the way on progress-making input: disengaged, it costs two or
// three compares per byte; armed, it additionally tests membership of
// the current state in the armed set (≤ MaxSkipStates compares) so the
// scan resumes jumping immediately after a short excursion (e.g. a
// failed partial literal match). A SkipGate is single-goroutine.
type SkipGate struct {
	cache *SkipCache
	build func(q int32) *SkipSet
	index func(from, to int, b byte) int
	run   SkipRun
	sk    *SkipSet // armed set, nil when disarmed
	// Two-entry build memo in front of the shared cache: a word/
	// separator oscillation alternates between two lookup keys, and
	// going to the mutex-guarded map per alternation would dominate.
	kA, kB int32
	vA, vB *SkipSet
	prev   int32 // previous distinct state, for 2-state streak tracking
	streak int
	miss   int
	cool   int
}

// Init points the gate at the DFA's shared skip cache. Must be called
// once before the first Step; persistent engagement state (armed set,
// streak, memo) survives across Bind calls.
func (g *SkipGate) Init(cache *SkipCache) {
	g.cache = cache
	g.kA, g.kB = -1, -1
	g.prev = -1
}

// Ready reports whether Init has run (lets resumable scans lazily
// initialize the gate they persist across chunks).
func (g *SkipGate) Ready() bool { return g.cache != nil }

// Bind attaches the per-scan callbacks: build constructs the SkipSet of
// a state (consulted through the cache), index searches the current
// document or chunk. Rebinding keeps the armed set and streak (a
// resumable scan crosses chunk boundaries mid-streak) but discards the
// occurrence cache, which is document-relative.
func (g *SkipGate) Bind(build func(q int32) *SkipSet, index func(from, to int, b byte) int) {
	g.build = build
	g.index = index
	g.run.Reset(nil, index)
}

// Step advances the engagement machine with one transition: the scan
// held state cur and moved to t (a real state, not a sentinel). It
// returns the SkipSet to jump with when the scan may skip from t, else
// nil. The caller jumps from the boundary after t's byte.
func (g *SkipGate) Step(cur, t int32) *SkipSet {
	if g.cool > 0 {
		g.cool--
		return nil
	}
	if g.sk != nil {
		if g.sk.Contains(t) {
			g.miss = 0
			return g.sk
		}
		if g.miss++; g.miss >= skipMissLimit {
			g.sk = nil
			g.miss = 0
		}
	}
	if t != cur {
		if t != g.prev {
			g.prev = cur
			g.streak = 0
			return nil
		}
		g.prev = cur
	}
	if g.streak++; g.streak < DefaultSkipStreak {
		return nil
	}
	// One cache consultation per streak window: a nil answer (state not
	// skippable) would otherwise be re-fetched every byte.
	g.streak = 0
	if s := g.resolve(t); s != nil && s.Contains(t) {
		g.sk = s
		g.miss = 0
		return s
	}
	return nil
}

func (g *SkipGate) resolve(q int32) *SkipSet {
	if q == g.kA {
		return g.vA
	}
	if q == g.kB {
		return g.vB
	}
	s, ok := g.cache.Lookup(q)
	if !ok {
		s = g.cache.Store(q, g.build(q))
	}
	g.kB, g.vB = g.kA, g.vA
	g.kA, g.vA = q, s
	return s
}

// Jump searches for the next trigger of s in [from, n), switching the
// occurrence cache over when the armed set changed. A jump that cannot
// advance starts the cool-down, so trigger clusters are stepped plainly
// instead of re-searched per byte.
func (g *SkipGate) Jump(s *SkipSet, from, n int) (to int, hit bool) {
	if g.run.set != s {
		g.run.Reset(s, g.index)
	}
	to, hit = g.run.Jump(from, n)
	if to <= from {
		g.cool = skipCoolBytes
	}
	return to, hit
}
