package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheSingleFlightBuildsOnce(t *testing.T) {
	c := newPlanCache(cacheConfig{cap: 4})
	var builds atomic.Int32
	gate := make(chan struct{})
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			plan, _, err := c.get(context.Background(), "", "k", func() (*Plan, error) {
				builds.Add(1)
				<-gate // hold the build open so every goroutine piles up
				return &Plan{}, nil
			})
			if err != nil || plan == nil {
				t.Errorf("get: plan=%v err=%v", plan, err)
			}
		}()
	}
	// Let the goroutines queue up behind the single in-flight build,
	// then release it.
	for builds.Load() == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want exactly once", got)
	}
	st := c.stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != n-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits+coalesced", st, n-1)
	}
}

func TestCacheErrorsAreNotCached(t *testing.T) {
	c := newPlanCache(cacheConfig{cap: 4})
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.get(context.Background(), "", "k", func() (*Plan, error) { calls++; return nil, boom })
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	plan, hit, err := c.get(context.Background(), "", "k", func() (*Plan, error) { calls++; return &Plan{}, nil })
	if err != nil || hit || plan == nil {
		t.Fatalf("retry: plan=%v hit=%v err=%v", plan, hit, err)
	}
	if calls != 2 {
		t.Fatalf("build calls = %d, want 2 (errors must not be cached)", calls)
	}
	if st := c.stats(); st.Size != 1 {
		t.Fatalf("size = %d, want 1", st.Size)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newPlanCache(cacheConfig{cap: 2})
	build := func() (*Plan, error) { return &Plan{}, nil }
	ctx := context.Background()
	c.get(ctx, "", "a", build)
	c.get(ctx, "", "b", build)
	c.get(ctx, "", "a", build) // refresh a; b is now least recently used
	c.get(ctx, "", "c", build) // evicts b
	if _, hit, _ := c.get(ctx, "", "a", build); !hit {
		t.Fatal("a should have survived eviction")
	}
	if _, hit, _ := c.get(ctx, "", "b", build); hit {
		t.Fatal("b should have been evicted")
	}
	st := c.stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions > 0", st)
	}
	if st.Size > 2 {
		t.Fatalf("size = %d exceeds cap 2", st.Size)
	}
}

// planOfCost fabricates a plan whose cost() lands near want by padding
// the spanner formula text (1 byte of formula = 1 unit of cost, on top
// of the 512-byte base).
func planOfCost(want int64) *Plan {
	pad := int(want) - 512
	if pad < 0 {
		pad = 0
	}
	return &Plan{Req: Request{Spanner: strings.Repeat("x", pad)}}
}

func TestCacheByteBudgetEviction(t *testing.T) {
	// Budget fits two ~1KiB plans but not three.
	c := newPlanCache(cacheConfig{cap: 100, maxBytes: 2500})
	ctx := context.Background()
	build := func() (*Plan, error) { return planOfCost(1000), nil }
	c.get(ctx, "", "a", build)
	c.get(ctx, "", "b", build)
	c.get(ctx, "", "c", build) // pushes bytes to ~3000 → evicts a
	st := c.stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want byte-budget evictions", st)
	}
	if st.Bytes > 2500 {
		t.Fatalf("bytes = %d exceeds budget 2500", st.Bytes)
	}
	if _, hit, _ := c.get(ctx, "", "a", build); hit {
		t.Fatal("a (LRU) should have been evicted by the byte budget")
	}
	if _, hit, _ := c.get(ctx, "", "c", build); !hit {
		t.Fatal("c (MRU) should have survived")
	}
}

func TestCacheTenantEntryQuota(t *testing.T) {
	// Global cap 8, per-tenant cap 2: tenant A churning keys evicts only
	// its own plans; tenant B's stay put.
	c := newPlanCache(cacheConfig{cap: 8, tenantCap: 2})
	ctx := context.Background()
	build := func() (*Plan, error) { return &Plan{}, nil }
	c.get(ctx, "B", "b1", build)
	c.get(ctx, "B", "b2", build)
	for i := 0; i < 5; i++ {
		c.get(ctx, "A", fmt.Sprintf("a%d", i), build)
	}
	st := c.stats()
	if st.TenantEvictions == 0 {
		t.Fatalf("stats = %+v, want tenant evictions", st)
	}
	if st.Evictions != 0 {
		t.Fatalf("stats = %+v, want zero global evictions (cap 8 never hit)", st)
	}
	for _, k := range []string{"b1", "b2"} {
		if _, hit, _ := c.get(ctx, "B", k, build); !hit {
			t.Fatalf("tenant B's %q was evicted by tenant A's churn", k)
		}
	}
	// A holds only its 2 most recent keys.
	if _, hit, _ := c.get(ctx, "A", "a0", build); hit {
		t.Fatal("a0 should have been evicted by A's own quota")
	}
}

func TestCacheTenantByteQuota(t *testing.T) {
	c := newPlanCache(cacheConfig{cap: 100, maxBytes: 1 << 20, tenantBytes: 2500})
	ctx := context.Background()
	build := func() (*Plan, error) { return planOfCost(1000), nil }
	c.get(ctx, "B", "b1", build)
	c.get(ctx, "A", "a1", build)
	c.get(ctx, "A", "a2", build)
	c.get(ctx, "A", "a3", build) // A at ~3000 bytes → evicts a1, not b1
	st := c.stats()
	if st.TenantEvictions == 0 {
		t.Fatalf("stats = %+v, want tenant byte-quota evictions", st)
	}
	if _, hit, _ := c.get(ctx, "B", "b1", build); !hit {
		t.Fatal("tenant B's plan was evicted by tenant A's byte churn")
	}
	if _, hit, _ := c.get(ctx, "A", "a1", build); hit {
		t.Fatal("a1 should have been evicted by A's byte quota")
	}
}

func TestCacheOversizePlanServedNotCached(t *testing.T) {
	c := newPlanCache(cacheConfig{cap: 100, maxBytes: 1 << 20, tenantBytes: 600})
	ctx := context.Background()
	calls := 0
	build := func() (*Plan, error) { calls++; return planOfCost(5000), nil }
	plan, _, err := c.get(ctx, "A", "huge", build)
	if err != nil || plan == nil {
		t.Fatalf("get: plan=%v err=%v", plan, err)
	}
	st := c.stats()
	if st.Oversize != 1 {
		t.Fatalf("stats = %+v, want oversize = 1", st)
	}
	if st.Size != 0 || st.Bytes != 0 {
		t.Fatalf("stats = %+v, want the oversize plan not cached", st)
	}
	// A second request recompiles (not cached), still served.
	if _, hit, _ := c.get(ctx, "A", "huge", build); hit {
		t.Fatal("oversize plan must not be a cache hit")
	}
	if calls != 2 {
		t.Fatalf("build calls = %d, want 2", calls)
	}
}

// TestCacheBuildPanicDoesNotPoisonKey: a panicking compilation (hostile
// input, e.g. a formula exceeding vsa.MaxVars) must surface as an error
// and leave the key retryable — previously the in-flight entry's ready
// channel was never closed and every later request for the key blocked
// forever.
func TestCacheBuildPanicDoesNotPoisonKey(t *testing.T) {
	c := newPlanCache(cacheConfig{cap: 4})
	ctx := context.Background()
	_, _, err := c.get(ctx, "", "k", func() (*Plan, error) { panic("boom") })
	if err == nil {
		t.Fatal("expected an error from a panicking build")
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := c.get(ctx, "", "k", func() (*Plan, error) { return &Plan{}, nil })
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("retry after panic: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("key poisoned: retry blocked on the dead in-flight entry")
	}
}

// TestPlanHostileFormulaTooManyVars drives the same hazard end to end
// through Engine.Plan: the request must fail cleanly, twice.
func TestPlanHostileFormulaTooManyVars(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 33; i++ {
		fmt.Fprintf(&sb, "(v%d{a})", i)
	}
	e := New(Config{})
	for round := 0; round < 2; round++ {
		_, _, err := e.Plan(context.Background(), Request{Spanner: sb.String()})
		if err == nil {
			t.Fatalf("round %d: expected an error for a %d-variable formula", round, 33)
		}
	}
}

// TestCacheTenantIsolationInKey: the same formulas under two tenants
// are distinct cache entries (Request.key incorporates the tenant).
func TestCacheTenantIsolationInKey(t *testing.T) {
	a := Request{Spanner: "x{a}", Tenant: "A"}
	b := Request{Spanner: "x{a}", Tenant: "B"}
	if a.key() == b.key() {
		t.Fatal("tenants must not share cache keys")
	}
}
