package core

// This file decides *locality* of a disjoint splitter: whether chunked
// incremental segmentation — the carry-over segmenter of
// internal/engine, which repeatedly splits a buffered suffix of the
// document, emits every segment but the last, and restarts the buffer
// at the last segment's start — is guaranteed byte-identical to
// splitting the whole document at once, for every document and every
// chunking. PR 3 made incremental streaming an operator opt-in exactly
// because disjointness alone does not imply this; IsLocal turns the
// opt-in into a proof obligation the engine can discharge on the
// splitter automaton, in the spirit of the paper's program of deciding
// splitter properties syntactically (Doleschal et al., PODS 2019,
// Section 5) rather than trusting them.
//
// # What the segmenter needs
//
// Write S(d) for the splitter's spans on document d, sorted. The
// segmenter is correct for every chunking iff for all strings w, u with
// |S(w)| ≥ 2 and a = start of the last span of S(w):
//
//	S(w·u) = nonlast(S(w)) ++ shift(S(w[a:]·u), a)     (E)
//
// — the spans the segmenter emits from a buffer w survive any extension
// u unchanged, no new spans ever appear to their left, and the
// segmentation of the retained suffix, computed from scratch, agrees
// with the tail of the whole-document segmentation. (E) quantifies over
// all documents, so it is a property of the automaton, not of any one
// input.
//
// # The sufficient conditions IsLocal verifies
//
// Every span of S(d) is witnessed by one accepting run of the unary
// automaton: the run opens x at the span's start boundary (on the edge
// consuming the first span byte, or as a wrap for an empty span) and
// closes it at the end boundary (on the edge consuming the byte after
// the span, or in a final operation set at document end). IsLocal
// checks disjointness plus three conditions, each a reachability
// analysis over byte-class atoms:
//
//	(L1) Committed acceptance. Every useful state whose variable is
//	     open or closed accepts *every* continuation. Once a run opens
//	     a span, no future byte can retract it: whether a span starts
//	     at a boundary is then determined by the reachable state set
//	     (the frontier) and the next byte alone, and whether it ends at
//	     a boundary by the run and the next byte alone — zero lookahead
//	     beyond one byte, which is exactly what the segmenter's
//	     emit-all-but-last rule can afford. Checked by enumerating, on
//	     the reversed automaton (automata.Reverse), the subset states
//	     "from which states does w reach acceptance": L1 holds iff
//	     every open/closed state lies in all of them.
//	(L2) No EOF ambiguity. No reachable frontier can simultaneously
//	     close a nonempty span at document end and open an empty one
//	     there. This is the one configuration in which the segmenter
//	     would emit a span whose end was justified only by the buffer
//	     ending — an end a longer document may move.
//	(L3) Factoring. For every reachable frontier F at which a span can
//	     start, a synchronized walk of the pair (F, {q₀}) — the
//	     whole-document frontier versus the fresh-buffer frontier —
//	     agrees at every subsequent boundary on all boundary events:
//	     span opens per next-byte atom, empty-span wraps per atom,
//	     empty span at EOF, and the *end profile* of the states an open
//	     reaches. The end profile of a state set T is the language of
//	     annotated words v·β such that some run from T reads the span
//	     content v and closes on next-byte atom β (or at EOF, β = $);
//	     equal profiles mean the two documents agree on where the span
//	     ends for every continuation. Profiles are compared by
//	     enumerating the subset states of the reversed close automaton
//	     once and fingerprinting each T against them, so the pair walk
//	     costs a signature comparison per (pair, atom), not a language
//	     equivalence test.
//
// # Soundness sketch (the fuzz target's contract)
//
// Under disjointness + L1, a span starts at boundary p of d iff the
// frontier before p has a status-0 state with an open edge on d's next
// byte (or a wrap final at EOF) — acceptance of the remainder is
// guaranteed, not assumed. Disjointness makes the end of the span
// starting at p unique per document, and L1 makes the closing run
// insensitive to everything after its close. Hence: (i) emitted spans
// survive extension — their opens and byte-edge closes reread the same
// prefix, and L2 rules out the only EOF-justified close an emitted
// span could have; (ii) no new spans appear left of the cut — starts
// there are decided by frontiers the extension cannot reach back to;
// (iii) the retained suffix re-segments identically — L3's pair walk
// verifies every boundary event agrees between the suffix frontier and
// the whole-document frontier from the cut on. Together these give (E)
// for every (w, u), which is the induction step of the segmenter's
// correctness proof. The procedure is sound but deliberately
// incomplete: a verdict of "local" is a proof, a verdict of "not
// local" means only that no proof was found (FuzzLocalityVsBuffered
// exercises the sound direction; TestIsLocalLibrarySplitters pins the
// coverage).
//
// All separator-driven splitters — sentences, paragraphs, tokens,
// records: block bytes and separator bytes partitioning the alphabet —
// satisfy L1–L3. Splitters whose segmentation depends on unbounded
// right context (e.g. blocks that only count if the document ends in
// '!') fail L1 and are correctly left to the buffer-all path.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alphabet"
	"repro/internal/automata"
	"repro/internal/vsa"
)

// IsLocal reports whether the splitter provably supports incremental
// chunked segmentation: chunk-at-a-time splitting with carry-over (see
// internal/engine's segmenter) is byte-identical to whole-document
// splitting, for every document and chunk size. Only disjoint splitters
// can be local; for a non-disjoint splitter IsLocal returns false. The
// procedure is sound and incomplete: true is a machine-checked proof,
// false means no proof was found. limit bounds the subset-construction
// state spaces (≤ 0 selects automata.DefaultLimit); past the bound
// IsLocal fails with automata.ErrTooLarge, and callers should treat the
// verdict as unknown and buffer.
func (s *Splitter) IsLocal(limit int) (bool, error) {
	if !s.IsDisjoint() {
		return false, nil
	}
	return s.isLocalDisjoint(limit)
}

// isLocalDisjoint runs the L1–L3 analysis assuming disjointness has
// already been established (IsDisjoint memoizes, so the engine's
// separately computed disjointness verdict is not paid for twice).
func (s *Splitter) isLocalDisjoint(limit int) (bool, error) {
	if limit <= 0 {
		limit = automata.DefaultLimit
	}
	a := s.auto.Trim()
	if len(a.States) == 1 && len(a.States[a.Start].Edges) == 0 && len(a.States[a.Start].Finals) == 0 {
		// Trim reduced the automaton to the bare start state: S(d) = ∅
		// for every document, so the segmenter never emits and the
		// flush is empty — trivially identical to one-shot.
		return true, nil
	}
	statuses, err := a.Statuses()
	if err != nil {
		return false, fmt.Errorf("core: locality: %w", err)
	}
	c := &localityCheck{a: a, limit: limit, st: make([]int, len(a.States))}
	for q := range a.States {
		c.st[q] = statuses[q].VarStatus(0)
	}
	// Byte-class atoms of the trimmed automaton, plus one atom for the
	// bytes no edge consumes (they kill every run, but documents may
	// still contain them, so frontiers must step over them).
	classes := a.Classes()
	c.atoms = alphabet.Atoms(classes)
	if dead := alphabet.UnionAll(classes).Complement(); !dead.IsEmpty() {
		c.atoms = append(c.atoms, dead)
	}

	if ok, err := c.committedAcceptance(); err != nil || !ok { // L1
		return false, err
	}
	if err := c.buildFrontiers(); err != nil {
		return false, err
	}
	if !c.noEOFAmbiguity() { // L2
		return false, nil
	}
	return c.factoring() // L3
}

// localityCheck carries the shared state of one IsLocal run.
type localityCheck struct {
	a     *vsa.Automaton
	st    []int // per-state splitter status: 0 unopened, 1 open, 2 closed
	atoms []alphabet.Class
	limit int

	frontiers []frontierInfo
	index     map[string]int32
	sigs      *profileSigs
}

// frontierInfo is one state of the splitter's frontier DFA (the subset
// construction over all runs), annotated with the boundary events the
// locality conditions compare. Slices are indexed by atom.
type frontierInfo struct {
	set   []int32
	trans []int32
	// openNow[c]: a nonempty span can start at this boundary when the
	// next byte is in atom c (a status-0 state has an Open edge on c).
	openNow []bool
	// wrapNow[c]: an empty span sits at this boundary when the next
	// byte is in atom c (a status-0 state has a Wrap edge on c).
	wrapNow []bool
	// openSig[c]: interned end-profile signature of the states the
	// opens on atom c reach, or -1 when openNow[c] is false.
	openSig []int32
	// openEOF: an empty span sits at the final boundary (a status-0
	// state has a wrap final operation set).
	openEOF bool
	// closeEOF: a nonempty span ends at the final boundary (a status-1
	// state has a final operation set).
	closeEOF bool
}

// openEvent reports whether any span can start at this boundary — the
// frontiers at which the segmenter can cut, and hence the left sides of
// the L3 pair walk.
func (f *frontierInfo) openEvent() bool {
	if f.openEOF {
		return true
	}
	for c := range f.openNow {
		if f.openNow[c] || f.wrapNow[c] {
			return true
		}
	}
	return false
}

// committedAcceptance checks L1: every useful open/closed state accepts
// every continuation. L_acc(q) = Σ* for all q is equivalent to q being
// a member of every set "states from which w reaches acceptance", and
// those sets are exactly the subset states of the determinized
// *reversed* acceptance automaton — automata.Reverse turns final states
// into start states, so its subset walk enumerates them directly.
func (c *localityCheck) committedAcceptance() (bool, error) {
	n := len(c.a.States)
	acc := automata.New(len(c.atoms))
	for q := 0; q < n; q++ {
		acc.AddState(len(c.a.States[q].Finals) > 0)
	}
	for q, st := range c.a.States {
		for _, e := range st.Edges {
			for sym, atom := range c.atoms {
				if e.Class.Intersects(atom) {
					acc.AddEdge(q, sym, e.To)
				}
			}
		}
	}
	acc.DedupeEdges()
	inAll := make([]bool, n)
	for q := range inAll {
		inAll[q] = true
	}
	member := make([]bool, n)
	err := reachSubsets(automata.Reverse(acc), c.limit, func(set []int) {
		for _, q := range set {
			member[q] = true
		}
		for q := 0; q < n; q++ {
			if !member[q] {
				inAll[q] = false
			}
		}
		for _, q := range set {
			member[q] = false
		}
	})
	if err != nil {
		return false, err
	}
	for q := 0; q < n; q++ {
		if c.st[q] != 0 && !inAll[q] {
			return false, nil
		}
	}
	return true, nil
}

// buildFrontiers runs the frontier subset construction from {q₀} and
// precomputes, per frontier and atom, the boundary events and the
// end-profile signatures of open targets.
func (c *localityCheck) buildFrontiers() error {
	var err error
	if c.sigs, err = newProfileSigs(c); err != nil {
		return err
	}
	c.index = map[string]int32{}
	start := []int32{int32(c.a.Start)}
	if _, err := c.internFrontier(start); err != nil {
		return err
	}
	for i := 0; i < len(c.frontiers); i++ {
		for sym := range c.atoms {
			next := c.frontierStep(c.frontiers[i].set, sym)
			to, err := c.internFrontier(next)
			if err != nil {
				return err
			}
			// frontiers may have been reallocated by internFrontier.
			c.frontiers[i].trans[sym] = to
		}
	}
	return nil
}

// frontierStep computes the successor frontier on one atom.
func (c *localityCheck) frontierStep(set []int32, sym int) []int32 {
	atom := c.atoms[sym]
	seen := make(map[int32]bool)
	var next []int32
	for _, q := range set {
		for _, e := range c.a.States[q].Edges {
			if e.Class.Intersects(atom) && !seen[int32(e.To)] {
				seen[int32(e.To)] = true
				next = append(next, int32(e.To))
			}
		}
	}
	sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
	return next
}

// internFrontier returns the id of a frontier set, creating and
// annotating it on first sight.
func (c *localityCheck) internFrontier(set []int32) (int32, error) {
	key := int32SetKey(set)
	if id, ok := c.index[key]; ok {
		return id, nil
	}
	if len(c.frontiers) >= c.limit {
		return 0, fmt.Errorf("core: locality frontier construction: %w", automata.ErrTooLarge)
	}
	nsym := len(c.atoms)
	f := frontierInfo{
		set:     set,
		trans:   make([]int32, nsym),
		openNow: make([]bool, nsym),
		wrapNow: make([]bool, nsym),
		openSig: make([]int32, nsym),
	}
	for sym := range f.openSig {
		f.openSig[sym] = -1
	}
	var openTargets [][]int32
	for _, q := range set {
		switch c.st[q] {
		case 0:
			for _, fin := range c.a.States[q].Finals {
				if splitOpKind(fin) == sWrap {
					f.openEOF = true
				}
			}
		case 1:
			if len(c.a.States[q].Finals) > 0 {
				f.closeEOF = true
			}
		}
		if c.st[q] != 0 {
			continue
		}
		for _, e := range c.a.States[q].Edges {
			kind := splitOpKind(e.Ops)
			if kind != sOpen && kind != sWrap {
				continue
			}
			for sym, atom := range c.atoms {
				if !e.Class.Intersects(atom) {
					continue
				}
				if kind == sWrap {
					f.wrapNow[sym] = true
					continue
				}
				f.openNow[sym] = true
				if openTargets == nil {
					openTargets = make([][]int32, nsym)
				}
				openTargets[sym] = append(openTargets[sym], int32(e.To))
			}
		}
	}
	for sym, targets := range openTargets {
		if len(targets) > 0 {
			f.openSig[sym] = c.sigs.signature(targets)
		}
	}
	id := int32(len(c.frontiers))
	c.frontiers = append(c.frontiers, f)
	c.index[key] = id
	return id, nil
}

// noEOFAmbiguity checks L2 on every reachable frontier.
func (c *localityCheck) noEOFAmbiguity() bool {
	for i := range c.frontiers {
		if c.frontiers[i].openEOF && c.frontiers[i].closeEOF {
			return false
		}
	}
	return true
}

// factoring checks L3: from every (cut frontier, fresh frontier) pair,
// all reachable pairs agree on every boundary event. Diagonal pairs
// agree trivially and step to diagonal pairs, so only off-diagonal
// pairs are walked; the walk is bounded by limit.
func (c *localityCheck) factoring() (bool, error) {
	startID := int32(0) // internFrontier({q₀}) ran first in buildFrontiers
	type pair struct{ f, g int32 }
	seen := map[pair]bool{}
	var queue []pair
	push := func(p pair) error {
		if p.f == p.g || seen[p] {
			return nil
		}
		if len(seen) >= c.limit {
			return fmt.Errorf("core: locality pair walk: %w", automata.ErrTooLarge)
		}
		seen[p] = true
		queue = append(queue, p)
		return nil
	}
	for id := range c.frontiers {
		if c.frontiers[id].openEvent() {
			if err := push(pair{int32(id), startID}); err != nil {
				return false, err
			}
		}
	}
	for i := 0; i < len(queue); i++ {
		p := queue[i]
		f, g := &c.frontiers[p.f], &c.frontiers[p.g]
		if f.openEOF != g.openEOF {
			return false, nil
		}
		for sym := range c.atoms {
			if f.openNow[sym] != g.openNow[sym] ||
				f.wrapNow[sym] != g.wrapNow[sym] ||
				f.openSig[sym] != g.openSig[sym] {
				return false, nil
			}
			if err := push(pair{f.trans[sym], g.trans[sym]}); err != nil {
				return false, err
			}
		}
	}
	return true, nil
}

// profileSigs fingerprints end profiles. The end profile of a state set
// T is the language of words v·β (β an atom or the EOF marker $) such
// that some status-1 run from T reads span content v and then closes
// consuming a byte of β, or closes in a final operation set when β = $.
// Two sets have equal profiles iff they intersect exactly the same sets
// "states from which v·β reaches the close" — and those are the subset
// states of the determinized reversed close automaton. newProfileSigs
// enumerates them once (automata.Reverse seeds the walk at the close
// sink) and records, per automaton state, a bitset of the subsets it
// belongs to; a set's signature is the union of its members' bitsets,
// interned so the pair walk compares plain int32s.
type profileSigs struct {
	check *localityCheck
	words int        // bitset words per state
	bits  [][]uint64 // per state: membership over enumerated subsets
	ids   map[string]int32
	buf   []uint64
}

func newProfileSigs(c *localityCheck) (*profileSigs, error) {
	n := len(c.a.States)
	nsym := len(c.atoms)
	cp := automata.New(nsym + 1) // +1: the $ EOF marker
	for q := 0; q < n; q++ {
		cp.AddState(false)
	}
	sink := cp.AddState(true)
	for q, st := range c.a.States {
		if c.st[q] != 1 {
			continue
		}
		for _, e := range st.Edges {
			kind := splitOpKind(e.Ops)
			if kind != sNone && kind != sClose {
				continue
			}
			to := e.To
			if kind == sClose {
				to = sink
			}
			for sym, atom := range c.atoms {
				if e.Class.Intersects(atom) {
					cp.AddEdge(q, sym, to)
				}
			}
		}
		if len(st.Finals) > 0 {
			cp.AddEdge(q, nsym, sink)
		}
	}
	cp.DedupeEdges()
	s := &profileSigs{check: c, bits: make([][]uint64, n), ids: map[string]int32{}}
	var nsub int
	err := reachSubsets(automata.Reverse(cp), c.limit, func(set []int) {
		word, bit := nsub/64, uint64(1)<<(nsub%64)
		nsub++
		for _, q := range set {
			if q >= n {
				continue // the sink carries no profile of its own
			}
			for len(s.bits[q]) <= word {
				s.bits[q] = append(s.bits[q], 0)
			}
			s.bits[q][word] |= bit
		}
	})
	if err != nil {
		return nil, err
	}
	s.words = (nsub + 63) / 64
	s.buf = make([]uint64, s.words)
	return s, nil
}

// signature interns the profile of a state set and returns its id.
func (s *profileSigs) signature(targets []int32) int32 {
	for i := range s.buf {
		s.buf[i] = 0
	}
	for _, q := range targets {
		for i, w := range s.bits[q] {
			s.buf[i] |= w
		}
	}
	var b strings.Builder
	for _, w := range s.buf {
		fmt.Fprintf(&b, "%x,", w)
	}
	key := b.String()
	if id, ok := s.ids[key]; ok {
		return id
	}
	id := int32(len(s.ids))
	s.ids[key] = id
	return id
}

// reachSubsets enumerates the reachable subset states of nfa's
// determinization in BFS order, calling visit on each (the start set
// included, even when empty — the empty set is the dead state bytes
// outside every edge class lead to). It fails with automata.ErrTooLarge
// past limit.
func reachSubsets(nfa *automata.NFA, limit int, visit func(set []int)) error {
	start := append([]int(nil), nfa.Starts...)
	sort.Ints(start)
	start = dedupeSortedInts(start)
	seen := map[string]bool{intSetKey(start): true}
	queue := [][]int{start}
	visit(start)
	mark := make([]bool, nfa.Len())
	for i := 0; i < len(queue); i++ {
		set := queue[i]
		for sym := 0; sym < nfa.NumSymbols; sym++ {
			var next []int
			for _, q := range set {
				for _, e := range nfa.Adj[q] {
					if e.Sym == sym && !mark[e.To] {
						mark[e.To] = true
						next = append(next, e.To)
					}
				}
			}
			for _, q := range next {
				mark[q] = false
			}
			sort.Ints(next)
			key := intSetKey(next)
			if seen[key] {
				continue
			}
			if len(seen) >= limit {
				return fmt.Errorf("core: locality subset enumeration: %w", automata.ErrTooLarge)
			}
			seen[key] = true
			queue = append(queue, next)
			visit(next)
		}
	}
	return nil
}

func intSetKey(set []int) string {
	var b strings.Builder
	for _, q := range set {
		fmt.Fprintf(&b, "%x,", q)
	}
	return b.String()
}

func int32SetKey(set []int32) string {
	var b strings.Builder
	for _, q := range set {
		fmt.Fprintf(&b, "%x,", q)
	}
	return b.String()
}

func dedupeSortedInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
