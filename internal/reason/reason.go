// Package reason implements the query-planning problems of Section 6:
// composition of splitters (Lemma 6.1), commutativity of two splitters
// with respect to a regular context (Theorem 6.2), subsumption
// (Theorem 6.3), and the transitivity properties of splittability
// (Observation 6.4 and Lemma 6.5).
package reason

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/vsa"
)

// ComposeSplitters builds a splitter for S1 ∘ S2 — apply S2 to the
// document and S1 to every segment, shifting the results (Lemma 6.1). The
// construction is Compose specialized to a unary split-spanner and is
// polynomial.
func ComposeSplitters(s1, s2 *core.Splitter) (*core.Splitter, error) {
	return core.NewSplitter(core.Compose(s1.Automaton(), s2))
}

// Commute decides whether S1 and S2 commute with respect to the regular
// context R (Theorem 6.2): (S1 ∘ S2)(d) = (S2 ∘ S1)(d) for every d ∈ R.
// R is a Boolean spanner; pass nil for R = Σ*. The equivalence test is
// PSPACE in the worst case and guarded by limit.
func Commute(s1, s2 *core.Splitter, r *vsa.Automaton, limit int) (bool, error) {
	a12, err := ComposeSplitters(s1, s2)
	if err != nil {
		return false, err
	}
	a21, err := ComposeSplitters(s2, s1)
	if err != nil {
		return false, err
	}
	left, right := a12.Automaton(), a21.Automaton()
	// Align the composed splitters' variables.
	right = right.Remap(left.Vars)
	if r != nil {
		if left, err = algebra.Restrict(left, r); err != nil {
			return false, err
		}
		if right, err = algebra.Restrict(right, r); err != nil {
			return false, err
		}
	}
	return vsa.Equivalent(left, right, limit)
}

// Subsumes decides whether s subsumes sPrime with respect to R
// (Theorem 6.3): S(d) = (S' ∘ S)(d) for all d ∈ R. Pass nil for R = Σ*.
func Subsumes(s, sPrime *core.Splitter, r *vsa.Automaton, limit int) (bool, error) {
	comp, err := ComposeSplitters(sPrime, s)
	if err != nil {
		return false, err
	}
	left := s.Automaton()
	right := comp.Automaton().Remap(left.Vars)
	if r != nil {
		if left, err = algebra.Restrict(left, r); err != nil {
			return false, err
		}
		if right, err = algebra.Restrict(right, r); err != nil {
			return false, err
		}
	}
	return vsa.Equivalent(left, right, limit)
}

// TransferSelfSplittability implements Lemma 6.5: if P = P ∘ S1 and
// S1 = S1 ∘ S2, then P = P ∘ S2. It verifies both premises and returns an
// error when one fails — Observation 6.4 shows the corresponding
// implication is false for split-correctness via a general P_S, so no
// such helper exists for that case.
func TransferSelfSplittability(p *vsa.Automaton, s1, s2 *core.Splitter, limit int) (bool, error) {
	ok, err := core.SelfSplittable(p, s1, limit)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, fmt.Errorf("reason: premise failed: P is not self-splittable by S1")
	}
	ok, err = Subsumes(s1, s2, nil, limit)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, fmt.Errorf("reason: premise failed: S1 ≠ S1 ∘ S2")
	}
	return true, nil
}
