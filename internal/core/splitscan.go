package core

// This file implements the compiled splitter scanner: the fourth client
// of the internal/lazydfa subset-construction engine (after vsa's
// evaluation, forward-scan and backward-narrowing DFAs). For a disjoint
// splitter it turns Split — previously a full Eval plus a relation sort
// — into a single left-to-right DFA pass that emits spans in document
// order as their closes commit, and the pass is resumable: a ScanRun
// carries (DFA state, pending-open boundary) across chunk boundaries,
// which is what lets engine streaming segment a document in O(n) total
// work instead of re-splitting the retained buffer after every chunk.
//
// Soundness rests on commitment: the scanner only emits a span when its
// close (or wrap) enters a suffix-universal state — every extension of
// the document is then accepted, so the span is in S(d·u) for every
// suffix u, including the one actually streamed. Whenever one-pass
// emission cannot be decided locally the scanner bails and the caller
// falls back to the Eval-based reference path:
//
//   - a close or wrap into a non-suffix-universal (but useful) state:
//     whether the span is produced depends on the rest of the document;
//   - an open event while a previous open generation is still alive, or
//     a committed close while open runs survive: a single pending-open
//     scalar can no longer represent the frontier (for a disjoint
//     splitter both situations imply overlapping outputs, so on proven
//     inputs they occur only through the suffix-universality analysis'
//     bounded incompleteness);
//   - DFA state-bound overflow.
//
// Useless states (not reachable, or unable to reach acceptance) are
// excluded from subsets entirely, so runs that can never accept neither
// raise events nor cause spurious bails. Disjointness is required — it
// is what makes "all live opens share one boundary" an invariant — and
// is checked (IsDisjoint, exact) before the scanner is built.

import (
	"repro/internal/alphabet"
	"repro/internal/lazydfa"
	"repro/internal/span"
	"repro/internal/vsa"
)

// Split-event bits of one (subset, byte class) pair, evaluated when a
// byte of that class is consumed at boundary b (1-based: byte index+1).
const (
	evOpen  uint8 = 1 << iota // a span opens at b: pending ← b
	evClose                   // a committed close: emit [pending, b⟩
	evWrap                    // a committed empty span: emit [b, b⟩
	evBail                    // one-pass emission undecidable: fall back
)

// scanPayload is the per-DFA-state payload of the splitter scanner: the
// split events of every byte class, plus the document-end events (final
// operation sets of subset members) applied by ScanRun.Flush.
type scanPayload struct {
	ev       []uint8
	endClose bool // an open member accepts at the end: emit [pending, n+1⟩
	endWrap  bool // an unopened member wrap-accepts: emit [n+1, n+1⟩
}

// splitScanner is the compiled scanner of one disjoint splitter. Like
// every lazydfa client it is warmed lazily and shared: concurrent
// ScanRuns walk one transition cache under the engine's read lock.
type splitScanner struct {
	classOf  [256]uint8
	nclasses int
	dfa      *lazydfa.DFA[scanPayload]
	start    int32
	// skips memoizes per-DFA-state trigger sets for the scan skip loop
	// (see internal/vsa/prefilter.go); noSkip honors DisablePrefilter.
	skips  lazydfa.SkipCache
	noSkip bool
}

// scanner returns the compiled scanner, building it on first use, or
// nil when the splitter does not admit one (it is not disjoint).
func (s *Splitter) scanner() *splitScanner {
	s.scanOnce.Do(func() { s.scanVal = buildSplitScanner(s) })
	return s.scanVal
}

func buildSplitScanner(s *Splitter) *splitScanner {
	if !s.IsDisjoint() {
		return nil
	}
	a := s.auto
	st := s.statuses
	uni := a.SuffixUniversal()
	useful := usefulStates(a)
	classOf, reps := alphabet.ClassTable(a.Classes())
	nc := len(reps)
	n := len(a.States)

	// Compiled adjacency over byte classes, restricted to edges that can
	// belong to an accepting run: sources are useful, not-yet-closed
	// states (the only states subsets track — closed runs are committed
	// or bailed, never followed), targets are useful.
	type sedge struct {
		kind int
		to   int32
	}
	adj := make([][]sedge, n*nc)
	finClose := make([]bool, n) // open state accepting at doc end
	finWrap := make([]bool, n)  // unopened state wrap-accepting at doc end
	for q := 0; q < n; q++ {
		if !useful[q] || st[q] == 2 {
			continue
		}
		for _, e := range a.States[q].Edges {
			if !useful[e.To] {
				continue
			}
			kind := splitOpKind(e.Ops)
			for c, rep := range reps {
				if e.Class.Has(rep) {
					adj[q*nc+c] = append(adj[q*nc+c], sedge{kind, int32(e.To)})
				}
			}
		}
		for _, f := range a.States[q].Finals {
			switch splitOpKind(f) {
			case sClose:
				finClose[q] = true
			case sWrap:
				finWrap[q] = true
			}
		}
	}

	sc := &splitScanner{classOf: classOf, nclasses: nc, noSkip: a.PrefilterDisabled()}
	sc.dfa = lazydfa.New(lazydfa.Config[scanPayload]{
		Classes: nc,
		States:  n,
		Succ: func(q int32, c uint8, emit func(int32)) {
			for _, e := range adj[int(q)*nc+int(c)] {
				// Open and op-free edges keep the run tracked; close and
				// wrap targets (status 2) are resolved by events instead.
				if e.kind == sNone || e.kind == sOpen {
					emit(e.to)
				}
			}
		},
		Payload: func(set []int32) scanPayload {
			p := scanPayload{ev: make([]uint8, nc)}
			for c := 0; c < nc; c++ {
				var open, close, wrap, keep, bail bool
				for _, q := range set {
					for _, e := range adj[int(q)*nc+c] {
						switch e.kind {
						case sNone:
							if st[q] == 1 {
								keep = true // an open run survives this byte
							}
						case sOpen:
							open = true
						case sClose:
							if uni[e.to] {
								close = true
							} else {
								bail = true
							}
						case sWrap:
							if uni[e.to] {
								wrap = true
							} else {
								bail = true
							}
						}
					}
				}
				// A surviving open run forbids both starting a new
				// generation (two pending boundaries) and committing the
				// current one (a later close of the survivor would
				// overlap the emitted span).
				if keep && (open || close) {
					bail = true
				}
				var ev uint8
				if open {
					ev |= evOpen
				}
				if close {
					ev |= evClose
				}
				if wrap {
					ev |= evWrap
				}
				if bail {
					ev |= evBail
				}
				p.ev[c] = ev
			}
			for _, q := range set {
				if finClose[q] {
					p.endClose = true
				}
				if finWrap[q] {
					p.endWrap = true
				}
			}
			return p
		},
	})
	startSet := []int32{}
	if useful[a.Start] {
		startSet = append(startSet, int32(a.Start))
	}
	sc.start = sc.dfa.Intern(startSet)
	return sc
}

// skipSet builds the synchronized skip set around DFA state cur for the
// scan skip loop: trigger bytes are those whose class desynchronizes the
// set, leaves it, or raises a split event in some member. Every other
// byte maps the whole set to one event-free state, so a jump over a run
// of them changes neither the pending boundary nor the emitted spans,
// and the landing state is the sync state of the last skipped byte — the
// skip is byte-exact, never a semantic shortcut. Returns nil when cur
// cannot skip (no synchronized set, too many triggers, or an overflowed
// transition row).
func (sc *splitScanner) skipSet(w *lazydfa.Walker[scanPayload], cur int32) *lazydfa.SkipSet {
	return vsa.BuildSkipSet(sc.nclasses, sc.classOf[:],
		func(q int32) bool { return q > lazydfa.Dead },
		func(q int32, c uint8) bool { return w.States[q].Payload.ev[c] != 0 },
		func(q int32, c uint8) (int32, bool) {
			t := w.States[q].Trans(c)
			if t == lazydfa.Unknown {
				t = w.Resolve(q, c)
			}
			if t == lazydfa.Overflow {
				return 0, false
			}
			return t, true
		}, cur)
}

// usefulStates marks the states lying on some accepting run: reachable
// from the start and able to reach a final-bearing state.
func usefulStates(a *vsa.Automaton) []bool {
	n := len(a.States)
	reach := make([]bool, n)
	stack := []int{a.Start}
	reach[a.Start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range a.States[q].Edges {
			if !reach[e.To] {
				reach[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	pred := make([][]int32, n)
	for q := 0; q < n; q++ {
		for _, e := range a.States[q].Edges {
			pred[e.To] = append(pred[e.To], int32(q))
		}
	}
	coreach := make([]bool, n)
	stack = stack[:0]
	for q := 0; q < n; q++ {
		if len(a.States[q].Finals) > 0 {
			coreach[q] = true
			stack = append(stack, q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range pred[q] {
			if !coreach[u] {
				coreach[u] = true
				stack = append(stack, int(u))
			}
		}
	}
	useful := make([]bool, n)
	for q := 0; q < n; q++ {
		useful[q] = reach[q] && coreach[q]
	}
	return useful
}

// ScanRun is one resumable left-to-right pass of the compiled splitter
// scanner. Feed consumes chunks and appends committed spans in absolute
// document coordinates; the run's whole cross-chunk state is a DFA
// state id plus the pending-open boundary, so resuming costs nothing
// and never rescans. A run is single-goroutine; concurrent runs over
// one Splitter are fine (they share the warm DFA).
type ScanRun struct {
	sc       *splitScanner
	state    int32
	pos      int // bytes consumed so far
	pending  int // 1-based boundary of the in-progress open; 0 = none
	lastOpen int // 1-based boundary of the last open/wrap event; 0 = none
	last     span.Span
	bailed   bool
	// gate decides when the scan may jump over trigger-free runs (see
	// internal/vsa/prefilter.go). Its engagement state persists across
	// Feed calls so tiny chunks (streaming readers feed as little as one
	// byte) still reach the skip threshold; per-chunk search state is
	// rebound by scanChunk.
	gate lazydfa.SkipGate
}

// NewScanRun returns a fresh resumable scan, or ok=false when the
// splitter has no compiled scanner (it is not disjoint).
func (s *Splitter) NewScanRun() (*ScanRun, bool) {
	sc := s.scanner()
	if sc == nil {
		return nil, false
	}
	return &ScanRun{sc: sc, state: sc.start}, true
}

// Pos returns the number of bytes consumed so far.
func (r *ScanRun) Pos() int { return r.pos }

// Bailed reports whether the run has given up; spans emitted before the
// bail remain valid, everything from Anchor on must be re-split by the
// reference path.
func (r *ScanRun) Bailed() bool { return r.bailed }

// Anchor returns the 0-based byte offset from which the document must
// be retained: the start of the last span event (the in-progress open,
// or the most recent emitted span start). Every span the run emits from
// now on starts at or after Anchor, and — because an open/wrap boundary
// is a genuine span start — a bail fallback restarting the reference
// splitter at Anchor is licensed by the same property (E) cut the
// buffered segmenter uses. Before any span event it is 0: nothing may
// be dropped yet.
func (r *ScanRun) Anchor() int {
	if r.lastOpen > 0 {
		return r.lastOpen - 1
	}
	return 0
}

// emit appends sp, enforcing strictly increasing (Start, End) order —
// a violation means an assumption (disjointness, single pending open)
// broke, so the run bails rather than emit an out-of-order span.
func (r *ScanRun) emit(out []span.Span, sp span.Span) ([]span.Span, bool) {
	if r.last.Start != 0 && (sp.Start < r.last.Start || (sp.Start == r.last.Start && sp.End <= r.last.End)) {
		return out, false
	}
	r.last = sp
	return append(out, sp), true
}

// Feed consumes the next chunk, appending every span committed by it to
// out (absolute 1-based coordinates, document order). ok=false means
// the run bailed: out still holds only valid spans, and the caller
// falls back to the reference path from Anchor.
func (r *ScanRun) Feed(chunk []byte, out []span.Span) (res []span.Span, ok bool) {
	return scanChunk(r, chunk, out)
}

func scanChunk[T ~string | ~[]byte](r *ScanRun, chunk T, out []span.Span) ([]span.Span, bool) {
	if r.bailed {
		return out, false
	}
	sc := r.sc
	w := sc.dfa.Walk()
	cur := r.state
	ok := true
	// Skip-loop machinery (see internal/vsa/prefilter.go): idx is the
	// vectorized byte search of this chunk's concrete type, hoisted so
	// the hot loop never boxes the chunk. A named ~string/~[]byte type
	// would leave idx nil and simply never skip.
	var idx func(from, to int, b byte) int
	if !sc.noSkip {
		switch d := any(chunk).(type) {
		case string:
			idx = lazydfa.StringIndex(d)
		case []byte:
			idx = lazydfa.BytesIndex(d)
		}
	}
	if idx != nil {
		if !r.gate.Ready() {
			r.gate.Init(&sc.skips)
		}
		r.gate.Bind(func(q int32) *lazydfa.SkipSet { return sc.skipSet(&w, q) }, idx)
	}
	for i := 0; i < len(chunk); i++ {
		if i&4095 == 4095 {
			w.Yield() // let pending writers in; see lazydfa.Walker
		}
		c := sc.classOf[chunk[i]]
		if ev := w.States[cur].Payload.ev[c]; ev != 0 {
			b := r.pos + i + 1
			if ev&evBail != 0 {
				ok = false
				break
			}
			if ev&evClose != 0 {
				if r.pending == 0 {
					ok = false
					break
				}
				if out, ok = r.emit(out, span.Span{Start: r.pending, End: b}); !ok {
					break
				}
				r.pending = 0
			}
			if ev&evWrap != 0 {
				if out, ok = r.emit(out, span.Span{Start: b, End: b}); !ok {
					break
				}
				r.lastOpen = b
			}
			if ev&evOpen != 0 {
				r.pending = b
				r.lastOpen = b
			}
		}
		t := w.States[cur].Trans(c)
		if t == lazydfa.Unknown {
			t = w.Resolve(cur, c)
		}
		if t == lazydfa.Overflow {
			ok = false
			break
		}
		if idx != nil {
			// The scan is confined to a synchronized, event-free state set:
			// jump to the next byte that can break out or raise an event.
			// Skipped bytes are class-proven event-free, so spans, pending
			// and Anchor come out byte-identical to the stepped scan, and
			// the landing state is the sync state of the last skipped byte.
			if sk := r.gate.Step(cur, t); sk != nil {
				if j, _ := r.gate.Jump(sk, i+1, len(chunk)); j > i+1 {
					if j-(i+1) >= 4096 {
						w.Yield()
					}
					t = sk.Sync(chunk[j-1])
					i = j - 1 // byte j's events re-checked from the sync state
				}
			}
		}
		cur = t
	}
	w.Release()
	r.state = cur
	r.pos += len(chunk)
	if !ok {
		r.bailed = true
	}
	return out, ok
}

// Flush ends the stream: final operation sets of the current subset are
// applied at the end-of-document boundary. ok=false reports a bail
// (here or earlier).
func (r *ScanRun) Flush(out []span.Span) (res []span.Span, ok bool) {
	if r.bailed {
		return out, false
	}
	w := r.sc.dfa.Walk()
	pl := w.States[r.state].Payload
	w.Release()
	end := r.pos + 1
	if pl.endClose {
		if r.pending == 0 {
			r.bailed = true
			return out, false
		}
		if out, ok = r.emit(out, span.Span{Start: r.pending, End: end}); !ok {
			r.bailed = true
			return out, false
		}
	}
	if pl.endWrap {
		if out, ok = r.emit(out, span.Span{Start: end, End: end}); !ok {
			r.bailed = true
			return out, false
		}
	}
	return out, true
}

// scan is the whole-document pass used by Split.
func (sc *splitScanner) scan(doc string) ([]span.Span, bool) {
	r := ScanRun{sc: sc, state: sc.start}
	out, ok := scanChunk(&r, doc, make([]span.Span, 0, 8))
	if !ok {
		return nil, false
	}
	return r.Flush(out)
}
