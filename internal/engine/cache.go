package engine

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// CacheStats is a snapshot of plan-cache counters. Hits and Coalesced
// both denote requests that did not compile: a hit found a completed
// plan, a coalesced request joined an in-flight compilation of the same
// key (the single-flight path). Misses counts actual compilations,
// including ones that ended in an error (errors are not cached, so a
// later request retries). Evictions counts removals forced by the
// global entry/byte budgets, TenantEvictions removals forced by a
// single tenant's quota, and Oversize plans whose estimated cost alone
// exceeded the per-tenant byte budget (they are compiled, served and
// not cached — a hostile tenant cannot pin the cache with one huge
// plan).
type CacheStats struct {
	Hits            uint64  `json:"hits"`
	Misses          uint64  `json:"misses"`
	Coalesced       uint64  `json:"coalesced"`
	Evictions       uint64  `json:"evictions"`
	TenantEvictions uint64  `json:"tenant_evictions"`
	Oversize        uint64  `json:"oversize"`
	Size            int     `json:"size"`
	Cap             int     `json:"cap"`
	Bytes           int64   `json:"bytes"`
	MaxBytes        int64   `json:"max_bytes"`
	Tenants         int     `json:"tenants"`
	HitRate         float64 `json:"hit_rate"`
}

// cacheConfig bounds the plan cache. The entry caps bound how many
// plans are held; the byte budgets bound their summed estimated memory
// cost (Plan.cost), so many small plans and few huge ones hit the same
// ceiling. Per-tenant budgets carve the global budgets up: one tenant
// churning unique formulas evicts its own plans, never another
// tenant's.
type cacheConfig struct {
	cap         int   // max entries, all tenants (≥ 1)
	maxBytes    int64 // max summed plan cost; ≤ 0 = unlimited
	tenantCap   int   // max entries per tenant; ≤ 0 = cap
	tenantBytes int64 // max summed plan cost per tenant; ≤ 0 = maxBytes
}

func (c cacheConfig) withDefaults() cacheConfig {
	if c.cap < 1 {
		c.cap = 1
	}
	if c.tenantCap <= 0 || c.tenantCap > c.cap {
		c.tenantCap = c.cap
	}
	if c.tenantBytes <= 0 || (c.maxBytes > 0 && c.tenantBytes > c.maxBytes) {
		c.tenantBytes = c.maxBytes
	}
	return c
}

// planCache is an LRU of compiled plans with single-flight
// deduplication, bounded by entry counts and estimated plan cost, both
// globally and per tenant. Concurrent gets of the same key run the
// build function exactly once, with the late arrivals blocking on the
// in-flight entry instead of re-running the decision procedures.
type planCache struct {
	mu      sync.Mutex
	cfg     cacheConfig
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	bytes   int64
	tenants map[string]*tenantUsage

	hits            uint64
	misses          uint64
	coalesced       uint64
	evictions       uint64
	tenantEvictions uint64
	oversize        uint64
}

// tenantUsage tracks one tenant's share of the cache. entries includes
// in-flight compilations (so a tenant cannot stampede past its quota
// with parallel misses); bytes only completed plans, whose cost is
// known.
type tenantUsage struct {
	entries int
	bytes   int64
}

type cacheEntry struct {
	key    string
	tenant string
	cost   int64         // estimated plan memory; 0 while in-flight
	ready  chan struct{} // closed when plan/err are set
	done   bool          // guarded by planCache.mu
	plan   *Plan
	err    error
}

func newPlanCache(cfg cacheConfig) *planCache {
	cfg = cfg.withDefaults()
	return &planCache{
		cfg:     cfg,
		ll:      list.New(),
		items:   make(map[string]*list.Element, cfg.cap),
		tenants: make(map[string]*tenantUsage),
	}
}

// get returns the cached plan for key, building it with build on a miss.
// hit reports whether the plan came from the cache (including the
// coalesced single-flight case). Build errors are propagated to every
// waiter but not cached. A coalesced waiter whose own ctx is cancelled
// stops waiting and returns its ctx error; the in-flight build is not
// affected (it still serves the remaining waiters and populates the
// cache). tenant scopes the quota accounting; the key must already
// incorporate it (Request.key does).
func (c *planCache) get(ctx context.Context, tenant, key string, build func() (*Plan, error)) (plan *Plan, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		if e.done {
			c.hits++
		} else {
			c.coalesced++
		}
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.plan, true, e.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	e := &cacheEntry{key: key, tenant: tenant, ready: make(chan struct{})}
	el := c.ll.PushFront(e)
	c.items[key] = el
	c.usage(tenant).entries++
	c.misses++
	c.evictLocked(e)
	c.mu.Unlock()

	plan, err = runBuild(build)

	c.mu.Lock()
	e.plan, e.err, e.done = plan, err, true
	cur, present := c.items[key]
	present = present && cur.Value.(*cacheEntry) == e
	switch {
	case err != nil:
		// Do not cache failures: a later identical request should retry
		// (the failure may be transient, e.g. a cancelled context).
		if present {
			c.removeLocked(cur)
		}
	case present:
		cost := plan.cost()
		if c.cfg.tenantBytes > 0 && cost > c.cfg.tenantBytes {
			// The plan alone exceeds the tenant's whole byte budget:
			// serve it, but do not let it occupy the cache. e.cost stays 0
			// — it was never charged to the byte accounting.
			c.oversize++
			c.removeLocked(cur)
		} else {
			e.cost = cost
			c.bytes += cost
			c.usage(tenant).bytes += cost
			c.evictLocked(e)
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return plan, false, err
}

func (c *planCache) usage(tenant string) *tenantUsage {
	u := c.tenants[tenant]
	if u == nil {
		u = &tenantUsage{}
		c.tenants[tenant] = u
	}
	return u
}

// removeLocked drops an entry and its accounting.
func (c *planCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.cost
	if u := c.tenants[e.tenant]; u != nil {
		u.entries--
		u.bytes -= e.cost
		if u.entries <= 0 && u.bytes <= 0 {
			delete(c.tenants, e.tenant)
		}
	}
}

// evictLocked enforces the four budgets after keep was inserted or
// finished compiling, evicting from the LRU tail. keep itself and
// in-flight entries are never evicted (an in-flight entry's waiters
// must be served; it is re-checked for eviction when it completes, via
// its own evictLocked call). Tenant-quota evictions only touch the
// over-quota tenant's entries; global-budget evictions take the
// least-recently-used completed entry of any tenant.
func (c *planCache) evictLocked(keep *cacheEntry) {
	// The tenant loops only run when the per-tenant quota is strictly
	// tighter than the global budget; otherwise the global checks below
	// subsume them (a single tenant's usage never exceeds the total) and
	// evictions are attributed to the global counter.
	tu := c.usage(keep.tenant)
	if c.cfg.tenantCap < c.cfg.cap {
		for tu.entries > c.cfg.tenantCap && c.evictOneLocked(keep, keep.tenant) {
			c.tenantEvictions++
		}
	}
	if c.cfg.tenantBytes > 0 && (c.cfg.maxBytes <= 0 || c.cfg.tenantBytes < c.cfg.maxBytes) {
		for tu.bytes > c.cfg.tenantBytes && c.evictOneLocked(keep, keep.tenant) {
			c.tenantEvictions++
		}
	}
	for c.ll.Len() > c.cfg.cap && c.evictOneLocked(keep, "") {
		c.evictions++
	}
	for c.cfg.maxBytes > 0 && c.bytes > c.cfg.maxBytes && c.evictOneLocked(keep, "") {
		c.evictions++
	}
}

// evictOneLocked removes the least-recently-used completed entry —
// restricted to one tenant's entries when tenant is non-empty — and
// reports whether it found one.
func (c *planCache) evictOneLocked(keep *cacheEntry, tenant string) bool {
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		if e == keep || !e.done {
			continue
		}
		if tenant != "" && e.tenant != tenant {
			continue
		}
		c.removeLocked(el)
		return true
	}
	return false
}

// runBuild runs build, converting a panic into an error. Compilation can
// panic on hostile input (e.g. a formula with more variables than
// vsa.MaxVars); if the panic escaped here the in-flight cache entry would
// keep its ready channel open forever and every later request for the
// same key would block on it — one bad request permanently poisoning a
// cache key. As an error it takes the normal not-cached path instead.
func runBuild(build func() (*Plan, error)) (plan *Plan, err error) {
	defer func() {
		if r := recover(); r != nil {
			plan, err = nil, fmt.Errorf("engine: plan compilation failed: %v", r)
		}
	}()
	return build()
}

// stats snapshots the counters.
func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Hits:            c.hits,
		Misses:          c.misses,
		Coalesced:       c.coalesced,
		Evictions:       c.evictions,
		TenantEvictions: c.tenantEvictions,
		Oversize:        c.oversize,
		Size:            c.ll.Len(),
		Cap:             c.cfg.cap,
		Bytes:           c.bytes,
		MaxBytes:        c.cfg.maxBytes,
		Tenants:         len(c.tenants),
	}
	if total := s.Hits + s.Coalesced + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits+s.Coalesced) / float64(total)
	}
	return s
}
