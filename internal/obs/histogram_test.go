package obs

import (
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the log₂ bucketing scheme: bucket 0 is
// exactly {0}, bucket i (i ≥ 1) is exactly [2^(i-1), 2^i).
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{16, 5},
		{1023, 10}, {1024, 11}, {1025, 11},
		{1<<20 - 1, 20}, {1 << 20, 21},
		{1<<63 - 1, 63}, {1 << 63, 64}, {math.MaxUint64, 64},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
		i := bucketOf(c.v)
		if lo, hi := BucketLower(i), BucketUpper(i); c.v < lo || c.v > hi {
			t.Errorf("value %d outside its own bucket %d bounds [%d, %d]", c.v, i, lo, hi)
		}
	}
	for i := 1; i < 64; i++ {
		if BucketLower(i) != BucketUpper(i-1)+1 {
			t.Errorf("bucket %d lower %d does not abut bucket %d upper %d",
				i, BucketLower(i), i-1, BucketUpper(i-1))
		}
	}
}

// TestHistogramCountSum checks the exact (unbucketed) aggregates.
func TestHistogramCountSum(t *testing.T) {
	var h Histogram
	var wantSum uint64
	vals := []uint64{0, 1, 1, 7, 100, 1 << 30}
	for _, v := range vals {
		h.Record(v)
		wantSum += v
	}
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) || s.Sum != wantSum {
		t.Fatalf("count=%d sum=%d, want %d/%d", s.Count, s.Sum, len(vals), wantSum)
	}
	if got, want := s.Mean(), float64(wantSum)/float64(len(vals)); got != want {
		t.Fatalf("mean=%v want %v", got, want)
	}
	h.RecordDuration(-time.Second) // clock step: clamps to 0, never underflows
	if s = h.Snapshot(); s.Sum != wantSum {
		t.Fatalf("negative duration changed sum: %d != %d", s.Sum, wantSum)
	}
}

// quantileExact is the reference: the ceil-rank order statistic of the
// recorded values.
func quantileExact(sorted []uint64, q float64) uint64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestQuantileWithinOneBucket: on synthetic distributions the histogram
// estimate must land inside the bucket of the exact order statistic —
// the factor-of-two guarantee log₂ bucketing promises.
func TestQuantileWithinOneBucket(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	distributions := map[string]func() uint64{
		"uniform":     func() uint64 { return rng.Uint64N(1 << 20) },
		"exponential": func() uint64 { return uint64(rng.ExpFloat64() * 5e6) },
		"lognormal":   func() uint64 { return uint64(math.Exp(rng.NormFloat64()*2 + 10)) },
		"constant":    func() uint64 { return 4096 },
		"bimodal": func() uint64 {
			if rng.Uint64N(2) == 0 {
				return 100 + rng.Uint64N(10)
			}
			return 1<<24 + rng.Uint64N(1<<10)
		},
	}
	for name, gen := range distributions {
		var h Histogram
		vals := make([]uint64, 10000)
		for i := range vals {
			vals[i] = gen()
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Snapshot()
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
			exact := quantileExact(vals, q)
			est := s.Quantile(q)
			b := bucketOf(exact)
			lo, hi := float64(BucketLower(b)), float64(BucketUpper(b))
			if est < lo || est > hi {
				t.Errorf("%s: q=%v estimate %v outside exact value %d's bucket [%v, %v]",
					name, q, est, exact, lo, hi)
			}
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

// FuzzMergeEqualsUnion: Merge(a, b) must be indistinguishable from
// recording the union of both observation streams into one histogram.
func FuzzMergeEqualsUnion(f *testing.F) {
	f.Add([]byte{0, 1, 2, 255}, []byte{7, 7, 128})
	f.Add([]byte{}, []byte{0})
	f.Fuzz(func(t *testing.T, as, bs []byte) {
		// Spread byte seeds across the full value range so every bucket
		// region is exercised.
		widen := func(b byte, i int) uint64 {
			return (uint64(b) << (uint(i*7) % 56)) + uint64(b)
		}
		var ha, hb, union Histogram
		for i, b := range as {
			v := widen(b, i)
			ha.Record(v)
			union.Record(v)
		}
		for i, b := range bs {
			v := widen(b, i+3)
			hb.Record(v)
			union.Record(v)
		}
		merged := ha.Snapshot()
		merged.Merge(hb.Snapshot())
		if merged != union.Snapshot() {
			t.Fatalf("Merge(a,b) = %+v\n != union %+v", merged, union.Snapshot())
		}
	})
}

// TestConcurrentRecord drives Record from many goroutines (meaningful
// under -race) and checks nothing is lost.
func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(uint64(w*per + i))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var bucketSum uint64
	for _, b := range s.Buckets {
		bucketSum += b
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

// TestRecordAllocFree asserts the hot path never allocates — the
// property that lets instrumentation live inside the evaluation
// pipeline.
func TestRecordAllocFree(t *testing.T) {
	var h Histogram
	var c Counter
	var g Gauge
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(12345)
		c.Add(3)
		g.Max(7)
	})
	if allocs != 0 {
		t.Fatalf("record hot path allocates %v times per op, want 0", allocs)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i))
	}
}

func BenchmarkHistogramSnapshotQuantile(b *testing.B) {
	var h Histogram
	for i := 0; i < 100000; i++ {
		h.Record(uint64(i) * 37)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		_ = s.Quantile(0.99)
	}
}
