package vsa

import (
	"sync/atomic"

	"repro/internal/lazydfa"
)

// This file implements literal prefiltering: extracting required
// literal evidence from a compiled automaton and using it to keep the
// DFA off trigger-free document regions (DESIGN.md, "Literal
// prefiltering"). Two sound, independent mechanisms:
//
//  1. A mandatory factor: a substring contained in every document the
//     automaton accepts, derived from the byte-class graph. Since the
//     automaton is functional, ⟦a⟧(d) ≠ ∅ implies d is accepted, so a
//     document without the factor has an empty relation — Eval and
//     EvalBool reject it with one vectorized strings.Contains before
//     any scan ("admission gate").
//  2. Per-DFA-state trigger sets: a scan confined to a small closed,
//     1-byte-synchronizing state set (lazydfa.SkipSet) advances to the
//     next trigger byte with bytes.IndexByte instead of stepping the
//     transition table per byte. Every non-trigger byte maps the whole
//     set to one state, so the DFA state at any skipped boundary is
//     Sync(previous byte): forward-scan checkpoints filled during a
//     skip are the true states and window re-seeding (localizer.seedAt)
//     is untouched. A single self-looping state is the degenerate
//     one-element set; the set form is what makes word-structured text
//     skippable, where the scan oscillates between a mid-word and a
//     post-separator state and no single state loops for long.
//
// Neither mechanism ever changes results: the factor gate is a
// language-level implication and the trigger skip is DFA-state-exact.
// Automata with no useful factor (alternations without a common
// literal, empty-document acceptors, …) simply run without the gate —
// PrefilterInfo reports why, and the trigger skip still applies
// wherever the lazily built DFA exposes an eligible state.
//
// Deliberately NOT done: skipping mid-scan with bytes.Index(factor).
// A multi-byte jump would teleport the DFA over partial factor
// occurrences that change its state, corrupting the checkpoints seedAt
// replays from. Only the state-exact single-byte trigger skip is sound
// inside the scan.

// PrefilterReason says why the factor admission gate of an automaton is
// (or is not) armed. The zero value means it is armed.
type PrefilterReason uint8

const (
	// PrefilterOK: a mandatory factor was extracted and gates admission.
	PrefilterOK PrefilterReason = iota
	// PrefilterOff: the gate was explicitly disabled (DisablePrefilter).
	PrefilterOff
	// PrefilterEmptyLanguage: the automaton accepts nothing; every
	// evaluation is empty without scanning, so there is nothing to gate.
	PrefilterEmptyLanguage
	// PrefilterAcceptsEmpty: the empty document is accepted, so no
	// nonempty substring can be mandatory.
	PrefilterAcceptsEmpty
	// PrefilterNoLiteralClass: no byte forms a singleton equivalence
	// class; every byte is interchangeable with another, so no single
	// byte (hence no string) can be mandatory.
	PrefilterNoLiteralClass
	// PrefilterNoMandatoryByte: literal byte classes exist but every one
	// can be avoided on some accepting path (e.g. alternations without a
	// common factor).
	PrefilterNoMandatoryByte
	// PrefilterBudget: the factor analysis exceeded its state budget and
	// gave up (sound: the gate just stays off).
	PrefilterBudget

	numPrefilterReasons
)

// NumPrefilterReasons is the number of PrefilterReason values, for
// sizing per-reason metric arrays.
const NumPrefilterReasons = int(numPrefilterReasons)

func (r PrefilterReason) String() string {
	switch r {
	case PrefilterOK:
		return "ok"
	case PrefilterOff:
		return "disabled"
	case PrefilterEmptyLanguage:
		return "empty-language"
	case PrefilterAcceptsEmpty:
		return "accepts-empty"
	case PrefilterNoLiteralClass:
		return "no-literal-class"
	case PrefilterNoMandatoryByte:
		return "no-mandatory-byte"
	case PrefilterBudget:
		return "analysis-budget"
	}
	return "unknown"
}

// maxFactorLen bounds the extracted factor. Longer factors barely
// sharpen the admission gate (strings.Contains cost is length-
// insensitive) while the growth loop pays one product reachability
// check per candidate extension.
const maxFactorLen = 16

// factorBudget bounds the (automaton state × factor-position) product
// explored per mandatory-substring check.
const factorBudget = 1 << 15

// PrefilterInfo describes the literal evidence extracted from an
// automaton: the mandatory factor gating admission (empty when the gate
// is off) and the reason.
type PrefilterInfo struct {
	// Factor is contained in every accepted document; "" when no factor
	// gates admission (see Reason).
	Factor string
	// Reason is PrefilterOK when Factor gates admission, else why not.
	Reason PrefilterReason
}

// prefilterBuilds counts factor extractions, so tests can prove the
// once-guarded build is not duplicated by concurrent Prepares.
var prefilterBuilds atomic.Uint64

// DisablePrefilter turns the literal prefilter off for this automaton:
// no factor admission gate, and the compiled scan paths (including a
// splitter scanner built on it) take no trigger skips. Differential
// tests use it to compare filtered and unfiltered scans. Like every
// change to the compiled state it must precede the first evaluation.
func (a *Automaton) DisablePrefilter() {
	a.checkMutable("DisablePrefilter")
	a.prefDisabled = true
}

// PrefilterDisabled reports whether DisablePrefilter was called.
// Exposed for core's splitter scanner, which honors the flag for its
// own trigger skips.
func (a *Automaton) PrefilterDisabled() bool { return a.prefDisabled }

// Prefilter returns the automaton's literal-evidence summary, building
// it (and freezing the automaton) on first use. The engine's
// compilePlan reaches it through Prepare, so cached plans carry the
// memoized factor.
func (a *Automaton) Prefilter() PrefilterInfo {
	return a.prefilter().info
}

// prefilterState is the memoized result of factor extraction.
type prefilterState struct {
	info PrefilterInfo
}

func (a *Automaton) prefilter() *prefilterState {
	a.prefOnce.Do(func() {
		a.frozen.Store(true)
		a.prefVal = a.buildPrefilter()
	})
	return a.prefVal
}

func (a *Automaton) buildPrefilter() *prefilterState {
	prefilterBuilds.Add(1)
	if a.prefDisabled {
		return &prefilterState{info: PrefilterInfo{Reason: PrefilterOff}}
	}
	b := newFactorBuilder(a)
	factor, reason := b.extract()
	return &prefilterState{info: PrefilterInfo{Factor: string(factor), Reason: reason}}
}

// factorBuilder runs the mandatory-substring analysis on the Boolean
// skeleton of the compiled evaluation program: states, byte-class
// transitions, final-bearing flags. Variable operations are irrelevant
// — acceptance alone decides admission.
type factorBuilder struct {
	p      *evalProg
	start  int32
	useful []bool
	// singleton[c] is the byte of class c when the class contains
	// exactly one byte, else -1. Only singleton-class bytes can be
	// mandatory: bytes sharing a class are interchangeable on every
	// edge, so either can replace the other in any accepting run.
	singleton []int16
}

func newFactorBuilder(a *Automaton) *factorBuilder {
	p := a.prog()
	b := &factorBuilder{p: p, start: int32(a.Start)}
	b.useful = b.usefulStates()
	counts := make([]int, p.nclasses)
	bytesOf := make([]int16, p.nclasses)
	for x := 0; x < 256; x++ {
		c := p.classOf[x]
		counts[c]++
		bytesOf[c] = int16(x)
	}
	b.singleton = make([]int16, p.nclasses)
	for c := range b.singleton {
		if counts[c] == 1 {
			b.singleton[c] = bytesOf[c]
		} else {
			b.singleton[c] = -1
		}
	}
	return b
}

// usefulStates marks states both reachable from the start and able to
// reach a final-bearing state; only those lie on accepting runs.
func (b *factorBuilder) usefulStates() []bool {
	p := b.p
	n, nc := p.nstates, p.nclasses
	reach := make([]bool, n)
	reach[b.start] = true
	stack := []int32{b.start}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := 0; c < nc; c++ {
			for _, e := range p.succ[int(q)*nc+c] {
				if !reach[e.to] {
					reach[e.to] = true
					stack = append(stack, e.to)
				}
			}
		}
	}
	pred := make([][]int32, n)
	for q := 0; q < n; q++ {
		for c := 0; c < nc; c++ {
			for _, e := range p.succ[q*nc+c] {
				pred[e.to] = append(pred[e.to], int32(q))
			}
		}
	}
	co := make([]bool, n)
	stack = stack[:0]
	for q := 0; q < n; q++ {
		if p.hasFinal[q] {
			co[q] = true
			stack = append(stack, int32(q))
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range pred[q] {
			if !co[u] {
				co[u] = true
				stack = append(stack, u)
			}
		}
	}
	out := make([]bool, n)
	for q := 0; q < n; q++ {
		out[q] = reach[q] && co[q]
	}
	return out
}

// extract finds the longest mandatory factor it can grow from a
// mandatory byte, or reports why none exists.
func (b *factorBuilder) extract() ([]byte, PrefilterReason) {
	p := b.p
	if !b.useful[b.start] {
		return nil, PrefilterEmptyLanguage
	}
	if p.hasFinal[b.start] {
		return nil, PrefilterAcceptsEmpty
	}
	hasLiteral := false
	budgetHit := false
	var best []byte
	for c := 0; c < p.nclasses; c++ {
		sb := b.singleton[c]
		if sb < 0 {
			continue
		}
		hasLiteral = true
		seed := []byte{byte(sb)}
		if len(best) > 0 && containsSub(best, seed) {
			continue // already inside the best factor
		}
		ok, over := b.mandatory(seed)
		if over {
			budgetHit = true
			continue
		}
		if !ok {
			continue
		}
		w := b.grow(seed, &budgetHit)
		if len(w) > len(best) {
			best = w
		}
	}
	if len(best) > 0 {
		return best, PrefilterOK
	}
	if !hasLiteral {
		return nil, PrefilterNoLiteralClass
	}
	if budgetHit {
		return nil, PrefilterBudget
	}
	return nil, PrefilterNoMandatoryByte
}

// grow extends a mandatory seed greedily to the right, then to the
// left, by singleton-class bytes, keeping every intermediate string
// mandatory. Greedy is safe: a string containing a mandatory string
// need not be mandatory itself, so each extension is re-checked.
func (b *factorBuilder) grow(w []byte, budgetHit *bool) []byte {
	for dir := 0; dir < 2; dir++ {
		for len(w) < maxFactorLen {
			extended := false
			for c := 0; c < b.p.nclasses && !extended; c++ {
				sb := b.singleton[c]
				if sb < 0 {
					continue
				}
				var cand []byte
				if dir == 0 {
					cand = append(append([]byte(nil), w...), byte(sb))
				} else {
					cand = append([]byte{byte(sb)}, w...)
				}
				ok, over := b.mandatory(cand)
				if over {
					*budgetHit = true
					continue
				}
				if ok {
					w = cand
					extended = true
				}
			}
			if !extended {
				break
			}
		}
	}
	return w
}

// mandatory reports whether every accepted document contains w, by
// reachability on the product of the Boolean skeleton with the
// KMP avoid-w automaton: a final-bearing product state with the KMP
// component below |w| witnesses an accepted document avoiding w.
// over=true means the product exceeded factorBudget (answer unknown,
// treated as not mandatory).
//
// The byte alphabet refines cleanly: w consists of singleton-class
// bytes only, so a multi-byte class contains no byte of w and its KMP
// step is uniformly "reset to 0"; a singleton class steps KMP on its
// one byte.
func (b *factorBuilder) mandatory(w []byte) (ok, over bool) {
	p := b.p
	m := len(w)
	fail := kmpFailure(w)
	n, nc := p.nstates, p.nclasses
	if n*(m+1) > factorBudget {
		return false, true
	}
	seen := make([]bool, n*(m+1))
	type node struct {
		q int32
		k int
	}
	stack := []node{{b.start, 0}}
	seen[int(b.start)*(m+1)] = true
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if p.hasFinal[nd.q] {
			// An accepted document reaches here without ever completing
			// w (k == m states are never pushed): w is not mandatory.
			// nd.k < m always holds, including the (start, 0) root —
			// extract() rejects empty-document acceptors before growth,
			// and m ≥ 1.
			return false, false
		}
		for c := 0; c < nc; c++ {
			edges := p.succ[int(nd.q)*nc+c]
			if len(edges) == 0 {
				continue
			}
			k2 := 0
			if sb := b.singleton[c]; sb >= 0 {
				k2 = kmpStep(w, fail, nd.k, byte(sb))
				if k2 == m {
					continue // this byte completes w: path excluded
				}
			}
			for _, e := range edges {
				if !b.useful[e.to] {
					continue
				}
				idx := int(e.to)*(m+1) + k2
				if !seen[idx] {
					seen[idx] = true
					stack = append(stack, node{e.to, k2})
				}
			}
		}
	}
	return true, false
}

// kmpFailure is the classic failure function: fail[i] is the length of
// the longest proper prefix of w[:i+1] that is also its suffix.
func kmpFailure(w []byte) []int {
	fail := make([]int, len(w))
	k := 0
	for i := 1; i < len(w); i++ {
		for k > 0 && w[i] != w[k] {
			k = fail[k-1]
		}
		if w[i] == w[k] {
			k++
		}
		fail[i] = k
	}
	return fail
}

// kmpStep advances the matched-prefix length k on byte x.
func kmpStep(w []byte, fail []int, k int, x byte) int {
	for k > 0 && w[k] != x {
		k = fail[k-1]
	}
	if w[k] == x {
		return k + 1
	}
	return 0
}

func containsSub(s, sub []byte) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		j := 0
		for j < len(sub) && s[i+j] == sub[j] {
			j++
		}
		if j == len(sub) {
			return true
		}
	}
	return false
}

// ---------- skip-set building for the scan DFAs ----------

// skipSetBool builds the synchronized skip set around state cur of the
// Boolean-evaluation DFA. Dead stays a trigger so the early-reject exit
// in EvalBool still fires; any final flag inside the set is irrelevant
// mid-document because only the state at the end of the document is
// consulted, and that state is sync-exact.
func (p *evalProg) skipSetBool(w *lazydfa.Walker[bool], cur int32) *lazydfa.SkipSet {
	return BuildSkipSet(p.nclasses, p.classOf[:],
		func(q int32) bool { return q >= dfaStart },
		nil,
		func(q int32, c uint8) (int32, bool) {
			t := w.States[q].Trans(c)
			if t == dfaUnknown {
				t = w.Resolve(q, c)
			}
			return t, t != dfaOverflow
		}, cur)
}

// skipSetScan is the forward-scan variant. States flagged scanFlagEnd
// never enter a skip set: every boundary there is a candidate match end
// that the run-length encoder must see. scanFlagFinals is only read at
// the end of the document, where the state is sync-exact.
func (s *scanProg) skipSetScan(p *evalProg, w *lazydfa.Walker[uint8], cur int32) *lazydfa.SkipSet {
	return BuildSkipSet(s.nclasses, p.classOf[:],
		func(q int32) bool { return q >= dfaStart && w.States[q].Payload&scanFlagEnd == 0 },
		nil,
		func(q int32, c uint8) (int32, bool) {
			t := w.States[q].Trans(c)
			if t == dfaUnknown {
				t = w.Resolve(q, c)
			}
			return t, t != dfaOverflow
		}, cur)
}

// buildRounds bounds the trigger/closure fixpoint iteration of
// BuildSkipSet. Real sets settle in two or three rounds (the first
// round may chase a literal's progress chain before the synchronization
// test prunes it); failure to converge means "unskippable".
const buildRounds = 6

// BuildSkipSet computes the synchronized skip set containing DFA state
// cur, or nil when none exists. The result satisfies, for every byte b
// outside its trigger set: all states of the set transition on b to the
// SAME state (recorded in the sync table), that state is inside the set,
// it is eligible, and no member raises an event on b. Those invariants
// are what make a jump over trigger-free bytes exact: the state at any
// boundary inside the jump is sync[previous byte], regardless of where
// in the set the scan was.
//
// probe returns a state's transition on a class (ok=false aborts the
// build — e.g. an Overflow row is unknowable). eligible vetoes states
// that may not be skipped through (sentinels, states with per-boundary
// obligations such as scanFlagEnd). eventful (optional) marks
// state×class pairs where a client event fires; those classes trigger.
// classOf maps bytes to classes. Exposed for core's splitter scanner,
// the fourth lazydfa client.
//
// The fixpoint alternates two passes: classify every class against the
// candidate set (trigger iff the images differ, leave the set, are
// ineligible, or raise events), then re-close {cur} under the
// non-trigger classes. A closure that would exceed MaxSkipStates is
// truncated and the round marked incomplete — the next round's
// classification over the truncated set prunes the expansion (this is
// how a literal's progress chain, reachable in one step but not
// synchronized, is cut). Convergence requires a complete closure that
// reproduces the set.
func BuildSkipSet(nclasses int, classOf []uint8,
	eligible func(q int32) bool,
	eventful func(q int32, c uint8) bool,
	probe func(q int32, c uint8) (int32, bool),
	cur int32) *lazydfa.SkipSet {
	if !eligible(cur) {
		return nil
	}
	set := []int32{cur}
	trig := make([]bool, nclasses)
	img := make([]int32, nclasses)
	converged := false
	for round := 0; round < buildRounds && !converged; round++ {
		for c := 0; c < nclasses; c++ {
			trig[c] = false
			img[c] = -1
			for _, q := range set {
				t, ok := probe(q, uint8(c))
				if !ok {
					return nil
				}
				if eventful != nil && eventful(q, uint8(c)) {
					trig[c] = true
					break
				}
				if img[c] == -1 {
					img[c] = t
				} else if img[c] != t {
					trig[c] = true
					break
				}
			}
			if !trig[c] && !eligible(img[c]) {
				trig[c] = true
			}
		}
		next := []int32{cur}
		complete := true
		for qi := 0; qi < len(next); qi++ {
			for c := 0; c < nclasses; c++ {
				if trig[c] {
					continue
				}
				t, ok := probe(next[qi], uint8(c))
				if !ok {
					return nil
				}
				if !containsState(next, t) {
					if len(next) == lazydfa.MaxSkipStates {
						complete = false
						continue
					}
					next = append(next, t)
				}
			}
		}
		converged = complete && sameStates(next, set)
		set = next
	}
	if !converged {
		return nil
	}
	var sync [256]int32
	var triggers []byte
	for x := 0; x < 256; x++ {
		if c := classOf[x]; trig[c] {
			sync[x] = -1
			triggers = append(triggers, byte(x))
		} else {
			sync[x] = img[c]
		}
	}
	return lazydfa.NewSkipSet(triggers, set, &sync)
}

func containsState(set []int32, q int32) bool {
	for _, v := range set {
		if v == q {
			return true
		}
	}
	return false
}

func sameStates(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for _, q := range a {
		if !containsState(b, q) {
			return false
		}
	}
	return true
}
