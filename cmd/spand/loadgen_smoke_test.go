package main

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/loadgen"
)

// TestSpanloadSmoke runs the spanload harness against an in-process
// daemon for a couple of seconds — the CI smoke that keeps the load
// path working: the CONCURRENCY snapshot must come back with the
// declared schema, no failed requests, and non-zero throughput and
// latency percentiles.
func TestSpanloadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke skipped in -short")
	}
	eng := engine.New(engine.Config{Workers: 4})
	ts := httptest.NewServer(newServer(eng))
	defer ts.Close()

	snap := loadgen.RunSweep(loadgen.Config{
		Target:   ts.URL,
		Duration: time.Second,
		Client:   ts.Client(),
	}, []int{2, 8})

	if snap.Experiment != "CONCURRENCY" {
		t.Fatalf("experiment = %q, want CONCURRENCY", snap.Experiment)
	}
	if snap.GoVersion == "" || snap.NumCPU <= 0 || snap.Target != ts.URL {
		t.Fatalf("snapshot header incomplete: %+v", snap)
	}
	if len(snap.Results) != 2 {
		t.Fatalf("results = %d rows, want 2", len(snap.Results))
	}
	for i, want := range []int{2, 8} {
		r := snap.Results[i]
		if r.Connections != want {
			t.Fatalf("row %d connections = %d, want %d", i, r.Connections, want)
		}
		if r.Errors != 0 {
			t.Fatalf("row %d: %d of %d requests failed", i, r.Errors, r.Requests)
		}
		if r.Requests == 0 || r.ReqPerS <= 0 || r.MBPerS <= 0 {
			t.Fatalf("row %d throughput empty: %+v", i, r)
		}
		if r.P50MS <= 0 || r.P90MS < r.P50MS || r.P99MS < r.P90MS {
			t.Fatalf("row %d percentiles not ordered: %+v", i, r)
		}
	}

	// The mixed workload must actually have mixed: hits and misses in
	// the plan cache, streamed and buffered ingestion.
	st := eng.Stats()
	if st.PlanCache.Hits == 0 || st.PlanCache.Misses < 2 {
		t.Fatalf("plan cache %+v: workload did not mix hits and misses", st.PlanCache)
	}
	if st.StreamedDocs == 0 || st.StreamedDocs == st.Documents {
		t.Fatalf("streamed %d of %d documents: workload did not mix ingestion modes", st.StreamedDocs, st.Documents)
	}
}
