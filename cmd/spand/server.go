package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"strconv"
	"strings"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/span"
)

// maxJSONBody bounds JSON request bodies. Streamed documents (raw or
// multipart bodies) may be arbitrarily long on the incremental path;
// whatever the engine must hold in memory (whole buffered documents,
// the streaming carry-over) is bounded by its MaxDocBuffer budget and
// rejected with 413 beyond it.
const maxJSONBody = 64 << 20

// extractRequest is the JSON request body of /v1/extract and /v1/check.
type extractRequest struct {
	Spanner      string `json:"spanner"`
	SplitSpanner string `json:"split_spanner,omitempty"`
	Splitter     string `json:"splitter,omitempty"`
	Doc          string `json:"doc,omitempty"`
}

func (r extractRequest) engineRequest() engine.Request {
	return engine.Request{Spanner: r.Spanner, SplitSpanner: r.SplitSpanner, Splitter: r.Splitter}
}

// jsonSpan renders a span as [start, end] in the paper's 1-based
// convention.
type jsonSpan [2]int

// planResponse is the shared verdict section of responses.
type planResponse struct {
	Strategy      string            `json:"strategy"`
	Verdicts      core.PlanVerdicts `json:"verdicts"`
	CacheHit      bool              `json:"cache_hit"`
	PlanCompileMS float64           `json:"plan_compile_ms"`
}

type extractResponse struct {
	planResponse
	// Ingest reports how the document was consumed: "inline" (came with
	// the JSON request), "streamed" (segmented incrementally while
	// uploading) or "buffered" (read whole, then evaluated).
	Ingest string       `json:"ingest"`
	Vars   []string     `json:"vars"`
	Count  int          `json:"count"`
	Tuples [][]jsonSpan `json:"tuples"`
}

func planSection(plan *engine.Plan, hit bool) planResponse {
	return planResponse{
		Strategy:      plan.Strategy.String(),
		Verdicts:      plan.Verdicts,
		CacheHit:      hit,
		PlanCompileMS: float64(plan.CompileTime.Microseconds()) / 1000,
	}
}

func tuplesJSON(rel *span.Relation) [][]jsonSpan {
	out := make([][]jsonSpan, 0, rel.Len())
	for _, t := range rel.Tuples {
		row := make([]jsonSpan, len(t))
		for i, s := range t {
			row[i] = jsonSpan{s.Start, s.End}
		}
		out = append(out, row)
	}
	return out
}

// serverConfig is the daemon-level (non-engine) serving policy.
type serverConfig struct {
	// limiter, when non-nil, guards /v1/extract and /v1/check with
	// admission control; /v1/stats and /metrics stay un-gated so
	// monitoring works precisely when the daemon is overloaded.
	limiter *admission.Limiter
	// deadline, when positive, bounds each guarded request end to end:
	// queue wait, planning and evaluation all draw from the same budget.
	deadline time.Duration
	// tenantHeader names the HTTP header carrying the tenant key for the
	// plan cache's per-tenant quotas. Empty disables tenant attribution.
	tenantHeader string
}

type server struct {
	eng *engine.Engine
	m   *httpMetrics
	cfg serverConfig
}

// newServer wires the daemon's routes onto a fresh mux with no
// admission control — the permissive configuration embedded tests use.
func newServer(eng *engine.Engine) http.Handler {
	return newServerWith(eng, serverConfig{})
}

// newServerWith wires the daemon's routes onto a fresh mux. HTTP-level
// metrics live in the engine's registry, so GET /metrics exposes the
// whole stack's series on one page.
func newServerWith(eng *engine.Engine, cfg serverConfig) http.Handler {
	s := &server{eng: eng, m: newHTTPMetrics(eng.Registry()), cfg: cfg}
	if cfg.limiter != nil {
		cfg.limiter.Register(eng.Registry())
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/extract", s.m.wrap("/v1/extract", s.guard(s.handleExtract)))
	mux.HandleFunc("POST /v1/extract-batch", s.m.wrap("/v1/extract-batch", s.guard(s.handleExtractBatch)))
	mux.HandleFunc("POST /v1/check", s.m.wrap("/v1/check", s.guard(s.handleCheck)))
	mux.HandleFunc("GET /v1/stats", s.m.wrap("/v1/stats", s.handleStats))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// guard applies the per-request deadline and the admission limiter to a
// work-bearing handler. Ordering matters: the deadline is installed
// first so time spent queued draws down the same budget as planning and
// evaluation — a request cannot burn its whole deadline in line and
// then start evaluating.
func (s *server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.deadline > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.deadline)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if s.cfg.limiter != nil {
			release, err := s.cfg.limiter.Acquire(r.Context())
			if err != nil {
				s.writeShed(w, err)
				return
			}
			defer release()
		}
		h(w, r)
	}
}

// writeShed answers a request the limiter refused. Sheds proper (queue
// full, wait budget exceeded) get 429 with a Retry-After hint sized to
// the current queue; a request whose own context died while queued gets
// the same status its death would have earned downstream.
func (s *server) writeShed(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, admission.ErrQueueFull), errors.Is(err, admission.ErrQueueAged):
		retry := int(math.Ceil(s.cfg.limiter.RetryAfter().Seconds()))
		// The request body was never read; Connection: close skips the
		// keep-alive body drain so the shed costs microseconds even when
		// the client was mid-way through a large upload.
		w.Header().Set("Connection", "close")
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":           err.Error(),
			"retry_after_sec": retry,
		})
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	default:
		writeError(w, 499, err) // client closed request while queued
	}
}

// tenantOf extracts the request's tenant key for the plan cache's
// per-tenant quotas.
func (s *server) tenantOf(r *http.Request) string {
	if s.cfg.tenantHeader == "" {
		return ""
	}
	return r.Header.Get(s.cfg.tenantHeader)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleExtract serves POST /v1/extract. Three request shapes:
//
//   - application/json: {"spanner", "splitter", "split_spanner", "doc"}
//     with the document inline.
//   - multipart/form-data: fields spanner/splitter/split_spanner followed
//     by a "doc" part, which is streamed — the part is fed to the engine
//     chunk by chunk, so arbitrarily large documents never reside in
//     memory whole.
//   - anything else: the body is the document stream and the formulas
//     come from the query parameters ?spanner=…&splitter=…&split_spanner=….
func (s *server) handleExtract(w http.ResponseWriter, r *http.Request) {
	ctype, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	switch ctype {
	case "application/json":
		var req extractRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, maxJSONBody)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
			return
		}
		ereq := req.engineRequest()
		ereq.Tenant = s.tenantOf(r)
		// The document is already in memory; evaluate it directly
		// instead of paying the chunked-ingestion machinery.
		s.runExtract(w, r, ereq, "inline",
			func(plan *engine.Plan) (*span.Relation, error) {
				return s.eng.Extract(r.Context(), plan, req.Doc)
			})
	case "multipart/form-data":
		mr, err := r.MultipartReader()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		req := engine.Request{Tenant: s.tenantOf(r)}
		for {
			part, err := mr.NextPart()
			if err == io.EOF {
				writeError(w, http.StatusBadRequest, errors.New(`multipart body has no "doc" part`))
				return
			}
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			if part.FormName() == "doc" {
				// Formula fields must precede the doc part so the plan
				// exists before streaming begins.
				s.extract(w, r, req, part)
				return
			}
			const maxFormula = 1 << 20
			val, err := io.ReadAll(io.LimitReader(part, maxFormula+1))
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			if len(val) > maxFormula {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("multipart field %q exceeds %d bytes", part.FormName(), maxFormula))
				return
			}
			switch part.FormName() {
			case "spanner":
				req.Spanner = string(val)
			case "splitter":
				req.Splitter = string(val)
			case "split_spanner":
				req.SplitSpanner = string(val)
			}
		}
	default:
		q := r.URL.Query()
		req := engine.Request{
			Spanner:      q.Get("spanner"),
			Splitter:     q.Get("splitter"),
			SplitSpanner: q.Get("split_spanner"),
			Tenant:       s.tenantOf(r),
		}
		s.extract(w, r, req, r.Body)
	}
}

// extract serves a document arriving as a stream (raw body or multipart
// part).
func (s *server) extract(w http.ResponseWriter, r *http.Request, req engine.Request, doc io.Reader) {
	s.runExtract(w, r, req, "",
		func(plan *engine.Plan) (*span.Relation, error) {
			return s.eng.ExtractReader(r.Context(), plan, doc)
		})
}

// planErrStatus classifies a Plan error: a coalesced waiter can see its
// own context die while the plan is still compiling. A client
// cancellation is the client's doing (499); the server's own deadline
// budget running out is the server giving up (504). Anything else is a
// bad formula.
func planErrStatus(err error) int {
	switch {
	case errors.Is(err, engine.ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	}
	return http.StatusBadRequest
}

// extractErrStatus maps an evaluation-stage error to its HTTP status.
// Order matters: the typed engine errors are checked before the bare
// context sentinels they wrap.
func extractErrStatus(err error) int {
	switch {
	case errors.Is(err, engine.ErrReadStalled):
		return http.StatusRequestTimeout // 408: the client stopped sending
	case errors.Is(err, engine.ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout // 504: the server's deadline budget ran out
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	case errors.Is(err, engine.ErrDocTooLarge):
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusInternalServerError
}

func (s *server) runExtract(w http.ResponseWriter, r *http.Request, req engine.Request, ingest string, run func(*engine.Plan) (*span.Relation, error)) {
	plan, hit, err := s.eng.Plan(r.Context(), req)
	if err != nil {
		writeError(w, planErrStatus(err), err)
		return
	}
	if ingest == "" {
		if s.eng.WillStream(plan) {
			ingest = "streamed"
		} else {
			ingest = "buffered"
		}
	}
	if acceptsMultipart(r) {
		s.runExtractMultipart(w, plan, hit, ingest, run)
		return
	}
	rel, err := run(plan)
	if err != nil {
		if ingest != "inline" {
			// The document body was abandoned mid-read (stall, deadline,
			// size cap, cancellation). The connection cannot be reused, and
			// — decisive for the 408 path — without Connection: close the
			// server would block draining a body the client has stopped
			// sending before the error could reach the wire.
			w.Header().Set("Connection", "close")
		}
		writeError(w, extractErrStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, extractResponse{
		planResponse: planSection(plan, hit),
		Ingest:       ingest,
		Vars:         plan.Vars(),
		Count:        rel.Len(),
		Tuples:       tuplesJSON(rel),
	})
}

// acceptsMultipart reports whether the client asked for the streamed
// multipart/mixed response shape.
func acceptsMultipart(r *http.Request) bool {
	for _, accept := range r.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			mt, _, err := mime.ParseMediaType(strings.TrimSpace(part))
			if err == nil && mt == "multipart/mixed" {
				return true
			}
		}
	}
	return false
}

// epilogue is the final part of every multipart/mixed extraction
// response: status "ok" with the tuple count, or status "error" with
// the failure and the HTTP status the error would have carried on the
// buffered path.
type epilogue struct {
	Status string `json:"status"`
	Count  int    `json:"count,omitempty"`
	Error  string `json:"error,omitempty"`
	// HTTPStatus is advisory: by the time the epilogue is written the
	// 200 header is long gone, so mid-stream failures surface here.
	HTTPStatus int `json:"http_status,omitempty"`
}

// runExtractMultipart answers with multipart/mixed: a "plan" part
// written (and flushed) before evaluation starts, a "tuples" part on
// success, and always a terminal "end" epilogue part. The epilogue is
// what makes mid-stream failure explicit: when the engine surfaces
// context.Canceled or a deadline after the 200 header has been sent,
// the stream still terminates with a parseable error part instead of
// an ambiguous truncation — a client that never sees an "end" part
// knows the response is incomplete.
func (s *server) runExtractMultipart(w http.ResponseWriter, plan *engine.Plan, hit bool, ingest string, run func(*engine.Plan) (*span.Relation, error)) {
	// The response header goes out before the document has been read, so
	// the connection must be full-duplex: without this, net/http drains
	// the unconsumed request body at WriteHeader time — eating the
	// document the engine is about to evaluate.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	mw := multipart.NewWriter(w)
	defer mw.Close()
	w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())
	w.WriteHeader(http.StatusOK)

	part := func(name string, v any) {
		h := textproto.MIMEHeader{}
		h.Set("Content-Type", "application/json")
		h.Set("Content-Disposition", `inline; name="`+name+`"`)
		pw, err := mw.CreatePart(h)
		if err != nil {
			return // client gone; nothing left to say
		}
		enc := json.NewEncoder(pw)
		enc.SetEscapeHTML(false)
		_ = enc.Encode(v)
	}

	type planPart struct {
		planResponse
		Ingest string   `json:"ingest"`
		Vars   []string `json:"vars"`
	}
	part("plan", planPart{planResponse: planSection(plan, hit), Ingest: ingest, Vars: plan.Vars()})
	_ = rc.Flush() // the client sees the verdict while the document uploads

	rel, err := run(plan)
	if err != nil {
		part("end", epilogue{Status: "error", Error: err.Error(), HTTPStatus: extractErrStatus(err)})
		return
	}
	part("tuples", tuplesJSON(rel))
	part("end", epilogue{Status: "ok", Count: rel.Len()})
}

// extractBatchRequest is the JSON request body of /v1/extract-batch:
// one document, many spanner formulas, answered by one fused pass
// (engine.PlanBatch / ExtractBatch).
type extractBatchRequest struct {
	Spanners []string `json:"spanners"`
	Doc      string   `json:"doc,omitempty"`
}

// batchQueryResult is one member query's slice of the batch response:
// its tuples, or its compile error. Errors are per-slot by design — one
// bad formula in a batch must not fail its siblings (the whole-batch
// statuses are reserved for document-level failures: 413, 504, 429).
type batchQueryResult struct {
	Spanner string       `json:"spanner"`
	Vars    []string     `json:"vars,omitempty"`
	Count   int          `json:"count"`
	Tuples  [][]jsonSpan `json:"tuples,omitempty"`
	Error   string       `json:"error,omitempty"`
}

type extractBatchResponse struct {
	CacheHit      bool               `json:"cache_hit"`
	PlanCompileMS float64            `json:"plan_compile_ms"`
	Queries       []batchQueryResult `json:"queries"`
}

func batchQueries(plan *engine.Plan, spanners []string, results []engine.BatchResult) []batchQueryResult {
	out := make([]batchQueryResult, len(spanners))
	for i, src := range spanners {
		out[i].Spanner = src
		if results != nil {
			if r := results[i]; r.Err != nil {
				out[i].Error = r.Err.Error()
			} else if r.Rel != nil {
				out[i].Vars = r.Rel.Vars
				out[i].Count = r.Rel.Len()
				out[i].Tuples = tuplesJSON(r.Rel)
			}
			continue
		}
		// Pre-evaluation view (the multipart plan part): formulas and
		// their memoized compile verdicts, no tuples yet.
		if err := plan.BatchErr(i); err != nil {
			out[i].Error = err.Error()
		} else {
			out[i].Vars = plan.BatchVars(i)
		}
	}
	return out
}

// handleExtractBatch serves POST /v1/extract-batch: one document, N
// registered spanner formulas, one shared evaluation pass. Two request
// shapes:
//
//   - application/json: {"spanners": [...], "doc": "..."} with the
//     document inline.
//   - anything else: the body is the document and the formulas come from
//     repeated ?spanner=… query parameters.
//
// With Accept: multipart/mixed the response is streamed with the PR 8
// epilogue contract: a "plan" part (per-query formulas, variables and
// compile errors) flushed before the document is consumed, a "results"
// part on success, and always a terminal "end" part — error epilogue
// included when the deadline fires mid-batch.
func (s *server) handleExtractBatch(w http.ResponseWriter, r *http.Request) {
	ctype, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	var req extractBatchRequest
	inline := false
	if ctype == "application/json" {
		if err := json.NewDecoder(io.LimitReader(r.Body, maxJSONBody)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
			return
		}
		inline = true
	} else {
		req.Spanners = r.URL.Query()["spanner"]
	}
	plan, hit, err := s.eng.PlanBatch(r.Context(), engine.BatchRequest{
		Spanners: req.Spanners, Tenant: s.tenantOf(r),
	})
	if err != nil {
		// Whole-batch planning failures: an empty batch, or the deadline
		// dying while coalesced on an in-flight compilation. Per-formula
		// compile errors never land here — they ride in the plan's slots.
		writeError(w, planErrStatus(err), err)
		return
	}
	run := func() ([]engine.BatchResult, error) {
		doc := req.Doc
		if !inline {
			var err error
			if doc, err = readBatchDoc(r.Context(), r.Body); err != nil {
				return nil, err
			}
		}
		return s.eng.ExtractBatch(r.Context(), plan, doc)
	}
	if acceptsMultipart(r) {
		s.runBatchMultipart(w, plan, hit, req.Spanners, run)
		return
	}
	results, err := run()
	if err != nil {
		if !inline {
			w.Header().Set("Connection", "close") // body abandoned mid-read
		}
		writeError(w, extractErrStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, extractBatchResponse{
		CacheHit:      hit,
		PlanCompileMS: float64(plan.CompileTime.Microseconds()) / 1000,
		Queries:       batchQueries(plan, req.Spanners, results),
	})
}

// readBatchDoc buffers a raw-body document for a batch request, checking
// the request context between chunks so a deadline firing mid-upload
// fails promptly (and maps to 504 via extractErrStatus), and bounding
// the buffer like JSON bodies. The engine's own MaxDocBuffer still
// applies to whatever is read.
func readBatchDoc(ctx context.Context, r io.Reader) (string, error) {
	var buf []byte
	chunk := make([]byte, 64<<10)
	for {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		n, err := r.Read(chunk)
		if n > 0 {
			if len(buf)+n > maxJSONBody {
				return "", fmt.Errorf("%w (> %d bytes)", engine.ErrDocTooLarge, maxJSONBody)
			}
			buf = append(buf, chunk[:n]...)
		}
		if err == io.EOF {
			return string(buf), nil
		}
		if err != nil {
			return "", err
		}
	}
}

// runBatchMultipart answers a batch extraction with multipart/mixed,
// mirroring runExtractMultipart: the "plan" part (per-query compile
// verdicts) is flushed before the document is consumed, a "results" part
// with the per-query tuples follows on success, and the stream always
// terminates with an "end" epilogue — carrying the error and its
// would-be HTTP status when the deadline (or any document-level failure)
// fires mid-batch after the 200 header is on the wire.
func (s *server) runBatchMultipart(w http.ResponseWriter, plan *engine.Plan, hit bool, spanners []string, run func() ([]engine.BatchResult, error)) {
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()
	mw := multipart.NewWriter(w)
	defer mw.Close()
	w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())
	w.WriteHeader(http.StatusOK)

	part := func(name string, v any) {
		h := textproto.MIMEHeader{}
		h.Set("Content-Type", "application/json")
		h.Set("Content-Disposition", `inline; name="`+name+`"`)
		pw, err := mw.CreatePart(h)
		if err != nil {
			return // client gone; nothing left to say
		}
		enc := json.NewEncoder(pw)
		enc.SetEscapeHTML(false)
		_ = enc.Encode(v)
	}

	type batchPlanPart struct {
		CacheHit      bool               `json:"cache_hit"`
		PlanCompileMS float64            `json:"plan_compile_ms"`
		Queries       []batchQueryResult `json:"queries"`
	}
	part("plan", batchPlanPart{
		CacheHit:      hit,
		PlanCompileMS: float64(plan.CompileTime.Microseconds()) / 1000,
		Queries:       batchQueries(plan, spanners, nil),
	})
	_ = rc.Flush()

	results, err := run()
	if err != nil {
		part("end", epilogue{Status: "error", Error: err.Error(), HTTPStatus: extractErrStatus(err)})
		return
	}
	queries := batchQueries(plan, spanners, results)
	total := 0
	for _, q := range queries {
		total += q.Count
	}
	part("results", queries)
	part("end", epilogue{Status: "ok", Count: total})
}

// handleCheck serves POST /v1/check: it returns the plan's verdicts
// (split-correctness / self-splittability / disjointness / locality)
// without evaluating anything — the "local" verdict tells a client
// whether this daemon will stream the pair's documents incrementally
// without any -stream-incremental override. Verdicts are served from
// the plan cache, so repeated and concurrent checks of the same pair
// run the PSPACE procedures once.
func (s *server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req extractRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxJSONBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	ereq := req.engineRequest()
	ereq.Tenant = s.tenantOf(r)
	plan, hit, err := s.eng.Plan(r.Context(), ereq)
	if err != nil {
		writeError(w, planErrStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, planSection(plan, hit))
}

// statsResponse is the GET /v1/stats body: the engine's snapshot
// (counters, per-stage time shares, executor and localizer statistics)
// plus the daemon's HTTP-level view — requests in flight and
// per-endpoint latency percentiles. Everything is read in one pass, so
// one response is one consistent snapshot.
type statsResponse struct {
	engine.Stats
	InFlight  int64                    `json:"in_flight"`
	Endpoints map[string]endpointStats `json:"endpoints"`
	// Admission is the overload front door's state: tokens, queue depth,
	// shed counters and the current Retry-After hint. Absent when the
	// daemon runs without a limiter.
	Admission *admission.Stats `json:"admission,omitempty"`
}

// handleStats serves GET /v1/stats: cache hit rate, throughput counters
// (documents total and streamed incrementally), worker configuration,
// whether the unsafe -stream-incremental override is active, the
// pipeline-stage time breakdown and per-endpoint latency percentiles.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Stats:     s.eng.Stats(),
		InFlight:  s.m.inFlight.Load(),
		Endpoints: s.m.snapshot(),
	}
	if s.cfg.limiter != nil {
		st := s.cfg.limiter.Snapshot()
		resp.Admission = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format: every series of the engine's registry — HTTP, engine stages,
// plan cache, executor, evaluation core.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.eng.Registry().WritePrometheus(w)
}
