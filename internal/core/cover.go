package core

import (
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/automata"
	"repro/internal/vsa"
)

// batch is one candidate set of variable operations at a boundary together
// with the resulting status.
type batch struct {
	ops vsa.OpSet
	st  vsa.Status
}

// batchesFrom enumerates every valid operation batch from status st over n
// variables: each unseen variable may stay, open, or open-and-close; each
// open variable may stay or close. The result has at most 3^n entries.
func batchesFrom(st vsa.Status, n int) []batch {
	out := []batch{{0, st}}
	for v := 0; v < n; v++ {
		var choices []vsa.OpSet
		switch st.VarStatus(v) {
		case 0:
			choices = []vsa.OpSet{0, vsa.Open(v), vsa.Wrap(v)}
		case 1:
			choices = []vsa.OpSet{0, vsa.Close(v)}
		default:
			choices = []vsa.OpSet{0}
		}
		if len(choices) == 1 {
			continue
		}
		var next []batch
		for _, b := range out {
			for _, c := range choices {
				st2, ok := b.st.Apply(c)
				if !ok {
					panic("core: batchesFrom produced an invalid batch")
				}
				next = append(next, batch{b.ops | c, st2})
			}
		}
		out = next
	}
	return out
}

// CoverAutomaton builds a spanner Cov over the variables of p that accepts
// exactly the (document, tuple) pairs in which some split of s contains
// every span of the tuple. The cover condition (Definition 5.2) for p and
// s is then the containment ⟦p⟧ ⊆ ⟦Cov⟧, which is how Lemma 5.4's upper
// bound is realized (the paper phrases it as P ⊆ P_V ∘ S; Cov is exactly
// that composition, constructed directly).
func CoverAutomaton(p *vsa.Automaton, s *Splitter) *vsa.Automaton {
	n := p.Arity()
	sa := s.auto
	all := vsa.AllClosed(n)
	out := vsa.NewAutomaton(p.Vars...)
	type key struct {
		phase int
		qs    int
		st    vsa.Status
	}
	id := map[key]int{}
	var queue []key
	intern := func(k key) int {
		if i, ok := id[k]; ok {
			return i
		}
		var i int
		if len(id) == 0 {
			i = 0
		} else {
			i = out.AddState()
		}
		id[k] = i
		queue = append(queue, k)
		return i
	}
	intern(key{1, sa.Start, 0})
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		from := id[k]
		switch k.phase {
		case 1: // before the covering split: no tuple operations allowed
			for _, e := range sa.States[k.qs].Edges {
				switch splitOpKind(e.Ops) {
				case sNone:
					out.AddEdge(from, 0, e.Class, intern(key{1, e.To, 0}))
				case sOpen:
					// Tuple operations may start at the split's boundary.
					for _, b := range batchesFrom(0, n) {
						out.AddEdge(from, b.ops, e.Class, intern(key{2, e.To, b.st}))
					}
				case sWrap:
					// An empty split covers only all-empty tuples here.
					out.AddEdge(from, vsa.AllOps(n), e.Class, intern(key{3, e.To, all}))
				}
			}
			for _, fin := range sa.States[k.qs].Finals {
				if splitOpKind(fin) == sWrap {
					out.AddFinal(from, vsa.AllOps(n))
				}
			}
		case 2: // inside the covering split
			for _, e := range sa.States[k.qs].Edges {
				switch splitOpKind(e.Ops) {
				case sNone:
					for _, b := range batchesFrom(k.st, n) {
						out.AddEdge(from, b.ops, e.Class, intern(key{2, e.To, b.st}))
					}
				case sClose:
					// Operations may still fire at the closing boundary,
					// but must complete the tuple.
					for _, b := range batchesFrom(k.st, n) {
						if b.st == all {
							out.AddEdge(from, b.ops, e.Class, intern(key{3, e.To, all}))
						}
					}
				}
			}
			for _, fin := range sa.States[k.qs].Finals {
				if splitOpKind(fin) == sClose {
					for _, b := range batchesFrom(k.st, n) {
						if b.st == all {
							out.AddFinal(from, b.ops)
						}
					}
				}
			}
		case 3: // after the covering split
			for _, e := range sa.States[k.qs].Edges {
				if splitOpKind(e.Ops) == sNone {
					out.AddEdge(from, 0, e.Class, intern(key{3, e.To, all}))
				}
			}
			for _, fin := range sa.States[k.qs].Finals {
				if splitOpKind(fin) == sNone {
					out.AddFinal(from, 0)
				}
			}
		}
	}
	out.MergeEdges()
	return out
}

// CoverCondition decides Definition 5.2 for arbitrary regular spanners and
// splitters via containment in the cover automaton. Like every general
// containment in this library it is PSPACE in the worst case (Lemma 5.4)
// and guarded by limit.
func CoverCondition(p *vsa.Automaton, s *Splitter, limit int) (bool, error) {
	if p.Arity() == 0 {
		return coverBoolean(p, s, limit)
	}
	return vsa.Contained(p, CoverAutomaton(p, s), limit)
}

// coverBoolean handles 0-ary spanners, for which the cover condition
// degenerates to "whenever p accepts, s produces at least one split":
// dom(p) ⊆ dom(s).
func coverBoolean(p *vsa.Automaton, s *Splitter, limit int) (bool, error) {
	dp := domainNFA(p)
	ds := domainNFA(s.auto)
	ok, _, err := automata.Contains(dp, ds, limit)
	return ok, err
}

// domainNFA projects an automaton to its domain language over byte atoms:
// the documents on which it produces at least one tuple. The atoms are
// global (one symbol per byte) so that domain automata of different
// spanners share an alphabet.
func domainNFA(a *vsa.Automaton) *automata.NFA {
	n := automata.New(256)
	base := make([]int, a.NumStates())
	for q := range a.States {
		final := len(a.States[q].Finals) > 0
		base[q] = n.AddState(final)
	}
	for q, st := range a.States {
		for _, e := range st.Edges {
			for _, b := range e.Class.Bytes() {
				n.AddEdge(base[q], int(b), base[e.To])
			}
		}
	}
	n.AddStart(base[a.Start])
	n.DedupeEdges()
	return n
}

// ---------------------------------------------------------------------------
// Polynomial-time cover condition (Lemma 5.6) for deterministic functional
// automata and disjoint splitters.
//
// The construction follows the paper's proof: translate p into an
// unambiguous automaton AP over marked words — byte atoms tagged with a
// bit that is 1 exactly strictly inside the tuple's hull, interleaved with
// operation-set symbols — and s into an automaton AS accepting the words
// whose hull is contained in some split; then test AP ⊆ AS by
// accepting-path counting (Stearns–Hunt). The paper's unambiguity claim
// for AS fails for tuples whose spans are all empty at one boundary (two
// touching disjoint splits can both cover such a tuple), so those words
// are split off into a separate deterministic automaton APe and checked
// against the union of four per-case unambiguous automata (split ends at,
// starts at, is empty at, or strictly contains the boundary) by
// inclusion–exclusion over path counts. See DESIGN.md.
// ---------------------------------------------------------------------------

// polyCtx carries the shared symbol table of the polynomial procedures.
type polyCtx struct {
	p, ps *vsa.Automaton // ps is nil for the cover-only check
	s     *Splitter
	pst   []vsa.Status
	atoms []alphabet.Class
	opIdx map[vsa.OpSet]int
	nsym  int
	all   vsa.OpSet
}

func newPolyCtx(p *vsa.Automaton, ps *vsa.Automaton, s *Splitter) (*polyCtx, error) {
	if !p.IsDeterministic() {
		return nil, fmt.Errorf("core: polynomial procedure requires a deterministic spanner")
	}
	if !s.auto.IsDeterministic() {
		return nil, fmt.Errorf("core: polynomial procedure requires a deterministic splitter")
	}
	if ps != nil && !ps.IsDeterministic() {
		return nil, fmt.Errorf("core: polynomial procedure requires a deterministic split-spanner")
	}
	if !s.IsDisjoint() {
		return nil, fmt.Errorf("core: polynomial procedure requires a disjoint splitter")
	}
	pst, err := p.Statuses()
	if err != nil {
		return nil, err
	}
	classes := append(p.Classes(), s.auto.Classes()...)
	if ps != nil {
		classes = append(classes, ps.Classes()...)
	}
	ctx := &polyCtx{
		p: p, ps: ps, s: s,
		pst:   pst,
		atoms: alphabet.Atoms(classes),
		opIdx: map[vsa.OpSet]int{},
		all:   vsa.AllOps(p.Arity()),
	}
	addOp := func(o vsa.OpSet) {
		if o == 0 {
			return
		}
		if _, ok := ctx.opIdx[o]; !ok {
			ctx.opIdx[o] = 2*len(ctx.atoms) + len(ctx.opIdx)
		}
	}
	for _, st := range p.States {
		for _, e := range st.Edges {
			addOp(e.Ops)
		}
		for _, f := range st.Finals {
			addOp(f)
		}
	}
	addOp(ctx.all)
	ctx.nsym = 2*len(ctx.atoms) + len(ctx.opIdx)
	return ctx, nil
}

// lsym returns the symbol of atom i with hull bit b.
func (c *polyCtx) lsym(atom int, bit int) int { return 2*atom + bit }

// atomsOf returns the atom indices contained in class.
func (c *polyCtx) atomsOf(class alphabet.Class) []int {
	var out []int
	for i, a := range c.atoms {
		if class.ContainsClass(a) {
			out = append(out, i)
		}
	}
	return out
}

// buildAPn translates p into the marked-word automaton over tuples with a
// nonempty hull (at least two operation boundaries). The hull bit of a
// letter is derived from p's status after the consuming edge: 1 iff the
// status is strictly between all-unseen and all-closed.
func (c *polyCtx) buildAPn() *automata.NFA {
	n := automata.New(c.nsym)
	p := c.p
	all := vsa.AllClosed(p.Arity())
	base := make([]int, p.NumStates())
	for q := range p.States {
		// A state accepts (word ends after its last letter) iff the empty
		// final batch is available, which requires all-closed status.
		final := false
		for _, f := range p.States[q].Finals {
			if f == 0 {
				final = true
			}
		}
		base[q] = n.AddState(final)
	}
	type mid struct {
		q   int
		ops vsa.OpSet
	}
	mids := map[mid]int{}
	midState := func(q int, ops vsa.OpSet, final bool) int {
		k := mid{q, ops}
		s, ok := mids[k]
		if !ok {
			s = n.AddState(false)
			mids[k] = s
			n.AddEdge(base[q], c.opIdx[ops], s)
		}
		if final {
			n.Final[s] = true
		}
		return s
	}
	bitOf := func(st vsa.Status) int {
		if st == 0 || st == all {
			return 0
		}
		return 1
	}
	for q, st := range p.States {
		for _, e := range st.Edges {
			stAfter := c.pst[e.To]
			if e.Ops == 0 {
				for _, a := range c.atomsOf(e.Class) {
					n.AddEdge(base[q], c.lsym(a, bitOf(stAfter)), base[e.To])
				}
				continue
			}
			// Exclude the single-batch (empty hull) case: status goes from
			// all-unseen to all-closed in one batch.
			if c.pst[q] == 0 && stAfter == all && p.Arity() > 0 {
				continue
			}
			m := midState(q, e.Ops, false)
			for _, a := range c.atomsOf(e.Class) {
				n.AddEdge(m, c.lsym(a, bitOf(stAfter)), base[e.To])
			}
		}
		for _, f := range st.Finals {
			if f == 0 {
				continue // handled via base finals
			}
			if c.pst[q] == 0 {
				continue // single batch at the end: empty hull
			}
			midState(q, f, true)
		}
	}
	n.AddStart(base[p.Start])
	n.DedupeEdges()
	return n
}

// buildAPe translates p into the deterministic automaton over tuples whose
// spans are all empty at a single boundary: words with bit-0 letters and
// exactly one operation symbol, the complete batch.
func (c *polyCtx) buildAPe() *automata.NFA {
	n := automata.New(c.nsym)
	p := c.p
	all := vsa.AllClosed(p.Arity())
	pre := make([]int, p.NumStates())
	post := make([]int, p.NumStates())
	for q := range p.States {
		pre[q] = n.AddState(false)
	}
	for q := range p.States {
		final := false
		for _, f := range p.States[q].Finals {
			if f == 0 {
				final = true
			}
		}
		post[q] = n.AddState(final)
	}
	batchSym := c.opIdx[c.all]
	// One mid state per p-state keeps the automaton deterministic when p
	// is: all complete-batch alternatives from q share it.
	mids := map[int]int{}
	midOf := func(q int) int {
		m, ok := mids[q]
		if !ok {
			m = n.AddState(false)
			mids[q] = m
			n.AddEdge(pre[q], batchSym, m)
		}
		return m
	}
	for q, st := range p.States {
		for _, e := range st.Edges {
			switch {
			case e.Ops == 0:
				for _, a := range c.atomsOf(e.Class) {
					if c.pst[q] == 0 {
						n.AddEdge(pre[q], c.lsym(a, 0), pre[e.To])
					}
					if c.pst[q] == all {
						n.AddEdge(post[q], c.lsym(a, 0), post[e.To])
					}
				}
			case c.pst[q] == 0 && c.pst[e.To] == all:
				// The complete batch, then its letter.
				m := midOf(q)
				for _, a := range c.atomsOf(e.Class) {
					n.AddEdge(m, c.lsym(a, 0), post[e.To])
				}
			}
		}
		for _, f := range st.Finals {
			if f != 0 && c.pst[q] == 0 {
				// Complete batch at the end of the document.
				n.Final[midOf(q)] = true
			}
		}
	}
	n.AddStart(pre[p.Start])
	n.DedupeEdges()
	return n
}

// AS_n modes.
const (
	mPre = iota
	mOpenPre
	mMustOpen
	mInPending
	mInBlock
	mAfterPending
	mOpenPost
	mClosed
)

// buildASn builds the automaton accepting marked words whose (nonempty)
// hull is contained in some split of s. It is unambiguous on the words of
// AP_n because a nonempty hull contains a letter and two disjoint splits
// cannot both contain it.
func (c *polyCtx) buildASn() *automata.NFA {
	n := automata.New(c.nsym)
	sa := c.s.auto
	type key struct {
		mode int
		qs   int
	}
	id := map[key]int{}
	var queue []key
	intern := func(k key) int {
		if i, ok := id[k]; ok {
			return i
		}
		final := false
		if k.mode == mAfterPending || k.mode == mOpenPost {
			for _, f := range sa.States[k.qs].Finals {
				if splitOpKind(f) == sClose {
					final = true
				}
			}
		}
		if k.mode == mClosed {
			for _, f := range sa.States[k.qs].Finals {
				if splitOpKind(f) == sNone {
					final = true
				}
			}
		}
		i := n.AddState(final)
		id[k] = i
		queue = append(queue, k)
		return i
	}
	start := intern(key{mPre, sa.Start})
	n.AddStart(start)
	opSyms := make([]int, 0, len(c.opIdx))
	for _, sym := range c.opIdx {
		opSyms = append(opSyms, sym)
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		from := id[k]
		letter := func(e vsa.Edge, bit, mode int) {
			to := intern(key{mode, e.To})
			for _, a := range c.atomsOf(e.Class) {
				n.AddEdge(from, c.lsym(a, bit), to)
			}
		}
		switch k.mode {
		case mPre:
			for _, e := range sa.States[k.qs].Edges {
				switch splitOpKind(e.Ops) {
				case sNone:
					letter(e, 0, mPre)
				case sOpen:
					letter(e, 0, mOpenPre)
				}
			}
			for _, sym := range opSyms {
				n.AddEdge(from, sym, intern(key{mMustOpen, k.qs}))
			}
		case mMustOpen:
			for _, e := range sa.States[k.qs].Edges {
				if splitOpKind(e.Ops) == sOpen {
					letter(e, 1, mInBlock)
				}
			}
		case mOpenPre:
			for _, e := range sa.States[k.qs].Edges {
				if splitOpKind(e.Ops) == sNone {
					letter(e, 0, mOpenPre)
				}
			}
			for _, sym := range opSyms {
				n.AddEdge(from, sym, intern(key{mInPending, k.qs}))
			}
		case mInPending:
			for _, e := range sa.States[k.qs].Edges {
				if splitOpKind(e.Ops) == sNone {
					letter(e, 1, mInBlock)
				}
			}
		case mInBlock:
			for _, e := range sa.States[k.qs].Edges {
				if splitOpKind(e.Ops) == sNone {
					letter(e, 1, mInBlock)
				}
			}
			for _, sym := range opSyms {
				n.AddEdge(from, sym, intern(key{mInPending, k.qs}))
				n.AddEdge(from, sym, intern(key{mAfterPending, k.qs}))
			}
		case mAfterPending:
			for _, e := range sa.States[k.qs].Edges {
				switch splitOpKind(e.Ops) {
				case sNone:
					letter(e, 0, mOpenPost)
				case sClose:
					letter(e, 0, mClosed)
				}
			}
		case mOpenPost:
			for _, e := range sa.States[k.qs].Edges {
				switch splitOpKind(e.Ops) {
				case sNone:
					letter(e, 0, mOpenPost)
				case sClose:
					letter(e, 0, mClosed)
				}
			}
		case mClosed:
			for _, e := range sa.States[k.qs].Edges {
				if splitOpKind(e.Ops) == sNone {
					letter(e, 0, mClosed)
				}
			}
		}
	}
	n.DedupeEdges()
	return n
}

// touching cases for the empty-hull boundary.
const (
	caseEmptyAt = iota // split is the empty span at the boundary
	caseStartsAt
	caseEndsAt
	caseStrict
	numCases
)

// buildCoverCase builds the automaton accepting words of APe shape whose
// boundary is touched by a split of s according to the given case. With a
// deterministic s each case automaton is unambiguous because the touching
// split of each kind is unique.
func (c *polyCtx) buildCoverCase(kind int) *automata.NFA {
	n := automata.New(c.nsym)
	sa := c.s.auto
	batchSym := c.opIdx[c.all]
	// Modes: 0 pre (before boundary, split not open except cases c/d),
	// 1 open (split open, before boundary), 2 pend (just after batch),
	// 3 openAfter (split open after boundary, case b/d), 4 done.
	type key struct {
		mode int
		qs   int
	}
	id := map[key]int{}
	var queue []key
	intern := func(k key) int {
		if i, ok := id[k]; ok {
			return i
		}
		final := false
		for _, f := range sa.States[k.qs].Finals {
			kf := splitOpKind(f)
			switch k.mode {
			case 2:
				if kind == caseEmptyAt && kf == sWrap {
					final = true
				}
				if kind == caseEndsAt && kf == sClose {
					final = true
				}
			case 3:
				if kf == sClose {
					final = true
				}
			case 4:
				if kf == sNone {
					final = true
				}
			}
		}
		i := n.AddState(final)
		id[k] = i
		queue = append(queue, k)
		return i
	}
	n.AddStart(intern(key{0, sa.Start}))
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		from := id[k]
		letter := func(e vsa.Edge, mode int) {
			to := intern(key{mode, e.To})
			for _, a := range c.atomsOf(e.Class) {
				n.AddEdge(from, c.lsym(a, 0), to)
			}
		}
		switch k.mode {
		case 0: // before the boundary, split not yet open
			for _, e := range sa.States[k.qs].Edges {
				switch splitOpKind(e.Ops) {
				case sNone:
					letter(e, 0)
				case sOpen:
					if kind == caseEndsAt || kind == caseStrict {
						letter(e, 1)
					}
				}
			}
			if kind == caseEmptyAt || kind == caseStartsAt {
				n.AddEdge(from, batchSym, intern(key{2, k.qs}))
			}
		case 1: // split open, boundary not yet reached (cases c, d)
			for _, e := range sa.States[k.qs].Edges {
				if splitOpKind(e.Ops) == sNone {
					letter(e, 1)
				}
			}
			n.AddEdge(from, batchSym, intern(key{2, k.qs}))
		case 2: // immediately after the batch
			for _, e := range sa.States[k.qs].Edges {
				kk := splitOpKind(e.Ops)
				switch kind {
				case caseEmptyAt:
					if kk == sWrap {
						letter(e, 4)
					}
				case caseStartsAt:
					if kk == sOpen {
						letter(e, 3)
					}
				case caseEndsAt:
					if kk == sClose {
						letter(e, 4)
					}
				case caseStrict:
					if kk == sNone {
						letter(e, 3)
					}
				}
			}
		case 3: // split open after the boundary (cases b, d)
			for _, e := range sa.States[k.qs].Edges {
				switch splitOpKind(e.Ops) {
				case sNone:
					letter(e, 3)
				case sClose:
					letter(e, 4)
				}
			}
		case 4: // split closed
			for _, e := range sa.States[k.qs].Edges {
				if splitOpKind(e.Ops) == sNone {
					letter(e, 4)
				}
			}
		}
	}
	n.DedupeEdges()
	return n
}

// containsViaUnion decides L(a) ⊆ L(b₁) ∪ … ∪ L(b_k) in polynomial time
// for unambiguous a and pairwise-possibly-overlapping unambiguous b_i by
// inclusion–exclusion over accepting-path counts: the indicator series
// #a − Σ_{∅≠T} (−1)^{|T|+1} #(a × Π_{i∈T} b_i) is pointwise nonnegative
// and zero exactly on containment. Empty automata are pruned first.
func containsViaUnion(a *automata.NFA, bs []*automata.NFA) bool {
	at := a.Trim()
	if at.Len() == 0 {
		return true
	}
	var live []*automata.NFA
	for _, b := range bs {
		bt := b.Trim()
		if bt.Len() > 0 {
			live = append(live, bt)
		}
	}
	if len(live) == 0 {
		return false
	}
	series := &automata.Series{Terms: []automata.Term{{Coef: 1, A: at}}}
	for mask := 1; mask < 1<<len(live); mask++ {
		prod := at
		bits := 0
		for i, b := range live {
			if mask&(1<<i) != 0 {
				bits++
				prod = automata.Product(prod, b)
			}
		}
		prod = prod.Trim()
		if prod.Len() == 0 {
			continue
		}
		coef := int64(-1)
		if bits%2 == 0 {
			coef = 1
		}
		series.Terms = append(series.Terms, automata.Term{Coef: coef, A: prod})
	}
	return series.IsZeroNonnegative()
}

// CoverConditionPoly decides the cover condition in polynomial time for a
// deterministic functional spanner and a deterministic functional disjoint
// splitter (Lemma 5.6). An error is returned when the preconditions do
// not hold; callers can then fall back to CoverCondition.
func CoverConditionPoly(p *vsa.Automaton, s *Splitter) (bool, error) {
	if p.Arity() == 0 {
		return coverBoolean(p, s, 0)
	}
	ctx, err := newPolyCtx(p, nil, s)
	if err != nil {
		return false, err
	}
	return ctx.coverPoly(), nil
}

func (c *polyCtx) coverPoly() bool {
	apn := c.buildAPn()
	asn := c.buildASn()
	if !automata.ContainsUnambiguous(apn, asn, false) {
		return false
	}
	ape := c.buildAPe()
	cases := make([]*automata.NFA, numCases)
	for k := 0; k < numCases; k++ {
		cases[k] = c.buildCoverCase(k)
	}
	return containsViaUnion(ape, cases)
}
