package vsa

import (
	"math/bits"
	"strings"
	"sync"

	"repro/internal/alphabet"
	"repro/internal/lazydfa"
)

// This file implements the compiled evaluation core: a byte→equivalence-
// class table per automaton, per-(state, class) transition lists, and a
// lazily determinized (subset-construction) DFA whose transition cache is
// shared across Eval/EvalBool calls — including concurrent calls from the
// parallel worker pools, which evaluate the same split-spanner automaton
// on many segments at once. The reference NFA simulations this replaces
// are retained as EvalReference/EvalBoolReference in eval.go and
// cross-checked by fuzzing.
//
// Determinization itself lives in internal/lazydfa — the interning,
// overflow and locking machinery is shared with the forward scan DFA
// (window.go), the backward narrowing DFA (reverse.go) and core's
// compiled splitter scanner. This client's payload is a single bool:
// whether the subset contains a final-bearing state.

// progEdge is one compiled transition: perform ops at the current
// boundary, then move to state to (the consumed byte is implied by the
// (state, class) bucket the edge lives in).
type progEdge struct {
	ops OpSet
	to  int32
}

// evalProg is the compiled, immutable evaluation program of an automaton:
// built once under Automaton.progOnce, read-only afterwards (and hence
// safe for unsynchronized concurrent use — only the lazy DFA beneath it
// has mutable state, guarded by its own lock).
type evalProg struct {
	nv       int // number of variables
	nclasses int // number of byte equivalence classes
	nstates  int // number of automaton states
	classOf  [256]uint8
	// succ[q*nclasses+c] lists the transitions of state q on any byte of
	// class c. The per-byte Class.Has test of the interpreted loop is gone:
	// membership was resolved for the whole class at build time.
	succ     [][]progEdge
	finals   [][]OpSet
	hasFinal []bool
	uni      []bool // suffix-universality, shared with the reference path
	dfa      *lazydfa.DFA[bool]
	// skips memoizes per-DFA-state trigger sets for the EvalBool skip
	// loop (see prefilter.go); entries are built on demand as scans
	// streak on self-looping states.
	skips lazydfa.SkipCache
}

// Sentinel DFA transition values, aliased from internal/lazydfa. State 0
// is the canonical dead state (empty subset); state 1 is the start state
// (the first subset interned after construction). dfaOverflow marks a
// transition whose target subset was not cached because the DFA hit
// maxDFAStates; evaluation falls back to direct subset simulation from
// there (sound, just slower) instead of letting an adversarial automaton
// materialize 2^n states.
const (
	dfaDead           = lazydfa.Dead
	dfaStart    int32 = 1
	dfaUnknown        = lazydfa.Unknown
	dfaOverflow       = lazydfa.Overflow
)

// maxDFAStates bounds every lazily built DFA in this package. Real
// extractors determinize to a handful of subsets per byte class; the
// bound only matters for adversarial inputs.
const maxDFAStates = lazydfa.DefaultMaxStates

// prog returns the compiled evaluation program, building it on first use.
// Building freezes the automaton: see AddEdge/AddFinal.
func (a *Automaton) prog() *evalProg {
	a.progOnce.Do(func() {
		a.frozen.Store(true)
		a.progVal = a.buildProg()
	})
	return a.progVal
}

// Prepare forces construction of the evaluation caches (byte-class table,
// compiled transitions, suffix-universality, both match-window DFAs —
// the forward end-detection scan and the reversed start-narrowing
// program — and the literal prefilter's factor extraction) so that the
// first evaluation does not pay for them. It freezes the automaton: any
// later AddEdge/AddFinal panics. The engine calls Prepare when compiling
// a plan, so plans served from the cache carry warmed evaluators and the
// memoized prefilter factors.
func (a *Automaton) Prepare() {
	a.prog()
	a.suffixUniversality()
	a.localizer()
	a.prefilter()
}

func (a *Automaton) buildProg() *evalProg {
	classOf, reps := alphabet.ClassTable(a.Classes())
	nc := len(reps)
	n := len(a.States)
	p := &evalProg{
		nv:       len(a.Vars),
		nclasses: nc,
		nstates:  n,
		classOf:  classOf,
		succ:     make([][]progEdge, n*nc),
		finals:   make([][]OpSet, n),
		hasFinal: make([]bool, n),
		uni:      a.suffixUniversality(),
	}
	for q, st := range a.States {
		p.finals[q] = st.Finals
		p.hasFinal[q] = len(st.Finals) > 0
		for _, e := range st.Edges {
			for c, rep := range reps {
				if e.Class.Has(rep) {
					p.succ[q*nc+c] = append(p.succ[q*nc+c], progEdge{e.Ops, int32(e.To)})
				}
			}
		}
	}
	p.dfa = lazydfa.New(lazydfa.Config[bool]{
		Classes:   nc,
		States:    n,
		MaxStates: maxDFAStates,
		Succ: func(q int32, c uint8, emit func(int32)) {
			for _, e := range p.succ[int(q)*nc+int(c)] {
				emit(e.to)
			}
		},
		Payload: func(set []int32) bool {
			for _, q := range set {
				if p.hasFinal[q] {
					return true
				}
			}
			return false
		},
	})
	p.dfa.Intern([]int32{int32(a.Start)}) // = dfaStart
	return p
}

// EvalBool reports whether the Boolean semantics of a accepts the
// document, i.e. whether ⟦a⟧(d) is nonempty (the automaton is functional,
// so an accepting run exists iff some tuple is produced). The walk is a
// single byte-indexed lookup per position on the lazily built DFA; on a
// cache miss the subset transition is computed once and shared with every
// later call. If the DFA outgrows its state bound the remainder of the
// document runs on a direct subset simulation.
func (a *Automaton) EvalBool(doc string) bool {
	// rlockChunk bounds how long one scan holds the read lock: a pending
	// writer (a Resolve from another goroutine) blocks new RLock
	// acquisitions, so yielding periodically keeps one long document from
	// serializing the whole worker pool behind a warm-up miss.
	const rlockChunk = 1 << 12
	if pf := a.prefilter().info; pf.Factor != "" && !strings.Contains(doc, pf.Factor) {
		// The factor is mandatory in every accepted document (see
		// prefilter.go), so its absence decides rejection without a scan.
		return false
	}
	p := a.prog()
	w := p.dfa.Walk()
	cur := dfaStart
	var gate lazydfa.SkipGate
	if !a.prefDisabled {
		gate.Init(&p.skips)
		gate.Bind(func(q int32) *lazydfa.SkipSet { return p.skipSetBool(&w, q) },
			lazydfa.StringIndex(doc))
	}
	for i := 0; i < len(doc); i++ {
		if i&(rlockChunk-1) == rlockChunk-1 {
			w.Yield()
		}
		c := p.classOf[doc[i]]
		t := w.States[cur].Trans(c)
		if t == dfaUnknown {
			t = w.Resolve(cur, c)
		}
		if t == dfaDead {
			w.Release()
			return false
		}
		if t == dfaOverflow {
			set := append([]int32(nil), w.States[cur].Set...)
			w.Release()
			return p.simBool(set, doc[i:])
		}
		if !a.prefDisabled {
			// The walk has been confined to a couple of states for a while:
			// jump to the next byte that can break out (prefilter.go).
			if s := gate.Step(cur, t); s != nil {
				if j, _ := gate.Jump(s, i+1, len(doc)); j > i+1 {
					if j-(i+1) >= rlockChunk {
						w.Yield()
					}
					t = s.Sync(doc[j-1])
					i = j - 1
				}
			}
		}
		cur = t
	}
	final := w.States[cur].Payload
	w.Release()
	return final
}

// simBool is the uncached subset simulation, used past the DFA state
// bound. Sparse sets, no per-byte allocation.
func (p *evalProg) simBool(set []int32, doc string) bool {
	cur := set
	next := make([]int32, 0, len(set))
	mark := make([]bool, p.nstates)
	for i := 0; i < len(doc); i++ {
		c := int(p.classOf[doc[i]])
		next = next[:0]
		for _, q := range cur {
			for _, e := range p.succ[int(q)*p.nclasses+c] {
				if !mark[e.to] {
					mark[e.to] = true
					next = append(next, e.to)
				}
			}
		}
		for _, q := range next {
			mark[q] = false
		}
		if len(next) == 0 {
			return false
		}
		cur, next = next, cur
	}
	for _, q := range cur {
		if p.hasFinal[q] {
			return true
		}
	}
	return false
}

// ---------- Eval: sparse-set frontier with arena-backed assignments ----------

// evalCell is one frontier entry: an automaton state plus an offset into
// the position's arena where its 2·nv-slot partial assignment lives.
type evalCell struct {
	state int32
	off   int32
}

// cellSlot is one open-addressing hash-table slot; ver stamps the document
// position it belongs to, so the table is "cleared" by bumping the version
// instead of zeroing memory.
type cellSlot struct {
	ver  uint32
	cell int32 // index into the position's cell slice
}

// evalScratch holds all per-evaluation buffers. Eval is called
// concurrently by the worker pools on a shared automaton, so scratch is
// pooled rather than cached on the automaton; after the first few calls
// the per-byte loop performs no allocation in the common case.
type evalScratch struct {
	cur, next   []evalCell
	curA, nextA []int32 // partial-assignment arenas (stride 2·nv)
	tmp         []int32
	table       []cellSlot
	ver         uint32
	// Cross-window tuple dedup of one evaluation (see evalRun.emit);
	// the map is cleared, not reallocated, between evaluations.
	seen    map[string]bool
	emitBuf []byte
}

var scratchPool = sync.Pool{New: func() any { return new(evalScratch) }}

func (s *evalScratch) resetTable(n int) {
	want := 16
	for want < 4*n {
		want <<= 1
	}
	if len(s.table) < want {
		s.table = make([]cellSlot, want)
		s.ver = 0
	}
	s.ver++
	if s.ver == 0 { // wrapped: stamps from the previous epoch could alias
		for i := range s.table {
			s.table[i] = cellSlot{}
		}
		s.ver = 1
	}
}

func hashCell(state int32, pt []int32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(uint32(state))) * prime64
	for _, v := range pt {
		h = (h ^ uint64(uint32(v))) * prime64
	}
	return h
}

// place inserts (state, pt) into next/nextA unless an identical cell is
// already there. grow doubles the table when load exceeds 1/2.
func (s *evalScratch) place(state int32, pt []int32, stride int) {
	mask := uint64(len(s.table) - 1)
	i := hashCell(state, pt) & mask
	for {
		slot := &s.table[i]
		if slot.ver != s.ver {
			off := int32(len(s.nextA))
			s.nextA = append(s.nextA, pt...)
			s.next = append(s.next, evalCell{state, off})
			*slot = cellSlot{s.ver, int32(len(s.next) - 1)}
			if 2*len(s.next) > len(s.table) {
				s.grow(stride)
			}
			return
		}
		c := s.next[slot.cell]
		if c.state == state && equalPartial(s.nextA[c.off:int(c.off)+stride], pt) {
			return
		}
		i = (i + 1) & mask
	}
}

func equalPartial(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (s *evalScratch) grow(stride int) {
	s.table = make([]cellSlot, 2*len(s.table))
	s.ver = 1
	mask := uint64(len(s.table) - 1)
	for ci, c := range s.next {
		pt := s.nextA[c.off : int(c.off)+stride]
		i := hashCell(c.state, pt) & mask
		for s.table[i].ver == s.ver {
			i = (i + 1) & mask
		}
		s.table[i] = cellSlot{s.ver, int32(ci)}
	}
}

// applyOps mutates pt in place: every operation of ops is performed at the
// given boundary (positions are the paper's 1-based endpoints).
func applyOps(pt []int32, ops OpSet, boundary int) {
	for o := uint64(ops); o != 0; o &= o - 1 {
		// bit 2v = open v (slot 2v), bit 2v+1 = close v (slot 2v+1): the
		// bit index is the slot index.
		pt[bits.TrailingZeros64(o)] = int32(boundary + 1)
	}
}

func completePartial(pt []int32) bool {
	for _, v := range pt {
		if v == 0 {
			return false
		}
	}
	return true
}
