package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
)

// extractJSON posts an inline-JSON extraction and returns the response.
func extractJSON(t *testing.T, url string, hdr map[string]string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(map[string]string{
		"spanner": emailFormula, "splitter": sentenceFormula, "doc": testDoc,
	})
	req, err := http.NewRequest("POST", url+"/v1/extract", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// holdToken occupies one admission token: it opens a streamed extract
// whose body never finishes, and returns a func that lets it complete.
func holdToken(t *testing.T, url string) (release func()) {
	t.Helper()
	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequest("POST", url+"/v1/extract?spanner="+escapedEmail(), pr)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	pw.Write([]byte("warm-up bytes so the handler is surely running. "))
	// Give the request time to pass admission and block on the body.
	time.Sleep(50 * time.Millisecond)
	return func() {
		pw.Close()
		<-done
	}
}

func escapedEmail() string {
	return strings.NewReplacer("{", "%7B", "}", "%7D", "[", "%5B", "]", "%5D",
		"+", "%2B", "?", "%3F", "*", "%2A", "^", "%5E", "@", "%40", "(", "%28", ")", "%29").
		Replace(emailFormula)
}

func TestAdmissionSheds429WithRetryAfter(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	lim := admission.New(admission.Config{Tokens: 1, Queue: -1}) // no queue: admit or shed
	ts := httptest.NewServer(newServerWith(eng, serverConfig{limiter: lim}))
	defer ts.Close()

	release := holdToken(t, ts.URL)
	defer release()

	resp := extractJSON(t, ts.URL, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, b)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without a Retry-After header")
	}
	if sec, err := strconv.Atoi(ra); err != nil || sec < 1 || sec > 60 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 60]", ra)
	}
	var body struct {
		Error         string `json:"error"`
		RetryAfterSec int    `json:"retry_after_sec"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("429 body not parseable: %v", err)
	}

	// After the held request completes, the next one is admitted again.
	release()
	ok := extractJSON(t, ts.URL, nil)
	defer ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d, want 200", ok.StatusCode)
	}
}

func TestAdmissionQueueAgeShed(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	lim := admission.New(admission.Config{Tokens: 1, Queue: 4, MaxWait: 30 * time.Millisecond})
	ts := httptest.NewServer(newServerWith(eng, serverConfig{limiter: lim}))
	defer ts.Close()

	release := holdToken(t, ts.URL)
	defer release()

	// This request queues, ages out after MaxWait, and is shed 429.
	t0 := time.Now()
	resp := extractJSON(t, ts.URL, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 from queue ageing", resp.StatusCode)
	}
	if waited := time.Since(t0); waited > 2*time.Second {
		t.Fatalf("aged shed took %s, want prompt rejection around MaxWait", waited)
	}
	if st := lim.Snapshot(); st.ShedAged == 0 {
		t.Fatalf("limiter stats = %+v, want shed_aged > 0", st)
	}
}

func TestDeadlineMapsTo504(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	ts := httptest.NewServer(newServerWith(eng, serverConfig{deadline: 60 * time.Millisecond}))
	defer ts.Close()

	// A streamed body that trickles well past the deadline (bounded, so
	// the server's post-response body drain terminates promptly too).
	pr, pw := io.Pipe()
	go func() {
		defer pw.Close()
		for i := 0; i < 50; i++ {
			if _, err := pw.Write([]byte("drip. ")); err != nil {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	req, _ := http.NewRequest("POST", ts.URL+"/v1/extract?spanner="+escapedEmail(), pr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, b)
	}
}

func TestStalledUploadMapsTo408(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2, ReadTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(newServer(eng))
	defer ts.Close()

	pr, pw := io.Pipe()
	defer pw.Close()
	go pw.Write([]byte("some bytes, then silence. "))
	req, _ := http.NewRequest("POST", ts.URL+"/v1/extract?spanner="+escapedEmail(), pr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status = %d (%s), want 408 for a stalled upload", resp.StatusCode, b)
	}
}

// readMultipartResponse parses a multipart/mixed extraction response
// into named JSON parts.
func readMultipartResponse(t *testing.T, resp *http.Response) map[string]json.RawMessage {
	t.Helper()
	mt, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || mt != "multipart/mixed" {
		t.Fatalf("Content-Type = %q, want multipart/mixed", resp.Header.Get("Content-Type"))
	}
	mr := multipart.NewReader(resp.Body, params["boundary"])
	parts := map[string]json.RawMessage{}
	for {
		p, err := mr.NextPart()
		if err == io.EOF {
			return parts
		}
		if err != nil {
			t.Fatalf("multipart read: %v (got parts %v)", err, parts)
		}
		_, dparams, _ := mime.ParseMediaType(p.Header.Get("Content-Disposition"))
		data, err := io.ReadAll(p)
		if err != nil {
			t.Fatalf("part %q: %v", dparams["name"], err)
		}
		parts[dparams["name"]] = data
	}
}

func TestMultipartResponseOKPath(t *testing.T) {
	ts := startDaemon(t)
	body, _ := json.Marshal(map[string]string{
		"spanner": emailFormula, "splitter": sentenceFormula, "doc": testDoc,
	})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/extract", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "multipart/mixed")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	parts := readMultipartResponse(t, resp)
	if _, ok := parts["plan"]; !ok {
		t.Fatalf("no plan part in %v", parts)
	}
	if _, ok := parts["tuples"]; !ok {
		t.Fatalf("no tuples part in %v", parts)
	}
	var end epilogue
	if err := json.Unmarshal(parts["end"], &end); err != nil {
		t.Fatalf("bad epilogue %s: %v", parts["end"], err)
	}
	if end.Status != "ok" || end.Count != 3 {
		t.Fatalf("epilogue = %+v, want ok with 3 tuples", end)
	}
}

func TestMultipartResponseErrorEpilogueOnDeadline(t *testing.T) {
	// The 200 header and the plan part are already on the wire when the
	// engine's deadline fires mid-stream; the response must still end
	// with an explicit error epilogue, not a silent truncation.
	eng := engine.New(engine.Config{Workers: 2})
	ts := httptest.NewServer(newServerWith(eng, serverConfig{deadline: 60 * time.Millisecond}))
	defer ts.Close()

	pr, pw := io.Pipe()
	go func() {
		defer pw.Close()
		for i := 0; i < 50; i++ {
			if _, err := pw.Write([]byte("drip. ")); err != nil {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	req, _ := http.NewRequest("POST", ts.URL+"/v1/extract?spanner="+escapedEmail(), pr)
	req.Header.Set("Accept", "multipart/mixed")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (the header precedes the failure)", resp.StatusCode)
	}
	parts := readMultipartResponse(t, resp)
	var end epilogue
	if err := json.Unmarshal(parts["end"], &end); err != nil {
		t.Fatalf("bad epilogue %s: %v", parts["end"], err)
	}
	if end.Status != "error" || end.Error == "" {
		t.Fatalf("epilogue = %+v, want an explicit error", end)
	}
	if end.HTTPStatus != http.StatusGatewayTimeout {
		t.Fatalf("epilogue http_status = %d, want 504", end.HTTPStatus)
	}
	if _, ok := parts["tuples"]; ok {
		t.Fatal("failed extraction must not emit a tuples part")
	}
}

func TestTenantHeaderScopesPlanCache(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	ts := httptest.NewServer(newServerWith(eng, serverConfig{tenantHeader: "X-Tenant"}))
	defer ts.Close()

	get := func(tenant string) extractResult {
		resp := extractJSON(t, ts.URL, map[string]string{"X-Tenant": tenant})
		return decodeExtract(t, resp)
	}
	if r := get("alice"); r.CacheHit {
		t.Fatal("alice's first request reported a cache hit")
	}
	if r := get("alice"); !r.CacheHit {
		t.Fatal("alice's second request missed her cached plan")
	}
	// Same formulas, different tenant: quotas are per tenant, so bob
	// compiles his own plan.
	if r := get("bob"); r.CacheHit {
		t.Fatal("bob hit alice's cache entry across the tenant boundary")
	}
}

// TestChaosDrainUnderLoad is the satellite-3 chaos test: hammer all
// four endpoints from many goroutines while SIGTERM-style drain fires
// and the admission queue oscillates between full and empty. Two
// invariants:
//
//  1. No request is both shed and executed: the engine's document
//     counter cannot exceed the number of extract attempts that were
//     NOT answered 429.
//  2. The drain completes within its deadline (plus scheduling slack)
//     and in-flight admitted requests finish with real responses.
func TestChaosDrainUnderLoad(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 4, Batch: 2})
	lim := admission.New(admission.Config{Tokens: 2, Queue: 2, MaxWait: 20 * time.Millisecond})
	const drainBudget = 2 * time.Second
	d := newDaemon("127.0.0.1:0", eng, serverConfig{
		limiter:      lim,
		deadline:     time.Second,
		tenantHeader: "X-Tenant",
	}, drainBudget)
	ln, err := net.Listen("tcp", d.srv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		d.srv.Serve(ln)
	}()
	url := "http://" + ln.Addr().String()

	var (
		extractSent atomic.Int64 // extract requests that reached the server (any response)
		extract429  atomic.Int64 // ... answered 429
		extractOK   atomic.Int64 // ... answered 200
		extractLost atomic.Int64 // ... whose response was lost (conn died during drain)
		truncated   atomic.Int64 // responses cut off mid-body (admitted but dropped)
	)
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 5 * time.Second}
	body, _ := json.Marshal(map[string]string{
		"spanner": emailFormula, "splitter": sentenceFormula, "doc": testDoc,
	})
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%3)
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				var (
					req *http.Request
					err error
				)
				switch i % 4 {
				case 0, 1: // extract dominates so the queue oscillates
					req, err = http.NewRequest("POST", url+"/v1/extract", bytes.NewReader(body))
					req.Header.Set("Content-Type", "application/json")
				case 2:
					check, _ := json.Marshal(map[string]string{"spanner": emailFormula, "splitter": sentenceFormula})
					req, err = http.NewRequest("POST", url+"/v1/check", bytes.NewReader(check))
					req.Header.Set("Content-Type", "application/json")
				case 3:
					if i%8 == 3 {
						req, err = http.NewRequest("GET", url+"/v1/stats", nil)
					} else {
						req, err = http.NewRequest("GET", url+"/metrics", nil)
					}
				}
				if err != nil {
					continue
				}
				req.Header.Set("X-Tenant", tenant)
				isExtract := i%4 <= 1
				resp, err := client.Do(req)
				if err != nil {
					// Connection refused/reset during drain: the request never
					// got a response, so it is not counted as sent — but it may
					// have been admitted and executed before the connection
					// died, so lost extracts widen invariant 1's allowance.
					if isExtract {
						extractLost.Add(1)
					}
					continue
				}
				if isExtract {
					extractSent.Add(1)
					switch resp.StatusCode {
					case http.StatusTooManyRequests:
						extract429.Add(1)
					case http.StatusOK:
						extractOK.Add(1)
					}
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil && resp.StatusCode == http.StatusOK {
					truncated.Add(1)
				}
				resp.Body.Close()
			}
		}(g)
	}

	// Let the storm develop, then fire the drain mid-load.
	time.Sleep(300 * time.Millisecond)
	t0 := time.Now()
	drainErr := d.shutdown()
	drainTook := time.Since(t0)
	close(stopLoad)
	wg.Wait()
	<-serveDone

	if drainTook > drainBudget+time.Second {
		t.Fatalf("drain took %s, budget was %s", drainTook, drainBudget)
	}
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		t.Fatalf("drain: %v", drainErr)
	}

	sent, shed, ok := extractSent.Load(), extract429.Load(), extractOK.Load()
	if sent == 0 || ok == 0 {
		t.Fatalf("load too thin: sent=%d ok=%d — chaos test exercised nothing", sent, ok)
	}
	if shed == 0 {
		t.Logf("note: no sheds observed (sent=%d); queue never overflowed on this machine", sent)
	}
	// Invariant 1: a shed request never executed. Every document the
	// engine counted came from a non-429 extract attempt (inline JSON
	// extracts count one document each, at evaluation start) — or from
	// an admitted request whose response connection died during drain.
	docs := int64(eng.Stats().Documents)
	if lost := extractLost.Load(); docs > sent-shed+lost {
		t.Fatalf("engine evaluated %d documents but only %d extract attempts were admitted (sent=%d shed=%d lost=%d): some request was both 429'd and executed",
			docs, sent-shed+lost, sent, shed, lost)
	}
	// Invariant 2: admitted (200) responses were delivered whole.
	if n := truncated.Load(); n != 0 {
		t.Fatalf("%d admitted responses were truncated during drain", n)
	}
	// The limiter's own books must balance: everything admitted was
	// released (no token leaks), nothing is left in the queue.
	st := lim.Snapshot()
	if st.InUse != 0 || st.QueueDepth != 0 {
		t.Fatalf("limiter leaked after drain: %+v", st)
	}
}
