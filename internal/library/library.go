// Package library provides ready-made splitters and extractors for the
// kinds of workloads the paper's introduction motivates: sentence and
// paragraph splitters, token and N-gram splitters, HTTP-log request
// splitters, and extractors for e-mail-like tokens, phone-like tokens,
// capitalized names, financial-transaction sentences and negative
// sentiment. All are regular spanners built from regex formulas, plus
// fast hand-coded scanners for pre-splitting large corpora (systems
// materialize splitters with cheap tokenizers; the scanners are verified
// against their automaton counterparts in tests).
package library

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/regexformula"
	"repro/internal/span"
	"repro/internal/vsa"
)

// Char classes shared by the definitions below. Sentences end at '.', '!',
// '?' or a newline (so sentence splitting factors through paragraph
// splitting, Section 6); paragraphs are separated by '\n'; words by ' '.
const (
	sentenceEnd = "[.!?\\n]"
	notSentEnd  = "[^.!?\\n]"
	notNL       = `[^\n]`
	notSpace    = `[^ \n]`
)

func mustSplitter(src string) *core.Splitter {
	s, err := core.NewSplitter(regexformula.MustCompile(src))
	if err != nil {
		panic(fmt.Sprintf("library: %v", err))
	}
	return s
}

// Sentences returns the sentence splitter: maximal runs of
// non-terminator bytes. The terminator itself is not part of the
// sentence, mirroring sentence boundary detection. It is disjoint.
func Sentences() *core.Splitter {
	w := "(x{" + notSentEnd + "*})"
	return mustSplitter(w + "(" + sentenceEnd + notSentEnd + "*)*|" +
		notSentEnd + "*(" + sentenceEnd + notSentEnd + "*)*" + sentenceEnd + w + "(" + sentenceEnd + notSentEnd + "*)*")
}

// Paragraphs returns the newline-separated paragraph splitter (disjoint).
func Paragraphs() *core.Splitter {
	w := "(x{" + notNL + "*})"
	return mustSplitter(w + `(\n` + notNL + `*)*|` + notNL + `*(\n` + notNL + `*)*\n` + w + `(\n` + notNL + `*)*`)
}

// Tokens returns the splitter selecting every maximal run of non-space
// bytes (disjoint).
func Tokens() *core.Splitter {
	// A token is a maximal nonempty run of non-space bytes: preceded and
	// followed by a space or the document edge.
	sp := `[ \n]`
	tok := "(x{" + notSpace + "+})"
	return mustSplitter(
		tok + "(" + sp + ".*)?" + // token at the start
			"|.*" + sp + tok + "(" + sp + ".*)?") // token after a space
}

// NGrams returns the splitter selecting every window of n consecutive
// space-separated words (including the separating spaces). For n > 1 the
// splitter is not disjoint, as the paper notes.
func NGrams(n int) *core.Splitter {
	if n < 1 {
		panic("library: NGrams requires n ≥ 1")
	}
	word := notSpace + "+"
	var inner strings.Builder
	inner.WriteString(word)
	for i := 1; i < n; i++ {
		inner.WriteString(" " + word)
	}
	w := "(x{" + inner.String() + "})"
	boundary := `( .*)?`
	return mustSplitter(w + boundary + "|.* " + w + boundary)
}

// HTTPRequests returns the splitter for ';'-separated log records, a
// miniature of splitting a log into HTTP messages (disjoint).
func HTTPRequests() *core.Splitter {
	w := "(x{[^;]*})"
	return mustSplitter(w + "(;[^;]*)*|[^;]*(;[^;]*)*;" + w + "(;[^;]*)*")
}

// Emails returns an extractor for e-mail-like tokens (word@word).
func Emails() *vsa.Automaton {
	word := `[a-z0-9]+`
	return regexformula.MustCompile(`(.*[^a-z0-9])?(y{` + word + `@` + word + `})([^a-z0-9].*)?`)
}

// Phones returns an extractor for phone-like tokens (ddd-dddd).
func Phones() *vsa.Automaton {
	return regexformula.MustCompile(`(.*[^0-9])?(y{\d\d\d-\d\d\d\d})([^0-9\-].*)?`)
}

// Names returns an extractor for capitalized words (a NER stand-in).
func Names() *vsa.Automaton {
	return regexformula.MustCompile(`(.*[ .!?\n])?(y{[A-Z][a-z]+})(([^a-z].*)?|)`)
}

// FinanceEvents returns the Reuters-style event extractor of Section 1:
// within a sentence, an organization (capitalized word) paying another,
// e.g. "Acme paid Globex". It binds the payer and payee.
func FinanceEvents() *vsa.Automaton {
	org := `[A-Z][a-z]+`
	return regexformula.MustCompile(
		`(.*[ .!?\n])?(payer{` + org + `}) paid (payee{` + org + `})(([^a-z].*)?|)`)
}

// NegativeSentiment returns the Amazon-review-style extractor of Section
// 1: the target word following "bad" within a sentence.
func NegativeSentiment() *vsa.Automaton {
	word := `[a-z]+`
	return regexformula.MustCompile(`(.*[ .!?\n])?bad (y{` + word + `})(([^a-z].*)?|)`)
}

// FastSentenceSplit is the hand-coded counterpart of Sentences, used to
// pre-split large corpora cheaply. Verified equivalent in tests.
func FastSentenceSplit(doc string) []span.Span {
	var out []span.Span
	start := 0
	for i := 0; i <= len(doc); i++ {
		if i == len(doc) || doc[i] == '.' || doc[i] == '!' || doc[i] == '?' || doc[i] == '\n' {
			out = append(out, span.FromByteOffsets(start, i))
			start = i + 1
		}
	}
	return out
}

// FastNGramSplit is the hand-coded counterpart of NGrams. Verified
// equivalent in tests.
func FastNGramSplit(doc string, n int) []span.Span {
	type word struct{ lo, hi int }
	var words []word
	inWord := false
	lo := 0
	for i := 0; i <= len(doc); i++ {
		isSpace := i == len(doc) || doc[i] == ' ' || doc[i] == '\n'
		if !isSpace && !inWord {
			inWord = true
			lo = i
		}
		if isSpace && inWord {
			inWord = false
			words = append(words, word{lo, i})
		}
	}
	var out []span.Span
	for i := 0; i+n <= len(words); i++ {
		out = append(out, span.FromByteOffsets(words[i].lo, words[i+n-1].hi))
	}
	return out
}

// FastBlockSplit is the hand-coded counterpart of HTTPRequests.
func FastBlockSplit(doc string) []span.Span {
	var out []span.Span
	start := 0
	for i := 0; i <= len(doc); i++ {
		if i == len(doc) || doc[i] == ';' {
			out = append(out, span.FromByteOffsets(start, i))
			start = i + 1
		}
	}
	return out
}
