package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"testing"

	spanners "repro"
	"repro/internal/engine"
)

const (
	emailFormula    = `(.*[^a-z0-9])?(y{[a-z0-9]+@[a-z0-9]+})([^a-z0-9].*)?`
	sentenceFormula = "(x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*|" +
		"[^.!?\\n]*([.!?\\n][^.!?\\n]*)*[.!?\\n](x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*"
	testDoc = "write ann@example today. then bob@corp tomorrow! finally eve@host."
)

type extractResult struct {
	Strategy string `json:"strategy"`
	Verdicts struct {
		Disjoint       string `json:"disjoint"`
		SelfSplittable string `json:"self_splittable"`
		SplitCorrect   string `json:"split_correct"`
		Local          string `json:"local"`
	} `json:"verdicts"`
	CacheHit bool       `json:"cache_hit"`
	Ingest   string     `json:"ingest"`
	Vars     []string   `json:"vars"`
	Count    int        `json:"count"`
	Tuples   [][][2]int `json:"tuples"`
}

func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(engine.New(engine.Config{Workers: 4, Batch: 2, ChunkSize: 8})))
	t.Cleanup(ts.Close)
	return ts
}

func decodeExtract(t *testing.T, resp *http.Response) extractResult {
	t.Helper()
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out extractResult
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	return out
}

// oneShotTuples is the ground truth: the façade's ParallelEval on the
// whole document.
func oneShotTuples(t *testing.T) [][][2]int {
	t.Helper()
	p := spanners.MustCompile(emailFormula)
	s := spanners.MustCompileSplitter(sentenceFormula)
	rel := spanners.ParallelEval(p, s, testDoc, 4)
	rel.Dedupe()
	out := make([][][2]int, 0, rel.Len())
	for _, tup := range rel.Tuples {
		row := make([][2]int, len(tup))
		for i, sp := range tup {
			row[i] = [2]int{sp.Start, sp.End}
		}
		out = append(out, row)
	}
	return out
}

func TestExtractJSONAndPlanCacheHit(t *testing.T) {
	ts := startDaemon(t)
	body, _ := json.Marshal(map[string]string{
		"spanner": emailFormula, "splitter": sentenceFormula, "doc": testDoc,
	})
	post := func() extractResult {
		resp, err := http.Post(ts.URL+"/v1/extract", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return decodeExtract(t, resp)
	}
	first := post()
	if first.CacheHit {
		t.Fatal("first request reported a cache hit")
	}
	if first.Strategy != "split-parallel" {
		t.Fatalf("strategy = %q (verdicts %+v), want split-parallel", first.Strategy, first.Verdicts)
	}
	if want := oneShotTuples(t); !reflect.DeepEqual(first.Tuples, want) {
		t.Fatalf("tuples = %v, want %v", first.Tuples, want)
	}
	second := post()
	if !second.CacheHit {
		t.Fatal("second identical request missed the plan cache")
	}
	if !reflect.DeepEqual(second.Tuples, first.Tuples) {
		t.Fatal("cached plan changed the result")
	}

	// The hit must be observable via /v1/stats.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st engine.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.PlanCache.Hits < 1 || st.PlanCache.Misses != 1 {
		t.Fatalf("stats = %+v, want ≥1 hit and exactly 1 miss", st.PlanCache)
	}
	if st.Documents != 2 || st.Segments == 0 {
		t.Fatalf("stats = %+v, want 2 documents and some segments", st)
	}
}

// slowChunks streams the document a few bytes per Read with no declared
// length, forcing chunked transfer encoding and multi-chunk ingestion.
type slowChunks struct {
	s string
	n int
}

func (r *slowChunks) Read(p []byte) (int, error) {
	if len(r.s) == 0 {
		return 0, io.EOF
	}
	n := r.n
	if n > len(r.s) {
		n = len(r.s)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.s[:n])
	r.s = r.s[n:]
	return n, nil
}

func TestExtractStreamedBodyEqualsOneShot(t *testing.T) {
	ts := startDaemon(t)
	url := ts.URL + "/v1/extract?spanner=" + url.QueryEscape(emailFormula) + "&splitter=" + url.QueryEscape(sentenceFormula)
	req, err := http.NewRequest("POST", url, &slowChunks{s: testDoc, n: 3})
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeExtract(t, resp)
	if want := oneShotTuples(t); !reflect.DeepEqual(got.Tuples, want) {
		t.Fatalf("streamed tuples = %v, want one-shot ParallelEval %v", got.Tuples, want)
	}
}

func TestExtractMultipartStream(t *testing.T) {
	ts := startDaemon(t)
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("spanner", emailFormula)
	mw.WriteField("splitter", sentenceFormula)
	fw, _ := mw.CreateFormFile("doc", "doc.txt")
	io.Copy(fw, strings.NewReader(testDoc))
	mw.Close()
	resp, err := http.Post(ts.URL+"/v1/extract", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeExtract(t, resp)
	if want := oneShotTuples(t); !reflect.DeepEqual(got.Tuples, want) {
		t.Fatalf("multipart tuples = %v, want %v", got.Tuples, want)
	}
}

func TestCheckConcurrentSingleFlight(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	ts := httptest.NewServer(newServer(eng))
	defer ts.Close()
	body, _ := json.Marshal(map[string]string{
		"spanner": emailFormula, "splitter": sentenceFormula,
	})
	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, b)
				return
			}
			var out extractResult
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if out.Verdicts.SelfSplittable != "yes" || out.Verdicts.Disjoint != "yes" {
				errs <- fmt.Errorf("unexpected verdicts %+v", out.Verdicts)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := eng.Stats().PlanCache
	if st.Misses != 1 {
		t.Fatalf("misses = %d: the decision procedures ran more than once", st.Misses)
	}
	if st.Hits+st.Coalesced != n-1 {
		t.Fatalf("hits+coalesced = %d, want %d", st.Hits+st.Coalesced, n-1)
	}
}

// rawStream POSTs the document as a chunked raw body with formulas in
// the query string, the shape that exercises the daemon's streaming
// ingest decision.
func rawStream(t *testing.T, ts *httptest.Server, spanner, splitter, doc string) extractResult {
	t.Helper()
	u := ts.URL + "/v1/extract?spanner=" + url.QueryEscape(spanner) + "&splitter=" + url.QueryEscape(splitter)
	req, err := http.NewRequest("POST", u, &slowChunks{s: doc, n: 3})
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return decodeExtract(t, resp)
}

func TestProvenLocalSplitterStreamsByDefault(t *testing.T) {
	// The sentence splitter is proven local by the plan's verdict, so a
	// daemon with NO -stream-incremental flag must segment the upload
	// incrementally — correctness by proof, not by operator promise —
	// and report it: ingest "streamed", verdict local=yes, and the
	// streamed-documents counter in /v1/stats.
	eng := engine.New(engine.Config{Workers: 2, ChunkSize: 8})
	ts := httptest.NewServer(newServer(eng))
	defer ts.Close()
	got := rawStream(t, ts, emailFormula, sentenceFormula, testDoc)
	if got.Ingest != "streamed" {
		t.Fatalf("default daemon ingest = %q, want streamed (verdicts %+v)", got.Ingest, got.Verdicts)
	}
	if got.Verdicts.Local != "yes" {
		t.Fatalf("verdicts = %+v, want local=yes", got.Verdicts)
	}
	if want := oneShotTuples(t); !reflect.DeepEqual(got.Tuples, want) {
		t.Fatalf("streamed tuples = %v, want one-shot %v", got.Tuples, want)
	}
	st := eng.Stats()
	if st.StreamedDocs != 1 || st.StreamForced {
		t.Fatalf("stats = %+v, want exactly one streamed document and no force flag", st)
	}
}

func TestUnprovenSplitterBuffersByDefault(t *testing.T) {
	// A disjoint splitter the locality procedure refuses ('.'-separated
	// blocks minus the first) must be buffered whole unless the operator
	// forces streaming; either way the ingest mode is reported.
	const nonLocalSplitter = `[^.]*\.([^.]*\.)*(x{[^.]*})(\.[^.]*)*`
	const doc = "x@y.a@b.c@d."
	def := httptest.NewServer(newServer(engine.New(engine.Config{Workers: 2, ChunkSize: 8})))
	defer def.Close()
	buffered := rawStream(t, def, emailFormula, nonLocalSplitter, doc)
	if buffered.Ingest != "buffered" {
		t.Fatalf("default daemon ingest = %q, want buffered (verdicts %+v)", buffered.Ingest, buffered.Verdicts)
	}
	if buffered.Verdicts.Disjoint != "yes" || buffered.Verdicts.Local != "no" {
		t.Fatalf("verdicts = %+v, want disjoint=yes local=no", buffered.Verdicts)
	}
}

func TestExtractInlineDocOverBudgetIs413(t *testing.T) {
	// Regression: the inline JSON path previously bypassed MaxDocBuffer
	// (only the reader paths enforced it), so an engine budget did not
	// bound this endpoint's memory.
	ts := httptest.NewServer(newServer(engine.New(engine.Config{Workers: 2, MaxDocBuffer: 128})))
	defer ts.Close()
	body, _ := json.Marshal(map[string]string{
		"spanner": emailFormula,
		"doc":     strings.Repeat("x", 256),
	})
	resp, err := http.Post(ts.URL+"/v1/extract", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d (%s), want 413", resp.StatusCode, b)
	}
	// An in-budget document on the same daemon still extracts.
	body, _ = json.Marshal(map[string]string{"spanner": emailFormula, "doc": testDoc})
	resp, err = http.Post(ts.URL+"/v1/extract", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeExtract(t, resp); got.Count == 0 {
		t.Fatal("in-budget document extracted nothing")
	}
}

func TestExtractBadFormula(t *testing.T) {
	ts := startDaemon(t)
	body, _ := json.Marshal(map[string]string{"spanner": "y{[", "doc": "x"})
	resp, err := http.Post(ts.URL+"/v1/extract", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
