package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAdmitUpToTokens admits exactly Tokens requests without queueing.
func TestAdmitUpToTokens(t *testing.T) {
	l := New(Config{Tokens: 3, Queue: -1})
	var releases []func()
	for i := 0; i < 3; i++ {
		rel, err := l.Acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		releases = append(releases, rel)
	}
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("4th acquire with no queue: err = %v, want ErrQueueFull", err)
	}
	releases[0]()
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	rel()
	for _, r := range releases[1:] {
		r()
	}
	if got := l.Snapshot(); got.InUse != 0 || got.ShedFull != 1 || got.Admitted != 4 {
		t.Fatalf("snapshot = %+v, want in_use 0, shed_full 1, admitted 4", got)
	}
}

// TestQueueFIFO checks waiters are granted in arrival order.
func TestQueueFIFO(t *testing.T) {
	l := New(Config{Tokens: 1, Queue: 8, MaxWait: time.Minute})
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	order := make(chan int, n)
	var started sync.WaitGroup
	var done sync.WaitGroup
	for i := 0; i < n; i++ {
		started.Add(1)
		done.Add(1)
		go func(id int) {
			defer done.Done()
			// Serialize enqueue order: waiter id enters the queue before
			// waiter id+1 starts.
			r, err := l.Acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", id, err)
				return
			}
			order <- id
			r()
		}(i)
		// Wait until this waiter is actually queued before starting the
		// next, so arrival order is deterministic.
		waitFor(t, func() bool { return l.Depth.Load() == int64(i+1) })
		started.Done()
	}
	started.Wait()
	rel()
	done.Wait()
	close(order)
	want := 0
	for id := range order {
		if id != want {
			t.Fatalf("grant order: got waiter %d, want %d", id, want)
		}
		want++
	}
	if want != n {
		t.Fatalf("granted %d waiters, want %d", want, n)
	}
}

// TestShedWhenQueueFull sheds immediately once the queue is at capacity.
func TestShedWhenQueueFull(t *testing.T) {
	l := New(Config{Tokens: 1, Queue: 2, MaxWait: time.Minute})
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			r, err := l.Acquire(context.Background())
			if err == nil {
				defer r()
			}
			errs <- err
		}()
	}
	waitFor(t, func() bool { return l.Depth.Load() == 2 })
	t0 := time.Now()
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if d := time.Since(t0); d > 100*time.Millisecond {
		t.Fatalf("full-queue shed took %v; must not wait", d)
	}
	rel()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("queued waiter: %v", err)
		}
	}
}

// TestQueueAgeShed sheds a queued request once its wait budget runs out,
// without granting it.
func TestQueueAgeShed(t *testing.T) {
	l := New(Config{Tokens: 1, Queue: 4, MaxWait: 30 * time.Millisecond})
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	_, err = l.Acquire(context.Background())
	if !errors.Is(err, ErrQueueAged) {
		t.Fatalf("err = %v, want ErrQueueAged", err)
	}
	if d := time.Since(t0); d < 25*time.Millisecond || d > 2*time.Second {
		t.Fatalf("aged shed after %v, want ≈30ms", d)
	}
	// The shed waiter must be gone: releasing now must free the token,
	// not grant a ghost.
	rel()
	r2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after aged shed: %v", err)
	}
	r2()
	if got := l.Snapshot(); got.ShedAged != 1 || got.InUse != 0 {
		t.Fatalf("snapshot = %+v, want shed_aged 1, in_use 0", got)
	}
}

// TestDeadlineBudget uses the context deadline when it is nearer than
// MaxWait.
func TestDeadlineBudget(t *testing.T) {
	l := New(Config{Tokens: 1, Queue: 4, MaxWait: time.Minute})
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err = l.Acquire(ctx)
	if !errors.Is(err, ErrQueueAged) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrQueueAged or DeadlineExceeded", err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("deadline-budget shed took %v", d)
	}
}

// TestCancelWhileQueued returns the context error and removes the
// waiter.
func TestCancelWhileQueued(t *testing.T) {
	l := New(Config{Tokens: 1, Queue: 4, MaxWait: time.Minute})
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx)
		errs <- err
	}()
	waitFor(t, func() bool { return l.Depth.Load() == 1 })
	cancel()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	rel()
	r2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after cancelled waiter: %v", err)
	}
	r2()
	if got := l.Snapshot(); got.InUse != 0 || got.ShedCancel != 1 {
		t.Fatalf("snapshot = %+v, want in_use 0, shed_cancel 1", got)
	}
}

// TestDoubleReleaseIsNoop: calling release twice must not mint tokens.
func TestDoubleReleaseIsNoop(t *testing.T) {
	l := New(Config{Tokens: 1, Queue: -1})
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel()
	r1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("double release minted a token: err = %v, want ErrQueueFull", err)
	}
}

// TestNeverShedAndExecuted hammers the limiter with short-budget
// acquires under the race detector and checks the core invariant: every
// Acquire either errors (shed) or returns a usable token, never both,
// and tokens are conserved — concurrent holders never exceed Tokens and
// all tokens return after the storm.
func TestNeverShedAndExecuted(t *testing.T) {
	const tokens = 4
	l := New(Config{Tokens: tokens, Queue: 8, MaxWait: 2 * time.Millisecond})
	var executing atomic.Int64
	var admitted, shed atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rel, err := l.Acquire(context.Background())
				if err != nil {
					if !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrQueueAged) {
						t.Errorf("unexpected shed error: %v", err)
					}
					shed.Add(1)
					continue
				}
				if n := executing.Add(1); n > tokens {
					t.Errorf("%d concurrent holders, limit %d", n, tokens)
				}
				admitted.Add(1)
				time.Sleep(50 * time.Microsecond)
				executing.Add(-1)
				rel()
			}
		}()
	}
	wg.Wait()
	if executing.Load() != 0 {
		t.Fatalf("%d holders left after the storm", executing.Load())
	}
	if got := l.Snapshot(); got.InUse != 0 {
		t.Fatalf("in_use = %d after all releases", got.InUse)
	}
	if admitted.Load() == 0 || shed.Load() == 0 {
		t.Fatalf("storm did not oscillate: admitted %d, shed %d", admitted.Load(), shed.Load())
	}
	if s := l.Snapshot(); s.Admitted != admitted.Load() || s.ShedFull+s.ShedAged != shed.Load() {
		t.Fatalf("counter drift: snapshot %+v vs observed admitted %d shed %d", s, admitted.Load(), shed.Load())
	}
}

// TestRetryAfterBounds keeps the hint within [1s, 60s].
func TestRetryAfterBounds(t *testing.T) {
	l := New(Config{Tokens: 1, Queue: 4})
	if d := l.RetryAfter(); d < time.Second || d > time.Minute {
		t.Fatalf("idle RetryAfter = %v, want within [1s, 60s]", d)
	}
	l.observeService(10 * time.Minute) // absurd service time must clamp
	if d := l.RetryAfter(); d != time.Minute {
		t.Fatalf("RetryAfter = %v, want clamped to 60s", d)
	}
}

// waitFor polls cond for up to 5 s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
