package core

import (
	"strings"
	"testing"

	"repro/internal/regexformula"
	"repro/internal/span"
)

// FuzzPrefilterVsScan is the literal prefilter's correctness contract:
// on every formula the fuzzer can derive (the same seven families
// FuzzScanVsSplit explores), an automaton evaluated and streamed WITH
// the prefilter — factor admission gate plus trigger-byte skip loops in
// EvalBool, the forward scan and the splitter scanner — must be
// byte-identical to a prefilter-disabled copy: same relations, same
// Boolean verdicts, same split spans, and in chunked streaming the same
// spans, the same retention Anchor and the same bail decision after
// every single Feed. Chunk sizes 1 and 7 force skip streaks to span
// chunk boundaries; 4096 exercises whole-chunk jumps.
func FuzzPrefilterVsScan(f *testing.F) {
	longGap := strings.Repeat(" ", 700)
	f.Add(uint8(0), byte(0), byte(1), int64(1), "one. two! three\nfour.")
	f.Add(uint8(1), byte(4), byte(3), int64(2), "a b  c\nd ")
	f.Add(uint8(2), byte(1), byte(1), int64(3), "a;b;;c")
	f.Add(uint8(3), byte(0), byte(0), int64(4), "a.b.c.d")
	f.Add(uint8(4), byte(0), byte(2), int64(5), "ab.cd!e")
	f.Add(uint8(5), byte(2), byte(2), int64(6), "ab!cd!")
	f.Add(uint8(6), byte(5), byte(6), int64(7), "abba\x00\xffb")
	// Factor lands exactly on a 7-byte chunk boundary after a skippable gap.
	f.Add(uint8(0), byte(0), byte(1), int64(8), strings.Repeat("x", 7*3)+". tail")
	// Factor-free document: the admission gate must agree with the scan.
	f.Add(uint8(2), byte(1), byte(1), int64(9), longGap)
	// Long separator-free run: streaks cross many chunk boundaries.
	f.Add(uint8(1), byte(4), byte(3), int64(10), longGap+"w."+longGap)
	f.Fuzz(func(t *testing.T, mode uint8, c1, c2 byte, seed int64, doc string) {
		// Cap the document: the differential runs whole-document Eval twice,
		// whose worst case is quadratic, and a short-timed CI smoke should
		// spend its budget on many inputs rather than one adversarial doc.
		if len(doc) > 1<<11 {
			doc = doc[:1<<11]
		}
		src := scanFuzzFormula(mode, c1, c2, seed)
		onAuto, err := regexformula.Compile(src)
		if err != nil || onAuto.Arity() != 1 {
			t.Skip()
		}
		offAuto := regexformula.MustCompile(src)
		offAuto.DisablePrefilter()

		if g, w := onAuto.EvalBool(doc), offAuto.EvalBool(doc); g != w {
			t.Fatalf("EvalBool: filtered=%v unfiltered=%v on %q\nformula %s", g, w, doc, src)
		}
		if g, w := onAuto.Eval(doc), offAuto.Eval(doc); !g.Equal(w) {
			t.Fatalf("Eval differs on %q\nformula %s\nfiltered:   %v\nunfiltered: %v", doc, src, g, w)
		}

		on, err := NewSplitter(onAuto)
		if err != nil {
			t.Skip()
		}
		off, err := NewSplitter(offAuto)
		if err != nil {
			t.Fatalf("NewSplitter succeeded filtered but failed unfiltered: %v", err)
		}
		if g, w := on.Split(doc), off.Split(doc); !spansEqual(g, w) {
			t.Fatalf("Split differs on %q\nformula %s\nfiltered:   %v\nunfiltered: %v", doc, src, g, w)
		}

		onRun, have := on.NewScanRun()
		offRun, haveOff := off.NewScanRun()
		if have != haveOff {
			t.Fatalf("NewScanRun: filtered=%v unfiltered=%v\nformula %s", have, haveOff, src)
		}
		if !have {
			return // not disjoint: no scanner to stream with
		}
		for _, n := range []int{1, 7, 4096} {
			if n > 1 {
				onRun, _ = on.NewScanRun()
				offRun, _ = off.NewScanRun()
			}
			var gotOn, gotOff []span.Span
			okOn, okOff := true, true
			for lo := 0; lo < len(doc); lo += n {
				hi := lo + n
				if hi > len(doc) {
					hi = len(doc)
				}
				gotOn, okOn = onRun.Feed([]byte(doc[lo:hi]), gotOn)
				gotOff, okOff = offRun.Feed([]byte(doc[lo:hi]), gotOff)
				if okOn != okOff || !spansEqual(gotOn, gotOff) || onRun.Anchor() != offRun.Anchor() {
					t.Fatalf("chunked scan (n=%d) diverged after byte %d on %q\nformula %s\n"+
						"filtered:   ok=%v anchor=%d %v\nunfiltered: ok=%v anchor=%d %v",
						n, hi, doc, src, okOn, onRun.Anchor(), gotOn, okOff, offRun.Anchor(), gotOff)
				}
				if !okOn {
					break
				}
			}
			if okOn {
				gotOn, okOn = onRun.Flush(gotOn)
				gotOff, okOff = offRun.Flush(gotOff)
				if okOn != okOff || !spansEqual(gotOn, gotOff) {
					t.Fatalf("Flush (n=%d) diverged on %q\nformula %s\nfiltered:   ok=%v %v\nunfiltered: ok=%v %v",
						n, doc, src, okOn, gotOn, okOff, gotOff)
				}
			}
		}
	})
}
