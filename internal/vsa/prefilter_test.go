package vsa

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/alphabet"
)

// buildAnchoredAB builds the unary automaton for a·b·Σ* with x spanning
// the "ab": every accepted document starts with the literal "ab".
func buildAnchoredAB(t *testing.T) *Automaton {
	t.Helper()
	a := NewAutomaton("x")
	mid := a.AddState()
	post := a.AddState()
	a.AddEdge(0, Open(0), alphabet.Of('a'), mid)
	a.AddEdge(mid, Close(0), alphabet.Of('b'), post)
	a.AddFinal(post, 0)
	a.AddEdge(post, 0, alphabet.Any, post)
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return a
}

// buildUnanchoredAB builds Σ*·a·b·Σ*: the factor "ab" is mandatory but
// may appear anywhere, so both the admission gate and the scan-time
// trigger skip are exercised.
func buildUnanchoredAB(t *testing.T) *Automaton {
	t.Helper()
	a := NewAutomaton("x")
	mid := a.AddState()
	post := a.AddState()
	a.AddEdge(0, 0, alphabet.Any, 0)
	a.AddEdge(0, Open(0), alphabet.Of('a'), mid)
	a.AddEdge(mid, Close(0), alphabet.Of('b'), post)
	a.AddFinal(post, 0)
	a.AddEdge(post, 0, alphabet.Any, post)
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return a
}

func TestPrefilterFactorAnchored(t *testing.T) {
	pf := buildAnchoredAB(t).Prefilter()
	if pf.Reason != PrefilterOK || pf.Factor != "ab" {
		t.Fatalf("anchored ab: got factor %q reason %v, want \"ab\"/ok", pf.Factor, pf.Reason)
	}
}

func TestPrefilterFactorUnanchored(t *testing.T) {
	pf := buildUnanchoredAB(t).Prefilter()
	if pf.Reason != PrefilterOK || pf.Factor != "ab" {
		t.Fatalf("unanchored ab: got factor %q reason %v, want \"ab\"/ok", pf.Factor, pf.Reason)
	}
}

func TestPrefilterReasonEmptyLanguage(t *testing.T) {
	a := NewAutomaton("x")
	a.AddEdge(0, 0, alphabet.Any, 0) // no finals anywhere
	pf := a.Prefilter()
	if pf.Reason != PrefilterEmptyLanguage || pf.Factor != "" {
		t.Fatalf("got factor %q reason %v, want empty-language", pf.Factor, pf.Reason)
	}
}

func TestPrefilterReasonAcceptsEmpty(t *testing.T) {
	a := NewAutomaton("x")
	a.AddFinal(0, Wrap(0)) // the empty document is accepted
	mid := a.AddState()
	a.AddEdge(0, Wrap(0), alphabet.Of('a'), mid)
	a.AddFinal(mid, 0)
	pf := a.Prefilter()
	if pf.Reason != PrefilterAcceptsEmpty || pf.Factor != "" {
		t.Fatalf("got factor %q reason %v, want accepts-empty", pf.Factor, pf.Reason)
	}
}

func TestPrefilterReasonNoLiteralClass(t *testing.T) {
	a := NewAutomaton("x")
	mid := a.AddState()
	a.AddEdge(0, Wrap(0), alphabet.Of('a', 'b'), mid) // {a,b} is one class: interchangeable
	a.AddFinal(mid, 0)
	pf := a.Prefilter()
	if pf.Reason != PrefilterNoLiteralClass || pf.Factor != "" {
		t.Fatalf("got factor %q reason %v, want no-literal-class", pf.Factor, pf.Reason)
	}
}

func TestPrefilterReasonNoMandatoryByte(t *testing.T) {
	// Language {a, b} via two singleton-class edges: literal bytes exist
	// but each is avoidable through the other branch.
	a := NewAutomaton("x")
	mid := a.AddState()
	a.AddEdge(0, Wrap(0), alphabet.Of('a'), mid)
	a.AddEdge(0, Wrap(0), alphabet.Of('b'), mid)
	a.AddFinal(mid, 0)
	pf := a.Prefilter()
	if pf.Reason != PrefilterNoMandatoryByte || pf.Factor != "" {
		t.Fatalf("got factor %q reason %v, want no-mandatory-byte", pf.Factor, pf.Reason)
	}
}

func TestPrefilterReasonBudget(t *testing.T) {
	// A long singleton-class chain pushes the (state × position) product
	// past factorBudget on the very first seed check.
	a := NewAutomaton("x")
	n := factorBudget/2 + 2
	prev := 0
	for i := 0; i < n; i++ {
		next := a.AddState()
		ops := OpSet(0)
		switch i {
		case 0:
			ops = Open(0)
		case n - 1:
			ops = Close(0)
		}
		a.AddEdge(prev, ops, alphabet.Of('a'), next)
		prev = next
	}
	a.AddFinal(prev, 0)
	pf := a.Prefilter()
	if pf.Reason != PrefilterBudget || pf.Factor != "" {
		t.Fatalf("got factor %q reason %v, want analysis-budget", pf.Factor, pf.Reason)
	}
}

func TestPrefilterReasonDisabled(t *testing.T) {
	a := buildAnchoredAB(t)
	a.DisablePrefilter()
	pf := a.Prefilter()
	if pf.Reason != PrefilterOff || pf.Factor != "" {
		t.Fatalf("got factor %q reason %v, want disabled", pf.Factor, pf.Reason)
	}
	if !a.PrefilterDisabled() {
		t.Fatal("PrefilterDisabled must report true after DisablePrefilter")
	}
}

func TestPrefilterAlternationCommonFactor(t *testing.T) {
	// (abc|zbc)·Σ*: no single branch byte is mandatory on its own except
	// the shared "bc" tail, which the growth loop must assemble.
	a := NewAutomaton("x")
	m1, m2 := a.AddState(), a.AddState()
	post := a.AddState()
	a.AddEdge(0, Open(0), alphabet.Of('a'), m1)
	a.AddEdge(0, Open(0), alphabet.Of('z'), m1)
	a.AddEdge(m1, 0, alphabet.Of('b'), m2)
	a.AddEdge(m2, Close(0), alphabet.Of('c'), post)
	a.AddFinal(post, 0)
	a.AddEdge(post, 0, alphabet.Any, post)
	pf := a.Prefilter()
	if pf.Reason != PrefilterOK || pf.Factor != "bc" {
		t.Fatalf("got factor %q reason %v, want \"bc\"/ok", pf.Factor, pf.Reason)
	}
}

func TestPrefilterReasonStrings(t *testing.T) {
	want := map[PrefilterReason]string{
		PrefilterOK:              "ok",
		PrefilterOff:             "disabled",
		PrefilterEmptyLanguage:   "empty-language",
		PrefilterAcceptsEmpty:    "accepts-empty",
		PrefilterNoLiteralClass:  "no-literal-class",
		PrefilterNoMandatoryByte: "no-mandatory-byte",
		PrefilterBudget:          "analysis-budget",
	}
	if len(want) != NumPrefilterReasons {
		t.Fatalf("reason table has %d entries, NumPrefilterReasons = %d", len(want), NumPrefilterReasons)
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
}

// TestPrefilterEvalAgreesWithDisabled is the in-package differential:
// the filtered evaluation paths (admission gate + trigger-byte skips in
// EvalBool and the forward scan) must be byte-identical to the same
// automaton with prefiltering disabled, across factor placements that
// land at skip-loop, checkpoint-stride and document boundaries.
func TestPrefilterEvalAgreesWithDisabled(t *testing.T) {
	build := func() *Automaton {
		a := NewAutomaton("x")
		mid := a.AddState()
		post := a.AddState()
		a.AddEdge(0, 0, alphabet.Any, 0)
		a.AddEdge(0, Open(0), alphabet.Of('a'), mid)
		a.AddEdge(mid, Close(0), alphabet.Of('b'), post)
		a.AddFinal(post, 0)
		a.AddEdge(post, 0, alphabet.Any, post)
		return a
	}
	on, off := build(), build()
	off.DisablePrefilter()
	if pf := on.Prefilter(); pf.Factor != "ab" {
		t.Fatalf("expected factor \"ab\", got %+v", pf)
	}
	filler := strings.Repeat(".", 4096)
	docs := []string{
		"",
		"ab",
		filler,                      // factor absent: admission gate rejects
		filler + "ab",               // factor at the very end
		"ab" + filler,               // factor at the very start
		filler + "ab" + filler,      // skip on both sides
		filler[:31] + "ab" + filler, // straddles a checkpoint-stride boundary
		filler[:15] + "a" + filler,  // lone 'a' breaks a skip streak, never matches
		strings.Repeat("ab", 300),   // dense: streak never reaches the threshold
	}
	for _, doc := range docs {
		if got, want := on.EvalBool(doc), off.EvalBool(doc); got != want {
			t.Fatalf("EvalBool: filtered=%v unfiltered=%v on %d-byte doc", got, want, len(doc))
		}
		got, want := on.Eval(doc), off.Eval(doc)
		if !got.Equal(want) {
			t.Fatalf("Eval differs on %d-byte doc:\nfiltered:   %v\nunfiltered: %v", len(doc), got, want)
		}
	}
}

// TestPrefilterConcurrentPrepare proves the once-guarded factor
// extraction runs exactly once under concurrent Prepare/Prefilter and
// that every caller observes the same memoized result.
func TestPrefilterConcurrentPrepare(t *testing.T) {
	a := buildUnanchoredAB(t)
	before := prefilterBuilds.Load()
	const workers = 16
	infos := make([]PrefilterInfo, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a.Prepare()
			infos[g] = a.Prefilter()
			// Exercise the filtered paths concurrently too: the skip
			// caches behind them must tolerate parallel first use.
			doc := strings.Repeat(" ", 2048) + "ab" + strings.Repeat(" ", 2048)
			if !a.EvalBool(doc) {
				t.Errorf("goroutine %d: EvalBool = false, want true", g)
			}
		}(g)
	}
	wg.Wait()
	if got := prefilterBuilds.Load() - before; got != 1 {
		t.Fatalf("factor extraction ran %d times under concurrent Prepare, want 1", got)
	}
	for g, info := range infos {
		if info != infos[0] {
			t.Fatalf("goroutine %d observed %+v, goroutine 0 observed %+v", g, info, infos[0])
		}
	}
	if infos[0].Reason != PrefilterOK || infos[0].Factor != "ab" {
		t.Fatalf("memoized info = %+v, want \"ab\"/ok", infos[0])
	}
}
