package lazydfa

import (
	"math/rand"
	"sync"
	"testing"
)

// testNFA is a tiny nondeterministic automaton over classes {0, 1}
// recognizing strings whose last two symbols are "0 1" (the classic
// ..·0·1 pattern that forces genuine subset construction).
type testNFA struct{}

func (testNFA) succ(q int32, c uint8, emit func(int32)) {
	// state 0: loops on everything, guesses the 0 before the final 1;
	// state 1: saw the 0, wants a 1; state 2: accepting sink-less end.
	switch q {
	case 0:
		emit(0)
		if c == 0 {
			emit(1)
		}
	case 1:
		if c == 1 {
			emit(2)
		}
	}
}

func newTestDFA(max int, payloads *int) *DFA[bool] {
	return New(Config[bool]{
		Classes:   2,
		States:    3,
		MaxStates: max,
		Succ:      testNFA{}.succ,
		Payload: func(set []int32) bool {
			if payloads != nil {
				*payloads++
			}
			for _, q := range set {
				if q == 2 {
					return true
				}
			}
			return false
		},
	})
}

func runWalk(d *DFA[bool], start int32, input []uint8) bool {
	w := d.Walk()
	defer w.Release()
	cur := start
	for i, c := range input {
		if i%3 == 2 {
			w.Yield()
		}
		t := w.States[cur].Trans(c)
		if t == Unknown {
			t = w.Resolve(cur, c)
		}
		if t == Overflow {
			panic("unexpected overflow")
		}
		cur = t
	}
	return w.States[cur].Payload
}

func refAccept(input []uint8) bool {
	return len(input) >= 2 && input[len(input)-2] == 0 && input[len(input)-1] == 1
}

func TestWalkMatchesReference(t *testing.T) {
	d := newTestDFA(0, nil)
	start := d.Intern([]int32{0})
	if start != 1 {
		t.Fatalf("start interned as %d, want 1", start)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		input := make([]uint8, rng.Intn(12))
		for i := range input {
			input[i] = uint8(rng.Intn(2))
		}
		if got, want := runWalk(d, start, input), refAccept(input); got != want {
			t.Fatalf("input %v: accept=%v, want %v", input, got, want)
		}
	}
}

func TestPayloadComputedOncePerState(t *testing.T) {
	var payloads int
	d := newTestDFA(0, &payloads)
	start := d.Intern([]int32{0})
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		input := make([]uint8, rng.Intn(10))
		for i := range input {
			input[i] = uint8(rng.Intn(2))
		}
		runWalk(d, start, input)
	}
	if n := d.Len(); payloads != n {
		t.Fatalf("payload ran %d times for %d states", payloads, n)
	}
	if d.Len() > 1<<3 {
		t.Fatalf("subset construction of a 3-state NFA materialized %d states", d.Len())
	}
}

func TestInternDeduplicatesAndEmptyIsDead(t *testing.T) {
	d := newTestDFA(0, nil)
	if got := d.Intern(nil); got != Dead {
		t.Fatalf("Intern(∅) = %d, want Dead", got)
	}
	a := d.Intern([]int32{0, 2})
	b := d.Intern([]int32{0, 2})
	if a != b {
		t.Fatalf("Intern not deduplicating: %d vs %d", a, b)
	}
}

func TestDeadLoops(t *testing.T) {
	d := newTestDFA(0, nil)
	w := d.Walk()
	defer w.Release()
	for c := uint8(0); c < 2; c++ {
		if t2 := w.States[Dead].Trans(c); t2 != Dead {
			t.Fatalf("Dead.Trans(%d) = %d, want Dead", c, t2)
		}
	}
}

func TestOverflowSentinelIsCached(t *testing.T) {
	d := newTestDFA(2, nil) // room for Dead + start only
	start := d.Intern([]int32{0})
	w := d.Walk()
	defer w.Release()
	if t2 := w.Resolve(start, 0); t2 != Overflow {
		t.Fatalf("Resolve past bound = %d, want Overflow", t2)
	}
	if t2 := w.States[start].Trans(0); t2 != Overflow {
		t.Fatalf("Overflow not cached: Trans = %d", t2)
	}
}

func TestSeedInjection(t *testing.T) {
	d := newTestDFA(0, nil)
	seed := d.Seed([]int32{1})
	empty := d.Seed(nil)
	start := d.Intern([]int32{0})
	w := d.Walk()
	defer w.Release()
	got := w.Inject(start, seed)
	if got == Overflow || got == Dead {
		t.Fatalf("Inject = %d", got)
	}
	wantSet := []int32{0, 1}
	if s := w.States[got].Set; len(s) != 2 || s[0] != wantSet[0] || s[1] != wantSet[1] {
		t.Fatalf("injected set = %v, want %v", s, wantSet)
	}
	if again := w.Inject(start, seed); again != got {
		t.Fatalf("injection not cached: %d vs %d", again, got)
	}
	// Injecting an empty seed into Dead stays Dead.
	if got := w.Inject(Dead, empty); got != Dead {
		t.Fatalf("Inject(Dead, ∅) = %d, want Dead", got)
	}
}

// TestConcurrentWalks exercises the RLock-walk/Lock-fill discipline
// under the race detector: many goroutines warming one cache.
func TestConcurrentWalks(t *testing.T) {
	d := newTestDFA(0, nil)
	start := d.Intern([]int32{0})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 300; trial++ {
				input := make([]uint8, rng.Intn(16))
				for i := range input {
					input[i] = uint8(rng.Intn(2))
				}
				if got, want := runWalk(d, start, input), refAccept(input); got != want {
					t.Errorf("input %v: accept=%v, want %v", input, got, want)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}
