package engine

import (
	"context"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/library"
	"repro/internal/parallel"
)

// Formula counterparts of the library definitions, exercised through the
// engine's string-keyed plan cache.
const (
	emailFormula    = `(.*[^a-z0-9])?(y{[a-z0-9]+@[a-z0-9]+})([^a-z0-9].*)?`
	sentenceFormula = "(x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*|" +
		"[^.!?\\n]*([.!?\\n][^.!?\\n]*)*[.!?\\n](x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*"
)

const emailDoc = "write to ann@example or bob@corp. then ping eve@host! done."

func newTestEngine() *Engine {
	// No StreamIncremental override: the library splitters used by these
	// tests are proven local by the plan's verdict, so the streaming
	// paths the tests exercise are the ones real deployments get by
	// default.
	return New(Config{Workers: 4, Batch: 2, ChunkSize: 7, PlanCache: 8})
}

func mustPlan(t *testing.T, e *Engine, req Request) *Plan {
	t.Helper()
	plan, _, err := e.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestPlanSelectsSplitStrategy(t *testing.T) {
	e := newTestEngine()
	plan := mustPlan(t, e, Request{Spanner: emailFormula, Splitter: sentenceFormula})
	if plan.Strategy != StrategySplit {
		t.Fatalf("strategy = %v, want split-parallel (verdicts %+v)", plan.Strategy, plan.Verdicts)
	}
	if plan.Verdicts.SelfSplittable != core.VerdictYes || plan.Verdicts.Disjoint != core.VerdictYes {
		t.Fatalf("verdicts = %+v, want self-splittable and disjoint", plan.Verdicts)
	}
	if plan.Verdicts.Local != core.VerdictYes {
		t.Fatalf("verdicts = %+v, want a locality proof for the sentence splitter", plan.Verdicts)
	}
}

func TestExtractMatchesDirectEval(t *testing.T) {
	e := newTestEngine()
	plan := mustPlan(t, e, Request{Spanner: emailFormula, Splitter: sentenceFormula})
	got, err := e.Extract(context.Background(), plan, emailDoc)
	if err != nil {
		t.Fatal(err)
	}
	want := plan.Spanner().Eval(emailDoc)
	if !got.Equal(want) {
		t.Fatalf("split extract %v != direct eval %v", got, want)
	}
	if got.Len() != 3 {
		t.Fatalf("expected 3 emails, got %v", got)
	}
}

func TestExtractEmptyDocument(t *testing.T) {
	e := newTestEngine()
	plan := mustPlan(t, e, Request{Spanner: emailFormula, Splitter: sentenceFormula})
	got, err := e.Extract(context.Background(), plan, "")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty document yielded %v", got)
	}
	// Streaming an empty reader must agree.
	streamed, err := e.ExtractReader(context.Background(), plan, strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if !streamed.Equal(got) {
		t.Fatalf("streamed empty doc %v != one-shot %v", streamed, got)
	}
}

func TestExtractZeroSegments(t *testing.T) {
	// A splitter that selects nothing on this document: S(d) = ∅, so
	// split evaluation must produce the empty relation without touching
	// a worker.
	e := newTestEngine()
	plan := mustPlan(t, e, Request{Spanner: `y{b+}`, Splitter: `x{a+}`, SplitSpanner: `y{b+}`})
	// (y{b+}, x{a+}) is vacuously split-correct on no document... the
	// verdict machinery may disagree; force the split strategy to pin
	// down the zero-segment path regardless.
	plan = &Plan{
		Req:      plan.Req,
		p:        plan.p,
		ps:       plan.p,
		s:        plan.s,
		Strategy: StrategySplit,
		Verdicts: core.PlanVerdicts{Disjoint: core.VerdictYes, Local: core.VerdictYes},
	}
	if segs := plan.s.Split("bbb"); len(segs) != 0 {
		t.Fatalf("expected zero segments, got %v", segs)
	}
	got, err := e.Extract(context.Background(), plan, "bbb")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("zero-segment split yielded %v", got)
	}
	streamed, err := e.ExtractReader(context.Background(), plan, strings.NewReader("bbb"))
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Len() != 0 {
		t.Fatalf("zero-segment stream yielded %v", streamed)
	}
}

// fixedChunkReader returns at most n bytes per Read, forcing chunk
// boundaries to land mid-segment.
type fixedChunkReader struct {
	s string
	n int
}

func (r *fixedChunkReader) Read(p []byte) (int, error) {
	if len(r.s) == 0 {
		return 0, io.EOF
	}
	n := r.n
	if n > len(r.s) {
		n = len(r.s)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.s[:n])
	r.s = r.s[n:]
	return n, nil
}

func TestStreamChunkBoundaryMidSegment(t *testing.T) {
	e := newTestEngine()
	plan := mustPlan(t, e, Request{Spanner: emailFormula, Splitter: sentenceFormula})
	want, err := e.Extract(context.Background(), plan, emailDoc)
	if err != nil {
		t.Fatal(err)
	}
	// Every chunk size from 1 (worst case: every boundary mid-segment)
	// to beyond the document length must give identical results.
	for n := 1; n <= len(emailDoc)+1; n++ {
		got, err := e.ExtractReader(context.Background(), plan, &fixedChunkReader{s: emailDoc, n: n})
		if err != nil {
			t.Fatalf("chunk=%d: %v", n, err)
		}
		if !got.Equal(want) {
			t.Fatalf("chunk=%d: streamed %v != one-shot %v", n, got, want)
		}
	}
}

func TestStreamMatchesOneShotOnCorpus(t *testing.T) {
	doc := corpus.Reviews(7, 40)
	joined := strings.Join(doc, "\n")
	e := New(Config{Workers: 4, Batch: 8, ChunkSize: 1 << 10})
	neg := library.NegativeSentiment()
	// Hand-built plan; the Local verdict is honest (the sentence splitter
	// is proven local in TestPlanSelectsSplitStrategy and in core).
	plan := &Plan{
		p:        neg,
		ps:       neg,
		s:        library.Sentences(),
		Strategy: StrategySplit,
		Verdicts: core.PlanVerdicts{Disjoint: core.VerdictYes, SelfSplittable: core.VerdictYes, Local: core.VerdictYes},
	}
	want := parallel.SplitEval(neg, parallel.SegmentsOf(joined, plan.s.Split(joined)), 4)
	got, err := e.ExtractReader(context.Background(), plan, strings.NewReader(joined))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("streamed corpus disagrees with one-shot split eval: %d vs %d tuples", got.Len(), want.Len())
	}
	if got.Len() == 0 {
		t.Fatal("corpus unexpectedly produced no tuples")
	}
}

func TestExtractReaderCancellation(t *testing.T) {
	e := newTestEngine()
	plan := mustPlan(t, e, Request{Spanner: emailFormula, Splitter: sentenceFormula})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.ExtractReader(ctx, plan, strings.NewReader(emailDoc))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSequentialFallbackBuffersStream(t *testing.T) {
	// No splitter: the plan is sequential and ExtractReader must buffer
	// the stream and still agree with direct evaluation.
	e := newTestEngine()
	plan := mustPlan(t, e, Request{Spanner: emailFormula})
	if plan.Strategy != StrategySequential {
		t.Fatalf("strategy = %v, want sequential", plan.Strategy)
	}
	got, err := e.ExtractReader(context.Background(), plan, &fixedChunkReader{s: emailDoc, n: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.Spanner().Eval(emailDoc)
	if !got.Equal(want) {
		t.Fatalf("buffered stream %v != direct eval %v", got, want)
	}
}

func TestPlanCacheHitAndStats(t *testing.T) {
	e := newTestEngine()
	req := Request{Spanner: emailFormula, Splitter: sentenceFormula}
	p1, hit1, err := e.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Fatal("first Plan reported a cache hit")
	}
	p2, hit2, err := e.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 || p2 != p1 {
		t.Fatalf("second Plan: hit=%v same=%v, want cached identity", hit2, p2 == p1)
	}
	st := e.Stats()
	if st.PlanCache.Hits != 1 || st.PlanCache.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", st.PlanCache)
	}
}

func TestNonDisjointSplitterStreamsViaBuffer(t *testing.T) {
	// Trigrams are not disjoint; the engine must refuse incremental
	// segmentation and still return correct results by buffering.
	tri := library.NGrams(3)
	if tri.IsDisjoint() {
		t.Fatal("trigrams unexpectedly disjoint")
	}
	ng := tri.Automaton()
	plan := &Plan{
		p:        ng,
		ps:       ng,
		s:        tri,
		Strategy: StrategySplit,
		Verdicts: core.PlanVerdicts{Disjoint: core.VerdictNo},
	}
	e := newTestEngine()
	doc := "one two three four five"
	want := parallel.SplitEval(ng, parallel.SegmentsOf(doc, tri.Split(doc)), 2)
	got, err := e.ExtractReader(context.Background(), plan, &fixedChunkReader{s: doc, n: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("buffered non-disjoint stream %v != one-shot %v", got, want)
	}
}

func TestConcurrentPlansSingleFlight(t *testing.T) {
	e := newTestEngine()
	req := Request{Spanner: emailFormula, Splitter: sentenceFormula}
	const n = 16
	var wg sync.WaitGroup
	plans := make([]*Plan, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, err := e.Plan(context.Background(), req)
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if plans[i] != plans[0] {
			t.Fatal("concurrent identical requests produced distinct plans")
		}
	}
	st := e.Stats().PlanCache
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 compilation", st.Misses)
	}
	if st.Hits+st.Coalesced != n-1 {
		t.Fatalf("hits+coalesced = %d, want %d", st.Hits+st.Coalesced, n-1)
	}
}

func TestMaxDocBufferStreaming(t *testing.T) {
	// A boundary-less document grows the carry-over past the budget; the
	// streaming path must fail with ErrDocTooLarge instead of buffering
	// without bound.
	e := New(Config{Workers: 2, ChunkSize: 8, MaxDocBuffer: 32})
	plan := mustPlan(t, e, Request{Spanner: emailFormula, Splitter: sentenceFormula})
	if !e.WillStream(plan) {
		t.Fatal("expected a streaming plan (the sentence splitter is proven local)")
	}
	noBoundaries := strings.Repeat("a", 128) // no sentence terminator anywhere
	_, err := e.ExtractReader(context.Background(), plan, strings.NewReader(noBoundaries))
	if !errors.Is(err, ErrDocTooLarge) {
		t.Fatalf("err = %v, want ErrDocTooLarge", err)
	}
	// A document of the same length WITH boundaries streams fine: the
	// carry-over stays below the budget.
	withBoundaries := strings.Repeat("aaaaaaa. ", 14)
	if _, err := e.ExtractReader(context.Background(), plan, strings.NewReader(withBoundaries)); err != nil {
		t.Fatalf("bounded stream with boundaries failed: %v", err)
	}
}

func TestMaxDocBufferBuffered(t *testing.T) {
	e := New(Config{Workers: 2, MaxDocBuffer: 16})
	plan := mustPlan(t, e, Request{Spanner: emailFormula}) // sequential: buffers
	_, err := e.ExtractReader(context.Background(), plan, strings.NewReader(strings.Repeat("x", 64)))
	if !errors.Is(err, ErrDocTooLarge) {
		t.Fatalf("err = %v, want ErrDocTooLarge", err)
	}
}

func TestProvenLocalStreamsWithoutOverride(t *testing.T) {
	// The sentence splitter is proven local by the plan's verdict, so a
	// default engine — no StreamIncremental — streams it incrementally,
	// and the streamed-document counter records it.
	e := New(Config{Workers: 2, ChunkSize: 4})
	plan := mustPlan(t, e, Request{Spanner: emailFormula, Splitter: sentenceFormula})
	if plan.Verdicts.Local != core.VerdictYes {
		t.Fatalf("verdicts = %+v, want local=yes", plan.Verdicts)
	}
	if !e.WillStream(plan) {
		t.Fatal("proven-local plan must stream without any override")
	}
	got, err := e.ExtractReader(context.Background(), plan, &fixedChunkReader{s: emailDoc, n: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Extract(context.Background(), plan, emailDoc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("streamed result disagrees with one-shot")
	}
	if st := e.Stats(); st.StreamedDocs != 1 || st.StreamForced {
		t.Fatalf("stats = %+v, want 1 streamed doc and no force flag", st)
	}
}

// nonLocalSplitterFormula is disjoint — every '.'-separated block except
// the first — but not local: a suffix re-split from a cut drops its own
// first block, so the locality procedure must refuse it.
const nonLocalSplitterFormula = `[^.]*\.([^.]*\.)*(x{[^.]*})(\.[^.]*)*`

func TestUnprovenSplitterBuffersUnlessForced(t *testing.T) {
	// A disjoint splitter the procedure cannot prove local must buffer by
	// default; StreamIncremental force-overrides the verdict — the
	// operator's unsafe locality assertion.
	build := func(e *Engine) *Plan {
		base := mustPlan(t, e, Request{Spanner: emailFormula, Splitter: nonLocalSplitterFormula})
		if base.Verdicts.Disjoint != core.VerdictYes {
			t.Fatalf("verdicts = %+v, want a disjoint splitter", base.Verdicts)
		}
		if base.Verdicts.Local != core.VerdictNo {
			t.Fatalf("verdicts = %+v, want local=no", base.Verdicts)
		}
		// The pair is not self-splittable, so force the split strategy to
		// isolate WillStream's locality gate.
		return &Plan{
			Req:      base.Req,
			p:        base.p,
			ps:       base.p,
			s:        base.SplitterOf(),
			Strategy: StrategySplit,
			Verdicts: base.Verdicts,
		}
	}
	def := New(Config{Workers: 2, ChunkSize: 4})
	if def.WillStream(build(def)) {
		t.Fatal("unproven splitter must not stream on a default engine")
	}
	forced := New(Config{Workers: 2, ChunkSize: 4, StreamIncremental: true})
	if !forced.WillStream(build(forced)) {
		t.Fatal("StreamIncremental must force-override the locality verdict")
	}
	if st := forced.Stats(); !st.StreamForced {
		t.Fatalf("stats = %+v, want the force flag echoed", st)
	}
}

func TestMaxDocBufferInline(t *testing.T) {
	// The inline-document path must enforce the same budget as the
	// reader paths (it previously did not, leaving the daemon's JSON
	// path bounded only by the HTTP body limit).
	e := New(Config{Workers: 2, MaxDocBuffer: 16})
	plan := mustPlan(t, e, Request{Spanner: emailFormula, Splitter: sentenceFormula})
	_, err := e.Extract(context.Background(), plan, strings.Repeat("x", 64))
	if !errors.Is(err, ErrDocTooLarge) {
		t.Fatalf("err = %v, want ErrDocTooLarge", err)
	}
	// At or under the budget the document evaluates normally.
	if _, err := e.Extract(context.Background(), plan, "a@b. c@d."); err != nil {
		t.Fatalf("in-budget document failed: %v", err)
	}
	// Unlimited budget (negative) must not reject anything.
	unbounded := New(Config{Workers: 2, MaxDocBuffer: -1})
	plan = mustPlan(t, unbounded, Request{Spanner: emailFormula, Splitter: sentenceFormula})
	if _, err := unbounded.Extract(context.Background(), plan, strings.Repeat("x", 1<<16)); err != nil {
		t.Fatalf("unlimited engine rejected a document: %v", err)
	}
}

func TestCancelledOriginatorDoesNotPoisonWaiters(t *testing.T) {
	// The plan build is detached from the first requester's context: a
	// cancelled originator must not fail later identical requests.
	e := newTestEngine()
	req := Request{Spanner: emailFormula, Splitter: sentenceFormula}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.Plan(ctx, req); err != context.Canceled {
		t.Fatalf("cancelled Plan: err = %v, want context.Canceled", err)
	}
	plan, _, err := e.Plan(context.Background(), req)
	if err != nil || plan == nil {
		t.Fatalf("follow-up Plan failed: plan=%v err=%v", plan, err)
	}
}

// stalledReader blocks in Read until closed — a hung socket stand-in.
type stalledReader struct{ unblock chan struct{} }

func (r *stalledReader) Read(p []byte) (int, error) {
	<-r.unblock
	return 0, io.EOF
}

func TestExtractReaderCancelWithStalledReader(t *testing.T) {
	// Cancellation must unblock ExtractReader even when the reader never
	// returns: the producer goroutine cannot be interrupted mid-Read,
	// but the call itself has to honor ctx.
	e := newTestEngine()
	plan := mustPlan(t, e, Request{Spanner: emailFormula, Splitter: sentenceFormula})
	r := &stalledReader{unblock: make(chan struct{})}
	defer close(r.unblock)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := e.ExtractReader(ctx, plan, r)
		done <- err
	}()
	select {
	case err := <-done:
		// The deadline error must carry both the stdlib sentinel and the
		// engine's typed ErrDeadlineExceeded (the daemon's 504 mapping).
		if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded wrapped in ErrDeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ExtractReader did not return after cancellation with a stalled reader")
	}
}

// trickleStallReader yields its data, then blocks forever — a client
// that opened a streamed upload and went silent without closing it.
type trickleStallReader struct {
	data    []byte
	off     int
	unblock chan struct{}
}

func (r *trickleStallReader) Read(p []byte) (int, error) {
	if r.off < len(r.data) {
		n := copy(p, r.data[r.off:])
		r.off += n
		return n, nil
	}
	<-r.unblock
	return 0, io.EOF
}

func TestExtractReaderStallTimeout(t *testing.T) {
	// With ReadTimeout set, a stream that stops making read progress must
	// fail promptly with the typed ErrReadStalled (the daemon's 408
	// mapping) — on both ingestion paths.
	for _, stream := range []bool{false, true} {
		e := New(Config{Workers: 2, Batch: 4, ReadTimeout: 50 * time.Millisecond})
		req := Request{Spanner: emailFormula}
		if stream {
			req.Splitter = sentenceFormula
		}
		plan := mustPlan(t, e, req)
		if e.WillStream(plan) != stream {
			t.Fatalf("WillStream = %v, want %v", !stream, stream)
		}
		r := &trickleStallReader{data: []byte(emailDoc), unblock: make(chan struct{})}
		done := make(chan error, 1)
		go func() {
			_, err := e.ExtractReader(context.Background(), plan, r)
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, ErrReadStalled) {
				t.Fatalf("stream=%v: err = %v, want ErrReadStalled", stream, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("stream=%v: ExtractReader did not return on a stalled stream", stream)
		}
		close(r.unblock)
	}
}

func TestExtractReaderStallTimeoutNotTriggeredByProgress(t *testing.T) {
	// A slow but progressing stream must NOT trip the guard: the timeout
	// bounds time-to-next-byte, not total transfer time.
	e := New(Config{Workers: 2, ReadTimeout: 80 * time.Millisecond})
	plan := mustPlan(t, e, Request{Spanner: emailFormula, Splitter: sentenceFormula})
	pr, pw := io.Pipe()
	go func() {
		for _, b := range []byte(emailDoc) {
			pw.Write([]byte{b})
			time.Sleep(5 * time.Millisecond) // well under the timeout, total well over it
		}
		pw.Close()
	}()
	rel, err := e.ExtractReader(context.Background(), plan, pr)
	if err != nil {
		t.Fatalf("slow-but-progressing stream failed: %v", err)
	}
	want, werr := e.Extract(context.Background(), plan, emailDoc)
	if werr != nil {
		t.Fatalf("reference Extract: %v", werr)
	}
	if rel.String() != want.String() {
		t.Fatalf("stalled-guarded result diverged:\n got %s\nwant %s", rel, want)
	}
}

func TestRequestWorkersCapsParallelismNotResults(t *testing.T) {
	// A per-request worker budget must not change results, and the
	// snapshot must report it.
	full := New(Config{Workers: 4})
	capped := New(Config{Workers: 4, RequestWorkers: 1})
	if got := capped.Stats().RequestWorkers; got != 1 {
		t.Fatalf("Stats().RequestWorkers = %d, want 1", got)
	}
	req := Request{Spanner: emailFormula, Splitter: sentenceFormula}
	doc := strings.Repeat(emailDoc+" ", 200)
	want, err := full.Extract(context.Background(), mustPlan(t, full, req), doc)
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	got, err := capped.Extract(context.Background(), mustPlan(t, capped, req), doc)
	if err != nil {
		t.Fatalf("capped: %v", err)
	}
	if got.String() != want.String() {
		t.Fatalf("RequestWorkers=1 changed results:\n got %s\nwant %s", got, want)
	}
}
