package corpus

import (
	"strings"
	"testing"
)

func TestDeterminism(t *testing.T) {
	if Wikipedia(1, 1000) != Wikipedia(1, 1000) {
		t.Fatal("Wikipedia must be deterministic per seed")
	}
	if Wikipedia(1, 1000) == Wikipedia(2, 1000) {
		t.Fatal("different seeds must differ")
	}
	a := Reuters(3, 10)
	b := Reuters(3, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Reuters must be deterministic per seed")
		}
	}
}

func TestWikipediaShape(t *testing.T) {
	doc := Wikipedia(7, 5000)
	if len(doc) < 5000 {
		t.Fatalf("corpus too small: %d", len(doc))
	}
	sents := strings.Split(doc, ".")
	if len(sents) < 40 {
		t.Fatalf("too few sentences: %d", len(sents))
	}
	for _, s := range sents[:10] {
		if strings.ContainsAny(s, "!?\n") {
			t.Fatalf("unexpected separators inside sentence %q", s)
		}
	}
}

func TestPubMedVocabulary(t *testing.T) {
	doc := PubMed(5, 3000)
	found := false
	for _, w := range pubmedWords {
		if strings.Contains(doc, w) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("PubMed corpus should use its vocabulary")
	}
}

func TestReutersContainsEvents(t *testing.T) {
	arts := Reuters(11, 200)
	events := 0
	for _, a := range arts {
		events += strings.Count(a, " paid ")
		if !strings.HasSuffix(a, ".") {
			t.Fatal("articles must end with a sentence terminator")
		}
	}
	if events == 0 {
		t.Fatal("some articles must contain payment events")
	}
}

func TestReviewsContainNegativeSentiment(t *testing.T) {
	revs := Reviews(13, 300)
	hits := 0
	for _, r := range revs {
		hits += strings.Count(r, "bad ")
	}
	if hits == 0 {
		t.Fatal("some reviews must contain negative sentiment")
	}
}

func TestHTTPLogShape(t *testing.T) {
	log := HTTPLog(17, 50)
	records := strings.Split(log, ";")
	if len(records) != 50 {
		t.Fatalf("expected 50 records, got %d", len(records))
	}
	gets, posts := 0, 0
	for _, r := range records {
		switch {
		case strings.HasPrefix(r, "get /"):
			gets++
		case strings.HasPrefix(r, "post /"):
			posts++
		default:
			t.Fatalf("malformed record %q", r)
		}
	}
	if gets == 0 || posts == 0 {
		t.Fatalf("expected a mix of methods, got %d gets and %d posts", gets, posts)
	}
}
