package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry binds metric objects to names for export. It never sits on
// the recording path: instrumented components own their Counters,
// Gauges and Histograms as plain struct fields and record into them
// directly; the registry only walks them at scrape time. A series name
// may carry Prometheus labels inline (`http_requests_total{endpoint="/v1/extract"}`);
// label variants of the same base name share one HELP/TYPE header.
type Registry struct {
	mu      sync.Mutex
	entries []entry
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindGaugeFunc
	kindCounterFunc
)

type entry struct {
	name  string // full series name, possibly with {labels}
	help  string
	kind  metricKind
	scale float64 // export multiplier (1e-9 turns nanoseconds into seconds)

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(e entry) {
	if e.scale == 0 {
		e.scale = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, old := range r.entries {
		if old.name == e.name {
			panic("obs: duplicate metric name " + e.name)
		}
	}
	r.entries = append(r.entries, e)
}

// Counter creates and registers a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.BindCounter(name, help, c)
	return c
}

// Gauge creates and registers a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.BindGauge(name, help, g)
	return g
}

// Histogram creates and registers a histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.BindHistogram(name, help, h)
	return h
}

// BindCounter registers an existing counter under name.
func (r *Registry) BindCounter(name, help string, c *Counter) {
	r.add(entry{name: name, help: help, kind: kindCounter, counter: c})
}

// BindDurationCounter registers a counter that accumulates nanoseconds,
// exported in seconds (name should end in _seconds_total).
func (r *Registry) BindDurationCounter(name, help string, c *Counter) {
	r.add(entry{name: name, help: help, kind: kindCounter, counter: c, scale: 1e-9})
}

// BindGauge registers an existing gauge under name.
func (r *Registry) BindGauge(name, help string, g *Gauge) {
	r.add(entry{name: name, help: help, kind: kindGauge, gauge: g})
}

// GaugeFunc registers a gauge computed at scrape time — the bridge for
// values that already live behind someone else's synchronization (the
// plan cache's size under its mutex, process uptime).
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.add(entry{name: name, help: help, kind: kindGaugeFunc, fn: f})
}

// CounterFunc registers a monotone counter computed at scrape time, for
// counters maintained behind someone else's synchronization.
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	r.add(entry{name: name, help: help, kind: kindCounterFunc, fn: f})
}

// BindHistogram registers an existing histogram under name.
func (r *Registry) BindHistogram(name, help string, h *Histogram) {
	r.add(entry{name: name, help: help, kind: kindHistogram, hist: h})
}

// BindDurationHistogram registers a histogram that records nanoseconds,
// exported in seconds (name should end in _seconds).
func (r *Registry) BindDurationHistogram(name, help string, h *Histogram) {
	r.add(entry{name: name, help: help, kind: kindHistogram, hist: h, scale: 1e-9})
}

// baseName strips the inline label section from a series name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// series renders name with extra appended to its label set:
// series(`a{x="1"}`, `le="2"`) = `a{x="1",le="2"}`.
func series(name, extra string) string {
	if extra == "" {
		return name
	}
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + extra + "}"
	}
	return name + "{" + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4). Entries are written in
// registration order, grouped so all label variants of a base name
// follow its single HELP/TYPE header. Histograms are exposed in the
// native cumulative form — `_bucket{le="…"}` lines at the populated
// log₂ bucket bounds plus `le="+Inf"`, `_sum` and `_count` — so any
// Prometheus-compatible scraper can aggregate and quantile them.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := make([]entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()

	// Stable-group label variants by base name, preserving first-seen
	// order, so HELP/TYPE headers are emitted exactly once per family.
	order := map[string]int{}
	for _, e := range entries {
		b := baseName(e.name)
		if _, ok := order[b]; !ok {
			order[b] = len(order)
		}
	}
	sort.SliceStable(entries, func(i, j int) bool {
		return order[baseName(entries[i].name)] < order[baseName(entries[j].name)]
	})

	headered := ""
	for _, e := range entries {
		base := baseName(e.name)
		if base != headered {
			typ := "counter"
			switch e.kind {
			case kindGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			case kindCounterFunc:
				typ = "counter"
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", base, e.help, base, typ); err != nil {
				return err
			}
			headered = base
		}
		var err error
		switch e.kind {
		case kindCounter:
			err = writeLine(w, e.name, float64(e.counter.Load())*e.scale)
		case kindGauge:
			err = writeLine(w, e.name, float64(e.gauge.Load())*e.scale)
		case kindGaugeFunc, kindCounterFunc:
			err = writeLine(w, e.name, e.fn()*e.scale)
		case kindHistogram:
			err = writeHistogram(w, e.name, e.hist.Snapshot(), e.scale)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeLine(w io.Writer, name string, v float64) error {
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
	return err
}

func writeHistogram(w io.Writer, name string, s HistogramSnapshot, scale float64) error {
	base := baseName(name)
	labels := ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		labels = name[i+1 : len(name)-1]
	}
	bucketSeries := func(le string) string {
		inner := `le="` + le + `"`
		if labels != "" {
			inner = labels + "," + inner
		}
		return base + "_bucket{" + inner + "}"
	}
	var cum uint64
	for i, b := range s.Buckets {
		if b == 0 {
			continue
		}
		cum += b
		le := formatFloat(float64(BucketUpper(i)) * scale)
		if err := writeLine(w, bucketSeries(le), float64(cum)); err != nil {
			return err
		}
	}
	// Snapshot reads count before the buckets, so a racing Record can
	// leave the bucket sum one ahead of Count; clamp so the +Inf bucket
	// stays cumulative-monotone and equal to _count.
	total := s.Count
	if cum > total {
		total = cum
	}
	if err := writeLine(w, bucketSeries("+Inf"), float64(total)); err != nil {
		return err
	}
	if err := writeLine(w, series(base+"_sum", labels), float64(s.Sum)*scale); err != nil {
		return err
	}
	return writeLine(w, series(base+"_count", labels), float64(total))
}
