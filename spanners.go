// Package spanners is a Go implementation of the document-spanner
// split-correctness framework of Doleschal, Kimelfeld, Martens, Nahshon
// and Neven, "Split-Correctness in Information Extraction" (PODS 2019).
//
// A Spanner extracts a relation of spans from a document; a Splitter is a
// unary spanner that segments documents (sentences, paragraphs, N-grams,
// HTTP requests, ...). The package decides, for regular spanners given as
// regex formulas or VSet-automata:
//
//   - Split-correctness: is P = P_S ∘ S? (Theorem 5.1; polynomial for
//     deterministic automata and disjoint splitters per Theorem 5.7)
//   - Splittability: does any split-spanner P_S exist? (Theorem 5.15,
//     via the canonical split-spanner of Proposition 5.9)
//   - Self-splittability: is P = P ∘ S? (Theorems 5.16–5.17)
//
// together with the supporting theory (containment, determinization,
// disjointness, the cover condition) and the Section 6–7 extensions
// (splitter commutativity and subsumption, black-box split constraints,
// regular filters, annotated splitters). Once split-correctness is
// established, ParallelEval evaluates the spanner segment-by-segment on
// a work-stealing executor — the use case that motivates the paper.
//
// The subpackages under internal/ implement the machinery; this package
// is the stable façade. See DESIGN.md for the paper-to-code map and
// EXPERIMENTS.md for the reproduced experiments.
package spanners

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/regexformula"
	"repro/internal/span"
	"repro/internal/vsa"
)

// Span is a document interval [Start,End⟩ in the paper's 1-based
// convention.
type Span = span.Span

// Tuple assigns one span per variable, positionally.
type Tuple = span.Tuple

// Relation is a set of tuples over named variables.
type Relation = span.Relation

// Spanner is a compiled regular document spanner.
type Spanner struct {
	auto *vsa.Automaton
}

// Splitter is a compiled unary spanner used for segmentation.
type Splitter struct {
	s *core.Splitter
}

// DefaultLimit bounds the state space of the PSPACE-complete decision
// procedures; ErrTooLarge is returned if it is exceeded.
const DefaultLimit = 0 // 0 selects the library default (about one million states)

// Compile parses and compiles a regex formula (Section 4.1 syntax; see
// package regexformula for the concrete grammar) into a spanner.
func Compile(formula string) (*Spanner, error) {
	a, err := regexformula.Compile(formula)
	if err != nil {
		return nil, err
	}
	return &Spanner{a}, nil
}

// MustCompile is Compile for statically known formulas.
func MustCompile(formula string) *Spanner {
	p, err := Compile(formula)
	if err != nil {
		panic(err)
	}
	return p
}

// FromAutomaton wraps an extended VSet-automaton as a Spanner; the
// automaton is validated.
func FromAutomaton(a *vsa.Automaton) (*Spanner, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &Spanner{a}, nil
}

// Automaton exposes the underlying automaton for advanced use.
func (p *Spanner) Automaton() *vsa.Automaton { return p.auto }

// Vars returns the spanner's variables.
func (p *Spanner) Vars() []string { return append([]string(nil), p.auto.Vars...) }

// Eval returns the span relation extracted from the document.
func (p *Spanner) Eval(doc string) *Relation { return p.auto.Eval(doc) }

// Matches reports whether the spanner produces at least one tuple. It
// runs on the lazily determinized, byte-class-compressed DFA, so repeated
// calls on the same spanner amortize to one table lookup per byte.
func (p *Spanner) Matches(doc string) bool { return p.auto.EvalBool(doc) }

// Prepare warms the spanner's evaluation caches (byte-class table,
// compiled transitions, lazy-DFA start state) so the first Eval/Matches
// call does not pay for building them — useful before handing the spanner
// to a worker pool. Prepare freezes the underlying automaton: mutating it
// afterwards panics.
func (p *Spanner) Prepare() { p.auto.Prepare() }

// Determinize returns an equivalent deterministic spanner
// (Proposition 4.4); exponential in the worst case.
func (p *Spanner) Determinize() (*Spanner, error) {
	d, err := p.auto.Determinize(DefaultLimit)
	if err != nil {
		return nil, err
	}
	return &Spanner{d}, nil
}

// IsDeterministic reports whether the spanner's automaton is
// deterministic in the dfVSA sense of Section 4.2.
func (p *Spanner) IsDeterministic() bool { return p.auto.IsDeterministic() }

// Contains decides ⟦p⟧ ⊆ ⟦q⟧ (Theorem 4.1 / 4.3).
func (p *Spanner) Contains(q *Spanner) (bool, error) {
	return vsa.Contained(q.auto, p.auto, DefaultLimit)
}

// EquivalentTo decides ⟦p⟧ = ⟦q⟧.
func (p *Spanner) EquivalentTo(q *Spanner) (bool, error) {
	return vsa.Equivalent(p.auto, q.auto, DefaultLimit)
}

// Union, Project, Join and Minus expose the spanner algebra of
// Appendix A.
func (p *Spanner) Union(q *Spanner) (*Spanner, error) {
	a, err := algebra.Union(p.auto, q.auto)
	if err != nil {
		return nil, err
	}
	return &Spanner{a}, nil
}

// Project restricts the spanner to the given variables.
func (p *Spanner) Project(vars ...string) (*Spanner, error) {
	a, err := algebra.Project(p.auto, vars)
	if err != nil {
		return nil, err
	}
	return &Spanner{a}, nil
}

// Join returns the natural join p ⋈ q.
func (p *Spanner) Join(q *Spanner) (*Spanner, error) {
	a, err := algebra.Join(p.auto, q.auto)
	if err != nil {
		return nil, err
	}
	return &Spanner{a}, nil
}

// Minus returns the difference p ∖ q.
func (p *Spanner) Minus(q *Spanner) (*Spanner, error) {
	a, err := algebra.Difference(p.auto, q.auto, DefaultLimit)
	if err != nil {
		return nil, err
	}
	return &Spanner{a}, nil
}

// CompileSplitter parses a unary regex formula into a splitter.
func CompileSplitter(formula string) (*Splitter, error) {
	a, err := regexformula.Compile(formula)
	if err != nil {
		return nil, err
	}
	s, err := core.NewSplitter(a)
	if err != nil {
		return nil, err
	}
	return &Splitter{s}, nil
}

// MustCompileSplitter is CompileSplitter for statically known formulas.
func MustCompileSplitter(formula string) *Splitter {
	s, err := CompileSplitter(formula)
	if err != nil {
		panic(err)
	}
	return s
}

// SplitterFrom wraps a unary spanner as a splitter.
func SplitterFrom(p *Spanner) (*Splitter, error) {
	s, err := core.NewSplitter(p.auto)
	if err != nil {
		return nil, err
	}
	return &Splitter{s}, nil
}

// WrapSplitter wraps an internal core splitter (used by the library
// subpackage helpers).
func WrapSplitter(s *core.Splitter) *Splitter { return &Splitter{s} }

// Core exposes the underlying core splitter.
func (s *Splitter) Core() *core.Splitter { return s.s }

// Split returns the spans S(d).
func (s *Splitter) Split(doc string) []Span { return s.s.Split(doc) }

// Segments returns the selected substrings with their spans.
func (s *Splitter) Segments(doc string) []core.Segment { return s.s.Segments(doc) }

// IsDisjoint decides whether all splits are pairwise disjoint
// (Proposition 5.5).
func (s *Splitter) IsDisjoint() bool { return s.s.IsDisjoint() }

// IsLocal decides whether the splitter provably supports incremental
// chunked segmentation: splitting a document chunk-at-a-time with
// carry-over (the streaming engine's segmenter) is guaranteed
// byte-identical to splitting it whole, for every document and every
// chunking. Only disjoint splitters can be local. The procedure is
// sound but incomplete: true is a machine-checked proof and licenses
// streaming; false means no proof was found and the engine will buffer
// (or the operator may force streaming at their own risk via
// EngineConfig.StreamIncremental). ErrTooLarge reports a state-budget
// overflow, i.e. an unknown verdict. See internal/core/locality.go for
// the decided property and the procedure.
func (s *Splitter) IsLocal() (bool, error) { return s.s.IsLocal(DefaultLimit) }

// Compose returns the spanner P_S ∘ S (Section 3, Lemma C.2).
func Compose(ps *Spanner, s *Splitter) *Spanner {
	return &Spanner{core.Compose(ps.auto, s.s)}
}

// SplitCorrect decides P = P_S ∘ S, automatically using the polynomial
// Theorem 5.7 procedure when the inputs are deterministic and the
// splitter disjoint, and the general Theorem 5.1 procedure otherwise.
func SplitCorrect(p, ps *Spanner, s *Splitter) (bool, error) {
	return core.SplitCorrectAuto(p.auto, ps.auto, s.s, DefaultLimit)
}

// SplitCorrectWitness is SplitCorrect returning, on failure, a document
// on which P and P_S ∘ S disagree — the debugging use case of Section 1.
func SplitCorrectWitness(p, ps *Spanner, s *Splitter) (ok bool, witness string, err error) {
	return core.SplitCorrectWitness(p.auto, ps.auto, s.s, DefaultLimit)
}

// SelfSplittable decides P = P ∘ S (Theorems 5.16–5.17).
func SelfSplittable(p *Spanner, s *Splitter) (bool, error) {
	if p.auto.Arity() > 0 && p.auto.IsDeterministic() &&
		s.s.Automaton().IsDeterministic() && s.s.IsDisjoint() {
		return core.SelfSplittablePoly(p.auto, s.s)
	}
	return core.SelfSplittable(p.auto, s.s, DefaultLimit)
}

// Splittable decides whether any split-spanner makes P split-correct for
// the disjoint splitter S (Theorem 5.15); on success the canonical
// split-spanner (Proposition 5.9) is returned as the witness.
func Splittable(p *Spanner, s *Splitter) (bool, *Spanner, error) {
	ok, can, err := core.Splittable(p.auto, s.s, DefaultLimit)
	if err != nil || !ok {
		return false, nil, err
	}
	return true, &Spanner{can}, nil
}

// Canonical returns the canonical split-spanner P_S^can of
// Proposition 5.9.
func Canonical(p *Spanner, s *Splitter) *Spanner {
	return &Spanner{core.Canonical(p.auto, s.s)}
}

// CoverCondition decides Definition 5.2: every output tuple of P is
// contained in some split of S.
func CoverCondition(p *Spanner, s *Splitter) (bool, error) {
	return core.CoverCondition(p.auto, s.s, DefaultLimit)
}

// ParallelEval evaluates the split-spanner ps over the segments of s on
// the given number of workers (≤ 0 means GOMAXPROCS) and returns the
// shifted union — the split-then-distribute evaluation of Section 1,
// run on the work-stealing executor of internal/parallel. The result is
// sorted and deduplicated, and is byte-identical for every worker
// count. It is the caller's responsibility (or SplitCorrect's) to
// ensure the plan is equivalent to direct evaluation.
func ParallelEval(ps *Spanner, s *Splitter, doc string, workers int) *Relation {
	segs := parallel.SegmentsOf(doc, s.Split(doc))
	return parallel.SplitEval(ps.auto, segs, workers)
}

// Validate re-checks the spanner's internal invariants; useful after
// hand-building automata.
func (p *Spanner) Validate() error { return p.auto.Validate() }

// String renders a short description.
func (p *Spanner) String() string {
	return fmt.Sprintf("spanner(vars=%v, states=%d)", p.auto.Vars, p.auto.NumStates())
}

func (s *Splitter) String() string {
	return fmt.Sprintf("splitter(var=%s, states=%d)", s.s.Var(), s.s.Automaton().NumStates())
}
