package main

import (
	"strings"
	"testing"
)

func TestResolveExperiment(t *testing.T) {
	exps, order := experiments()
	if len(exps) != len(order) {
		t.Fatalf("registry has %d experiments but order lists %d", len(exps), len(order))
	}
	for _, id := range order {
		if _, ok := exps[id]; !ok {
			t.Fatalf("order entry %q missing from the registry", id)
		}
		mixed := strings.ToLower(id[:1]) + id[1:] // e.g. "eVAL", "pREFILTER"
		for _, name := range []string{id, strings.ToLower(id), mixed} {
			run, err := resolveExperiment(name, exps, order)
			if err != nil || run == nil {
				t.Fatalf("resolveExperiment(%q) = %v, want the %s experiment", name, err, id)
			}
		}
	}
	for _, bad := range []string{"", "EVALX", "bogus", "PRE FILTER", "all "} {
		run, err := resolveExperiment(bad, exps, order)
		if err == nil || run != nil {
			t.Fatalf("resolveExperiment(%q) must be a hard error", bad)
		}
		msg := err.Error()
		if !strings.Contains(msg, "valid experiments are") {
			t.Fatalf("error for %q must list the valid experiments, got: %s", bad, msg)
		}
		for _, id := range order {
			if !strings.Contains(msg, id) {
				t.Fatalf("error for %q omits experiment %s: %s", bad, id, msg)
			}
		}
	}
}
