package vsa

import (
	"encoding/binary"
	"sort"
	"strconv"
	"strings"

	"repro/internal/alphabet"
	"repro/internal/span"
)

// partial is an in-progress variable assignment during evaluation:
// two int32 slots per variable (open position, close position), 0 = unset.
// Positions are the paper's 1-based span endpoints.
type partial []int32

func (p partial) apply(ops OpSet, boundary int, numVars int) partial {
	if ops == 0 {
		return p
	}
	out := make(partial, len(p))
	copy(out, p)
	for v := 0; v < numVars; v++ {
		if ops.OpensVar(v) {
			out[2*v] = int32(boundary + 1)
		}
		if ops.ClosesVar(v) {
			out[2*v+1] = int32(boundary + 1)
		}
	}
	return out
}

// suffixUniversality lazily computes, per state, whether every possible
// suffix is accepted from that state without further variable operations.
// When a completed assignment reaches such a state it can be emitted
// immediately and dropped, which keeps evaluation linear for the common
// "prefix · extraction · Σ*" spanner shape instead of carrying every
// completed tuple to the end of the document. Computing it freezes the
// automaton (see AddEdge).
func (a *Automaton) suffixUniversality() []bool {
	a.suffixOnce.Do(func() {
		a.frozen.Store(true)
		a.suffixUni = a.computeSuffixUniversality()
	})
	return a.suffixUni
}

func (a *Automaton) computeSuffixUniversality() []bool {
	// The zero-ops sub-NFA: per state, edges with no variable operations;
	// finals are states accepting with the empty final set.
	finals := make([]bool, len(a.States))
	for q, st := range a.States {
		for _, f := range st.Finals {
			if f == 0 {
				finals[q] = true
			}
		}
	}
	key := func(set []int) string {
		parts := make([]string, len(set))
		for i, q := range set {
			parts[i] = strconv.Itoa(q)
		}
		return strings.Join(parts, ",")
	}
	type expansion struct {
		good  bool
		succs [][]int
	}
	cache := map[string]*expansion{}
	expand := func(set []int) *expansion {
		k := key(set)
		if e, ok := cache[k]; ok {
			return e
		}
		e := &expansion{}
		var classes []alphabet.Class
		var union alphabet.Class
		hasFinal := false
		for _, q := range set {
			if finals[q] {
				hasFinal = true
			}
			for _, ed := range a.States[q].Edges {
				if ed.Ops == 0 {
					classes = append(classes, ed.Class)
					union = union.Union(ed.Class)
				}
			}
		}
		// Locally good: accepting here, and able to consume any byte.
		e.good = hasFinal && union == alphabet.Any
		if e.good {
			for _, atom := range alphabet.Atoms(classes) {
				succ := map[int]bool{}
				for _, q := range set {
					for _, ed := range a.States[q].Edges {
						if ed.Ops == 0 && ed.Class.ContainsClass(atom) {
							succ[ed.To] = true
						}
					}
				}
				next := make([]int, 0, len(succ))
				for q := range succ {
					next = append(next, q)
				}
				sort.Ints(next)
				e.succs = append(e.succs, next)
			}
		}
		cache[k] = e
		return e
	}
	const maxSets = 256 // exploration bound per state; exceeding it is sound (just slower)
	out := make([]bool, len(a.States))
	for q := range a.States {
		seen := map[string]bool{}
		queue := [][]int{{q}}
		seen[key(queue[0])] = true
		universal := true
		for len(queue) > 0 && universal {
			set := queue[0]
			queue = queue[1:]
			e := expand(set)
			if !e.good {
				universal = false
				break
			}
			for _, succ := range e.succs {
				k := key(succ)
				if !seen[k] {
					if len(seen) >= maxSets {
						universal = false
						break
					}
					seen[k] = true
					queue = append(queue, succ)
				}
			}
		}
		out[q] = universal
	}
	return out
}

// Eval computes the span relation ⟦a⟧(d) on the compiled evaluation core
// (see dfa.go). A DFA prescan rejects non-matching documents at
// byte-class-lookup speed — the dominant case when a split-spanner runs
// over many segments. Matching documents run a forward dynamic program
// over a sparse frontier of (state, assignment) cells: byte-class-indexed
// transition lists replace the per-edge class test, assignments live in a
// reused arena, and cells are deduplicated through a versioned
// open-addressing table, so the per-byte loop is allocation-free in the
// common case. Assignments that are complete and sit in a suffix-universal
// state are emitted immediately, keeping the run output-sensitive.
// EvalReference retains the map-based simulation this replaced; fuzzing
// asserts the two agree.
func (a *Automaton) Eval(doc string) *span.Relation {
	p := a.prog()
	rel := span.NewRelation(a.Vars...)
	// ⟦a⟧(d) = ∅ iff no accepting run exists; the DFA decides that without
	// touching the assignment machinery.
	if !a.EvalBool(doc) {
		return rel
	}
	nv := p.nv
	stride := 2 * nv
	sc := scratchPool.Get().(*evalScratch)
	sc.cur, sc.next = sc.cur[:0], sc.next[:0]
	sc.curA, sc.nextA = sc.curA[:0], sc.nextA[:0]
	if cap(sc.tmp) < stride {
		sc.tmp = make([]int32, stride)
	}
	tmp := sc.tmp[:stride]

	emitted := map[string]bool{}
	emitBuf := make([]byte, 4*stride)
	emit := func(pt []int32) {
		for i, v := range pt {
			binary.LittleEndian.PutUint32(emitBuf[4*i:], uint32(v))
		}
		k := string(emitBuf)
		if emitted[k] {
			return
		}
		emitted[k] = true
		t := make(span.Tuple, nv)
		for v := 0; v < nv; v++ {
			t[v] = span.Span{Start: int(pt[2*v]), End: int(pt[2*v+1])}
		}
		rel.Tuples = append(rel.Tuples, t)
	}
	uni := p.uni
	place := func(state int32, pt []int32) {
		if uni[state] && completePartial(pt) {
			emit(pt)
			return
		}
		sc.place(state, pt, stride)
	}
	// Seed the frontier with the start state and the all-unset assignment.
	sc.resetTable(1)
	for i := range tmp {
		tmp[i] = 0
	}
	place(int32(a.Start), tmp)
	sc.cur, sc.next = sc.next, sc.cur
	sc.curA, sc.nextA = sc.nextA, sc.curA

	nc := p.nclasses
	for pos := 0; pos < len(doc) && len(sc.cur) > 0; pos++ {
		c := int(p.classOf[doc[pos]])
		sc.next = sc.next[:0]
		sc.nextA = sc.nextA[:0]
		sc.resetTable(len(sc.cur))
		for _, cell := range sc.cur {
			src := sc.curA[cell.off : int(cell.off)+stride]
			for _, e := range p.succ[int(cell.state)*nc+c] {
				if e.ops == 0 {
					place(e.to, src)
				} else {
					copy(tmp, src)
					applyOps(tmp, e.ops, pos)
					place(e.to, tmp)
				}
			}
		}
		sc.cur, sc.next = sc.next, sc.cur
		sc.curA, sc.nextA = sc.nextA, sc.curA
	}
	for _, cell := range sc.cur {
		src := sc.curA[cell.off : int(cell.off)+stride]
		for _, f := range p.finals[cell.state] {
			if f == 0 {
				emit(src)
				continue
			}
			copy(tmp, src)
			applyOps(tmp, f, len(doc))
			emit(tmp)
		}
	}
	scratchPool.Put(sc)
	rel.Dedupe()
	return rel
}

// EvalReference is the retained reference implementation of Eval: a direct
// NFA simulation with a string-keyed frontier, kept verbatim from before
// the compiled evaluation core so that fuzzing and the benchmark suite can
// compare the two paths. Semantics are identical to Eval.
func (a *Automaton) EvalReference(doc string) *span.Relation {
	nv := len(a.Vars)
	rel := span.NewRelation(a.Vars...)
	type cell struct {
		state int
		p     partial
	}
	keyBuf := make([]byte, 4+8*nv)
	cellKey := func(c cell) string {
		binary.LittleEndian.PutUint32(keyBuf, uint32(c.state))
		for i, v := range c.p {
			binary.LittleEndian.PutUint32(keyBuf[4+4*i:], uint32(v))
		}
		return string(keyBuf)
	}
	uni := a.suffixUniversality()
	emitted := map[string]bool{}
	emitTuple := func(p partial) {
		t := make(span.Tuple, nv)
		for v := 0; v < nv; v++ {
			t[v] = span.Span{Start: int(p[2*v]), End: int(p[2*v+1])}
		}
		k := t.Key()
		if !emitted[k] {
			emitted[k] = true
			rel.Tuples = append(rel.Tuples, t)
		}
	}
	complete := func(p partial) bool {
		for _, v := range p {
			if v == 0 {
				return false
			}
		}
		return true
	}
	cur := map[string]cell{}
	place := func(c cell, dst map[string]cell) {
		if uni[c.state] && complete(c.p) {
			emitTuple(c.p)
			return
		}
		dst[cellKey(c)] = c
	}
	place(cell{a.Start, make(partial, 2*nv)}, cur)
	emit := func(c cell, boundary int) {
		for _, f := range a.States[c.state].Finals {
			emitTuple(c.p.apply(f, boundary, nv))
		}
	}
	for pos := 0; pos < len(doc); pos++ {
		b := doc[pos]
		next := make(map[string]cell, len(cur))
		for _, c := range cur {
			for _, e := range a.States[c.state].Edges {
				if !e.Class.Has(b) {
					continue
				}
				place(cell{e.To, c.p.apply(e.Ops, pos, nv)}, next)
			}
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	for _, c := range cur {
		emit(c, len(doc))
	}
	rel.Dedupe()
	return rel
}

// EvalBoolReference is the retained reference implementation of EvalBool:
// a plain map-based state-set simulation, kept for differential testing
// against the lazy-DFA path.
func (a *Automaton) EvalBoolReference(doc string) bool {
	cur := map[int]bool{a.Start: true}
	for pos := 0; pos < len(doc); pos++ {
		b := doc[pos]
		next := map[int]bool{}
		for q := range cur {
			for _, e := range a.States[q].Edges {
				if e.Class.Has(b) {
					next[e.To] = true
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			return false
		}
	}
	for q := range cur {
		if len(a.States[q].Finals) > 0 {
			return true
		}
	}
	return false
}
