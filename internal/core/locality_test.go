package core_test

// External test package: the table tests exercise IsLocal on the
// ready-made splitters of internal/library, which itself imports core.

import (
	"errors"
	"testing"

	"repro/internal/automata"
	"repro/internal/core"
	"repro/internal/library"
	"repro/internal/regexformula"
	"repro/internal/span"
)

func mustSplitter(t *testing.T, src string) *core.Splitter {
	t.Helper()
	s, err := core.NewSplitter(regexformula.MustCompile(src))
	if err != nil {
		t.Fatalf("splitter %q: %v", src, err)
	}
	return s
}

// chunkedSplit is a reference implementation of the engine's carry-over
// segmenter (internal/engine.segmenter) on top of Split alone: feed the
// document in n-byte chunks, after each chunk split the buffered suffix,
// emit every span but the last, and restart the buffer at the last
// span's start. IsLocal promises this equals Split(doc) for any n.
func chunkedSplit(s *core.Splitter, doc string, n int) []span.Span {
	var out []span.Span
	buf := ""
	off := 0 // 0-based offset of buf[0] in doc
	emit := func(spans []span.Span, all bool) {
		keep := len(spans) - 1
		if all {
			keep = len(spans)
		}
		by := span.Span{Start: off + 1, End: off + 1}
		for _, sp := range spans[:keep] {
			out = append(out, sp.Shift(by))
		}
		if !all && keep >= 0 {
			cut := spans[len(spans)-1].Start - 1
			off += cut
			buf = buf[cut:]
		}
	}
	for lo := 0; lo < len(doc); lo += n {
		hi := lo + n
		if hi > len(doc) {
			hi = len(doc)
		}
		buf += doc[lo:hi]
		if spans := s.Split(buf); len(spans) >= 2 {
			emit(spans, false)
		}
	}
	emit(s.Split(buf), true)
	return out
}

func assertChunkedMatches(t *testing.T, name string, s *core.Splitter, docs []string) {
	t.Helper()
	for _, doc := range docs {
		want := s.Split(doc)
		for _, n := range []int{1, 2, 3, 7, 4096} {
			got := chunkedSplit(s, doc, n)
			if len(got) != len(want) {
				t.Fatalf("%s: doc %q chunk %d: %d spans, want %d (%v vs %v)",
					name, doc, n, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: doc %q chunk %d: span %d = %v, want %v", name, doc, n, i, got[i], want[i])
				}
			}
		}
	}
}

// Splitters the procedure must prove local: the separator-driven
// splitters that motivated PR 3's opt-in flag.
func TestIsLocalLibrarySplitters(t *testing.T) {
	cases := []struct {
		name string
		s    *core.Splitter
	}{
		{"sentences", library.Sentences()},
		{"paragraphs", library.Paragraphs()},
		{"tokens", library.Tokens()},
		{"http-requests", library.HTTPRequests()},
	}
	docs := []string{
		"", ".", "a", "one. two! three? four\nfive.", "a.b.c.d", "..!!..",
		"no terminator at all", "trailing terminator.", "a;b;;c", " lead space",
	}
	for _, c := range cases {
		ok, err := c.s.IsLocal(0)
		if err != nil {
			t.Fatalf("%s: IsLocal: %v", c.name, err)
		}
		if !ok {
			t.Fatalf("%s: IsLocal = false, want a locality proof", c.name)
		}
		assertChunkedMatches(t, c.name, c.s, docs)
	}
}

func TestIsLocalKnownNonLocal(t *testing.T) {
	block := "[^.!]*"
	cases := []struct {
		name string
		src  string
		// wantDisjoint sanity-checks the instance exercises the intended
		// path: IsLocal must refuse non-disjoint splitters outright and
		// refuse disjoint-but-unprovable ones after analysis.
		wantDisjoint bool
	}{
		// Segmentation valid only on documents ending in '!': whether a
		// block is a span depends on unbounded right context (fails L1,
		// committed acceptance).
		{"suffix-conditioned", "(x{" + block + "})(\\." + block + ")*!|" +
			block + "(\\." + block + ")*\\.(x{" + block + "})(\\." + block + ")*!", true},
		// Every '.'-separated block except the first: a suffix re-split
		// from a cut drops its own first block, so segmentation does not
		// factor at span starts (fails L3, the frontier pair walk).
		{"all-but-first-block", "[^.]*\\.([^.]*\\.)*(x{[^.]*})(\\.[^.]*)*", true},
		// Whole-document capture over a partial domain: bytes outside
		// [ab] kill every run after the open (fails L1).
		{"whole-doc-capture", "(x{(a|b)*})", true},
		// 2-grams overlap; only disjoint splitters can be local.
		{"2-grams", "(x{[^ ]+ [^ ]+})( .*)?|.* (x{[^ ]+ [^ ]+})( .*)?", false},
	}
	for _, c := range cases {
		s := mustSplitter(t, c.src)
		if got := s.IsDisjoint(); got != c.wantDisjoint {
			t.Fatalf("%s: IsDisjoint = %v, want %v", c.name, got, c.wantDisjoint)
		}
		ok, err := s.IsLocal(0)
		if err != nil {
			t.Fatalf("%s: IsLocal: %v", c.name, err)
		}
		if ok {
			t.Fatalf("%s: IsLocal = true, but the splitter is not local", c.name)
		}
	}
}

// The suffix-conditioned splitter is not merely unprovable: chunked
// segmentation actually diverges from whole-document segmentation, which
// is exactly the mis-extraction a forced StreamIncremental override
// risks and a "local" verdict must never permit.
func TestNonLocalSplitterActuallyDiverges(t *testing.T) {
	block := "[^.!]*"
	s := mustSplitter(t, "(x{"+block+"})(\\."+block+")*!|"+
		block+"(\\."+block+")*\\.(x{"+block+"})(\\."+block+")*!")
	doc := "ab.cd!e" // ends in neither '!' nor a clean block: S(doc) = ∅
	if got := s.Split(doc); len(got) != 0 {
		t.Fatalf("Split(%q) = %v, want empty", doc, got)
	}
	// Chunk size 1 sees "ab.cd!" mid-stream, believes "ab" is settled,
	// and emits it — a span the whole document never produces.
	if got := chunkedSplit(s, doc, 1); len(got) == 0 {
		t.Fatalf("chunked segmentation unexpectedly agrees; the divergence witness is stale")
	}
}

// Degenerate splitters are trivially local: they never produce two
// spans in any buffer, so the segmenter never emits early.
func TestIsLocalDegenerate(t *testing.T) {
	for _, src := range []string{
		"(x{})",                 // matches only the empty document
		"(x{[^.]*})(\\.[^.]*)*", // first '.'-free block only: one span per document
	} {
		s := mustSplitter(t, src)
		ok, err := s.IsLocal(0)
		if err != nil {
			t.Fatalf("%q: IsLocal: %v", src, err)
		}
		if !ok {
			t.Fatalf("%q: IsLocal = false, want true", src)
		}
		assertChunkedMatches(t, src, s, []string{"", "a", "ab.cd", "x.y.z", "..", "q!r"})
	}
}

// A starved state budget must surface as automata.ErrTooLarge (verdict
// unknown), never as a false "local".
func TestIsLocalStateLimit(t *testing.T) {
	s := library.Sentences()
	ok, err := s.IsLocal(1)
	if !errors.Is(err, automata.ErrTooLarge) {
		t.Fatalf("IsLocal(limit=1) = (%v, %v), want ErrTooLarge", ok, err)
	}
	if ok {
		t.Fatal("IsLocal reported a proof while over budget")
	}
}
