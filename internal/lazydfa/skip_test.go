package lazydfa

import (
	"strings"
	"sync"
	"testing"
)

// testSet builds a one-state skip set (state 1 loops on every
// non-trigger byte), the degenerate synchronized set.
func testSet(triggers ...byte) *SkipSet {
	var sync [256]int32
	for x := range sync {
		sync[x] = 1
	}
	for _, b := range triggers {
		sync[b] = -1
	}
	return NewSkipSet(triggers, []int32{1}, &sync)
}

func TestNewSkipSetBounds(t *testing.T) {
	var sync [256]int32
	if NewSkipSet(nil, []int32{1}, &sync) != nil {
		t.Fatal("empty trigger set must yield nil (unskippable)")
	}
	if NewSkipSet(make([]byte, MaxSkipTriggers+1), []int32{1}, &sync) != nil {
		t.Fatal("oversized trigger set must yield nil")
	}
	if NewSkipSet([]byte{'a'}, nil, &sync) != nil {
		t.Fatal("empty state set must yield nil")
	}
	if NewSkipSet([]byte{'a'}, make([]int32, MaxSkipStates+1), &sync) != nil {
		t.Fatal("oversized state set must yield nil")
	}
	s := NewSkipSet([]byte{'a', 'b'}, []int32{2, 5}, &sync)
	if s == nil || string(s.Triggers()) != "ab" {
		t.Fatalf("Triggers = %q, want \"ab\"", s.Triggers())
	}
	if !s.Contains(2) || !s.Contains(5) || s.Contains(3) {
		t.Fatal("Contains must reflect the state set exactly")
	}
	if s.Sync('z') != 0 {
		t.Fatalf("Sync('z') = %d, want the provided table value 0", s.Sync('z'))
	}
}

func TestSkipCacheFirstStoreWins(t *testing.T) {
	var c SkipCache
	if _, ok := c.Lookup(3); ok {
		t.Fatal("empty cache must miss")
	}
	first := testSet('x')
	if got := c.Store(3, first); got != first {
		t.Fatal("first Store must return its own set")
	}
	if got := c.Store(3, testSet('y')); got != first {
		t.Fatal("second Store must return the first winner")
	}
	if set, ok := c.Lookup(3); !ok || set != first {
		t.Fatal("Lookup must return the winner")
	}
	// A stored nil records "unskippable" and still hits.
	c.Store(4, nil)
	if set, ok := c.Lookup(4); !ok || set != nil {
		t.Fatal("stored nil must hit with a nil set")
	}
}

func TestSkipCacheConcurrent(t *testing.T) {
	var c SkipCache
	var wg sync.WaitGroup
	winners := make([]*SkipSet, 16)
	for g := range winners {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			winners[g] = c.Store(7, testSet(byte(g)))
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(winners); g++ {
		if winners[g] != winners[0] {
			t.Fatal("concurrent Stores must all observe one winner")
		}
	}
}

func TestSkipRunJump(t *testing.T) {
	doc := strings.Repeat(".", 100) + "a" + strings.Repeat(".", 50) + "b" + strings.Repeat(".", 20)
	var r SkipRun
	r.Reset(testSet('a', 'b'), StringIndex(doc))
	if to, hit := r.Jump(0, len(doc)); !hit || to != 100 {
		t.Fatalf("Jump(0) = (%d, %v), want (100, true)", to, hit)
	}
	// Past the 'a': the cached 'a' occurrence is behind, 'b' is cached ahead.
	if to, hit := r.Jump(101, len(doc)); !hit || to != 151 {
		t.Fatalf("Jump(101) = (%d, %v), want (151, true)", to, hit)
	}
	// No trigger remains: land on the end with hit=false.
	if to, hit := r.Jump(152, len(doc)); hit || to != len(doc) {
		t.Fatalf("Jump(152) = (%d, %v), want (%d, false)", to, hit, len(doc))
	}
	// A nil set never moves.
	r.Reset(nil, StringIndex(doc))
	if to, hit := r.Jump(5, len(doc)); hit || to != 5 {
		t.Fatalf("nil-set Jump = (%d, %v), want (5, false)", to, hit)
	}
}

func TestSkipRunJumpReentryAtTrigger(t *testing.T) {
	// Jumping again from exactly a trigger position must re-find that
	// occurrence (the nx <= from recompute), not treat the cached value
	// as consumed and overshoot.
	doc := "....a...a.."
	var r SkipRun
	r.Reset(testSet('a'), StringIndex(doc))
	if to, hit := r.Jump(0, len(doc)); !hit || to != 4 {
		t.Fatalf("Jump(0) = (%d, %v), want (4, true)", to, hit)
	}
	if to, hit := r.Jump(4, len(doc)); !hit || to != 4 {
		t.Fatalf("Jump(4) = (%d, %v), want (4, true)", to, hit)
	}
	if to, hit := r.Jump(5, len(doc)); !hit || to != 8 {
		t.Fatalf("Jump(5) = (%d, %v), want (8, true)", to, hit)
	}
}

func TestSkipRunBytesIndex(t *testing.T) {
	doc := []byte("zzzqzz")
	var r SkipRun
	r.Reset(testSet('q'), BytesIndex(doc))
	if to, hit := r.Jump(0, len(doc)); !hit || to != 3 {
		t.Fatalf("Jump = (%d, %v), want (3, true)", to, hit)
	}
}

func TestSkipRunCappedWindow(t *testing.T) {
	// A trigger beyond skipJumpWindow: the first Jump lands on the window
	// cap with hit=false, and re-entry from there still finds the trigger.
	n := skipJumpWindow + 500
	doc := strings.Repeat(" ", n-1) + "!"
	var r SkipRun
	r.Reset(testSet('!'), StringIndex(doc))
	to, hit := r.Jump(0, n)
	if hit || to != skipJumpWindow {
		t.Fatalf("capped Jump = (%d, %v), want (%d, false)", to, hit, skipJumpWindow)
	}
	if to, hit = r.Jump(to, n); !hit || to != n-1 {
		t.Fatalf("re-entry Jump = (%d, %v), want (%d, true)", to, hit, n-1)
	}
}

// twoStateSet models a word/separator oscillation: states 1 and 2,
// trigger 'b'; letters sync to 1, spaces sync to 2.
func twoStateSet() *SkipSet {
	var sync [256]int32
	for x := range sync {
		sync[x] = 1
	}
	sync[' '] = 2
	sync['b'] = -1
	return NewSkipSet([]byte{'b'}, []int32{1, 2}, &sync)
}

func TestSkipGateOscillationEngages(t *testing.T) {
	doc := strings.Repeat("xy zz ", 20) + "b tail"
	set := twoStateSet()
	var cache SkipCache
	builds := 0
	var g SkipGate
	g.Init(&cache)
	g.Bind(func(q int32) *SkipSet { builds++; return set }, StringIndex(doc))
	// Feed an alternation confined to states 1 and 2: 1,2,1,2,... The
	// two-state streak must engage the gate even though no single state
	// ever repeats DefaultSkipStreak times in a row.
	states := []int32{1, 2}
	engaged := -1
	cur := states[0]
	for i := 0; i < 4*DefaultSkipStreak; i++ {
		next := states[(i+1)%2]
		if s := g.Step(cur, next); s != nil {
			engaged = i
			break
		}
		cur = next
	}
	if engaged < 0 {
		t.Fatal("gate never engaged on a 2-state oscillation")
	}
	if engaged < DefaultSkipStreak-1 {
		t.Fatalf("gate engaged after %d steps, before the streak threshold %d", engaged+1, DefaultSkipStreak)
	}
	if builds != 1 {
		t.Fatalf("gate ran %d builds, want 1 (cache + memo)", builds)
	}
	// Once armed, any in-set state re-engages immediately.
	if s := g.Step(2, 1); s != set {
		t.Fatal("armed gate must re-engage immediately for an in-set state")
	}
	// An out-of-set excursion does not disarm it right away.
	if s := g.Step(1, 99); s != nil {
		t.Fatal("out-of-set state must not skip")
	}
	if s := g.Step(99, 2); s != set {
		t.Fatal("returning to the set after a short excursion must re-engage")
	}
}

func TestSkipGateSelfLoopEngagesAndJumps(t *testing.T) {
	doc := strings.Repeat(".", 200) + "b" + strings.Repeat(".", 30)
	set := testSet('b')
	var cache SkipCache
	var g SkipGate
	g.Init(&cache)
	g.Bind(func(q int32) *SkipSet { return set }, StringIndex(doc))
	var got *SkipSet
	pos := 0
	for ; pos < len(doc); pos++ {
		if got = g.Step(1, 1); got != nil {
			break
		}
	}
	if got == nil {
		t.Fatal("gate never engaged on a self-loop")
	}
	to, hit := g.Jump(got, pos+1, len(doc))
	if !hit || to != 200 {
		t.Fatalf("Jump = (%d, %v), want (200, true)", to, hit)
	}
	// A jump that cannot advance starts the cool-down: the gate steps
	// plainly for a few bytes instead of re-searching per byte.
	if to, hit = g.Jump(got, 200, len(doc)); !hit || to != 200 {
		t.Fatalf("no-progress Jump = (%d, %v), want (200, true)", to, hit)
	}
	if s := g.Step(1, 1); s != nil {
		t.Fatal("gate must cool down after a no-progress jump")
	}
}

func TestSkipGateUnskippableStateCachedOnce(t *testing.T) {
	var cache SkipCache
	builds := 0
	var g SkipGate
	g.Init(&cache)
	g.Bind(func(q int32) *SkipSet { builds++; return nil }, StringIndex("x"))
	for i := 0; i < 10*DefaultSkipStreak; i++ {
		if s := g.Step(1, 1); s != nil {
			t.Fatal("nil-building state must never skip")
		}
	}
	if builds != 1 {
		t.Fatalf("unskippable state built %d times, want 1", builds)
	}
}
