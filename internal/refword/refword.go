// Package refword implements ref-words (Section 4): strings over the
// extended alphabet Σ ∪ Γ_V in which variable-open and variable-close
// markers are interleaved with document bytes. Ref-words give the
// semantics of regex formulas and VSet-automata; this package provides
// the string-level side — validity checking, the clr morphism, tuple
// extraction, and canonical serialization — and is used in tests as an
// independent executable specification for the automaton pipeline.
package refword

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/span"
	"repro/internal/vsa"
)

// Token is one symbol of a ref-word: either a document byte or a variable
// operation.
type Token struct {
	Byte  byte // valid when !IsOp
	IsOp  bool
	Var   int  // variable index, valid when IsOp
	Close bool // open (false) or close (true), valid when IsOp
}

// Word is a ref-word over the extended alphabet.
type Word []Token

// ByteTok returns a byte token.
func ByteTok(b byte) Token { return Token{Byte: b} }

// OpenTok returns the x_v⊢ token.
func OpenTok(v int) Token { return Token{IsOp: true, Var: v} }

// CloseTok returns the ⊣x_v token.
func CloseTok(v int) Token { return Token{IsOp: true, Var: v, Close: true} }

// Clr applies the morphism clr: it erases all variable operations and
// returns the underlying document (Section 4).
func (w Word) Clr() string {
	var b strings.Builder
	for _, t := range w {
		if !t.IsOp {
			b.WriteByte(t.Byte)
		}
	}
	return b.String()
}

// IsValid reports whether the ref-word is valid for numVars variables:
// every variable is opened exactly once and closed exactly once, in that
// order (Section 4's validity).
func (w Word) IsValid(numVars int) bool {
	const (
		unseen = 0
		open   = 1
		closed = 2
	)
	st := make([]int, numVars)
	for _, t := range w {
		if !t.IsOp {
			continue
		}
		if t.Var < 0 || t.Var >= numVars {
			return false
		}
		switch {
		case !t.Close && st[t.Var] == unseen:
			st[t.Var] = open
		case t.Close && st[t.Var] == open:
			st[t.Var] = closed
		default:
			return false
		}
	}
	for _, s := range st {
		if s != closed {
			return false
		}
	}
	return true
}

// Tuple extracts the (V,d)-tuple t_r encoded by a valid ref-word: the
// span of variable v runs from the position after its open marker to the
// position of its close marker, in the paper's 1-based convention. It
// returns an error for invalid ref-words.
func (w Word) Tuple(numVars int) (span.Tuple, error) {
	if !w.IsValid(numVars) {
		return nil, fmt.Errorf("refword: ref-word is not valid for %d variables", numVars)
	}
	out := make(span.Tuple, numVars)
	pos := 1 // 1-based document position of the next byte
	starts := make([]int, numVars)
	for _, t := range w {
		switch {
		case !t.IsOp:
			pos++
		case !t.Close:
			starts[t.Var] = pos
		default:
			out[t.Var] = span.Span{Start: starts[t.Var], End: pos}
		}
	}
	return out, nil
}

// IsCanonical reports whether adjacent variable operations appear in the
// canonical order ≺ of package vsa (ascending variable index, open before
// close). Deterministic VSet-automata produce exactly one canonical
// ref-word per (document, tuple) — the property behind Theorem 4.3.
func (w Word) IsCanonical() bool {
	opKey := func(t Token) int {
		k := 2 * t.Var
		if t.Close {
			k++
		}
		return k
	}
	for i := 1; i < len(w); i++ {
		if w[i].IsOp && w[i-1].IsOp && opKey(w[i-1]) >= opKey(w[i]) {
			return false
		}
	}
	return true
}

// Canonicalize sorts every maximal block of adjacent variable operations
// into the canonical order, returning a new word with the same Clr and
// Tuple.
func (w Word) Canonicalize() Word {
	out := make(Word, len(w))
	copy(out, w)
	i := 0
	for i < len(out) {
		if !out[i].IsOp {
			i++
			continue
		}
		j := i
		for j < len(out) && out[j].IsOp {
			j++
		}
		block := out[i:j]
		sort.Slice(block, func(a, b int) bool {
			ka := 2*block[a].Var + boolToInt(block[a].Close)
			kb := 2*block[b].Var + boolToInt(block[b].Close)
			return ka < kb
		})
		i = j
	}
	return out
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Encode builds the canonical ref-word of a (document, tuple) pair.
func Encode(doc string, t span.Tuple) Word {
	var w Word
	for pos := 1; pos <= len(doc)+1; pos++ {
		for v := range t {
			if t[v].Start == pos && t[v].End == pos {
				w = append(w, OpenTok(v), CloseTok(v))
			} else if t[v].Start == pos {
				w = append(w, OpenTok(v))
			}
		}
		for v := range t {
			if t[v].End == pos && t[v].Start != pos {
				w = append(w, CloseTok(v))
			}
		}
		if pos <= len(doc) {
			w = append(w, ByteTok(doc[pos-1]))
		}
	}
	return w.Canonicalize()
}

// String renders the ref-word with x0⊢ / ⊣x0 markers.
func (w Word) String() string {
	var b strings.Builder
	for _, t := range w {
		switch {
		case !t.IsOp:
			b.WriteByte(t.Byte)
		case !t.Close:
			fmt.Fprintf(&b, "x%d⊢", t.Var)
		default:
			fmt.Fprintf(&b, "⊣x%d", t.Var)
		}
	}
	return b.String()
}

// Accepts reports whether the automaton accepts the given ref-word, by
// simulating its extended transitions directly: the operation batches
// between bytes must match edge operation sets, and the trailing batch
// must match a final operation set. This is an independent semantics used
// to cross-validate the evaluator.
func Accepts(a *vsa.Automaton, w Word) bool {
	if !w.IsValid(a.Arity()) {
		return false
	}
	canon := w.Canonicalize()
	// Decompose into (batch, byte)* batch.
	var batches []vsa.OpSet
	var bytes []byte
	cur := vsa.OpSet(0)
	for _, t := range canon {
		if t.IsOp {
			if t.Close {
				cur |= vsa.Close(t.Var)
			} else {
				cur |= vsa.Open(t.Var)
			}
			continue
		}
		batches = append(batches, cur)
		bytes = append(bytes, t.Byte)
		cur = 0
	}
	final := cur
	states := map[int]bool{a.Start: true}
	for i, b := range bytes {
		next := map[int]bool{}
		for q := range states {
			for _, e := range a.States[q].Edges {
				if e.Ops == batches[i] && e.Class.Has(b) {
					next[e.To] = true
				}
			}
		}
		states = next
		if len(states) == 0 {
			return false
		}
	}
	for q := range states {
		for _, f := range a.States[q].Finals {
			if f == final {
				return true
			}
		}
	}
	return false
}
