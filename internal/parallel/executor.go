package parallel

import (
	"context"
	"sync"
	"time"

	"repro/internal/span"
	"repro/internal/vsa"
)

// This file implements the work-stealing split-evaluation executor that
// backs SplitEval, SplitEvalCtx, SplitEvalBatches, CollectionEval,
// CollectionEvalSplit and MultiEval. The shape follows Blumofe &
// Leiserson ("Scheduling Multithreaded Computations by Work Stealing"):
// each worker owns a chunked deque; work is dealt (or arrives) in chunks
// of several segments; a worker that runs dry steals the oldest chunk
// from a random victim. Results never cross a channel: each worker
// appends shifted tuples into its own arena-backed relation accumulator
// (the evaluator's EvalAppend), and the per-worker accumulators are
// concatenated and offset-sorted once at the end — the merged relation
// is therefore byte-identical no matter how chunks were dealt, stolen or
// interleaved.

// evaluator abstracts what one worker does with a segment, so the same
// scheduling/accumulation/merge machinery serves both the single-spanner
// evaluators (one relation per chunk destination) and the fused
// multi-query evaluator (one relation per member query).
type evaluator interface {
	// prepare warms the shared compiled caches before the workers start.
	prepare()
	// vars returns the variable list of destination dest's relation.
	vars(dest int) []string
	// eval appends seg's shifted result tuples to the relation(s) that
	// rel hands out, carving tuple storage from arena. Single-spanner
	// evaluators use rel(dest); the fused evaluator ignores dest and
	// demultiplexes into rel(member) per member query.
	eval(seg Segment, dest int, rel func(int) *span.Relation, arena *span.TupleArena)
}

// singleEval evaluates one spanner; chunk destinations index documents
// (or the single whole-document destination 0).
type singleEval struct{ ps *vsa.Automaton }

func (e singleEval) prepare()          { e.ps.Prepare() }
func (e singleEval) vars(int) []string { return e.ps.Vars }
func (e singleEval) eval(seg Segment, dest int, rel func(int) *span.Relation, arena *span.TupleArena) {
	e.ps.EvalAppend(seg.Text, seg.Span, rel(dest), arena)
}

// multiEval evaluates a fused multi-query set; chunk destinations are
// ignored (every chunk is dealt with dest 0) and the relation index is
// the member-query index instead.
type multiEval struct{ m *vsa.Multi }

func (e multiEval) prepare()            { e.m.Prepare() }
func (e multiEval) vars(q int) []string { return e.m.Member(q).Vars }
func (e multiEval) eval(seg Segment, _ int, rel func(int) *span.Relation, arena *span.TupleArena) {
	e.m.EvalAppend(seg.Text, seg.Span, rel, arena)
}

// executor is one split-evaluation run: a set of workers, their deques
// and accumulators, and (in streaming mode) the feed they block on when
// idle.
type executor struct {
	ev    evaluator
	ctx   context.Context
	grain int // split chunks larger than this; 0 disables splitting
	ndest int

	// recv, when non-nil, blocks for the next chunk from the external
	// feed (the engine's segmenter, a collection's splitter producer).
	// It returns ok=false when the feed is exhausted — closed, or the
	// context fired; the worker loop re-checks ctx to distinguish.
	recv func(context.Context) (chunk, bool)

	// m, when non-nil, receives this run's scheduling statistics.
	// Workers tally privately and flush at exit (see ExecMetrics), so a
	// nil m costs nothing and a live one costs two clock reads per chunk.
	m *ExecMetrics

	deques []deque
	accs   []accumulator
}

// accumulator is one worker's private result store: per-destination
// relations whose tuples are carved from a shared per-worker arena.
// Only the owning worker touches it until the final merge, which runs
// strictly after all workers exit.
type accumulator struct {
	ev    evaluator
	arena span.TupleArena
	rels  []*span.Relation // lazily created, indexed by chunk.dest (or member query)
}

func (a *accumulator) rel(dest int) *span.Relation {
	if a.rels[dest] == nil {
		a.rels[dest] = span.NewRelation(a.ev.vars(dest)...)
	}
	return a.rels[dest]
}

// newExecutor prepares an executor with nw workers over ndest
// destination relations. ev is prepared so the workers share warm
// evaluation caches instead of racing to build them.
func newExecutor(ctx context.Context, ev evaluator, nw, ndest, grain int, recv func(context.Context) (chunk, bool), m *ExecMetrics) *executor {
	ev.prepare()
	x := &executor{
		ev:     ev,
		ctx:    ctx,
		grain:  grain,
		ndest:  ndest,
		recv:   recv,
		m:      m,
		deques: make([]deque, nw),
		accs:   make([]accumulator, nw),
	}
	for i := range x.accs {
		x.accs[i] = accumulator{ev: ev, rels: make([]*span.Relation, ndest)}
	}
	return x
}

// deal distributes pre-chunked work round-robin across the worker
// deques before the workers start (slice mode). Round-robin, not
// blocks: neighboring chunks cover neighboring document regions with
// similar match density, so interleaving them balances the expected
// load per worker before any steal is needed.
func (x *executor) deal(chunks []chunk) {
	for i, c := range chunks {
		x.deques[i%len(x.deques)].push(c)
	}
}

// run spawns the workers, waits for them, and merges. The merged
// relations are deduplicated and offset-sorted, one per destination —
// deterministic regardless of the steal schedule. On cancellation the
// workers stop between segments and whatever they had accumulated is
// merged and returned (the partial-result contract of SplitEvalCtx).
func (x *executor) run() []*span.Relation {
	var t0 time.Time
	if x.m != nil {
		t0 = time.Now()
	}
	var wg sync.WaitGroup
	for id := range x.deques {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x.worker(id)
		}()
	}
	wg.Wait()
	if x.m == nil {
		return x.merge()
	}
	x.m.Runs.Inc()
	x.m.RunNS.AddDuration(time.Since(t0))
	tm := time.Now()
	rels := x.merge()
	x.m.MergeNS.RecordDuration(time.Since(tm))
	return rels
}

// worker is one scheduling loop: drain the own deque, then steal, then
// (streaming mode) block on the feed; exit when all three are dry. A
// worker always drains its own deque before exiting, so chunks it split
// off are never orphaned — at worst a late-splitting worker finishes
// them itself instead of having them stolen.
func (x *executor) worker(id int) {
	self := &x.deques[id]
	acc := &x.accs[id]
	var st workerStats
	if x.m != nil {
		st.dequeMax = self.size() // the dealt backlog, before any pop
		defer x.m.flush(&st)
	}
	rng := uint32(id)*2654435761 + 1 // per-worker victim sequence, any nonzero seed
	for {
		if x.ctx.Err() != nil {
			return
		}
		c, ok := self.pop()
		if !ok {
			if c, ok = x.trySteal(id, &rng); ok {
				st.steals++
			}
		}
		if !ok && x.recv != nil {
			if c, ok = x.recv(x.ctx); !ok {
				// Feed exhausted. One more sweep: a peer may have split a
				// late chunk after our first sweep came up empty.
				if c, ok = x.trySteal(id, &rng); ok {
					st.steals++
				}
			}
		}
		if !ok {
			return
		}
		x.exec(c, self, acc, &st)
	}
}

// trySteal sweeps every other worker's deque once, starting from a
// random victim so idle workers do not convoy on the same one. The
// sweep re-checks cancellation per victim: on a cancelled run a worker
// must not pick up yet another chunk of a huge document's backlog —
// without the check, a request whose deadline fired could keep every
// worker busy for a full extra sweep of stolen work.
func (x *executor) trySteal(id int, rng *uint32) (chunk, bool) {
	n := len(x.deques)
	*rng ^= *rng << 13
	*rng ^= *rng >> 17
	*rng ^= *rng << 5
	start := int(*rng % uint32(n))
	for k := 0; k < n; k++ {
		if x.ctx.Err() != nil {
			return chunk{}, false
		}
		v := start + k
		if v >= n {
			v -= n
		}
		if v == id {
			continue
		}
		if c, ok := x.deques[v].steal(); ok {
			return c, true
		}
	}
	return chunk{}, false
}

// exec evaluates one chunk into the worker's accumulator. A chunk
// larger than the grain is halved first, with the far half pushed onto
// the own deque where idle workers can steal it — this is how a single
// oversized arrival (a whole document's segments from a collection
// producer, a flush burst from the streaming segmenter) spreads across
// the pool. Cancellation is honored between segments; the segment in
// flight completes, matching the pre-executor behavior.
func (x *executor) exec(c chunk, self *deque, acc *accumulator, st *workerStats) {
	for x.grain > 0 && len(c.segs) > x.grain {
		half := (len(c.segs) + 1) / 2
		self.push(chunk{dest: c.dest, segs: c.segs[half:]})
		c.segs = c.segs[:half]
		if x.m != nil {
			if n := self.size(); n > st.dequeMax {
				st.dequeMax = n
			}
		}
	}
	var t0 time.Time
	if x.m != nil {
		t0 = time.Now()
	}
	done := 0
	for _, seg := range c.segs {
		if x.ctx.Err() != nil {
			break
		}
		x.ev.eval(seg, c.dest, acc.rel, &acc.arena)
		st.bytes += uint64(len(seg.Text))
		done++
	}
	st.chunks++
	st.segments += uint64(done)
	if x.m != nil {
		st.busy += time.Since(t0)
	}
}

// merge concatenates the per-worker accumulators by destination and
// canonicalizes each relation (offset sort + dedupe). Workers have all
// exited when merge runs, so no synchronization is needed.
func (x *executor) merge() []*span.Relation {
	out := make([]*span.Relation, x.ndest)
	for d := range out {
		total := 0
		for w := range x.accs {
			if r := x.accs[w].rels[d]; r != nil {
				total += len(r.Tuples)
			}
		}
		m := span.NewRelation(x.ev.vars(d)...)
		m.Tuples = make([]span.Tuple, 0, total)
		for w := range x.accs {
			if r := x.accs[w].rels[d]; r != nil {
				m.Tuples = append(m.Tuples, r.Tuples...)
			}
		}
		m.Dedupe()
		out[d] = m
	}
	return out
}

// chunked cuts segs into grain-sized chunks for dest. grain must be
// positive.
func chunked(dest int, segs []Segment, grain int, into []chunk) []chunk {
	for lo := 0; lo < len(segs); lo += grain {
		hi := lo + grain
		if hi > len(segs) {
			hi = len(segs)
		}
		into = append(into, chunk{dest: dest, segs: segs[lo:hi]})
	}
	return into
}
