// The query-planning example of Sections 6 and 7: reasoning about
// splitter subsumption, black-box split constraints (Theorem 7.4) and
// regular preconditions (filters) to derive a parallel evaluation plan
// for a join involving an opaque extractor.
package main

import (
	"fmt"
	"log"

	spanners "repro"
	"repro/internal/blackbox"
	"repro/internal/filterx"
	"repro/internal/library"
	"repro/internal/reason"
	"repro/internal/span"
)

func main() {
	sentences := library.Sentences()
	paragraphs := library.Paragraphs()

	// Section 6: sentence splitting factors through paragraph splitting,
	// so a planner may split by paragraphs first and sentences within.
	ok, err := reason.Subsumes(sentences, paragraphs, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sentences = sentences ∘ paragraphs: %v\n", ok)

	// Section 7.1: α finds "bad <word>" targets; a black-box "aspect
	// classifier" is only known through its split constraint (it is
	// self-splittable by sentences). Theorem 7.4 licenses a per-sentence
	// plan for the whole join.
	alpha := spanners.MustCompile(`(.*[ .!?\n])?bad (y{[a-z]+})(([^a-z].*)?|)`).Automaton()
	sig := &blackbox.Signature{Symbols: []blackbox.Symbol{{Name: "aspects", Vars: []string{"y"}}}}
	plan, reason74, err := blackbox.SplitCorrectByTheorem74(
		alpha, sig, []blackbox.Constraint{{Symbol: "aspects", Splitter: sentences}}, sentences, 0)
	if err != nil {
		log.Fatal(err)
	}
	if plan == nil {
		log.Fatalf("Theorem 7.4 did not apply: %s", reason74)
	}
	fmt.Println("Theorem 7.4 plan derived: evaluate α_S ⋈ aspects per sentence")

	// The black box at runtime: a hand-written classifier for "aspect
	// words" (here: nouns from a fixed list).
	aspects := blackbox.Func{
		VarNames: []string{"y"},
		Fn: func(doc string) *span.Relation {
			rel := span.NewRelation("y")
			for _, w := range []string{"coffee", "tea", "service"} {
				for i := 0; i+len(w) <= len(doc); i++ {
					if doc[i:i+len(w)] == w {
						rel.Add(span.Tuple{span.FromByteOffsets(i, i+len(w))})
					}
				}
			}
			return rel
		},
	}
	doc := "nice tea.bad coffee!bad service."
	direct, err := blackbox.EvalJoin(alpha, sig, blackbox.Instance{"aspects": aspects}, doc)
	if err != nil {
		log.Fatal(err)
	}
	split, err := plan.Eval(blackbox.Instance{"aspects": aspects}, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join results: direct=%d split=%d (must match)\n", direct.Len(), split.Len())
	for _, t := range direct.Tuples {
		fmt.Printf("  y = %q\n", t[0].In(doc))
	}

	// Section 7.2: an extractor with a format precondition (only pure
	// {a,b} documents are well-formed) is not self-splittable by unit
	// tokens as-is, but becomes so under its minimal regular filter L_P.
	p := spanners.MustCompile("[ab]*y{b}[ab]*").Automaton()
	units := spanners.MustCompileSplitter(".*x{.}.*").Core()
	okFilter, filter, err := filterx.SelfSplittableWithFilter(p, units, 0)
	if err != nil {
		log.Fatal(err)
	}
	if !okFilter {
		log.Fatal("expected a working filter")
	}
	fmt.Printf("self-splittable with filter: %v (filter accepts \"ab\": %v, \"acb\": %v)\n",
		okFilter, filter.EvalBool("ab"), filter.EvalBool("acb"))
}
