package engine

import (
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/span"
)

// segmenter applies a splitter incrementally to a document arriving as
// chunks, so that segments are dispatched to the work-stealing
// split-evaluation executor while the rest of the document is still
// being read.
//
// The strategy: keep a buffer of the not-yet-segmented suffix of the
// document. After each chunk, run the splitter on the buffer; every
// segment except the last is stable and is emitted (shifted to global
// document coordinates), and the buffer is cut down to start at the last,
// still-growing segment. The final segment is only emitted at flush,
// because more input could extend it — this is exactly the carry-over
// that makes a chunk boundary landing mid-segment invisible to the
// result.
//
// Soundness requires the splitter to be disjoint and local: emitted
// segments must survive any extension of the document, and the
// segmentation of the retained suffix must equal the tail of the
// whole-document segmentation. Whether a disjoint splitter has this
// property is decided on its automaton by core.Splitter.IsLocal; the
// engine computes that verdict at plan compilation and streams
// automatically when it is yes (the sentence, paragraph, token and
// record splitters of internal/library are all proven local), buffering
// otherwise. Config.StreamIncremental force-overrides a "no"/unknown
// verdict — the operator's unsafe assertion of locality — and a caller
// that forces a genuinely non-local splitter gets the same guarantee
// ParallelEval gives a non-split-correct plan: none. See
// internal/core/locality.go for the decision procedure and the exact
// property it certifies.
type segmenter struct {
	s   *core.Splitter
	buf []byte
	off int // 0-based global byte offset of buf[0]
	// minSplit defers the next splitter run until the buffer reaches
	// this length. It doubles whenever a run finds no stable segment, so
	// on input whose segments are much larger than the chunk size the
	// splitter runs on buffer lengths c, 2c, 4c, … — amortized linear
	// total work instead of one full re-scan per chunk.
	minSplit int
}

func newSegmenter(s *core.Splitter) *segmenter {
	return &segmenter{s: s}
}

// shiftAll converts buffer-relative spans into global document segments.
func (g *segmenter) emit(spans []span.Span) []parallel.Segment {
	if len(spans) == 0 {
		return nil
	}
	doc := string(g.buf)
	by := span.Span{Start: g.off + 1, End: g.off + 1}
	out := make([]parallel.Segment, len(spans))
	for i, sp := range spans {
		out[i] = parallel.Segment{Span: sp.Shift(by), Text: sp.In(doc)}
	}
	return out
}

// feed appends a chunk and returns the segments that became stable.
func (g *segmenter) feed(chunk []byte) []parallel.Segment {
	g.buf = append(g.buf, chunk...)
	if len(g.buf) < g.minSplit {
		return nil
	}
	spans := g.s.Split(string(g.buf))
	if len(spans) < 2 {
		// Zero or one segment: the single segment may still grow; hold
		// everything and back off until the buffer has doubled.
		g.minSplit = 2 * len(g.buf)
		return nil
	}
	g.minSplit = 0
	held := spans[len(spans)-1]
	out := g.emit(spans[:len(spans)-1])
	// Cut the buffer down to the held segment's start. Disjointness
	// guarantees every emitted span ends at or before held.Start, so no
	// emitted text is needed again; locality (proven by the plan's
	// verdict, or asserted via StreamIncremental) guarantees the
	// splitter never needs the bytes before a segment start to segment
	// the suffix.
	cut := held.Start - 1
	g.off += cut
	n := copy(g.buf, g.buf[cut:])
	g.buf = g.buf[:n]
	return out
}

// flush ends the stream: the splitter runs once more on the remaining
// buffer and every remaining segment is emitted. On an empty stream this
// yields exactly S("") — e.g. one empty segment for sentence-like
// splitters — matching one-shot evaluation of the empty document.
func (g *segmenter) flush() []parallel.Segment {
	out := g.emit(g.s.Split(string(g.buf)))
	g.buf = g.buf[:0]
	return out
}
