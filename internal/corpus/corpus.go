// Package corpus generates deterministic synthetic corpora standing in
// for the datasets of the paper's Section 1 experiments: Wikipedia and
// PubMed sentences, Reuters-style financial articles, Amazon-style food
// reviews, and HTTP-style logs. Generation is seeded and reproducible;
// only the statistical shape matters for the split-then-distribute
// speedup experiments (see DESIGN.md for the substitution argument).
package corpus

import "strings"

// rng is a small xorshift generator so corpora are reproducible without
// depending on math/rand's version-specific streams.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{seed}
}

func (r *rng) next() uint64 {
	x := r.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.state = x
	return x
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) pick(words []string) string { return words[r.intn(len(words))] }

var commonWords = []string{
	"the", "of", "and", "a", "to", "in", "is", "was", "he", "for", "it",
	"with", "as", "his", "on", "be", "at", "by", "had", "not", "are",
	"but", "from", "or", "have", "an", "they", "which", "one", "you",
	"were", "her", "all", "she", "there", "would", "their", "we", "him",
	"been", "has", "when", "who", "will", "more", "no", "if", "out",
}

var wikiNouns = []string{
	"history", "city", "river", "language", "population", "region",
	"school", "music", "science", "village", "country", "album",
	"station", "battle", "empire", "theory", "painter", "bridge",
}

var pubmedWords = []string{
	"protein", "receptor", "expression", "cells", "gene", "patients",
	"treatment", "tumor", "kinase", "pathway", "inhibitor", "clinical",
	"dose", "serum", "plasma", "mutation", "enzyme", "binding",
}

var orgNames = []string{
	"Acme", "Globex", "Initech", "Umbrella", "Stark", "Wayne", "Hooli",
	"Vandelay", "Wonka", "Duff", "Cyberdyne", "Gringotts",
}

var reviewWords = []string{
	"flavor", "taste", "price", "texture", "smell", "packaging",
	"aftertaste", "coffee", "tea", "chocolate", "sauce", "snack",
}

// Sentence generators produce space-separated lowercase words terminated
// by '.'; documents are concatenations of sentences. This matches what
// the library's sentence splitter and N-gram splitter expect.

func sentences(r *rng, vocab []string, minWords, maxWords, targetBytes int, inject func(r *rng, w *strings.Builder, sentenceIdx int) bool) string {
	var b strings.Builder
	b.Grow(targetBytes + 128)
	idx := 0
	for b.Len() < targetBytes {
		if inject == nil || !inject(r, &b, idx) {
			n := minWords + r.intn(maxWords-minWords+1)
			for i := 0; i < n; i++ {
				if i > 0 {
					b.WriteByte(' ')
				}
				if r.intn(3) == 0 {
					b.WriteString(r.pick(vocab))
				} else {
					b.WriteString(r.pick(commonWords))
				}
			}
		}
		b.WriteByte('.')
		idx++
	}
	return b.String()
}

// Wikipedia returns a Wikipedia-like corpus of roughly targetBytes bytes.
func Wikipedia(seed uint64, targetBytes int) string {
	return sentences(newRNG(seed), wikiNouns, 5, 14, targetBytes, nil)
}

// SparseSentiment returns a Wikipedia-like corpus of roughly targetBytes
// bytes with one library.NegativeSentiment match injected roughly every
// matchEvery bytes — the sparse-match workload of the evaluation
// benchmarks, where extraction cost should be dominated by the scan, not
// the matches. The base vocabulary contains no word starting with "bad",
// so the injected sentences carry all matches.
func SparseSentiment(seed uint64, targetBytes, matchEvery int) string {
	r := newRNG(seed)
	next := matchEvery
	inject := func(r *rng, b *strings.Builder, _ int) bool {
		if b.Len() < next {
			return false
		}
		next = b.Len() + matchEvery
		b.WriteString("the ")
		b.WriteString(r.pick(commonWords))
		b.WriteString(" was bad ")
		b.WriteString(r.pick(wikiNouns))
		b.WriteString(" today")
		return true
	}
	return sentences(r, wikiNouns, 5, 14, targetBytes, inject)
}

// PubMed returns a biomedical-abstract-like corpus.
func PubMed(seed uint64, targetBytes int) string {
	return sentences(newRNG(seed), pubmedWords, 8, 20, targetBytes, nil)
}

// ReutersArticle returns one financial-news article; roughly one sentence
// in eight contains a payment event recognized by library.FinanceEvents.
// Article lengths are heavy-tailed, as in real newswire: most articles
// have a few sentences, but about one in forty is a long feature piece.
// The skew is what makes sentence-granular scheduling pay off (the
// paper's Spark observation): with whole-document tasks the long
// articles straggle.
func ReutersArticle(r *rng) string {
	var b strings.Builder
	n := 3 + r.intn(6)
	switch {
	case r.intn(700) == 0:
		n = 1500 + r.intn(1500) // a rare very long special report
	case r.intn(40) == 0:
		n = 150 + r.intn(150) // an occasional feature piece
	}
	for i := 0; i < n; i++ {
		if r.intn(8) == 0 {
			b.WriteString(r.pick(orgNames))
			b.WriteString(" paid ")
			b.WriteString(r.pick(orgNames))
		} else {
			words := 5 + r.intn(10)
			for j := 0; j < words; j++ {
				if j > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(r.pick(commonWords))
			}
		}
		b.WriteByte('.')
	}
	return b.String()
}

// Reuters returns n article documents (the pre-split collection of the
// paper's Spark experiment).
func Reuters(seed uint64, n int) []string {
	r := newRNG(seed)
	out := make([]string, n)
	for i := range out {
		out[i] = ReutersArticle(r)
	}
	return out
}

// Review returns one Amazon-style review; some sentences contain a
// "bad <target>" pattern recognized by library.NegativeSentiment.
// Review lengths are heavy-tailed like real review sites: about one in
// sixty is a very long rant.
func Review(r *rng) string {
	var b strings.Builder
	n := 1 + r.intn(4)
	switch {
	case r.intn(3000) == 0:
		n = 2000 + r.intn(2000) // a rare epic rant
	case r.intn(60) == 0:
		n = 120 + r.intn(120)
	}
	for i := 0; i < n; i++ {
		if r.intn(4) == 0 {
			pre := r.intn(4)
			for j := 0; j < pre; j++ {
				b.WriteString(r.pick(commonWords))
				b.WriteByte(' ')
			}
			b.WriteString("bad ")
			b.WriteString(r.pick(reviewWords))
		} else {
			words := 4 + r.intn(8)
			for j := 0; j < words; j++ {
				if j > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(r.pick(reviewWords))
			}
		}
		b.WriteByte('.')
	}
	return b.String()
}

// Reviews returns n review documents.
func Reviews(seed uint64, n int) []string {
	r := newRNG(seed)
	out := make([]string, n)
	for i := range out {
		out[i] = Review(r)
	}
	return out
}

// HTTPLog returns a ';'-separated log of GET/POST records, each a
// lowercase path token, e.g. "get /a/b;post /c". One record in ten is a
// POST.
func HTTPLog(seed uint64, records int) string {
	r := newRNG(seed)
	var b strings.Builder
	for i := 0; i < records; i++ {
		if i > 0 {
			b.WriteByte(';')
		}
		if r.intn(10) == 0 {
			b.WriteString("post /")
		} else {
			b.WriteString("get /")
		}
		segs := 1 + r.intn(3)
		for j := 0; j < segs; j++ {
			if j > 0 {
				b.WriteByte('/')
			}
			for k := 0; k < 3+r.intn(5); k++ {
				b.WriteByte(byte('a' + r.intn(26)))
			}
		}
	}
	return b.String()
}
