package vsa

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/alphabet"
	"repro/internal/automata"
)

// Determinize implements Proposition 4.4: every VSet-automaton has an
// equivalent deterministic functional one. On the extended form this is a
// subset construction over the extended alphabet of (operation set, byte)
// pairs; the canonical ≺ order on operations is baked into OpSet, so the
// result corresponds to a dfVSA in the paper's sense. The construction is
// exponential in the worst case (determinization of NFAs already is);
// limit bounds the number of subset states (≤ 0 means
// automata.DefaultLimit) and ErrTooLarge is reported through the error.
func (a *Automaton) Determinize(limit int) (*Automaton, error) {
	if limit <= 0 {
		limit = automata.DefaultLimit
	}
	out := NewAutomaton(a.Vars...)
	key := func(set []int) string {
		parts := make([]string, len(set))
		for i, q := range set {
			parts[i] = strconv.Itoa(q)
		}
		return strings.Join(parts, ",")
	}
	id := map[string]int{}
	var sets [][]int
	intern := func(set []int) (int, error) {
		k := key(set)
		if i, ok := id[k]; ok {
			return i, nil
		}
		if len(id) >= limit {
			return 0, automata.ErrTooLarge
		}
		var i int
		if len(id) == 0 {
			i = 0 // the start state created by NewAutomaton
		} else {
			i = out.AddState()
		}
		id[k] = i
		sets = append(sets, set)
		return i, nil
	}
	if _, err := intern([]int{a.Start}); err != nil {
		return nil, err
	}
	for i := 0; i < len(sets); i++ {
		set := sets[i]
		// Finals: union over members.
		for _, q := range set {
			for _, f := range a.States[q].Finals {
				out.AddFinal(i, f)
			}
		}
		// Group edges by operation set, then split byte classes into atoms.
		byOps := map[OpSet][]Edge{}
		var opsList []OpSet
		for _, q := range set {
			for _, e := range a.States[q].Edges {
				if _, ok := byOps[e.Ops]; !ok {
					opsList = append(opsList, e.Ops)
				}
				byOps[e.Ops] = append(byOps[e.Ops], e)
			}
		}
		sort.Slice(opsList, func(x, y int) bool { return opsList[x] < opsList[y] })
		for _, ops := range opsList {
			es := byOps[ops]
			classes := make([]alphabet.Class, len(es))
			for j, e := range es {
				classes[j] = e.Class
			}
			for _, atom := range alphabet.Atoms(classes) {
				targets := map[int]bool{}
				for _, e := range es {
					if e.Class.ContainsClass(atom) {
						targets[e.To] = true
					}
				}
				if len(targets) == 0 {
					continue
				}
				tset := make([]int, 0, len(targets))
				for q := range targets {
					tset = append(tset, q)
				}
				sort.Ints(tset)
				to, err := intern(tset)
				if err != nil {
					return nil, err
				}
				out.AddEdge(i, ops, atom, to)
			}
		}
	}
	return out, nil
}

// MergeEdges coalesces parallel transitions that differ only in byte class
// into a single class-union transition, shrinking automata produced by
// atom-splitting constructions. The language is unchanged.
func (a *Automaton) MergeEdges() {
	a.checkMutable("MergeEdges")
	for q := range a.States {
		type k struct {
			ops OpSet
			to  int
		}
		merged := map[k]alphabet.Class{}
		var order []k
		for _, e := range a.States[q].Edges {
			kk := k{e.Ops, e.To}
			if _, ok := merged[kk]; !ok {
				order = append(order, kk)
			}
			merged[kk] = merged[kk].Union(e.Class)
		}
		es := make([]Edge, 0, len(order))
		for _, kk := range order {
			es = append(es, Edge{kk.ops, merged[kk], kk.to})
		}
		a.States[q].Edges = es
	}
}
