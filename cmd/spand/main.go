// Command spand is the spanner serving daemon: a long-lived HTTP server
// around the streaming extraction engine of internal/engine. It turns
// the paper's offline pipeline — decide split-correctness once, then
// distribute extraction over segments — into an online service:
//
//	POST /v1/extract   extract a relation from a document. The document
//	                   may be inline JSON, a raw request body, or a
//	                   streamed multipart part. A streamed document is
//	                   segmented incrementally while it uploads whenever
//	                   the plan's locality verdict proves that safe
//	                   (split-correct plan, disjoint splitter, locality
//	                   decided on the splitter automaton — no flags
//	                   needed); otherwise it is buffered whole, which is
//	                   sound for every splitter. -stream-incremental
//	                   force-streams plans whose verdict is no/unknown:
//	                   an unsafe operator assertion of locality.
//	POST /v1/check     split-correctness / self-splittability /
//	                   disjointness / locality verdicts for a formula
//	                   pair, served from the plan cache.
//	GET  /v1/stats     one consistent JSON snapshot: throughput counters
//	                   (documents total and streamed incrementally,
//	                   bytes, segments), cache hit rate, pool
//	                   configuration and the force-stream flag, the
//	                   pipeline-stage time breakdown (plan / segment /
//	                   eval shares with p50/p90/p99, plus the nested
//	                   merge / localize / sim stages), work-stealing
//	                   executor statistics, and per-endpoint request
//	                   counts, error counts and latency percentiles with
//	                   the current in-flight gauge.
//	GET  /metrics      the same instrumentation in the Prometheus text
//	                   exposition format, for scraping.
//
// The daemon is overload-safe. /v1/extract and /v1/check sit behind a
// token limiter (-admit tokens, a bounded FIFO wait queue of
// -admit-queue entries, at most -admit-wait of queueing); an arrival
// past those bounds is shed with 429 + Retry-After instead of queueing
// invisibly. -deadline bounds each admitted request end to end (queue
// wait, planning, segmentation, evaluation → 504), -read-timeout
// bounds upload progress (stalled body → 408), -max-doc bounds
// buffered document memory (→ 413), and -req-workers caps how much of
// the evaluation pool one request may occupy. /v1/stats and /metrics
// stay un-gated so the daemon remains observable while saturated. On
// SIGTERM or SIGINT the daemon stops accepting, gives in-flight
// requests -drain to finish, then cancels the stragglers' contexts —
// an admitted request always gets either its result or an explicit
// error.
//
// A successful extraction responds with the plan section — strategy,
// verdicts, cache_hit, plan_compile_ms — plus ingest ("inline",
// "streamed" or "buffered"), vars, count and the tuples as arrays of
// 1-based [start, end) spans:
//
//	{"strategy":"split-parallel",
//	 "verdicts":{"disjoint":"yes","self_splittable":"yes","local":"yes"},
//	 "cache_hit":false, "plan_compile_ms":1.234, "ingest":"inline",
//	 "vars":["y"], "count":2, "tuples":[[[6,21]],[[26,34]]]}
//
// Example:
//
//	spand -addr :8080 &
//	curl -s localhost:8080/v1/extract -H 'Content-Type: application/json' \
//	  -d '{"spanner":"(.*[^a-z0-9])?(y{[a-z0-9]+@[a-z0-9]+})([^a-z0-9].*)?",
//	       "splitter":"(x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*|[^.!?\\n]*([.!?\\n][^.!?\\n]*)*[.!?\\n](x{[^.!?\\n]*})([.!?\\n][^.!?\\n]*)*",
//	       "doc":"mail ann@example. or bob@host!"}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
)

// daemon bundles a configured HTTP server with the hooks the drain
// state machine needs: the cancel function behind every request's
// BaseContext, and the drain deadline. Factored out of main so the
// drain path is testable without a process and a real SIGTERM.
type daemon struct {
	srv        *http.Server
	eng        *engine.Engine
	cancelBase context.CancelFunc
	drain      time.Duration
}

// newDaemon wires an engine, an optional limiter and the serving policy
// into a drainable HTTP server.
func newDaemon(addr string, eng *engine.Engine, cfg serverConfig, drain time.Duration) *daemon {
	base, cancel := context.WithCancel(context.Background())
	return &daemon{
		srv: &http.Server{
			Addr:              addr,
			Handler:           newServerWith(eng, cfg),
			ReadHeaderTimeout: 10 * time.Second,
			BaseContext:       func(net.Listener) context.Context { return base },
		},
		eng:        eng,
		cancelBase: cancel,
		drain:      drain,
	}
}

// shutdown runs the graceful-drain state machine:
//
//  1. draining — stop accepting new connections; in-flight requests run
//     to completion under the drain deadline. The admission queue
//     drains naturally: queued requests still get tokens as in-flight
//     ones release them.
//  2. cancelling — requests still running when the deadline fires have
//     their contexts cancelled (via BaseContext) and the server closes.
//     They observe context.Canceled and unwind through the normal typed
//     error paths.
//
// An admitted request is therefore never silently dropped: it either
// finishes inside the drain window or gets an explicit error response.
func (d *daemon) shutdown() error {
	ctx, cancel := context.WithTimeout(context.Background(), d.drain)
	defer cancel()
	err := d.srv.Shutdown(ctx)
	if err == nil {
		d.cancelBase() // nothing in flight; tidy up the base context
		return nil
	}
	// Drain deadline exceeded: cancel every in-flight request's context
	// and tear the connections down.
	d.cancelBase()
	closeErr := d.srv.Close()
	if closeErr != nil && !errors.Is(closeErr, http.ErrServerClosed) {
		return closeErr
	}
	return err
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "evaluation workers (0 = GOMAXPROCS)")
		reqWork   = flag.Int("req-workers", 0, "executor workers any one request may use (0 = auto: ceil(2*workers/admit), so concurrent requests share the pool fairly; negative = uncapped)")
		batch     = flag.Int("batch", 16, "segments per worker task")
		cacheSize = flag.Int("cache", 128, "plan cache capacity (entries, all tenants)")
		cacheMB   = flag.Int64("cache-bytes", 0, "plan cache budget in bytes of estimated plan cost (0 = 64 MiB, negative = unlimited)")
		tenPlans  = flag.Int("tenant-plans", 0, "per-tenant plan cache entry quota (0 = no carve-up)")
		tenBytes  = flag.Int64("tenant-plan-bytes", 0, "per-tenant plan cache byte quota (0 = no carve-up)")
		tenHdr    = flag.String("tenant-header", "X-Tenant", "HTTP header carrying the tenant key for cache quotas (empty disables tenant attribution)")
		chunk     = flag.Int("chunk", 64<<10, "streaming read size in bytes")
		limit     = flag.Int("limit", 0, "decision-procedure state limit (0 = library default)")
		deadline  = flag.Duration("deadline", 0, "per-request deadline covering queue wait, planning and evaluation; exceeding it answers 504 (0 = none)")
		readTmo   = flag.Duration("read-timeout", 30*time.Second, "read-progress timeout on streamed documents; a stalled upload answers 408 (0 = none)")
		admit     = flag.Int("admit", 0, "concurrent requests admitted to /v1/extract and /v1/check (0 = GOMAXPROCS; negative disables admission control)")
		admitQ    = flag.Int("admit-queue", 0, "admission wait-queue capacity; arrivals beyond it answer 429 (0 = 4*admit, negative = no queue)")
		admitWait = flag.Duration("admit-wait", 500*time.Millisecond, "max time a request may wait for admission before a 429")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-drain budget on SIGTERM: in-flight requests get this long to finish before their contexts are cancelled")
		streamInc = flag.Bool("stream-incremental", false, "UNSAFE: force incremental segmentation for split plans whose splitter the locality decision procedure could not prove local (those proven local stream automatically); asserts every deployed splitter is local anyway — a wrong assertion silently mis-extracts")
		maxDoc    = flag.Int64("max-doc", 0, "per-document memory budget in bytes (0 = 256 MiB, negative = unlimited)")
	)
	flag.Parse()

	var lim *admission.Limiter
	tokens := *admit
	if tokens == 0 {
		tokens = runtime.GOMAXPROCS(0)
	}
	if *admit >= 0 {
		lim = admission.New(admission.Config{Tokens: tokens, Queue: *admitQ, MaxWait: *admitWait})
	}
	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	requestWorkers := *reqWork
	if requestWorkers == 0 && lim != nil {
		// With T requests executing concurrently, give each a budget of
		// ceil(2W/T): enough spare to soak up idle cores when the daemon
		// is quiet, small enough that one huge document cannot starve the
		// other admitted requests.
		requestWorkers = (2*nWorkers + tokens - 1) / tokens
	}
	if requestWorkers < 0 {
		requestWorkers = 0 // uncapped: engine default (= Workers)
	}

	eng := engine.New(engine.Config{
		PlanCache:         *cacheSize,
		PlanCacheBytes:    *cacheMB,
		TenantPlans:       *tenPlans,
		TenantPlanBytes:   *tenBytes,
		Workers:           nWorkers,
		RequestWorkers:    requestWorkers,
		Batch:             *batch,
		ChunkSize:         *chunk,
		StateLimit:        *limit,
		StreamIncremental: *streamInc,
		MaxDocBuffer:      *maxDoc,
		ReadTimeout:       *readTmo,
	})
	d := newDaemon(*addr, eng, serverConfig{
		limiter:      lim,
		deadline:     *deadline,
		tenantHeader: *tenHdr,
	}, *drain)

	go func() {
		st := eng.Stats()
		if lim != nil {
			log.Printf("spand: listening on %s (workers=%d req-workers=%d admit=%d queue=%d batch=%d cache=%d)",
				*addr, st.Workers, st.RequestWorkers, lim.Tokens(), lim.QueueCap(), *batch, *cacheSize)
		} else {
			log.Printf("spand: listening on %s (workers=%d batch=%d cache=%d, admission disabled)",
				*addr, st.Workers, *batch, *cacheSize)
		}
		if err := d.srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("spand: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("spand: draining (budget %s)", *drain)
	if err := d.shutdown(); err != nil {
		log.Printf("spand: drain: %v", err)
	}
	st := eng.Stats()
	log.Printf("spand: served %d documents, %d bytes, %d segments; cache hit rate %.2f",
		st.Documents, st.Bytes, st.Segments, st.PlanCache.HitRate)
}
