// Package regexformula implements the regex formulas of Section 4.1:
// regular expressions extended with capture variables x{...}. Formulas are
// parsed from a compact textual syntax, compiled to VSet-automata (package
// vsa), and can also be evaluated directly by a naive recursive matcher
// that serves as an executable reference semantics in tests.
//
// Syntax accepted by Parse:
//
//	alternation   e|f           (the paper writes e ∨ f or e + f)
//	concatenation ef            (juxtaposition; a space is a literal space)
//	repetition    e*  e+  e?
//	grouping      (e)
//	capture       x{e}          (a maximal identifier before '{' names the variable;
//	                             write a(y{e}) to concatenate a literal with a capture,
//	                             since ay{e} is a capture named "ay")
//	any byte      .             (the paper's Σ)
//	classes       [abc] [a-z] [^x]  \d \w \s
//	escapes       \n \t \r \xHH and \c for any punctuation c
//
// Following the paper (Section 4.1), formulas are interpreted under the
// Ref(α) semantics: ref-words that open or close some variable other than
// exactly once are discarded. IsFunctional reports whether the formula is
// functional (every ref-word valid), the standing assumption of the paper.
package regexformula

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alphabet"
	"repro/internal/span"
)

// Node is a regex-formula AST node.
type Node interface {
	fmt.Stringer
	isNode()
}

// EmptySet is ∅, the formula matching nothing.
type EmptySet struct{}

// Epsilon matches the empty string.
type Epsilon struct{}

// Lit matches one byte from Class.
type Lit struct{ Class alphabet.Class }

// Cat is the concatenation of its factors (empty list = ε).
type Cat struct{ Items []Node }

// Alt is the disjunction of its branches.
type Alt struct{ Items []Node }

// Star is Kleene iteration.
type Star struct{ Inner Node }

// Capture binds the span matched by Inner to variable Var.
type Capture struct {
	Var   string
	Inner Node
}

func (EmptySet) isNode() {}
func (Epsilon) isNode()  {}
func (Lit) isNode()      {}
func (Cat) isNode()      {}
func (Alt) isNode()      {}
func (Star) isNode()     {}
func (Capture) isNode()  {}

func (EmptySet) String() string { return "∅" }
func (Epsilon) String() string  { return "ε" }

func (l Lit) String() string {
	if l.Class == alphabet.Any {
		return "."
	}
	bs := l.Class.Bytes()
	if len(bs) == 1 {
		return escapeByte(bs[0])
	}
	return l.Class.String()
}

// escapeByte renders one literal byte in re-parseable syntax.
func escapeByte(b byte) string {
	switch b {
	case '|', '*', '+', '?', '(', ')', '{', '}', '[', ']', '\\', '.', '^', '-':
		return "\\" + string(b)
	case '\n':
		return `\n`
	case '\t':
		return `\t`
	case '\r':
		return `\r`
	}
	if b >= 0x20 && b <= 0x7e {
		return string(b)
	}
	return fmt.Sprintf(`\x%02x`, b)
}

func (c Cat) String() string {
	if len(c.Items) == 0 {
		return "ε"
	}
	parts := make([]string, len(c.Items))
	for i, n := range c.Items {
		if _, ok := n.(Alt); ok {
			parts[i] = "(" + n.String() + ")"
		} else {
			parts[i] = n.String()
		}
	}
	return strings.Join(parts, "")
}

func (a Alt) String() string {
	parts := make([]string, len(a.Items))
	for i, n := range a.Items {
		parts[i] = n.String()
	}
	return strings.Join(parts, "|")
}

func (s Star) String() string {
	switch s.Inner.(type) {
	case Alt, Cat:
		return "(" + s.Inner.String() + ")*"
	}
	return s.Inner.String() + "*"
}

func (c Capture) String() string { return c.Var + "{" + c.Inner.String() + "}" }

// Vars returns the capture variables of the formula in first-occurrence
// order.
func Vars(n Node) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case Cat:
			for _, i := range t.Items {
				walk(i)
			}
		case Alt:
			for _, i := range t.Items {
				walk(i)
			}
		case Star:
			walk(t.Inner)
		case Capture:
			if !seen[t.Var] {
				seen[t.Var] = true
				out = append(out, t.Var)
			}
			walk(t.Inner)
		}
	}
	walk(n)
	return out
}

// outcome is one way a subformula can match: it consumed input up to end
// (0-based byte offset) and produced the given variable bindings.
type outcome struct {
	end   int
	binds map[string]span.Span
}

func bindKey(m map[string]span.Span) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d:%d;", k, m[k].Start, m[k].End)
	}
	return b.String()
}

func mergeBinds(a, b map[string]span.Span) (map[string]span.Span, bool) {
	out := make(map[string]span.Span, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if _, dup := out[k]; dup {
			// The same variable opened twice: the ref-word is invalid and
			// this outcome is discarded by the Ref(α) semantics.
			return nil, false
		}
		out[k] = v
	}
	return out, true
}

// matches enumerates the distinct outcomes of n on doc starting at byte
// offset start.
func matches(n Node, doc string, start int) []outcome {
	switch t := n.(type) {
	case EmptySet:
		return nil
	case Epsilon:
		return []outcome{{start, nil}}
	case Lit:
		if start < len(doc) && t.Class.Has(doc[start]) {
			return []outcome{{start + 1, nil}}
		}
		return nil
	case Capture:
		var out []outcome
		for _, o := range matches(t.Inner, doc, start) {
			b, ok := mergeBinds(o.binds, map[string]span.Span{
				t.Var: span.FromByteOffsets(start, o.end),
			})
			if ok {
				out = append(out, outcome{o.end, b})
			}
		}
		return out
	case Alt:
		var out []outcome
		seen := map[string]bool{}
		for _, i := range t.Items {
			for _, o := range matches(i, doc, start) {
				k := fmt.Sprintf("%d|%s", o.end, bindKey(o.binds))
				if !seen[k] {
					seen[k] = true
					out = append(out, o)
				}
			}
		}
		return out
	case Cat:
		outs := []outcome{{start, nil}}
		for _, item := range t.Items {
			var next []outcome
			seen := map[string]bool{}
			for _, o := range outs {
				for _, o2 := range matches(item, doc, o.end) {
					b, ok := mergeBinds(o.binds, o2.binds)
					if !ok {
						continue
					}
					k := fmt.Sprintf("%d|%s", o2.end, bindKey(b))
					if !seen[k] {
						seen[k] = true
						next = append(next, outcome{o2.end, b})
					}
				}
			}
			outs = next
			if len(outs) == 0 {
				break
			}
		}
		return outs
	case Star:
		seen := map[string]bool{}
		frontier := []outcome{{start, nil}}
		all := []outcome{{start, nil}}
		seen[fmt.Sprintf("%d|", start)] = true
		for len(frontier) > 0 {
			var next []outcome
			for _, o := range frontier {
				for _, o2 := range matches(t.Inner, doc, o.end) {
					b, ok := mergeBinds(o.binds, o2.binds)
					if !ok {
						continue
					}
					// Disallow ε-iterations: a starred subformula matching ε
					// adds nothing new and would loop forever.
					if o2.end == o.end && len(o2.binds) == 0 {
						continue
					}
					k := fmt.Sprintf("%d|%s", o2.end, bindKey(b))
					if !seen[k] {
						seen[k] = true
						no := outcome{o2.end, b}
						next = append(next, no)
						all = append(all, no)
					}
				}
			}
			frontier = next
		}
		return all
	}
	panic(fmt.Sprintf("regexformula: unknown node %T", n))
}

// EvalNaive evaluates the formula on doc by direct recursion over the AST,
// implementing the Ref(α) semantics of Section 4.1 without any automata.
// It is exponential on pathological inputs and exists as the executable
// reference that the automata pipeline is tested against.
func EvalNaive(n Node, doc string) *span.Relation {
	vars := Vars(n)
	rel := span.NewRelation(vars...)
	for _, o := range matches(n, doc, 0) {
		if o.end != len(doc) {
			continue
		}
		// Only valid ref-words count: every variable bound exactly once.
		if len(o.binds) != len(vars) {
			continue
		}
		t := make(span.Tuple, len(vars))
		for i, v := range vars {
			t[i] = o.binds[v]
		}
		rel.Add(t)
	}
	rel.Dedupe()
	return rel
}
