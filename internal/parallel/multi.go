package parallel

import (
	"context"

	"repro/internal/span"
	"repro/internal/vsa"
)

// MultiEval evaluates a fused multi-query set over the segments with the
// given number of workers and returns one relation per member query, in
// member order — each byte-identical to SplitEval of that member alone
// over the same segments. Segments are chunked onto the work-stealing
// deques exactly like SplitEval; each worker runs the fused automaton
// per segment and demultiplexes into per-query arena-backed relations,
// merged and offset-sorted per query at the end, so the results do not
// depend on the worker count or steal schedule. workers ≤ 0 means
// runtime.GOMAXPROCS(0).
func MultiEval(m *vsa.Multi, segments []Segment, workers int) []*span.Relation {
	rels, _ := MultiEvalCtx(context.Background(), m, segments, Options{Workers: workers})
	return rels
}

// MultiEvalCtx is MultiEval with cancellation and Options. Like
// SplitEvalCtx, workers stop between segments when ctx fires and the
// partial per-query relations accumulated so far are returned (sorted
// and deduplicated) together with ctx's error.
func MultiEvalCtx(ctx context.Context, m *vsa.Multi, segments []Segment, opts Options) ([]*span.Relation, error) {
	grain := opts.grain(len(segments))
	// Destinations index member queries, not documents: every chunk is
	// dealt with dest 0 and the fused evaluator demultiplexes into the
	// accumulator's per-query relations directly.
	x := newExecutor(ctx, multiEval{m}, opts.workers(), m.Len(), grain, nil, opts.Metrics)
	x.deal(chunked(0, segments, grain, nil))
	return x.run(), ctx.Err()
}
