package spanners

import (
	"strings"
	"testing"
)

func TestFacadeSurface(t *testing.T) {
	p := MustCompile(".*y{ab}.*")
	if got := p.Vars(); len(got) != 1 || got[0] != "y" {
		t.Fatalf("Vars = %v", got)
	}
	if !p.Matches("xxabxx") || p.Matches("ba") {
		t.Fatal("Matches broken")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "vars=[y]") {
		t.Fatalf("String = %q", p.String())
	}
	proj, err := p.Project()
	if err != nil {
		t.Fatal(err)
	}
	if proj.Vars() == nil && len(proj.Vars()) != 0 {
		t.Fatal("projection to Boolean failed")
	}
	if _, err := p.Project("nope"); err == nil {
		t.Fatal("bad projection must fail")
	}
	if _, err := p.Union(MustCompile("z{a}")); err == nil {
		t.Fatal("incompatible union must fail")
	}
	wrapped, err := FromAutomaton(p.Automaton())
	if err != nil {
		t.Fatal(err)
	}
	eq, err := wrapped.EquivalentTo(p)
	if err != nil || !eq {
		t.Fatalf("FromAutomaton round trip: %v %v", eq, err)
	}
}

func TestFacadeSplitterSurface(t *testing.T) {
	s := MustCompileSplitter(".*x{..}.*")
	doc := "abcd"
	segs := s.Segments(doc)
	if len(segs) != 3 || segs[0].Text != "ab" {
		t.Fatalf("Segments = %v", segs)
	}
	if !strings.Contains(s.String(), "var=x") {
		t.Fatalf("String = %q", s.String())
	}
	sp, err := SplitterFrom(MustCompile(".*x{.}.*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Split("ab")) != 2 {
		t.Fatal("SplitterFrom broken")
	}
}

func TestFacadeComposeAndCanonical(t *testing.T) {
	ps := MustCompile("y{a}")
	s := MustCompileSplitter(".*x{.}.*")
	comp := Compose(ps, s)
	rel := comp.Eval("aba")
	if rel.Len() != 2 {
		t.Fatalf("composed eval = %v", rel)
	}
	p := MustCompile(".*y{a}.*")
	can := Canonical(p, s)
	ok, err := SplitCorrect(p, can, s)
	if err != nil || !ok {
		t.Fatalf("canonical must be split-correct: %v %v", ok, err)
	}
	// SelfSplittable general fallback path (non-disjoint splitter): every
	// "ab" occurrence is itself a 2-gram window, so this holds.
	grams := MustCompileSplitter(".*x{..}.*")
	ok, err = SelfSplittable(MustCompile(".*y{ab}.*"), grams)
	if err != nil || !ok {
		t.Fatalf("ab-extractor must be self-splittable by 2-grams: %v %v", ok, err)
	}
	// A 3-byte span is not coverable by 2-gram windows.
	ok, err = SelfSplittable(MustCompile(".*y{aab}.*"), grams)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("3-byte spans cannot be self-splittable by 2-grams")
	}
}
