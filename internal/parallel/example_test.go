package parallel_test

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/regexformula"
)

// CollectionEval schedules whole, independent documents across the
// work-stealing pool — no splitter involved — and returns one relation
// per document, in input order.
func ExampleCollectionEval() {
	p := regexformula.MustCompile(".*(x{ab}).*|(x{ab}).*")
	docs := []string{
		"ab cd ab",
		"no match here",
		"ab",
	}
	rels := parallel.CollectionEval(p, docs, 4)
	for i, r := range rels {
		fmt.Printf("doc %d: %d match(es)\n", i, r.Len())
	}
	// Output:
	// doc 0: 2 match(es)
	// doc 1: 0 match(es)
	// doc 2: 1 match(es)
}
