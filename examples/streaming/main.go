// The three streaming modes of the extraction engine, demonstrated on
// ngram-style word splitters:
//
//  1. Proven-local auto-stream: the unigram (1-gram) splitter's
//     locality is decided on its automaton (core.Splitter.IsLocal), so
//     the engine segments uploads incrementally with no configuration —
//     correctness by proof.
//  2. Forced -stream-incremental: a disjoint splitter the procedure
//     refuses (words are segments only when the record ends in '!')
//     can be force-streamed, but the flag is an unsafe assertion —
//     this program shows the silent mis-extraction a wrong assertion
//     causes.
//  3. Buffer-all fallback: the same unproven splitter on a default
//     engine is buffered whole, which is sound for every splitter.
//
// Run with: go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	spanners "repro"
)

const (
	// A unigram splitter: every space/bang-separated word, ngram-style
	// with n=1. Separators and word bytes partition the alphabet, so
	// segmentation is separator-determined — the locality procedure
	// proves it streamable.
	unigramFormula = `(x{[^ !]+})([ !].*)?|.*[ !](x{[^ !]+})([ !].*)?`
	// Word extractor of the same shape: self-splittable by unigrams.
	wordFormula = `(y{[^ !]+})([ !].*)?|.*[ !](y{[^ !]+})([ !].*)?`

	// The same unigrams, but only on records that end in '!': whether
	// any word is a segment depends on the last byte of the document —
	// unbounded right context. Disjoint, but provably NOT local, and
	// genuinely unsafe to stream.
	suffixUnigramFormula = `(x{[^ !]+})( [^ !]+)*!|[^ !]+( [^ !]+)* (x{[^ !]+})( [^ !]+)*!`
	// Its split-correct companion pair: P extracts every word of a
	// '!'-terminated record, and per segment the split-spanner P_S
	// selects the whole word, so P = P_S ∘ S holds (and the engine
	// proves it).
	bangWordFormula = `(y{[^ !]+})( [^ !]+)*!|[^ !]+( [^ !]+)* (y{[^ !]+})( [^ !]+)*!`
	segWordFormula  = `(y{[^ !]+})`
)

func run(name string, cfg spanners.EngineConfig, req spanners.ExtractRequest, doc string) {
	ctx := context.Background()
	eng := spanners.NewEngine(cfg)
	plan, _, err := eng.Plan(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	streamed, err := eng.ExtractReader(ctx, plan, strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	oneShot, err := eng.Extract(ctx, plan, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", name)
	fmt.Printf("  doc: %q\n", doc)
	fmt.Printf("  strategy=%v disjoint=%v local=%v → streams without flag: %v\n",
		plan.Strategy, plan.Verdicts.Disjoint, plan.Verdicts.Local,
		plan.Verdicts.Local.String() == "yes")
	fmt.Printf("  streamed %d tuples vs one-shot %d tuples — identical: %v\n\n",
		streamed.Len(), oneShot.Len(), streamed.Equal(oneShot))
}

func main() {
	// The locality verdict, standalone: what /v1/check reports and what
	// the engine consults before streaming.
	s := spanners.MustCompileSplitter(unigramFormula)
	local, err := s.IsLocal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unigram splitter:            disjoint=%v local=%v\n", s.IsDisjoint(), local)
	u := spanners.MustCompileSplitter(suffixUnigramFormula)
	local, err = u.IsLocal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suffix-conditioned unigrams: disjoint=%v local=%v\n\n", u.IsDisjoint(), local)

	// Mode 1: proven local — a default engine streams automatically and
	// the result is guaranteed identical to one-shot evaluation.
	run("1· proven-local auto-stream (unigrams, default engine)",
		spanners.EngineConfig{Workers: 2, ChunkSize: 5},
		spanners.ExtractRequest{Spanner: wordFormula, Splitter: unigramFormula},
		"alpha beta gamma delta epsilon!")

	// Mode 3: the unproven splitter on the same default engine buffers
	// the whole stream — slower to first result, but always correct.
	bangReq := spanners.ExtractRequest{
		Spanner:      bangWordFormula,
		SplitSpanner: segWordFormula,
		Splitter:     suffixUnigramFormula,
	}
	// The '!' sits exactly where the incremental segmenter's backoff
	// schedule (5-byte chunks, re-split at 5, 10, 20 buffered bytes)
	// runs the splitter, so the buffer transiently looks like a
	// complete record.
	doc := "alpha beta gamma ab! more words here"
	run("3· buffer-all fallback (suffix-conditioned, default engine)",
		spanners.EngineConfig{Workers: 2, ChunkSize: 5},
		bangReq, doc)

	// Mode 2: forcing the unproven splitter on the same document. The
	// document does not end in '!', so its true segmentation — and
	// extraction — is empty; but the forced segmenter sees the buffer
	// end at "ab!", believes the earlier words are settled, and emits
	// tuples the whole document never yields. This silent divergence is
	// exactly what the locality proof rules out.
	run("2· forced -stream-incremental (suffix-conditioned; UNSAFE)",
		spanners.EngineConfig{Workers: 2, ChunkSize: 5, StreamIncremental: true},
		bangReq, doc)
}
