package engine

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/automata"
	"repro/internal/core"
	"repro/internal/regexformula"
	"repro/internal/vsa"
)

// Strategy is the evaluation strategy an extraction plan settled on.
type Strategy int8

const (
	// StrategySequential evaluates the spanner directly on the whole
	// document — the fallback whenever split evaluation is not known to
	// be equivalent.
	StrategySequential Strategy = iota
	// StrategySplit applies the splitter, evaluates the split-spanner on
	// every segment on the work-stealing executor, and merges the shifted
	// results —
	// the paper's split-then-distribute plan, safe because the plan's
	// verdict established P = P_S ∘ S.
	StrategySplit
)

func (s Strategy) String() string {
	if s == StrategySplit {
		return "split-parallel"
	}
	return "sequential"
}

// MarshalText renders the strategy for JSON consumers.
func (s Strategy) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Request names an extraction plan: a spanner formula, optionally a
// splitter formula, and optionally an explicit split-spanner formula.
// The three formulas are the plan-cache key.
type Request struct {
	// Spanner is the regex formula of the spanner P (required).
	Spanner string
	// Splitter is the unary regex formula of the splitter S; when empty
	// the plan is sequential-only.
	Splitter string
	// SplitSpanner is the regex formula of an explicit split-spanner
	// P_S. When empty and a splitter is given, the plan checks
	// self-splittability (P_S = P); when given, it checks
	// split-correctness of (P, P_S, S).
	SplitSpanner string
	// Tenant scopes the plan in the cache's per-tenant quotas (the
	// daemon fills it from the configured tenant header). It is part of
	// the cache key: tenants never share entries, so one tenant's churn
	// can only evict that tenant's plans and quota accounting stays
	// unambiguous. Empty is the anonymous default tenant.
	Tenant string
}

// key is the plan-cache key. Fields are length-prefixed so no byte
// sequence inside a formula (NUL included — it is a legal literal) can
// make two distinct requests collide.
func (r Request) key() string {
	return fmt.Sprintf("%d:%s%d:%s%d:%s%d:%s",
		len(r.Tenant), r.Tenant,
		len(r.Spanner), r.Spanner, len(r.Splitter), r.Splitter, len(r.SplitSpanner), r.SplitSpanner)
}

// Plan is a compiled, verdict-annotated extraction plan: the unit the
// engine's cache memoizes so the PSPACE decision procedures and the
// automaton compilation run once per (spanner, splitter) pair, not once
// per request.
type Plan struct {
	// Req is the source request (also the cache key).
	Req Request
	// Verdicts holds the memoized decision-procedure outcomes.
	Verdicts core.PlanVerdicts
	// Strategy is the evaluation strategy the verdicts justify.
	Strategy Strategy
	// CompileTime is how long compilation plus the decision procedures
	// took; cache hits amortize exactly this cost.
	CompileTime time.Duration

	p  *vsa.Automaton // the spanner P
	ps *vsa.Automaton // the split-spanner P_S (nil unless StrategySplit)
	s  *core.Splitter // the splitter S (nil when Req.Splitter is empty)

	// batch, when non-nil, marks a fused multi-query plan (PlanBatch):
	// p/ps/s are nil and the members plus the fused evaluator live here.
	batch *batchPlan
}

// Spanner exposes the compiled spanner automaton.
func (p *Plan) Spanner() *vsa.Automaton { return p.p }

// SplitterOf exposes the compiled splitter, or nil for sequential-only
// plans.
func (p *Plan) SplitterOf() *core.Splitter { return p.s }

// Vars returns the plan's output variables. Batch plans have no single
// variable list — use BatchVars per slot.
func (p *Plan) Vars() []string {
	if p.p == nil {
		return nil
	}
	return append([]string(nil), p.p.Vars...)
}

// cost estimates the plan's resident memory in bytes for the cache's
// byte budgets: a per-plan baseline (entry bookkeeping, formula
// strings) plus a per-state/per-edge charge for every distinct
// automaton the plan holds. The compiled evaluation caches (byte-class
// tables, lazy DFAs) grow with the same quantities, so the estimate is
// monotone in the real footprint even though it does not measure the
// lazily-built parts.
func (p *Plan) cost() int64 {
	const (
		base       = 512
		perState   = 96
		perEdge    = 48
		perFormula = 1 // per byte of formula text
	)
	c := int64(base)
	c += int64(len(p.Req.Spanner)+len(p.Req.Splitter)+len(p.Req.SplitSpanner)) * perFormula
	add := func(states, edges int) { c += int64(states)*perState + int64(edges)*perEdge }
	if p.p != nil {
		add(p.p.NumStates(), p.p.NumEdges())
	}
	if p.ps != nil && p.ps != p.p {
		add(p.ps.NumStates(), p.ps.NumEdges())
	}
	if p.s != nil {
		a := p.s.Automaton()
		add(a.NumStates(), a.NumEdges())
	}
	if p.batch != nil {
		// A fused plan is charged for every distinct member automaton it
		// holds (the fused DFA's lazily-built state space grows with the
		// members' combined size) plus its own formula text, so N cheap
		// formulas registered as one batch cost the cache roughly what N
		// singleton plans would.
		for _, s := range p.batch.req.Spanners {
			c += int64(len(s)) * perFormula
		}
		for _, a := range p.batch.members {
			add(a.NumStates(), a.NumEdges())
		}
	}
	return c
}

// compilePlan builds a Plan from a request: it compiles the formulas,
// runs the relevant decision procedures under the state limit, and picks
// the strategy. A limit overflow (automata.ErrTooLarge) is not an error:
// the verdict stays unknown and the plan degrades to sequential
// evaluation, which is always correct.
//
// compilePlan deliberately takes no context: it runs under the cache's
// single-flight, and a build started on behalf of one request serves
// every coalesced waiter — cancelling it because the first requester
// went away would fail the others. The decision procedures themselves
// are bounded by the state limit rather than by cancellation.
func compilePlan(req Request, limit int) (*Plan, error) {
	if req.Spanner == "" {
		return nil, errors.New("engine: empty spanner formula")
	}
	t0 := time.Now()
	plan := &Plan{Req: req}
	defer func() { plan.warm() }()
	var err error
	plan.p, err = regexformula.Compile(req.Spanner)
	if err != nil {
		return nil, fmt.Errorf("engine: spanner: %w", err)
	}
	if req.Splitter == "" {
		if req.SplitSpanner != "" {
			return nil, errors.New("engine: split_spanner given without a splitter")
		}
		plan.CompileTime = time.Since(t0)
		return plan, nil
	}
	sAuto, err := regexformula.Compile(req.Splitter)
	if err != nil {
		return nil, fmt.Errorf("engine: splitter: %w", err)
	}
	plan.s, err = core.NewSplitter(sAuto)
	if err != nil {
		return nil, fmt.Errorf("engine: splitter: %w", err)
	}
	plan.Verdicts.Disjoint = core.VerdictOf(plan.s.IsDisjoint())
	// Locality is what licenses incremental segmentation of streamed
	// documents (Engine.WillStream): computed here, once, under the plan
	// cache's single-flight, like every other verdict. Only disjoint
	// splitters can be local; an over-budget analysis leaves the verdict
	// unknown and the plan buffers.
	if plan.Verdicts.Disjoint != core.VerdictYes {
		plan.Verdicts.Local = core.VerdictNo
	} else {
		local, err := plan.s.IsLocal(limit)
		switch {
		case errors.Is(err, automata.ErrTooLarge):
			plan.Verdicts.Note = appendNote(plan.Verdicts.Note, "locality undecided: "+err.Error())
		case err != nil:
			return nil, fmt.Errorf("engine: locality: %w", err)
		default:
			plan.Verdicts.Local = core.VerdictOf(local)
		}
	}

	if req.SplitSpanner != "" {
		ps, err := regexformula.Compile(req.SplitSpanner)
		if err != nil {
			return nil, fmt.Errorf("engine: split_spanner: %w", err)
		}
		ok, err := core.SplitCorrectAuto(plan.p, ps, plan.s, limit)
		switch {
		case errors.Is(err, automata.ErrTooLarge):
			plan.Verdicts.Note = appendNote(plan.Verdicts.Note, "split-correctness undecided: "+err.Error())
		case err != nil:
			return nil, fmt.Errorf("engine: split-correctness: %w", err)
		default:
			plan.Verdicts.SplitCorrect = core.VerdictOf(ok)
			if ok {
				plan.Strategy = StrategySplit
				plan.ps = ps
			}
		}
		plan.CompileTime = time.Since(t0)
		return plan, nil
	}

	ok, err := selfSplittable(plan.p, plan.s, limit)
	switch {
	case errors.Is(err, automata.ErrTooLarge):
		plan.Verdicts.Note = appendNote(plan.Verdicts.Note, "self-splittability undecided: "+err.Error())
	case err != nil:
		return nil, fmt.Errorf("engine: self-splittability: %w", err)
	default:
		plan.Verdicts.SelfSplittable = core.VerdictOf(ok)
		if ok {
			plan.Strategy = StrategySplit
			plan.ps = plan.p
		}
	}
	plan.CompileTime = time.Since(t0)
	return plan, nil
}

// appendNote joins verdict notes: several procedures can independently
// exceed the state budget on one plan.
func appendNote(existing, note string) string {
	if existing == "" {
		return note
	}
	return existing + "; " + note
}

// warm forces the evaluation caches (byte-class tables, lazy-DFA start
// states, suffix-universality) of every automaton the plan will evaluate
// with, so the caches are built once under the plan cache's single-flight
// and every extraction request served from the cache — including
// concurrent ones — reuses the same compiled evaluators. Warming also
// freezes the automata, guaranteeing no code path can mutate a cached
// plan's machines.
func (p *Plan) warm() {
	if p.p != nil {
		p.p.Prepare()
	}
	if p.ps != nil {
		p.ps.Prepare()
	}
	if p.s != nil {
		p.s.Automaton().Prepare()
	}
	if p.batch != nil && p.batch.multi != nil {
		// Prepares the fused groups and every member's compiled caches.
		p.batch.multi.Prepare()
	}
}

// selfSplittable mirrors the façade's procedure selection: the
// polynomial Theorem 5.17 algorithm when the automata are deterministic
// and the splitter disjoint, the general Theorem 5.16 procedure
// otherwise.
func selfSplittable(p *vsa.Automaton, s *core.Splitter, limit int) (bool, error) {
	if p.Arity() > 0 && p.IsDeterministic() &&
		s.Automaton().IsDeterministic() && s.IsDisjoint() {
		return core.SelfSplittablePoly(p, s)
	}
	return core.SelfSplittable(p, s, limit)
}
