package filterx

import (
	"testing"

	"repro/internal/core"
	"repro/internal/regexformula"
	"repro/internal/vsa"
)

func docs(sigma string, maxLen int) []string {
	out := []string{""}
	frontier := []string{""}
	for l := 0; l < maxLen; l++ {
		var next []string
		for _, d := range frontier {
			for i := 0; i < len(sigma); i++ {
				next = append(next, d+string(sigma[i]))
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

func splitterOf(t *testing.T, src string) *core.Splitter {
	t.Helper()
	s, err := core.NewSplitter(regexformula.MustCompile(src))
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return s
}

func TestFilteredSplitterSemantics(t *testing.T) {
	s := splitterOf(t, ".*x{.}.*")
	l := regexformula.MustCompile("a.*")
	fs, err := NewFilteredSplitter(s, l)
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.Split("ab"); len(got) != 2 {
		t.Fatalf("S[L](ab) = %v, want 2 unit spans", got)
	}
	if got := fs.Split("ba"); got != nil {
		t.Fatalf("S[L](ba) = %v, want nothing", got)
	}
	// Materialized splitter agrees everywhere (S[L] is an ordinary
	// splitter, Section 7.2).
	mat, err := fs.AsSplitter()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs("ab", 5) {
		a := fs.Split(d)
		b := mat.Split(d)
		if len(a) != len(b) {
			t.Fatalf("materialization differs on %q: %v vs %v", d, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("materialization differs on %q", d)
			}
		}
	}
	if _, err := NewFilteredSplitter(s, regexformula.MustCompile("x{a}")); err == nil {
		t.Fatal("non-Boolean filter must be rejected")
	}
}

func TestMinimalFilterLemma75(t *testing.T) {
	// P checks a format precondition ("document starts with a") before
	// extracting; with the plain unit splitter P is not split-correct, but
	// it becomes so under the minimal filter L_P.
	p := regexformula.MustCompile("a[ab]*;.*y{b}.*|.*y{b}.*;a[ab]*")
	lp := MinimalFilter(p)
	for _, d := range docs("ab;", 4) {
		if lp.EvalBool(d) != (p.Eval(d).Len() > 0) {
			t.Fatalf("L_P wrong on %q", d)
		}
	}
}

func TestSplitCorrectWithFilter(t *testing.T) {
	// P extracts single b's but only from documents that start with a —
	// a regular precondition in the sense of Section 7.2.
	p := regexformula.MustCompile("a(.*y{b}.*)|(y{b}).*")
	// Actually use a simpler shape: P defined on documents starting with
	// a only.
	p = regexformula.MustCompile("a.*y{b}.*|a(y{b}).*")
	ps := regexformula.MustCompile("y{b}")
	s := splitterOf(t, ".*x{.}.*")
	// Without a filter, split-correctness fails: on "bb" P is empty but
	// PS ∘ S extracts both b's.
	ok, err := core.SplitCorrect(p, ps, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("premise: P must not be split-correct without a filter")
	}
	ok, filter, err := SplitCorrectWithFilter(p, ps, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("a filter must exist (L_P works)")
	}
	// Verify the returned filter by brute force: P = PS ∘ S[filter].
	fs, err := NewFilteredSplitter(s, filter)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs("ab", 5) {
		want := p.Eval(d)
		got := want.Len() == 0
		var count int
		for _, sp := range fs.Split(d) {
			for _, tp := range ps.Eval(sp.In(d)).Tuples {
				if !want.Has(tp.Shift(sp)) {
					t.Fatalf("S[L] produces extra tuple on %q", d)
				}
				count++
			}
		}
		_ = got
		if count < want.Len() {
			t.Fatalf("S[L] misses tuples on %q", d)
		}
	}
}

func TestSplitCorrectWithFilterNegative(t *testing.T) {
	// No filter can fix a genuine boundary crossing: 2-byte spans with a
	// unit splitter.
	p := regexformula.MustCompile(".*y{ab}.*")
	ps := regexformula.MustCompile("y{ab}")
	s := splitterOf(t, ".*x{.}.*")
	ok, _, err := SplitCorrectWithFilter(p, ps, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("no filter can repair a span that crosses split boundaries")
	}
}

func TestSelfSplittableWithFilter(t *testing.T) {
	// P extracts unit b-spans on documents that contain no 'c' (a format
	// check); the filter removes the offending documents.
	p := regexformula.MustCompile("[ab]*y{b}[ab]*")
	s := splitterOf(t, ".*x{.}.*")
	ok, err := core.SelfSplittable(p, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("premise: P must not be self-splittable without a filter (c-documents)")
	}
	ok, filter, err := SelfSplittableWithFilter(p, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("P must be self-splittable under its domain filter")
	}
	if filter.EvalBool("acb") {
		t.Fatal("filter must exclude documents with c")
	}
	if !filter.EvalBool("ab") {
		t.Fatal("filter must keep pure ab documents with a b")
	}
}

func TestSplittableWithFilter(t *testing.T) {
	p := regexformula.MustCompile("[ab]*y{b}[ab]*")
	s := splitterOf(t, ".*x{.}.*")
	ok, filter, witness, err := SplittableWithFilter(p, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("P must be splittable under a filter")
	}
	// Verify end to end: P = witness ∘ S[filter] by brute force.
	fs, err := NewFilteredSplitter(s, filter)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs("abc", 4) {
		want := p.Eval(d)
		gotRel := want.Len() == 0
		_ = gotRel
		count := 0
		for _, sp := range fs.Split(d) {
			rel := witness.Eval(sp.In(d))
			aligned, err := rel.Project(want.Vars)
			if err != nil {
				t.Fatal(err)
			}
			for _, tp := range aligned.Tuples {
				if !want.Has(tp.Shift(sp)) {
					t.Fatalf("witness produces extra tuple on %q", d)
				}
				count++
			}
		}
		if count < want.Len() {
			t.Fatalf("witness misses tuples on %q (%d < %d)", d, count, want.Len())
		}
	}
	var _ *vsa.Automaton = witness
}
