package vsa

import (
	"fmt"

	"repro/internal/alphabet"
)

// RawLabelKind discriminates the label of a raw VSet-automaton edge.
type RawLabelKind int

// The three raw label kinds of Section 4.2: byte classes (Σ-transitions),
// ε, and single variable operations.
const (
	LabelSymbol RawLabelKind = iota
	LabelEpsilon
	LabelOp
)

// RawEdge is one transition of a Raw automaton.
type RawEdge struct {
	Kind  RawLabelKind
	Class alphabet.Class // for LabelSymbol
	Op    OpSet          // for LabelOp: a single Open(v) or Close(v)
	To    int
}

// Raw is a standard VSet-automaton: an ε-NFA over Σ ∪ ΓV as defined in
// Section 4.2. It is the natural compilation target for regex formulas and
// the representation on which the paper's notions of weak determinism are
// stated; decision procedures operate on the compiled Automaton form.
type Raw struct {
	Vars  []string
	Start int
	Final []bool
	Adj   [][]RawEdge
}

// NewRaw returns a raw automaton with one non-final start state.
func NewRaw(vars ...string) *Raw {
	if len(vars) > MaxVars {
		panic(fmt.Sprintf("vsa: at most %d variables are supported", MaxVars))
	}
	return &Raw{Vars: append([]string(nil), vars...), Final: []bool{false}, Adj: [][]RawEdge{nil}}
}

// AddState adds a state and returns its id.
func (r *Raw) AddState(final bool) int {
	r.Final = append(r.Final, final)
	r.Adj = append(r.Adj, nil)
	return len(r.Final) - 1
}

// SetFinal marks q accepting.
func (r *Raw) SetFinal(q int, f bool) { r.Final[q] = f }

// AddSymbolEdge adds q --class--> to.
func (r *Raw) AddSymbolEdge(q int, class alphabet.Class, to int) {
	r.Adj[q] = append(r.Adj[q], RawEdge{Kind: LabelSymbol, Class: class, To: to})
}

// AddEpsilonEdge adds q --ε--> to.
func (r *Raw) AddEpsilonEdge(q, to int) {
	r.Adj[q] = append(r.Adj[q], RawEdge{Kind: LabelEpsilon, To: to})
}

// AddOpEdge adds q --op--> to for a single variable operation.
func (r *Raw) AddOpEdge(q int, op OpSet, to int) {
	if op.Count() != 1 {
		panic("vsa: AddOpEdge takes a single variable operation")
	}
	r.Adj[q] = append(r.Adj[q], RawEdge{Kind: LabelOp, Op: op, To: to})
}

// NumStates returns the number of states.
func (r *Raw) NumStates() int { return len(r.Final) }

// IsWeaklyDeterministic reports whether the automaton is weakly
// deterministic in the sense of Maturana et al. (Section 4.2): no
// ε-transitions and at most one transition per state and per letter of the
// extended alphabet Σ ∪ ΓV. Byte-class edges are weakly deterministic if
// classes leading to different states are disjoint. Theorem 4.2 shows
// containment remains PSPACE-hard for this class.
func (r *Raw) IsWeaklyDeterministic() bool {
	for _, es := range r.Adj {
		var ops = map[OpSet][]int{}
		var sym []RawEdge
		for _, e := range es {
			switch e.Kind {
			case LabelEpsilon:
				return false
			case LabelOp:
				ops[e.Op] = append(ops[e.Op], e.To)
			case LabelSymbol:
				sym = append(sym, e)
			}
		}
		for _, tos := range ops {
			for i := 1; i < len(tos); i++ {
				if tos[i] != tos[0] {
					return false
				}
			}
		}
		for i := 0; i < len(sym); i++ {
			for j := i + 1; j < len(sym); j++ {
				if sym[i].To != sym[j].To && sym[i].Class.Intersects(sym[j].Class) {
					return false
				}
			}
		}
	}
	return true
}

// Compile converts a raw VSet-automaton into the functional extended form.
// The construction is a product with the variable-validity monitor: states
// are pairs (raw state, status vector), transitions follow maximal blocks
// of ε- and operation-edges between byte edges, and acceptance requires
// the all-closed status. Invalid ref-words (variable misuse) are pruned,
// so ⟦Compile(r)⟧ = ⟦r⟧ under the Ref(A) semantics of Section 4.2, and the
// result is functional by construction. The worst-case blowup is 3^|Vars|,
// the price of functionality; IE spanners use few variables.
func (r *Raw) Compile() *Automaton {
	out := NewAutomaton(r.Vars...)
	type key struct {
		q  int
		st Status
	}
	id := map[key]int{{r.Start, 0}: 0}
	queue := []key{{r.Start, 0}}
	intern := func(k key) int {
		if i, ok := id[k]; ok {
			return i
		}
		i := out.AddState()
		id[k] = i
		queue = append(queue, k)
		return i
	}
	allClosed := AllClosed(len(r.Vars))
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		from := id[k]
		// Closure over ε/op edges: all (state, status) pairs reachable
		// from k without consuming input.
		type node struct {
			q  int
			st Status
		}
		seen := map[node]bool{{k.q, k.st}: true}
		stack := []node{{k.q, k.st}}
		var closure []node
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			closure = append(closure, n)
			for _, e := range r.Adj[n.q] {
				switch e.Kind {
				case LabelEpsilon:
					nn := node{e.To, n.st}
					if !seen[nn] {
						seen[nn] = true
						stack = append(stack, nn)
					}
				case LabelOp:
					if st, ok := n.st.Apply(e.Op); ok {
						nn := node{e.To, st}
						if !seen[nn] {
							seen[nn] = true
							stack = append(stack, nn)
						}
					}
				}
			}
		}
		for _, n := range closure {
			ops := k.st.Diff(n.st, len(r.Vars))
			if r.Final[n.q] && n.st == allClosed {
				out.AddFinal(from, ops)
			}
			for _, e := range r.Adj[n.q] {
				if e.Kind != LabelSymbol || e.Class.IsEmpty() {
					continue
				}
				to := intern(key{e.To, n.st})
				out.AddEdge(from, ops, e.Class, to)
			}
		}
	}
	return out
}

// ToRaw expands an extended automaton back into standard VSet-automaton
// form, turning every operation set into a chain of single-operation edges
// in canonical ≺ order. The result satisfies the paper's dVSA ordering
// condition (2) whenever the input was deterministic.
func (a *Automaton) ToRaw() *Raw {
	out := NewRaw(a.Vars...)
	out.Start = 0
	// State 0 of out corresponds to state 0 of a; add the rest.
	ids := make([]int, len(a.States))
	for q := range a.States {
		if q == 0 {
			ids[q] = 0
			continue
		}
		ids[q] = out.AddState(false)
	}
	// Start alignment: raw state ids mirror a's, with a.Start tracked.
	out.Start = ids[a.Start]
	// Chains of single operations are shared per (state, prefix) so that a
	// deterministic input yields a raw automaton that still has at most one
	// transition per state and extended-alphabet letter.
	type chainKey struct {
		from int
		op   OpSet
	}
	chain := map[chainKey]int{}
	opsChain := func(from int, ops OpSet) int {
		cur := from
		for v := 0; v < len(a.Vars); v++ {
			for _, op := range []OpSet{Open(v), Close(v)} {
				if !ops.Has(op) {
					continue
				}
				k := chainKey{cur, op}
				next, ok := chain[k]
				if !ok {
					next = out.AddState(false)
					chain[k] = next
					out.AddOpEdge(cur, op, next)
				}
				cur = next
			}
		}
		return cur
	}
	acceptAll := out.AddState(true)
	for q, s := range a.States {
		for _, e := range s.Edges {
			mid := opsChain(ids[q], e.Ops)
			out.AddSymbolEdge(mid, e.Class, ids[e.To])
		}
		for _, f := range s.Finals {
			end := opsChain(ids[q], f)
			out.AddEpsilonEdge(end, acceptAll)
		}
	}
	return out
}
