package parallel

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/regexformula"
	"repro/internal/span"
	"repro/internal/vsa"
)

// multiFuzzFormula mirrors core's scanFuzzFormula: the same seven
// formula families (sentence blocks, token runs, first/later blocks,
// suffix-conditioned closes, empty spans, fully random unary formulas)
// from which the fuzzer assembles multi-query sets. Replicated here
// because core's generator is unexported and parallel must not depend on
// core's test internals.
func multiFuzzFormula(mode uint8, c1, c2 byte, seed int64) string {
	seps := []string{".", ";", "!", "\\n", " ", "a", "b"}
	s1, s2 := seps[int(c1)%len(seps)], seps[int(c2)%len(seps)]
	sep := s1
	if s1 != s2 {
		sep = s1 + s2
	}
	blockStar := "(x{[^" + sep + "]*})"
	blockPlus := "(x{[^" + sep + "]+})"
	switch mode % 7 {
	case 0:
		return blockStar + "([" + sep + "][^" + sep + "]*)*|" +
			"[^" + sep + "]*([" + sep + "][^" + sep + "]*)*[" + sep + "]" + blockStar + "([" + sep + "][^" + sep + "]*)*"
	case 1:
		return blockPlus + "([" + sep + "].*)?|.*[" + sep + "]" + blockPlus + "([" + sep + "].*)?"
	case 2:
		return blockStar + "([" + sep + "][^" + sep + "]*)*"
	case 3:
		return "[^" + sep + "]*[" + sep + "]([^" + sep + "]*[" + sep + "])*" + blockStar + "([" + sep + "][^" + sep + "]*)*"
	case 4:
		b := "[^" + sep + "!]"
		w := "(x{" + b + "*})"
		return w + "([" + sep + "]" + b + "*)*!|" + b + "*([" + sep + "]" + b + "*)*[" + sep + "]" + w + "([" + sep + "]" + b + "*)*!"
	case 5:
		return "[^" + sep + "]*(x{})[" + sep + "].*|[^" + sep + "]*(x{})"
	default:
		return randomUnaryFormula(rand.New(rand.NewSource(seed)), "x", 2)
	}
}

// randomUnaryFormula mirrors core's random formula generator (see the
// comment on multiFuzzFormula).
func randomUnaryFormula(rng *rand.Rand, varName string, depth int) string {
	var piece func(d int, allowVar bool) string
	piece = func(d int, allowVar bool) string {
		if d == 0 {
			return string(rune('a' + rng.Intn(2)))
		}
		switch rng.Intn(6) {
		case 0:
			return piece(d-1, allowVar) + piece(d-1, false)
		case 1:
			return piece(d-1, false) + piece(d-1, allowVar)
		case 2:
			return "(" + piece(d-1, false) + ")*"
		case 3:
			return "(" + piece(d-1, false) + "|" + piece(d-1, false) + ")"
		case 4:
			if allowVar {
				return "(" + varName + "{" + piece(d-1, false) + "})"
			}
			return piece(d-1, false)
		default:
			return string(rune('a' + rng.Intn(2)))
		}
	}
	inner := piece(depth, false)
	ctx := []string{".*", "a*", "(a|b)*", ""}
	return ctx[rng.Intn(len(ctx))] + "(" + varName + "{" + inner + "})" + ctx[rng.Intn(len(ctx))]
}

// chopSegments cuts doc into n-byte segments covering it exactly — the
// collection-style workload MultiEval schedules.
func chopSegments(doc string, n int) []Segment {
	var segs []Segment
	for lo := 0; lo < len(doc); lo += n {
		hi := lo + n
		if hi > len(doc) {
			hi = len(doc)
		}
		segs = append(segs, Segment{Span: span.Span{Start: lo + 1, End: hi + 1}, Text: doc[lo:hi]})
	}
	return segs
}

// FuzzMultiVsSequential is the multi-query evaluator's correctness
// contract: a fused MultiEval over a random query set (2–8 formulas from
// the seven families) must be byte-identical per query to evaluating
// each member separately — with the whole document as one segment
// against member Eval, and over chopped segments against the member's
// own SplitEval — including members with the prefilter disabled (the
// `disable` bitmap) and across worker counts.
func FuzzMultiVsSequential(f *testing.F) {
	longGap := strings.Repeat(" ", 500)
	f.Add(uint64(0x0100), byte(0), byte(1), int64(1), uint8(2), uint8(0), "one. two! three\nfour.")
	f.Add(uint64(0x030201), byte(4), byte(3), int64(2), uint8(3), uint8(1), "a b  c\nd ")
	f.Add(uint64(0x06050403020100), byte(1), byte(1), int64(3), uint8(7), uint8(0x2a), "a;b;;c")
	f.Add(uint64(0x0604), byte(0), byte(2), int64(4), uint8(2), uint8(3), "ab.cd!e")
	f.Add(uint64(0x0505), byte(2), byte(2), int64(5), uint8(2), uint8(0), "ab!cd!")
	f.Add(uint64(0x0001), byte(5), byte(6), int64(6), uint8(2), uint8(0), "abba\x00\xffb")
	f.Add(uint64(0x0200), byte(0), byte(1), int64(7), uint8(2), uint8(0), longGap+"w."+longGap)
	f.Fuzz(func(t *testing.T, modes uint64, c1, c2 byte, seed int64, n, disable uint8, doc string) {
		// Cap the document harder than the single-query fuzzes: the
		// differential evaluates it several times per member, up to 8
		// members, and some members are quadratic.
		if len(doc) > 1<<10 {
			doc = doc[:1<<10]
		}
		nq := 2 + int(n)%7 // 2–8 member queries
		members := make([]*vsa.Automaton, 0, nq)
		for i := 0; i < nq; i++ {
			src := multiFuzzFormula(uint8(modes>>(8*i)), c1+byte(i), c2, seed+int64(i))
			a, err := regexformula.Compile(src)
			if err != nil || a.Arity() != 1 {
				t.Skip()
			}
			if disable&(1<<i) != 0 {
				a.DisablePrefilter()
			}
			members = append(members, a)
		}
		m := vsa.NewMulti(members...)

		// Whole document, one segment: per query against standalone Eval.
		whole := []Segment{{Span: span.Span{Start: 1, End: len(doc) + 1}, Text: doc}}
		var base []*span.Relation
		for _, w := range []int{1, 3} {
			rels := MultiEval(m, whole, w)
			for q, got := range rels {
				want := members[q].Eval(doc)
				if !got.Equal(want) {
					t.Fatalf("workers=%d query %d diverged on %q:\nfused:      %v\nstandalone: %v",
						w, q, doc, got, want)
				}
			}
			if base == nil {
				base = rels
			}
		}

		// Chopped segments: per query against the member's own SplitEval
		// over the same segments, across worker counts.
		segs := chopSegments(doc, 7)
		for _, w := range []int{1, 4} {
			rels := MultiEval(m, segs, w)
			for q, got := range rels {
				want := SplitEval(members[q], segs, 1)
				if !got.Equal(want) {
					t.Fatalf("chopped workers=%d query %d diverged on %q:\nfused: %v\nsplit: %v",
						w, q, doc, got, want)
				}
			}
		}
	})
}
