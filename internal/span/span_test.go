package span

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestShiftFigure1 reproduces Figure 1 of the paper: with s = [7,13⟩ and
// s' = [2,6⟩ a span of d_s, the shifted span is s' ≫ s = [8,12⟩.
func TestShiftFigure1(t *testing.T) {
	s := New(7, 13)
	sp := New(2, 6)
	if got := sp.Shift(s); got != New(8, 12) {
		t.Fatalf("s' ≫ s = %v, want [8,12⟩", got)
	}
}

func TestShiftUnshiftRoundTrip(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		inner := New(int(a%20)+1, int(a%20)+1+int(b%10))
		// An enclosing span long enough to contain the shifted copy.
		outer := New(int(c%20)+1, int(c%20)+1+int(d%10)+30)
		shifted := inner.Shift(outer)
		return shifted.Len() == inner.Len() &&
			outer.Contains(shifted) &&
			shifted.Unshift(outer) == inner
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestShiftAssociative checks the associativity identity used in the proof
// of Lemma 6.5: (s1 ≫ s2) ≫ s3 = s1 ≫ (s2 ≫ s3).
func TestShiftAssociative(t *testing.T) {
	f := func(a1, b1, a2, b2, a3, b3 uint8) bool {
		s1 := New(int(a1%30)+1, int(a1%30)+1+int(b1%10))
		s2 := New(int(a2%30)+1, int(a2%30)+1+int(b2%10))
		s3 := New(int(a3%30)+1, int(a3%30)+1+int(b3%10))
		return s1.Shift(s2).Shift(s3) == s1.Shift(s2.Shift(s3))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpanBasics(t *testing.T) {
	d := "abcdef"
	s := New(2, 5)
	if got := s.In(d); got != "bcd" {
		t.Fatalf("In = %q, want bcd", got)
	}
	if s.Len() != 3 || s.IsEmpty() {
		t.Fatalf("Len/IsEmpty wrong for %v", s)
	}
	e := New(3, 3)
	if e.Len() != 0 || !e.IsEmpty() {
		t.Fatalf("empty span misreported")
	}
	if e.In(d) != "" {
		t.Fatalf("empty span should select empty string")
	}
	if !New(1, 7).ValidFor(6) || New(1, 8).ValidFor(6) {
		t.Fatalf("ValidFor wrong")
	}
}

func TestSpanEqualityIsPositional(t *testing.T) {
	// d[1,2⟩ = d[3,4⟩ = "a" but the spans differ (Section 2).
	d := "aba"
	s1, s2 := New(1, 2), New(3, 4)
	if s1.In(d) != s2.In(d) {
		t.Fatal("substrings should be equal")
	}
	if s1 == s2 {
		t.Fatal("spans must not be equal")
	}
}

// TestOverlapDefinition pins down the paper's overlap predicate including
// the empty-span asymmetries that the decision procedures must respect
// (see DESIGN.md).
func TestOverlapDefinition(t *testing.T) {
	cases := []struct {
		a, b Span
		want bool
	}{
		{New(1, 3), New(2, 4), true},
		{New(1, 2), New(2, 3), false}, // touching, not overlapping
		{New(1, 3), New(3, 3), false}, // empty at right endpoint
		{New(2, 2), New(1, 3), true},  // empty strictly inside
		{New(1, 3), New(2, 2), true},
		{New(2, 2), New(2, 4), true}, // empty at left endpoint of nonempty
		{New(2, 2), New(1, 2), false},
		// Under the paper's definition an empty span does not overlap
		// itself: neither i ≤ i' < j nor i' ≤ i < j' holds when i=j=i'=j'.
		{New(2, 2), New(2, 2), false},
		{New(1, 2), New(5, 9), false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.a.Disjoint(c.b); got == c.want {
			t.Errorf("Disjoint(%v,%v) should be !Overlaps", c.a, c.b)
		}
	}
}

func TestContains(t *testing.T) {
	if !New(1, 5).Contains(New(2, 3)) || !New(1, 5).Contains(New(1, 5)) {
		t.Fatal("Contains too strict")
	}
	if !New(1, 5).Contains(New(5, 5)) {
		t.Fatal("span must contain empty span at its right endpoint")
	}
	if New(2, 5).Contains(New(1, 3)) {
		t.Fatal("Contains too lax")
	}
}

// TestAllenExhaustive verifies that every pair of spans falls in exactly
// one Allen relation and that the relation is consistent with Overlaps.
func TestAllenExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	counts := map[AllenRelation]int{}
	mkSpan := func() Span {
		i, j := rng.Intn(6)+1, rng.Intn(6)+1
		if j < i {
			i, j = j, i
		}
		return New(i, j)
	}
	for i := 0; i < 20000; i++ {
		a := mkSpan()
		b := mkSpan()
		r := Allen(a, b)
		counts[r]++
		// Inverse property.
		inv := map[AllenRelation]AllenRelation{
			Before: After, Meets: MetBy, OverlapsAllen: OverlappedBy,
			Starts: StartedBy, During: ContainsAllen, Finishes: FinishedBy,
			Equal: Equal, FinishedBy: Finishes, ContainsAllen: During,
			StartedBy: Starts, OverlappedBy: OverlapsAllen, MetBy: Meets, After: Before,
		}
		if got := Allen(b, a); got != inv[r] {
			t.Fatalf("Allen(%v,%v)=%v but Allen(%v,%v)=%v", a, b, r, b, a, got)
		}
	}
	for r := Before; r <= After; r++ {
		if counts[r] == 0 {
			t.Errorf("relation %v never produced; sampling or Allen broken", r)
		}
	}
}

func TestTupleHull(t *testing.T) {
	tp := Tuple{New(3, 5), New(2, 4), New(6, 6)}
	if h := tp.Hull(); h != New(2, 6) {
		t.Fatalf("hull = %v, want [2,6⟩", h)
	}
}

func TestRelationSetSemantics(t *testing.T) {
	r := NewRelation("x", "y")
	r.Add(Tuple{New(1, 2), New(2, 3)})
	if r.Add(Tuple{New(1, 2), New(2, 3)}) {
		t.Fatal("duplicate add must be rejected")
	}
	r.Add(Tuple{New(2, 3), New(3, 4)})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	o := NewRelation("x", "y")
	o.Add(Tuple{New(2, 3), New(3, 4)})
	o.Add(Tuple{New(1, 2), New(2, 3)})
	if !r.Equal(o) {
		t.Fatal("order must not matter for Equal")
	}
}

func TestRelationProjectAndJoin(t *testing.T) {
	r := NewRelation("x", "y")
	r.Add(Tuple{New(1, 2), New(2, 3)})
	r.Add(Tuple{New(1, 2), New(3, 4)})
	p, err := r.Project([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Fatalf("projection should dedupe, got %d tuples", p.Len())
	}
	s := NewRelation("y", "z")
	s.Add(Tuple{New(2, 3), New(5, 6)})
	j := r.Join(s)
	if j.Len() != 1 {
		t.Fatalf("join size = %d, want 1", j.Len())
	}
	want := NewRelation("x", "y", "z")
	want.Add(Tuple{New(1, 2), New(2, 3), New(5, 6)})
	if !j.Equal(want) {
		t.Fatalf("join = %v, want %v", j, want)
	}
	if _, err := r.Project([]string{"nope"}); err == nil {
		t.Fatal("projecting onto unknown variable must fail")
	}
}

func TestJoinCommutesOnSharedVars(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(vars ...string) *Relation {
			r := NewRelation(vars...)
			for i := 0; i < rng.Intn(5); i++ {
				tp := make(Tuple, len(vars))
				for j := range tp {
					s := rng.Intn(4) + 1
					tp[j] = New(s, s+rng.Intn(3))
				}
				r.Add(tp)
			}
			return r
		}
		a := mk("x", "y")
		b := mk("y", "z")
		ab := a.Join(b)
		ba := b.Join(a)
		abP, err1 := ab.Project([]string{"x", "y", "z"})
		baP, err2 := ba.Project([]string{"x", "y", "z"})
		if err1 != nil || err2 != nil {
			return false
		}
		return abP.Equal(baP)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRelationUnion(t *testing.T) {
	a := NewRelation("x")
	a.Add(Tuple{New(1, 2)})
	b := NewRelation("x")
	b.Add(Tuple{New(2, 3)})
	b.Add(Tuple{New(1, 2)})
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 {
		t.Fatalf("union size = %d, want 2", a.Len())
	}
	c := NewRelation("y")
	if err := a.Union(c); err == nil {
		t.Fatal("union of incompatible relations must fail")
	}
}

func TestShiftAll(t *testing.T) {
	r := NewRelation("x")
	r.Add(Tuple{New(1, 3)})
	s := r.ShiftAll(New(5, 9))
	want := NewRelation("x")
	want.Add(Tuple{New(5, 7)})
	if !s.Equal(want) {
		t.Fatalf("ShiftAll = %v, want %v", s, want)
	}
}
